package snapshot

import (
	"bytes"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	w := NewWriter()
	w.U64(0)
	w.U64(1 << 63)
	w.I64(-42)
	w.I64(1)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.5)
	w.Bytes([]byte("hello"))
	w.String("κλειδί")
	w.I64s([]int64{-1, 0, 9})
	w.U64s([]uint64{2, 4})
	w.I64s(nil)

	r := NewReader(w.Payload())
	if got := r.U64(); got != 0 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.U64(); got != 1<<63 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.I64(); got != 1 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.String(); got != "κλειδί" {
		t.Errorf("String = %q", got)
	}
	if got := r.I64s(); len(got) != 3 || got[0] != -1 || got[2] != 9 {
		t.Errorf("I64s = %v", got)
	}
	if got := r.U64s(); len(got) != 2 || got[1] != 4 {
		t.Errorf("U64s = %v", got)
	}
	if got := r.I64s(); len(got) != 0 {
		t.Errorf("nil I64s = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("clean stream reported error: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter()
	w.Bytes(make([]byte, 100))
	payload := w.Payload()
	r := NewReader(payload[:10])
	if got := r.Bytes(); got != nil {
		t.Errorf("truncated Bytes returned %d bytes", len(got))
	}
	if r.Err() == nil {
		t.Fatal("truncated stream reported no error")
	}
	// Sticky: later reads keep failing and return zero values.
	if r.U64() != 0 || r.Err() == nil {
		t.Error("error was not sticky")
	}
}

func TestStateHashIgnoresAux(t *testing.T) {
	mk := func(aux uint64) *Writer {
		w := NewWriter()
		w.U64(11)
		w.String("state")
		w.BeginAux()
		w.U64(aux)
		return w
	}
	a, b := mk(1), mk(99999)
	if a.StateHash() != b.StateHash() {
		t.Error("accounting section perturbed the STATE hash")
	}
	c := NewWriter()
	c.U64(12)
	c.String("state")
	c.BeginAux()
	c.U64(1)
	if a.StateHash() == c.StateHash() {
		t.Error("STATE change did not change the hash")
	}
}

func TestFileFormat(t *testing.T) {
	w := NewWriter()
	w.U64(123)
	w.BeginAux()
	w.U64(456)
	blob := Encode("testkind", w)

	kind, r, hash, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "testkind" {
		t.Errorf("kind = %q", kind)
	}
	if hash != w.StateHash() {
		t.Errorf("decoded hash %s != writer hash %s", hash, w.StateHash())
	}
	if got := r.U64(); got != 123 {
		t.Errorf("payload U64 = %d", got)
	}

	// Any single-byte corruption must be caught by the integrity digest.
	for _, i := range []int{0, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, _, _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d went undetected", i)
		}
	}
	if _, _, _, err := Decode(blob[:len(blob)-5]); err == nil {
		t.Error("truncated blob went undetected")
	}
}

func TestFileRoundTrip(t *testing.T) {
	w := NewWriter()
	w.String("persisted")
	path := t.TempDir() + "/x.facsnap"
	hash, err := WriteFile(path, "k", w)
	if err != nil {
		t.Fatal(err)
	}
	kind, r, gotHash, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "k" || gotHash != hash {
		t.Errorf("kind %q hash %s, want k %s", kind, gotHash, hash)
	}
	if got := r.String(); got != "persisted" {
		t.Errorf("payload = %q", got)
	}
	if strings.Contains(path, ".tmp") {
		t.Fatal("unreachable")
	}
}
