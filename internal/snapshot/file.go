package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Blob format (version 1):
//
//	magic   [8]byte  "FACSNAP1"
//	version uvarint
//	kind    string   engine kind ("func", "ooo", "fastsim", "fac-ooo", ...)
//	auxOff  uvarint  offset of the accounting section within the payload
//	payload bytes    length-prefixed
//	digest  [32]byte SHA-256 of everything before it (integrity check)
//
// The stable content hash reported alongside a snapshot is the SHA-256 of
// payload[:auxOff] — the STATE section only — so it is independent of
// accounting counters and of the container framing.

const magic = "FACSNAP1"

// Version is the current snapshot format version. Bump it on any change to
// a SaveState field order; Decode rejects mismatches rather than guessing.
const Version = 1

// Encode frames a completed Writer into a self-describing blob.
func Encode(kind string, w *Writer) []byte {
	var hdr Writer
	hdr.buf = append(hdr.buf, magic...)
	hdr.U64(Version)
	hdr.String(kind)
	hdr.U64(uint64(w.stateLen()))
	hdr.Bytes(w.Payload())
	sum := sha256.Sum256(hdr.buf)
	return append(hdr.buf, sum[:]...)
}

// Decode verifies and unpacks a blob. It returns the engine kind, a Reader
// positioned at the start of the payload, and the STATE content hash.
func Decode(blob []byte) (kind string, r *Reader, stateHash string, err error) {
	if len(blob) < len(magic)+sha256.Size || string(blob[:len(magic)]) != magic {
		return "", nil, "", fmt.Errorf("snapshot: not a snapshot (bad magic)")
	}
	body, digest := blob[:len(blob)-sha256.Size], blob[len(blob)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(digest) {
		return "", nil, "", fmt.Errorf("snapshot: integrity check failed (corrupt file)")
	}
	hr := NewReader(body[len(magic):])
	ver := hr.U64()
	if hr.Err() == nil && ver != Version {
		return "", nil, "", fmt.Errorf("snapshot: format version %d, this build reads %d", ver, Version)
	}
	kind = hr.String()
	auxOff := hr.U64()
	payload := hr.Bytes()
	if err := hr.Err(); err != nil {
		return "", nil, "", err
	}
	if auxOff > uint64(len(payload)) {
		return "", nil, "", fmt.Errorf("snapshot: accounting offset %d beyond payload", auxOff)
	}
	sum := sha256.Sum256(payload[:auxOff])
	return kind, NewReader(payload), hex.EncodeToString(sum[:]), nil
}

// injectFileErr is the failure-injection seam for WriteRawFile: when
// non-nil it may fail any stage ("create", "write", "sync", "close",
// "rename") with an arbitrary error, so tests can drive the ENOSPC and
// crash failure paths on demand. Production code never sets it.
var injectFileErr func(op, path string) error

func injected(op, path string) error {
	if injectFileErr == nil {
		return nil
	}
	return injectFileErr(op, path)
}

// WriteRawFile atomically writes blob to path via the temp-file + fsync +
// rename discipline: a reader never observes a partial file under the
// final name, and a crash at any point leaves at worst a stale
// "<base>.*.tmp" for CleanupTmp to collect on the next start. Every
// failure path removes the temporary file. The staging name is unique
// per call, so concurrent writers to the same path never share a temp
// file — each rename installs one writer's complete bytes, last one
// winning.
func WriteRawFile(path string, blob []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	if err := f.Chmod(0o644); err != nil { // CreateTemp defaults to 0600
		f.Close()
		os.Remove(f.Name())
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := injected("write", path); err != nil {
		return fail(err)
	}
	if _, err := f.Write(blob); err != nil {
		return fail(err)
	}
	if err := injected("sync", path); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := injected("rename", path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Sync the directory so the rename itself is durable. Best-effort: some
	// platforms cannot fsync a directory handle.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// CleanupTmp removes leftover "*.tmp" staging files in dir — the residue
// of a crash between a WriteRawFile's write and its rename. Callers run it
// once at startup, before reading the directory's records. It returns the
// names removed; a missing directory is an empty result, not an error.
func CleanupTmp(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".tmp" {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, err
		}
		removed = append(removed, e.Name())
	}
	return removed, nil
}

// WriteFile atomically writes an encoded snapshot and returns its STATE
// content hash. See WriteRawFile for the crash-consistency discipline.
func WriteFile(path, kind string, w *Writer) (stateHash string, err error) {
	if err := WriteRawFile(path, Encode(kind, w)); err != nil {
		return "", err
	}
	return w.StateHash(), nil
}

// ReadFile reads and verifies a snapshot file.
func ReadFile(path string) (kind string, r *Reader, stateHash string, err error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return "", nil, "", err
	}
	return Decode(blob)
}
