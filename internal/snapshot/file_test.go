package snapshot

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	var w Writer
	w.U64(42)
	w.String("hello")
	w.BeginAux()
	w.U64(7)
	path := filepath.Join(t.TempDir(), "snap.bin")
	hash, err := WriteFile(path, "test", &w)
	if err != nil {
		t.Fatal(err)
	}
	kind, r, gotHash, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "test" || gotHash != hash {
		t.Fatalf("kind %q hash %q, want test/%q", kind, gotHash, hash)
	}
	if v := r.U64(); v != 42 {
		t.Fatalf("payload u64 = %d", v)
	}
}

func TestWriteFileFailedRenameLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	// Renaming a file onto a non-empty directory fails, after the temporary
	// file was written and synced — the interesting failure path.
	target := filepath.Join(dir, "snap.bin")
	if err := os.MkdirAll(filepath.Join(target, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	var w Writer
	w.U64(1)
	w.BeginAux()
	if _, err := WriteFile(target, "test", &w); err == nil {
		t.Fatal("rename onto a non-empty directory should fail")
	}
	if _, err := os.Stat(target + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("failed WriteFile left %s.tmp behind (stat err: %v)", target, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "snap.bin" {
		t.Fatalf("unexpected directory contents after failed write: %v", ents)
	}
}

// TestWriteFileInjectedENOSPC drives the full-disk failure path through
// the injection seam at each stage of the write: the call must surface
// the error and leave no staging litter, whichever stage ran out of
// space.
func TestWriteFileInjectedENOSPC(t *testing.T) {
	enospc := os.NewSyscallError("write", os.ErrInvalid) // stands in for ENOSPC
	for _, stage := range []string{"write", "sync", "rename"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			target := filepath.Join(dir, "snap.bin")
			injectFileErr = func(op, path string) error {
				if op == stage {
					return enospc
				}
				return nil
			}
			defer func() { injectFileErr = nil }()
			var w Writer
			w.U64(1)
			w.BeginAux()
			if _, err := WriteFile(target, "test", &w); err == nil {
				t.Fatalf("injected %s failure did not surface", stage)
			}
			if _, err := os.Stat(target); !os.IsNotExist(err) {
				t.Fatalf("partial file reached final name after %s failure", stage)
			}
			if _, err := os.Stat(target + ".tmp"); !os.IsNotExist(err) {
				t.Fatalf("%s failure left staging file behind", stage)
			}
		})
	}
}

// TestCleanupTmpAfterCrashBeforeRename simulates a process killed between
// writing the staging file and the rename: the .tmp survives the "crash",
// the final name never appears, and the next start's CleanupTmp removes
// the residue without touching real records.
func TestCleanupTmpAfterCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "snap.bin")
	injectFileErr = func(op, path string) error {
		if op == "rename" {
			// "Die" with the staging file in place, as a SIGKILL would leave it.
			blob := []byte("torn")
			if err := os.WriteFile(target+".tmp", blob, 0o644); err != nil {
				t.Fatal(err)
			}
			return os.ErrClosed
		}
		return nil
	}
	var w Writer
	w.U64(1)
	w.BeginAux()
	_, err := WriteFile(target, "test", &w)
	injectFileErr = nil
	if err == nil {
		t.Fatal("crashed write reported success")
	}
	// Recreate the pre-rename state (WriteFile's error path cleans its own
	// tmp; a real SIGKILL cannot).
	if err := os.WriteFile(target+".tmp", []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "healthy.bin")
	if err := os.WriteFile(keep, []byte("record"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := CleanupTmp(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "snap.bin.tmp" {
		t.Fatalf("CleanupTmp removed %v, want [snap.bin.tmp]", removed)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("CleanupTmp touched a real record: %v", err)
	}
	if _, err := os.Stat(target + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("staging residue survived CleanupTmp")
	}
	// Idempotent, and a missing directory is an empty result.
	if again, err := CleanupTmp(dir); err != nil || len(again) != 0 {
		t.Fatalf("second CleanupTmp: %v, %v", again, err)
	}
	if none, err := CleanupTmp(filepath.Join(dir, "absent")); err != nil || len(none) != 0 {
		t.Fatalf("CleanupTmp on missing dir: %v, %v", none, err)
	}
}

func TestWriteFileUnwritableDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "missing", "nested")
	var w Writer
	w.U64(1)
	w.BeginAux()
	if _, err := WriteFile(filepath.Join(dir, "snap.bin"), "test", &w); err == nil {
		t.Fatal("write into a missing directory should fail")
	}
}
