package snapshot

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	var w Writer
	w.U64(42)
	w.String("hello")
	w.BeginAux()
	w.U64(7)
	path := filepath.Join(t.TempDir(), "snap.bin")
	hash, err := WriteFile(path, "test", &w)
	if err != nil {
		t.Fatal(err)
	}
	kind, r, gotHash, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "test" || gotHash != hash {
		t.Fatalf("kind %q hash %q, want test/%q", kind, gotHash, hash)
	}
	if v := r.U64(); v != 42 {
		t.Fatalf("payload u64 = %d", v)
	}
}

func TestWriteFileFailedRenameLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	// Renaming a file onto a non-empty directory fails, after the temporary
	// file was written and synced — the interesting failure path.
	target := filepath.Join(dir, "snap.bin")
	if err := os.MkdirAll(filepath.Join(target, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	var w Writer
	w.U64(1)
	w.BeginAux()
	if _, err := WriteFile(target, "test", &w); err == nil {
		t.Fatal("rename onto a non-empty directory should fail")
	}
	if _, err := os.Stat(target + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("failed WriteFile left %s.tmp behind (stat err: %v)", target, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "snap.bin" {
		t.Fatalf("unexpected directory contents after failed write: %v", ents)
	}
}

func TestWriteFileUnwritableDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "missing", "nested")
	var w Writer
	w.U64(1)
	w.BeginAux()
	if _, err := WriteFile(filepath.Join(dir, "snap.bin"), "test", &w); err == nil {
		t.Fatal("write into a missing directory should fail")
	}
}
