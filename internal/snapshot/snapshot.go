// Package snapshot implements versioned, deterministic serialization of
// complete simulator state: a byte-exact codec, a stable content hash, and
// a small file format. Every engine in the repository (funcsim, the
// conventional ooo baseline, the hand-coded fastsim, and the Facile rt
// machines) saves and restores itself through this package, so a run can be
// checkpointed, resumed, cloned for parallel interval simulation, and
// verified by hash.
//
// A snapshot payload has two sections:
//
//   - The STATE section holds everything that determines the simulation's
//     future evolution: architectural state, microarchitectural (pipeline,
//     cache, predictor) state, and deterministic PRNG states. Its SHA-256
//     is the snapshot's content hash — two runs that arrive at the same
//     point by different routes (e.g. memoized vs. not) produce the same
//     hash.
//
//   - The accounting (aux) section holds run statistics that are carried
//     across a restore but do not influence evolution and are not hashed:
//     memoization counters, fault counters, self-check tallies. The
//     specialized action cache itself is deliberately excluded from
//     snapshots — it is an acceleration structure, not state, and is
//     re-warmed after a restore.
//
// All multi-byte integers are unsigned varints; slices are length-prefixed.
// Encoders write fields in a fixed documented order, so equal state yields
// equal bytes and therefore equal hashes.
package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
)

// Writer serializes state into a deterministic byte stream.
type Writer struct {
	buf   []byte
	auxAt int // start of the accounting section; -1 while still in STATE
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{auxAt: -1} }

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

// I64 writes a signed value (two's-complement cast; the reader inverts it).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// U8 writes one raw byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(vs []int64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// BeginAux ends the STATE section: everything written after this call is
// accounting, carried across restores but excluded from the content hash.
func (w *Writer) BeginAux() {
	if w.auxAt < 0 {
		w.auxAt = len(w.buf)
	}
}

// Payload returns the serialized bytes (STATE followed by accounting).
func (w *Writer) Payload() []byte { return w.buf }

// stateLen reports the length of the STATE section.
func (w *Writer) stateLen() int {
	if w.auxAt < 0 {
		return len(w.buf)
	}
	return w.auxAt
}

// StateHash returns the hex SHA-256 of the STATE section — the snapshot's
// stable content hash.
func (w *Writer) StateHash() string {
	sum := sha256.Sum256(w.buf[:w.stateLen()])
	return hex.EncodeToString(sum[:])
}

// Reader deserializes a payload written by Writer. Errors are sticky: after
// the first malformed read every subsequent read returns zero values, and
// Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: truncated or corrupt payload at offset %d (%s)", r.off, what)
	}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for {
		if r.off >= len(r.buf) || shift > 63 {
			r.fail("uvarint")
			return 0
		}
		b := r.buf[r.off]
		r.off++
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
}

// I64 reads a signed value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// U8 reads one raw byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a length-prefixed byte slice (always a fresh copy).
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("bytes length")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// I64s reads a length-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) { // each element is at least one byte
		r.fail("slice length")
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	return out
}

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("slice length")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}
