package snapshot_test

import (
	"bytes"
	"testing"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/funcsim"
	"facile/internal/arch/ooo"
	"facile/internal/arch/uarch"
	"facile/internal/facsim"
	"facile/internal/isa/loader"
	"facile/internal/snapshot"
	"facile/internal/workloads"
)

func prog(t *testing.T, name string) *loader.Program {
	t.Helper()
	w, err := workloads.Get(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w.Prog
}

// TestFuncRoundTrip: save → load → continue must reproduce the
// uninterrupted run exactly for the golden functional simulator.
func TestFuncRoundTrip(t *testing.T) {
	p := prog(t, "126.gcc")
	full := funcsim.NewState(p)
	if err := full.RunOn(p, 0); err != nil {
		t.Fatal(err)
	}

	half := funcsim.NewState(p)
	if err := half.RunOn(p, full.InstCount/2); err != nil {
		t.Fatal(err)
	}
	w := snapshot.NewWriter()
	half.SaveState(w)

	restored := funcsim.NewState(p)
	if err := restored.LoadState(snapshot.NewReader(w.Payload())); err != nil {
		t.Fatal(err)
	}
	if restored.Hash() != half.Hash() {
		t.Fatal("restored state hash differs from saved state")
	}
	if err := restored.RunOn(p, 0); err != nil {
		t.Fatal(err)
	}
	if err := half.RunOn(p, 0); err != nil {
		t.Fatal(err)
	}
	for _, st := range []*funcsim.State{restored, half} {
		if st.InstCount != full.InstCount || st.ExitStatus != full.ExitStatus ||
			!bytes.Equal(st.Output, full.Output) || st.Hash() != full.Hash() {
			t.Fatalf("continued run diverged: %d insts (want %d), hash %s (want %s)",
				st.InstCount, full.InstCount, st.Hash(), full.Hash())
		}
	}
}

// TestOOORoundTrip: the conventional baseline must resume mid-pipeline
// (in-flight window, predictor, caches) with bit-identical results.
func TestOOORoundTrip(t *testing.T) {
	p := prog(t, "129.compress")
	cfg := uarch.Default()
	full := ooo.New(cfg, p)
	fullRes := full.Run(0)

	half := ooo.New(cfg, p)
	half.Run(fullRes.Insts / 2)
	w := snapshot.NewWriter()
	half.SaveState(w)

	restored := ooo.New(cfg, p)
	if err := restored.LoadState(snapshot.NewReader(w.Payload())); err != nil {
		t.Fatal(err)
	}
	if restored.Hash() != half.Hash() {
		t.Fatal("restored state hash differs from saved state")
	}
	resA := half.Run(0)
	resB := restored.Run(0)
	if resA.Cycles != resB.Cycles || resA.Insts != resB.Insts || !bytes.Equal(resA.Output, resB.Output) {
		t.Fatal("restored run diverged from interrupted run")
	}
	if resB.Cycles != fullRes.Cycles || resB.Insts != fullRes.Insts ||
		resB.ExitStatus != fullRes.ExitStatus || !bytes.Equal(resB.Output, fullRes.Output) ||
		resB.Mispredicts != fullRes.Mispredicts || resB.L1DMisses != fullRes.L1DMisses {
		t.Fatalf("restored run != uninterrupted run:\n%+v\n%+v", resB, fullRes)
	}
	if restored.Hash() != full.Hash() {
		t.Fatal("final state hash differs from uninterrupted run")
	}
}

// TestFastsimRoundTrip: the fast-forwarding simulator must resume with
// bit-identical timing and architectural results. The action cache is
// deliberately absent from snapshots, so the restored run's slow/replayed
// split differs while cycles, instructions, and outputs do not.
func TestFastsimRoundTrip(t *testing.T) {
	p := prog(t, "126.gcc")
	cfg := uarch.Default()
	opt := fastsim.Options{Memoize: true}
	full := fastsim.New(cfg, p, opt)
	fullRes := full.Run(0)

	half := fastsim.New(cfg, p, opt)
	half.Run(fullRes.Insts / 2)
	w := snapshot.NewWriter()
	if err := half.SaveState(w); err != nil {
		t.Fatal(err)
	}

	restored := fastsim.New(cfg, p, opt)
	if err := restored.LoadState(snapshot.NewReader(w.Payload())); err != nil {
		t.Fatal(err)
	}
	resB := restored.Run(0)
	if resB.Cycles != fullRes.Cycles || resB.Insts != fullRes.Insts ||
		resB.ExitStatus != fullRes.ExitStatus || !bytes.Equal(resB.Output, fullRes.Output) ||
		resB.Mispredicts != fullRes.Mispredicts || resB.L1DMisses != fullRes.L1DMisses {
		t.Fatalf("restored run != uninterrupted run:\n%+v\n%+v", resB, fullRes)
	}
	// Architectural end states match even though memoization history differs.
	if restored.State().Hash() != full.State().Hash() {
		t.Fatal("final architectural hash differs from uninterrupted run")
	}
	stR, stF := restored.Stats(), full.Stats()
	if stR.SlowInsts+stR.FastInsts != stF.SlowInsts+stF.FastInsts {
		t.Fatalf("total committed instructions differ: %d vs %d",
			stR.SlowInsts+stR.FastInsts, stF.SlowInsts+stF.FastInsts)
	}
}

// TestFacsimRoundTrip: all three Facile-compiled simulators must resume
// mid-run through the file container with identical results.
func TestFacsimRoundTrip(t *testing.T) {
	p := prog(t, "129.compress")
	for _, kind := range []string{facsim.KindFunctional, facsim.KindInOrder, facsim.KindOOO} {
		t.Run(kind, func(t *testing.T) {
			opt := facsim.Options{Memoize: true}
			full, err := facsim.New(kind, p, opt)
			if err != nil {
				t.Fatal(err)
			}
			fullRes, err := full.Run(0)
			if err != nil {
				t.Fatal(err)
			}

			half, err := facsim.New(kind, p, opt)
			if err != nil {
				t.Fatal(err)
			}
			steps := fullRes.Stats.SlowSteps + fullRes.Stats.Replays
			if err := half.M.Run(steps / 2); err != nil {
				t.Fatal(err)
			}
			w := snapshot.NewWriter()
			half.SaveState(w)
			path := t.TempDir() + "/half.facsnap"
			if _, err := snapshot.WriteFile(path, kind, w); err != nil {
				t.Fatal(err)
			}

			gotKind, r, _, err := snapshot.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if gotKind != kind {
				t.Fatalf("file kind %q, want %q", gotKind, kind)
			}
			restored, err := facsim.New(kind, p, opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.LoadState(r); err != nil {
				t.Fatal(err)
			}
			resB, err := restored.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if resB.Cycles != fullRes.Cycles || resB.Insts != fullRes.Insts ||
				resB.Exit != fullRes.Exit || !bytes.Equal(resB.Output, fullRes.Output) {
				t.Fatalf("restored run != uninterrupted run:\n%+v\n%+v", resB, fullRes)
			}
			if restored.Hash() != full.Hash() {
				t.Fatal("final state hash differs from uninterrupted run")
			}
		})
	}
}

// TestSnapshotKindMismatch: loading a snapshot into the wrong engine must
// fail the shape validation, not corrupt state silently.
func TestSnapshotKindMismatch(t *testing.T) {
	p := prog(t, "129.compress")
	fn, err := facsim.New(facsim.KindFunctional, p, facsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.M.Run(100); err != nil {
		t.Fatal(err)
	}
	w := snapshot.NewWriter()
	fn.SaveState(w)

	oooIn, err := facsim.New(facsim.KindOOO, p, facsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := oooIn.LoadState(snapshot.NewReader(w.Payload())); err == nil {
		t.Fatal("loading a fac-func snapshot into fac-ooo succeeded")
	}
}
