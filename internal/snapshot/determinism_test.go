package snapshot_test

import (
	"bytes"
	"testing"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa/loader"
	"facile/internal/snapshot"
	"facile/internal/workloads"
)

// fastsimFingerprint runs the fast-forwarding simulator to completion and
// returns everything a deterministic simulator must reproduce: results,
// statistics, and the full-state snapshot hash.
func fastsimFingerprint(p *loader.Program) (uarch.Result, fastsim.Stats, string, error) {
	s := fastsim.New(uarch.Default(), p, fastsim.Options{Memoize: true})
	res := s.Run(0)
	w := snapshot.NewWriter()
	if err := s.SaveState(w); err != nil {
		return res, fastsim.Stats{}, "", err
	}
	return res, s.Stats(), w.StateHash(), nil
}

func sameResult(a, b uarch.Result) bool {
	return a.Cycles == b.Cycles && a.Insts == b.Insts && a.ExitStatus == b.ExitStatus &&
		bytes.Equal(a.Output, b.Output) && a.BranchLookups == b.BranchLookups &&
		a.Mispredicts == b.Mispredicts && a.L1DMisses == b.L1DMisses && a.L2Misses == b.L2Misses
}

// TestSuiteDeterminism: two sequential runs of every bundled workload must
// produce identical final statistics, exit status, and snapshot hash. This
// is the precondition for everything the snapshot/parsim layer promises.
func TestSuiteDeterminism(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			p := prog(t, name)
			resA, stA, hashA, err := fastsimFingerprint(p)
			if err != nil {
				t.Fatal(err)
			}
			resB, stB, hashB, err := fastsimFingerprint(p)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResult(resA, resB) {
				t.Fatalf("results differ between runs:\n%+v\n%+v", resA, resB)
			}
			if stA != stB {
				t.Fatalf("stats differ between runs:\n%+v\n%+v", stA, stB)
			}
			if hashA != hashB {
				t.Fatalf("snapshot hash differs between runs: %s vs %s", hashA, hashB)
			}
		})
	}
}

// TestRandomWorkloadDeterminism extends the property to generated
// workloads: the same seed must fingerprint identically run-to-run.
func TestRandomWorkloadDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 20260805} {
		p1, err := workloads.Random(seed, 40, 400)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := workloads.Random(seed, 40, 400)
		if err != nil {
			t.Fatal(err)
		}
		resA, stA, hashA, err := fastsimFingerprint(p1)
		if err != nil {
			t.Fatal(err)
		}
		resB, stB, hashB, err := fastsimFingerprint(p2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(resA, resB) || stA != stB || hashA != hashB {
			t.Fatalf("seed %d: runs differ (hash %s vs %s)", seed, hashA, hashB)
		}
	}
}
