package isa

import (
	"testing"
	"testing/quick"
)

func TestDecodeAddImmediate(t *testing.T) {
	// add r1, r2, -3
	in := Inst{Op: OpAdd, Rd: 1, Rs1: 2, HasImm: true, Imm: -3}
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpAdd || got.Rd != 1 || got.Rs1 != 2 || !got.HasImm || got.Imm != -3 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestDecodeRejectsNonZeroFill(t *testing.T) {
	in := Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	w |= 1 << 7 // poke a bit into the fill field
	if _, err := Decode(w); err == nil {
		t.Fatal("decode accepted non-zero fill field")
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(0x3F) << 26); err == nil {
		t.Fatal("decode accepted undefined opcode 0x3f")
	}
}

func TestEncodeRangeChecks(t *testing.T) {
	cases := []Inst{
		{Op: OpAdd, HasImm: true, Imm: 1 << 14},
		{Op: OpAdd, HasImm: true, Imm: -(1<<14 + 1)},
		{Op: OpBeq, Imm: 1 << 15},
		{Op: OpJ, Imm: 1 << 25},
		{Op: OpSethi, Imm: 1 << 20},
		{Op: OpSethi, Imm: -(1<<20 + 1)},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) accepted out-of-range operand", in)
		}
	}
}

// TestEncodeDecodeRoundTrip is a property test: any valid instruction
// encodes and decodes back to itself.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	ops := make([]Opcode, 0, NumOpcodes)
	for op := Opcode(0); op < NumOpcodes; op++ {
		if op.Valid() {
			ops = append(ops, op)
		}
	}
	f := func(opIdx uint8, rd, rs1, rs2 uint8, imm int32, hasImm bool) bool {
		op := ops[int(opIdx)%len(ops)]
		in := Inst{Op: op, Rd: rd & 31, Rs1: rs1 & 31, Rs2: rs2 & 31}
		switch OpcodeFormat(op) {
		case FmtRI:
			if hasImm {
				in.HasImm = true
				in.Imm = int64(imm % (1 << 14))
				in.Rs2 = 0
			}
			switch op {
			case OpFneg, OpFmov, OpCvtif, OpCvtfi:
				// fine either way
			}
		case FmtBR:
			in.Rd = 0
			in.Imm = int64(imm % (1 << 15))
		case FmtJ:
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
			in.Imm = int64(imm % (1 << 25))
		case FmtHI:
			in.Rs1, in.Rs2 = 0, 0
			in.Imm = int64(imm % (1 << 20))
		case FmtNone:
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		if err != nil {
			return false
		}
		got.Raw = 0
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		if !op.Valid() {
			continue
		}
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("OpcodeByName accepted bogus mnemonic")
	}
}

func TestClassify(t *testing.T) {
	cases := map[Opcode]Class{
		OpNop: ClassNop, OpAdd: ClassIntALU, OpMul: ClassIntMul,
		OpLdd: ClassLoad, OpFld: ClassLoad, OpStd: ClassStore,
		OpBeq: ClassBranch, OpJal: ClassJump, OpJr: ClassJump,
		OpFadd: ClassFP, OpSyscall: ClassSys, OpHalt: ClassSys,
		OpSethi: ClassIntALU, OpFcmp: ClassFP,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("Classify(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Opcode]int{
		OpLdb: 1, OpStb: 1, OpLdw: 4, OpStw: 4,
		OpLdd: 8, OpStd: 8, OpFld: 8, OpFst: 8, OpAdd: 0,
	}
	for op, want := range cases {
		if got := MemBytes(op); got != want {
			t.Errorf("MemBytes(%v) = %d, want %d", op, got, want)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	in := Inst{Op: OpBeq, Imm: -2}
	if got := BranchTarget(in, 0x10010); got != 0x1000C {
		t.Fatalf("BranchTarget = %#x, want 0x1000c", got)
	}
}

func TestDisasmSmoke(t *testing.T) {
	words := []Inst{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpAdd, Rd: 1, Rs1: 2, HasImm: true, Imm: 5},
		{Op: OpBeq, Rs1: 1, Rs2: 0, Imm: 4},
		{Op: OpJ, Imm: -1},
		{Op: OpSethi, Rd: 7, Imm: 0x1234},
		{Op: OpHalt},
	}
	for _, in := range words {
		if s := Disasm(in, 0x10000); s == "" {
			t.Errorf("empty disassembly for %+v", in)
		}
	}
}
