// Package loader defines the executable image format produced by the
// assembler and consumed by every simulator, plus the conventional memory
// layout (text base, data base, initial stack pointer).
package loader

import (
	"fmt"

	"facile/internal/isa"
	"facile/internal/mem"
)

// Conventional memory layout for SVR32 programs.
const (
	TextBase  uint64 = 0x10000
	DataBase  uint64 = 0x400000
	StackTop  uint64 = 0x7FFFF0
	HeapBase  uint64 = 0x500000
	StackSize uint64 = 0x40000
)

// Program is a loaded SVR32 executable image.
type Program struct {
	Name    string
	Entry   uint64
	Text    []uint32 // instruction words, starting at TextBase
	Data    []byte   // initialized data, starting at DataBase
	Symbols map[string]uint64
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint64 { return TextBase + uint64(len(p.Text))*4 }

// InText reports whether addr falls inside the text segment.
func (p *Program) InText(addr uint64) bool {
	return addr >= TextBase && addr < p.TextEnd()
}

// FetchWord returns the instruction word at addr, which must be
// word-aligned and inside the text segment; otherwise it returns 0 (which
// decodes to nop) — simulators treat runaway fetch as a halt condition via
// the functional model's bounds checks.
func (p *Program) FetchWord(addr uint64) uint32 {
	if !p.InText(addr) || addr%4 != 0 {
		return 0
	}
	return p.Text[(addr-TextBase)/4]
}

// Fetch decodes the instruction at addr.
func (p *Program) Fetch(addr uint64) (isa.Inst, error) {
	if !p.InText(addr) {
		return isa.Inst{}, fmt.Errorf("loader: fetch outside text segment: %#x", addr)
	}
	if addr%4 != 0 {
		return isa.Inst{}, fmt.Errorf("loader: misaligned fetch: %#x", addr)
	}
	return isa.Decode(p.Text[(addr-TextBase)/4])
}

// LoadInto writes the program image into m.
func (p *Program) LoadInto(m *mem.Memory) {
	for i, w := range p.Text {
		m.Write32(TextBase+uint64(i)*4, w)
	}
	m.WriteBytes(DataBase, p.Data)
}

// Symbol resolves a label to its address.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// Disassemble renders the whole text segment, one instruction per line.
func (p *Program) Disassemble() []string {
	out := make([]string, 0, len(p.Text))
	for i, w := range p.Text {
		pc := TextBase + uint64(i)*4
		in, err := isa.Decode(w)
		s := ""
		if err != nil {
			s = fmt.Sprintf("%#08x <invalid %v>", w, err)
		} else {
			s = isa.Disasm(in, pc)
		}
		out = append(out, fmt.Sprintf("%#08x: %s", pc, s))
	}
	return out
}
