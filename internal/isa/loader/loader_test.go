package loader

import (
	"testing"

	"facile/internal/isa"
	"facile/internal/mem"
)

func sample() *Program {
	w1, _ := isa.Encode(isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 0, HasImm: true, Imm: 7})
	w2, _ := isa.Encode(isa.Inst{Op: isa.OpHalt})
	return &Program{
		Name:    "sample",
		Entry:   TextBase,
		Text:    []uint32{w1, w2},
		Data:    []byte{1, 2, 3},
		Symbols: map[string]uint64{"start": TextBase},
	}
}

func TestLoadInto(t *testing.T) {
	p := sample()
	m := mem.New()
	p.LoadInto(m)
	if m.Read32(TextBase) != p.Text[0] {
		t.Fatal("text not loaded")
	}
	if m.Read8(DataBase+2) != 3 {
		t.Fatal("data not loaded")
	}
}

func TestBounds(t *testing.T) {
	p := sample()
	if !p.InText(TextBase) || !p.InText(TextBase+4) {
		t.Fatal("InText false negative")
	}
	if p.InText(TextBase+8) || p.InText(TextBase-4) {
		t.Fatal("InText false positive")
	}
	if p.TextEnd() != TextBase+8 {
		t.Fatalf("TextEnd %#x", p.TextEnd())
	}
	if p.FetchWord(TextBase+100) != 0 {
		t.Fatal("out-of-text FetchWord should be 0")
	}
	if p.FetchWord(TextBase+1) != 0 {
		t.Fatal("misaligned FetchWord should be 0")
	}
}

func TestFetchDecodes(t *testing.T) {
	p := sample()
	in, err := p.Fetch(TextBase)
	if err != nil || in.Op != isa.OpAdd || in.Imm != 7 {
		t.Fatalf("%+v %v", in, err)
	}
}

func TestSymbol(t *testing.T) {
	p := sample()
	if a, ok := p.Symbol("start"); !ok || a != TextBase {
		t.Fatal("symbol lookup")
	}
	if _, ok := p.Symbol("missing"); ok {
		t.Fatal("phantom symbol")
	}
}

func TestDisassembleHandlesInvalid(t *testing.T) {
	p := sample()
	p.Text = append(p.Text, 0xFFFFFFFF)
	lines := p.Disassemble()
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
}

func TestLayoutConstantsSane(t *testing.T) {
	if TextBase >= DataBase || DataBase >= HeapBase || StackTop <= HeapBase {
		t.Fatal("memory layout overlaps")
	}
}
