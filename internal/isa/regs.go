package isa

// RegRef names one register operand: the register index plus which file it
// lives in.
type RegRef struct {
	R  uint8
	FP bool
}

// Uses returns the registers read by in (at most three: two sources plus a
// store's data register or a syscall's implicit arguments).
func Uses(in Inst) []RegRef {
	var u []RegRef
	addInt := func(r uint8) {
		if r != 0 {
			u = append(u, RegRef{R: r})
		}
	}
	addFP := func(r uint8) { u = append(u, RegRef{R: r, FP: true}) }
	switch Classify(in.Op) {
	case ClassIntALU, ClassIntMul:
		if in.Op == OpSethi {
			return nil
		}
		addInt(in.Rs1)
		if !in.HasImm {
			addInt(in.Rs2)
		}
	case ClassLoad:
		addInt(in.Rs1)
		if !in.HasImm {
			addInt(in.Rs2)
		}
	case ClassStore:
		addInt(in.Rs1)
		if !in.HasImm {
			addInt(in.Rs2)
		}
		if in.Op == OpFst {
			addFP(in.Rd)
		} else {
			addInt(in.Rd)
		}
	case ClassBranch:
		addInt(in.Rs1)
		addInt(in.Rs2)
	case ClassJump:
		if in.Op == OpJr || in.Op == OpJalr {
			addInt(in.Rs1)
			if !in.HasImm {
				addInt(in.Rs2)
			}
		}
	case ClassFP:
		switch in.Op {
		case OpCvtif:
			addInt(in.Rs1)
		case OpFneg, OpFmov, OpCvtfi:
			addFP(in.Rs1)
		default: // fadd fsub fmul fdiv fcmp
			addFP(in.Rs1)
			addFP(in.Rs2)
		}
	case ClassSys:
		if in.Op == OpSyscall {
			addInt(RegSC)
			addInt(RegA0)
		}
	}
	return u
}

// Def returns the register written by in, if any.
func Def(in Inst) (RegRef, bool) {
	switch Classify(in.Op) {
	case ClassIntALU, ClassIntMul:
		if in.Rd == 0 {
			return RegRef{}, false
		}
		return RegRef{R: in.Rd}, true
	case ClassLoad:
		if in.Op == OpFld {
			return RegRef{R: in.Rd, FP: true}, true
		}
		if in.Rd == 0 {
			return RegRef{}, false
		}
		return RegRef{R: in.Rd}, true
	case ClassJump:
		switch in.Op {
		case OpJal:
			return RegRef{R: RegRA}, true
		case OpJalr:
			if in.Rd == 0 {
				return RegRef{}, false
			}
			return RegRef{R: in.Rd}, true
		}
	case ClassFP:
		switch in.Op {
		case OpFcmp, OpCvtfi:
			if in.Rd == 0 {
				return RegRef{}, false
			}
			return RegRef{R: in.Rd}, true
		default:
			return RegRef{R: in.Rd, FP: true}, true
		}
	case ClassSys:
		if in.Op == OpSyscall {
			// rand writes r3; model syscalls as defining r3 conservatively.
			return RegRef{R: RegA0}, true
		}
	}
	return RegRef{}, false
}
