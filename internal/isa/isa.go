// Package isa defines SVR32, the SPARC-flavored RISC target ISA simulated
// throughout this repository.
//
// SVR32 stands in for the paper's SPARC-V8/V9 target. It keeps the features
// the Facile description language exercises — an i-bit immediate format
// whose register form requires a zero "fill" field (the paper's add/fill
// example), a sethi-style upper-immediate instruction, compare-and-branch
// instructions, and a floating-point register file — while staying simple
// enough that complete workloads can be written with the bundled assembler.
//
// Instructions are 32 bits wide. There are 32 integer registers of 64 bits
// (r0 is hardwired to zero) and 32 floating-point registers holding
// float64. Memory is byte-addressed, little-endian.
//
// Formats:
//
//	RI:  op[31:26] rd[25:21] rs1[20:16] i[15]  i=1: simm15[14:0]
//	                                           i=0: fill[14:5]=0 rs2[4:0]
//	BR:  op[31:26] rs1[25:21] rs2[20:16] off16[15:0]   (word offset)
//	J:   op[31:26] off26[25:0]                         (word offset)
//	HI:  op[31:26] rd[25:21] imm21[20:0]               (rd = imm21<<11)
package isa

import "fmt"

// Opcode identifies an SVR32 instruction.
type Opcode uint8

// Opcode space. One opcode per instruction keeps the Facile pattern
// declarations (and the decoders generated from them) straightforward.
const (
	OpNop  Opcode = 0x00
	OpAdd  Opcode = 0x01
	OpSub  Opcode = 0x02
	OpAnd  Opcode = 0x03
	OpOr   Opcode = 0x04
	OpXor  Opcode = 0x05
	OpSll  Opcode = 0x06
	OpSrl  Opcode = 0x07
	OpSra  Opcode = 0x08
	OpSlt  Opcode = 0x09
	OpSltu Opcode = 0x0A
	OpMul  Opcode = 0x0B
	OpDiv  Opcode = 0x0C
	OpRem  Opcode = 0x0D

	OpSethi Opcode = 0x10

	OpLdb Opcode = 0x14
	OpLdw Opcode = 0x16
	OpLdd Opcode = 0x17
	OpStb Opcode = 0x18
	OpStw Opcode = 0x1A
	OpStd Opcode = 0x1B

	OpBeq  Opcode = 0x20
	OpBne  Opcode = 0x21
	OpBlt  Opcode = 0x22
	OpBge  Opcode = 0x23
	OpBltu Opcode = 0x24
	OpBgeu Opcode = 0x25
	OpJ    Opcode = 0x26
	OpJal  Opcode = 0x27
	OpJr   Opcode = 0x28
	OpJalr Opcode = 0x29

	OpSyscall Opcode = 0x2C
	OpHalt    Opcode = 0x2D

	OpFadd  Opcode = 0x30
	OpFsub  Opcode = 0x31
	OpFmul  Opcode = 0x32
	OpFdiv  Opcode = 0x33
	OpFcmp  Opcode = 0x35
	OpFld   Opcode = 0x36
	OpFst   Opcode = 0x37
	OpCvtif Opcode = 0x38
	OpCvtfi Opcode = 0x39
	OpFneg  Opcode = 0x3A
	OpFmov  Opcode = 0x3B

	// NumOpcodes bounds the opcode space (6 bits).
	NumOpcodes = 0x40
)

// Register-name conventions used by the assembler and disassembler.
const (
	RegZero = 0  // hardwired zero
	RegSC   = 2  // syscall code
	RegA0   = 3  // syscall / call argument 0
	RegSP   = 29 // stack pointer
	RegFP   = 30 // frame pointer
	RegRA   = 31 // return address (link register for jal/jalr)
)

// Syscall codes (placed in r2 before executing the syscall instruction).
const (
	SysExit      = 1 // terminate; status in r3
	SysPrintInt  = 2 // append decimal of r3 to the program output
	SysPrintChar = 3 // append byte r3 to the program output
	SysRand      = 4 // deterministic PRNG value into r3
)

// Inst is a decoded SVR32 instruction.
type Inst struct {
	Op     Opcode
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	Imm    int64 // sign-extended immediate / branch or jump word offset / sethi payload
	HasImm bool  // RI format: i-bit was set
	Raw    uint32
}

// Format classifies an opcode's encoding format.
type Format uint8

// Encoding formats.
const (
	FmtRI Format = iota
	FmtBR
	FmtJ
	FmtHI
	FmtNone // nop, halt, syscall (operand-free)
)

// OpcodeFormat reports the encoding format of op.
func OpcodeFormat(op Opcode) Format {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return FmtBR
	case OpJ, OpJal:
		return FmtJ
	case OpSethi:
		return FmtHI
	case OpNop, OpHalt, OpSyscall:
		return FmtNone
	default:
		return FmtRI
	}
}

// Valid reports whether op names a defined SVR32 instruction.
func (op Opcode) Valid() bool { return opNames[op] != "" }

var opNames = [NumOpcodes]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt",
	OpSltu: "sltu", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpSethi: "sethi",
	OpLdb:   "ldb", OpLdw: "ldw", OpLdd: "ldd",
	OpStb: "stb", OpStw: "stw", OpStd: "std",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJ: "j", OpJal: "jal", OpJr: "jr", OpJalr: "jalr",
	OpSyscall: "syscall", OpHalt: "halt",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv",
	OpFcmp: "fcmp", OpFld: "fld", OpFst: "fst",
	OpCvtif: "cvtif", OpCvtfi: "cvtfi", OpFneg: "fneg", OpFmov: "fmov",
}

// String returns the mnemonic for op.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%#02x", uint8(op))
}

// OpcodeByName maps a mnemonic to its opcode. ok is false for unknown names.
func OpcodeByName(name string) (op Opcode, ok bool) {
	for i, n := range opNames {
		if n == name && (n != "" || i == 0) {
			if n == "" {
				continue
			}
			return Opcode(i), true
		}
	}
	return 0, false
}

// signExtend sign-extends the low bits bits of v.
func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode decodes a raw instruction word.
// Invalid encodings decode to an instruction whose Op is not Valid, or to a
// well-formed Inst with a non-zero fill flagged via the error.
func Decode(raw uint32) (Inst, error) {
	op := Opcode(raw >> 26)
	in := Inst{Op: op, Raw: raw}
	if !op.Valid() {
		return in, fmt.Errorf("isa: invalid opcode %#02x in word %#08x", uint8(op), raw)
	}
	switch OpcodeFormat(op) {
	case FmtRI:
		in.Rd = uint8(raw >> 21 & 0x1F)
		in.Rs1 = uint8(raw >> 16 & 0x1F)
		if raw>>15&1 == 1 {
			in.HasImm = true
			in.Imm = signExtend(raw&0x7FFF, 15)
		} else {
			if raw>>5&0x3FF != 0 {
				return in, fmt.Errorf("isa: non-zero fill field in register-form word %#08x", raw)
			}
			in.Rs2 = uint8(raw & 0x1F)
		}
	case FmtBR:
		in.Rs1 = uint8(raw >> 21 & 0x1F)
		in.Rs2 = uint8(raw >> 16 & 0x1F)
		in.Imm = signExtend(raw&0xFFFF, 16)
	case FmtJ:
		in.Imm = signExtend(raw&0x3FFFFFF, 26)
	case FmtHI:
		in.Rd = uint8(raw >> 21 & 0x1F)
		in.Imm = signExtend(raw&0x1FFFFF, 21)
	case FmtNone:
		// no operands
	}
	return in, nil
}

// Encode encodes in into a raw instruction word. It is the inverse of Decode
// for valid instructions.
func Encode(in Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: cannot encode invalid opcode %#02x", uint8(in.Op))
	}
	raw := uint32(in.Op) << 26
	switch OpcodeFormat(in.Op) {
	case FmtRI:
		raw |= uint32(in.Rd&0x1F) << 21
		raw |= uint32(in.Rs1&0x1F) << 16
		if in.HasImm {
			if in.Imm < -(1<<14) || in.Imm >= 1<<14 {
				return 0, fmt.Errorf("isa: immediate %d out of simm15 range for %v", in.Imm, in.Op)
			}
			raw |= 1 << 15
			raw |= uint32(in.Imm) & 0x7FFF
		} else {
			raw |= uint32(in.Rs2 & 0x1F)
		}
	case FmtBR:
		raw |= uint32(in.Rs1&0x1F) << 21
		raw |= uint32(in.Rs2&0x1F) << 16
		if in.Imm < -(1<<15) || in.Imm >= 1<<15 {
			return 0, fmt.Errorf("isa: branch offset %d out of off16 range", in.Imm)
		}
		raw |= uint32(in.Imm) & 0xFFFF
	case FmtJ:
		if in.Imm < -(1<<25) || in.Imm >= 1<<25 {
			return 0, fmt.Errorf("isa: jump offset %d out of off26 range", in.Imm)
		}
		raw |= uint32(in.Imm) & 0x3FFFFFF
	case FmtHI:
		raw |= uint32(in.Rd&0x1F) << 21
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 {
			return 0, fmt.Errorf("isa: sethi payload %d out of simm21 range", in.Imm)
		}
		raw |= uint32(in.Imm) & 0x1FFFFF
	case FmtNone:
	}
	return raw, nil
}

// Class groups opcodes by the functional unit / pipeline treatment they
// receive in the micro-architecture models.
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul // mul/div/rem: long-latency integer unit
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional control transfer
	ClassFP     // floating-point arithmetic
	ClassSys    // syscall / halt
)

// Classify reports the instruction class of op.
func Classify(op Opcode) Class {
	switch op {
	case OpNop:
		return ClassNop
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu, OpSethi:
		return ClassIntALU
	case OpMul, OpDiv, OpRem:
		return ClassIntMul
	case OpLdb, OpLdw, OpLdd, OpFld:
		return ClassLoad
	case OpStb, OpStw, OpStd, OpFst:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return ClassBranch
	case OpJ, OpJal, OpJr, OpJalr:
		return ClassJump
	case OpFadd, OpFsub, OpFmul, OpFdiv, OpFcmp, OpCvtif, OpCvtfi, OpFneg, OpFmov:
		return ClassFP
	default:
		return ClassSys
	}
}

// IsControl reports whether op can change the program counter.
func IsControl(op Opcode) bool {
	c := Classify(op)
	return c == ClassBranch || c == ClassJump
}

// MemBytes reports the access width in bytes for memory instructions,
// and 0 for all others.
func MemBytes(op Opcode) int {
	switch op {
	case OpLdb, OpStb:
		return 1
	case OpLdw, OpStw:
		return 4
	case OpLdd, OpStd, OpFld, OpFst:
		return 8
	}
	return 0
}

// Disasm renders a decoded instruction as assembler text. pc is the address
// of the instruction, used to resolve branch and jump targets.
func Disasm(in Inst, pc uint64) string {
	switch OpcodeFormat(in.Op) {
	case FmtRI:
		switch in.Op {
		case OpJr, OpJalr:
			if in.HasImm {
				return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
			}
			return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
		}
		if in.HasImm {
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		}
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FmtBR:
		return fmt.Sprintf("%s r%d, r%d, %#x", in.Op, in.Rs1, in.Rs2, BranchTarget(in, pc))
	case FmtJ:
		return fmt.Sprintf("%s %#x", in.Op, BranchTarget(in, pc))
	case FmtHI:
		return fmt.Sprintf("%s r%d, %#x", in.Op, in.Rd, in.Imm)
	default:
		return in.Op.String()
	}
}

// BranchTarget computes the target address of a branch or jump at pc.
func BranchTarget(in Inst, pc uint64) uint64 {
	return pc + 4 + uint64(in.Imm)*4
}
