package asm

import (
	"strings"
	"testing"

	"facile/internal/arch/funcsim"
	"facile/internal/isa"
	"facile/internal/isa/loader"
)

func mustAsm(t *testing.T, src string) *loader.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string) (*funcsim.State, funcsim.Result) {
	t.Helper()
	p := mustAsm(t, src)
	st, res, err := funcsim.Run(p, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st, res
}

func TestCountdownLoop(t *testing.T) {
	st, _ := run(t, `
        .text
start:  li   r1, 10
        li   r4, 0
loop:   beq  r1, r0, done
        add  r4, r4, r1
        sub  r1, r1, 1
        b    loop
done:   halt
`)
	if st.R[4] != 55 {
		t.Fatalf("sum = %d, want 55", st.R[4])
	}
}

func TestLiLargeConstant(t *testing.T) {
	st, _ := run(t, `
start:  li r1, 0x12345678
        li r2, -42
        halt
`)
	if st.R[1] != 0x12345678 {
		t.Fatalf("r1 = %#x", st.R[1])
	}
	if st.R[2] != -42 {
		t.Fatalf("r2 = %d", st.R[2])
	}
}

func TestDataDirectivesAndLoads(t *testing.T) {
	st, _ := run(t, `
        .text
start:  la   r1, tab
        ldd  r2, r1, 0
        ldd  r3, r1, 8
        ldw  r5, r1, 16
        la   r6, msg
        ldb  r7, r6, 1
        halt
        .data
tab:    .dword 100, -7
        .word  1234
msg:    .asciiz "hi"
`)
	if st.R[2] != 100 || st.R[3] != -7 || st.R[5] != 1234 {
		t.Fatalf("loads: r2=%d r3=%d r5=%d", st.R[2], st.R[3], st.R[5])
	}
	if st.R[7] != 'i' {
		t.Fatalf("ldb = %d, want 'i'", st.R[7])
	}
}

func TestStoresRoundTrip(t *testing.T) {
	st, _ := run(t, `
start:  la   r1, buf
        li   r2, 777
        std  r2, r1, 0
        ldd  r3, r1, 0
        stb  r2, r1, 8
        ldb  r4, r1, 8
        stw  r2, r1, 16
        ldw  r5, r1, 16
        halt
        .data
buf:    .space 32
`)
	if st.R[3] != 777 || st.R[4] != int64(int8(uint8(777&0xFF))) || st.R[5] != 777 {
		t.Fatalf("stores: r3=%d r4=%d r5=%d", st.R[3], st.R[4], st.R[5])
	}
}

func TestCallRet(t *testing.T) {
	st, _ := run(t, `
start:  li   r3, 5
        call double
        call double
        halt
double: add  r3, r3, r3
        ret
`)
	if st.R[3] != 20 {
		t.Fatalf("r3 = %d, want 20", st.R[3])
	}
}

func TestJalrIndirect(t *testing.T) {
	st, _ := run(t, `
start:  la   r1, fn
        jalr r31, r1, 0
        halt
fn:     li   r4, 99
        ret
`)
	if st.R[4] != 99 {
		t.Fatalf("r4 = %d, want 99", st.R[4])
	}
}

func TestSyscallsOutput(t *testing.T) {
	_, res := run(t, `
start:  li r2, 2
        li r3, 42
        syscall
        li r2, 3
        li r3, '!'
        syscall
        li r2, 1
        li r3, 7
        syscall
`)
	if string(res.Output) != "42\n!" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.ExitStatus != 7 {
		t.Fatalf("exit = %d", res.ExitStatus)
	}
}

func TestFloatingPoint(t *testing.T) {
	st, _ := run(t, `
start:  li    r1, 3
        cvtif f1, r1
        li    r1, 4
        cvtif f2, r1
        fmul  f3, f1, f2
        fadd  f3, f3, f2      ; 16
        fdiv  f4, f3, f1      ; 16/3
        fcmp  r5, f3, f1
        cvtfi r6, f3
        fneg  f5, f3
        cvtfi r7, f5
        halt
`)
	if st.R[6] != 16 {
		t.Fatalf("cvtfi = %d, want 16", st.R[6])
	}
	if st.R[5] != 1 {
		t.Fatalf("fcmp = %d, want 1", st.R[5])
	}
	if st.R[7] != -16 {
		t.Fatalf("fneg/cvtfi = %d, want -16", st.R[7])
	}
}

func TestFldFst(t *testing.T) {
	st, _ := run(t, `
start:  la   r1, vals
        fld  f1, r1, 0
        fld  f2, r1, 8
        fadd f3, f1, f2
        la   r2, out
        fst  f3, r2, 0
        fld  f4, r2, 0
        cvtfi r5, f4
        halt
        .data
vals:   .dword 0x4008000000000000   ; 3.0
        .dword 0x4010000000000000   ; 4.0
out:    .space 8
`)
	if st.R[5] != 7 {
		t.Fatalf("fld/fst sum = %d, want 7", st.R[5])
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"start: bogus r1, r2, r3",
		"start: add r1, r2",          // arity
		"start: add r99, r2, r3",     // bad register
		"start: beq r1, r2, nowhere", // unknown label
		"dup: halt\ndup: halt",       // duplicate label
		"start: li r1, 0x123456789",  // li out of range
		".data\nx: .space -1",
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("Assemble accepted %q", src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("error %v lacks line info", err)
		}
	}
}

func TestCommentsAndLiterals(t *testing.T) {
	st, _ := run(t, `
; full line comment
start:  li r1, ';'   ; trailing comment with quote
        li r2, '#'
        halt         # hash comment
`)
	if st.R[1] != ';' || st.R[2] != '#' {
		t.Fatalf("char literals: r1=%d r2=%d", st.R[1], st.R[2])
	}
}

func TestEntrySymbol(t *testing.T) {
	p := mustAsm(t, `
        nop
main:   halt
`)
	if p.Entry != loader.TextBase+4 {
		t.Fatalf("entry = %#x, want %#x", p.Entry, loader.TextBase+4)
	}
	if _, ok := p.Symbol("main"); !ok {
		t.Fatal("main symbol missing")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := mustAsm(t, `
start:  add r1, r2, r3
        beq r1, r0, start
        halt
`)
	lines := p.Disassemble()
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[0], "add r1, r2, r3") {
		t.Fatalf("line 0 = %q", lines[0])
	}
}

func TestFetchBounds(t *testing.T) {
	p := mustAsm(t, "start: halt")
	if _, err := p.Fetch(loader.TextBase + 100); err == nil {
		t.Fatal("fetch past text succeeded")
	}
	if _, err := p.Fetch(loader.TextBase + 1); err == nil {
		t.Fatal("misaligned fetch succeeded")
	}
	in, err := p.Fetch(loader.TextBase)
	if err != nil || in.Op != isa.OpHalt {
		t.Fatalf("fetch = %v, %v", in, err)
	}
}

func TestPseudoOps(t *testing.T) {
	st, _ := run(t, `
start:  li   r1, 5
        inc  r1
        inc  r1
        dec  r1          ; 6
        not  r2, r1      ; ^6 = -7
        neg  r3, r1      ; -6
        mov  r4, r3
        halt
`)
	if st.R[1] != 6 || st.R[2] != ^int64(6) || st.R[3] != -6 || st.R[4] != -6 {
		t.Fatalf("r1=%d r2=%d r3=%d r4=%d", st.R[1], st.R[2], st.R[3], st.R[4])
	}
}

func TestDataLabelValues(t *testing.T) {
	// .dword of a label stores its address; code loads and jumps to it.
	st, _ := run(t, `
start:  la   r1, vec
        ldd  r2, r1, 0
        jalr r31, r2, 0
        halt
fn:     li   r4, 123
        ret
        .data
vec:    .dword fn
`)
	if st.R[4] != 123 {
		t.Fatalf("r4=%d", st.R[4])
	}
}

func TestWord32Directive(t *testing.T) {
	st, _ := run(t, `
start:  la  r1, w
        ldw r2, r1, 0     ; sign-extended 32-bit load
        halt
        .data
w:      .word -5
`)
	if st.R[2] != -5 {
		t.Fatalf("r2=%d", st.R[2])
	}
}

func TestMisalignedJumpTargetRejected(t *testing.T) {
	if _, err := Assemble("bad", "start: b 0x10001\n"); err == nil {
		t.Fatal("accepted misaligned jump target")
	}
}

func TestBranchOutOfRangeRejected(t *testing.T) {
	// A branch to a target beyond off16 range must be a clean error.
	src := "start: beq r0, r0, far\n"
	for i := 0; i < 40000; i++ {
		src += "        nop\n"
	}
	src += "far:    halt\n"
	if _, err := Assemble("bad", src); err == nil {
		t.Fatal("accepted out-of-range branch")
	}
}

func TestSymbolsInOperands(t *testing.T) {
	// Data labels are usable as immediate operands via li (la is sugar).
	st, _ := run(t, `
start:  li   r1, buf
        la   r2, buf
        sub  r3, r1, r2
        halt
        .data
buf:    .space 8
`)
	if st.R[3] != 0 {
		t.Fatalf("li label != la label (diff %d)", st.R[3])
	}
}
