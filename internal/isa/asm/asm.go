// Package asm implements a two-pass assembler for the SVR32 ISA.
//
// Syntax, one statement per line (comments start with ';' or '#'):
//
//	        .text
//	start:  li    r1, 100          ; pseudo: load 32-bit constant
//	loop:   beq   r1, r0, done
//	        sub   r1, r1, 1
//	        b     loop             ; pseudo for j
//	done:   halt
//	        .data
//	tab:    .dword 1, 2, 3
//	msg:    .asciiz "hi"
//	buf:    .space 64
//
// Registers are written rN (integer) or fN (floating point); both map to
// the same 5-bit register field. Immediates are decimal, 0x-hex, or
// character literals. Branch and jump operands may be labels or absolute
// addresses. Pseudo-instructions: li, la, mov, fpush?, b, call, ret, inc,
// dec (see pseudoSize).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"facile/internal/isa"
	"facile/internal/isa/loader"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

type stmt struct {
	line    int
	label   string
	mnem    string
	args    []string
	sec     section
	textOff int // word offset in text (instructions)
	dataOff int // byte offset in data (directives)
}

// Assemble assembles src into a loadable program named name.
func Assemble(name, src string) (*loader.Program, error) {
	a := &assembler{
		symbols: make(map[string]uint64),
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	entry := loader.TextBase
	if e, ok := a.symbols["start"]; ok {
		entry = e
	} else if e, ok := a.symbols["main"]; ok {
		entry = e
	}
	return &loader.Program{
		Name:    name,
		Entry:   entry,
		Text:    a.text,
		Data:    a.data,
		Symbols: a.symbols,
	}, nil
}

type assembler struct {
	stmts   []stmt
	symbols map[string]uint64
	text    []uint32
	data    []byte
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// pass1 tokenizes, assigns offsets, and records label addresses.
func (a *assembler) pass1(src string) error {
	sec := secText
	textOff, dataOff := 0, 0
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := raw
		if j := strings.IndexAny(s, ";#"); j >= 0 {
			// Keep ';'/'#' inside string or char literals.
			if k := strings.IndexAny(s, `"'`); k < 0 || j < k {
				s = s[:j]
			} else {
				s = stripCommentOutsideQuotes(s)
			}
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		var label string
		if j := strings.Index(s, ":"); j >= 0 && isLabelPrefix(s[:j]) {
			label = s[:j]
			s = strings.TrimSpace(s[j+1:])
		}
		if label != "" {
			if _, dup := a.symbols[label]; dup {
				return errf(line, "duplicate label %q", label)
			}
			if sec == secText {
				a.symbols[label] = loader.TextBase + uint64(textOff)*4
			} else {
				a.symbols[label] = loader.DataBase + uint64(dataOff)
			}
		}
		if s == "" {
			continue
		}
		mnem, rest := splitMnemonic(s)
		st := stmt{line: line, label: label, mnem: mnem, args: splitArgs(rest), sec: sec, textOff: textOff, dataOff: dataOff}
		switch mnem {
		case ".text":
			sec = secText
			continue
		case ".data":
			sec = secData
			continue
		}
		st.sec = sec
		if sec == secText {
			n, err := instWords(mnem, st.args, line)
			if err != nil {
				return err
			}
			st.textOff = textOff
			textOff += n
		} else {
			n, err := dataBytes(mnem, st.args, line)
			if err != nil {
				return err
			}
			st.dataOff = dataOff
			dataOff += n
		}
		a.stmts = append(a.stmts, st)
	}
	a.text = make([]uint32, textOff)
	a.data = make([]byte, dataOff)
	return nil
}

func stripCommentOutsideQuotes(s string) string {
	inStr, inChr := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' && !inChr:
			inStr = !inStr
		case c == '\'' && !inStr:
			inChr = !inChr
		case (c == ';' || c == '#') && !inStr && !inChr:
			return s[:i]
		}
	}
	return s
}

func isLabelPrefix(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitMnemonic(s string) (mnem, rest string) {
	j := strings.IndexAny(s, " \t")
	if j < 0 {
		return strings.ToLower(s), ""
	}
	return strings.ToLower(s[:j]), strings.TrimSpace(s[j+1:])
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	var args []string
	depth := 0
	inStr, inChr := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' && !inChr:
			inStr = !inStr
		case c == '\'' && !inStr:
			inChr = !inChr
		case c == '(' && !inStr && !inChr:
			depth++
		case c == ')' && !inStr && !inChr:
			depth--
		case c == ',' && depth == 0 && !inStr && !inChr:
			args = append(args, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args
}

// instWords reports how many instruction words a mnemonic expands to.
func instWords(mnem string, args []string, line int) (int, error) {
	switch mnem {
	case "li", "la":
		return 2, nil
	case "mov", "fmovr", "b", "call", "ret", "inc", "dec", "not", "neg":
		return 1, nil
	}
	if _, ok := isa.OpcodeByName(mnem); ok {
		return 1, nil
	}
	return 0, errf(line, "unknown mnemonic %q", mnem)
}

func dataBytes(mnem string, args []string, line int) (int, error) {
	switch mnem {
	case ".dword":
		return 8 * len(args), nil
	case ".word":
		return 4 * len(args), nil
	case ".byte":
		return len(args), nil
	case ".space":
		n, err := parseInt(args[0])
		if err != nil || n < 0 {
			return 0, errf(line, "bad .space size %q", args[0])
		}
		return int(n), nil
	case ".asciiz":
		s, err := strconv.Unquote(args[0])
		if err != nil {
			return 0, errf(line, "bad string %q: %v", args[0], err)
		}
		return len(s) + 1, nil
	case ".align":
		// alignment handled as padding to the next multiple inside pass1
		// would complicate offsets; keep data 8-aligned by construction and
		// treat .align as a no-op validator.
		return 0, nil
	}
	return 0, errf(line, "unknown data directive %q", mnem)
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		r, err := strconv.Unquote(s)
		if err != nil || len(r) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(r[0]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

// pass2 encodes statements into the text and data images.
func (a *assembler) pass2() error {
	for _, st := range a.stmts {
		var err error
		if st.sec == secText {
			err = a.encodeInst(st)
		} else {
			err = a.encodeData(st)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) encodeData(st stmt) error {
	off := st.dataOff
	switch st.mnem {
	case ".dword":
		for _, arg := range st.args {
			v, err := a.dataValue(arg, st.line)
			if err != nil {
				return err
			}
			for i := uint(0); i < 8; i++ {
				a.data[off] = byte(uint64(v) >> (8 * i))
				off++
			}
		}
	case ".word":
		for _, arg := range st.args {
			v, err := a.dataValue(arg, st.line)
			if err != nil {
				return err
			}
			for i := uint(0); i < 4; i++ {
				a.data[off] = byte(uint64(v) >> (8 * i))
				off++
			}
		}
	case ".byte":
		for _, arg := range st.args {
			v, err := a.dataValue(arg, st.line)
			if err != nil {
				return err
			}
			a.data[off] = byte(v)
			off++
		}
	case ".asciiz":
		s, err := strconv.Unquote(st.args[0])
		if err != nil {
			return errf(st.line, "bad string: %v", err)
		}
		copy(a.data[off:], s)
	case ".space", ".align":
		// zero-initialized / no-op
	}
	return nil
}

func (a *assembler) dataValue(arg string, line int) (int64, error) {
	if addr, ok := a.symbols[arg]; ok {
		return int64(addr), nil
	}
	v, err := parseInt(arg)
	if err != nil {
		return 0, errf(line, "bad value %q", arg)
	}
	return v, nil
}

func (a *assembler) put(off int, w uint32) { a.text[off] = w }

func (a *assembler) encodeInst(st stmt) error {
	pc := loader.TextBase + uint64(st.textOff)*4
	enc := func(in isa.Inst) error {
		w, err := isa.Encode(in)
		if err != nil {
			return errf(st.line, "%v", err)
		}
		a.put(st.textOff, w)
		return nil
	}
	// Pseudo-instructions first.
	switch st.mnem {
	case "li", "la":
		if len(st.args) != 2 {
			return errf(st.line, "%s needs rd, value", st.mnem)
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return err
		}
		var v int64
		if st.mnem == "la" {
			addr, ok := a.symbols[st.args[1]]
			if !ok {
				return errf(st.line, "unknown label %q", st.args[1])
			}
			v = int64(addr)
		} else {
			v, err = a.operandValue(st.args[1], st.line)
			if err != nil {
				return err
			}
		}
		if v < -(1<<31) || v >= 1<<31 {
			return errf(st.line, "li/la constant %d does not fit in signed 32 bits", v)
		}
		u := uint32(v)
		hi := isa.Inst{Op: isa.OpSethi, Rd: rd, Imm: int64(int32(u) >> 11)}
		lo := isa.Inst{Op: isa.OpOr, Rd: rd, Rs1: rd, HasImm: true, Imm: int64(u & 0x7FF)}
		w1, err := isa.Encode(hi)
		if err != nil {
			return errf(st.line, "%v", err)
		}
		w2, err := isa.Encode(lo)
		if err != nil {
			return errf(st.line, "%v", err)
		}
		a.put(st.textOff, w1)
		a.put(st.textOff+1, w2)
		return nil
	case "mov":
		rd, err1 := a.reg(st.args[0], st.line)
		rs, err2 := a.reg(st.args[1], st.line)
		if err1 != nil || err2 != nil {
			return errf(st.line, "mov needs rd, rs")
		}
		return enc(isa.Inst{Op: isa.OpAdd, Rd: rd, Rs1: rs, HasImm: true, Imm: 0})
	case "fmovr":
		rd, err1 := a.reg(st.args[0], st.line)
		rs, err2 := a.reg(st.args[1], st.line)
		if err1 != nil || err2 != nil {
			return errf(st.line, "fmovr needs fd, fs")
		}
		return enc(isa.Inst{Op: isa.OpFmov, Rd: rd, Rs1: rs})
	case "b":
		off, err := a.jumpOffset(st.args[0], pc, st.line)
		if err != nil {
			return err
		}
		return enc(isa.Inst{Op: isa.OpJ, Imm: off})
	case "call":
		off, err := a.jumpOffset(st.args[0], pc, st.line)
		if err != nil {
			return err
		}
		return enc(isa.Inst{Op: isa.OpJal, Imm: off})
	case "ret":
		return enc(isa.Inst{Op: isa.OpJr, Rs1: isa.RegRA, HasImm: true, Imm: 0})
	case "inc":
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return err
		}
		return enc(isa.Inst{Op: isa.OpAdd, Rd: rd, Rs1: rd, HasImm: true, Imm: 1})
	case "dec":
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return err
		}
		return enc(isa.Inst{Op: isa.OpSub, Rd: rd, Rs1: rd, HasImm: true, Imm: 1})
	case "not":
		rd, err1 := a.reg(st.args[0], st.line)
		rs, err2 := a.reg(st.args[1], st.line)
		if err1 != nil || err2 != nil {
			return errf(st.line, "not needs rd, rs")
		}
		return enc(isa.Inst{Op: isa.OpXor, Rd: rd, Rs1: rs, HasImm: true, Imm: -1})
	case "neg":
		rd, err1 := a.reg(st.args[0], st.line)
		rs, err2 := a.reg(st.args[1], st.line)
		if err1 != nil || err2 != nil {
			return errf(st.line, "neg needs rd, rs")
		}
		return enc(isa.Inst{Op: isa.OpSub, Rd: rd, Rs2: rs})
	}

	op, ok := isa.OpcodeByName(st.mnem)
	if !ok {
		return errf(st.line, "unknown mnemonic %q", st.mnem)
	}
	switch isa.OpcodeFormat(op) {
	case isa.FmtNone:
		if len(st.args) != 0 {
			return errf(st.line, "%s takes no operands", op)
		}
		return enc(isa.Inst{Op: op})
	case isa.FmtHI:
		if len(st.args) != 2 {
			return errf(st.line, "%s needs rd, imm21", op)
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return err
		}
		v, err := a.operandValue(st.args[1], st.line)
		if err != nil {
			return err
		}
		return enc(isa.Inst{Op: op, Rd: rd, Imm: v})
	case isa.FmtJ:
		if len(st.args) != 1 {
			return errf(st.line, "%s needs a target", op)
		}
		off, err := a.jumpOffset(st.args[0], pc, st.line)
		if err != nil {
			return err
		}
		return enc(isa.Inst{Op: op, Imm: off})
	case isa.FmtBR:
		if len(st.args) != 3 {
			return errf(st.line, "%s needs rs1, rs2, target", op)
		}
		rs1, err := a.reg(st.args[0], st.line)
		if err != nil {
			return err
		}
		rs2, err := a.reg(st.args[1], st.line)
		if err != nil {
			return err
		}
		off, err := a.jumpOffset(st.args[2], pc, st.line)
		if err != nil {
			return err
		}
		return enc(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	case isa.FmtRI:
		return a.encodeRI(op, st, enc)
	}
	return errf(st.line, "unhandled format for %s", op)
}

func (a *assembler) encodeRI(op isa.Opcode, st stmt, enc func(isa.Inst) error) error {
	// Unary FP forms: fneg/fmov/cvtif/cvtfi take rd, rs1.
	switch op {
	case isa.OpFneg, isa.OpFmov, isa.OpCvtif, isa.OpCvtfi:
		if len(st.args) != 2 {
			return errf(st.line, "%s needs rd, rs", op)
		}
		rd, err := a.reg(st.args[0], st.line)
		if err != nil {
			return err
		}
		rs, err := a.reg(st.args[1], st.line)
		if err != nil {
			return err
		}
		return enc(isa.Inst{Op: op, Rd: rd, Rs1: rs})
	}
	if len(st.args) != 3 {
		return errf(st.line, "%s needs rd, rs1, rs2|imm", op)
	}
	rd, err := a.reg(st.args[0], st.line)
	if err != nil {
		return err
	}
	rs1, err := a.reg(st.args[1], st.line)
	if err != nil {
		return err
	}
	if rs2, err2 := a.reg(st.args[2], st.line); err2 == nil {
		return enc(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	}
	v, err := a.operandValue(st.args[2], st.line)
	if err != nil {
		return err
	}
	return enc(isa.Inst{Op: op, Rd: rd, Rs1: rs1, HasImm: true, Imm: v})
}

func (a *assembler) reg(s string, line int) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'f') {
		return 0, errf(line, "bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, errf(line, "bad register %q", s)
	}
	return uint8(n), nil
}

func (a *assembler) operandValue(s string, line int) (int64, error) {
	if addr, ok := a.symbols[s]; ok {
		return int64(addr), nil
	}
	v, err := parseInt(s)
	if err != nil {
		return 0, errf(line, "bad operand %q", s)
	}
	return v, nil
}

// jumpOffset resolves a label or absolute address into a signed word offset
// relative to pc+4.
func (a *assembler) jumpOffset(s string, pc uint64, line int) (int64, error) {
	var target uint64
	if addr, ok := a.symbols[s]; ok {
		target = addr
	} else {
		v, err := parseInt(s)
		if err != nil {
			return 0, errf(line, "unknown target %q", s)
		}
		target = uint64(v)
	}
	diff := int64(target) - int64(pc+4)
	if diff%4 != 0 {
		return 0, errf(line, "misaligned target %q", s)
	}
	return diff / 4, nil
}
