// Package core is the public facade of the Facile implementation: it ties
// together the parser, semantic checker, compiler, and the
// fast-forwarding runtime.
//
// Typical use:
//
//	sim, err := core.CompileSource(src, core.Options{})
//	m := sim.NewMachine(text, rt.Options{Memoize: true})
//	m.RegisterExtern("dcache", ...)
//	m.SetIntArgs(entryPC)
//	m.SetStop(func(*rt.Machine) bool { return halted })
//	err = m.Run(0)
package core

import (
	"facile/internal/lang/compile"
	"facile/internal/lang/ir"
	"facile/internal/lang/parser"
	"facile/internal/lang/types"
	"facile/internal/rt"
)

// Options controls compilation.
type Options struct {
	// LiftLiveOnly enables the liveness optimization on write-throughs of
	// run-time static values (paper §6.3, item 3).
	LiftLiveOnly bool

	// NoOptimize disables constant folding / copy propagation / dead-code
	// elimination (paper §6.3, item 5), for ablations.
	NoOptimize bool
}

// Simulator is a compiled Facile simulator description.
type Simulator struct {
	Checked *types.Checked
	Prog    *ir.Program
}

// CompileSource parses, checks, and compiles a Facile program.
func CompileSource(src string, opt Options) (*Simulator, error) {
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	checked, err := types.Check(astProg)
	if err != nil {
		return nil, err
	}
	p, err := compile.Compile(checked, compile.Options{
		LiftLiveOnly: opt.LiftLiveOnly,
		NoOptimize:   opt.NoOptimize,
	})
	if err != nil {
		return nil, err
	}
	return &Simulator{Checked: checked, Prog: p}, nil
}

// NewMachine instantiates a runtime machine for the compiled simulator.
func (s *Simulator) NewMachine(text rt.TextSource, opt rt.Options) *rt.Machine {
	return rt.New(s.Prog, text, opt)
}

// nullText is used by simulators that never fetch.
type nullText struct{}

func (nullText) FetchWord(uint64) uint32 { return 0 }

// NullText returns a TextSource that reads all-zero words, for Facile
// programs that do not decode target instructions.
func NullText() rt.TextSource { return nullText{} }
