package core

import (
	"strings"
	"testing"

	"facile/internal/rt"
)

func TestCompileSourceErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"fun main( {", "expected"},        // syntax
		{"val x;", "must define fun main"}, // semantic
		{"fun f(x){return f(x);} fun main(p){f(p); set_args(p);}", "recursion"},
		{"extern e(0);\nfun main(q: queue(2,1), p){q?push(e()); set_args(q,p);}", "dynamic value"},
	}
	for _, c := range cases {
		_, err := CompileSource(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("CompileSource(%q) error = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestEndToEndFacade(t *testing.T) {
	sim, err := CompileSource(`
val n = 0;
fun main(x) { n = n + x; set_args((x + 1) % 3); }
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(NullText(), rt.Options{Memoize: true})
	if err := m.SetIntArgs(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(30); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Global("n"); v != 30 { // cycle 1,2,0 sums to 1 per step avg
		t.Fatalf("n = %d, want 30", v)
	}
}

func TestNullText(t *testing.T) {
	if NullText().FetchWord(12345) != 0 {
		t.Fatal("NullText must read zero")
	}
}

func TestCompileOptionsPropagate(t *testing.T) {
	src := `
val g = 0;
extern e(1);
fun main(x) { g = x; e(x); set_args(x); }
`
	a, err := CompileSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileSource(src, Options{LiftLiveOnly: true, NoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Prog.NumStatic+a.Prog.NumDynamic >= b.Prog.NumStatic+b.Prog.NumDynamic {
		t.Fatal("NoOptimize should yield more instructions")
	}
}
