// Package ooo implements the conventional out-of-order timing simulator
// that plays the role of SimpleScalar in the paper's evaluation: a detailed,
// cycle-by-cycle model of an R10000-like core with branch prediction,
// speculative fetch, register renaming (modeled as producer tracking over
// the window), non-blocking caches, and in-order commit — with no
// memoization whatsoever.
//
// Functional execution happens in order at fetch/decode time against the
// architectural state (the classic "functional core + timing model" split
// SimpleScalar uses), so architectural results always match the funcsim
// golden model; mispredicted-path work is modeled as fetch stall until the
// branch resolves plus a redirect penalty.
package ooo

import (
	"facile/internal/arch/bpred"
	"facile/internal/arch/cache"
	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa"
	"facile/internal/isa/loader"
	"facile/internal/obs"
)

type entryState uint8

const (
	stWaiting entryState = iota
	stExecuting
	stDone
)

type entry struct {
	pc        uint64
	in        isa.Inst
	cls       isa.Class
	fu        uarch.FU
	state     entryState
	doneAt    uint64
	addr      uint64 // effective address for memory ops
	actualNPC uint64
	predNPC   uint64
	mispred   bool
	uses      []isa.RegRef
	def       isa.RegRef
	hasDef    bool
	isSync    bool // syscall/halt: serializes the pipeline
}

// Simulator is a conventional out-of-order simulator instance.
type Simulator struct {
	cfg  uarch.Config
	prog *loader.Program
	st   *funcsim.State
	pred *bpred.Predictor
	mem  *cache.Hierarchy

	win       []entry
	fetchPC   uint64
	stalled   bool   // fetch stalled on an unresolved mispredicted branch
	resumeAt  uint64 // cycle at which fetch may resume (redirect / icache)
	serialize bool   // a syscall/halt is in flight
	cycle     uint64
	committed uint64
	haltSeen  bool

	obsRec  *obs.Recorder
	sampler *obs.Sampler
}

// SetObs attaches an observability recorder: the Run loop emits a sampled
// time series of committed instructions and IPC on the recorder's track.
// Every instruction here is slow-simulated (ooo has no memoization), so the
// slow/fast split is all-slow.
func (s *Simulator) SetObs(rec *obs.Recorder, sampleEvery uint64) {
	s.obsRec = rec
	s.sampler = obs.NewSampler(rec, sampleEvery, func() obs.Sample {
		return obs.Sample{
			Cycles:    s.cycle,
			Insts:     s.committed,
			SlowInsts: s.committed,
		}
	})
}

// New builds a simulator for prog with configuration cfg.
func New(cfg uarch.Config, prog *loader.Program) *Simulator {
	s := &Simulator{
		cfg:     cfg,
		prog:    prog,
		st:      funcsim.NewState(prog),
		pred:    bpred.New(cfg.Pred),
		mem:     cache.New(cfg.Mem),
		win:     make([]entry, 0, cfg.Window),
		fetchPC: prog.Entry,
	}
	return s
}

// State exposes the architectural state (for validation).
func (s *Simulator) State() *funcsim.State { return s.st }

// Cycle reports the current simulated cycle.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// Halted reports whether the program's halt has committed; a subsequent
// Run is a no-op.
func (s *Simulator) Halted() bool { return s.haltSeen }

// Run simulates until the program halts or maxInsts instructions commit
// (maxInsts <= 0 means unlimited).
func (s *Simulator) Run(maxInsts uint64) uarch.Result {
	s.obsRec.Begin("ooo.run")
	defer s.obsRec.End("ooo.run")
	defer s.sampler.Flush()
	for !s.haltSeen {
		s.sampler.Tick(s.committed)
		if maxInsts > 0 && s.committed >= maxInsts {
			break
		}
		s.step()
	}
	return uarch.Result{
		Cycles:        s.cycle,
		Insts:         s.committed,
		ExitStatus:    s.st.ExitStatus,
		Output:        s.st.Output,
		BranchLookups: s.pred.Lookups,
		Mispredicts:   s.pred.Mispredict,
		L1DMisses:     s.mem.L1D.Stats.Misses,
		L2Misses:      s.mem.L2.Stats.Misses,
	}
}

// step advances the simulation by one cycle: commit, writeback, issue,
// fetch/dispatch (processed backwards so a result is visible to younger
// stages one cycle later).
func (s *Simulator) step() {
	s.commit()
	if s.haltSeen {
		return
	}
	if s.stalled && len(s.win) == 0 {
		// Runaway fetch drained the pipeline with no resolving branch:
		// nothing can ever commit again. Treat as termination.
		s.haltSeen = true
		return
	}
	s.writeback()
	s.issue()
	s.fetch()
	s.cycle++
}

func (s *Simulator) commit() {
	n := 0
	for n < s.cfg.CommitWidth && len(s.win) > 0 && s.win[0].state == stDone {
		e := &s.win[0]
		if e.cls == isa.ClassBranch || e.cls == isa.ClassJump {
			s.pred.Update(e.in, e.pc, e.actualNPC, e.mispred)
		}
		if e.isSync {
			s.serialize = false
			if e.in.Op == isa.OpHalt || s.st.Halted {
				s.haltSeen = true
			}
		}
		s.committed++
		copy(s.win, s.win[1:])
		s.win = s.win[:len(s.win)-1]
		n++
		if s.haltSeen {
			return
		}
	}
}

func (s *Simulator) writeback() {
	for i := range s.win {
		e := &s.win[i]
		if e.state == stExecuting && e.doneAt <= s.cycle {
			e.state = stDone
			if e.mispred {
				// branch resolved: redirect fetch down the correct path
				at := s.cycle + s.cfg.MispredictPenalty
				if at > s.resumeAt {
					s.resumeAt = at
				}
				s.stalled = false
			}
		}
	}
}

// ready reports whether every source operand of win[i] has been produced.
// A conventional simulator scans the window (this is the per-cycle cost
// that memoization later removes).
func (s *Simulator) ready(i int) bool {
	e := &s.win[i]
	for _, u := range e.uses {
		for j := i - 1; j >= 0; j-- {
			p := &s.win[j]
			if p.hasDef && p.def == u {
				if p.state != stDone {
					return false
				}
				break
			}
		}
	}
	return true
}

// memOrderOK enforces conservative memory disambiguation: a load may not
// issue before every older store has executed; stores stay ordered among
// themselves.
func (s *Simulator) memOrderOK(i int) bool {
	e := &s.win[i]
	for j := 0; j < i; j++ {
		p := &s.win[j]
		if p.cls == isa.ClassStore && p.state != stDone {
			return false
		}
		if e.cls == isa.ClassStore && p.cls == isa.ClassLoad && p.state == stWaiting {
			// keep stores behind un-issued older loads as well
			return false
		}
	}
	return true
}

func (s *Simulator) issue() {
	var fuUsed [uarch.NumFU]int
	fuAvail := [uarch.NumFU]int{
		uarch.FUIntALU: s.cfg.IntALUs,
		uarch.FUIntMul: s.cfg.IntMuls,
		uarch.FUFPU:    s.cfg.FPUs,
		uarch.FULSU:    s.cfg.LSUs,
	}
	for i := range s.win {
		e := &s.win[i]
		if e.state != stWaiting {
			continue
		}
		if e.fu != uarch.FUNone && fuUsed[e.fu] >= fuAvail[e.fu] {
			continue
		}
		if !s.ready(i) {
			continue
		}
		if e.cls == isa.ClassLoad || e.cls == isa.ClassStore {
			if !s.memOrderOK(i) {
				continue
			}
		}
		if e.isSync && i != 0 {
			continue // syscalls execute only at the window head
		}
		lat := uarch.Latency(e.in.Op)
		if e.cls == isa.ClassLoad || e.cls == isa.ClassStore {
			lat += s.mem.Data(e.addr, s.cycle, e.cls == isa.ClassStore)
		}
		e.state = stExecuting
		e.doneAt = s.cycle + lat
		if e.fu != uarch.FUNone {
			fuUsed[e.fu]++
		}
	}
}

func (s *Simulator) fetch() {
	if s.stalled || s.serialize || s.cycle < s.resumeAt {
		return
	}
	for n := 0; n < s.cfg.FetchWidth; n++ {
		if len(s.win) >= s.cfg.Window {
			return
		}
		pc := s.fetchPC
		if !s.prog.InText(pc) {
			// runaway fetch (e.g., return to 0): serialize until drained —
			// the architectural model will have halted by then.
			s.stalled = true
			return
		}
		ilat := s.mem.Inst(pc, s.cycle)
		if ilat > s.cfg.Mem.L1I.HitLat {
			// I-cache miss: bubble until the line arrives
			s.resumeAt = s.cycle + ilat
			return
		}
		in, err := s.prog.Fetch(pc)
		if err != nil {
			s.stalled = true
			return
		}
		e := entry{
			pc:  pc,
			in:  in,
			cls: isa.Classify(in.Op),
			fu:  uarch.FUFor(in.Op),
		}
		e.uses = isa.Uses(in)
		e.def, e.hasDef = isa.Def(in)

		// In-order functional execution against architectural state.
		if e.cls == isa.ClassLoad || e.cls == isa.ClassStore {
			e.addr = funcsim.EffAddr(s.st, in)
		}
		e.actualNPC = funcsim.NextPC(s.st, in, pc)
		funcsim.Apply(s.st, in, pc)

		switch e.cls {
		case isa.ClassBranch, isa.ClassJump:
			e.predNPC = s.pred.Predict(in, pc)
			e.mispred = e.predNPC != e.actualNPC
		case isa.ClassSys:
			e.isSync = true
			e.predNPC = pc + 4
		default:
			e.predNPC = pc + 4
		}

		s.win = append(s.win, e)
		s.fetchPC = e.actualNPC

		if e.isSync {
			s.serialize = true
			return
		}
		if e.mispred {
			s.stalled = true
			return
		}
		if (e.cls == isa.ClassBranch || e.cls == isa.ClassJump) && e.actualNPC != pc+4 {
			return // one taken control transfer ends the fetch group
		}
	}
}

// Run is a convenience wrapper: build and run in one call.
func Run(cfg uarch.Config, prog *loader.Program, maxInsts uint64) uarch.Result {
	return New(cfg, prog).Run(maxInsts)
}
