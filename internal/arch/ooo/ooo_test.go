package ooo

import (
	"bytes"
	"fmt"
	"testing"

	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa/asm"
	"facile/internal/isa/loader"
)

func asmOrDie(t *testing.T, src string) *loader.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkAgainstGolden runs src on both the golden functional simulator and
// the OOO timing simulator and requires identical architectural outcomes.
func checkAgainstGolden(t *testing.T, src string) uarch.Result {
	t.Helper()
	p := asmOrDie(t, src)
	_, want, err := funcsim.Run(p, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(uarch.Default(), p, 0)
	if res.Insts != want.Insts {
		t.Errorf("insts = %d, golden %d", res.Insts, want.Insts)
	}
	if res.ExitStatus != want.ExitStatus {
		t.Errorf("exit = %d, golden %d", res.ExitStatus, want.ExitStatus)
	}
	if !bytes.Equal(res.Output, want.Output) {
		t.Errorf("output = %q, golden %q", res.Output, want.Output)
	}
	if res.Cycles == 0 {
		t.Error("zero cycles")
	}
	ipc := res.IPC()
	if ipc <= 0.01 || ipc > float64(uarch.Default().CommitWidth) {
		t.Errorf("implausible IPC %.3f (cycles=%d insts=%d)", ipc, res.Cycles, res.Insts)
	}
	return res
}

const sumLoop = `
start:  li   r1, 1000
        li   r4, 0
loop:   beq  r1, r0, done
        add  r4, r4, r1
        sub  r1, r1, 1
        b    loop
done:   li   r2, 2
        mov  r3, r4
        syscall
        li   r2, 1
        li   r3, 0
        syscall
`

func TestSumLoopMatchesGolden(t *testing.T) {
	res := checkAgainstGolden(t, sumLoop)
	if !bytes.Contains(res.Output, []byte("500500")) {
		t.Fatalf("output %q", res.Output)
	}
}

func TestMemoryWorkload(t *testing.T) {
	// Strided stores then loads: exercises the D-cache and disambiguation.
	checkAgainstGolden(t, `
start:  la   r1, buf
        li   r5, 256
        li   r6, 0
st:     beq  r5, r0, ld
        std  r6, r1, 0
        add  r1, r1, 64       ; stride past a cache line
        add  r6, r6, 3
        sub  r5, r5, 1
        b    st
ld:     la   r1, buf
        li   r5, 256
        li   r7, 0
ldl:    beq  r5, r0, out
        ldd  r8, r1, 0
        add  r7, r7, r8
        add  r1, r1, 64
        sub  r5, r5, 1
        b    ldl
out:    li   r2, 2
        mov  r3, r7
        syscall
        halt
        .data
buf:    .space 16384
`)
}

func TestCallHeavyWorkload(t *testing.T) {
	checkAgainstGolden(t, `
start:  li   r10, 50
        li   r11, 0
outer:  beq  r10, r0, done
        li   r3, 7
        call work
        add  r11, r11, r3
        sub  r10, r10, 1
        b    outer
done:   li   r2, 2
        mov  r3, r11
        syscall
        halt
work:   mul  r3, r3, r3
        rem  r3, r3, 100
        ret
`)
}

func TestFPWorkload(t *testing.T) {
	checkAgainstGolden(t, `
start:  li    r1, 100
        li    r4, 1
        cvtif f1, r4
        cvtif f2, r4
loop:   beq   r1, r0, done
        fadd  f1, f1, f2
        fmul  f3, f1, f2
        sub   r1, r1, 1
        b     loop
done:   cvtfi r3, f1
        li    r2, 2
        syscall
        halt
`)
}

func TestBranchyWorkload(t *testing.T) {
	// Data-dependent branching via the deterministic rand syscall.
	checkAgainstGolden(t, `
start:  li   r10, 300
        li   r11, 0
loop:   beq  r10, r0, done
        li   r2, 4
        syscall          ; r3 = rand
        and  r5, r3, 7
        beq  r5, r0, bump
        and  r6, r3, 1
        bne  r6, r0, odd
        add  r11, r11, 2
        b    next
odd:    add  r11, r11, 1
        b    next
bump:   add  r11, r11, 10
next:   sub  r10, r10, 1
        b    loop
done:   li   r2, 2
        mov  r3, r11
        syscall
        halt
`)
}

func TestMispredictsAreCounted(t *testing.T) {
	// Alternating branch that gshare should struggle with briefly, plus a
	// long stable loop: predictor stats must be populated.
	res := checkAgainstGolden(t, sumLoop)
	if res.BranchLookups == 0 {
		t.Fatal("no branch lookups recorded")
	}
	if res.Mispredicts >= res.BranchLookups {
		t.Fatalf("mispredicts %d >= lookups %d", res.Mispredicts, res.BranchLookups)
	}
}

func TestDependentChainSlowerThanILP(t *testing.T) {
	// Loop a 64-instruction body 200 times so the I-cache is warm and the
	// difference comes from the execution core, not compulsory misses.
	mk := func(dep bool) string {
		var b bytes.Buffer
		b.WriteString("start:  li r20, 200\n")
		b.WriteString("loop:   beq r20, r0, done\n")
		for i := 0; i < 64; i++ {
			if dep {
				fmt.Fprintf(&b, "        mul r1, r1, r1\n")
			} else {
				fmt.Fprintf(&b, "        add r%d, r0, %d\n", 1+i%8, i)
			}
		}
		b.WriteString("        sub r20, r20, 1\n        b loop\ndone:   halt\n")
		return b.String()
	}
	dep := Run(uarch.Default(), asmOrDie(t, mk(true)), 0)
	ilp := Run(uarch.Default(), asmOrDie(t, mk(false)), 0)
	if dep.Cycles <= ilp.Cycles {
		t.Fatalf("dependent chain (%d cycles) should be slower than independent ops (%d cycles)",
			dep.Cycles, ilp.Cycles)
	}
}

func TestCacheMissesSlowDown(t *testing.T) {
	// Same instruction count; one walks 8 bytes (same line), the other 4KB
	// strides (always missing).
	mk := func(stride int) string {
		return fmt.Sprintf(`
start:  la  r1, buf
        li  r5, 400
loop:   beq r5, r0, done
        ldd r6, r1, 0
        add r1, r1, %d
        sub r5, r5, 1
        b   loop
done:   halt
        .data
buf:    .space 8
`, stride)
	}
	near := Run(uarch.Default(), asmOrDie(t, mk(0)), 0)
	far := Run(uarch.Default(), asmOrDie(t, mk(4096)), 0)
	if far.Cycles <= near.Cycles {
		t.Fatalf("striding run (%d cycles) should be slower than resident run (%d cycles)",
			far.Cycles, near.Cycles)
	}
	if far.L1DMisses <= near.L1DMisses {
		t.Fatalf("miss counts: far %d <= near %d", far.L1DMisses, near.L1DMisses)
	}
}

func TestMaxInstsBound(t *testing.T) {
	p := asmOrDie(t, `
start:  b start
`)
	res := Run(uarch.Default(), p, 1000)
	if res.Insts < 1000 || res.Insts > 1100 {
		t.Fatalf("committed %d, want ~1000", res.Insts)
	}
}

func TestRunawayFetchTerminates(t *testing.T) {
	// Return to address 0: the simulator must not hang.
	p := asmOrDie(t, `
start:  jr r0, r0, 0
`)
	res := Run(uarch.Default(), p, 0)
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestWidthScaling(t *testing.T) {
	// A 1-wide, 4-entry-window machine must be slower than the default
	// 4-wide, 32-entry one on ILP-rich code.
	src := func() string {
		var b bytes.Buffer
		b.WriteString("start:  li r20, 300\nloop:   beq r20, r0, done\n")
		for i := 0; i < 24; i++ {
			fmt.Fprintf(&b, "        add r%d, r0, %d\n", 1+i%8, i)
		}
		b.WriteString("        sub r20, r20, 1\n        b loop\ndone:   halt\n")
		return b.String()
	}()
	p := asmOrDie(t, src)
	wide := Run(uarch.Default(), p, 0)
	narrow := uarch.Default()
	narrow.FetchWidth, narrow.CommitWidth, narrow.IntALUs, narrow.Window = 1, 1, 1, 4
	nres := Run(narrow, p, 0)
	if nres.Cycles <= wide.Cycles {
		t.Fatalf("narrow machine (%d cycles) not slower than wide (%d)", nres.Cycles, wide.Cycles)
	}
	if nres.Insts != wide.Insts {
		t.Fatalf("configs disagree on instruction count: %d vs %d", nres.Insts, wide.Insts)
	}
}

func TestMispredictPenaltyMatters(t *testing.T) {
	// Raising the redirect penalty must cost cycles on branchy code.
	p := asmOrDie(t, `
start:  li   r10, 400
        li   r11, 0
loop:   beq  r10, r0, done
        li   r2, 4
        syscall
        and  r5, r3, 1
        beq  r5, r0, even
        add  r11, r11, 1
        b    next
even:   add  r11, r11, 2
next:   sub  r10, r10, 1
        b    loop
done:   halt
`)
	base := Run(uarch.Default(), p, 0)
	slowCfg := uarch.Default()
	slowCfg.MispredictPenalty = 30
	slow := Run(slowCfg, p, 0)
	if slow.Cycles <= base.Cycles {
		t.Fatalf("30-cycle penalty (%d cycles) not slower than 3-cycle (%d)", slow.Cycles, base.Cycles)
	}
}
