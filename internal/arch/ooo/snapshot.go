package ooo

import (
	"fmt"

	"facile/internal/arch/uarch"
	"facile/internal/isa"
	"facile/internal/snapshot"
)

// SnapshotKind identifies conventional-baseline snapshots.
const SnapshotKind = "ooo"

// Committed reports total instructions committed (Run budgets are
// cumulative against this counter, so checkpointed runs chunk cleanly).
func (s *Simulator) Committed() uint64 { return s.committed }

// SaveState serializes the complete simulator state: architectural state,
// predictor, cache hierarchy, and the in-flight window. Decoded forms
// (instruction, class, FU, operand lists) are re-derived from the program
// text on load, so only dynamic per-entry fields are written.
func (s *Simulator) SaveState(w *snapshot.Writer) {
	s.st.SaveState(w)
	s.pred.SaveState(w)
	s.mem.SaveState(w)
	w.U64(s.fetchPC)
	w.Bool(s.stalled)
	w.Bool(s.serialize)
	w.U64(s.resumeAt)
	w.U64(s.cycle)
	w.U64(s.committed)
	w.Bool(s.haltSeen)
	w.U64(uint64(len(s.win)))
	for i := range s.win {
		e := &s.win[i]
		w.U64(e.pc)
		w.U8(uint8(e.state))
		w.U64(e.doneAt)
		w.U64(e.addr)
		w.U64(e.actualNPC)
		w.U64(e.predNPC)
		w.Bool(e.mispred)
	}
}

// LoadState restores a simulator built over the same program and
// configuration. Window entries are re-decorated from the program text.
func (s *Simulator) LoadState(r *snapshot.Reader) error {
	if err := s.st.LoadState(r); err != nil {
		return err
	}
	if err := s.pred.LoadState(r); err != nil {
		return err
	}
	if err := s.mem.LoadState(r); err != nil {
		return err
	}
	s.fetchPC = r.U64()
	s.stalled = r.Bool()
	s.serialize = r.Bool()
	s.resumeAt = r.U64()
	s.cycle = r.U64()
	s.committed = r.U64()
	s.haltSeen = r.Bool()
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(s.cfg.Window) {
		return fmt.Errorf("ooo: snapshot window %d exceeds configured %d", n, s.cfg.Window)
	}
	s.win = s.win[:0]
	for i := uint64(0); i < n; i++ {
		var e entry
		e.pc = r.U64()
		st := r.U8()
		e.doneAt = r.U64()
		e.addr = r.U64()
		e.actualNPC = r.U64()
		e.predNPC = r.U64()
		e.mispred = r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if st > uint8(stDone) {
			return fmt.Errorf("ooo: snapshot entry %d has invalid state %d", i, st)
		}
		e.state = entryState(st)
		in, err := s.prog.Fetch(e.pc)
		if err != nil {
			return fmt.Errorf("ooo: snapshot entry %d does not decode against this program: %w", i, err)
		}
		e.in = in
		e.cls = isa.Classify(in.Op)
		e.fu = uarch.FUFor(in.Op)
		e.uses = isa.Uses(in)
		e.def, e.hasDef = isa.Def(in)
		e.isSync = e.cls == isa.ClassSys
		s.win = append(s.win, e)
	}
	return r.Err()
}

// Clone returns an independent deep copy via a snapshot round-trip, which
// structurally guarantees the clone shares no mutable state with s.
func (s *Simulator) Clone() (*Simulator, error) {
	w := snapshot.NewWriter()
	s.SaveState(w)
	c := New(s.cfg, s.prog)
	if err := c.LoadState(snapshot.NewReader(w.Payload())); err != nil {
		return nil, err
	}
	return c, nil
}

// Hash returns the stable content hash of the full simulator state.
func (s *Simulator) Hash() string {
	w := snapshot.NewWriter()
	s.SaveState(w)
	return w.StateHash()
}
