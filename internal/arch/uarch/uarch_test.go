package uarch

import (
	"errors"
	"testing"

	"facile/internal/isa"
)

func TestFUCoverage(t *testing.T) {
	for op := isa.Opcode(0); op < isa.NumOpcodes; op++ {
		if !op.Valid() {
			continue
		}
		fu := FUFor(op)
		switch isa.Classify(op) {
		case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump:
			if fu != FUIntALU {
				t.Errorf("%v -> %v, want int ALU", op, fu)
			}
		case isa.ClassIntMul:
			if fu != FUIntMul {
				t.Errorf("%v -> %v, want int mul", op, fu)
			}
		case isa.ClassFP:
			if fu != FUFPU {
				t.Errorf("%v -> %v, want FPU", op, fu)
			}
		case isa.ClassLoad, isa.ClassStore:
			if fu != FULSU {
				t.Errorf("%v -> %v, want LSU", op, fu)
			}
		default:
			if fu != FUNone {
				t.Errorf("%v -> %v, want none", op, fu)
			}
		}
		if Latency(op) < 1 {
			t.Errorf("%v latency %d < 1", op, Latency(op))
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	if !(Latency(isa.OpAdd) < Latency(isa.OpMul) && Latency(isa.OpMul) < Latency(isa.OpDiv)) {
		t.Fatal("integer latency ordering broken")
	}
	if !(Latency(isa.OpFadd) <= Latency(isa.OpFmul) && Latency(isa.OpFmul) < Latency(isa.OpFdiv)) {
		t.Fatal("FP latency ordering broken")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := Default()
	if c.Window < c.FetchWidth || c.IntALUs < 1 || c.LSUs < 1 {
		t.Fatalf("%+v", c)
	}
	if c.Mem.L1D.SizeBytes <= 0 || c.Mem.L2.SizeBytes < c.Mem.L1D.SizeBytes {
		t.Fatal("cache sizing broken")
	}
}

func TestResultIPC(t *testing.T) {
	r := Result{Cycles: 200, Insts: 100}
	if r.IPC() != 0.5 {
		t.Fatalf("IPC %f", r.IPC())
	}
	if (Result{}).IPC() != 0 {
		t.Fatal("zero-cycle IPC")
	}
}

func TestValidateDefault(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default configuration invalid: %v", err)
	}
}

func TestValidateGeometryErrors(t *testing.T) {
	cases := []struct {
		name      string
		mutate    func(*Config)
		component string
		param     string
	}{
		{"non-pow2 L1D size", func(c *Config) { c.Mem.L1D.SizeBytes = 3000 }, "L1D", "size_bytes"},
		{"non-pow2 line", func(c *Config) { c.Mem.L2.LineBytes = 48 }, "L2", "line_bytes"},
		{"assoc split", func(c *Config) { c.Mem.L1I.Assoc = 3 }, "L1I", "assoc"},
		{"zero assoc", func(c *Config) { c.Mem.L1D.Assoc = 0 }, "L1D", "assoc"},
		{"zero TLB entries", func(c *Config) { c.Mem.TLB.Entries = 0 }, "TLB", "entries"},
		{"bad page bits", func(c *Config) { c.Mem.TLB.PageBits = 40 }, "TLB", "page_bits"},
		{"zero window", func(c *Config) { c.Window = 0 }, "core", "window"},
		{"zero fetch", func(c *Config) { c.FetchWidth = 0 }, "core", "fetch_width"},
		{"pred bits", func(c *Config) { c.Pred.CounterBits = 0 }, "pred", "counter_bits"},
		{"ras depth", func(c *Config) { c.Pred.RASDepth = 0 }, "pred", "ras_depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid geometry accepted")
			}
			var ge *GeometryError
			if !errors.As(err, &ge) {
				t.Fatalf("error is not a GeometryError: %v", err)
			}
			found := false
			for _, e := range multiErrors(err) {
				var g *GeometryError
				if errors.As(e, &g) && g.Component == tc.component && g.Param == tc.param {
					found = true
				}
			}
			if !found {
				t.Fatalf("no finding for %s.%s in: %v", tc.component, tc.param, err)
			}
		})
	}
}

// multiErrors unwraps an errors.Join result into its parts.
func multiErrors(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

func TestValidateCollectsAllFindings(t *testing.T) {
	cfg := Default()
	cfg.Mem.L1D.SizeBytes = 3000
	cfg.Mem.TLB.Entries = 0
	cfg.Window = 0
	err := cfg.Validate()
	if err == nil {
		t.Fatal("invalid geometry accepted")
	}
	if n := len(multiErrors(err)); n < 3 {
		t.Fatalf("expected >= 3 findings, got %d: %v", n, err)
	}
}
