package uarch

import (
	"testing"

	"facile/internal/isa"
)

func TestFUCoverage(t *testing.T) {
	for op := isa.Opcode(0); op < isa.NumOpcodes; op++ {
		if !op.Valid() {
			continue
		}
		fu := FUFor(op)
		switch isa.Classify(op) {
		case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump:
			if fu != FUIntALU {
				t.Errorf("%v -> %v, want int ALU", op, fu)
			}
		case isa.ClassIntMul:
			if fu != FUIntMul {
				t.Errorf("%v -> %v, want int mul", op, fu)
			}
		case isa.ClassFP:
			if fu != FUFPU {
				t.Errorf("%v -> %v, want FPU", op, fu)
			}
		case isa.ClassLoad, isa.ClassStore:
			if fu != FULSU {
				t.Errorf("%v -> %v, want LSU", op, fu)
			}
		default:
			if fu != FUNone {
				t.Errorf("%v -> %v, want none", op, fu)
			}
		}
		if Latency(op) < 1 {
			t.Errorf("%v latency %d < 1", op, Latency(op))
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	if !(Latency(isa.OpAdd) < Latency(isa.OpMul) && Latency(isa.OpMul) < Latency(isa.OpDiv)) {
		t.Fatal("integer latency ordering broken")
	}
	if !(Latency(isa.OpFadd) <= Latency(isa.OpFmul) && Latency(isa.OpFmul) < Latency(isa.OpFdiv)) {
		t.Fatal("FP latency ordering broken")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := Default()
	if c.Window < c.FetchWidth || c.IntALUs < 1 || c.LSUs < 1 {
		t.Fatalf("%+v", c)
	}
	if c.Mem.L1D.SizeBytes <= 0 || c.Mem.L2.SizeBytes < c.Mem.L1D.SizeBytes {
		t.Fatal("cache sizing broken")
	}
}

func TestResultIPC(t *testing.T) {
	r := Result{Cycles: 200, Insts: 100}
	if r.IPC() != 0.5 {
		t.Fatalf("IPC %f", r.IPC())
	}
	if (Result{}).IPC() != 0 {
		t.Fatal("zero-cycle IPC")
	}
}
