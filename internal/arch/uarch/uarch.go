// Package uarch holds the micro-architecture configuration shared by the
// out-of-order timing models (the conventional baseline, the hand-coded
// memoizing simulator, and the Facile-described simulator's external
// components). The default models a MIPS R10000-like core, as in the paper.
package uarch

import (
	"errors"
	"fmt"

	"facile/internal/arch/bpred"
	"facile/internal/arch/cache"
	"facile/internal/isa"
)

// Config describes the simulated core.
type Config struct {
	FetchWidth  int
	CommitWidth int
	Window      int // out-of-order window / ROB entries

	IntALUs int
	IntMuls int
	FPUs    int
	LSUs    int

	MispredictPenalty uint64 // extra redirect cycles after a branch resolves

	Pred bpred.Config
	Mem  cache.HierarchyConfig
}

// Default returns the R10000-like configuration used by the experiments:
// 4-wide, 32-entry window, 2 integer ALUs, split 32K L1s, 512K L2.
func Default() Config {
	return Config{
		FetchWidth:        4,
		CommitWidth:       4,
		Window:            32,
		IntALUs:           2,
		IntMuls:           1,
		FPUs:              2,
		LSUs:              1,
		MispredictPenalty: 3,
		Pred:              bpred.DefaultConfig(),
		Mem:               cache.DefaultHierarchy(),
	}
}

// GeometryError reports one invalid micro-architecture parameter. The
// timing models index sets, ways, and counter tables with masks derived
// from these values, so a bad geometry would silently alias state and
// produce garbage results instead of failing; Validate turns it into a
// typed, per-parameter rejection at configuration time.
type GeometryError struct {
	Component string // "L1D", "TLB", "pred", "core", ...
	Param     string // parameter name within the component
	Value     int
	Reason    string
}

func (e *GeometryError) Error() string {
	return fmt.Sprintf("uarch: %s.%s = %d: %s", e.Component, e.Param, e.Value, e.Reason)
}

// geomErr is shorthand for building one finding.
func geomErr(component, param string, value int, reason string) error {
	return &GeometryError{Component: component, Param: param, Value: value, Reason: reason}
}

func powerOfTwo(v int) bool { return v > 0 && v&(v-1) == 0 }

// validateCache checks one cache level's geometry: power-of-two size and
// line, associativity that divides the line count into a power-of-two
// number of sets (the set index is a mask), and a sane hit latency.
func validateCache(name string, c cache.Config) []error {
	var errs []error
	if !powerOfTwo(c.SizeBytes) {
		errs = append(errs, geomErr(name, "size_bytes", c.SizeBytes, "must be a power of two"))
	}
	if !powerOfTwo(c.LineBytes) || c.LineBytes < 4 {
		errs = append(errs, geomErr(name, "line_bytes", c.LineBytes, "must be a power of two >= 4"))
	}
	if c.Assoc < 1 {
		errs = append(errs, geomErr(name, "assoc", c.Assoc, "must be >= 1"))
	}
	if len(errs) > 0 {
		return errs // derived checks below would divide by zero or mislead
	}
	nLines := c.SizeBytes / c.LineBytes
	if nLines < 1 {
		return append(errs, geomErr(name, "size_bytes", c.SizeBytes,
			fmt.Sprintf("smaller than one %d-byte line", c.LineBytes)))
	}
	if nLines%c.Assoc != 0 {
		return append(errs, geomErr(name, "assoc", c.Assoc,
			fmt.Sprintf("does not divide the %d-line cache into whole sets", nLines)))
	}
	if sets := nLines / c.Assoc; !powerOfTwo(sets) {
		errs = append(errs, geomErr(name, "assoc", c.Assoc,
			fmt.Sprintf("yields %d sets; the set count must be a power of two", sets)))
	}
	if c.MSHRs < 0 {
		errs = append(errs, geomErr(name, "mshrs", c.MSHRs, "must be >= 0"))
	}
	return errs
}

// Validate checks the configuration's geometry and returns every finding
// joined into one error (nil when the configuration is sound). New-style
// constructors (runcfg.New, sweep expansion, fsimd submission) call it
// before building an engine.
func (c Config) Validate() error {
	var errs []error
	core := func(param string, v int, min int) {
		if v < min {
			errs = append(errs, geomErr("core", param, v, fmt.Sprintf("must be >= %d", min)))
		}
	}
	core("fetch_width", c.FetchWidth, 1)
	core("commit_width", c.CommitWidth, 1)
	core("window", c.Window, 1)
	core("int_alus", c.IntALUs, 1)
	core("int_muls", c.IntMuls, 1)
	core("fpus", c.FPUs, 1)
	core("lsus", c.LSUs, 1)

	if c.Pred.CounterBits < 1 || c.Pred.CounterBits > 30 {
		errs = append(errs, geomErr("pred", "counter_bits", c.Pred.CounterBits, "must be in [1, 30]"))
	}
	if c.Pred.BTBBits < 1 || c.Pred.BTBBits > 30 {
		errs = append(errs, geomErr("pred", "btb_bits", c.Pred.BTBBits, "must be in [1, 30]"))
	}
	if c.Pred.RASDepth < 1 {
		errs = append(errs, geomErr("pred", "ras_depth", c.Pred.RASDepth, "must be >= 1"))
	}

	errs = append(errs, validateCache("L1I", c.Mem.L1I)...)
	errs = append(errs, validateCache("L1D", c.Mem.L1D)...)
	errs = append(errs, validateCache("L2", c.Mem.L2)...)

	if c.Mem.TLB.Entries < 1 {
		errs = append(errs, geomErr("TLB", "entries", c.Mem.TLB.Entries, "must be nonzero"))
	}
	if c.Mem.TLB.PageBits < 2 || c.Mem.TLB.PageBits > 30 {
		errs = append(errs, geomErr("TLB", "page_bits", c.Mem.TLB.PageBits, "must be in [2, 30]"))
	}
	return errors.Join(errs...)
}

// FU identifies a functional-unit class.
type FU int

// Functional units.
const (
	FUNone FU = iota
	FUIntALU
	FUIntMul
	FUFPU
	FULSU
	NumFU
)

// FUFor maps an opcode to the functional unit that executes it.
func FUFor(op isa.Opcode) FU {
	switch isa.Classify(op) {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump:
		return FUIntALU
	case isa.ClassIntMul:
		return FUIntMul
	case isa.ClassFP:
		return FUFPU
	case isa.ClassLoad, isa.ClassStore:
		return FULSU
	default:
		return FUNone // nop, syscall, halt occupy no unit
	}
}

// Latency reports the execution latency of op in cycles, excluding cache
// time for memory operations (which is added from the hierarchy).
func Latency(op isa.Opcode) uint64 {
	switch op {
	case isa.OpMul:
		return 3
	case isa.OpDiv, isa.OpRem:
		return 20
	case isa.OpFadd, isa.OpFsub, isa.OpFneg, isa.OpFmov, isa.OpFcmp, isa.OpCvtif, isa.OpCvtfi:
		return 2
	case isa.OpFmul:
		return 3
	case isa.OpFdiv:
		return 12
	default:
		return 1
	}
}

// Result summarizes a timing simulation.
type Result struct {
	Cycles     uint64
	Insts      uint64 // committed instructions
	ExitStatus int64
	Output     []byte

	BranchLookups uint64
	Mispredicts   uint64
	L1DMisses     uint64
	L2Misses      uint64
}

// IPC reports committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}
