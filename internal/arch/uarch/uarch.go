// Package uarch holds the micro-architecture configuration shared by the
// out-of-order timing models (the conventional baseline, the hand-coded
// memoizing simulator, and the Facile-described simulator's external
// components). The default models a MIPS R10000-like core, as in the paper.
package uarch

import (
	"facile/internal/arch/bpred"
	"facile/internal/arch/cache"
	"facile/internal/isa"
)

// Config describes the simulated core.
type Config struct {
	FetchWidth  int
	CommitWidth int
	Window      int // out-of-order window / ROB entries

	IntALUs int
	IntMuls int
	FPUs    int
	LSUs    int

	MispredictPenalty uint64 // extra redirect cycles after a branch resolves

	Pred bpred.Config
	Mem  cache.HierarchyConfig
}

// Default returns the R10000-like configuration used by the experiments:
// 4-wide, 32-entry window, 2 integer ALUs, split 32K L1s, 512K L2.
func Default() Config {
	return Config{
		FetchWidth:        4,
		CommitWidth:       4,
		Window:            32,
		IntALUs:           2,
		IntMuls:           1,
		FPUs:              2,
		LSUs:              1,
		MispredictPenalty: 3,
		Pred:              bpred.DefaultConfig(),
		Mem:               cache.DefaultHierarchy(),
	}
}

// FU identifies a functional-unit class.
type FU int

// Functional units.
const (
	FUNone FU = iota
	FUIntALU
	FUIntMul
	FUFPU
	FULSU
	NumFU
)

// FUFor maps an opcode to the functional unit that executes it.
func FUFor(op isa.Opcode) FU {
	switch isa.Classify(op) {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump:
		return FUIntALU
	case isa.ClassIntMul:
		return FUIntMul
	case isa.ClassFP:
		return FUFPU
	case isa.ClassLoad, isa.ClassStore:
		return FULSU
	default:
		return FUNone // nop, syscall, halt occupy no unit
	}
}

// Latency reports the execution latency of op in cycles, excluding cache
// time for memory operations (which is added from the hierarchy).
func Latency(op isa.Opcode) uint64 {
	switch op {
	case isa.OpMul:
		return 3
	case isa.OpDiv, isa.OpRem:
		return 20
	case isa.OpFadd, isa.OpFsub, isa.OpFneg, isa.OpFmov, isa.OpFcmp, isa.OpCvtif, isa.OpCvtfi:
		return 2
	case isa.OpFmul:
		return 3
	case isa.OpFdiv:
		return 12
	default:
		return 1
	}
}

// Result summarizes a timing simulation.
type Result struct {
	Cycles     uint64
	Insts      uint64 // committed instructions
	ExitStatus int64
	Output     []byte

	BranchLookups uint64
	Mispredicts   uint64
	L1DMisses     uint64
	L2Misses      uint64
}

// IPC reports committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}
