package funcsim

import (
	"math"
	"testing"
	"testing/quick"

	"facile/internal/isa"
	"facile/internal/isa/asm"
)

func prog(t *testing.T, src string) *State {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := Run(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestR0Hardwired(t *testing.T) {
	st := prog(t, `
start:  add r0, r0, 42
        add r1, r0, 1
        halt
`)
	if st.R[0] != 0 || st.R[1] != 1 {
		t.Fatalf("r0=%d r1=%d", st.R[0], st.R[1])
	}
}

func TestALUSemantics(t *testing.T) {
	st := prog(t, `
start:  li  r1, -7
        li  r2, 3
        div r3, r1, r2      ; -2 (Go semantics)
        rem r4, r1, r2      ; -1
        div r5, r1, r0      ; x/0 = 0 by definition
        sra r6, r1, 1       ; arithmetic: -4
        srl r7, r1, 60      ; logical: 15
        slt r8, r1, r2      ; 1
        sltu r9, r1, r2     ; 0 (huge unsigned)
        halt
`)
	want := map[int]int64{3: -2, 4: -1, 5: 0, 6: -4, 7: 15, 8: 1, 9: 0}
	for r, v := range want {
		if st.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, st.R[r], v)
		}
	}
}

func TestShiftMasking(t *testing.T) {
	st := prog(t, `
start:  li  r1, 1
        li  r2, 65          ; shift amounts use the low 6 bits
        sll r3, r1, r2      ; 1 << 1
        halt
`)
	if st.R[3] != 2 {
		t.Fatalf("sll by 65 = %d, want 2", st.R[3])
	}
}

func TestRandDeterministic(t *testing.T) {
	run := func() []int64 {
		st := prog(t, `
start:  li r2, 4
        syscall
        mov r4, r3
        li r2, 4
        syscall
        mov r5, r3
        halt
`)
		return []int64{st.R[4], st.R[5]}
	}
	a, b := run(), run()
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatal("rand syscall is not deterministic")
	}
	if a[0] == a[1] {
		t.Fatal("rand returned the same value twice")
	}
}

func TestUnknownSyscallHalts(t *testing.T) {
	st := prog(t, `
start:  li r2, 99
        syscall
        li r1, 1     ; must not execute
`)
	if !st.Halted || st.ExitStatus != -1 || st.R[1] == 1 {
		t.Fatalf("halted=%v exit=%d r1=%d", st.Halted, st.ExitStatus, st.R[1])
	}
}

func TestFetchOutsideTextHalts(t *testing.T) {
	p, err := asm.Assemble("t", "start: jr r0, r0, 0\n")
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(p)
	st.Step(p) // jr to 0
	if _, err := st.Step(p); err == nil {
		t.Fatal("expected fetch error")
	}
	if !st.Halted {
		t.Fatal("state should be halted after a fetch error")
	}
}

// Property: NextPC of a non-control instruction is always pc+4.
func TestNextPCNonControl(t *testing.T) {
	st := &State{}
	f := func(op uint8, rd, rs1 uint8, imm int16) bool {
		o := isa.Opcode(op % isa.NumOpcodes)
		if !o.Valid() || isa.IsControl(o) {
			return true
		}
		in := isa.Inst{Op: o, Rd: rd & 31, Rs1: rs1 & 31, HasImm: true, Imm: int64(imm % (1 << 14))}
		return NextPC(st, in, 0x10000) == 0x10004
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: BranchTaken(beq) == (a == b) for arbitrary register values.
func TestBranchPredicates(t *testing.T) {
	f := func(a, b int64) bool {
		st := &State{}
		st.R[1], st.R[2] = a, b
		in := isa.Inst{Op: isa.OpBeq, Rs1: 1, Rs2: 2}
		if BranchTaken(st, in) != (a == b) {
			return false
		}
		in.Op = isa.OpBltu
		return BranchTaken(st, in) == (uint64(a) < uint64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFPNegDiv(t *testing.T) {
	st := prog(t, `
start:  li    r1, 1
        cvtif f1, r1
        li    r2, 0
        cvtif f2, r2
        fdiv  f3, f1, f2    ; 1/0 = +inf
        fneg  f4, f3        ; -inf
        fcmp  r5, f4, f1    ; -inf < 1 -> -1
        halt
`)
	if st.R[5] != -1 {
		t.Fatalf("fcmp = %d", st.R[5])
	}
	if !math.IsInf(st.F[3], 1) || !math.IsInf(st.F[4], -1) {
		t.Fatalf("f3=%v f4=%v", st.F[3], st.F[4])
	}
}

func TestMaxInstsStopsCleanly(t *testing.T) {
	p, err := asm.Assemble("t", "start: b start\n")
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := Run(p, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 500 {
		t.Fatalf("ran %d insts, want 500", res.Insts)
	}
}
