package funcsim

import (
	"math"

	"facile/internal/isa/loader"
	"facile/internal/mem"
	"facile/internal/snapshot"
)

// SnapshotKind identifies golden functional-simulator snapshots.
const SnapshotKind = "func"

// SaveState serializes the complete architectural state. Field order is the
// snapshot format contract; bump snapshot.Version on any change.
func (st *State) SaveState(w *snapshot.Writer) {
	for _, v := range st.R {
		w.I64(v)
	}
	for _, v := range st.F {
		w.U64(math.Float64bits(v))
	}
	w.U64(st.PC)
	w.Bool(st.Halted)
	w.I64(st.ExitStatus)
	w.Bytes(st.Output)
	w.U64(st.randState)
	w.U64(st.InstCount)
	st.Mem.SaveState(w)
}

// LoadState replaces the architectural state from a snapshot.
func (st *State) LoadState(r *snapshot.Reader) error {
	for i := range st.R {
		st.R[i] = r.I64()
	}
	for i := range st.F {
		st.F[i] = math.Float64frombits(r.U64())
	}
	st.PC = r.U64()
	st.Halted = r.Bool()
	st.ExitStatus = r.I64()
	st.Output = r.Bytes()
	st.randState = r.U64()
	st.InstCount = r.U64()
	if st.Mem == nil {
		st.Mem = mem.New()
	}
	if err := st.Mem.LoadState(r); err != nil {
		return err
	}
	return r.Err()
}

// Clone returns a deep copy sharing nothing with st: memory pages, the
// output buffer, and all register state are copied. Mutating the clone
// never perturbs the parent (the precondition for parallel interval
// simulation on cloned machines).
func (st *State) Clone() *State {
	c := *st
	c.Mem = st.Mem.Clone()
	c.Output = append([]byte(nil), st.Output...)
	c.sampler = nil // the sampler's snapshot closure captures st, not c
	return &c
}

// Hash returns the stable content hash of the architectural state: two runs
// that reach the same architectural point by different routes (memoized or
// not, checkpointed or not) report the same hash.
func (st *State) Hash() string {
	w := snapshot.NewWriter()
	st.SaveState(w)
	return w.StateHash()
}

// RunOn executes prog until the machine halts or InstCount reaches
// maxInsts (a cumulative budget, so checkpointed runs chunk cleanly;
// maxInsts == 0 means no limit).
func (st *State) RunOn(prog *loader.Program, maxInsts uint64) error {
	defer st.sampler.Flush()
	for !st.Halted {
		st.sampler.Tick(st.InstCount)
		if maxInsts > 0 && st.InstCount >= maxInsts {
			return nil
		}
		if _, err := st.Step(prog); err != nil {
			return err
		}
	}
	return nil
}
