// Package funcsim implements the functional (architectural) simulator for
// SVR32. It is the golden model: every timing simulator in this repository
// is validated against its register, memory, and program-output results.
//
// The package also exports the single shared implementation of SVR32
// instruction semantics (Step / applyALU and friends) so that the
// out-of-order models cannot diverge functionally from the golden model.
package funcsim

import (
	"fmt"
	"math"

	"facile/internal/isa"
	"facile/internal/isa/loader"
	"facile/internal/mem"
	"facile/internal/obs"
)

// State is the complete architectural state of an SVR32 machine.
type State struct {
	R   [32]int64   // integer registers; R[0] reads as zero
	F   [32]float64 // floating-point registers
	PC  uint64
	Mem *mem.Memory

	Halted     bool
	ExitStatus int64
	Output     []byte // bytes produced through print syscalls

	randState uint64

	// InstCount counts architecturally retired instructions.
	InstCount uint64

	// sampler is transient observability state: it is not architectural,
	// so SaveState/LoadState skip it and Clone drops it (its snapshot
	// closure captures this State, not the clone).
	sampler *obs.Sampler
}

// SetObs attaches an observability recorder: RunOn emits a sampled time
// series of retired instructions on the recorder's track. The functional
// simulator has no timing model or cache, so only the instruction counters
// are meaningful (everything is "slow" by definition).
func (st *State) SetObs(rec *obs.Recorder, sampleEvery uint64) {
	st.sampler = obs.NewSampler(rec, sampleEvery, func() obs.Sample {
		return obs.Sample{
			Insts:     st.InstCount,
			SlowInsts: st.InstCount,
		}
	})
}

// NewState returns a machine state with prog loaded, PC at the entry point,
// and the stack pointer initialized.
func NewState(prog *loader.Program) *State {
	st := &State{Mem: mem.New(), PC: prog.Entry, randState: 0x2545F4914F6CDD1D}
	prog.LoadInto(st.Mem)
	st.R[isa.RegSP] = int64(loader.StackTop)
	return st
}

// Rand steps the deterministic xorshift PRNG used by the rand syscall.
func (st *State) Rand() int64 {
	x := st.randState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	st.randState = x
	return int64(x>>1) & 0x7FFFFFFF
}

// SetReg writes an integer register, keeping r0 hardwired to zero.
func (st *State) SetReg(r uint8, v int64) {
	if r != 0 {
		st.R[r] = v
	}
}

// Syscall executes the system call currently encoded in the register file
// (code in r2, argument in r3). It is shared by all simulators.
func (st *State) Syscall() {
	switch st.R[isa.RegSC] {
	case isa.SysExit:
		st.Halted = true
		st.ExitStatus = st.R[isa.RegA0]
	case isa.SysPrintInt:
		st.Output = append(st.Output, []byte(fmt.Sprintf("%d\n", st.R[isa.RegA0]))...)
	case isa.SysPrintChar:
		st.Output = append(st.Output, byte(st.R[isa.RegA0]))
	case isa.SysRand:
		st.SetReg(isa.RegA0, st.Rand())
	default:
		// Unknown syscalls halt, so bugs surface rather than spin.
		st.Halted = true
		st.ExitStatus = -1
	}
}

// EffAddr computes the effective address of a memory instruction.
func EffAddr(st *State, in isa.Inst) uint64 {
	off := in.Imm
	if !in.HasImm {
		off = st.R[in.Rs2]
	}
	return uint64(st.R[in.Rs1] + off)
}

// ALUResult computes the result of a register-writing non-memory
// instruction. pc is the instruction's address (used by jal/jalr links).
// It must only be called for opcodes with a register result.
func ALUResult(st *State, in isa.Inst, pc uint64) int64 {
	b := in.Imm
	if !in.HasImm && isa.OpcodeFormat(in.Op) == isa.FmtRI {
		b = st.R[in.Rs2]
	}
	a := st.R[in.Rs1]
	switch in.Op {
	case isa.OpAdd:
		return a + b
	case isa.OpSub:
		return a - b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpSll:
		return a << (uint64(b) & 63)
	case isa.OpSrl:
		return int64(uint64(a) >> (uint64(b) & 63))
	case isa.OpSra:
		return a >> (uint64(b) & 63)
	case isa.OpSlt:
		if a < b {
			return 1
		}
		return 0
	case isa.OpSltu:
		if uint64(a) < uint64(b) {
			return 1
		}
		return 0
	case isa.OpMul:
		return a * b
	case isa.OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.OpRem:
		if b == 0 {
			return 0
		}
		return a % b
	case isa.OpSethi:
		return in.Imm << 11
	case isa.OpJal, isa.OpJalr:
		return int64(pc + 4)
	case isa.OpFcmp:
		x, y := st.F[in.Rs1], st.F[in.Rs2]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case isa.OpCvtfi:
		return int64(st.F[in.Rs1])
	}
	panic(fmt.Sprintf("funcsim: ALUResult on %v", in.Op))
}

// FPResult computes the result of an FP-register-writing arithmetic
// instruction.
func FPResult(st *State, in isa.Inst) float64 {
	a, b := st.F[in.Rs1], st.F[in.Rs2]
	switch in.Op {
	case isa.OpFadd:
		return a + b
	case isa.OpFsub:
		return a - b
	case isa.OpFmul:
		return a * b
	case isa.OpFdiv:
		if b == 0 {
			return math.Inf(sign(a))
		}
		return a / b
	case isa.OpFneg:
		return -a
	case isa.OpFmov:
		return a
	case isa.OpCvtif:
		return float64(st.R[in.Rs1])
	}
	panic(fmt.Sprintf("funcsim: FPResult on %v", in.Op))
}

func sign(a float64) int {
	if a < 0 {
		return -1
	}
	return 1
}

// BranchTaken evaluates a conditional branch's predicate.
func BranchTaken(st *State, in isa.Inst) bool {
	a, b := st.R[in.Rs1], st.R[in.Rs2]
	switch in.Op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return a < b
	case isa.OpBge:
		return a >= b
	case isa.OpBltu:
		return uint64(a) < uint64(b)
	case isa.OpBgeu:
		return uint64(a) >= uint64(b)
	}
	panic(fmt.Sprintf("funcsim: BranchTaken on %v", in.Op))
}

// NextPC computes the successor PC of the instruction in at pc, evaluating
// branch predicates and jump targets against st.
func NextPC(st *State, in isa.Inst, pc uint64) uint64 {
	switch isa.Classify(in.Op) {
	case isa.ClassBranch:
		if BranchTaken(st, in) {
			return isa.BranchTarget(in, pc)
		}
		return pc + 4
	case isa.ClassJump:
		switch in.Op {
		case isa.OpJ, isa.OpJal:
			return isa.BranchTarget(in, pc)
		default: // jr, jalr
			off := in.Imm
			if !in.HasImm {
				off = st.R[in.Rs2]
			}
			return uint64(st.R[in.Rs1] + off)
		}
	default:
		return pc + 4
	}
}

// Step architecturally executes the instruction at st.PC and advances PC.
// It returns the executed instruction.
func (st *State) Step(prog *loader.Program) (isa.Inst, error) {
	in, err := prog.Fetch(st.PC)
	if err != nil {
		st.Halted = true
		return isa.Inst{}, err
	}
	pc := st.PC
	Apply(st, in, pc)
	st.PC = NextPC(st, in, pc)
	st.InstCount++
	return in, nil
}

// Apply performs the data side effects of in at pc (register writes, memory
// writes, syscalls) without touching st.PC. Control flow is resolved
// separately via NextPC so timing simulators can reuse this code.
func Apply(st *State, in isa.Inst, pc uint64) {
	switch isa.Classify(in.Op) {
	case isa.ClassNop:
	case isa.ClassIntALU, isa.ClassIntMul:
		st.SetReg(in.Rd, ALUResult(st, in, pc))
	case isa.ClassLoad:
		addr := EffAddr(st, in)
		switch in.Op {
		case isa.OpLdb:
			st.SetReg(in.Rd, int64(int8(st.Mem.Read8(addr))))
		case isa.OpLdw:
			st.SetReg(in.Rd, int64(int32(st.Mem.Read32(addr))))
		case isa.OpLdd:
			st.SetReg(in.Rd, int64(st.Mem.Read64(addr)))
		case isa.OpFld:
			st.F[in.Rd] = math.Float64frombits(st.Mem.Read64(addr))
		}
	case isa.ClassStore:
		addr := EffAddr(st, in)
		switch in.Op {
		case isa.OpStb:
			st.Mem.Write8(addr, byte(st.R[in.Rd]))
		case isa.OpStw:
			st.Mem.Write32(addr, uint32(st.R[in.Rd]))
		case isa.OpStd:
			st.Mem.Write64(addr, uint64(st.R[in.Rd]))
		case isa.OpFst:
			st.Mem.Write64(addr, math.Float64bits(st.F[in.Rd]))
		}
	case isa.ClassBranch:
		// predicate only; no data side effects
	case isa.ClassJump:
		if in.Op == isa.OpJal {
			st.SetReg(isa.RegRA, int64(pc+4))
		} else if in.Op == isa.OpJalr {
			st.SetReg(in.Rd, int64(pc+4))
		}
	case isa.ClassFP:
		switch in.Op {
		case isa.OpFcmp, isa.OpCvtfi:
			st.SetReg(in.Rd, ALUResult(st, in, pc))
		default:
			st.F[in.Rd] = FPResult(st, in)
		}
	case isa.ClassSys:
		if in.Op == isa.OpHalt {
			st.Halted = true
		} else {
			st.Syscall()
		}
	}
}

// Result summarizes a completed run.
type Result struct {
	Insts      uint64
	ExitStatus int64
	Output     []byte
}

// Run executes prog to completion (or maxInsts, whichever first) and
// returns the result. maxInsts <= 0 means no limit.
func Run(prog *loader.Program, maxInsts uint64) (*State, Result, error) {
	st := NewState(prog)
	if err := st.RunOn(prog, maxInsts); err != nil {
		return st, Result{}, err
	}
	return st, Result{Insts: st.InstCount, ExitStatus: st.ExitStatus, Output: st.Output}, nil
}
