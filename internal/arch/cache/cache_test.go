package cache

import (
	"testing"
	"testing/quick"
)

func TestHitAfterMiss(t *testing.T) {
	h := New(DefaultHierarchy())
	lat1 := h.Data(0x1000, 0, false)
	if lat1 <= h.cfg.L1D.HitLat {
		t.Fatalf("first access latency %d should be a miss", lat1)
	}
	lat2 := h.Data(0x1000, lat1+1, false)
	if lat2 != h.cfg.L1D.HitLat {
		t.Fatalf("second access latency %d, want hit %d", lat2, h.cfg.L1D.HitLat)
	}
	if h.L1D.Stats.Misses != 1 || h.L1D.Stats.Hits != 1 {
		t.Fatalf("stats %+v", h.L1D.Stats)
	}
}

func TestSameLineSharesMiss(t *testing.T) {
	h := New(DefaultHierarchy())
	lat1 := h.Data(0x2000, 0, false)
	// Another access to the same line while the miss is outstanding must
	// merge into the MSHR and see only the remaining latency.
	lat2 := h.Data(0x2008, 5, false)
	if lat2 >= lat1 {
		t.Fatalf("MSHR merge latency %d not less than original %d", lat2, lat1)
	}
	if lat2 != lat1-5 {
		t.Fatalf("remaining latency %d, want %d", lat2, lat1-5)
	}
	if h.L1D.Stats.MSHRHits != 1 {
		t.Fatalf("stats %+v", h.L1D.Stats)
	}
}

func TestL2CatchesL1Evictions(t *testing.T) {
	cfg := DefaultHierarchy()
	h := New(cfg)
	// Fill more lines than L1 holds in one set's ways by striding a set.
	// With 32K/32B/2-way there are 512 sets; addresses 32*512 apart share
	// a set.
	setStride := uint64(cfg.L1D.LineBytes * (cfg.L1D.SizeBytes / cfg.L1D.LineBytes / cfg.L1D.Assoc))
	now := uint64(0)
	for i := uint64(0); i < 4; i++ {
		now += h.Data(i*setStride, now, false)
	}
	// The first line has been evicted from L1 but should hit in L2.
	lat := h.Data(0, now+100, false)
	want := cfg.L1D.HitLat + cfg.L2.HitLat
	if lat != want {
		t.Fatalf("L1-evicted access latency %d, want L2 hit %d", lat, want)
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := NewCache(Config{Name: "t", SizeBytes: 64, LineBytes: 32, Assoc: 2, HitLat: 1})
	// one set of two ways; lines A, B, C map to it (size 64 = 2 lines)
	if c.lookup(0) {
		t.Fatal("cold hit")
	}
	if c.lookup(1 << 10) {
		t.Fatal("cold hit")
	}
	if !c.lookup(0) {
		t.Fatal("A should still be resident")
	}
	// insert C: evicts B (LRU), keeps A (MRU)
	if c.lookup(2 << 10) {
		t.Fatal("cold hit")
	}
	if !c.lookup(0) {
		t.Fatal("A evicted wrongly")
	}
	if c.lookup(1 << 10) {
		t.Fatal("B should have been evicted")
	}
}

func TestInstAndDataSeparate(t *testing.T) {
	h := New(DefaultHierarchy())
	h.Inst(0x1000, 0)
	if h.L1D.Stats.Accesses != 0 {
		t.Fatal("I-fetch touched the D-cache")
	}
	if h.L1I.Stats.Accesses != 1 {
		t.Fatal("I-fetch missed the I-cache stats")
	}
}

// Property: latency is always at least the L1 hit latency and at most the
// full miss path.
func TestLatencyBounds(t *testing.T) {
	cfg := DefaultHierarchy()
	h := New(cfg)
	maxLat := cfg.TLB.MissLat + cfg.L1D.HitLat + cfg.L2.HitLat + cfg.MemLat
	now := uint64(0)
	f := func(addr uint32, advance uint8) bool {
		now += uint64(advance)
		lat := h.Data(uint64(addr), now, false)
		return lat >= cfg.L1D.HitLat && lat <= maxLat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestResetClears(t *testing.T) {
	h := New(DefaultHierarchy())
	h.Data(0x100, 0, false)
	h.Reset()
	if h.L1D.Stats.Accesses != 0 {
		t.Fatal("stats survive reset")
	}
	if lat := h.Data(0x100, 0, false); lat <= h.cfg.L1D.HitLat {
		t.Fatal("contents survive reset")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 2, PageBits: 12, MissLat: 30})
	if tlb.Lookup(0x1000) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Lookup(0x1fff) {
		t.Fatal("same-page access missed")
	}
	if tlb.Lookup(0x2000) {
		t.Fatal("new page hit")
	}
	// 0x1xxx is now LRU of {0x2, 0x1}; a third page evicts it.
	if tlb.Lookup(0x3000) {
		t.Fatal("new page hit")
	}
	if tlb.Lookup(0x1000) {
		t.Fatal("evicted page still present")
	}
	if tlb.Stats.Lookups != 5 || tlb.Stats.Misses != 4 {
		t.Fatalf("stats %+v", tlb.Stats)
	}
}

func TestTLBDisabled(t *testing.T) {
	tlb := NewTLB(TLBConfig{})
	for _, a := range []uint64{0, 0x1000, 0xffff_0000} {
		if !tlb.Lookup(a) {
			t.Fatal("disabled TLB must always hit")
		}
	}
	if tlb.Stats.Lookups != 0 {
		t.Fatal("disabled TLB keeps stats")
	}
}

func TestTLBMissLatencyAdded(t *testing.T) {
	cfg := DefaultHierarchy()
	with := New(cfg)
	cfg2 := cfg
	cfg2.TLB.Entries = 0
	without := New(cfg2)
	// First touch of a page: cache miss either way, TLB walk only on `with`.
	lw := with.Data(0x4000, 0, false)
	lwo := without.Data(0x4000, 0, false)
	if lw != lwo+cfg.TLB.MissLat {
		t.Fatalf("TLB-miss latency: with=%d without=%d walk=%d", lw, lwo, cfg.TLB.MissLat)
	}
	// Second access on the same page and line: TLB hit, no walk.
	if l2 := with.Data(0x4000, 100, false); l2 != cfg.L1D.HitLat {
		t.Fatalf("warm access latency %d", l2)
	}
}
