// Package cache implements the non-blocking cache hierarchy (split L1
// instruction/data caches over a unified L2) used by the timing models.
//
// Each cache is set-associative with true-LRU replacement. Non-blocking
// behaviour is modeled with miss status holding registers (MSHRs): a miss
// records the cycle at which its line becomes ready; overlapping accesses
// to the same line merge into the outstanding miss and see only the
// remaining latency. Per the paper, the cache simulator is external,
// dynamic code: fast-forwarding simulators call it on every replay and
// verify its latency results against the memoized ones.
package cache

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
	HitLat    uint64 // latency of a hit, in cycles
	MSHRs     int    // max outstanding misses (0 = blocking)
}

// TLBConfig sizes the data TLB: a fully-associative, true-LRU array of
// page translations consulted on every data access. A miss adds the
// page-walk penalty to the access latency. Entries <= 0 disables the TLB
// (a perfect translation path), preserving the behaviour of hand-built
// hierarchies that predate the model.
type TLBConfig struct {
	Entries  int    // translation entries (fully associative)
	PageBits int    // log2 page size
	MissLat  uint64 // page-walk penalty added to a missing access
}

// TLBStats accumulates TLB counters.
type TLBStats struct {
	Lookups uint64
	Misses  uint64
}

// TLB is the data translation lookaside buffer.
type TLB struct {
	cfg   TLBConfig
	pages []uint64 // virtual page numbers in LRU order, most recent first
	Stats TLBStats
}

// NewTLB builds a TLB for cfg (nil-safe to disable: Entries <= 0 always
// hits and keeps no state).
func NewTLB(cfg TLBConfig) *TLB {
	t := &TLB{cfg: cfg}
	if cfg.Entries > 0 {
		t.pages = make([]uint64, 0, cfg.Entries)
	}
	return t
}

// Reset clears translations and stats.
func (t *TLB) Reset() {
	t.pages = t.pages[:0]
	t.Stats = TLBStats{}
}

// Lookup probes the TLB for addr's page, updates LRU order, and installs
// the page on a miss (the fill is logical; the walk latency is accounted
// by the hierarchy). It reports a hit.
func (t *TLB) Lookup(addr uint64) bool {
	if t.cfg.Entries <= 0 {
		return true // disabled: perfect translation
	}
	t.Stats.Lookups++
	pg := addr >> uint(t.cfg.PageBits)
	for i, p := range t.pages {
		if p == pg {
			copy(t.pages[1:i+1], t.pages[:i])
			t.pages[0] = pg
			return true
		}
	}
	t.Stats.Misses++
	if len(t.pages) < t.cfg.Entries {
		t.pages = append(t.pages, 0)
	}
	copy(t.pages[1:], t.pages)
	t.pages[0] = pg
	return false
}

// HierarchyConfig describes the full memory system.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	TLB          TLBConfig // data TLB (Entries <= 0 disables it)
	MemLat       uint64    // latency of a memory access beyond L2
}

// DefaultHierarchy mirrors the class of machine the paper simulates
// (R10000-era): 32 KB split L1s, 512 KB unified L2, 64-entry data TLB
// over 4 KB pages.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:    Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2, HitLat: 1, MSHRs: 4},
		L1D:    Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2, HitLat: 1, MSHRs: 8},
		L2:     Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 4, HitLat: 8, MSHRs: 8},
		TLB:    TLBConfig{Entries: 64, PageBits: 12, MissLat: 30},
		MemLat: 40,
	}
}

// Stats accumulates per-cache counters.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	MSHRHits uint64 // merged into an outstanding miss
}

type set struct {
	tags []uint64 // tags in LRU order, most recent first
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg      Config
	sets     []set
	lineBits uint
	setMask  uint64
	mshrLine []uint64 // line address per active MSHR
	mshrDone []uint64 // ready cycle per active MSHR
	mshrMax  uint64   // latest outstanding completion; skip scans beyond it
	Stats    Stats
}

// NewCache builds a cache for cfg.
func NewCache(cfg Config) *Cache {
	nLines := cfg.SizeBytes / cfg.LineBytes
	nSets := nLines / cfg.Assoc
	if nSets < 1 {
		nSets = 1
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([]set, nSets),
		lineBits: lineBits,
		setMask:  uint64(nSets - 1),
	}
	for i := range c.sets {
		c.sets[i].tags = make([]uint64, 0, cfg.Assoc)
	}
	if cfg.MSHRs > 0 {
		c.mshrLine = make([]uint64, cfg.MSHRs)
		c.mshrDone = make([]uint64, cfg.MSHRs)
	}
	return c
}

// Reset clears contents, MSHRs, and stats.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i].tags = c.sets[i].tags[:0]
	}
	for i := range c.mshrDone {
		c.mshrDone[i] = 0
	}
	c.mshrMax = 0
	c.Stats = Stats{}
}

func (c *Cache) line(addr uint64) uint64 { return addr >> c.lineBits }

// lookup probes the cache and updates LRU order. It reports a hit and,
// on miss, installs the line (fill happens logically at access time; the
// latency is accounted separately).
func (c *Cache) lookup(addr uint64) bool {
	ln := c.line(addr)
	s := &c.sets[ln&c.setMask]
	for i, t := range s.tags {
		if t == ln {
			// move to MRU
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = ln
			return true
		}
	}
	// miss: install at MRU, evicting LRU if full
	if len(s.tags) < c.cfg.Assoc {
		s.tags = append(s.tags, 0)
	}
	copy(s.tags[1:], s.tags)
	s.tags[0] = ln
	return false
}

// mshrRemaining consults the MSHRs for an outstanding miss on addr's line.
// It returns the remaining latency if found.
func (c *Cache) mshrRemaining(addr, now uint64) (uint64, bool) {
	if now >= c.mshrMax {
		return 0, false // no miss outstanding anywhere
	}
	ln := c.line(addr)
	for i := range c.mshrLine {
		if c.mshrDone[i] > now && c.mshrLine[i] == ln {
			return c.mshrDone[i] - now, true
		}
	}
	return 0, false
}

// mshrAllocate records an outstanding miss completing at done.
func (c *Cache) mshrAllocate(addr, done uint64) {
	if len(c.mshrLine) == 0 {
		return
	}
	// Reuse an expired slot; otherwise overwrite the soonest-to-complete
	// (models MSHR exhaustion conservatively without stalling the model).
	best, bestDone := 0, ^uint64(0)
	for i := range c.mshrLine {
		if c.mshrDone[i] < bestDone {
			best, bestDone = i, c.mshrDone[i]
		}
	}
	c.mshrLine[best] = c.line(addr)
	c.mshrDone[best] = done
	if done > c.mshrMax {
		c.mshrMax = done
	}
}

// Hierarchy is the complete memory system.
type Hierarchy struct {
	cfg  HierarchyConfig
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	DTLB *TLB
}

// New builds a hierarchy for cfg.
func New(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		L1I:  NewCache(cfg.L1I),
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		DTLB: NewTLB(cfg.TLB),
	}
}

// Reset clears the whole hierarchy.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.DTLB.Reset()
}

// access runs the two-level protocol through l1 and the shared L2.
func (h *Hierarchy) access(l1 *Cache, addr, now uint64) uint64 {
	l1.Stats.Accesses++
	if rem, ok := l1.mshrRemaining(addr, now); ok {
		l1.Stats.MSHRHits++
		l1.lookup(addr) // keep LRU state warm
		return rem
	}
	if l1.lookup(addr) {
		l1.Stats.Hits++
		return l1.cfg.HitLat
	}
	l1.Stats.Misses++
	lat := l1.cfg.HitLat
	h.L2.Stats.Accesses++
	if rem, ok := h.L2.mshrRemaining(addr, now); ok {
		h.L2.Stats.MSHRHits++
		h.L2.lookup(addr)
		lat += rem
	} else if h.L2.lookup(addr) {
		h.L2.Stats.Hits++
		lat += h.L2.cfg.HitLat
	} else {
		h.L2.Stats.Misses++
		lat += h.L2.cfg.HitLat + h.cfg.MemLat
		h.L2.mshrAllocate(addr, now+lat)
	}
	l1.mshrAllocate(addr, now+lat)
	return lat
}

// Data performs a data access (load or store) at cycle now and returns its
// latency in cycles: the TLB walk (on a translation miss) plus the cache
// protocol. Stores use the same path (write-allocate, write-back is not
// separately modeled — timing only).
func (h *Hierarchy) Data(addr, now uint64, write bool) uint64 {
	var lat uint64
	if !h.DTLB.Lookup(addr) {
		lat = h.cfg.TLB.MissLat
	}
	return lat + h.access(h.L1D, addr, now+lat)
}

// Inst performs an instruction fetch access at cycle now.
func (h *Hierarchy) Inst(addr, now uint64) uint64 {
	return h.access(h.L1I, addr, now)
}

// MinLatency reports the L1 hit latency (the fast path), used by pipeline
// models for scheduling hints.
func (h *Hierarchy) MinLatency() uint64 { return h.cfg.L1D.HitLat }
