package cache

import (
	"fmt"

	"facile/internal/snapshot"
)

// SaveState serializes the cache's dynamic state: per-set tag lists in LRU
// order, the MSHR file, and the access statistics (which are deterministic
// simulation outputs, so they belong to the hashed STATE section).
func (c *Cache) SaveState(w *snapshot.Writer) {
	w.U64(uint64(len(c.sets)))
	for i := range c.sets {
		w.U64s(c.sets[i].tags)
	}
	w.U64s(c.mshrLine)
	w.U64s(c.mshrDone)
	w.U64(c.mshrMax)
	w.U64(c.Stats.Accesses)
	w.U64(c.Stats.Hits)
	w.U64(c.Stats.Misses)
	w.U64(c.Stats.MSHRHits)
}

// LoadState restores a cache built with the same configuration.
func (c *Cache) LoadState(r *snapshot.Reader) error {
	n := r.U64()
	if r.Err() == nil && n != uint64(len(c.sets)) {
		return fmt.Errorf("cache: snapshot has %d sets, %s is configured with %d", n, c.cfg.Name, len(c.sets))
	}
	for i := range c.sets {
		tags := r.U64s()
		if len(tags) > c.cfg.Assoc {
			return fmt.Errorf("cache: snapshot set %d holds %d ways, %s allows %d", i, len(tags), c.cfg.Name, c.cfg.Assoc)
		}
		c.sets[i].tags = append(c.sets[i].tags[:0], tags...)
	}
	mshrLine := r.U64s()
	mshrDone := r.U64s()
	if r.Err() == nil && (len(mshrLine) != len(c.mshrLine) || len(mshrDone) != len(c.mshrDone)) {
		return fmt.Errorf("cache: snapshot MSHR count mismatch for %s", c.cfg.Name)
	}
	copy(c.mshrLine, mshrLine)
	copy(c.mshrDone, mshrDone)
	c.mshrMax = r.U64()
	c.Stats.Accesses = r.U64()
	c.Stats.Hits = r.U64()
	c.Stats.Misses = r.U64()
	c.Stats.MSHRHits = r.U64()
	return r.Err()
}

// SaveState serializes the TLB's dynamic state: the page numbers in LRU
// order and the (deterministic) stats.
func (t *TLB) SaveState(w *snapshot.Writer) {
	w.U64s(t.pages)
	w.U64(t.Stats.Lookups)
	w.U64(t.Stats.Misses)
}

// LoadState restores a TLB built with the same configuration.
func (t *TLB) LoadState(r *snapshot.Reader) error {
	pages := r.U64s()
	if r.Err() == nil && len(pages) > t.cfg.Entries {
		return fmt.Errorf("cache: snapshot TLB holds %d entries, configured for %d", len(pages), t.cfg.Entries)
	}
	t.pages = append(t.pages[:0], pages...)
	t.Stats.Lookups = r.U64()
	t.Stats.Misses = r.U64()
	return r.Err()
}

// SaveState serializes all three levels of the hierarchy plus the TLB.
func (h *Hierarchy) SaveState(w *snapshot.Writer) {
	h.L1I.SaveState(w)
	h.L1D.SaveState(w)
	h.L2.SaveState(w)
	h.DTLB.SaveState(w)
}

// LoadState restores a hierarchy built with the same configuration.
func (h *Hierarchy) LoadState(r *snapshot.Reader) error {
	if err := h.L1I.LoadState(r); err != nil {
		return err
	}
	if err := h.L1D.LoadState(r); err != nil {
		return err
	}
	if err := h.L2.LoadState(r); err != nil {
		return err
	}
	return h.DTLB.LoadState(r)
}
