package fastsim

import (
	"encoding/binary"
	"fmt"

	"facile/internal/isa/loader"
)

// snapshotKey serializes the run-time static pipeline state — the paper's
// compressed instruction queue (Figure 3) — into a byte string used as the
// specialized action cache key. Only rt-static data goes in: fetch state
// and, per in-flight instruction, its PC, pipeline stage, remaining
// latency, and misprediction flag. Register values, memory, cache and
// predictor contents, and the cycle count are dynamic and excluded.
//
// PCs are stored varint-encoded relative to the text base, so a 32-entry
// window typically compresses to a few dozen bytes, matching the paper's
// "fewer than 40 bytes" observation.
func (e *engine) snapshotKey() string {
	var buf [16 + 16*64]byte
	n := 0
	n += binary.PutUvarint(buf[n:], (e.fetchPC-loader.TextBase)/4)
	flags := byte(0)
	if e.stalled {
		flags |= 1
	}
	if e.serialize {
		flags |= 2
	}
	buf[n] = flags
	n++
	n += binary.PutUvarint(buf[n:], e.resumeIn)
	n += binary.PutUvarint(buf[n:], uint64(len(e.win)))
	for i := range e.win {
		ent := &e.win[i]
		n += binary.PutUvarint(buf[n:], (ent.pc-loader.TextBase)/4)
		b := byte(ent.state)
		if ent.mispred {
			b |= 4
		}
		buf[n] = b
		n++
		if ent.state == stExecuting {
			n += binary.PutUvarint(buf[n:], ent.remain)
		}
	}
	return string(buf[:n])
}

// restoreFromKey rebuilds the engine's rt-static pipeline state from key
// (the inverse of snapshotKey) and re-derives everything else: decoded
// instructions from the rt-static text, and each entry's dynamic effective
// address / resolved next PC from the replayer's slot arrays (dynamic
// global state that persists across steps, as in the paper's
// global-variable communication between the fast and slow simulators).
// cycle is the absolute cycle at which the restored step begins.
func (e *engine) restoreFromKey(key string, getSlot func(int) (addr, npc uint64), cycle uint64) error {
	buf := []byte(key)
	n := 0
	rd := func() (uint64, error) {
		v, k := binary.Uvarint(buf[n:])
		if k <= 0 {
			return 0, fmt.Errorf("fastsim: corrupt action cache key")
		}
		n += k
		return v, nil
	}
	fpc, err := rd()
	if err != nil {
		return err
	}
	e.fetchPC = loader.TextBase + fpc*4
	if n >= len(buf) {
		return fmt.Errorf("fastsim: truncated key")
	}
	flags := buf[n]
	n++
	e.stalled = flags&1 != 0
	e.serialize = flags&2 != 0
	if e.resumeIn, err = rd(); err != nil {
		return err
	}
	cnt, err := rd()
	if err != nil {
		return err
	}
	if cnt > uint64(e.cfg.Window) {
		return fmt.Errorf("fastsim: key window size %d exceeds configuration", cnt)
	}
	e.win = e.win[:0]
	for i := uint64(0); i < cnt; i++ {
		var ent entry
		pc, err := rd()
		if err != nil {
			return err
		}
		ent.pc = loader.TextBase + pc*4
		if n >= len(buf) {
			return fmt.Errorf("fastsim: truncated key entry")
		}
		b := buf[n]
		n++
		ent.state = entryState(b & 3)
		ent.mispred = b&4 != 0
		if ent.state == stExecuting {
			if ent.remain, err = rd(); err != nil {
				return err
			}
		}
		ent.d = e.decorFor(ent.pc)
		ent.addr, ent.actualNPC = getSlot(int(i))
		e.win = append(e.win, ent)
	}
	for i := range e.win {
		e.computeDeps(i)
	}
	e.cycle = cycle
	e.haltSeen = false
	return nil
}
