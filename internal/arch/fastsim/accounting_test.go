package fastsim

import (
	"fmt"
	"testing"

	"facile/internal/arch/uarch"
	"facile/internal/faults"
)

// sumEntryBytes is the occupancy the gauge should report: the bytes charged
// by every entry still installed in the cache.
func sumEntryBytes(c *acache) uint64 {
	var n uint64
	for _, e := range c.m {
		n += e.bytes
	}
	return n
}

func TestInvalidationRefundsEntryBytes(t *testing.T) {
	c := newACache(0, nil)
	var ents []*centry
	for i := 0; i < 6; i++ {
		e := &centry{key: fmt.Sprintf("key%d", i)}
		c.put(e)
		c.charge(e, uint64(100*(i+1)))
		ents = append(ents, e)
	}
	if c.g.Bytes != sumEntryBytes(c) {
		t.Fatalf("occupancy %d != charged entry bytes %d", c.g.Bytes, sumEntryBytes(c))
	}
	// N invalidations must leave the occupancy equal to the bytes of the
	// surviving entries.
	for _, i := range []int{1, 3, 4} {
		c.invalidate(ents[i])
	}
	if want := sumEntryBytes(c); c.g.Bytes != want {
		t.Fatalf("after invalidations: occupancy %d, surviving entries hold %d", c.g.Bytes, want)
	}
	if len(c.m) != 3 {
		t.Fatalf("expected 3 surviving entries, have %d", len(c.m))
	}
	// Invalidating a dead entry again must not refund twice.
	before := c.g.Bytes
	c.invalidate(ents[1])
	if c.g.Bytes != before {
		t.Fatalf("double invalidation changed occupancy: %d -> %d", before, c.g.Bytes)
	}
	if c.g.Invalidations != 4 {
		t.Fatalf("invalidations = %d, want 4", c.g.Invalidations)
	}
	// A stale invalidation after a clear must not underflow the fresh gauge.
	c.clearNow()
	c.invalidate(ents[0])
	if c.g.Bytes != 0 {
		t.Fatalf("post-clear stale invalidation left occupancy %d", c.g.Bytes)
	}
}

func TestFaultRunKeepsAccountingConsistent(t *testing.T) {
	// End to end: a run that invalidates entries via injected faults must
	// leave the gauge equal to the surviving entries' charged bytes.
	for _, w := range faultWorkloads {
		t.Run(w.name, func(t *testing.T) {
			p := asmOrDie(t, w.src)
			ij := faults.NewInjector(7, 5,
				faults.InjBreakChain, faults.InjFlipFork, faults.InjTruncate)
			s := New(uarch.Default(), p, Options{Memoize: true, Inject: ij})
			s.Run(0)
			st := s.Stats()
			if st.Invalidations == 0 {
				t.Fatalf("injector produced no invalidations: %+v", st)
			}
			if want := sumEntryBytes(s.ac); st.CacheBytes != want {
				t.Errorf("occupancy %d != surviving entries' bytes %d (stats %+v)",
					st.CacheBytes, want, st)
			}
		})
	}
}
