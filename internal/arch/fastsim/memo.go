package fastsim

import (
	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/faults"
	"facile/internal/isa"
	"facile/internal/isa/loader"
	"facile/internal/memocache"
	"facile/internal/obs"
)

// Action kinds. Actions are the dynamic basic blocks of the hand-coded
// simulator: the only work the fast simulator performs.
const (
	aExec    uint8 = iota // functionally execute instruction (pc, in, slot)
	aICache               // I-cache access; dynamic result = latency
	aDCache               // D-cache access for slot's address; result = latency
	aPredict              // branch predictor query; result = predicted next PC
	aNextPC               // resolved next PC of slot; dynamic result test
	aUpdate               // predictor update at commit of slot
	aShift                // k instructions committed; window slots shift left
	aHalted               // dynamic halt-flag test
	aEnd                  // step boundary; links to the next cache entry
)

const flagWrite = 1
const flagMispred = 2

// fork is one recorded successor of a dynamic-result action: the control
// path taken when the dynamic value equaled val.
type fork struct {
	val  uint64
	next *action
}

// action is one node in the specialized action cache.
type action struct {
	kind  uint8
	flags uint8
	cls   isa.Class // aExec: precomputed classification
	slot  uint16
	dcyc  uint32 // cycles elapsed since the previous action (rt-static)
	pc    uint64
	in    isa.Inst
	forks []fork // successors of dynamic-result actions, keyed by value
	next  *action

	// aEnd only:
	nextKey string
	link    *centry
	linkGen uint64

	// Derived compiled-replay state (see compile.go): the superinstruction
	// headed by this action, valid only while fusedVer equals the owning
	// entry's cver. Never serialized — snapshot/warmio enumerate fields
	// explicitly — and rebuilt lazily after warm adoption.
	fused    *fusedActs
	fusedVer uint64
}

// findFork returns the successor recorded for value v, if any.
func (a *action) findFork(v uint64) (*action, bool) {
	for i := range a.forks {
		if a.forks[i].val == v {
			return a.forks[i].next, true
		}
	}
	return nil, false
}

// centry is one specialized action cache entry: a key (the compressed
// instruction queue) and the recorded action graph.
type centry struct {
	key   string
	first *action
	gen   uint64
	bytes uint64 // bytes charged against the gauge for this entry

	// cver versions the entry's derived compiled-replay state: any
	// mutation of the recorded chain (fault injection, invalidation)
	// bumps it, so stale superinstructions are discarded and the mutated
	// chain is re-validated before its next replay.
	cver uint64
}

// Approximate byte accounting for Table 2. We charge the in-memory cost of
// each node rather than a serialized form; the paper's absolute megabyte
// counts depended on its binary format, so EXPERIMENTS.md compares shapes,
// not absolute sizes.
const (
	actionBytes = 96
	forkBytes   = 24
	entryBytes  = 48
)

// acache is the specialized action cache with the paper's
// clear-when-full policy (§6.1: "fixing a maximum cache size and clearing
// the cache when it fills"). Byte accounting, the clear policy, and the
// staleness generation live in memocache.Gauge, shared with internal/rt.
type acache struct {
	m   map[string]*centry
	g   memocache.Gauge
	rec *obs.Recorder
}

func newACache(capBytes uint64, rec *obs.Recorder) *acache {
	return &acache{
		m:   make(map[string]*centry),
		g:   memocache.Gauge{CapBytes: capBytes},
		rec: rec,
	}
}

func (c *acache) get(key string) *centry { return c.m[key] }

func (c *acache) put(e *centry) {
	e.gen = c.g.Gen
	if old := c.m[e.key]; old != nil && old != e {
		// Re-recording a key (e.g. after a corrupt-key recovery re-ran a
		// step the cache already held) replaces the old entry; refund it or
		// its bytes stay charged forever.
		c.g.Refund(old.bytes)
		old.bytes = 0
	}
	c.m[e.key] = e
	c.charge(e, uint64(entryBytes+len(e.key)))
	if c.g.Over() {
		// Clear when full — on the put that overflowed the cap, including
		// the entry just installed. In-progress replays detect stale
		// entries via the generation.
		c.clearNow()
	}
}

// charge accounts n freshly memoized bytes to the gauge and, when the bytes
// belong to a particular entry, to that entry — so a later invalidation can
// refund exactly what the entry charged.
func (c *acache) charge(e *centry, n uint64) {
	if e != nil {
		e.bytes += n
	}
	c.g.Charge(n)
}

// invalidate discards entry e after a fault, refunding its charged bytes.
// The refund happens only while e is still the cache's current entry for
// its key: after a clear the gauge was already reset, and refunding a stale
// entry would double-count. The generation moves either way so any
// replay-cached link to e re-validates and misses.
func (c *acache) invalidate(e *centry) {
	e.cver++ // discard derived compiled state along with the entry
	var refund uint64
	if cur, ok := c.m[e.key]; ok && cur == e {
		delete(c.m, e.key)
		refund = e.bytes
	}
	e.bytes = 0
	c.g.Invalidated(refund)
	c.rec.Event(obs.EvInvalidation, refund)
}

// clearNow discards the whole cache, as clear-when-full would.
func (c *acache) clearNow() {
	freed := c.g.Bytes
	c.m = make(map[string]*centry)
	c.g.Cleared()
	c.rec.Event(obs.EvClearWhenFull, freed)
}

// Stats reports memoization statistics.
type Stats struct {
	SlowInsts uint64 // instructions committed by the slow simulator
	FastInsts uint64 // instructions replayed by the fast simulator
	Steps     uint64 // slow steps recorded
	Replays   uint64 // steps replayed by the fast simulator
	Misses    uint64 // mid-step action cache misses (recoveries)
	KeyMisses uint64 // step-boundary key lookups that missed

	CacheBytes      uint64 // current cache occupancy (accounting model)
	CacheEntries    uint64
	TotalMemoBytes  uint64 // monotonic bytes ever memoized (Table 2)
	CacheClears     uint64
	FastForwardedPc float64 // percentage of instructions fast-forwarded

	// Fault recovery and graceful degradation.
	Faults               uint64 // invariant violations recovered on the fast path
	Invalidations        uint64 // cache entries discarded by fault recovery
	DegradedSteps        uint64 // steps abandoned mid-replay and re-run slow
	WatchdogTrips        uint64 // runaway-step watchdog activations
	SelfChecks           uint64 // replayable steps re-executed slow for checking
	SelfCheckDivergences uint64 // self-checks that disagreed with the cache
}

// Options configures a fast-forwarding simulator.
type Options struct {
	Memoize       bool
	CacheCapBytes uint64 // 0 = unlimited

	// StepCommits bounds the instructions committed per step when no
	// control transfer ends it earlier (0 = default 48). Larger steps
	// amortize key lookups over more work but multiply cache entries when
	// state recurrence is imperfect — the granularity trade-off of paper
	// §2.1.
	StepCommits int

	// SelfCheck is the fraction of replayable steps (0..1) that are
	// re-executed on the slow simulator instead of replayed, verifying the
	// recorded actions against the live run. A structural disagreement is a
	// fault: the entry is invalidated and the step finishes slow. Because
	// the checked step runs entirely on the always-correct slow path,
	// self-checking never perturbs cycle counts.
	SelfCheck     float64
	SelfCheckSeed uint64 // sampling PRNG seed (0 = fixed default)

	// Inject, when non-nil, deterministically corrupts cache entries just
	// before replay so tests can drive every recovery path on demand.
	Inject *faults.Injector

	// MaxReplayActions bounds the actions replayed within one step before
	// the watchdog trips and degrades the step to the slow simulator
	// (0 = default 1<<20). It catches cycles in a corrupted action graph.
	MaxReplayActions uint64

	// ReplayInterp selects the action-at-a-time replay interpreter instead
	// of the compiled closure-array substrate (see compile.go). The two
	// paths are bit-identical; the interpreter remains as an escape hatch
	// and as the differential-testing reference.
	ReplayInterp bool

	// MaxStepCycles bounds the cycles one slow step may simulate before the
	// watchdog trips (0 = default 1<<22).
	MaxStepCycles uint64

	// Obs, when non-nil, receives the memoization lifecycle (recorded /
	// replayed / miss / fault / invalidation / clear events), a sampled
	// time series of cache occupancy and slow-vs-fast split, and registry
	// metrics. Nil disables observability at the cost of one nil check per
	// event site.
	Obs *obs.Recorder

	// SampleEvery is the committed-instruction interval between time-series
	// samples (0 = obs.DefaultSampleEvery). Sampling is progress-driven, so
	// a run's series is deterministic.
	SampleEvery uint64
}

// Sim is the fast-forwarding out-of-order simulator.
type Sim struct {
	cfg  uarch.Config
	prog *loader.Program
	eng  *engine
	opt  Options
	ac   *acache

	// Dynamic global state shared between the fast and slow simulators
	// (the paper's global-variable channel): per-slot effective addresses
	// and resolved next PCs of in-flight instructions. Each in-flight
	// instruction keeps one fixed cell in a ring for its lifetime; a
	// window shift just advances base, and the step-start snapshot needed
	// for miss recovery is only a saved base/cycle pair (the cells of
	// entries alive at step start are never overwritten within a step).
	ringAddr []uint64
	ringNPC  []uint64
	ringMask uint32
	base     uint32

	// step-start snapshot for miss recovery
	startBase  uint32
	startCycle uint64
	curKey     string
	path       []uint64 // dynamic values produced along the replayed path
	ops        uint64   // sink-level operations performed by the current replay

	// lastNPC is the resolved next PC of the most recently fetched
	// instruction — the architectural resume point if the rt-static
	// pipeline state is ever lost (see drainReset).
	lastNPC uint64

	cycle      uint64
	engineLive bool
	done       bool

	slowInsts uint64
	fastInsts uint64
	steps     uint64
	replays   uint64
	misses    uint64
	keyMisses uint64

	scState    uint64 // self-check sampling PRNG
	faultCount uint64
	degraded   uint64
	wdTrips    uint64
	selfChecks uint64
	scDiverged uint64
	lastFault  *faults.Fault

	compiled bool // threaded/fused replay dispatch (== !opt.ReplayInterp)

	obs        *obs.Recorder
	sampler    *obs.Sampler
	hStepActs  *obs.Histogram // actions replayed per fast step
	hEntrySize *obs.Histogram // bytes charged per installed entry
	cFusedRuns *obs.Counter   // superinstructions built (lazily, per head action)
	cFusedDisp *obs.Counter   // superinstruction dispatches during replay
	cFusedActs *obs.Counter   // actions covered by fused dispatches
	cCompActs  *obs.Counter   // actions compiled into superinstructions
}

// New builds a fast-forwarding simulator for prog.
func New(cfg uarch.Config, prog *loader.Program, opt Options) *Sim {
	if opt.StepCommits <= 0 {
		opt.StepCommits = defaultStepCommits
	}
	if opt.MaxReplayActions == 0 {
		opt.MaxReplayActions = 1 << 20
	}
	if opt.MaxStepCycles == 0 {
		opt.MaxStepCycles = 1 << 22
	}
	ring := 1
	for ring < 2*(cfg.Window+opt.StepCommits+cfg.FetchWidth+4) {
		ring <<= 1
	}
	s := &Sim{
		cfg:        cfg,
		prog:       prog,
		eng:        newEngine(cfg, prog, opt.StepCommits),
		opt:        opt,
		ac:         newACache(opt.CacheCapBytes, opt.Obs),
		ringAddr:   make([]uint64, ring),
		ringNPC:    make([]uint64, ring),
		ringMask:   uint32(ring - 1),
		engineLive: true,
		lastNPC:    prog.Entry,
		scState:    opt.SelfCheckSeed,
		obs:        opt.Obs,
	}
	if s.scState == 0 {
		s.scState = 0xD1B54A32D192ED03
	}
	s.eng.maxStepCycles = opt.MaxStepCycles
	s.compiled = !opt.ReplayInterp
	reg := opt.Obs.Registry()
	s.hStepActs = reg.Histogram("fastsim.replay_actions_per_step")
	s.hEntrySize = reg.Histogram("fastsim.entry_bytes")
	s.cFusedRuns = reg.Counter("fastsim.fused_runs")
	s.cFusedDisp = reg.Counter("fastsim.fused_dispatches")
	s.cFusedActs = reg.Counter("fastsim.fused_acts")
	s.cCompActs = reg.Counter("fastsim.compiled_actions")
	s.sampler = obs.NewSampler(opt.Obs, opt.SampleEvery, s.sampleNow)
	return s
}

// sampleNow snapshots the quantities the sampled time series tracks. Called
// only from the engine's own loop, so reads need no synchronization.
func (s *Sim) sampleNow() obs.Sample {
	return obs.Sample{
		Cycles:       s.cycle,
		Insts:        s.slowInsts + s.fastInsts,
		SlowInsts:    s.slowInsts,
		FastInsts:    s.fastInsts,
		CacheBytes:   s.ac.g.Bytes,
		CacheEntries: uint64(len(s.ac.m)),
	}
}

func (s *Sim) setSlot(slot int, addr, npc uint64) {
	i := (s.base + uint32(slot)) & s.ringMask
	s.ringAddr[i] = addr
	s.ringNPC[i] = npc
	s.lastNPC = npc
}

func (s *Sim) slotAddrAt(slot int) uint64 {
	return s.ringAddr[(s.base+uint32(slot))&s.ringMask]
}

func (s *Sim) slotNPCAt(slot int) uint64 {
	return s.ringNPC[(s.base+uint32(slot))&s.ringMask]
}

// State exposes the canonical architectural state.
func (s *Sim) State() *funcsim.State { return s.eng.st }

// Stats returns memoization statistics for the run so far.
func (s *Sim) Stats() Stats {
	total := s.slowInsts + s.fastInsts
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.fastInsts) / float64(total)
	}
	return Stats{
		SlowInsts:       s.slowInsts,
		FastInsts:       s.fastInsts,
		Steps:           s.steps,
		Replays:         s.replays,
		Misses:          s.misses,
		KeyMisses:       s.keyMisses,
		CacheBytes:      s.ac.g.Bytes,
		CacheEntries:    uint64(len(s.ac.m)),
		TotalMemoBytes:  s.ac.g.TotalBytes,
		CacheClears:     s.ac.g.Clears,
		FastForwardedPc: pct,

		Faults:               s.faultCount,
		Invalidations:        s.ac.g.Invalidations,
		DegradedSteps:        s.degraded,
		WatchdogTrips:        s.wdTrips + s.eng.wdTrips,
		SelfChecks:           s.selfChecks,
		SelfCheckDivergences: s.scDiverged,
	}
}

// dynExec performs the dynamic half of fetching one instruction: effective
// address computation, next-PC resolution, and functional execution.
func dynExec(st *funcsim.State, in isa.Inst, pc uint64, cls isa.Class) (addr, npc uint64) {
	switch cls {
	case isa.ClassLoad, isa.ClassStore:
		addr = funcsim.EffAddr(st, in)
		npc = pc + 4
	case isa.ClassBranch, isa.ClassJump:
		npc = funcsim.NextPC(st, in, pc)
	default:
		npc = pc + 4
	}
	funcsim.Apply(st, in, pc)
	return addr, npc
}

// needNextPCTest reports whether an instruction's resolved next PC is a
// dynamic value (conditional outcome or indirect target) that requires a
// dynamic-result test. Direct jumps have rt-static targets.
func needNextPCTest(in isa.Inst, cls isa.Class) bool {
	switch cls {
	case isa.ClassBranch:
		return true
	case isa.ClassJump:
		return in.Op == isa.OpJr || in.Op == isa.OpJalr
	}
	return false
}

func (s *Sim) shiftSlots(k int) {
	s.base = (s.base + uint32(k)) & s.ringMask
}

// Run simulates until the program halts or maxInsts commit.
func (s *Sim) Run(maxInsts uint64) uarch.Result {
	s.obs.Begin("fastsim.run")
	defer s.obs.End("fastsim.run")
	defer s.sampler.Flush()
	for !s.done {
		s.sampler.Tick(s.slowInsts + s.fastInsts)
		if maxInsts > 0 && s.slowInsts+s.fastInsts >= maxInsts {
			break
		}
		if s.opt.Memoize {
			key := s.curKey
			if s.engineLive {
				key = s.eng.snapshotKey()
			}
			if e := s.ac.get(key); e != nil {
				if inj := s.opt.Inject.Arm(); inj != faults.InjNone {
					s.injectFault(e, inj)
					if e = s.ac.get(key); e == nil {
						// The injection cleared the cache out from under us;
						// treat it as the key miss it now is.
						if !s.engineLive {
							s.keyMisses++
							s.obs.Event(obs.EvKeyMiss, uint64(len(key)))
							s.restoreEngine()
						}
						goto slow
					}
				}
				if s.selfCheckDue() {
					restored := true
					if !s.engineLive {
						restored = s.restoreEngine()
					}
					if restored {
						s.selfCheckStep(e)
						continue
					}
					// Corrupt step key: the drain reset already put the
					// engine back on the architectural stream; run slow.
				} else {
					if s.engineLive {
						s.beginReplay(key)
					}
					s.replayFrom(e, maxInsts)
					continue
				}
			} else if !s.engineLive {
				s.keyMisses++
				s.obs.Event(obs.EvKeyMiss, uint64(len(key)))
				s.restoreEngine()
			}
		}
	slow:
		s.runStepSlow()
	}
	st := s.eng.st
	return uarch.Result{
		Cycles:        s.cycle,
		Insts:         s.slowInsts + s.fastInsts,
		ExitStatus:    st.ExitStatus,
		Output:        st.Output,
		BranchLookups: s.eng.pred.Lookups,
		Mispredicts:   s.eng.pred.Mispredict,
		L1DMisses:     s.eng.mem.L1D.Stats.Misses,
		L2Misses:      s.eng.mem.L2.Stats.Misses,
	}
}

// beginReplay records the step-start snapshot (key, dynamic slot values,
// cycle) needed to restore the slow simulator on a miss, then marks the
// engine state stale.
func (s *Sim) beginReplay(key string) {
	s.curKey = key
	s.startBase = s.base
	s.startCycle = s.cycle
	s.engineLive = false
}

// restoreEngine rebuilds the slow simulator from the step-start snapshot.
// It reports false if the recorded key no longer parses (a corrupt-key
// fault), in which case drainReset has already put the engine back on the
// architectural instruction stream with an empty pipeline.
func (s *Sim) restoreEngine() bool {
	getSlot := func(i int) (uint64, uint64) {
		j := (s.startBase + uint32(i)) & s.ringMask
		return s.ringAddr[j], s.ringNPC[j]
	}
	if err := s.eng.restoreFromKey(s.curKey, getSlot, s.startCycle); err != nil {
		s.fault(faults.CorruptKey, err.Error())
		s.drainReset()
		return false
	}
	s.base = s.startBase
	s.cycle = s.startCycle
	s.engineLive = true
	return true
}

// drainReset recovers from an unrecoverable rt-static pipeline state: every
// fetched instruction has already executed functionally (fetch applies
// functional effects in program order), so an empty window refetching from
// the last resolved next PC preserves the architectural stream exactly —
// only the timing of the instructions that were in flight is approximated.
func (s *Sim) drainReset() {
	e := s.eng
	e.win = e.win[:0]
	e.fetchPC = s.lastNPC
	e.stalled = false
	e.serialize = false
	e.resumeIn = 0
	e.cycle = s.cycle
	e.haltSeen = e.st.Halted
	s.engineLive = true
	if e.haltSeen {
		s.done = true
	}
}

// fault records one recovered invariant violation.
func (s *Sim) fault(kind faults.Kind, detail string) {
	s.faultCount++
	s.lastFault = faults.New(kind, "fastsim", detail)
	s.obs.EventDetail(obs.EvFault, 0, kind.String())
}

// LastFault returns the most recently recovered fault, if any.
func (s *Sim) LastFault() *faults.Fault { return s.lastFault }

// stepHook reports whether per-step policies (fault injection, self-check
// sampling) require the Run loop to mediate every step boundary instead of
// letting the replayer chain entries directly.
func (s *Sim) stepHook() bool {
	return s.opt.Inject != nil || s.opt.SelfCheck > 0
}

// selfCheckDue samples the configured self-check fraction.
func (s *Sim) selfCheckDue() bool {
	f := s.opt.SelfCheck
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	x := s.scState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.scState = x
	return float64(x>>11)/(1<<53) < f
}

// runStepSlow runs one step of the slow/complete simulator, recording its
// actions into a fresh cache entry (when memoizing).
func (s *Sim) runStepSlow() {
	s.steps++
	if !s.opt.Memoize {
		c := s.eng.runStep(&nopSink{s: s})
		s.slowInsts += uint64(c)
		s.cycle = s.eng.cycle
		s.done = s.eng.haltSeen
		return
	}
	ent := &centry{key: s.eng.snapshotKey()}
	rec := &recorder{s: s, ent: ent, tail: &ent.first, lastCycle: s.eng.cycle}
	s.eng.runStep(rec)
	s.finishSlowStep(rec, ent)
}

// finishSlowStep seals a recorded entry (normal or recovery) and installs
// it in the action cache. A nil rec (degraded step: nothing worth keeping)
// just seals the cycle/halt state.
func (s *Sim) finishSlowStep(rec *recorder, ent *centry) {
	s.cycle = s.eng.cycle
	if s.eng.haltSeen {
		s.done = true
	} else if rec != nil {
		end := &action{kind: aEnd, nextKey: s.eng.snapshotKey()}
		rec.emit(end)
	}
	if ent != nil {
		s.ac.put(ent)
		s.obs.Event(obs.EvStepRecorded, ent.bytes)
		s.hEntrySize.Observe(ent.bytes)
	}
}

// --- recorder: normal slow simulation ------------------------------------

type recorder struct {
	s         *Sim
	ent       *centry // entry the recorded bytes are charged to
	tail      **action
	lastCycle uint64
}

func (r *recorder) emit(a *action) {
	a.dcyc = uint32(r.s.eng.cycle - r.lastCycle)
	r.lastCycle = r.s.eng.cycle
	*r.tail = a
	r.tail = &a.next
	r.s.ac.charge(r.ent, actionBytes)
}

// emitResult records a dynamic-result fork for value v on the (just
// emitted) dynres action a and directs subsequent recording into it.
func (r *recorder) emitResult(a *action, v uint64) {
	a.forks = append(a.forks, fork{val: v})
	r.tail = &a.forks[len(a.forks)-1].next
	r.s.ac.charge(r.ent, forkBytes)
}

func (r *recorder) exec(slot int, pc uint64, in isa.Inst, cls isa.Class) (uint64, uint64) {
	addr, npc := dynExec(r.s.eng.st, in, pc, cls)
	r.s.setSlot(slot, addr, npc)
	r.emit(&action{kind: aExec, cls: cls, slot: uint16(slot), pc: pc, in: in})
	if needNextPCTest(in, cls) {
		a := &action{kind: aNextPC, slot: uint16(slot)}
		r.emit(a)
		r.emitResult(a, npc)
	}
	return addr, npc
}

func (r *recorder) icache(pc uint64) uint64 {
	lat := r.s.eng.mem.Inst(pc, r.s.eng.cycle)
	a := &action{kind: aICache, pc: pc}
	r.emit(a)
	r.emitResult(a, lat)
	return lat
}

func (r *recorder) dcache(slot int, addr uint64, write bool) uint64 {
	lat := r.s.eng.mem.Data(addr, r.s.eng.cycle, write)
	a := &action{kind: aDCache, slot: uint16(slot)}
	if write {
		a.flags |= flagWrite
	}
	r.emit(a)
	r.emitResult(a, lat)
	return lat
}

func (r *recorder) predict(pc uint64, in isa.Inst) uint64 {
	npc := r.s.eng.pred.Predict(in, pc)
	a := &action{kind: aPredict, pc: pc, in: in}
	r.emit(a)
	r.emitResult(a, npc)
	return npc
}

func (r *recorder) update(slot int, pc uint64, in isa.Inst, actual uint64, mispred bool) {
	r.s.eng.pred.Update(in, pc, actual, mispred)
	a := &action{kind: aUpdate, slot: uint16(slot), pc: pc, in: in}
	if mispred {
		a.flags |= flagMispred
	}
	r.emit(a)
}

func (r *recorder) halted() bool {
	h := r.s.eng.st.Halted
	a := &action{kind: aHalted}
	r.emit(a)
	r.emitResult(a, b2u(h))
	return h
}

func (r *recorder) shifted(k int) {
	r.s.shiftSlots(k)
	r.s.slowInsts += uint64(k)
	r.emit(&action{kind: aShift, slot: uint16(k)})
}

// --- nopSink: memoization disabled ---------------------------------------

// nopSink records nothing. With countSlow set it still accounts committed
// instructions as slow-simulated — the degraded-step recovery uses it as
// the live sink, since a step abandoned after a fault must not record.
type nopSink struct {
	s         *Sim
	countSlow bool
}

func (n *nopSink) exec(slot int, pc uint64, in isa.Inst, cls isa.Class) (uint64, uint64) {
	addr, npc := dynExec(n.s.eng.st, in, pc, cls)
	n.s.setSlot(slot, addr, npc)
	return addr, npc
}

func (n *nopSink) icache(pc uint64) uint64 {
	return n.s.eng.mem.Inst(pc, n.s.eng.cycle)
}

func (n *nopSink) dcache(slot int, addr uint64, write bool) uint64 {
	return n.s.eng.mem.Data(addr, n.s.eng.cycle, write)
}

func (n *nopSink) predict(pc uint64, in isa.Inst) uint64 {
	return n.s.eng.pred.Predict(in, pc)
}

func (n *nopSink) update(slot int, pc uint64, in isa.Inst, actual uint64, mispred bool) {
	n.s.eng.pred.Update(in, pc, actual, mispred)
}

func (n *nopSink) halted() bool { return n.s.eng.st.Halted }

func (n *nopSink) shifted(k int) {
	n.s.shiftSlots(k)
	if n.countSlow {
		n.s.slowInsts += uint64(k)
	}
}

// --- recoverer: slow simulation after an action cache miss ----------------

// recoverer replays the dynamic values the fast simulator already produced
// (the paper's recovery stack) so the slow simulator can catch up to the
// miss point without re-executing dynamic operations, then switches to a
// live sink for the rest of the step.
//
// Two cursor modes decide where the hand-over happens:
//
//   - Value cursor (classic miss recovery): the path holds one value per
//     dynamic operation performed by the partial replay, ending with the
//     miss value itself (the dynamic result the replay computed but found
//     no recorded successor for). When the last value is consumed the slow
//     simulator has caught up and the recorder takes over, appending fresh
//     actions onto the new fork. A value miss always happens at a
//     dynamic-result action, so path exhaustion marks the miss point
//     exactly.
//
//   - Operation cursor (fault degradation): a structural fault can strike
//     after operations that log no value (updates, shifts, plain execs),
//     so path exhaustion alone would hand over too early and re-execute
//     work the replay already performed. The op cursor counts the
//     sink-level operations the replay completed and hands over only after
//     the re-run has performed that many.
//
// If the cursor overruns the recorded path the entry and the re-run step
// disagree; the recoverer goes live immediately (returning zero values for
// the overrun reads) instead of panicking, and reports the overrun to the
// caller for fault accounting.
type recoverer struct {
	s    *Sim
	path []uint64
	idx  int

	useOps bool   // operation-cursor mode
	ops    uint64 // ops performed by the replay before the fault
	opIdx  uint64

	live    sink      // takes over after the cursor is exhausted
	rec     *recorder // non-nil when live records (classic miss recovery)
	active  bool      // live has taken over
	overrun bool      // cursor ran past the replayed path
}

func (rv *recoverer) goLive() {
	if rv.active {
		return
	}
	rv.active = true
	if rv.rec != nil {
		rv.rec.lastCycle = rv.s.eng.cycle
	}
}

func (rv *recoverer) take(what string) uint64 {
	if rv.idx >= len(rv.path) {
		// The recorded entry and the re-run step disagree about the step's
		// dynamic operations. Degrade instead of crashing.
		rv.overrun = true
		rv.goLive()
		return 0
	}
	v := rv.path[rv.idx]
	rv.idx++
	if !rv.useOps && rv.idx == len(rv.path) {
		// Caught up to the miss point: go live from here on.
		rv.goLive()
	}
	return v
}

// opDone advances the operation cursor after a fully replayed operation.
func (rv *recoverer) opDone() {
	if !rv.useOps || rv.active {
		return
	}
	rv.opIdx++
	if rv.opIdx >= rv.ops {
		rv.goLive()
	}
}

func (rv *recoverer) exec(slot int, pc uint64, in isa.Inst, cls isa.Class) (uint64, uint64) {
	if rv.active {
		return rv.live.exec(slot, pc, in, cls)
	}
	// The replay already applied the functional effects; reconstruct the
	// outputs. Only instructions whose exec produced a dynamic value the
	// timing model consumes (addresses, resolved next PCs) logged one.
	var addr, npc uint64
	switch {
	case cls == isa.ClassLoad || cls == isa.ClassStore:
		addr, npc = rv.take("exec"), pc+4
	case needNextPCTest(in, cls):
		addr, npc = 0, rv.take("exec")
	case cls == isa.ClassJump: // direct jump: target is rt-static
		addr, npc = 0, isa.BranchTarget(in, pc)
	default:
		addr, npc = 0, pc+4
	}
	// Keep the dynamic slot globals evolving exactly as the replay did.
	rv.s.setSlot(slot, addr, npc)
	rv.opDone()
	return addr, npc
}

func (rv *recoverer) icache(pc uint64) uint64 {
	if rv.active {
		return rv.live.icache(pc)
	}
	v := rv.take("icache")
	rv.opDone()
	return v
}

func (rv *recoverer) dcache(slot int, addr uint64, write bool) uint64 {
	if rv.active {
		return rv.live.dcache(slot, addr, write)
	}
	v := rv.take("dcache")
	rv.opDone()
	return v
}

func (rv *recoverer) predict(pc uint64, in isa.Inst) uint64 {
	if rv.active {
		return rv.live.predict(pc, in)
	}
	v := rv.take("predict")
	rv.opDone()
	return v
}

func (rv *recoverer) update(slot int, pc uint64, in isa.Inst, actual uint64, mispred bool) {
	if rv.active {
		rv.live.update(slot, pc, in, actual, mispred)
		return
	}
	// The replay already trained the predictor; nothing was logged.
	rv.opDone()
}

func (rv *recoverer) halted() bool {
	if rv.active {
		return rv.live.halted()
	}
	h := rv.take("halted") == 1
	rv.opDone()
	return h
}

func (rv *recoverer) shifted(k int) {
	if rv.active {
		rv.live.shifted(k)
		return
	}
	// The replay already counted these instructions as fast-forwarded;
	// only the slot globals need to move. Nothing was logged.
	rv.s.shiftSlots(k)
	rv.opDone()
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
