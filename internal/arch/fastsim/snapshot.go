package fastsim

import (
	"fmt"

	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa/loader"
	"facile/internal/snapshot"
)

// SnapshotKind identifies fast-forwarding-simulator snapshots.
const SnapshotKind = "fastsim"

// NewAt builds a simulator whose architectural starting point is st rather
// than the program entry: the pipeline starts empty and fetch begins at
// st.PC. Parallel interval simulation uses this to hand a funcsim warm-up
// state to a detailed cloned machine. The caller transfers ownership of st.
func NewAt(cfg uarch.Config, prog *loader.Program, opt Options, st *funcsim.State) *Sim {
	s := New(cfg, prog, opt)
	s.eng.st = st
	s.eng.fetchPC = st.PC
	s.lastNPC = st.PC
	if st.Halted {
		s.eng.haltSeen = true
		s.done = true
	}
	return s
}

// Committed reports total instructions committed (Run budgets are
// cumulative against this counter, so checkpointed runs chunk cleanly).
func (s *Sim) Committed() uint64 { return s.slowInsts + s.fastInsts }

// Done reports whether the simulated program has halted.
func (s *Sim) Done() bool { return s.done }

// SyncEngine materializes the slow simulator's pipeline state at the
// current step boundary. After a replayed step the engine is stale (only
// the action-cache key describes the pipeline); saving a snapshot or
// cloning requires the live form. It reports false if the recorded key was
// corrupt, in which case the drain-reset recovery already put the engine
// back on the architectural stream (still a valid state to snapshot).
func (s *Sim) SyncEngine() bool {
	if s.engineLive {
		return true
	}
	return s.restoreEngine()
}

// SaveState serializes the complete simulator state at a step boundary.
//
// STATE section (hashed): architectural state, branch predictor, cache
// hierarchy, rt-static pipeline state (fetch state plus the in-flight
// window with each entry's dynamic address/next-PC), cycle, total committed
// instructions, and the self-check PRNG.
//
// Accounting section (carried, unhashed): the memoization and fault
// counters. The action cache itself is deliberately excluded — it is an
// acceleration structure, re-warmed after restore — which is why a restored
// run's slow/replayed split differs from an uninterrupted one while its
// timing and architectural results are bit-identical.
func (s *Sim) SaveState(w *snapshot.Writer) error {
	s.SyncEngine()
	e := s.eng
	s.cycle = e.cycle
	e.st.SaveState(w)
	e.pred.SaveState(w)
	e.mem.SaveState(w)
	w.U64(e.fetchPC)
	w.Bool(e.stalled)
	w.Bool(e.serialize)
	w.U64(e.resumeIn)
	w.Bool(e.haltSeen)
	w.U64(s.cycle)
	w.U64(uint64(len(e.win)))
	for i := range e.win {
		ent := &e.win[i]
		w.U64(ent.pc)
		w.U8(uint8(ent.state))
		w.U64(ent.remain)
		w.U64(ent.addr)
		w.U64(ent.actualNPC)
		w.Bool(ent.mispred)
	}
	w.U64(s.lastNPC)
	w.Bool(s.done)
	w.U64(s.scState)
	w.U64(s.slowInsts + s.fastInsts)

	w.BeginAux()
	w.U64(s.slowInsts)
	w.U64(s.fastInsts)
	w.U64(s.steps)
	w.U64(s.replays)
	w.U64(s.misses)
	w.U64(s.keyMisses)
	w.U64(s.faultCount)
	w.U64(s.degraded)
	w.U64(s.wdTrips + s.eng.wdTrips)
	w.U64(s.selfChecks)
	w.U64(s.scDiverged)
	w.U64(s.ac.g.TotalBytes)
	w.U64(s.ac.g.Clears)
	w.U64(s.ac.g.Invalidations)
	return nil
}

// LoadState restores a simulator built over the same program and
// configuration. The action cache starts empty and re-warms.
func (s *Sim) LoadState(r *snapshot.Reader) error {
	e := s.eng
	if err := e.st.LoadState(r); err != nil {
		return err
	}
	if err := e.pred.LoadState(r); err != nil {
		return err
	}
	if err := e.mem.LoadState(r); err != nil {
		return err
	}
	e.fetchPC = r.U64()
	e.stalled = r.Bool()
	e.serialize = r.Bool()
	e.resumeIn = r.U64()
	e.haltSeen = r.Bool()
	s.cycle = r.U64()
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if n > uint64(e.cfg.Window) {
		return fmt.Errorf("fastsim: snapshot window %d exceeds configured %d", n, e.cfg.Window)
	}
	e.win = e.win[:0]
	s.base = 0
	for i := uint64(0); i < n; i++ {
		var ent entry
		ent.pc = r.U64()
		st := r.U8()
		ent.remain = r.U64()
		ent.addr = r.U64()
		ent.actualNPC = r.U64()
		ent.mispred = r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if st > uint8(stDone) {
			return fmt.Errorf("fastsim: snapshot entry %d has invalid state %d", i, st)
		}
		ent.state = entryState(st)
		ent.d = e.decorFor(ent.pc)
		e.win = append(e.win, ent)
		// Re-seed the dynamic slot globals the replayer reads.
		s.setSlot(int(i), ent.addr, ent.actualNPC)
	}
	for i := range e.win {
		e.computeDeps(i)
	}
	s.lastNPC = r.U64()
	s.done = r.Bool()
	s.scState = r.U64()
	total := r.U64()

	s.slowInsts = r.U64()
	s.fastInsts = r.U64()
	s.steps = r.U64()
	s.replays = r.U64()
	s.misses = r.U64()
	s.keyMisses = r.U64()
	s.faultCount = r.U64()
	s.degraded = r.U64()
	s.wdTrips = r.U64()
	s.selfChecks = r.U64()
	s.scDiverged = r.U64()
	s.ac.g.TotalBytes = r.U64()
	s.ac.g.Clears = r.U64()
	s.ac.g.Invalidations = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if s.slowInsts+s.fastInsts != total {
		return fmt.Errorf("fastsim: snapshot accounting (%d+%d) disagrees with committed total %d",
			s.slowInsts, s.fastInsts, total)
	}
	e.cycle = s.cycle
	e.wdTrips = 0
	s.engineLive = true
	s.startBase = s.base
	s.startCycle = s.cycle
	s.curKey = ""
	s.path = s.path[:0]
	s.ops = 0
	if e.haltSeen {
		s.done = true
	}
	return nil
}

// Clone returns an independent deep copy of the simulator via an in-memory
// snapshot round-trip, which structurally guarantees the clone shares no
// mutable state with s: memory pages, register files, predictor tables,
// cache sets, window entries, and slot rings are all rebuilt. The clone's
// action cache starts empty (copy-on-warm rather than copy-on-write: the
// recorded action graphs are the one structure cheap to regenerate and
// expensive to deep-copy).
func (s *Sim) Clone() (*Sim, error) {
	w := snapshot.NewWriter()
	if err := s.SaveState(w); err != nil {
		return nil, err
	}
	c := New(s.cfg, s.prog, s.opt)
	if err := c.LoadState(snapshot.NewReader(w.Payload())); err != nil {
		return nil, err
	}
	return c, nil
}
