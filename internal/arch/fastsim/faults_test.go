package fastsim

import (
	"bytes"
	"testing"

	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/faults"
)

// The recovery contract under injected faults: the run must not panic, the
// architectural output must still match the golden functional model, and
// the fault counters must show the recovery path actually fired.

var faultWorkloads = []struct {
	name string
	src  string
}{
	{"sum-loop", sumLoop},
	{"branchy", `
start:  li   r10, 300
        li   r11, 0
loop:   beq  r10, r0, done
        li   r2, 4
        syscall
        and  r5, r3, 7
        beq  r5, r0, bump
        add  r11, r11, 1
        b    next
bump:   add  r11, r11, 10
next:   sub  r10, r10, 1
        b    loop
done:   li   r2, 2
        mov  r3, r11
        syscall
        halt
`},
}

func TestInjectedFaultRecovery(t *testing.T) {
	cases := []struct {
		name        string
		kinds       []faults.Injection
		exactCycles bool // degradation preserves cycle counts
		check       func(t *testing.T, st Stats)
	}{
		{
			name:        "break-chain",
			kinds:       []faults.Injection{faults.InjBreakChain},
			exactCycles: true,
			check: func(t *testing.T, st Stats) {
				if st.Faults == 0 || st.DegradedSteps == 0 || st.Invalidations == 0 {
					t.Errorf("expected broken-chain faults to degrade steps: %+v", st)
				}
			},
		},
		{
			name:        "flip-fork",
			kinds:       []faults.Injection{faults.InjFlipFork},
			exactCycles: true,
			check: func(t *testing.T, st Stats) {
				if st.Misses == 0 {
					t.Errorf("flipped forks should surface as value misses: %+v", st)
				}
			},
		},
		{
			// Corrupt successor keys lose the in-flight pipeline state, so
			// only architectural results (not cycle timing) are preserved.
			name:  "truncate-key",
			kinds: []faults.Injection{faults.InjTruncate},
			check: func(t *testing.T, st Stats) {
				if st.Faults == 0 {
					t.Errorf("expected corrupt-key faults: %+v", st)
				}
			},
		},
		{
			name:        "gen-bump",
			kinds:       []faults.Injection{faults.InjGenBump},
			exactCycles: true,
			check: func(t *testing.T, st Stats) {
				if st.CacheClears == 0 {
					t.Errorf("expected injected cache clears: %+v", st)
				}
			},
		},
		{
			name: "all-kinds",
			kinds: []faults.Injection{
				faults.InjBreakChain, faults.InjFlipFork,
				faults.InjTruncate, faults.InjGenBump,
			},
			check: func(t *testing.T, st Stats) {
				if st.Faults == 0 {
					t.Errorf("expected at least one fault: %+v", st)
				}
			},
		},
	}
	for _, w := range faultWorkloads {
		for _, tc := range cases {
			t.Run(w.name+"/"+tc.name, func(t *testing.T) {
				p := asmOrDie(t, w.src)
				_, golden, err := funcsim.Run(p, 50_000_000)
				if err != nil {
					t.Fatal(err)
				}
				plain := New(uarch.Default(), p, Options{Memoize: false}).Run(0)

				ij := faults.NewInjector(7, 5, tc.kinds...)
				s := New(uarch.Default(), p, Options{Memoize: true, Inject: ij})
				res := s.Run(0)

				if !bytes.Equal(res.Output, golden.Output) {
					t.Errorf("output %q != golden %q", res.Output, golden.Output)
				}
				if res.ExitStatus != golden.ExitStatus {
					t.Errorf("exit %d != golden %d", res.ExitStatus, golden.ExitStatus)
				}
				if tc.exactCycles && res.Cycles != plain.Cycles {
					t.Errorf("cycles %d != plain %d", res.Cycles, plain.Cycles)
				}
				if ij.Fired() == 0 {
					t.Fatal("injector never fired")
				}
				tc.check(t, s.Stats())
			})
		}
	}
}

func TestSelfCheckCleanRun(t *testing.T) {
	// With no corruption, self-checking must observe zero divergences and
	// must not perturb cycle counts or architectural results.
	for _, w := range faultWorkloads {
		t.Run(w.name, func(t *testing.T) {
			p := asmOrDie(t, w.src)
			_, golden, err := funcsim.Run(p, 50_000_000)
			if err != nil {
				t.Fatal(err)
			}
			plain := New(uarch.Default(), p, Options{Memoize: false}).Run(0)
			s := New(uarch.Default(), p, Options{Memoize: true, SelfCheck: 0.5})
			res := s.Run(0)
			st := s.Stats()
			if res.Cycles != plain.Cycles {
				t.Errorf("cycles %d != plain %d", res.Cycles, plain.Cycles)
			}
			if !bytes.Equal(res.Output, golden.Output) {
				t.Errorf("output %q != golden %q", res.Output, golden.Output)
			}
			if st.SelfChecks == 0 {
				t.Error("no steps were self-checked")
			}
			if st.SelfCheckDivergences != 0 {
				t.Errorf("clean run diverged %d times (last: %v)",
					st.SelfCheckDivergences, s.LastFault())
			}
		})
	}
}

func TestSelfCheckCatchesCorruption(t *testing.T) {
	// Structural corruption that a full self-check sweep must detect:
	// severed chains and truncated successor keys both disagree with the
	// live slow step.
	p := asmOrDie(t, sumLoop)
	_, golden, err := funcsim.Run(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ij := faults.NewInjector(11, 7, faults.InjBreakChain, faults.InjTruncate)
	s := New(uarch.Default(), p, Options{
		Memoize:   true,
		SelfCheck: 1.0,
		Inject:    ij,
	})
	res := s.Run(0)
	st := s.Stats()
	if !bytes.Equal(res.Output, golden.Output) {
		t.Errorf("output %q != golden %q", res.Output, golden.Output)
	}
	if res.ExitStatus != golden.ExitStatus {
		t.Errorf("exit %d != golden %d", res.ExitStatus, golden.ExitStatus)
	}
	if st.SelfCheckDivergences == 0 {
		t.Errorf("self-check missed injected corruption: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Errorf("divergence must invalidate the entry: %+v", st)
	}
}

func TestClearWhenFullOnOverflowingPut(t *testing.T) {
	// The clear must happen on the put that overflows the cap, not one
	// put later (and it clears the overflowing entry too).
	c := newACache(200, nil)
	keys := []string{"aaaa", "bbbb", "cccc", "dddd"}
	for i, k := range keys {
		c.put(&centry{key: k})
		occupied := uint64(i+1) * (entryBytes + 4)
		if occupied <= 200 {
			if c.g.Clears != 0 {
				t.Fatalf("cleared at %d bytes, under the 200-byte cap", occupied)
			}
			continue
		}
		if c.g.Clears != 1 || len(c.m) != 0 || c.g.Bytes != 0 {
			t.Fatalf("put #%d crossed the cap but state is m=%d bytes=%d clears=%d",
				i+1, len(c.m), c.g.Bytes, c.g.Clears)
		}
		break
	}
}

func TestWatchdogBoundsReplayActions(t *testing.T) {
	// An absurdly low action watchdog forces every long replay to degrade;
	// results must still match the golden model.
	p := asmOrDie(t, sumLoop)
	_, golden, err := funcsim.Run(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s := New(uarch.Default(), p, Options{Memoize: true, MaxReplayActions: 4})
	res := s.Run(0)
	st := s.Stats()
	if !bytes.Equal(res.Output, golden.Output) {
		t.Errorf("output %q != golden %q", res.Output, golden.Output)
	}
	if st.WatchdogTrips == 0 || st.DegradedSteps == 0 {
		t.Errorf("expected watchdog trips to degrade steps: %+v", st)
	}
}
