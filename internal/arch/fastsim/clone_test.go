package fastsim

import (
	"bytes"
	"testing"

	"facile/internal/arch/uarch"
	"facile/internal/snapshot"
	"facile/internal/workloads"
)

// TestCloneIsolation: a fastsim clone must share no mutable state with its
// parent — architectural registers, memory pages, predictor, caches,
// window entries, and the dynamic slot rings are all rebuilt.
func TestCloneIsolation(t *testing.T) {
	w, err := workloads.Get("126.gcc", 1)
	if err != nil {
		t.Fatal(err)
	}
	parent := New(uarch.Default(), w.Prog, Options{Memoize: true})
	parent.Run(5000)
	if parent.Done() {
		t.Fatal("workload too small for a mid-run clone")
	}
	hash := func(s *Sim) string {
		ww := snapshot.NewWriter()
		if err := s.SaveState(ww); err != nil {
			t.Fatal(err)
		}
		return ww.StateHash()
	}
	before := hash(parent)

	clone, err := parent.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if hash(clone) != before {
		t.Fatal("clone does not reproduce parent state")
	}

	// Scribble over the clone's architectural and dynamic state.
	st := clone.State()
	for i := range st.R {
		st.R[i] = -7
	}
	st.Mem.Write64(0x2000, 0xFFFFFFFF)
	for i := range clone.ringAddr {
		clone.ringAddr[i] = 0xBAD
	}
	if hash(parent) != before {
		t.Fatal("mutating the clone perturbed the parent")
	}

	// Running a fresh clone must leave the parent frozen, and both must
	// finish with identical deterministic results.
	clone2, err := parent.Clone()
	if err != nil {
		t.Fatal(err)
	}
	resClone := clone2.Run(0)
	if hash(parent) != before {
		t.Fatal("running the clone perturbed the parent")
	}
	resParent := parent.Run(0)
	if resParent.Cycles != resClone.Cycles || resParent.Insts != resClone.Insts ||
		resParent.ExitStatus != resClone.ExitStatus || !bytes.Equal(resParent.Output, resClone.Output) {
		t.Fatalf("parent and clone finished differently:\n%+v\n%+v", resParent, resClone)
	}
}
