package fastsim

import (
	"facile/internal/isa"
)

// replayFrom is the fast/residual simulator: it walks the recorded action
// graph starting at entry e, performing only the dynamic work (functional
// execution, predictor and cache-simulator calls) and verifying each
// dynamic result against the recorded forks. It returns when the program
// halts, when an action cache miss hands control back to the slow
// simulator, or when the instruction budget is exhausted at a step
// boundary.
func (s *Sim) replayFrom(e *centry, maxInsts uint64) {
	st := s.eng.st
	s.path = s.path[:0]
	a := e.first
	for {
		if a == nil {
			// Recording always seals a step with aEnd (or ends inside a
			// halted test); a nil link mid-chain is a bug, not an input.
			panic("fastsim: broken action chain")
		}
		s.cycle += uint64(a.dcyc)
		switch a.kind {
		case aExec:
			addr, npc := dynExec(st, a.in, a.pc, a.cls)
			s.setSlot(int(a.slot), addr, npc)
			// Log only values the recovery protocol consumes.
			switch {
			case a.cls == isa.ClassLoad || a.cls == isa.ClassStore:
				s.path = append(s.path, addr)
			case needNextPCTest(a.in, a.cls):
				s.path = append(s.path, npc)
			}
			a = a.next

		case aNextPC:
			v := s.slotNPCAt(int(a.slot))
			next, ok := a.findFork(v)
			if !ok {
				s.miss(a)
				return
			}
			a = next

		case aICache:
			lat := s.eng.mem.Inst(a.pc, s.cycle)
			s.path = append(s.path, lat)
			next, ok := a.findFork(lat)
			if !ok {
				s.miss(a)
				return
			}
			a = next

		case aDCache:
			lat := s.eng.mem.Data(s.slotAddrAt(int(a.slot)), s.cycle, a.flags&flagWrite != 0)
			s.path = append(s.path, lat)
			next, ok := a.findFork(lat)
			if !ok {
				s.miss(a)
				return
			}
			a = next

		case aPredict:
			npc := s.eng.pred.Predict(a.in, a.pc)
			s.path = append(s.path, npc)
			next, ok := a.findFork(npc)
			if !ok {
				s.miss(a)
				return
			}
			a = next

		case aUpdate:
			s.eng.pred.Update(a.in, a.pc, s.slotNPCAt(int(a.slot)), a.flags&flagMispred != 0)
			a = a.next

		case aShift:
			s.shiftSlots(int(a.slot))
			s.fastInsts += uint64(a.slot)
			a = a.next

		case aHalted:
			h := b2u(st.Halted)
			s.path = append(s.path, h)
			if h == 1 {
				s.done = true
				return
			}
			next, ok := a.findFork(h)
			if !ok {
				s.miss(a)
				return
			}
			a = next

		case aEnd:
			// Step boundary: refresh the recovery snapshot, then chain to
			// the next entry (the paper's INDEX action follows the link
			// rather than doing a full cache lookup).
			s.replays++
			s.curKey = a.nextKey
			s.startBase = s.base
			s.startCycle = s.cycle
			s.path = s.path[:0]
			if maxInsts > 0 && s.slowInsts+s.fastInsts >= maxInsts {
				return // Run's loop notices the budget; engine stays stale
			}
			if a.link == nil || a.linkGen != s.ac.gen {
				le := s.ac.get(a.nextKey)
				if le == nil {
					s.keyMisses++
					return // boundary miss: Run restores the slow simulator
				}
				a.link = le
				a.linkGen = s.ac.gen
			}
			e = a.link
			a = e.first
		}
	}
}

// miss handles a mid-step action cache miss at dynamic-result action a:
// restore the slow simulator from the step's key, run it in recovery mode
// consuming the values the replay already produced (s.path, whose last
// element is the missing result itself), and record the new control path
// as a fresh fork of a.
func (s *Sim) miss(a *action) {
	s.misses++
	s.steps++
	v := s.path[len(s.path)-1]
	s.restoreEngine()
	a.forks = append(a.forks, fork{val: v})
	s.ac.charge(forkBytes)
	rec := &recorder{s: s, tail: &a.forks[len(a.forks)-1].next}
	rv := &recoverer{s: s, path: s.path, rec: rec}
	s.eng.runStep(rv)
	if !rv.active {
		panic("fastsim: recovery finished without reaching the miss point")
	}
	s.finishSlowStep(rec, nil)
}
