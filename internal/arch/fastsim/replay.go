package fastsim

import (
	"fmt"

	"facile/internal/faults"
	"facile/internal/isa"
	"facile/internal/obs"
)

// replayFrom is the fast/residual simulator: it walks the recorded action
// graph starting at entry e, performing only the dynamic work (functional
// execution, predictor and cache-simulator calls) and verifying each
// dynamic result against the recorded forks. It returns when the program
// halts, when an action cache miss hands control back to the slow
// simulator, or when the instruction budget is exhausted at a step
// boundary.
//
// Structural faults — a severed chain, or a step whose replay exceeds the
// action watchdog — never panic: the offending entry is invalidated, the
// partial replay is discarded, and the step re-runs on the slow simulator
// (degradeStep). The replay tracks s.ops, the count of sink-level
// operations it has completed this step, so the degraded re-run knows
// exactly where to switch from consuming replayed values to running live.
func (s *Sim) replayFrom(e *centry, maxInsts uint64) {
	st := s.eng.st
	s.path = s.path[:0]
	s.ops = 0
	var acts uint64
	a := e.first
	for {
		if a == nil {
			if st.Halted {
				// Legitimate end of a halting entry: recording stops at the
				// halt commit (after its aHalted test and final aShift)
				// without sealing an aEnd, so the replayed chain ends here.
				s.replays++
				s.obs.Event(obs.EvStepReplayed, acts)
				s.hStepActs.Observe(acts)
				s.done = true
				return
			}
			// Recording always seals a live step with aEnd; a nil link
			// mid-chain means the entry is corrupt.
			s.fault(faults.BrokenChain, "nil action link before end of step")
			s.degradeStep(e)
			return
		}
		if s.compiled && fusable(a.kind) {
			// Compiled fast path: execute the superinstruction headed at a —
			// a straight-line run of pure-flow actions — as one fused call
			// sequence. Built lazily per head action and discarded whenever
			// the entry's cver moves (injection, invalidation).
			fr := a.fused
			if fr == nil || a.fusedVer != e.cver {
				fr = s.buildFused(a)
				a.fused = fr
				a.fusedVer = e.cver
				if fr.n > 0 {
					s.cFusedRuns.Inc()
					s.cCompActs.Add(fr.n)
				}
			}
			if fr.n > 0 && acts+fr.n <= s.opt.MaxReplayActions {
				// The bound keeps the watchdog exact: the interpreted loop
				// trips once acts exceeds the maximum, so a run dispatches
				// only if its last action would still pass that check;
				// otherwise the actions replay interpreted and the watchdog
				// trips at the identical count.
				for _, fn := range fr.fns {
					fn(s)
				}
				// Bookkeeping the closures elide is charged per run: nothing
				// inside a run reads cycle, ops, or the instruction counter
				// (only fork actions and step boundaries do, and those always
				// sit between runs), so the batched totals are observationally
				// identical to the interpreter's per-action increments.
				s.cycle += fr.cyc
				s.ops += fr.ops
				s.fastInsts += fr.ins
				acts += fr.n
				s.cFusedDisp.Inc()
				s.cFusedActs.Add(fr.n)
				a = fr.end
				continue
			}
		}
		acts++
		if acts > s.opt.MaxReplayActions {
			// A cycle in a corrupted graph, or a runaway step.
			s.fault(faults.WatchdogReplay,
				fmt.Sprintf("replayed %d actions in one step", acts))
			s.wdTrips++
			s.degradeStep(e)
			return
		}
		s.cycle += uint64(a.dcyc)
		switch a.kind {
		case aExec:
			addr, npc := dynExec(st, a.in, a.pc, a.cls)
			s.setSlot(int(a.slot), addr, npc)
			// Log only values the recovery protocol consumes.
			switch {
			case a.cls == isa.ClassLoad || a.cls == isa.ClassStore:
				s.path = append(s.path, addr)
			case needNextPCTest(a.in, a.cls):
				s.path = append(s.path, npc)
			}
			s.ops++ // one sink.exec call covers a following aNextPC test too
			a = a.next

		case aNextPC:
			v := s.slotNPCAt(int(a.slot))
			next, ok := a.findFork(v)
			if !ok {
				s.miss(a, e)
				return
			}
			a = next

		case aICache:
			lat := s.eng.mem.Inst(a.pc, s.cycle)
			s.path = append(s.path, lat)
			s.ops++
			next, ok := a.findFork(lat)
			if !ok {
				s.miss(a, e)
				return
			}
			a = next

		case aDCache:
			lat := s.eng.mem.Data(s.slotAddrAt(int(a.slot)), s.cycle, a.flags&flagWrite != 0)
			s.path = append(s.path, lat)
			s.ops++
			next, ok := a.findFork(lat)
			if !ok {
				s.miss(a, e)
				return
			}
			a = next

		case aPredict:
			npc := s.eng.pred.Predict(a.in, a.pc)
			s.path = append(s.path, npc)
			s.ops++
			next, ok := a.findFork(npc)
			if !ok {
				s.miss(a, e)
				return
			}
			a = next

		case aUpdate:
			s.eng.pred.Update(a.in, a.pc, s.slotNPCAt(int(a.slot)), a.flags&flagMispred != 0)
			s.ops++
			a = a.next

		case aShift:
			s.shiftSlots(int(a.slot))
			s.fastInsts += uint64(a.slot)
			s.ops++
			a = a.next

		case aHalted:
			// The halt flag is a dynamic result like any other: follow the
			// recorded fork so a replayed halting step still performs its
			// final aShift (the instructions committed by the halt cycle).
			// The chain then ends at a nil link, handled above.
			h := b2u(st.Halted)
			s.path = append(s.path, h)
			s.ops++
			next, ok := a.findFork(h)
			if !ok {
				s.miss(a, e)
				return
			}
			a = next

		case aEnd:
			// Step boundary: refresh the recovery snapshot, then chain to
			// the next entry (the paper's INDEX action follows the link
			// rather than doing a full cache lookup).
			s.replays++
			s.obs.Event(obs.EvStepReplayed, acts)
			s.hStepActs.Observe(acts)
			s.curKey = a.nextKey
			s.startBase = s.base
			s.startCycle = s.cycle
			s.path = s.path[:0]
			s.ops = 0
			acts = 0
			if maxInsts > 0 && s.slowInsts+s.fastInsts >= maxInsts {
				return // Run's loop notices the budget; engine stays stale
			}
			if s.stepHook() {
				// Fault injection / self-check sampling are per-step
				// policies applied by the Run loop; hand each chained step
				// back instead of following the link directly.
				return
			}
			if a.link == nil || a.linkGen != s.ac.g.Gen {
				le := s.ac.get(a.nextKey)
				if le == nil {
					s.keyMisses++
					s.obs.Event(obs.EvKeyMiss, uint64(len(a.nextKey)))
					return // boundary miss: Run restores the slow simulator
				}
				a.link = le
				a.linkGen = s.ac.g.Gen
			}
			e = a.link
			a = e.first

		default:
			s.fault(faults.BadAction, fmt.Sprintf("unknown action kind %d", a.kind))
			s.degradeStep(e)
			return
		}
	}
}

// miss handles a mid-step action cache miss at dynamic-result action a:
// restore the slow simulator from the step's key, run it in recovery mode
// consuming the values the replay already produced (s.path, whose last
// element is the missing result itself), and record the new control path
// as a fresh fork of a. A recovery that disagrees with the replayed path
// (overrun or incomplete consumption) is a fault: the entry is invalidated
// and the step's recording is abandoned.
func (s *Sim) miss(a *action, e *centry) {
	if len(s.path) == 0 {
		// Defensive: aNextPC is the only fork action that does not append
		// to s.path itself — it relies on the preceding aExec having logged
		// the resolved next PC, which a corrupted chain (a flipped cls
		// making needNextPCTest false, or an entry whose first action is a
		// fork) breaks. Recovery alignment needs the missing value, so this
		// is a structural fault, not a value miss: degrade instead of
		// panicking on untrusted cache data.
		s.fault(faults.BrokenChain, "mid-step miss with no replayed dynamic values")
		s.degradeStep(e)
		return
	}
	s.misses++
	s.steps++
	s.obs.Event(obs.EvMidStepMiss, s.ops)
	v := s.path[len(s.path)-1]
	if !s.restoreEngine() {
		// Corrupt step key: recovery alignment is impossible. The drain
		// reset already put the engine back on the architectural stream.
		s.invalidateEntry(e)
		s.degraded++
		return
	}
	a.forks = append(a.forks, fork{val: v})
	s.ac.charge(e, forkBytes)
	rec := &recorder{s: s, ent: e, tail: &a.forks[len(a.forks)-1].next}
	rv := &recoverer{s: s, path: s.path, rec: rec, live: rec}
	s.eng.runStep(rv)
	if rv.overrun || !rv.active {
		kind := faults.RecoveryIncomplete
		detail := "recovery finished without reaching the miss point"
		if rv.overrun {
			kind = faults.RecoveryOverrun
			detail = "recovery cursor overran the replayed path"
		}
		s.fault(kind, detail)
		s.invalidateEntry(e)
		s.degraded++
		// Drop the half-recorded fork so the dead entry can't replay it.
		a.forks = a.forks[:len(a.forks)-1]
		s.finishSlowStep(nil, nil)
		return
	}
	s.finishSlowStep(rec, nil)
}

// degradeStep abandons a partial replay after a structural fault: the
// offending entry is invalidated, the slow simulator is restored to the
// step-start state, and the step re-runs in recovery mode — consuming the
// dynamic values the replay already produced, without recording anything —
// so the step finishes on the always-correct slow path.
func (s *Sim) degradeStep(e *centry) {
	s.steps++
	s.degraded++
	s.invalidateEntry(e)
	if !s.restoreEngine() {
		return // drained: the engine is already back on the live stream
	}
	rv := &recoverer{
		s:      s,
		path:   s.path,
		useOps: true,
		ops:    s.ops,
		live:   &nopSink{s: s, countSlow: true},
	}
	if rv.ops == 0 {
		rv.goLive() // fault before any replayed operation: run fully live
	}
	s.eng.runStep(rv)
	if rv.overrun {
		s.fault(faults.RecoveryOverrun, "degraded re-run overran the replayed path")
	}
	s.finishSlowStep(nil, nil)
}

// invalidateEntry discards e from the action cache after a fault.
func (s *Sim) invalidateEntry(e *centry) {
	s.ac.invalidate(e)
}
