// Package fastsim implements the hand-coded fast-forwarding out-of-order
// simulator that plays FastSim's role in the paper: the same detailed
// R10000-like micro-architecture as package ooo, accelerated by run-time
// memoization of the simulator step function.
//
// The step function simulates the pipeline from one committed
// control-transfer instruction to the next. Its run-time static input — the
// "instruction queue" of the paper's Figure 3: the PCs, pipeline stages,
// and remaining latencies of all in-flight instructions, plus the fetch
// state — is serialized into a key for the specialized action cache. The
// dynamic residue of the step (functional instruction execution, branch
// predictor queries, cache-simulator calls, branch resolutions, syscalls)
// is recorded as a linked sequence of numbered actions. A later step with
// the same key replays the actions directly, skipping every cycle of
// pipeline bookkeeping. Actions that test dynamic values (cache latencies,
// resolved next-PCs, predictor outputs) have per-value successor forks;
// a value never seen before is an action-cache miss, which restores the
// slow simulator from the entry's key and re-runs it in recovery mode,
// consuming the already-performed dynamic operations from the replay path
// without re-executing them — the paper's recovery-stack protocol.
package fastsim

import (
	"facile/internal/arch/bpred"
	"facile/internal/arch/cache"
	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa"
	"facile/internal/isa/loader"
)

type entryState uint8

const (
	stWaiting entryState = iota
	stExecuting
	stDone
)

// decor is the static decoration of one text-segment instruction,
// precomputed once per program: decoded form, classification, operand
// lists, and base latency. Everything here is run-time static.
type decor struct {
	in      isa.Inst
	cls     isa.Class
	fu      uarch.FU
	lat     uint64
	uses    []isa.RegRef
	def     isa.RegRef
	hasDef  bool
	isSync  bool
	isCtl   bool
	isMem   bool
	isStore bool
	needNPC bool // resolved next PC is a dynamic value
	valid   bool
}

// entry is one in-flight instruction. pc/state/remain/mispred are run-time
// static and serialized into the action-cache key; d is re-derived from pc;
// addr/actualNPC are dynamic and restored from the replayer's slot arrays
// during miss recovery; depBack holds the distances (in window slots) to
// each source operand's producer — rt-static and recomputed on restore.
type entry struct {
	pc        uint64
	d         *decor
	remain    uint64 // cycles until completion, valid while executing
	addr      uint64
	actualNPC uint64
	depBack   [3]uint16
	state     entryState
	mispred   bool
}

// sink receives every dynamic operation the slow simulator performs. The
// three implementations are: the live recorder (normal slow simulation),
// the recovery cursor (slow simulation that consumes values already
// produced by a failed replay), and the no-op sink (memoization disabled).
type sink interface {
	// exec functionally executes the instruction at pc occupying window
	// slot, returning its effective address (memory ops) and its resolved
	// next PC.
	exec(slot int, pc uint64, in isa.Inst, cls isa.Class) (addr, npc uint64)
	// icache performs the I-cache access for a fetch at pc.
	icache(pc uint64) uint64
	// dcache performs the D-cache access for the memory op in slot.
	dcache(slot int, addr uint64, write bool) uint64
	// predict queries the branch predictor for the control op at pc.
	predict(pc uint64, in isa.Inst) uint64
	// update trains the predictor when the control op in slot commits.
	update(slot int, pc uint64, in isa.Inst, actual uint64, mispred bool)
	// halted reads the dynamic halt flag (set by exit syscalls / halt).
	halted() bool
	// shifted reports that k instructions committed (the window shifted).
	shifted(k int)
}

// engine is the run-time static core of the simulator: pipeline
// bookkeeping whose entire evolution is a function of the key plus the
// values returned by the sink.
type engine struct {
	cfg  uarch.Config
	prog *loader.Program
	dec  []decor // per text word, indexed by (pc-TextBase)/4

	win       []entry
	fetchPC   uint64
	stalled   bool
	serialize bool
	resumeIn  uint64 // cycles until fetch may resume (relative, rt-static)
	cycle     uint64 // absolute cycle, advanced by the engine in slow mode
	haltSeen  bool
	ilineMask uint64

	// stepCommits bounds a step for straight-line code with no committed
	// control transfers (the paper: "the simulator's author determines the
	// amount of calculation performed in a step").
	stepCommits int

	// maxStepCycles is the runaway-step watchdog: a slow step that
	// simulates more cycles than this is cut off (0 = unbounded). If the
	// cut-off step committed nothing, the pipeline can never make progress
	// and the engine halts rather than livelocking through an endless
	// sequence of watchdog-bounded steps.
	maxStepCycles uint64
	wdTrips       uint64

	// dynamic machine components, owned here but touched only via sinks
	// or the replayer:
	st   *funcsim.State
	pred *bpred.Predictor
	mem  *cache.Hierarchy
}

func newEngine(cfg uarch.Config, prog *loader.Program, stepCommits int) *engine {
	if stepCommits <= 0 {
		stepCommits = defaultStepCommits
	}
	e := &engine{
		cfg:         cfg,
		prog:        prog,
		stepCommits: stepCommits,
		win:         make([]entry, 0, cfg.Window),
		fetchPC:     prog.Entry,
		st:          funcsim.NewState(prog),
		pred:        bpred.New(cfg.Pred),
		mem:         cache.New(cfg.Mem),
		ilineMask:   uint64(cfg.Mem.L1I.LineBytes - 1),
	}
	e.dec = make([]decor, len(prog.Text))
	for i := range prog.Text {
		d := &e.dec[i]
		in, err := isa.Decode(prog.Text[i])
		if err != nil {
			continue
		}
		d.valid = true
		d.in = in
		d.cls = isa.Classify(in.Op)
		d.fu = uarch.FUFor(in.Op)
		d.lat = uarch.Latency(in.Op)
		d.uses = isa.Uses(in)
		d.def, d.hasDef = isa.Def(in)
		d.isSync = d.cls == isa.ClassSys
		d.isCtl = d.cls == isa.ClassBranch || d.cls == isa.ClassJump
		d.isMem = d.cls == isa.ClassLoad || d.cls == isa.ClassStore
		d.isStore = d.cls == isa.ClassStore
		d.needNPC = d.cls == isa.ClassBranch || in.Op == isa.OpJr || in.Op == isa.OpJalr
	}
	return e
}

var nopDecor = decor{in: isa.Inst{Op: isa.OpNop}, cls: isa.ClassNop, valid: true}

// decorFor returns the static decoration of the instruction at pc.
func (e *engine) decorFor(pc uint64) *decor {
	if !e.prog.InText(pc) || pc%4 != 0 {
		return &nopDecor
	}
	d := &e.dec[(pc-loader.TextBase)/4]
	if !d.valid {
		return &nopDecor
	}
	return d
}

// computeDeps fills win[i].depBack by scanning for each source operand's
// youngest older producer — done once per instruction at fetch (and on
// restore), instead of every cycle.
func (e *engine) computeDeps(i int) {
	ent := &e.win[i]
	ent.depBack = [3]uint16{}
	for k, u := range ent.d.uses {
		for j := i - 1; j >= 0; j-- {
			p := &e.win[j]
			if p.d.hasDef && p.d.def == u {
				ent.depBack[k] = uint16(i - j)
				break
			}
		}
	}
}

// defaultStepCommits is the default step bound for straight-line code
// with no committed control transfers (long basic blocks still form
// steps).
const defaultStepCommits = 48

// runStep simulates from the current pipeline state until the end of a
// cycle in which a control-transfer or serializing instruction committed
// (or maxStepCommits instructions committed), reporting every dynamic
// operation to s. It returns the number of instructions committed.
func (e *engine) runStep(s sink) int {
	committed := 0
	var cycles uint64
	for !e.haltSeen {
		boundary := e.stepCycle(s, &committed)
		if e.haltSeen {
			break
		}
		if boundary || committed >= e.stepCommits {
			break
		}
		cycles++
		if e.maxStepCycles > 0 && cycles >= e.maxStepCycles {
			e.wdTrips++
			if committed == 0 {
				e.haltSeen = true
			}
			break
		}
	}
	return committed
}

// stepCycle advances one cycle; reports whether a step boundary (committed
// control transfer / serializer) occurred during it.
func (e *engine) stepCycle(s sink, committed *int) bool {
	boundary := e.commit(s, committed)
	if e.haltSeen {
		return true
	}
	if e.stalled && len(e.win) == 0 {
		// runaway fetch with a drained pipeline: nothing can ever commit
		e.haltSeen = true
		return true
	}
	e.writeback()
	e.issue(s)
	e.fetch(s)
	e.cycle++
	if e.resumeIn > 0 {
		e.resumeIn--
	}
	return boundary
}

func (e *engine) commit(s sink, committed *int) bool {
	boundary := false
	n, shift := 0, 0
	for n < e.cfg.CommitWidth && shift < len(e.win) && e.win[shift].state == stDone {
		ent := &e.win[shift]
		if ent.d.isCtl {
			s.update(shift, ent.pc, ent.d.in, ent.actualNPC, ent.mispred)
			boundary = true
		}
		halt := false
		if ent.d.isSync {
			e.serialize = false
			boundary = true
			if ent.d.in.Op == isa.OpHalt || s.halted() {
				halt = true
			}
		}
		shift++
		n++
		*committed++
		if halt {
			s.shifted(shift)
			copy(e.win, e.win[shift:])
			e.win = e.win[:len(e.win)-shift]
			e.haltSeen = true
			return true
		}
	}
	if shift > 0 {
		s.shifted(shift)
		copy(e.win, e.win[shift:])
		e.win = e.win[:len(e.win)-shift]
	}
	return boundary
}

func (e *engine) writeback() {
	for i := range e.win {
		ent := &e.win[i]
		if ent.state != stExecuting {
			continue
		}
		if ent.remain > 0 {
			ent.remain--
		}
		if ent.remain == 0 {
			ent.state = stDone
			if ent.mispred {
				if e.cfg.MispredictPenalty > e.resumeIn {
					e.resumeIn = e.cfg.MispredictPenalty
				}
				e.stalled = false
			}
		}
	}
}

func (e *engine) ready(i int) bool {
	ent := &e.win[i]
	for _, db := range ent.depBack {
		if db == 0 {
			continue
		}
		j := i - int(db)
		if j >= 0 && e.win[j].state != stDone {
			return false
		}
	}
	return true
}

func (e *engine) issue(s sink) {
	var fuUsed [uarch.NumFU]int
	fuAvail := [uarch.NumFU]int{
		uarch.FUIntALU: e.cfg.IntALUs,
		uarch.FUIntMul: e.cfg.IntMuls,
		uarch.FUFPU:    e.cfg.FPUs,
		uarch.FULSU:    e.cfg.LSUs,
	}
	pendingStore := false // an older store has not finished executing
	pendingMem := false   // an older memory op has not issued
	for i := range e.win {
		ent := &e.win[i]
		d := ent.d
		if ent.state != stWaiting {
			if d.isStore && ent.state != stDone {
				pendingStore = true
			}
			continue
		}
		issueIt := true
		if d.fu != uarch.FUNone && fuUsed[d.fu] >= fuAvail[d.fu] {
			issueIt = false
		}
		if issueIt && !e.ready(i) {
			issueIt = false
		}
		if issueIt && d.isMem && (pendingStore || (d.isStore && pendingMem)) {
			issueIt = false
		}
		if issueIt && d.isSync && i != 0 {
			issueIt = false
		}
		if issueIt {
			lat := d.lat
			if d.isMem {
				lat += s.dcache(i, ent.addr, d.isStore)
			}
			ent.state = stExecuting
			ent.remain = lat
			if d.fu != uarch.FUNone {
				fuUsed[d.fu]++
			}
			if d.isStore {
				pendingStore = true // issued but not yet done
			}
		} else {
			if d.isStore {
				pendingStore = true
			}
			if d.isMem {
				pendingMem = true
			}
		}
	}
}

func (e *engine) fetch(s sink) {
	if e.stalled || e.serialize || e.resumeIn > 0 {
		return
	}
	for n := 0; n < e.cfg.FetchWidth; n++ {
		if len(e.win) >= e.cfg.Window {
			return
		}
		pc := e.fetchPC
		if !e.prog.InText(pc) {
			e.stalled = true
			return
		}
		// One I-cache access per fetch group and per line crossing.
		if n == 0 || pc&e.ilineMask == 0 {
			ilat := s.icache(pc)
			if ilat > e.cfg.Mem.L1I.HitLat {
				e.resumeIn = ilat
				return
			}
		}
		d := e.decorFor(pc)
		slot := len(e.win)
		addr, npc := s.exec(slot, pc, d.in, d.cls)

		e.win = append(e.win, entry{pc: pc, d: d, addr: addr, actualNPC: npc})
		ent := &e.win[slot]
		e.computeDeps(slot)

		if d.isCtl {
			predNPC := s.predict(pc, d.in)
			ent.mispred = predNPC != npc
		}
		e.fetchPC = npc

		if d.isSync {
			e.serialize = true
			return
		}
		if ent.mispred {
			e.stalled = true
			return
		}
		if d.isCtl && npc != pc+4 {
			return
		}
	}
}
