package fastsim

import (
	"bytes"
	"testing"

	"facile/internal/arch/uarch"
)

// TestWarmCacheAdoption detaches the action cache from a completed run and
// adopts it into a fresh simulator over the same program: the second run
// must produce identical results while fast-forwarding strictly more (its
// very first step replays instead of recording).
func TestWarmCacheAdoption(t *testing.T) {
	p := asmOrDie(t, sumLoop)

	s1 := New(uarch.Default(), p, Options{Memoize: true})
	res1 := s1.Run(0)
	st1 := s1.Stats()
	wc := s1.DetachCache()
	if wc == nil {
		t.Fatal("DetachCache returned nil after a memoizing run")
	}
	if wc.Entries() == 0 || wc.Bytes() == 0 {
		t.Fatalf("detached cache empty: %d entries, %d bytes", wc.Entries(), wc.Bytes())
	}
	if got := s1.Stats().CacheBytes; got != 0 {
		t.Errorf("occupancy not refunded on detach: %d bytes", got)
	}
	if got := s1.Stats().CacheEntries; got != 0 {
		t.Errorf("entries not cleared on detach: %d", got)
	}

	s2 := New(uarch.Default(), p, Options{Memoize: true})
	if !s2.AdoptCache(wc) {
		t.Fatal("AdoptCache refused a valid warm cache")
	}
	res2 := s2.Run(0)
	st2 := s2.Stats()

	if res1.Cycles != res2.Cycles || res1.Insts != res2.Insts {
		t.Errorf("warm run diverged: cold %d insts/%d cycles, warm %d/%d",
			res1.Insts, res1.Cycles, res2.Insts, res2.Cycles)
	}
	if !bytes.Equal(res1.Output, res2.Output) {
		t.Errorf("warm output %q != cold %q", res2.Output, res1.Output)
	}
	if st2.FastForwardedPc <= st1.FastForwardedPc {
		t.Errorf("warm fast-forward share %.3f%% not above cold %.3f%%",
			st2.FastForwardedPc, st1.FastForwardedPc)
	}
	if st2.Steps >= st1.Steps {
		t.Errorf("warm run recorded %d slow steps, expected fewer than cold %d",
			st2.Steps, st1.Steps)
	}
	// The warm occupancy counts toward the gauge but not the per-run
	// monotonic total.
	if st2.CacheBytes < st1.CacheBytes {
		t.Errorf("warm occupancy %d below cold final occupancy %d", st2.CacheBytes, st1.CacheBytes)
	}
	if st2.TotalMemoBytes >= st1.TotalMemoBytes {
		t.Errorf("warm run memoized %d bytes, expected less than cold %d",
			st2.TotalMemoBytes, st1.TotalMemoBytes)
	}
}

// TestAdoptCacheRefusals covers the guard rails: empty caches, non-fresh
// simulators, and caps smaller than the adopted occupancy are refused.
func TestAdoptCacheRefusals(t *testing.T) {
	p := asmOrDie(t, sumLoop)

	s1 := New(uarch.Default(), p, Options{Memoize: true})
	s1.Run(0)
	wc := s1.DetachCache()
	if s1.DetachCache() != nil {
		t.Error("second DetachCache should return nil")
	}

	ran := New(uarch.Default(), p, Options{Memoize: true})
	ran.Run(0)
	if ran.AdoptCache(wc) {
		t.Error("AdoptCache accepted a simulator that already ran")
	}

	tiny := New(uarch.Default(), p, Options{Memoize: true, CacheCapBytes: 16})
	if tiny.AdoptCache(wc) {
		t.Error("AdoptCache accepted a cache larger than the cap")
	}

	fresh := New(uarch.Default(), p, Options{Memoize: true})
	if fresh.AdoptCache(nil) {
		t.Error("AdoptCache accepted nil")
	}
	if !fresh.AdoptCache(wc) {
		t.Error("AdoptCache refused a valid cache")
	}
	// Ownership transferred: the warm cache is spent.
	if wc.Entries() != 0 || wc.Bytes() != 0 {
		t.Errorf("adopted WarmCache not spent: %d entries, %d bytes", wc.Entries(), wc.Bytes())
	}
	fresh2 := New(uarch.Default(), p, Options{Memoize: true})
	if fresh2.AdoptCache(wc) {
		t.Error("AdoptCache accepted an already-adopted cache")
	}
}
