package fastsim

import (
	"bytes"
	"testing"

	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa/asm"
	"facile/internal/isa/loader"
)

func asmOrDie(t *testing.T, src string) *loader.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkEquivalence is the paper's central validation: the memoizing
// simulator must compute exactly the same simulated cycle counts (and
// architectural results) as the same simulator without memoization, and
// both must match the golden functional model architecturally.
func checkEquivalence(t *testing.T, src string) (memo uarch.Result, st Stats) {
	t.Helper()
	p := asmOrDie(t, src)
	_, golden, err := funcsim.Run(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}

	plain := New(uarch.Default(), p, Options{Memoize: false})
	resPlain := plain.Run(0)

	ms := New(uarch.Default(), p, Options{Memoize: true})
	resMemo := ms.Run(0)

	if resPlain.Cycles != resMemo.Cycles {
		t.Errorf("cycle counts differ: no-memo %d, memo %d", resPlain.Cycles, resMemo.Cycles)
	}
	if resPlain.Insts != resMemo.Insts || resMemo.Insts != golden.Insts {
		t.Errorf("inst counts: no-memo %d, memo %d, golden %d",
			resPlain.Insts, resMemo.Insts, golden.Insts)
	}
	if !bytes.Equal(resMemo.Output, golden.Output) {
		t.Errorf("memo output %q != golden %q", resMemo.Output, golden.Output)
	}
	if !bytes.Equal(resPlain.Output, golden.Output) {
		t.Errorf("no-memo output %q != golden %q", resPlain.Output, golden.Output)
	}
	if resMemo.ExitStatus != golden.ExitStatus {
		t.Errorf("exit %d != golden %d", resMemo.ExitStatus, golden.ExitStatus)
	}
	return resMemo, ms.Stats()
}

const sumLoop = `
start:  li   r1, 2000
        li   r4, 0
loop:   beq  r1, r0, done
        add  r4, r4, r1
        sub  r1, r1, 1
        b    loop
done:   li   r2, 2
        mov  r3, r4
        syscall
        li   r2, 1
        li   r3, 0
        syscall
`

func TestSumLoopEquivalence(t *testing.T) {
	res, st := checkEquivalence(t, sumLoop)
	if !bytes.Contains(res.Output, []byte("2001000")) {
		t.Fatalf("output %q", res.Output)
	}
	if st.FastInsts == 0 {
		t.Fatal("nothing was fast-forwarded")
	}
	if st.FastForwardedPc < 90 {
		t.Fatalf("fast-forwarded only %.2f%% of a steady loop", st.FastForwardedPc)
	}
}

func TestMemoryWorkloadEquivalence(t *testing.T) {
	_, st := checkEquivalence(t, `
start:  la   r1, buf
        li   r5, 512
        li   r6, 0
st:     beq  r5, r0, ld
        std  r6, r1, 0
        add  r1, r1, 64
        add  r6, r6, 3
        sub  r5, r5, 1
        b    st
ld:     la   r1, buf
        li   r5, 512
        li   r7, 0
ldl:    beq  r5, r0, out
        ldd  r8, r1, 0
        add  r7, r7, r8
        add  r1, r1, 64
        sub  r5, r5, 1
        b    ldl
out:    li   r2, 2
        mov  r3, r7
        syscall
        halt
        .data
buf:    .space 32768
`)
	if st.Misses == 0 && st.KeyMisses == 0 {
		t.Log("note: no misses at all (unexpected but not wrong)")
	}
}

func TestBranchyWorkloadEquivalence(t *testing.T) {
	// Data-dependent control flow forces dynamic-result forks and
	// mid-step recoveries.
	_, st := checkEquivalence(t, `
start:  li   r10, 500
        li   r11, 0
loop:   beq  r10, r0, done
        li   r2, 4
        syscall
        and  r5, r3, 7
        beq  r5, r0, bump
        and  r6, r3, 1
        bne  r6, r0, odd
        add  r11, r11, 2
        b    next
odd:    add  r11, r11, 1
        b    next
bump:   add  r11, r11, 10
next:   sub  r10, r10, 1
        b    loop
done:   li   r2, 2
        mov  r3, r11
        syscall
        halt
`)
	if st.Misses == 0 {
		t.Error("expected mid-step recoveries on data-dependent branches")
	}
	if st.FastInsts == 0 {
		t.Error("expected replayed instructions")
	}
}

func TestCallHeavyEquivalence(t *testing.T) {
	checkEquivalence(t, `
start:  li   r10, 200
        li   r11, 0
outer:  beq  r10, r0, done
        li   r3, 7
        call work
        add  r11, r11, r3
        sub  r10, r10, 1
        b    outer
done:   li   r2, 2
        mov  r3, r11
        syscall
        halt
work:   mul  r3, r3, r3
        rem  r3, r3, 100
        ret
`)
}

func TestFPEquivalence(t *testing.T) {
	checkEquivalence(t, `
start:  li    r1, 500
        li    r4, 1
        cvtif f1, r4
        cvtif f2, r4
loop:   beq   r1, r0, done
        fadd  f1, f1, f2
        fmul  f3, f1, f2
        fdiv  f4, f3, f1
        sub   r1, r1, 1
        b     loop
done:   cvtfi r3, f1
        li    r2, 2
        syscall
        halt
`)
}

func TestIndirectJumpEquivalence(t *testing.T) {
	// A jump table: indirect targets exercise the BTB dynres path.
	checkEquivalence(t, `
start:  li   r10, 300
        li   r11, 0
loop:   beq  r10, r0, done
        and  r5, r10, 3
        sll  r5, r5, 3
        la   r6, table
        add  r6, r6, r5
        ldd  r7, r6, 0
        jalr r31, r7, 0
        sub  r10, r10, 1
        b    loop
done:   li   r2, 2
        mov  r3, r11
        syscall
        halt
f0:     add  r11, r11, 1
        ret
f1:     add  r11, r11, 2
        ret
f2:     add  r11, r11, 3
        ret
f3:     add  r11, r11, 4
        ret
        .data
table:  .dword f0, f1, f2, f3
`)
}

func TestMemoIsActuallyFaster(t *testing.T) {
	// A long, regular loop: with memoization the run must do far fewer
	// slow-simulated instructions than total instructions.
	src := `
start:  li   r1, 50000
        li   r4, 0
loop:   beq  r1, r0, done
        add  r4, r4, r1
        xor  r5, r4, r1
        and  r6, r5, 255
        add  r4, r4, r6
        sub  r1, r1, 1
        b    loop
done:   halt
`
	p := asmOrDie(t, src)
	s := New(uarch.Default(), p, Options{Memoize: true})
	s.Run(0)
	st := s.Stats()
	if st.FastForwardedPc < 99 {
		t.Fatalf("fast-forwarded %.3f%%, want > 99%% on a steady loop", st.FastForwardedPc)
	}
}

func TestCacheCapClearing(t *testing.T) {
	// A tiny cap forces clears; results must stay correct.
	p := asmOrDie(t, sumLoop)
	capped := New(uarch.Default(), p, Options{Memoize: true, CacheCapBytes: 1 << 14})
	resCapped := capped.Run(0)
	plain := New(uarch.Default(), p, Options{Memoize: false})
	resPlain := plain.Run(0)
	if resCapped.Cycles != resPlain.Cycles {
		t.Fatalf("capped cycles %d != plain %d", resCapped.Cycles, resPlain.Cycles)
	}
	if capped.Stats().CacheClears == 0 {
		t.Fatal("expected at least one cache clear with a 16 KiB cap")
	}
}

func TestStatsAccounting(t *testing.T) {
	p := asmOrDie(t, sumLoop)
	s := New(uarch.Default(), p, Options{Memoize: true})
	res := s.Run(0)
	st := s.Stats()
	if st.SlowInsts+st.FastInsts != res.Insts {
		t.Fatalf("slow %d + fast %d != total %d", st.SlowInsts, st.FastInsts, res.Insts)
	}
	if st.TotalMemoBytes == 0 || st.CacheEntries == 0 {
		t.Fatalf("no memoized data recorded: %+v", st)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	// Run a while, snapshot, restore into a second engine, and compare
	// serialized forms.
	p := asmOrDie(t, sumLoop)
	s := New(uarch.Default(), p, Options{Memoize: false})
	for i := 0; i < 5 && !s.eng.haltSeen; i++ {
		s.eng.runStep(&nopSink{s: s})
	}
	key := s.eng.snapshotKey()
	e2 := newEngine(uarch.Default(), p, 0)
	getSlot := func(i int) (uint64, uint64) { return s.slotAddrAt(i), s.slotNPCAt(i) }
	if err := e2.restoreFromKey(key, getSlot, s.eng.cycle); err != nil {
		t.Fatal(err)
	}
	if got := e2.snapshotKey(); got != key {
		t.Fatalf("restore/snapshot not a fixed point:\n  %x\n  %x", key, got)
	}
	if len(e2.win) != len(s.eng.win) {
		t.Fatalf("window size %d != %d", len(e2.win), len(s.eng.win))
	}
	for i := range e2.win {
		a, b := &e2.win[i], &s.eng.win[i]
		if a.pc != b.pc || a.state != b.state || a.remain != b.remain || a.mispred != b.mispred {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestMaxInstsBound(t *testing.T) {
	p := asmOrDie(t, `
start:  b start
`)
	s := New(uarch.Default(), p, Options{Memoize: true})
	res := s.Run(2000)
	if res.Insts < 2000 || res.Insts > 3000 {
		t.Fatalf("committed %d, want ~2000", res.Insts)
	}
}

func TestStepGranularityEquivalence(t *testing.T) {
	// Step size is a granularity choice, not a semantics choice: every
	// StepCommits setting must produce identical cycle counts.
	p := asmOrDie(t, sumLoop)
	ref := New(uarch.Default(), p, Options{Memoize: false}).Run(0)
	for _, sc := range []int{4, 16, 48, 128} {
		s := New(uarch.Default(), p, Options{Memoize: true, StepCommits: sc})
		res := s.Run(0)
		if res.Cycles != ref.Cycles {
			t.Fatalf("StepCommits=%d: cycles %d != reference %d", sc, res.Cycles, ref.Cycles)
		}
		if s.Stats().FastInsts == 0 {
			t.Fatalf("StepCommits=%d: never replayed", sc)
		}
	}
}
