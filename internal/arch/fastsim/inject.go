package fastsim

import "facile/internal/faults"

// spineNext advances one action along an entry's primary path: the next
// link when present, else the first recorded fork of a dynamic-result
// action.
func spineNext(a *action) *action {
	if a.next != nil {
		return a.next
	}
	if len(a.forks) > 0 {
		return a.forks[0].next
	}
	return nil
}

// injectFault corrupts cache entry e according to inj. It runs only under
// a configured faults.Injector (tests and fault drills); each corruption
// is crafted so the corresponding detection + recovery path must fire.
func (s *Sim) injectFault(e *centry, inj faults.Injection) {
	// Any mutation of the recorded chain invalidates the derived compiled
	// state: bump the entry's version so stale superinstructions are
	// discarded and the corruption is re-validated on the next replay.
	e.cver++
	ij := s.opt.Inject
	switch inj {
	case faults.InjBreakChain:
		// Sever a next link partway into the entry. Only next-linked
		// actions qualify (severing a fork would read as a value miss, not
		// a broken chain); an entry with none gets its head severed.
		var candidates []*action
		a := e.first
		for n := 0; a != nil && n < 64; n++ {
			if a.next != nil && a.kind != aEnd && a.next.kind != aEnd {
				candidates = append(candidates, a)
			}
			a = spineNext(a)
		}
		if len(candidates) > 0 {
			candidates[ij.Rand()%uint64(len(candidates))].next = nil
		} else {
			e.first = nil
		}

	case faults.InjFlipFork:
		// Flip a recorded fork value: the live dynamic result no longer
		// matches any fork, which reads as a first-time value (a miss) and
		// recovers through the ordinary recovery-stack protocol.
		a := e.first
		for n := 0; a != nil && n < 64; n++ {
			if len(a.forks) > 0 {
				f := &a.forks[ij.Rand()%uint64(len(a.forks))]
				f.val ^= 1 << 62
				return
			}
			a = spineNext(a)
		}
		e.first = nil // no forks to flip: degrade to a severed chain

	case faults.InjTruncate:
		// Truncate the recorded successor key so the step-start state can
		// no longer be restored from it (corrupt-key fault → drain reset).
		// The cached link is dropped too; otherwise the replay would chain
		// through it without ever touching the corrupt key.
		a := e.first
		for n := 0; a != nil && n < 256; n++ {
			if a.kind == aEnd {
				if len(a.nextKey) > 1 {
					a.nextKey = a.nextKey[:len(a.nextKey)/2]
				}
				a.link = nil
				return
			}
			a = spineNext(a)
		}
		e.first = nil // halting entry has no aEnd: degrade to a severed chain

	case faults.InjGenBump:
		// Clear the cache underneath the in-flight replay, exactly as
		// clear-when-full would mid-run.
		s.ac.clearNow()
	}
}
