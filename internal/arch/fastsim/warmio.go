package fastsim

// Warm-cache serialization: a detached action cache round-trips through
// the snapshot codec so a job server can persist lineage caches across
// process restarts (internal/cachestore). The encoding walks each entry's
// action tree in a fixed order, so equal caches yield equal bytes; the
// replay-time link/linkGen fields are deliberately dropped — they are an
// intra-process optimization re-established lazily by key lookup, and a
// loaded cache must never alias entries from a previous process.

import (
	"fmt"
	"sort"

	"facile/internal/isa"
	"facile/internal/snapshot"
)

// WarmFormatVersion identifies the serialized action-tree layout. Bump it
// on any change to the action struct's persisted fields; a store record
// written by another version fails to adopt instead of replaying garbage.
const WarmFormatVersion = 1

// maxWarmEntries bounds how many cache entries a load will reconstruct,
// a backstop against a corrupt count field allocating unbounded memory
// before the codec notices the truncation.
const maxWarmEntries = 1 << 24

// Save serializes the detached cache. The walk is read-only: the cache
// stays parked and adoptable afterwards.
func (wc *WarmCache) Save(w *snapshot.Writer) {
	w.U64(WarmFormatVersion)
	w.U64(wc.gen)
	w.U64(wc.bytes)
	w.U64(uint64(len(wc.m)))
	keys := make([]string, 0, len(wc.m))
	for k := range wc.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := wc.m[k]
		w.String(e.key)
		w.U64(e.bytes)
		saveAction(w, e.first)
	}
}

func saveAction(w *snapshot.Writer, a *action) {
	if a == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.U8(a.kind)
	w.U8(a.flags)
	w.U8(uint8(a.cls))
	w.U64(uint64(a.slot))
	w.U64(uint64(a.dcyc))
	w.U64(a.pc)
	w.U8(uint8(a.in.Op))
	w.U8(a.in.Rd)
	w.U8(a.in.Rs1)
	w.U8(a.in.Rs2)
	w.I64(a.in.Imm)
	w.Bool(a.in.HasImm)
	w.U64(uint64(a.in.Raw))
	w.String(a.nextKey)
	w.U64(uint64(len(a.forks)))
	for i := range a.forks {
		w.U64(a.forks[i].val)
		saveAction(w, a.forks[i].next)
	}
	saveAction(w, a.next)
}

// LoadWarmCache reconstructs a detached cache from its serialized form.
// Any structural inconsistency — version skew, an out-of-range action
// kind, a byte-accounting mismatch, a truncated stream — is an error; the
// caller treats it like any other corruption (cold start), never adopting
// a partially decoded cache.
func LoadWarmCache(r *snapshot.Reader) (*WarmCache, error) {
	if v := r.U64(); r.Err() == nil && v != WarmFormatVersion {
		return nil, fmt.Errorf("fastsim: warm-cache format version %d, this build reads %d", v, WarmFormatVersion)
	}
	wc := &WarmCache{m: make(map[string]*centry)}
	wc.gen = r.U64()
	wc.bytes = r.U64()
	n := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > maxWarmEntries {
		return nil, fmt.Errorf("fastsim: warm cache claims %d entries", n)
	}
	var sum uint64
	for i := uint64(0); i < n; i++ {
		e := &centry{key: r.String(), gen: wc.gen}
		e.bytes = r.U64()
		first, err := loadAction(r)
		if err != nil {
			return nil, err
		}
		e.first = first
		if r.Err() != nil {
			return nil, r.Err()
		}
		if e.first == nil {
			return nil, fmt.Errorf("fastsim: warm cache entry %q has no actions", e.key)
		}
		wc.m[e.key] = e
		sum += e.bytes
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if sum != wc.bytes {
		return nil, fmt.Errorf("fastsim: warm cache accounting mismatch: entries sum to %d bytes, header says %d", sum, wc.bytes)
	}
	if uint64(len(wc.m)) != n {
		return nil, fmt.Errorf("fastsim: warm cache holds %d entries after dedup, header says %d", len(wc.m), n)
	}
	return wc, nil
}

func loadAction(r *snapshot.Reader) (*action, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	a := &action{}
	a.kind = r.U8()
	if r.Err() == nil && a.kind > aEnd {
		return nil, fmt.Errorf("fastsim: warm cache action kind %d out of range", a.kind)
	}
	a.flags = r.U8()
	a.cls = isa.Class(r.U8())
	a.slot = uint16(r.U64())
	a.dcyc = uint32(r.U64())
	a.pc = r.U64()
	a.in.Op = isa.Opcode(r.U8())
	a.in.Rd = r.U8()
	a.in.Rs1 = r.U8()
	a.in.Rs2 = r.U8()
	a.in.Imm = r.I64()
	a.in.HasImm = r.Bool()
	a.in.Raw = uint32(r.U64())
	a.nextKey = r.String()
	nf := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nf > maxWarmEntries {
		return nil, fmt.Errorf("fastsim: warm cache action claims %d forks", nf)
	}
	for i := uint64(0); i < nf; i++ {
		val := r.U64()
		next, err := loadAction(r)
		if err != nil {
			return nil, err
		}
		a.forks = append(a.forks, fork{val: val, next: next})
	}
	next, err := loadAction(r)
	if err != nil {
		return nil, err
	}
	a.next = next
	return a, r.Err()
}
