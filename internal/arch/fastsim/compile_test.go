package fastsim

import (
	"bytes"
	"reflect"
	"testing"

	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/faults"
)

// TestEmptyPathMissDegrades poisons the action cache with an entry whose
// first action is a dynamic-result test with no recorded successors: the
// replay misses before any dynamic value has been logged to s.path.
// Recovery alignment needs that value, so this must surface as a
// structural fault (degrade, re-run slow) — not a panic on path[len-1].
func TestEmptyPathMissDegrades(t *testing.T) {
	p := asmOrDie(t, sumLoop)
	_, golden, err := funcsim.Run(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	plain := New(uarch.Default(), p, Options{Memoize: false}).Run(0)

	s := New(uarch.Default(), p, Options{Memoize: true})
	key := s.eng.snapshotKey()
	bad := &centry{key: key, first: &action{kind: aNextPC}}
	s.ac.put(bad)
	s.beginReplay(key)
	s.replayFrom(bad, 0)

	st := s.Stats()
	if f := s.LastFault(); f == nil || f.Kind != faults.BrokenChain {
		t.Fatalf("fault = %v, want BrokenChain", s.LastFault())
	}
	if st.DegradedSteps != 1 || st.Invalidations != 1 {
		t.Errorf("expected one degraded step and one invalidation: %+v", st)
	}
	if st.Misses != 0 {
		t.Errorf("a structural fault must not count as a value miss: %+v", st)
	}

	// The run must finish on the slow path with results identical to the
	// uncorrupted simulators.
	res := s.Run(0)
	if !bytes.Equal(res.Output, golden.Output) {
		t.Errorf("output %q != golden %q", res.Output, golden.Output)
	}
	if res.Cycles != plain.Cycles {
		t.Errorf("cycles %d != plain %d", res.Cycles, plain.Cycles)
	}
}

// TestFusedStateDiscardedOnCverBump pins the derived-state contract: a
// superinstruction built for an action is valid only while the owning
// entry's cver is unchanged, and both fault injection and invalidation
// move it.
func TestFusedStateDiscardedOnCverBump(t *testing.T) {
	p := asmOrDie(t, sumLoop)
	s := New(uarch.Default(), p, Options{Memoize: true})
	e := &centry{key: "k", first: &action{kind: aShift, slot: 1}}
	s.ac.put(e)
	a := e.first
	a.fused = s.buildFused(a)
	a.fusedVer = e.cver
	s.ac.invalidate(e)
	if a.fusedVer == e.cver {
		t.Fatal("invalidate did not bump cver; stale fused state would survive")
	}
	a.fusedVer = e.cver
	s.injectFault(e, faults.InjFlipFork)
	if a.fusedVer == e.cver {
		t.Fatal("injectFault did not bump cver; stale fused state would survive")
	}
}

// The compiled closure-array replay substrate must be bit-identical to the
// action-at-a-time interpreter: same cycles, instructions, and output AND
// same fault / miss / degradation counters, under clean runs,
// self-checking, a starved action watchdog (fused runs must trip at the
// identical action count), and every injected corruption (faults
// mid-superinstruction must detect and recover exactly as interpreted
// replay does).
func TestCompiledReplayMatchesInterp(t *testing.T) {
	variants := []struct {
		name string
		opt  func() Options
	}{
		{"clean", func() Options { return Options{Memoize: true} }},
		{"selfcheck", func() Options { return Options{Memoize: true, SelfCheck: 0.5} }},
		{"capped", func() Options { return Options{Memoize: true, CacheCapBytes: 64 << 10} }},
		{"watchdog-starved", func() Options { return Options{Memoize: true, MaxReplayActions: 4} }},
		{"inject-all", func() Options {
			return Options{Memoize: true, Inject: faults.NewInjector(7, 5,
				faults.InjBreakChain, faults.InjFlipFork, faults.InjTruncate, faults.InjGenBump)}
		}},
	}
	for _, w := range faultWorkloads {
		for _, v := range variants {
			t.Run(w.name+"/"+v.name, func(t *testing.T) {
				p := asmOrDie(t, w.src)
				oi := v.opt()
				oi.ReplayInterp = true
				si := New(uarch.Default(), p, oi)
				ri := si.Run(0)
				sc := New(uarch.Default(), p, v.opt())
				rc := sc.Run(0)
				if !reflect.DeepEqual(ri, rc) {
					t.Errorf("results diverge:\n  interp   %+v\n  compiled %+v", ri, rc)
				}
				if sti, stc := si.Stats(), sc.Stats(); !reflect.DeepEqual(sti, stc) {
					t.Errorf("stats diverge:\n  interp   %+v\n  compiled %+v", sti, stc)
				}
			})
		}
	}
}
