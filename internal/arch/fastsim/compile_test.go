package fastsim

import (
	"bytes"
	"reflect"
	"testing"

	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/faults"
	"facile/internal/lang/ir"
)

// TestEmptyPathMissDegrades poisons the action cache with an entry whose
// first action is a dynamic-result test with no recorded successors: the
// replay misses before any dynamic value has been logged to s.path.
// Recovery alignment needs that value, so this must surface as a
// structural fault (degrade, re-run slow) — not a panic on path[len-1].
func TestEmptyPathMissDegrades(t *testing.T) {
	p := asmOrDie(t, sumLoop)
	_, golden, err := funcsim.Run(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	plain := New(uarch.Default(), p, Options{Memoize: false}).Run(0)

	s := New(uarch.Default(), p, Options{Memoize: true})
	key := s.eng.snapshotKey()
	bad := &centry{key: key, first: &action{kind: aNextPC}}
	s.ac.put(bad)
	s.beginReplay(key)
	s.replayFrom(bad, 0)

	st := s.Stats()
	if f := s.LastFault(); f == nil || f.Kind != faults.BrokenChain {
		t.Fatalf("fault = %v, want BrokenChain", s.LastFault())
	}
	if st.DegradedSteps != 1 || st.Invalidations != 1 {
		t.Errorf("expected one degraded step and one invalidation: %+v", st)
	}
	if st.Misses != 0 {
		t.Errorf("a structural fault must not count as a value miss: %+v", st)
	}

	// The run must finish on the slow path with results identical to the
	// uncorrupted simulators.
	res := s.Run(0)
	if !bytes.Equal(res.Output, golden.Output) {
		t.Errorf("output %q != golden %q", res.Output, golden.Output)
	}
	if res.Cycles != plain.Cycles {
		t.Errorf("cycles %d != plain %d", res.Cycles, plain.Cycles)
	}
}

// TestFusedStateDiscardedOnCverBump pins the derived-state contract: a
// superinstruction built for an action is valid only while the owning
// entry's cver is unchanged, and both fault injection and invalidation
// move it.
func TestFusedStateDiscardedOnCverBump(t *testing.T) {
	p := asmOrDie(t, sumLoop)
	s := New(uarch.Default(), p, Options{Memoize: true})
	e := &centry{key: "k", first: &action{kind: aShift, slot: 1}}
	s.ac.put(e)
	a := e.first
	a.fused = s.buildFused(a)
	a.fusedVer = e.cver
	s.ac.invalidate(e)
	if a.fusedVer == e.cver {
		t.Fatal("invalidate did not bump cver; stale fused state would survive")
	}
	a.fusedVer = e.cver
	s.injectFault(e, faults.InjFlipFork)
	if a.fusedVer == e.cver {
		t.Fatal("injectFault did not bump cver; stale fused state would survive")
	}
}

// The compiled closure-array replay substrate must be bit-identical to the
// action-at-a-time interpreter: same cycles, instructions, and output AND
// same fault / miss / degradation counters, under clean runs,
// self-checking, a starved action watchdog (fused runs must trip at the
// identical action count), and every injected corruption (faults
// mid-superinstruction must detect and recover exactly as interpreted
// replay does).
func TestCompiledReplayMatchesInterp(t *testing.T) {
	variants := []struct {
		name string
		opt  func() Options
	}{
		{"clean", func() Options { return Options{Memoize: true} }},
		{"selfcheck", func() Options { return Options{Memoize: true, SelfCheck: 0.5} }},
		{"capped", func() Options { return Options{Memoize: true, CacheCapBytes: 64 << 10} }},
		{"watchdog-starved", func() Options { return Options{Memoize: true, MaxReplayActions: 4} }},
		{"inject-all", func() Options {
			return Options{Memoize: true, Inject: faults.NewInjector(7, 5,
				faults.InjBreakChain, faults.InjFlipFork, faults.InjTruncate, faults.InjGenBump)}
		}},
	}
	for _, w := range faultWorkloads {
		for _, v := range variants {
			t.Run(w.name+"/"+v.name, func(t *testing.T) {
				p := asmOrDie(t, w.src)
				oi := v.opt()
				oi.ReplayInterp = true
				si := New(uarch.Default(), p, oi)
				ri := si.Run(0)
				sc := New(uarch.Default(), p, v.opt())
				rc := sc.Run(0)
				if !reflect.DeepEqual(ri, rc) {
					t.Errorf("results diverge:\n  interp   %+v\n  compiled %+v", ri, rc)
				}
				if sti, stc := si.Stats(), sc.Stats(); !reflect.DeepEqual(sti, stc) {
					t.Errorf("stats diverge:\n  interp   %+v\n  compiled %+v", sti, stc)
				}
			})
		}
	}
}

// TestForkAtRunHeadSeversFusion is the action-cache image of the PR-8
// corner: a run whose head action carries a dynamic result (here the
// resolved next-PC test) must not fuse at all — a miss there degrades
// the whole step before any fused work runs — while the same pure tail
// entered one action later fuses normally.
func TestForkAtRunHeadSeversFusion(t *testing.T) {
	p := asmOrDie(t, sumLoop)
	s := New(uarch.Default(), p, Options{Memoize: true})
	t2 := &action{kind: aShift, slot: 1}
	t1 := &action{kind: aShift, slot: 1, next: t2}
	head := &action{kind: aNextPC, next: t1}
	if fr := s.buildFused(head); fr.n != 0 || len(fr.fns) != 0 {
		t.Errorf("fork-headed run fused %d actions, want 0", fr.n)
	}
	if fr := s.buildFused(t1); fr.n != 2 || fr.ops != 2 {
		t.Errorf("pure tail fused %d actions / %d ops, want 2 / 2", fr.n, fr.ops)
	}
}

// TestActionClassTable pins the static classification the compiler's
// replay planner shares with this engine: pure-flow kinds fuse, every
// dynamic-result kind is a fork barrier, aEnd is the step boundary, and
// unknown (corrupt or future) kinds never fuse.
func TestActionClassTable(t *testing.T) {
	pure := []uint8{aExec, aUpdate, aShift}
	forks := []uint8{aICache, aDCache, aPredict, aNextPC, aHalted}
	for _, k := range pure {
		if actClass[k] != ir.ReplayPure || !fusable(k) {
			t.Errorf("kind %d: class %v, fusable %v; want pure-flow and fusable", k, actClass[k], fusable(k))
		}
	}
	for _, k := range forks {
		if actClass[k] != ir.ReplayFork || fusable(k) {
			t.Errorf("kind %d: class %v, fusable %v; want fork and unfusable", k, actClass[k], fusable(k))
		}
	}
	if actClass[aEnd] != ir.ReplayRet || fusable(aEnd) {
		t.Errorf("aEnd: class %v, fusable %v; want step-end and unfusable", actClass[aEnd], fusable(aEnd))
	}
	if fusable(aEnd + 1) {
		t.Error("unknown kind reported fusable")
	}
}
