package fastsim

import (
	"fmt"

	"facile/internal/faults"
	"facile/internal/isa"
	"facile/internal/obs"
)

// Self-check mode: a sampled fraction of replayable steps is run on the
// slow simulator *instead of* being replayed, with a verifying sink that
// walks the recorded action chain alongside the live run. Every recorded
// action must match the live operation in kind, rt-static fields, and
// cycle delta; every recorded fork must cover the live dynamic value (a
// first-time value is the ordinary miss case and extends the entry, just
// as a replay miss would). A structural disagreement means the cache entry
// no longer describes what the slow simulator actually does — a
// self-check-divergence fault: the entry is invalidated and the step
// finishes live, unrecorded.
//
// Because the checked step runs entirely on the always-correct slow path
// (the recorded actions are only *compared*, never *applied*), self-check
// cannot perturb architectural state or cycle counts.

type scMode uint8

const (
	scVerify scMode = iota // comparing live operations against the chain
	scRecord               // first-time dynamic value: extending the entry
	scLive                 // diverged: finish the step live, unrecorded
)

// checker is the self-check sink.
type checker struct {
	s         *Sim
	ent       *centry
	a         *action // next expected recorded action
	lastCycle uint64
	rec       *recorder // active in scRecord mode
	mode      scMode
}

// diverge flags a structural disagreement between the recorded entry and
// the live slow step.
func (c *checker) diverge(detail string) {
	s := c.s
	s.fault(faults.SelfCheckDivergence, detail)
	s.scDiverged++
	s.degraded++
	s.invalidateEntry(c.ent)
	c.mode = scLive
}

// expect consumes the next recorded action, requiring kind and the cycle
// delta to match the live run. It returns nil (after flagging divergence)
// on any mismatch.
func (c *checker) expect(kind uint8) *action {
	a := c.a
	if a == nil {
		c.diverge("action chain ended before the step did")
		return nil
	}
	if a.kind != kind {
		c.diverge(fmt.Sprintf("recorded action kind %d, live op %d", a.kind, kind))
		return nil
	}
	if want := c.s.eng.cycle - c.lastCycle; uint64(a.dcyc) != want {
		c.diverge(fmt.Sprintf("recorded cycle delta %d, live %d", a.dcyc, want))
		return nil
	}
	c.lastCycle = c.s.eng.cycle
	return a
}

// forkOn follows the fork recorded for live value v, or — for a value
// never recorded — extends the entry with a fresh fork and switches to
// recording, exactly as miss recovery would.
func (c *checker) forkOn(a *action, v uint64) {
	if next, ok := a.findFork(v); ok {
		c.a = next
		return
	}
	s := c.s
	s.misses++
	s.obs.Event(obs.EvMidStepMiss, 0)
	a.forks = append(a.forks, fork{val: v})
	s.ac.charge(c.ent, forkBytes)
	c.rec = &recorder{s: s, ent: c.ent, tail: &a.forks[len(a.forks)-1].next, lastCycle: s.eng.cycle}
	c.mode = scRecord
}

func (c *checker) exec(slot int, pc uint64, in isa.Inst, cls isa.Class) (uint64, uint64) {
	if c.mode == scRecord {
		return c.rec.exec(slot, pc, in, cls)
	}
	addr, npc := dynExec(c.s.eng.st, in, pc, cls)
	c.s.setSlot(slot, addr, npc)
	if c.mode != scVerify {
		return addr, npc
	}
	a := c.expect(aExec)
	if a == nil {
		return addr, npc
	}
	if int(a.slot) != slot || a.pc != pc || a.in != in || a.cls != cls {
		c.diverge("exec action fields disagree with live fetch")
		return addr, npc
	}
	c.a = a.next
	if needNextPCTest(in, cls) {
		if t := c.expect(aNextPC); t != nil {
			if int(t.slot) != slot {
				c.diverge("next-pc test slot disagrees")
			} else {
				c.forkOn(t, npc)
			}
		}
	}
	return addr, npc
}

func (c *checker) icache(pc uint64) uint64 {
	if c.mode == scRecord {
		return c.rec.icache(pc)
	}
	lat := c.s.eng.mem.Inst(pc, c.s.eng.cycle)
	if c.mode == scVerify {
		if a := c.expect(aICache); a != nil {
			if a.pc != pc {
				c.diverge("icache pc disagrees")
			} else {
				c.forkOn(a, lat)
			}
		}
	}
	return lat
}

func (c *checker) dcache(slot int, addr uint64, write bool) uint64 {
	if c.mode == scRecord {
		return c.rec.dcache(slot, addr, write)
	}
	lat := c.s.eng.mem.Data(addr, c.s.eng.cycle, write)
	if c.mode == scVerify {
		if a := c.expect(aDCache); a != nil {
			if int(a.slot) != slot || (a.flags&flagWrite != 0) != write {
				c.diverge("dcache action fields disagree")
			} else {
				c.forkOn(a, lat)
			}
		}
	}
	return lat
}

func (c *checker) predict(pc uint64, in isa.Inst) uint64 {
	if c.mode == scRecord {
		return c.rec.predict(pc, in)
	}
	npc := c.s.eng.pred.Predict(in, pc)
	if c.mode == scVerify {
		if a := c.expect(aPredict); a != nil {
			if a.pc != pc || a.in != in {
				c.diverge("predict action fields disagree")
			} else {
				c.forkOn(a, npc)
			}
		}
	}
	return npc
}

func (c *checker) update(slot int, pc uint64, in isa.Inst, actual uint64, mispred bool) {
	if c.mode == scRecord {
		c.rec.update(slot, pc, in, actual, mispred)
		return
	}
	c.s.eng.pred.Update(in, pc, actual, mispred)
	if c.mode == scVerify {
		if a := c.expect(aUpdate); a != nil {
			if int(a.slot) != slot || a.pc != pc || a.in != in ||
				(a.flags&flagMispred != 0) != mispred {
				c.diverge("update action fields disagree")
			} else {
				c.a = a.next
			}
		}
	}
}

func (c *checker) halted() bool {
	if c.mode == scRecord {
		return c.rec.halted()
	}
	h := c.s.eng.st.Halted
	if c.mode == scVerify {
		if a := c.expect(aHalted); a != nil {
			c.forkOn(a, b2u(h))
		}
	}
	return h
}

func (c *checker) shifted(k int) {
	if c.mode == scRecord {
		c.rec.shifted(k)
		return
	}
	c.s.shiftSlots(k)
	c.s.slowInsts += uint64(k)
	if c.mode == scVerify {
		if a := c.expect(aShift); a != nil {
			if int(a.slot) != k {
				c.diverge("shift width disagrees")
			} else {
				c.a = a.next
			}
		}
	}
}

// selfCheckStep re-executes one cached step on the slow simulator,
// verifying the recorded entry against the live run (see checker).
func (s *Sim) selfCheckStep(e *centry) {
	s.selfChecks++
	s.steps++
	chk := &checker{s: s, ent: e, a: e.first, lastCycle: s.eng.cycle}
	s.eng.runStep(chk)
	s.cycle = s.eng.cycle
	if s.eng.haltSeen {
		s.done = true
		return
	}
	nextKey := s.eng.snapshotKey()
	switch chk.mode {
	case scVerify:
		a := chk.a
		if a == nil || a.kind != aEnd {
			chk.diverge("recorded chain and live step end in different places")
			return
		}
		if a.nextKey != nextKey {
			chk.diverge("recorded successor key disagrees with live state")
			return
		}
		if want := s.eng.cycle - chk.lastCycle; uint64(a.dcyc) != want {
			chk.diverge(fmt.Sprintf("end-of-step cycle delta %d, live %d", a.dcyc, want))
			return
		}
	case scRecord:
		chk.rec.emit(&action{kind: aEnd, nextKey: nextKey})
	}
}
