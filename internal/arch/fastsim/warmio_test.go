package fastsim

import (
	"bytes"
	"testing"

	"facile/internal/arch/uarch"
	"facile/internal/snapshot"
)

// TestWarmCacheSaveLoadRoundTrip persists a detached cache through the
// snapshot codec and adopts the reloaded copy into a fresh simulator: the
// warm run must produce identical results and fast-forward more than the
// cold run, exactly as an in-memory adoption would.
func TestWarmCacheSaveLoadRoundTrip(t *testing.T) {
	p := asmOrDie(t, sumLoop)

	s1 := New(uarch.Default(), p, Options{Memoize: true})
	res1 := s1.Run(0)
	st1 := s1.Stats()
	wc := s1.DetachCache()
	if wc == nil || wc.Entries() == 0 {
		t.Fatal("no detached cache to persist")
	}
	entries, bs := wc.Entries(), wc.Bytes()

	w := snapshot.NewWriter()
	wc.Save(w)
	// Save is a read-only walk: the original stays parked and adoptable.
	if wc.Entries() != entries || wc.Bytes() != bs {
		t.Fatalf("Save mutated the cache: %d/%d, was %d/%d",
			wc.Entries(), wc.Bytes(), entries, bs)
	}

	loaded, err := LoadWarmCache(snapshot.NewReader(w.Payload()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Entries() != entries || loaded.Bytes() != bs {
		t.Fatalf("loaded cache sized %d entries/%d bytes, saved %d/%d",
			loaded.Entries(), loaded.Bytes(), entries, bs)
	}

	s2 := New(uarch.Default(), p, Options{Memoize: true})
	if !s2.AdoptCache(loaded) {
		t.Fatal("AdoptCache refused a reloaded warm cache")
	}
	res2 := s2.Run(0)
	st2 := s2.Stats()
	if res1.Cycles != res2.Cycles || res1.Insts != res2.Insts {
		t.Errorf("reloaded-warm run diverged: cold %d insts/%d cycles, warm %d/%d",
			res1.Insts, res1.Cycles, res2.Insts, res2.Cycles)
	}
	if !bytes.Equal(res1.Output, res2.Output) {
		t.Errorf("reloaded-warm output %q != cold %q", res2.Output, res1.Output)
	}
	if st2.FastForwardedPc <= st1.FastForwardedPc {
		t.Errorf("reloaded-warm fast-forward %.3f%% not above cold %.3f%%",
			st2.FastForwardedPc, st1.FastForwardedPc)
	}
}

// TestWarmCacheSaveDeterministic: equal caches serialize to equal bytes
// (the walk is key-sorted), the property content-addressed storage and
// cross-node export rely on.
func TestWarmCacheSaveDeterministic(t *testing.T) {
	p := asmOrDie(t, sumLoop)
	s := New(uarch.Default(), p, Options{Memoize: true})
	s.Run(0)
	wc := s.DetachCache()

	w1 := snapshot.NewWriter()
	wc.Save(w1)
	w2 := snapshot.NewWriter()
	wc.Save(w2)
	if !bytes.Equal(w1.Payload(), w2.Payload()) {
		t.Fatal("two Saves of the same cache produced different bytes")
	}
}

// TestLoadWarmCacheRejectsCorruption drives the structural validators:
// version skew, truncation, and cooked accounting must all fail the load
// rather than hand back a partially decoded cache.
func TestLoadWarmCacheRejectsCorruption(t *testing.T) {
	p := asmOrDie(t, sumLoop)
	s := New(uarch.Default(), p, Options{Memoize: true})
	s.Run(0)
	wc := s.DetachCache()
	w := snapshot.NewWriter()
	wc.Save(w)
	good := w.Payload()

	t.Run("version-skew", func(t *testing.T) {
		skew := snapshot.NewWriter()
		skew.U64(WarmFormatVersion + 1)
		blob := append(skew.Payload(), good[1:]...)
		if _, err := LoadWarmCache(snapshot.NewReader(blob)); err == nil {
			t.Fatal("future format version loaded")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := LoadWarmCache(snapshot.NewReader(good[:len(good)/2])); err == nil {
			t.Fatal("truncated stream loaded")
		}
	})
	t.Run("accounting-mismatch", func(t *testing.T) {
		// Rewrite the header's total-bytes field (third varint) to a lie.
		pre := snapshot.NewWriter()
		pre.U64(WarmFormatVersion)
		pre.U64(wc.gen)
		pre.U64(wc.bytes)
		hdr := snapshot.NewWriter()
		hdr.U64(WarmFormatVersion)
		hdr.U64(wc.gen)
		hdr.U64(wc.bytes + 1)
		blob := append(hdr.Payload(), good[len(pre.Payload()):]...)
		if _, err := LoadWarmCache(snapshot.NewReader(blob)); err == nil {
			t.Fatal("cooked byte accounting loaded")
		}
	})
}
