package fastsim

import (
	"facile/internal/isa"
	"facile/internal/lang/ir"
)

// This file is the compiled replay substrate for the hand-coded simulator:
// the action graph's straight-line stretches are threaded into closure
// arrays ("superinstructions") so a hot chain replays as one fused call
// sequence instead of one interpreter iteration — kind switch, field
// loads, flag tests — per action.
//
// Each aExec closure is specialized to its instruction: the interpreter's
// dispatch tower (dynExec's class switch, Apply's Classify and per-opcode
// switches, ALUResult's operand-format test) is resolved once at build
// time, next-PC and branch-target constants are folded, and the per-action
// bookkeeping (cycle delta, sink-op count, committed instructions) is
// summed over the whole run and charged once per dispatch.
//
// Only pure-flow actions fuse: aExec, aUpdate, and aShift advance along
// a.next unconditionally and can never miss. Dynamic-result actions
// (aNextPC, aICache, aDCache, aPredict, aHalted) and step boundaries (aEnd)
// terminate a run and are handled by the interpreted loop, so the
// mid-step-miss and fault-degradation protocol is untouched by fusion.
// Nothing inside a run reads s.cycle or s.ops (only fork actions and step
// boundaries do, and those always sit between runs), so the batched
// charging is observationally identical to the interpreter's per-action
// increments.
//
// Compiled form is derived state, not memoized data: it is attached to hot
// chains lazily during replay, never serialized (snapshot/warmio enumerate
// action fields explicitly), rebuilt after warm-cache adoption, and
// discarded whenever the owning entry's cver moves (fault injection,
// invalidation) so a mutated chain is re-validated before its next replay.

// actFn replays one action with its kind, operands, and flags resolved at
// compile time.
type actFn func(s *Sim)

// maxActFuseLen bounds one superinstruction's action count. Longer
// stretches split into consecutive runs; a cycle in a corrupted graph
// therefore still advances the acts counter toward the replay watchdog
// instead of hanging the builder. Shared with the Facile engine and the
// compiler's static replay planner.
const maxActFuseLen = ir.MaxFuseLen

// minActFuseLen is the shortest run worth fusing: below it the fused
// dispatch (version check, closure calls) costs more than the interpreter
// iterations it replaces, so the builder emits an empty run and the
// actions replay interpreted.
const minActFuseLen = ir.MinFuseLen

// fusedActs is a superinstruction: a compiled straight-line run of
// pure-flow actions. end is the first action after the run (a
// dynamic-result action, aEnd, an unknown kind, or nil — a severed chain),
// handed back to the interpreted loop.
type fusedActs struct {
	fns []actFn
	end *action
	n   uint64 // actions covered, for the watchdog's acts accounting
	cyc uint64 // summed cycle deltas, charged once per dispatch
	ops uint64 // summed sink-op count (the recovery cursor's units)
	ins uint64 // summed aShift commit counts, credited to fastInsts
}

// actClass is the static fusion/replay classification of the hand-coded
// engine's action-kind taxonomy — the analogue of the per-block
// ir.ReplayPlan the Facile compiler proves for described simulators.
// Because the taxonomy is fixed at compile time, the whole classification
// is a declared table rather than a per-action scan: pure-flow kinds
// advance along a.next unconditionally and may join a superinstruction;
// fork kinds carry a dynamic result and always break a run; aEnd is the
// step boundary where the next memoization key is assembled.
var actClass = [aEnd + 1]ir.ReplayClass{
	aExec:    ir.ReplayPure,
	aUpdate:  ir.ReplayPure,
	aShift:   ir.ReplayPure,
	aICache:  ir.ReplayFork,
	aDCache:  ir.ReplayFork,
	aPredict: ir.ReplayFork,
	aNextPC:  ir.ReplayFork,
	aHalted:  ir.ReplayFork,
	aEnd:     ir.ReplayRet,
}

// fusable reports whether kind is a pure-flow action a superinstruction may
// contain. Unknown kinds (corrupt or future records) never fuse and fall to
// the interpreted loop's fault handling.
func fusable(kind uint8) bool {
	return int(kind) < len(actClass) && actClass[kind] == ir.ReplayPure
}

// buildFused threads the superinstruction starting at a. Each closure
// replicates the interpreted case's data effects exactly — including the
// recovery-path logging the degradation protocol depends on — while the
// counter work is folded into the run totals.
func (s *Sim) buildFused(a *action) *fusedActs {
	fr := &fusedActs{}
	for a != nil && fusable(a.kind) && len(fr.fns) < maxActFuseLen {
		fr.fns = append(fr.fns, compileAction(a))
		fr.n++
		fr.cyc += uint64(a.dcyc)
		fr.ops++
		if a.kind == aShift {
			fr.ins += uint64(a.slot)
		}
		a = a.next
	}
	fr.end = a
	if fr.n < minActFuseLen {
		return &fusedActs{} // too short to amortize: replay interpreted
	}
	return fr
}

func compileAction(a *action) actFn {
	switch a.kind {
	case aExec:
		return compileExec(a)
	case aUpdate:
		in, pc, slot, mispred := a.in, a.pc, int(a.slot), a.flags&flagMispred != 0
		return func(s *Sim) {
			s.eng.pred.Update(in, pc, s.slotNPCAt(slot), mispred)
		}
	case aShift:
		k := int(a.slot)
		return func(s *Sim) {
			s.shiftSlots(k)
		}
	}
	// Unreachable: buildFused only compiles fusable kinds.
	return func(*Sim) {}
}

// operandB resolves a two-form operand (immediate or register) into a
// constant-plus-register pair. R0 is hardwired zero (every write goes
// through SetReg, which drops writes to it), so `c + st.R[r]` evaluates
// both forms without a runtime format test: the dead term is zero.
func operandB(c int64, reg uint8, useReg bool) (int64, uint8) {
	if useReg {
		return 0, reg
	}
	return c, 0
}

// compileExec specializes one aExec to its instruction. Every closure ends
// with the same observable effects as the interpreted case: the slot write
// (effective address and resolved next PC) and the recovery-path log entry
// for values the mid-step-miss protocol consumes.
func compileExec(a *action) actFn {
	in, pc, cls, slot := a.in, a.pc, a.cls, int(a.slot)
	rd, rs1, rs2 := in.Rd, in.Rs1, in.Rs2
	npcC := pc + 4

	switch cls {
	case isa.ClassLoad:
		offC, offR := operandB(in.Imm, rs2, !in.HasImm)
		switch in.Op {
		case isa.OpLdb:
			return func(s *Sim) {
				st := s.eng.st
				addr := uint64(st.R[rs1] + offC + st.R[offR])
				st.SetReg(rd, int64(int8(st.Mem.Read8(addr))))
				s.setSlot(slot, addr, npcC)
				s.path = append(s.path, addr)
			}
		case isa.OpLdw:
			return func(s *Sim) {
				st := s.eng.st
				addr := uint64(st.R[rs1] + offC + st.R[offR])
				st.SetReg(rd, int64(int32(st.Mem.Read32(addr))))
				s.setSlot(slot, addr, npcC)
				s.path = append(s.path, addr)
			}
		case isa.OpLdd:
			return func(s *Sim) {
				st := s.eng.st
				addr := uint64(st.R[rs1] + offC + st.R[offR])
				st.SetReg(rd, int64(st.Mem.Read64(addr)))
				s.setSlot(slot, addr, npcC)
				s.path = append(s.path, addr)
			}
		}

	case isa.ClassStore:
		offC, offR := operandB(in.Imm, rs2, !in.HasImm)
		switch in.Op {
		case isa.OpStb:
			return func(s *Sim) {
				st := s.eng.st
				addr := uint64(st.R[rs1] + offC + st.R[offR])
				st.Mem.Write8(addr, byte(st.R[rd]))
				s.setSlot(slot, addr, npcC)
				s.path = append(s.path, addr)
			}
		case isa.OpStw:
			return func(s *Sim) {
				st := s.eng.st
				addr := uint64(st.R[rs1] + offC + st.R[offR])
				st.Mem.Write32(addr, uint32(st.R[rd]))
				s.setSlot(slot, addr, npcC)
				s.path = append(s.path, addr)
			}
		case isa.OpStd:
			return func(s *Sim) {
				st := s.eng.st
				addr := uint64(st.R[rs1] + offC + st.R[offR])
				st.Mem.Write64(addr, uint64(st.R[rd]))
				s.setSlot(slot, addr, npcC)
				s.path = append(s.path, addr)
			}
		}

	case isa.ClassBranch:
		tC := isa.BranchTarget(in, pc)
		switch in.Op {
		case isa.OpBeq:
			return func(s *Sim) {
				st := s.eng.st
				npc := npcC
				if st.R[rs1] == st.R[rs2] {
					npc = tC
				}
				s.setSlot(slot, 0, npc)
				s.path = append(s.path, npc)
			}
		case isa.OpBne:
			return func(s *Sim) {
				st := s.eng.st
				npc := npcC
				if st.R[rs1] != st.R[rs2] {
					npc = tC
				}
				s.setSlot(slot, 0, npc)
				s.path = append(s.path, npc)
			}
		case isa.OpBlt:
			return func(s *Sim) {
				st := s.eng.st
				npc := npcC
				if st.R[rs1] < st.R[rs2] {
					npc = tC
				}
				s.setSlot(slot, 0, npc)
				s.path = append(s.path, npc)
			}
		case isa.OpBge:
			return func(s *Sim) {
				st := s.eng.st
				npc := npcC
				if st.R[rs1] >= st.R[rs2] {
					npc = tC
				}
				s.setSlot(slot, 0, npc)
				s.path = append(s.path, npc)
			}
		case isa.OpBltu:
			return func(s *Sim) {
				st := s.eng.st
				npc := npcC
				if uint64(st.R[rs1]) < uint64(st.R[rs2]) {
					npc = tC
				}
				s.setSlot(slot, 0, npc)
				s.path = append(s.path, npc)
			}
		case isa.OpBgeu:
			return func(s *Sim) {
				st := s.eng.st
				npc := npcC
				if uint64(st.R[rs1]) >= uint64(st.R[rs2]) {
					npc = tC
				}
				s.setSlot(slot, 0, npc)
				s.path = append(s.path, npc)
			}
		}

	case isa.ClassJump:
		switch in.Op {
		case isa.OpJ:
			tC := isa.BranchTarget(in, pc)
			return func(s *Sim) {
				s.setSlot(slot, 0, tC)
			}
		case isa.OpJal:
			tC := isa.BranchTarget(in, pc)
			link := int64(pc + 4)
			return func(s *Sim) {
				s.eng.st.SetReg(isa.RegRA, link)
				s.setSlot(slot, 0, tC)
			}
		case isa.OpJr:
			offC, offR := operandB(in.Imm, rs2, !in.HasImm)
			return func(s *Sim) {
				st := s.eng.st
				npc := uint64(st.R[rs1] + offC + st.R[offR])
				s.setSlot(slot, 0, npc)
				s.path = append(s.path, npc)
			}
		case isa.OpJalr:
			offC, offR := operandB(in.Imm, rs2, !in.HasImm)
			link := int64(pc + 4)
			return func(s *Sim) {
				st := s.eng.st
				// Resolve the target before the link write: jalr through the
				// link register reads the pre-write value.
				npc := uint64(st.R[rs1] + offC + st.R[offR])
				st.SetReg(rd, link)
				s.setSlot(slot, 0, npc)
				s.path = append(s.path, npc)
			}
		}

	case isa.ClassIntALU, isa.ClassIntMul:
		if fn := compileALU(in, pc, slot, npcC); fn != nil {
			return fn
		}
	}

	// Generic body for everything not specialized above (FP, Sys, Nop,
	// unknown): the exact interpreted aExec case minus the batched counters.
	logAddr := cls == isa.ClassLoad || cls == isa.ClassStore
	logNPC := needNextPCTest(in, cls)
	return func(s *Sim) {
		addr, npc := dynExec(s.eng.st, in, pc, cls)
		s.setSlot(slot, addr, npc)
		switch {
		case logAddr:
			s.path = append(s.path, addr)
		case logNPC:
			s.path = append(s.path, npc)
		}
	}
}

// compileALU specializes a register-writing integer instruction, or returns
// nil to fall back to the generic body. ALU results are pure, so a write to
// the hardwired-zero R0 compiles to just the slot update.
func compileALU(in isa.Inst, pc uint64, slot int, npcC uint64) actFn {
	rd, rs1 := in.Rd, in.Rs1
	bC, bR := operandB(in.Imm, in.Rs2, !in.HasImm && isa.OpcodeFormat(in.Op) == isa.FmtRI)
	if rd == 0 {
		switch in.Op {
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSll,
			isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpSltu, isa.OpSethi,
			isa.OpMul, isa.OpDiv, isa.OpRem:
			return func(s *Sim) {
				s.setSlot(slot, 0, npcC)
			}
		}
		return nil
	}
	switch in.Op {
	case isa.OpAdd:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = st.R[rs1] + bC + st.R[bR]
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpSub:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = st.R[rs1] - (bC + st.R[bR])
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpAnd:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = st.R[rs1] & (bC + st.R[bR])
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpOr:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = st.R[rs1] | (bC + st.R[bR])
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpXor:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = st.R[rs1] ^ (bC + st.R[bR])
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpSll:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = st.R[rs1] << (uint64(bC+st.R[bR]) & 63)
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpSrl:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = int64(uint64(st.R[rs1]) >> (uint64(bC+st.R[bR]) & 63))
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpSra:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = st.R[rs1] >> (uint64(bC+st.R[bR]) & 63)
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpSlt:
		return func(s *Sim) {
			st := s.eng.st
			var v int64
			if st.R[rs1] < bC+st.R[bR] {
				v = 1
			}
			st.R[rd] = v
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpSltu:
		return func(s *Sim) {
			st := s.eng.st
			var v int64
			if uint64(st.R[rs1]) < uint64(bC+st.R[bR]) {
				v = 1
			}
			st.R[rd] = v
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpMul:
		return func(s *Sim) {
			st := s.eng.st
			st.R[rd] = st.R[rs1] * (bC + st.R[bR])
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpDiv:
		return func(s *Sim) {
			st := s.eng.st
			var v int64
			if b := bC + st.R[bR]; b != 0 {
				v = st.R[rs1] / b
			}
			st.R[rd] = v
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpRem:
		return func(s *Sim) {
			st := s.eng.st
			var v int64
			if b := bC + st.R[bR]; b != 0 {
				v = st.R[rs1] % b
			}
			st.R[rd] = v
			s.setSlot(slot, 0, npcC)
		}
	case isa.OpSethi:
		vC := in.Imm << 11
		return func(s *Sim) {
			s.eng.st.R[rd] = vC
			s.setSlot(slot, 0, npcC)
		}
	}
	return nil
}
