package fastsim

// Warm-cache sharing: the specialized action cache is a pure acceleration
// structure (every entry is re-derivable by the slow simulator), so a cache
// built by one run of a program is valid for any later run of the same
// program under the same configuration. DetachCache removes the cache from
// a finished simulator and AdoptCache installs it into a fresh one, letting
// a job server amortize specialization cost across jobs instead of only
// within one run — the compounding the paper's memoization economics want.

// WarmCache is a detached specialized action cache. It is immutable from
// the holder's point of view: only a Sim that adopts it may mutate the
// entries, and ownership transfers on AdoptCache, so a WarmCache must never
// be adopted by two simulators (their mutations would race).
type WarmCache struct {
	m     map[string]*centry
	bytes uint64
	gen   uint64
}

// Entries reports the number of cached entries.
func (wc *WarmCache) Entries() uint64 {
	if wc == nil {
		return 0
	}
	return uint64(len(wc.m))
}

// Bytes reports the occupancy charged for the cached entries (accounting
// model, see Table 2).
func (wc *WarmCache) Bytes() uint64 {
	if wc == nil {
		return 0
	}
	return wc.bytes
}

// DetachCache removes and returns the simulator's action cache, leaving an
// empty cache behind (occupancy refunded, monotonic totals kept). It
// returns nil when the cache holds nothing. Call it at a step boundary —
// conventionally after the run completes.
func (s *Sim) DetachCache() *WarmCache {
	if len(s.ac.m) == 0 {
		return nil
	}
	wc := &WarmCache{m: s.ac.m, bytes: s.ac.g.Bytes, gen: s.ac.g.Gen}
	s.ac.m = make(map[string]*centry)
	s.ac.g.Refund(s.ac.g.Bytes)
	return wc
}

// AdoptCache installs a previously detached cache into a simulator that
// has not yet recorded or replayed anything. The caller must guarantee wc
// was built over the same program and engine configuration (uarch config,
// step granularity, cache cap) — entries keyed by another program's
// pipeline states would replay the wrong actions. It refuses (returning
// false) a nil/empty cache, a cache exceeding this simulator's cap, or a
// simulator whose own cache is no longer empty. The adopted occupancy
// counts toward clear-when-full but not toward this run's TotalMemoBytes:
// stats stay per-run while the occupancy gauge stays truthful.
func (s *Sim) AdoptCache(wc *WarmCache) bool {
	if wc == nil || len(wc.m) == 0 || len(s.ac.m) != 0 {
		return false
	}
	if s.ac.g.CapBytes > 0 && wc.bytes > s.ac.g.CapBytes {
		return false
	}
	if s.steps != 0 || s.replays != 0 {
		return false
	}
	s.ac.m = wc.m
	s.ac.g.Bytes = wc.bytes
	// Preserve the generation the entries' internal links were tagged
	// with, so replay-cached links re-validate instead of all missing.
	s.ac.g.Gen = wc.gen
	wc.m = nil
	wc.bytes = 0
	return true
}
