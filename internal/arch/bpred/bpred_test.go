package bpred

import (
	"testing"

	"facile/internal/isa"
)

func beq(off int64) isa.Inst { return isa.Inst{Op: isa.OpBeq, Imm: off} }

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x10000)
	in := beq(10)
	target := isa.BranchTarget(in, pc)
	mis := 0
	for i := 0; i < 100; i++ {
		pred := p.Predict(in, pc)
		if pred != target {
			mis++
		}
		p.Update(in, pc, target, pred != target)
	}
	// gshare warm-up: the first ~historyBits predictions land on distinct
	// cold counters, each needing two updates to saturate taken.
	if mis > 14 {
		t.Fatalf("%d mispredictions on an always-taken branch", mis)
	}
}

func TestLearnsAlternatingWithHistory(t *testing.T) {
	// gshare's global history should capture a strict alternation.
	p := New(DefaultConfig())
	pc := uint64(0x20000)
	in := beq(4)
	target := isa.BranchTarget(in, pc)
	mis := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		actual := pc + 4
		if taken {
			actual = target
		}
		pred := p.Predict(in, pc)
		if pred != actual {
			mis++
		}
		p.Update(in, pc, actual, pred != actual)
	}
	if mis > 100 {
		t.Fatalf("%d/400 mispredictions on an alternating branch; history not working", mis)
	}
}

func TestReturnAddressStack(t *testing.T) {
	p := New(DefaultConfig())
	call := isa.Inst{Op: isa.OpJal, Imm: 100}
	ret := isa.Inst{Op: isa.OpJr, Rs1: isa.RegRA, HasImm: true}
	// call from three sites, return in LIFO order
	sites := []uint64{0x1000, 0x2000, 0x3000}
	for _, pc := range sites {
		p.Predict(call, pc) // pushes pc+4
	}
	for i := len(sites) - 1; i >= 0; i-- {
		got := p.Predict(ret, 0x9000)
		if got != sites[i]+4 {
			t.Fatalf("RAS predicted %#x, want %#x", got, sites[i]+4)
		}
	}
}

func TestBTBLearnsIndirectTarget(t *testing.T) {
	p := New(DefaultConfig())
	jalr := isa.Inst{Op: isa.OpJalr, Rd: 31, Rs1: 5, HasImm: true}
	pc := uint64(0x4000)
	target := uint64(0x7777000)
	if got := p.Predict(jalr, pc); got == target {
		t.Fatal("cold BTB should not know the target")
	}
	p.Update(jalr, pc, target, true)
	if got := p.Predict(jalr, pc); got != target {
		t.Fatalf("BTB predicted %#x, want %#x", got, target)
	}
}

func TestDirectJumpsAlwaysRight(t *testing.T) {
	p := New(DefaultConfig())
	j := isa.Inst{Op: isa.OpJ, Imm: -8}
	pc := uint64(0x5000)
	if got := p.Predict(j, pc); got != isa.BranchTarget(j, pc) {
		t.Fatalf("direct jump predicted %#x", got)
	}
}

func TestStatsAndReset(t *testing.T) {
	p := New(DefaultConfig())
	in := beq(4)
	p.Predict(in, 0x100)
	p.Update(in, 0x100, 0x104, true)
	if p.Lookups != 1 || p.Mispredict != 1 {
		t.Fatalf("stats %d/%d", p.Lookups, p.Mispredict)
	}
	p.Reset()
	if p.Lookups != 0 || p.Mispredict != 0 {
		t.Fatal("reset did not clear stats")
	}
}
