// Package bpred implements the branch predictor used by the out-of-order
// micro-architecture models: a gshare-style table of 2-bit saturating
// counters, a direct-mapped branch target buffer, and a return address
// stack. Following the paper (§6.2), the predictor is *not* memoized by the
// fast-forwarding simulators — it is external, dynamic state whose
// predictions are verified during replay.
package bpred

import "facile/internal/isa"

// Config sizes the predictor structures. Sizes must be powers of two.
type Config struct {
	CounterBits int // log2 number of 2-bit counters
	BTBBits     int // log2 number of BTB entries
	RASDepth    int // return address stack depth
}

// DefaultConfig mirrors a mid-1990s out-of-order core (R10000-like).
func DefaultConfig() Config {
	return Config{CounterBits: 12, BTBBits: 10, RASDepth: 8}
}

// Predictor is the branch prediction unit.
type Predictor struct {
	cfg      Config
	counters []uint8
	history  uint64
	btbTag   []uint64
	btbDst   []uint64
	ras      []uint64
	rasTop   int

	// Stats
	Lookups    uint64
	Mispredict uint64
}

// New builds a predictor for cfg.
func New(cfg Config) *Predictor {
	return &Predictor{
		cfg:      cfg,
		counters: make([]uint8, 1<<cfg.CounterBits),
		btbTag:   make([]uint64, 1<<cfg.BTBBits),
		btbDst:   make([]uint64, 1<<cfg.BTBBits),
		ras:      make([]uint64, cfg.RASDepth),
	}
}

// Reset clears all prediction state.
func (p *Predictor) Reset() {
	for i := range p.counters {
		p.counters[i] = 0
	}
	for i := range p.btbTag {
		p.btbTag[i] = 0
		p.btbDst[i] = 0
	}
	p.history, p.rasTop = 0, 0
	p.Lookups, p.Mispredict = 0, 0
}

// historyBits bounds the gshare global history (longer histories learn
// more patterns but warm up slower; 8 is a classic choice).
const historyBits = 8

func (p *Predictor) ctrIndex(pc uint64) uint64 {
	return (pc>>2 ^ (p.history & (1<<historyBits - 1))) & uint64(len(p.counters)-1)
}

func (p *Predictor) btbIndex(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(p.btbTag)-1)
}

// Predict returns the predicted next PC for the control instruction in at
// pc. For non-control instructions it returns pc+4.
func (p *Predictor) Predict(in isa.Inst, pc uint64) uint64 {
	p.Lookups++
	switch isa.Classify(in.Op) {
	case isa.ClassBranch:
		if p.counters[p.ctrIndex(pc)] >= 2 {
			return isa.BranchTarget(in, pc)
		}
		return pc + 4
	case isa.ClassJump:
		switch in.Op {
		case isa.OpJ, isa.OpJal:
			if in.Op == isa.OpJal {
				p.push(pc + 4)
			}
			return isa.BranchTarget(in, pc)
		case isa.OpJalr:
			p.push(pc + 4)
			return p.btbLookup(pc)
		default: // jr: treat a return-register jump as a return
			if in.Rs1 == isa.RegRA {
				return p.pop()
			}
			return p.btbLookup(pc)
		}
	default:
		return pc + 4
	}
}

func (p *Predictor) btbLookup(pc uint64) uint64 {
	i := p.btbIndex(pc)
	if p.btbTag[i] == pc {
		return p.btbDst[i]
	}
	return pc + 4 // no target known: predict fall-through (will mispredict)
}

func (p *Predictor) push(v uint64) {
	p.ras[p.rasTop%len(p.ras)] = v
	p.rasTop++
}

func (p *Predictor) pop() uint64 {
	if p.rasTop == 0 {
		return 0
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)]
}

// Update trains the predictor with the resolved outcome of the control
// instruction in at pc. actual is the resolved next PC; mispredicted
// reports whether the earlier prediction was wrong (for stats).
func (p *Predictor) Update(in isa.Inst, pc, actual uint64, mispredicted bool) {
	if mispredicted {
		p.Mispredict++
	}
	switch isa.Classify(in.Op) {
	case isa.ClassBranch:
		i := p.ctrIndex(pc)
		taken := actual != pc+4
		if taken {
			if p.counters[i] < 3 {
				p.counters[i]++
			}
		} else if p.counters[i] > 0 {
			p.counters[i]--
		}
		p.history = p.history<<1 | b2u(taken)
	case isa.ClassJump:
		if in.Op == isa.OpJalr || (in.Op == isa.OpJr && in.Rs1 != isa.RegRA) {
			i := p.btbIndex(pc)
			p.btbTag[i] = pc
			p.btbDst[i] = actual
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
