package bpred

import (
	"fmt"

	"facile/internal/snapshot"
)

// SaveState serializes the predictor: counter table, global history, BTB,
// return address stack, and lookup statistics (deterministic simulation
// outputs, part of the hashed STATE section).
func (p *Predictor) SaveState(w *snapshot.Writer) {
	w.Bytes(p.counters)
	w.U64(p.history)
	w.U64s(p.btbTag)
	w.U64s(p.btbDst)
	w.U64s(p.ras)
	w.U64(uint64(p.rasTop))
	w.U64(p.Lookups)
	w.U64(p.Mispredict)
}

// LoadState restores a predictor built with the same configuration.
func (p *Predictor) LoadState(r *snapshot.Reader) error {
	counters := r.Bytes()
	if r.Err() == nil && len(counters) != len(p.counters) {
		return fmt.Errorf("bpred: snapshot has %d counters, configured %d", len(counters), len(p.counters))
	}
	copy(p.counters, counters)
	p.history = r.U64()
	btbTag := r.U64s()
	btbDst := r.U64s()
	ras := r.U64s()
	if r.Err() == nil && (len(btbTag) != len(p.btbTag) || len(btbDst) != len(p.btbDst) || len(ras) != len(p.ras)) {
		return fmt.Errorf("bpred: snapshot table sizes do not match configuration")
	}
	copy(p.btbTag, btbTag)
	copy(p.btbDst, btbDst)
	copy(p.ras, ras)
	p.rasTop = int(r.U64())
	p.Lookups = r.U64()
	p.Mispredict = r.U64()
	return r.Err()
}
