package rt

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(4, 2)
	q.Push([]int64{1, 10})
	q.Push([]int64{2, 20})
	if q.Size() != 2 || q.Front(0) != 1 || q.Front(1) != 10 {
		t.Fatalf("front: %d %d", q.Front(0), q.Front(1))
	}
	if q.Pop() != 1 {
		t.Fatal("pop value")
	}
	if q.Front(0) != 2 || q.Size() != 1 {
		t.Fatal("after pop")
	}
}

func TestQueueCapacity(t *testing.T) {
	q := NewQueue(2, 1)
	q.Push([]int64{1})
	q.Push([]int64{2})
	if !q.Full() {
		t.Fatal("should be full")
	}
	q.Push([]int64{3}) // dropped
	if q.Size() != 2 || q.Get(1, 0) != 2 {
		t.Fatal("overflow push must be dropped")
	}
}

func TestQueueGetSetBounds(t *testing.T) {
	q := NewQueue(4, 2)
	q.Push([]int64{5, 6})
	if q.Get(1, 0) != 0 || q.Get(0, 2) != 0 || q.Get(-1, 0) != 0 {
		t.Fatal("out-of-range get must read 0")
	}
	q.Set(5, 0, 99) // no-op
	q.Set(0, 1, 42)
	if q.Get(0, 1) != 42 {
		t.Fatal("set failed")
	}
	if q.Pop(); q.Pop() != 0 {
		t.Fatal("pop of empty must return 0")
	}
}

func TestQueueSnapshotRestore(t *testing.T) {
	q := NewQueue(4, 3)
	q.Push([]int64{1, 2, 3})
	q.Push([]int64{4, 5, 6})
	snap := q.Snapshot()
	q.Pop()
	q.Push([]int64{7, 8, 9})
	q.Restore(snap)
	if q.Size() != 2 || q.Get(0, 0) != 1 || q.Get(1, 2) != 6 {
		t.Fatal("restore mismatch")
	}
}

// Property: buildKey/parseKey round-trip arbitrary argument vectors and
// queue contents — the invertibility miss recovery depends on.
func TestKeyCodecRoundTrip(t *testing.T) {
	f := func(a, b int64, entries []int64) bool {
		argI := []int64{a, b}
		q := NewQueue(8, 2)
		for i := 0; i+1 < len(entries) && !q.Full(); i += 2 {
			q.Push([]int64{entries[i], entries[i+1]})
		}
		key := buildKey(argI, []*Queue{q})
		wantQ := q.Snapshot()

		gotI := make([]int64, 2)
		gotQ := NewQueue(8, 2)
		if !parseKey(key, gotI, []*Queue{gotQ}) {
			return false
		}
		return gotI[0] == a && gotI[1] == b && reflect.DeepEqual(gotQ.Snapshot(), wantQ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct argument vectors produce distinct keys (no aliasing
// between cache entries).
func TestKeyInjectivity(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		k1 := buildKey([]int64{a1, a2}, nil)
		k2 := buildKey([]int64{b1, b2}, nil)
		if a1 == b1 && a2 == b2 {
			return k1 == k2
		}
		return k1 != k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseKeyRejectsCorrupt(t *testing.T) {
	key := buildKey([]int64{1, 2}, nil)
	if parseKey(key+"x", make([]int64, 2), nil) {
		t.Fatal("accepted trailing garbage")
	}
	if parseKey(key[:len(key)-1], make([]int64, 2), nil) {
		t.Fatal("accepted truncated key")
	}
	// queue size exceeding capacity must be rejected
	big := NewQueue(1, 1)
	big.Push([]int64{1})
	k2 := buildKey(nil, []*Queue{big})
	small := NewQueue(1, 1)
	if !parseKey(k2, nil, []*Queue{small}) {
		t.Fatal("same-capacity queue should parse")
	}
}

func TestActionCacheClearGeneration(t *testing.T) {
	c := newACache(64, nil)
	e1 := &centry{key: "a"}
	c.put(e1)
	if c.get("a") != e1 {
		t.Fatal("lookup")
	}
	c.charge(e1, 1000) // exceed cap
	e2 := &centry{key: "b"}
	c.put(e2) // the overflowing put clears everything, e2 included
	if c.get("a") != nil || c.get("b") != nil {
		t.Fatal("clear-when-full must evict every entry, the overflowing one included")
	}
	if c.g.Gen != e1.gen+1 {
		t.Fatalf("generation not bumped: %d -> %d", e1.gen, c.g.Gen)
	}
	if c.g.Clears != 1 {
		t.Fatalf("clears = %d", c.g.Clears)
	}
	e3 := &centry{key: "c"}
	c.put(e3) // fits in the freshly cleared cache
	if c.get("c") != e3 {
		t.Fatal("post-clear insert missing")
	}
	if e3.gen != e1.gen+1 {
		t.Fatalf("post-clear generation: %d -> %d", e1.gen, e3.gen)
	}
}

func TestFindFork(t *testing.T) {
	n := &node{}
	n.forks = append(n.forks, nfork{val: 7, next: &node{blockID: 1}})
	n.forks = append(n.forks, nfork{val: -3, next: &node{blockID: 2}})
	if f, ok := n.findFork(7); !ok || f.blockID != 1 {
		t.Fatal("fork 7")
	}
	if f, ok := n.findFork(-3); !ok || f.blockID != 2 {
		t.Fatal("fork -3")
	}
	if _, ok := n.findFork(0); ok {
		t.Fatal("phantom fork")
	}
}
