package rt

// Warm-cache sharing for the Facile rt machines, mirroring
// internal/arch/fastsim: the specialized action cache is re-derivable
// acceleration state, so a finished machine's cache can seed a fresh
// machine running the same compiled description over the same program and
// options. Ownership of a WarmCache transfers on AdoptCache; it must never
// be adopted twice.

// WarmCache is a detached rt action cache.
type WarmCache struct {
	m     map[string]*centry
	bytes uint64
	gen   uint64
}

// Entries reports the number of cached entries.
func (wc *WarmCache) Entries() uint64 {
	if wc == nil {
		return 0
	}
	return uint64(len(wc.m))
}

// Bytes reports the occupancy charged for the cached entries.
func (wc *WarmCache) Bytes() uint64 {
	if wc == nil {
		return 0
	}
	return wc.bytes
}

// DetachCache removes and returns the machine's action cache, leaving an
// empty cache behind (occupancy refunded, monotonic totals kept). Returns
// nil when the cache holds nothing.
func (m *Machine) DetachCache() *WarmCache {
	if len(m.ac.m) == 0 {
		return nil
	}
	wc := &WarmCache{m: m.ac.m, bytes: m.ac.g.Bytes, gen: m.ac.g.Gen}
	m.ac.m = make(map[string]*centry)
	m.ac.g.Refund(m.ac.g.Bytes)
	return wc
}

// AdoptCache installs a previously detached cache into a machine that has
// not stepped yet. The caller must guarantee wc was built by the same
// compiled description over the same program and cap. Refuses a nil/empty
// cache, a cache exceeding this machine's cap, or a machine that already
// ran. Adopted occupancy counts toward clear-when-full but not toward this
// run's TotalMemoBytes.
func (m *Machine) AdoptCache(wc *WarmCache) bool {
	if wc == nil || len(wc.m) == 0 || len(m.ac.m) != 0 {
		return false
	}
	if m.ac.g.CapBytes > 0 && wc.bytes > m.ac.g.CapBytes {
		return false
	}
	if m.stats.SlowSteps != 0 || m.stats.Replays != 0 {
		return false
	}
	m.ac.m = wc.m
	m.ac.g.Bytes = wc.bytes
	m.ac.g.Gen = wc.gen
	wc.m = nil
	wc.bytes = 0
	return true
}
