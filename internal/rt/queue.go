// Package rt implements the Facile run-time system: the slow/complete
// interpreter, the fast/residual replayer, the specialized action cache
// that couples them, and the built-in data structures (double-ended
// queues, token streams backed by the target text).
package rt

import "fmt"

// Queue is Facile's built-in bounded queue of fixed-width integer tuples,
// used to model micro-architecture structures such as the paper's
// instruction queue. Queues passed as main parameters are run-time static:
// their contents are part of the specialized action cache key.
type Queue struct {
	width int
	cap   int
	data  []int64 // size*width values, front first
}

// NewQueue builds a queue with the given capacity (entries) and tuple
// width (fields per entry).
func NewQueue(capacity, width int) *Queue {
	return &Queue{width: width, cap: capacity, data: make([]int64, 0, capacity*width)}
}

// Size reports the number of entries.
func (q *Queue) Size() int { return len(q.data) / q.width }

// Width reports the tuple width.
func (q *Queue) Width() int { return q.width }

// Cap reports the capacity in entries.
func (q *Queue) Cap() int { return q.cap }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.Size() >= q.cap }

// Push appends one entry; it panics if vals has the wrong width and
// silently drops when full (Facile programs guard with ?full()).
func (q *Queue) Push(vals []int64) {
	if len(vals) != q.width {
		panic(fmt.Sprintf("rt: queue push width %d != %d", len(vals), q.width))
	}
	if q.Full() {
		return
	}
	q.data = append(q.data, vals...)
}

// Pop removes the front entry; out-of-range is a no-op returning 0.
func (q *Queue) Pop() int64 {
	if q.Size() == 0 {
		return 0
	}
	v := q.data[0]
	copy(q.data, q.data[q.width:])
	q.data = q.data[:len(q.data)-q.width]
	return v
}

// Get reads field f of entry i (0 = front); out-of-range reads 0.
func (q *Queue) Get(i, f int64) int64 {
	if i < 0 || f < 0 || int(i) >= q.Size() || int(f) >= q.width {
		return 0
	}
	return q.data[int(i)*q.width+int(f)]
}

// Set writes field f of entry i; out-of-range is a no-op.
func (q *Queue) Set(i, f, v int64) {
	if i < 0 || f < 0 || int(i) >= q.Size() || int(f) >= q.width {
		return
	}
	q.data[int(i)*q.width+int(f)] = v
}

// Front reads field f of the front entry.
func (q *Queue) Front(f int64) int64 { return q.Get(0, f) }

// Clear empties the queue.
func (q *Queue) Clear() { q.data = q.data[:0] }

// Snapshot returns a copy of the contents (for key building and tests).
func (q *Queue) Snapshot() []int64 { return append([]int64(nil), q.data...) }

// Restore replaces the contents (for miss recovery).
func (q *Queue) Restore(data []int64) {
	q.data = q.data[:0]
	q.data = append(q.data, data...)
}
