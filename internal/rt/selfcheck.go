package rt

import (
	"fmt"

	"facile/internal/faults"
	"facile/internal/lang/ir"
	"facile/internal/obs"
)

// Self-check mode: a sampled fraction of replayable steps is re-executed on
// the slow simulator instead of replayed, with a verifying sink that walks
// the recorded action chain alongside the live run. The step's effects
// always come from the slow path — the ground truth — so self-checking
// never perturbs results; it only detects entries that would have replayed
// wrongly.

type scMode int

const (
	scVerify scMode = iota // comparing the live step against the chain
	scRecord               // past a benign first-time value: recording a new fork
	scLive                 // diverged: entry invalidated, finish unrecorded
)

// rchecker is the self-check stepSink. A recorded value with no matching
// fork is a benign first-time result — the checker forks the verified node
// and records the rest of the step, exactly as miss recovery would. Any
// structural disagreement (block sequence, placeholder data, successor key)
// is a fault: the entry is invalidated and the rest of the step runs live,
// unrecorded.
type rchecker struct {
	m       *Machine
	ent     *centry
	cur     *node
	di      int  // compare index into cur.data
	entered bool // enterBlock seen at least once
	moved   bool // cur already advanced by a fork match
	rec     *recorder
	mode    scMode
}

func (c *rchecker) diverge(detail string) {
	m := c.m
	m.fault(faults.SelfCheckDivergence, detail)
	m.stats.SelfCheckDivergences++
	m.stats.DegradedSteps++
	m.ac.invalidate(c.ent)
	c.mode = scLive
}

func (c *rchecker) enterBlock(bi int, blk *ir.Block) {
	switch c.mode {
	case scLive:
		return
	case scRecord:
		c.rec.enterBlock(bi, blk)
		return
	}
	if c.entered && !c.moved {
		c.cur = c.cur.next
	}
	c.entered = true
	c.moved = false
	n := c.cur
	if n == nil {
		c.diverge("live step entered a block past the end of the recorded chain")
		return
	}
	if int(n.blockID) != bi {
		c.diverge(fmt.Sprintf("recorded block %d, live block %d", n.blockID, bi))
		return
	}
	if len(n.data) != blk.NPh {
		c.diverge(fmt.Sprintf("recorded %d placeholder values, block %d needs %d",
			len(n.data), bi, blk.NPh))
		return
	}
	c.di = 0
}

func (c *rchecker) checkPh(v int64) bool {
	n := c.cur
	if c.di >= len(n.data) || n.data[c.di] != v {
		c.diverge("recorded placeholder value disagrees with live step")
		return false
	}
	c.di++
	return true
}

func (c *rchecker) ph(di *ir.DynInst, vregs []int64) {
	switch c.mode {
	case scLive:
		return
	case scRecord:
		c.rec.ph(di, vregs)
		return
	}
	// Placeholder values are deterministic along the fork path the live run
	// selects, so any mismatch is corruption, not a first-time value.
	if di.A.Kind == ir.SrcPh && !c.checkPh(vregs[di.A.VReg]) {
		return
	}
	if di.B.Kind == ir.SrcPh && !c.checkPh(vregs[di.B.VReg]) {
		return
	}
	for _, a := range di.Args {
		if a.Kind == ir.SrcPh && !c.checkPh(vregs[a.VReg]) {
			return
		}
	}
}

func (c *rchecker) fork(v int64) {
	switch c.mode {
	case scLive:
		return
	case scRecord:
		c.rec.fork(v)
		return
	}
	n := c.cur
	next, ok := n.findFork(v)
	if ok {
		c.cur = next
		c.moved = true
		return
	}
	// Benign first-time value: extend the verified entry from here, as miss
	// recovery would (the slow run is already producing the new path).
	c.m.stats.Misses++
	c.m.obs.Event(obs.EvMidStepMiss, 0)
	n.forks = append(n.forks, nfork{val: v})
	c.m.ac.charge(c.ent, forkBytes)
	c.rec = &recorder{m: c.m, ent: c.ent, tail: &n.forks[len(n.forks)-1].next}
	c.mode = scRecord
}

func (c *rchecker) ret(key string) {
	switch c.mode {
	case scLive:
		return
	case scRecord:
		c.rec.ret(key)
		return
	}
	n := c.cur
	if n == nil {
		c.diverge("live step ended past the recorded chain")
		return
	}
	if n.nextKey != key {
		c.diverge("recorded successor key disagrees with live step")
	}
}

// selfCheckStep re-executes one replayable step on the slow simulator with
// the verifying sink attached.
func (m *Machine) selfCheckStep(e *centry) error {
	m.stats.SelfChecks++
	if !parseKey(m.curKey, m.argI, m.argQ) {
		return m.degradeLost(e, "unparseable step key at self-check")
	}
	ck := &rchecker{m: m, ent: e, cur: e.first}
	return m.runStepSlow(ck, nil)
}
