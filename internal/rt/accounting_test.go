package rt

import (
	"fmt"
	"testing"
)

func sumEntryBytes(c *acache) uint64 {
	var n uint64
	for _, e := range c.m {
		n += e.bytes
	}
	return n
}

func TestInvalidationRefundsEntryBytes(t *testing.T) {
	c := newACache(0, nil)
	var ents []*centry
	for i := 0; i < 6; i++ {
		e := &centry{key: fmt.Sprintf("key%d", i)}
		c.put(e)
		c.charge(e, uint64(64*(i+1)))
		ents = append(ents, e)
	}
	for _, i := range []int{0, 2, 5} {
		c.invalidate(ents[i])
	}
	if want := sumEntryBytes(c); c.g.Bytes != want {
		t.Fatalf("after invalidations: occupancy %d, surviving entries hold %d", c.g.Bytes, want)
	}
	if len(c.m) != 3 {
		t.Fatalf("expected 3 surviving entries, have %d", len(c.m))
	}
	// Invalidating a dead entry again must not refund twice.
	before := c.g.Bytes
	c.invalidate(ents[0])
	if c.g.Bytes != before {
		t.Fatalf("double invalidation changed occupancy: %d -> %d", before, c.g.Bytes)
	}
	if c.g.Invalidations != 4 {
		t.Fatalf("invalidations = %d, want 4", c.g.Invalidations)
	}
	// Overwriting a key refunds the replaced entry's bytes.
	repl := &centry{key: "key1"}
	c.put(repl)
	if want := sumEntryBytes(c); c.g.Bytes != want {
		t.Fatalf("after overwrite: occupancy %d, entries hold %d", c.g.Bytes, want)
	}
	// A stale invalidation after a clear must not underflow the fresh gauge.
	c.clearNow()
	c.invalidate(ents[3])
	if c.g.Bytes != 0 {
		t.Fatalf("post-clear stale invalidation left occupancy %d", c.g.Bytes)
	}
}
