package rt_test

import (
	"reflect"
	"testing"

	"facile/internal/core"
	"facile/internal/faults"
	"facile/internal/rt"
)

// The recovery contract under injected faults: the run must not panic, the
// simulated results (globals and the extern-observed sequence) must still
// match the non-memoizing run exactly, and the fault counters must show the
// recovery path actually fired.

var rtFaultWorkloads = []struct {
	name string
	src  string
}{
	{"branchy-loop", `
val acc = 0;
val ticks = 0;
extern next(0);
extern emit(1);

fun main(x) {
    ticks = ticks + 1;          // dynamic
    val v = next();             // dynamic result feeds a forked branch
    if (v % 2 == 0) { acc = acc + x; }
    else            { acc = acc + 1; }
    emit(acc);
    val y = x + 1;
    if (y > 9) { y = 0; }
    set_args(y);
}
`},
	{"queue-keyed", `
val acc = 0;
val ticks = 0;
extern next(0);
extern emit(1);

fun main(q: queue(4, 2), step) {
    ticks = ticks + 1;
    if (q?full()) {
        val a = q?front(0);
        q?pop();
        val v = next();
        if (v % 2 == 0) { acc = acc + a; }
        else            { acc = acc + 1; }
        emit(acc);
    }
    q?push(step, step * step % 5);
    set_args(q, (step + 1) % 4);
}
`},
}

// runFaultWorkload runs one workload for 400 steps and returns the machine
// plus the emitted sequence. The next() extern cycles deterministically so
// plain and faulty runs see identical dynamic inputs.
func runFaultWorkload(t *testing.T, src string, opt rt.Options) (*rt.Machine, []int64) {
	t.Helper()
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := sim.NewMachine(core.NullText(), opt)
	var out []int64
	i := int64(0)
	m.RegisterExtern("next", func([]int64) int64 {
		i++
		return i * i % 7
	})
	m.RegisterExtern("emit", func(a []int64) int64 {
		out = append(out, a[0])
		return 0
	})
	args := make([]int64, 1)
	if err := m.SetIntArgs(args...); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(400); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, out
}

func sameResults(t *testing.T, plain, faulty *rt.Machine, outP, outF []int64) {
	t.Helper()
	if !reflect.DeepEqual(outP, outF) {
		t.Errorf("emit sequences differ:\n  plain  %v\n  faulty %v", outP, outF)
	}
	for _, g := range []string{"acc", "ticks"} {
		vp, _ := plain.Global(g)
		vf, _ := faulty.Global(g)
		if vp != vf {
			t.Errorf("global %s: plain %d, faulty %d", g, vp, vf)
		}
	}
}

func TestInjectedFaultRecovery(t *testing.T) {
	cases := []struct {
		name  string
		kinds []faults.Injection
		check func(t *testing.T, st rt.Stats)
	}{
		{
			name:  "break-chain",
			kinds: []faults.Injection{faults.InjBreakChain},
			check: func(t *testing.T, st rt.Stats) {
				if st.Faults == 0 || st.DegradedSteps == 0 || st.Invalidations == 0 {
					t.Errorf("expected broken-chain faults to degrade steps: %+v", st)
				}
			},
		},
		{
			name:  "flip-fork",
			kinds: []faults.Injection{faults.InjFlipFork},
			check: func(t *testing.T, st rt.Stats) {
				if st.Misses == 0 {
					t.Errorf("flipped forks should surface as value misses: %+v", st)
				}
			},
		},
		{
			name:  "truncate",
			kinds: []faults.Injection{faults.InjTruncate},
			check: func(t *testing.T, st rt.Stats) {
				if st.Faults == 0 || st.DegradedSteps == 0 {
					t.Errorf("expected truncation faults to degrade steps: %+v", st)
				}
			},
		},
		{
			name:  "gen-bump",
			kinds: []faults.Injection{faults.InjGenBump},
			check: func(t *testing.T, st rt.Stats) {
				if st.CacheClears == 0 {
					t.Errorf("expected injected cache clears: %+v", st)
				}
			},
		},
		{
			name: "all-kinds",
			kinds: []faults.Injection{
				faults.InjBreakChain, faults.InjFlipFork,
				faults.InjTruncate, faults.InjGenBump,
			},
			check: func(t *testing.T, st rt.Stats) {
				if st.Faults == 0 {
					t.Errorf("expected at least one fault: %+v", st)
				}
			},
		},
	}
	for _, w := range rtFaultWorkloads {
		for _, tc := range cases {
			t.Run(w.name+"/"+tc.name, func(t *testing.T) {
				plain, outP := runFaultWorkload(t, w.src, rt.Options{Memoize: false})
				ij := faults.NewInjector(7, 5, tc.kinds...)
				faulty, outF := runFaultWorkload(t, w.src, rt.Options{Memoize: true, Inject: ij})
				sameResults(t, plain, faulty, outP, outF)
				if ij.Fired() == 0 {
					t.Fatal("injector never fired")
				}
				tc.check(t, faulty.Stats())
			})
		}
	}
}

func TestSelfCheckCleanRun(t *testing.T) {
	// With no corruption, self-checking must observe zero divergences and
	// must not perturb results.
	for _, w := range rtFaultWorkloads {
		t.Run(w.name, func(t *testing.T) {
			plain, outP := runFaultWorkload(t, w.src, rt.Options{Memoize: false})
			memo, outM := runFaultWorkload(t, w.src, rt.Options{Memoize: true, SelfCheck: 0.5})
			sameResults(t, plain, memo, outP, outM)
			st := memo.Stats()
			if st.SelfChecks == 0 {
				t.Error("no steps were self-checked")
			}
			if st.SelfCheckDivergences != 0 {
				t.Errorf("clean run diverged %d times (last: %v)",
					st.SelfCheckDivergences, memo.LastFault())
			}
		})
	}
}

func TestSelfCheckCatchesCorruption(t *testing.T) {
	// Structural corruption that a full self-check sweep must detect:
	// severed chains and truncated records both disagree with the live
	// slow step.
	for _, w := range rtFaultWorkloads {
		t.Run(w.name, func(t *testing.T) {
			plain, outP := runFaultWorkload(t, w.src, rt.Options{Memoize: false})
			ij := faults.NewInjector(11, 7, faults.InjBreakChain, faults.InjTruncate)
			memo, outM := runFaultWorkload(t, w.src, rt.Options{
				Memoize:   true,
				SelfCheck: 1.0,
				Inject:    ij,
			})
			sameResults(t, plain, memo, outP, outM)
			st := memo.Stats()
			if ij.Fired() == 0 {
				t.Fatal("injector never fired")
			}
			if st.SelfCheckDivergences == 0 {
				t.Errorf("self-check missed injected corruption: %+v", st)
			}
			if st.Invalidations == 0 {
				t.Errorf("divergence must invalidate the entry: %+v", st)
			}
		})
	}
}

func TestReplayNodeWatchdog(t *testing.T) {
	// An absurdly low node watchdog forces every replay to degrade
	// mid-step; results must still match the non-memoizing run exactly.
	for _, w := range rtFaultWorkloads {
		t.Run(w.name, func(t *testing.T) {
			plain, outP := runFaultWorkload(t, w.src, rt.Options{Memoize: false})
			memo, outM := runFaultWorkload(t, w.src, rt.Options{Memoize: true, MaxReplayNodes: 2})
			sameResults(t, plain, memo, outP, outM)
			st := memo.Stats()
			if st.WatchdogTrips == 0 || st.DegradedSteps == 0 {
				t.Errorf("expected watchdog trips to degrade steps: %+v", st)
			}
		})
	}
}
