package rt_test

import (
	"reflect"
	"testing"

	"facile/internal/core"
	"facile/internal/rt"
)

// TestWarmCacheAdoption runs a memoizing machine, detaches its action
// cache, adopts it into a fresh machine, and checks the warm machine
// replays from the first step while computing identical results.
func TestWarmCacheAdoption(t *testing.T) {
	sim, err := core.CompileSource(counterSrc, core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	const steps = 100
	run := func(wc *rt.WarmCache) (*rt.Machine, []int64) {
		var emitted []int64
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: true})
		if err := m.RegisterExtern("emit", func(a []int64) int64 {
			emitted = append(emitted, a[0])
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		if err := m.SetIntArgs(0); err != nil {
			t.Fatal(err)
		}
		if wc != nil && !m.AdoptCache(wc) {
			t.Fatal("AdoptCache refused a valid warm cache")
		}
		if err := m.Run(steps); err != nil {
			t.Fatal(err)
		}
		return m, emitted
	}

	cold, coldOut := run(nil)
	coldStats := cold.Stats()
	wc := cold.DetachCache()
	if wc == nil || wc.Entries() == 0 {
		t.Fatalf("detached cache empty: %+v", wc)
	}
	if got := cold.Stats().CacheBytes; got != 0 {
		t.Errorf("occupancy not refunded on detach: %d bytes", got)
	}

	warm, warmOut := run(wc)
	warmStats := warm.Stats()
	if !reflect.DeepEqual(coldOut, warmOut) {
		t.Errorf("warm emitted %v != cold %v", warmOut, coldOut)
	}
	if warmStats.SlowSteps >= coldStats.SlowSteps {
		t.Errorf("warm ran %d slow steps, expected fewer than cold %d",
			warmStats.SlowSteps, coldStats.SlowSteps)
	}
	if warmStats.Replays <= coldStats.Replays {
		t.Errorf("warm replayed %d steps, expected more than cold %d",
			warmStats.Replays, coldStats.Replays)
	}
	if warmStats.TotalMemoBytes >= coldStats.TotalMemoBytes {
		t.Errorf("warm memoized %d bytes, expected less than cold %d",
			warmStats.TotalMemoBytes, coldStats.TotalMemoBytes)
	}
}
