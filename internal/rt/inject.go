package rt

import "facile/internal/faults"

// Deterministic fault injection: corrupt a cache entry just before it
// replays, so tests can drive every recovery path on demand. The corruption
// mirrors what a real defect (memory error, stale pointer, encoding bug)
// would produce; recovery must keep simulated results identical to the
// slow simulator's.

// spineNext follows the recorded chain's spine: the next link for
// sequential nodes, the first fork branch otherwise.
func spineNext(n *node) *node {
	if n.next != nil {
		return n.next
	}
	if len(n.forks) > 0 {
		return n.forks[0].next
	}
	return nil
}

func (m *Machine) injectFault(e *centry, inj faults.Injection) {
	// Any mutation of the recorded chain invalidates the derived compiled
	// state: bump the entry's version so stale superinstructions are
	// discarded and the corruption is re-validated on the next replay.
	e.cver++
	ij := m.opt.Inject
	switch inj {
	case faults.InjBreakChain:
		// Sever a sequential link mid-chain (BrokenChain on replay).
		var cands []*node
		for n, hops := e.first, 0; n != nil && hops < 64; hops++ {
			if n.next != nil {
				cands = append(cands, n)
			}
			n = spineNext(n)
		}
		if len(cands) == 0 {
			e.first = nil
			return
		}
		cands[int(ij.Rand()%uint64(len(cands)))].next = nil

	case faults.InjFlipFork:
		// Corrupt a recorded dynamic-result value so the live value misses
		// its fork: recovery treats it as a benign first-time result.
		for n, hops := e.first, 0; n != nil && hops < 64; hops++ {
			if len(n.forks) > 0 {
				f := int(ij.Rand() % uint64(len(n.forks)))
				n.forks[f].val ^= 1 << 62
				return
			}
			n = spineNext(n)
		}
		e.first = nil

	case faults.InjTruncate:
		// Truncate recorded state: either a node's placeholder data (caught
		// by the per-node length check) or a step's successor key (caught by
		// validKey at the step boundary). The surviving key byte gets its
		// continuation bit set so the truncation can never still parse.
		wantKey := ij.Rand()&1 == 0
		var ret *node
		for n, hops := e.first, 0; n != nil && hops < 256; hops++ {
			if !wantKey && len(n.data) > 0 {
				n.data = n.data[:len(n.data)/2]
				return
			}
			if n.nextKey != "" {
				ret = n
			}
			n = spineNext(n)
		}
		if ret != nil && len(ret.nextKey) > 0 {
			b := []byte(ret.nextKey[:(len(ret.nextKey)+1)/2])
			b[len(b)-1] |= 0x80
			ret.nextKey = string(b)
			ret.link = nil // a cached link must not bypass the corrupt key
			return
		}
		e.first = nil

	case faults.InjGenBump:
		// Force a mid-replay generation bump, as clear-when-full would.
		m.ac.clearNow()
	}
}
