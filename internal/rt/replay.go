package rt

import (
	"fmt"

	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
)

// replayFrom is the fast/residual simulator: it walks recorded action
// nodes, executing only each block's dynamic segment (with run-time static
// placeholder values supplied from the cache) and verifying every dynamic
// result against the recorded forks. A value with no recorded successor is
// an action cache miss: the slow simulator is restored from the entry's
// key and re-run in recovery mode over the replayed path.
func (m *Machine) replayFrom(e *centry, maxSteps uint64) error {
	m.stepKey = e.key
	m.path = m.path[:0]
	n := e.first
	for {
		if n == nil {
			return fmt.Errorf("rt: broken action chain in cache")
		}
		blk := m.p.Blocks[n.blockID]
		ph := 0
		for i := range blk.Dyn {
			m.execDyn(&blk.Dyn[i], n.data, &ph)
		}
		m.stats.FastOps += uint64(len(blk.Dyn))
		switch blk.DynTerm {
		case ir.DTNone:
			n = n.next
		case ir.DTBr:
			v := int64(0)
			if m.vregs[blk.TermSrc.VReg] != 0 {
				v = 1
			}
			m.path = append(m.path, v)
			next, ok := n.findFork(v)
			if !ok {
				return m.missRecover(n)
			}
			n = next
		case ir.DTSetArg, ir.DTPin:
			v := m.vregs[blk.TermSrc.VReg]
			m.path = append(m.path, v)
			next, ok := n.findFork(v)
			if !ok {
				return m.missRecover(n)
			}
			n = next
		case ir.DTRet:
			m.stats.Replays++
			m.curKey = n.nextKey
			m.path = m.path[:0]
			if m.stop != nil && m.stop(m) {
				m.done = true
				return nil
			}
			if maxSteps > 0 && m.stats.SlowSteps+m.stats.Replays >= maxSteps {
				return nil
			}
			if n.link == nil || n.linkGen != m.ac.gen {
				le := m.ac.get(n.nextKey)
				if le == nil {
					// step-boundary miss: Run's loop restores the slow
					// simulator from curKey
					return nil
				}
				n.link = le
				n.linkGen = m.ac.gen
			}
			e = n.link
			m.stepKey = e.key
			n = e.first
		}
	}
}

// missRecover implements the paper's miss recovery: restore main's
// arguments from the entry's index key, attach a new fork for the
// unexpected dynamic result, and re-run the slow simulator in recovery
// mode consuming the replayed path.
func (m *Machine) missRecover(n *node) error {
	m.stats.Misses++
	if !parseKey(m.stepKey, m.argI, m.argQ) {
		return fmt.Errorf("rt: corrupt entry key during recovery")
	}
	v := m.path[len(m.path)-1]
	n.forks = append(n.forks, nfork{val: v})
	m.ac.charge(forkBytes)
	rec := &recorder{m: m, tail: &n.forks[len(n.forks)-1].next}
	return m.runStepSlow(rec, m.path)
}

// execDyn executes one dynamic instruction of the fast simulator, reading
// operands from dynamic vregs, recorded placeholders, or constants.
func (m *Machine) execDyn(di *ir.DynInst, data []int64, ph *int) {
	rd := func(s ir.Src) int64 {
		switch s.Kind {
		case ir.SrcVReg:
			return m.vregs[s.VReg]
		case ir.SrcPh:
			v := data[*ph]
			*ph++
			return v
		case ir.SrcConst:
			return s.Const
		}
		return 0
	}
	switch di.Op {
	case ir.Mov:
		m.vregs[di.D] = rd(di.A)
	case ir.Bin:
		a := rd(di.A)
		b := rd(di.B)
		m.vregs[di.D] = types.EvalBinary(token.Kind(di.Sub), a, b)
	case ir.Un:
		m.vregs[di.D] = evalUn(di.Sub, rd(di.A))
	case ir.Ext:
		m.vregs[di.D] = extend(rd(di.A), di.Imm, di.Sub == 1)
	case ir.LoadG:
		m.vregs[di.D] = m.globals[di.Imm]
	case ir.StoreG:
		m.globals[di.Imm] = rd(di.A)
	case ir.LoadA:
		arr := m.arrays[di.Imm]
		i := rd(di.A)
		if i >= 0 && i < int64(len(arr)) {
			m.vregs[di.D] = arr[i]
		} else {
			m.vregs[di.D] = 0
		}
	case ir.StoreA:
		arr := m.arrays[di.Imm]
		i := rd(di.A)
		val := rd(di.B)
		if i >= 0 && i < int64(len(arr)) {
			arr[i] = val
		}
	case ir.Fetch:
		m.vregs[di.D] = int64(m.text.FetchWord(uint64(rd(di.A))))
	case ir.QOp:
		// only dynamic (global) queues reach the fast simulator
		q := m.queue(di.QID)
		var res int64
		switch di.Sub {
		case ir.QSize:
			res = int64(q.Size())
		case ir.QPush:
			vals := make([]int64, len(di.Args))
			for i, a := range di.Args {
				vals[i] = rd(a)
			}
			q.Push(vals)
		case ir.QPop:
			res = q.Pop()
		case ir.QGet:
			res = q.Get(rd(di.A), rd(di.B))
		case ir.QSet:
			a, b := rd(di.A), rd(di.B)
			q.Set(a, b, rd(di.Args[0]))
		case ir.QFront:
			res = q.Front(rd(di.A))
		case ir.QFull:
			if q.Full() {
				res = 1
			}
		case ir.QClear:
			q.Clear()
		}
		if di.D >= 0 {
			m.vregs[di.D] = res
		}
	case ir.CallExt:
		fn := m.externs[di.Imm]
		args := make([]int64, len(di.Args))
		for i, a := range di.Args {
			args[i] = rd(a)
		}
		m.vregs[di.D] = fn(args)
	default:
		panic(fmt.Sprintf("rt: unexpected dynamic op %d", di.Op))
	}
}
