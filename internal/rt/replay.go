package rt

import (
	"fmt"

	"facile/internal/faults"
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
	"facile/internal/obs"
)

// replayFrom is the fast/residual simulator: it walks recorded action
// nodes, executing only each block's dynamic segment (with run-time static
// placeholder values supplied from the cache) and verifying every dynamic
// result against the recorded forks. A value with no recorded successor is
// an action cache miss: the slow simulator is restored from the entry's
// key and re-run in recovery mode over the replayed path.
//
// Structural faults — a severed chain, an out-of-range block reference, a
// truncated placeholder record, a runaway node count, or an unparseable
// successor key — never panic: the offending entry is invalidated, the
// partial replay is discarded, and the step finishes on the slow simulator
// (degradeStep / rekeyStep). m.nodes tracks how many action nodes the
// replay completed this step, so the degraded re-run knows exactly where to
// switch from skipping already-applied dynamic work to running live.
func (m *Machine) replayFrom(e *centry, maxSteps uint64) error {
	m.stepKey = e.key
	m.path = m.path[:0]
	m.nodes = 0
	n := e.first
	for {
		if n == nil {
			// Recording always seals a step with a DTRet node; a nil link
			// mid-chain means the entry is corrupt.
			m.fault(faults.BrokenChain, "nil action link before end of step")
			return m.degradeStep(e)
		}
		if m.compiled {
			// Compiled fast path: execute the superinstruction headed at n —
			// a pre-validated straight-line run of DTNone nodes — as one
			// fused call sequence. Built lazily per head node and discarded
			// whenever the entry's cver moves (injection, invalidation).
			fr := n.fused
			if fr == nil || n.fusedVer != e.cver {
				fr = m.buildFused(n)
				n.fused = fr
				n.fusedVer = e.cver
				if len(fr.steps) > 0 {
					m.cFusedRuns.Inc()
				}
			}
			if k := uint64(len(fr.steps)); k > 0 && m.nodes+k <= m.opt.MaxReplayNodes {
				// The bound keeps the watchdog exact: the interpreted loop
				// executes a node only while m.nodes < MaxReplayNodes, so a
				// run is dispatched only if its last node would still pass
				// that check; otherwise the nodes replay interpreted and the
				// watchdog trips at the identical count.
				for i := range fr.steps {
					st := &fr.steps[i]
					for _, fn := range st.fns {
						fn(m, st.data)
					}
				}
				m.stats.FastOps += fr.ops
				m.nodes += k
				m.cFusedDisp.Inc()
				m.cFusedNodes.Add(k)
				n = fr.end
				continue
			}
		}
		if m.nodes >= m.opt.MaxReplayNodes {
			// A cycle in a corrupted graph, or a runaway step.
			m.fault(faults.WatchdogReplay,
				fmt.Sprintf("replayed %d action nodes in one step", m.nodes))
			m.stats.WatchdogTrips++
			return m.degradeStep(e)
		}
		if n.blockID < 0 || int(n.blockID) >= len(m.p.Blocks) {
			m.fault(faults.BadAction,
				fmt.Sprintf("action references block %d of %d", n.blockID, len(m.p.Blocks)))
			return m.degradeStep(e)
		}
		blk := m.p.Blocks[n.blockID]
		if len(n.data) != blk.NPh {
			m.fault(faults.TruncatedData,
				fmt.Sprintf("action carries %d placeholder values, block %d needs %d",
					len(n.data), n.blockID, blk.NPh))
			return m.degradeStep(e)
		}
		for _, xi := range m.blkExt[n.blockID] {
			if m.externs[xi] == nil {
				m.fault(faults.BadAction,
					fmt.Sprintf("action needs unregistered extern %q", m.p.Externs[xi]))
				return m.degradeStep(e)
			}
		}
		ph := 0
		for i := range blk.Dyn {
			m.execDyn(&blk.Dyn[i], n.data, &ph)
		}
		m.stats.FastOps += uint64(len(blk.Dyn))
		switch blk.DynTerm {
		case ir.DTNone:
			n = n.next
			m.nodes++
		case ir.DTBr:
			v := int64(0)
			if m.vregs[blk.TermSrc.VReg] != 0 {
				v = 1
			}
			m.path = append(m.path, v)
			next, ok := n.findFork(v)
			if !ok {
				return m.missRecover(n, e)
			}
			n = next
			m.nodes++
		case ir.DTSetArg, ir.DTPin:
			v := m.vregs[blk.TermSrc.VReg]
			m.path = append(m.path, v)
			next, ok := n.findFork(v)
			if !ok {
				return m.missRecover(n, e)
			}
			n = next
			m.nodes++
		case ir.DTRet:
			// Vet the recorded successor key before adopting it: a corrupt
			// key caught here is recoverable (rekeyStep rebuilds it from the
			// replayed path); one caught after adoption is not.
			if !validKey(n.nextKey, len(m.argI), m.argQ) {
				m.fault(faults.CorruptKey, "recorded successor key does not parse")
				return m.rekeyStep(e)
			}
			m.stats.Replays++
			m.obs.Event(obs.EvStepReplayed, m.nodes)
			m.hStepNodes.Observe(m.nodes)
			m.curKey = n.nextKey
			m.path = m.path[:0]
			m.nodes = 0
			if m.stop != nil && m.stop(m) {
				m.done = true
				return nil
			}
			if maxSteps > 0 && m.stats.SlowSteps+m.stats.Replays >= maxSteps {
				return nil
			}
			if m.stepHook() {
				// Fault injection / self-check sampling are per-step
				// policies applied by the Run loop; hand each chained step
				// back instead of following the link directly.
				return nil
			}
			if n.link == nil || n.linkGen != m.ac.g.Gen {
				le := m.ac.get(n.nextKey)
				if le == nil {
					// step-boundary miss: Run's loop restores the slow
					// simulator from curKey
					return nil
				}
				n.link = le
				n.linkGen = m.ac.g.Gen
			}
			e = n.link
			m.stepKey = e.key
			n = e.first
		default:
			m.fault(faults.BadAction,
				fmt.Sprintf("unknown dynamic terminal %d", blk.DynTerm))
			return m.degradeStep(e)
		}
	}
}

// missRecover implements the paper's miss recovery: restore main's
// arguments from the entry's index key, attach a new fork for the
// unexpected dynamic result, and re-run the slow simulator in recovery
// mode consuming the replayed path. A recovery that disagrees with the
// replayed path (overrun or incomplete consumption) is a fault: the entry
// is invalidated and the half-recorded fork is dropped.
func (m *Machine) missRecover(n *node, e *centry) error {
	if len(m.path) == 0 {
		// Defensive: every dynamic-result terminator appends its value to
		// m.path before the fork lookup, so an empty path here means the
		// recorded chain and the replay disagree about the step's dynamic
		// structure. Recovery alignment needs the missing value, so this is
		// a structural fault, not a value miss: degrade instead of panicking
		// on untrusted cache data.
		m.fault(faults.BrokenChain, "mid-step miss with no replayed dynamic values")
		return m.degradeStep(e)
	}
	m.stats.Misses++
	m.obs.Event(obs.EvMidStepMiss, m.nodes)
	if !parseKey(m.stepKey, m.argI, m.argQ) {
		return m.degradeLost(e, "unparseable entry key at miss recovery")
	}
	v := m.path[len(m.path)-1]
	n.forks = append(n.forks, nfork{val: v})
	m.ac.charge(e, forkBytes)
	rec := &recorder{m: m, ent: e, tail: &n.forks[len(n.forks)-1].next}
	cur := &rcursor{path: m.path}
	if err := m.runStepSlow(rec, cur); err != nil {
		return err
	}
	if cur.overrun || cur.incomplete {
		kind := faults.RecoveryIncomplete
		detail := "recovery finished without reaching the miss point"
		if cur.overrun {
			kind = faults.RecoveryOverrun
			detail = "recovery cursor overran the replayed path"
		}
		m.fault(kind, detail)
		m.ac.invalidate(e)
		m.stats.DegradedSteps++
		// Drop the half-recorded fork so the dead entry can't replay it.
		n.forks = n.forks[:len(n.forks)-1]
	}
	return nil
}

// degradeStep abandons a partial replay after a structural fault: the
// offending entry is invalidated, main's arguments are restored from the
// entry's key, and the step re-runs in node-cursor recovery mode — skipping
// the dynamic blocks the replay already completed, consuming the dynamic
// values it produced, and going live at the fault point — so the step
// finishes on the always-correct slow path, unrecorded.
func (m *Machine) degradeStep(e *centry) error {
	m.stats.DegradedSteps++
	m.ac.invalidate(e)
	if !parseKey(m.stepKey, m.argI, m.argQ) {
		m.fault(faults.CorruptKey, "unparseable entry key during degradation")
		return m.runStepSlow(nil, nil)
	}
	cur := &rcursor{path: m.path, useNodes: true, nodes: m.nodes}
	if cur.nodes == 0 {
		cur.live = true // fault before any completed node: run fully live
	}
	if err := m.runStepSlow(nil, cur); err != nil {
		return err
	}
	if cur.overrun {
		m.fault(faults.RecoveryOverrun, "degraded re-run overran the replayed path")
	} else if cur.incomplete {
		m.fault(faults.RecoveryIncomplete, "degraded re-run ended before the fault point")
	}
	return nil
}

// rekeyStep handles a corrupt successor key discovered at a replayed step's
// end. The step's dynamic effects are already (correctly) applied, so the
// slow simulator re-runs it with a cursor that never goes live: run-time
// static code recomputes the argument state, the replayed path supplies the
// dynamic results, and the Ret rebuilds the successor key the recording
// lost.
func (m *Machine) rekeyStep(e *centry) error {
	m.stats.DegradedSteps++
	m.ac.invalidate(e)
	if !parseKey(m.stepKey, m.argI, m.argQ) {
		m.fault(faults.CorruptKey, "unparseable entry key during rekey")
		return m.runStepSlow(nil, nil)
	}
	cur := &rcursor{path: m.path, useNodes: true, rekey: true}
	if err := m.runStepSlow(nil, cur); err != nil {
		return err
	}
	if cur.overrun {
		m.fault(faults.RecoveryOverrun, "rekey re-run overran the replayed path")
	}
	return nil
}

// degradeLost is the last-resort fallback when even the entry's own key is
// unparseable: recovery alignment is impossible, so fault, invalidate, and
// finish the step live from the current (possibly stale) arguments rather
// than crash. Unreachable unless cache memory is corrupted between
// validation and use.
func (m *Machine) degradeLost(e *centry, detail string) error {
	m.fault(faults.CorruptKey, detail)
	m.ac.invalidate(e)
	m.stats.DegradedSteps++
	return m.runStepSlow(nil, nil)
}

// execDyn executes one dynamic instruction of the fast simulator, reading
// operands from dynamic vregs, recorded placeholders, or constants. Every
// access is guarded: recorded data is untrusted, and replay must degrade,
// not panic.
func (m *Machine) execDyn(di *ir.DynInst, data []int64, ph *int) {
	rd := func(s ir.Src) int64 {
		switch s.Kind {
		case ir.SrcVReg:
			return m.vregs[s.VReg]
		case ir.SrcPh:
			if *ph >= len(data) {
				return 0
			}
			v := data[*ph]
			*ph++
			return v
		case ir.SrcConst:
			return s.Const
		}
		return 0
	}
	switch di.Op {
	case ir.Mov:
		m.vregs[di.D] = rd(di.A)
	case ir.Bin:
		a := rd(di.A)
		b := rd(di.B)
		m.vregs[di.D] = types.EvalBinary(token.Kind(di.Sub), a, b)
	case ir.Un:
		m.vregs[di.D] = evalUn(di.Sub, rd(di.A))
	case ir.Ext:
		m.vregs[di.D] = extend(rd(di.A), di.Imm, di.Sub == 1)
	case ir.LoadG:
		m.vregs[di.D] = m.globals[di.Imm]
	case ir.StoreG:
		m.globals[di.Imm] = rd(di.A)
	case ir.LoadA:
		arr := m.arrays[di.Imm]
		i := rd(di.A)
		if i >= 0 && i < int64(len(arr)) {
			m.vregs[di.D] = arr[i]
		} else {
			m.vregs[di.D] = 0
		}
	case ir.StoreA:
		arr := m.arrays[di.Imm]
		i := rd(di.A)
		val := rd(di.B)
		if i >= 0 && i < int64(len(arr)) {
			arr[i] = val
		}
	case ir.Fetch:
		m.vregs[di.D] = int64(m.text.FetchWord(uint64(rd(di.A))))
	case ir.QOp:
		// only dynamic (global) queues reach the fast simulator
		q := m.queue(di.QID)
		var res int64
		switch di.Sub {
		case ir.QSize:
			res = int64(q.Size())
		case ir.QPush:
			vals := make([]int64, len(di.Args))
			for i, a := range di.Args {
				vals[i] = rd(a)
			}
			if len(vals) == q.Width() {
				q.Push(vals)
			}
		case ir.QPop:
			res = q.Pop()
		case ir.QGet:
			res = q.Get(rd(di.A), rd(di.B))
		case ir.QSet:
			a, b := rd(di.A), rd(di.B)
			q.Set(a, b, rd(di.Args[0]))
		case ir.QFront:
			res = q.Front(rd(di.A))
		case ir.QFull:
			if q.Full() {
				res = 1
			}
		case ir.QClear:
			q.Clear()
		}
		if di.D >= 0 {
			m.vregs[di.D] = res
		}
	case ir.CallExt:
		fn := m.externs[di.Imm]
		args := make([]int64, len(di.Args))
		for i, a := range di.Args {
			args[i] = rd(a)
		}
		if fn != nil {
			m.vregs[di.D] = fn(args)
		} else {
			m.vregs[di.D] = 0
		}
	}
}
