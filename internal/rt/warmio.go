package rt

// Warm-cache serialization for the Facile rt machines, mirroring
// internal/arch/fastsim/warmio.go: a detached action cache round-trips
// through the snapshot codec so lineage caches survive process restarts.
// Replay-time link/linkGen fields are dropped on save — they are rebuilt
// lazily by key lookup after adoption.

import (
	"fmt"
	"sort"

	"facile/internal/snapshot"
)

// WarmFormatVersion identifies the serialized node layout. Bump it on any
// change to the node struct's persisted fields.
const WarmFormatVersion = 1

// maxWarmEntries bounds entry/fork counts a load will reconstruct before
// concluding the stream is corrupt.
const maxWarmEntries = 1 << 24

// Save serializes the detached cache. The walk is read-only.
func (wc *WarmCache) Save(w *snapshot.Writer) {
	w.U64(WarmFormatVersion)
	w.U64(wc.gen)
	w.U64(wc.bytes)
	w.U64(uint64(len(wc.m)))
	keys := make([]string, 0, len(wc.m))
	for k := range wc.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := wc.m[k]
		w.String(e.key)
		w.U64(e.bytes)
		saveNode(w, e.first)
	}
}

func saveNode(w *snapshot.Writer, n *node) {
	if n == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.I64(int64(n.blockID))
	w.I64s(n.data)
	w.String(n.nextKey)
	w.U64(uint64(len(n.forks)))
	for i := range n.forks {
		w.I64(n.forks[i].val)
		saveNode(w, n.forks[i].next)
	}
	saveNode(w, n.next)
}

// LoadWarmCache reconstructs a detached cache from its serialized form.
// Any inconsistency is an error; the caller falls back to a cold start
// rather than adopting a partially decoded cache.
func LoadWarmCache(r *snapshot.Reader) (*WarmCache, error) {
	if v := r.U64(); r.Err() == nil && v != WarmFormatVersion {
		return nil, fmt.Errorf("rt: warm-cache format version %d, this build reads %d", v, WarmFormatVersion)
	}
	wc := &WarmCache{m: make(map[string]*centry)}
	wc.gen = r.U64()
	wc.bytes = r.U64()
	n := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > maxWarmEntries {
		return nil, fmt.Errorf("rt: warm cache claims %d entries", n)
	}
	var sum uint64
	for i := uint64(0); i < n; i++ {
		e := &centry{key: r.String(), gen: wc.gen}
		e.bytes = r.U64()
		first, err := loadNode(r)
		if err != nil {
			return nil, err
		}
		e.first = first
		if r.Err() != nil {
			return nil, r.Err()
		}
		if e.first == nil {
			return nil, fmt.Errorf("rt: warm cache entry %q has no nodes", e.key)
		}
		wc.m[e.key] = e
		sum += e.bytes
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if sum != wc.bytes {
		return nil, fmt.Errorf("rt: warm cache accounting mismatch: entries sum to %d bytes, header says %d", sum, wc.bytes)
	}
	if uint64(len(wc.m)) != n {
		return nil, fmt.Errorf("rt: warm cache holds %d entries after dedup, header says %d", len(wc.m), n)
	}
	return wc, nil
}

func loadNode(r *snapshot.Reader) (*node, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	n := &node{}
	n.blockID = int32(r.I64())
	n.data = r.I64s()
	n.nextKey = r.String()
	nf := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nf > maxWarmEntries {
		return nil, fmt.Errorf("rt: warm cache node claims %d forks", nf)
	}
	for i := uint64(0); i < nf; i++ {
		val := r.I64()
		next, err := loadNode(r)
		if err != nil {
			return nil, err
		}
		n.forks = append(n.forks, nfork{val: val, next: next})
	}
	next, err := loadNode(r)
	if err != nil {
		return nil, err
	}
	n.next = next
	return n, r.Err()
}
