package rt

import (
	"fmt"

	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
)

// Extern is a host (Go) function callable from Facile. External calls are
// dynamic: the compiler never memoizes through them, so externs may hold
// arbitrary mutable state (cache simulators, branch predictors, target
// memory, output devices).
type Extern func(args []int64) int64

// TextSource provides the target program's text segment: the token stream
// Facile's ?fetch/?exec read. Target instructions are run-time static
// (paper §4.1, footnote: they do not change after loading).
type TextSource interface {
	FetchWord(addr uint64) uint32
}

// Options configures a Machine.
type Options struct {
	Memoize        bool
	CacheCapBytes  uint64 // 0 = unlimited
	StepInstBudget uint64 // IR instructions per step before aborting; 0 = default
}

const defaultStepBudget = 200_000_000

// Stats reports run-time statistics.
type Stats struct {
	SlowSteps uint64 // steps executed by the slow/complete simulator
	Replays   uint64 // steps replayed by the fast/residual simulator
	Misses    uint64 // mid-step action cache misses (recoveries)
	KeyMisses uint64 // step-boundary lookups that missed

	SlowInsts uint64 // IR instructions executed by the slow simulator
	FastOps   uint64 // dynamic instructions executed by the fast simulator

	CacheBytes     uint64
	CacheEntries   uint64
	TotalMemoBytes uint64
	CacheClears    uint64
}

// Machine executes a compiled Facile program with optional
// fast-forwarding.
type Machine struct {
	p    *ir.Program
	text TextSource
	opt  Options

	globals []int64
	arrays  [][]int64
	queuesG []*Queue
	argQ    []*Queue // main queue parameters (run-time static state)
	argI    []int64  // main integer arguments for the current step
	argBuf  []int64  // next-step integer arguments (set_args targets)
	vregs   []int64
	externs []Extern

	ac      *acache
	started bool
	curKey  string // key of the next step to run
	stepKey string // key of the entry currently being replayed
	path    []int64
	stop    func(*Machine) bool
	done    bool

	stats Stats
}

// New builds a machine for the compiled program p over the given target
// text.
func New(p *ir.Program, text TextSource, opt Options) *Machine {
	if opt.StepInstBudget == 0 {
		opt.StepInstBudget = defaultStepBudget
	}
	m := &Machine{
		p:       p,
		text:    text,
		opt:     opt,
		globals: make([]int64, len(p.Globals)),
		arrays:  make([][]int64, len(p.Arrays)),
		queuesG: make([]*Queue, len(p.QueuesG)),
		vregs:   make([]int64, p.NumVReg),
		externs: make([]Extern, len(p.Externs)),
		ac:      newACache(opt.CacheCapBytes),
	}
	for i, g := range p.Globals {
		m.globals[i] = g.Init
	}
	for i, a := range p.Arrays {
		m.arrays[i] = make([]int64, a.Len)
		for j := range m.arrays[i] {
			m.arrays[i][j] = a.Init
		}
	}
	for i, q := range p.QueuesG {
		m.queuesG[i] = NewQueue(q.Cap, q.Width)
	}
	nInt := 0
	for _, prm := range p.Params {
		if prm.IsQueue {
			m.argQ = append(m.argQ, NewQueue(prm.Queue.Cap, prm.Queue.Width))
		} else {
			nInt++
		}
	}
	m.argI = make([]int64, nInt)
	m.argBuf = make([]int64, nInt)
	return m
}

// RegisterExtern installs the host implementation of a declared extern.
func (m *Machine) RegisterExtern(name string, fn Extern) error {
	for i, n := range m.p.Externs {
		if n == name {
			m.externs[i] = fn
			return nil
		}
	}
	return fmt.Errorf("rt: program declares no extern %q", name)
}

// SetStop installs the termination predicate, evaluated at every step
// boundary (identically for memoized and non-memoized runs).
func (m *Machine) SetStop(fn func(*Machine) bool) { m.stop = fn }

// SetIntArgs seeds main's integer arguments for the first step.
func (m *Machine) SetIntArgs(args ...int64) error {
	if len(args) != len(m.argI) {
		return fmt.Errorf("rt: main takes %d integer arguments, got %d", len(m.argI), len(args))
	}
	copy(m.argI, args)
	return nil
}

// ArgQueue returns main's i-th queue parameter for seeding initial state.
func (m *Machine) ArgQueue(i int) *Queue { return m.argQ[i] }

// Global returns the current value of a global by name (for drivers and
// tests; Facile programs expose results through globals and externs).
func (m *Machine) Global(name string) (int64, bool) {
	for i, g := range m.p.Globals {
		if g.Name == name {
			return m.globals[i], true
		}
	}
	return 0, false
}

// SetGlobal writes a global by name.
func (m *Machine) SetGlobal(name string, v int64) bool {
	for i, g := range m.p.Globals {
		if g.Name == name {
			m.globals[i] = v
			return true
		}
	}
	return false
}

// Array returns a global array by name.
func (m *Machine) Array(name string) ([]int64, bool) {
	for i, a := range m.p.Arrays {
		if a.Name == name {
			return m.arrays[i], true
		}
	}
	return nil, false
}

// Stats returns run statistics.
func (m *Machine) Stats() Stats {
	st := m.stats
	st.CacheBytes = m.ac.bytes
	st.CacheEntries = uint64(len(m.ac.m))
	st.TotalMemoBytes = m.ac.totalBytes
	st.CacheClears = m.ac.clears
	return st
}

// Done reports whether the stop predicate has fired.
func (m *Machine) Done() bool { return m.done }

// Run executes steps until the stop predicate fires or maxSteps steps
// complete (0 = unlimited).
func (m *Machine) Run(maxSteps uint64) error {
	if !m.started {
		m.curKey = buildKey(m.argI, m.argQ)
		m.started = true
	}
	steps := func() uint64 { return m.stats.SlowSteps + m.stats.Replays }
	for !m.done {
		if maxSteps > 0 && steps() >= maxSteps {
			return nil
		}
		if m.opt.Memoize {
			if e := m.ac.get(m.curKey); e != nil {
				if err := m.replayFrom(e, maxSteps); err != nil {
					return err
				}
				continue
			}
			m.stats.KeyMisses++
		}
		if !parseKey(m.curKey, m.argI, m.argQ) {
			return fmt.Errorf("rt: corrupt action cache key")
		}
		var rec *recorder
		var ent *centry
		if m.opt.Memoize {
			ent = &centry{key: m.curKey}
			rec = &recorder{m: m, tail: &ent.first}
		}
		if err := m.runStepSlow(rec, nil); err != nil {
			return err
		}
		if ent != nil {
			m.ac.put(ent)
		}
	}
	return nil
}

// recorder appends new actions to the specialized action cache during slow
// simulation.
type recorder struct {
	m    *Machine
	tail **node
}

func (r *recorder) attach(n *node) {
	*r.tail = n
	r.tail = &n.next
	r.m.ac.charge(nodeBytes + uint64(cap(n.data))*valBytes)
}

// fork records a dynamic result v on node n and redirects recording into
// the new successor chain.
func (r *recorder) fork(n *node, v int64) {
	n.forks = append(n.forks, nfork{val: v})
	r.tail = &n.forks[len(n.forks)-1].next
	r.m.ac.charge(forkBytes)
}

// runStepSlow executes one step of the slow/complete simulator. When path
// is non-nil the step starts in recovery mode: run-time static code
// executes normally, dynamic instructions are skipped (the failed replay
// already performed them), and dynamic-result tests consume the values in
// path — whose last element is the miss value itself. rec, when non-nil,
// records new actions (recovery mode pre-attaches rec.tail to the miss
// node's new fork).
func (m *Machine) runStepSlow(rec *recorder, path []int64) error {
	m.stats.SlowSteps++
	// Seed main's integer-parameter vregs (they occupy the first vregs in
	// declaration order).
	for i := range m.argI {
		m.vregs[i] = m.argI[i]
	}
	copy(m.argBuf, m.argI) // set_args defaults to re-running with same args
	recovering := len(path) > 0
	pi := 0
	budget := m.opt.StepInstBudget
	bi := m.p.Entry
	for {
		blk := m.p.Blocks[bi]
		var n *node
		if rec != nil && !recovering && blk.HasDyn {
			n = &node{blockID: int32(bi)}
			if blk.NPh > 0 {
				n.data = make([]int64, 0, blk.NPh)
			}
			rec.attach(n)
		}
		dynIdx := 0
		if budget < uint64(len(blk.Insts)) {
			return fmt.Errorf("rt: step exceeded the instruction budget (non-terminating step?)")
		}
		budget -= uint64(len(blk.Insts))
		m.stats.SlowInsts += uint64(len(blk.Insts))
		vr := m.vregs
		for i := range blk.Insts {
			inst := &blk.Insts[i]
			if inst.BT == ir.BTStatic {
				// Inline fast paths for the hottest rt-static ops; the
				// generic interpreter handles the rest.
				switch inst.Op {
				case ir.Const:
					vr[inst.D] = inst.Imm
				case ir.Bin:
					vr[inst.D] = types.EvalBinary(token.Kind(inst.Sub), vr[inst.A], vr[inst.B])
				case ir.Mov:
					vr[inst.D] = vr[inst.A]
				default:
					m.exec(inst)
				}
				continue
			}
			if inst.BT == ir.BTStaticWT {
				// Run-time static computation whose value dynamic code can
				// observe: execute it, then memoize the result so the fast
				// simulator re-applies it during replay (the placeholder is
				// the just-computed value).
				m.exec(inst)
				if !recovering {
					if rec != nil {
						di := &blk.Dyn[dynIdx]
						n.data = appendPh(n.data, di, m.vregs)
					}
					dynIdx++
				}
				continue
			}
			if inst.Op == ir.SetArg {
				if recovering {
					m.argBuf[inst.Imm] = path[pi]
					pi++
					if pi == len(path) {
						recovering = false
					}
				} else {
					v := m.vregs[inst.A]
					m.argBuf[inst.Imm] = v
					if rec != nil {
						rec.fork(n, v)
					}
				}
				continue
			}
			if inst.Op == ir.Pin {
				// dynamic result test: the pinned value becomes rt-static
				if recovering {
					m.vregs[inst.D] = path[pi]
					pi++
					if pi == len(path) {
						recovering = false
					}
				} else {
					v := m.vregs[inst.A]
					m.vregs[inst.D] = v
					if rec != nil {
						rec.fork(n, v)
					}
				}
				continue
			}
			if recovering {
				dynIdx++
				continue
			}
			if rec != nil {
				di := &blk.Dyn[dynIdx]
				n.data = appendPh(n.data, di, m.vregs)
			}
			dynIdx++
			m.exec(inst)
		}
		switch blk.Term.Op {
		case ir.Jmp:
			bi = blk.Succ[0]
		case ir.Br:
			var taken bool
			if blk.Term.BT == ir.BTDynamic {
				if recovering {
					taken = path[pi] != 0
					pi++
					if pi == len(path) {
						recovering = false
					}
				} else {
					v := int64(0)
					if m.vregs[blk.Term.A] != 0 {
						v = 1
					}
					taken = v != 0
					if rec != nil {
						rec.fork(n, v)
					}
				}
			} else {
				taken = m.vregs[blk.Term.A] != 0
			}
			if taken {
				bi = blk.Succ[0]
			} else {
				bi = blk.Succ[1]
			}
		case ir.Ret:
			if recovering {
				return fmt.Errorf("rt: recovery did not reach the miss point before the step ended")
			}
			copy(m.argI, m.argBuf)
			key := buildKey(m.argI, m.argQ)
			if rec != nil {
				n.nextKey = key
				m.ac.charge(uint64(len(key)))
			}
			m.curKey = key
			if m.stop != nil && m.stop(m) {
				m.done = true
			}
			return nil
		}
	}
}

// appendPh appends the current values of di's run-time static placeholder
// operands, in the order the fast simulator reads them.
func appendPh(data []int64, di *ir.DynInst, vregs []int64) []int64 {
	if di.A.Kind == ir.SrcPh {
		data = append(data, vregs[di.A.VReg])
	}
	if di.B.Kind == ir.SrcPh {
		data = append(data, vregs[di.B.VReg])
	}
	for _, a := range di.Args {
		if a.Kind == ir.SrcPh {
			data = append(data, vregs[a.VReg])
		}
	}
	return data
}

func (m *Machine) queue(qid int32) *Queue {
	if qid >= 0 {
		return m.queuesG[qid]
	}
	return m.argQ[^qid]
}

// exec interprets one IR instruction against the machine state.
func (m *Machine) exec(inst *ir.Inst) {
	v := m.vregs
	switch inst.Op {
	case ir.Const:
		v[inst.D] = inst.Imm
	case ir.Mov:
		v[inst.D] = v[inst.A]
	case ir.Bin:
		v[inst.D] = types.EvalBinary(token.Kind(inst.Sub), v[inst.A], v[inst.B])
	case ir.Un:
		v[inst.D] = evalUn(inst.Sub, v[inst.A])
	case ir.Ext:
		v[inst.D] = extend(v[inst.A], inst.Imm, inst.Sub == 1)
	case ir.LoadG:
		v[inst.D] = m.globals[inst.Imm]
	case ir.StoreG:
		m.globals[inst.Imm] = v[inst.A]
	case ir.LoadA:
		arr := m.arrays[inst.Imm]
		i := v[inst.A]
		if i >= 0 && i < int64(len(arr)) {
			v[inst.D] = arr[i]
		} else {
			v[inst.D] = 0
		}
	case ir.StoreA:
		arr := m.arrays[inst.Imm]
		i := v[inst.A]
		if i >= 0 && i < int64(len(arr)) {
			arr[i] = v[inst.B]
		}
	case ir.Fetch:
		v[inst.D] = int64(m.text.FetchWord(uint64(v[inst.A])))
	case ir.QOp:
		m.execQOp(inst)
	case ir.CallExt:
		fn := m.externs[inst.Imm]
		if fn == nil {
			panic(fmt.Sprintf("rt: extern %q not registered", m.p.Externs[inst.Imm]))
		}
		args := make([]int64, len(inst.Args))
		for i, a := range inst.Args {
			args[i] = v[a]
		}
		v[inst.D] = fn(args)
	case ir.SetArg:
		m.argBuf[inst.Imm] = v[inst.A]
	case ir.Pin:
		v[inst.D] = v[inst.A]
	}
}

func (m *Machine) execQOp(inst *ir.Inst) {
	v := m.vregs
	q := m.queue(inst.QID)
	var res int64
	switch inst.Sub {
	case ir.QSize:
		res = int64(q.Size())
	case ir.QPush:
		vals := make([]int64, len(inst.Args))
		for i, a := range inst.Args {
			vals[i] = v[a]
		}
		q.Push(vals)
	case ir.QPop:
		res = q.Pop()
	case ir.QGet:
		res = q.Get(v[inst.A], v[inst.B])
	case ir.QSet:
		q.Set(v[inst.A], v[inst.B], v[inst.Args[0]])
	case ir.QFront:
		res = q.Front(v[inst.A])
	case ir.QFull:
		if q.Full() {
			res = 1
		}
	case ir.QClear:
		q.Clear()
	}
	if inst.D >= 0 {
		v[inst.D] = res
	}
}

func evalUn(sub uint8, a int64) int64 {
	switch token.Kind(sub) {
	case token.MINUS:
		return -a
	case token.TILDE:
		return ^a
	case token.NOT:
		if a == 0 {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("rt: unknown unary op %d", sub))
}

func extend(a int64, bits int64, signed bool) int64 {
	if bits >= 64 {
		return a
	}
	shift := uint(64 - bits)
	if signed {
		return a << shift >> shift
	}
	return int64(uint64(a) << shift >> shift)
}

// DebugState exposes internals for tests (current key bytes and args).
func (m *Machine) DebugState() (key string, argI []int64) {
	return m.curKey, append([]int64(nil), m.argI...)
}
