package rt

import (
	"fmt"

	"facile/internal/faults"
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
	"facile/internal/obs"
)

// Extern is a host (Go) function callable from Facile. External calls are
// dynamic: the compiler never memoizes through them, so externs may hold
// arbitrary mutable state (cache simulators, branch predictors, target
// memory, output devices).
type Extern func(args []int64) int64

// TextSource provides the target program's text segment: the token stream
// Facile's ?fetch/?exec read. Target instructions are run-time static
// (paper §4.1, footnote: they do not change after loading).
type TextSource interface {
	FetchWord(addr uint64) uint32
}

// Options configures a Machine.
type Options struct {
	Memoize        bool
	CacheCapBytes  uint64 // 0 = unlimited
	StepInstBudget uint64 // IR instructions per step before aborting; 0 = default

	// SelfCheck is the fraction of replayable steps (0..1) that are
	// re-executed on the slow simulator instead of replayed, verifying the
	// recorded action nodes against the live run. A structural disagreement
	// is a fault: the entry is invalidated and the step finishes live,
	// unrecorded. The checked step runs entirely on the always-correct slow
	// path, so self-checking never perturbs program results.
	SelfCheck     float64
	SelfCheckSeed uint64 // sampling PRNG seed (0 = fixed default)

	// Inject, when non-nil, deterministically corrupts cache entries just
	// before replay so tests can drive every recovery path on demand.
	Inject *faults.Injector

	// MaxReplayNodes bounds the action nodes replayed within one step
	// before the watchdog trips and degrades the step to the slow
	// simulator (0 = default 1<<20). It catches cycles in a corrupted
	// action graph.
	MaxReplayNodes uint64

	// ReplayInterp selects the bytecode-at-a-time replay interpreter
	// instead of the compiled closure-chain substrate (see compile.go).
	// The two paths are bit-identical; the interpreter remains as an
	// escape hatch and as the differential-testing reference.
	ReplayInterp bool

	// Obs, when non-nil, receives the memoization lifecycle and a sampled
	// time series of cache occupancy and slow-vs-fast operation split.
	Obs *obs.Recorder

	// SampleEvery is the executed-operation interval between time-series
	// samples (0 = obs.DefaultSampleEvery).
	SampleEvery uint64
}

const defaultStepBudget = 200_000_000

// Stats reports run-time statistics.
type Stats struct {
	SlowSteps uint64 // steps executed by the slow/complete simulator
	Replays   uint64 // steps replayed by the fast/residual simulator
	Misses    uint64 // mid-step action cache misses (recoveries)
	KeyMisses uint64 // step-boundary lookups that missed

	SlowInsts uint64 // IR instructions executed by the slow simulator
	FastOps   uint64 // dynamic instructions executed by the fast simulator

	CacheBytes     uint64
	CacheEntries   uint64
	TotalMemoBytes uint64
	CacheClears    uint64

	Faults               uint64 // typed faults detected during replay/recovery
	Invalidations        uint64 // cache entries discarded after a fault
	DegradedSteps        uint64 // steps re-run on the slow simulator after a fault
	WatchdogTrips        uint64 // replay-node or step-budget watchdog firings
	SelfChecks           uint64 // replayable steps re-executed for verification
	SelfCheckDivergences uint64 // self-checks that disagreed with the cache
}

// Machine executes a compiled Facile program with optional
// fast-forwarding.
type Machine struct {
	p    *ir.Program
	text TextSource
	opt  Options

	globals []int64
	arrays  [][]int64
	queuesG []*Queue
	argQ    []*Queue // main queue parameters (run-time static state)
	argI    []int64  // main integer arguments for the current step
	argBuf  []int64  // next-step integer arguments (set_args targets)
	vregs   []int64
	externs []Extern

	ac      *acache
	started bool
	curKey  string // key of the next step to run
	stepKey string // key of the entry currently being replayed
	path    []int64
	nodes   uint64 // action nodes completed by the current replayed step
	stop    func(*Machine) bool
	done    bool

	blkExt    [][]int32 // extern indices each block's dynamic segment calls
	scState   uint64    // self-check sampling PRNG state
	lastFault *faults.Fault

	// Compiled replay substrate (see compile.go). compiled mirrors
	// !opt.ReplayInterp; code holds each block's precompiled dynamic
	// segment.
	compiled bool
	code     []blockCode

	obs     *obs.Recorder
	sampler *obs.Sampler

	// Registry metrics: per-step replay-length distribution (parity with
	// fastsim's replay_actions_per_step) and compiled-substrate telemetry.
	hStepNodes  *obs.Histogram
	cFusedRuns  *obs.Counter // superinstructions built (lazily, per head node)
	cFusedDisp  *obs.Counter // superinstruction dispatches during replay
	cFusedNodes *obs.Counter // action nodes covered by fused dispatches

	stats Stats
}

// New builds a machine for the compiled program p over the given target
// text.
func New(p *ir.Program, text TextSource, opt Options) *Machine {
	if opt.StepInstBudget == 0 {
		opt.StepInstBudget = defaultStepBudget
	}
	if opt.MaxReplayNodes == 0 {
		opt.MaxReplayNodes = 1 << 20
	}
	m := &Machine{
		p:       p,
		text:    text,
		opt:     opt,
		globals: make([]int64, len(p.Globals)),
		arrays:  make([][]int64, len(p.Arrays)),
		queuesG: make([]*Queue, len(p.QueuesG)),
		vregs:   make([]int64, p.NumVReg),
		externs: make([]Extern, len(p.Externs)),
		ac:      newACache(opt.CacheCapBytes, opt.Obs),
		obs:     opt.Obs,
	}
	m.compiled = !opt.ReplayInterp
	var nCompiled int
	m.code, nCompiled = compileProgram(p)
	reg := opt.Obs.Registry()
	reg.Counter("rt.compiled_blocks").Add(uint64(nCompiled))
	if pl := p.Replay; pl != nil {
		// Predicted-vs-achieved fusion coverage: what the static plan
		// proved fusable against what the closure builder actually
		// compiled. The pairs agree unless the trusted compile's
		// placeholder-count guard tripped (a plan/engine disagreement).
		var opsCompiled uint64
		for bi, blk := range p.Blocks {
			if blk.HasDyn && m.code[bi].ok {
				opsCompiled += uint64(len(blk.Dyn))
			}
		}
		reg.Counter("rt.fusion_predicted_blocks").Add(uint64(pl.FusableBlocks))
		reg.Counter("rt.fusion_compiled_blocks").Add(uint64(nCompiled))
		reg.Counter("rt.fusion_predicted_ops").Add(uint64(pl.FusableOps))
		reg.Counter("rt.fusion_compiled_ops").Add(opsCompiled)
	}
	m.hStepNodes = reg.Histogram("rt.replay_nodes_per_step")
	m.cFusedRuns = reg.Counter("rt.fused_runs")
	m.cFusedDisp = reg.Counter("rt.fused_dispatches")
	m.cFusedNodes = reg.Counter("rt.fused_nodes")
	m.sampler = obs.NewSampler(opt.Obs, opt.SampleEvery, func() obs.Sample {
		return obs.Sample{
			Insts:        m.stats.SlowInsts + m.stats.FastOps,
			SlowInsts:    m.stats.SlowInsts,
			FastInsts:    m.stats.FastOps,
			CacheBytes:   m.ac.g.Bytes,
			CacheEntries: uint64(len(m.ac.m)),
		}
	})
	for i, g := range p.Globals {
		m.globals[i] = g.Init
	}
	for i, a := range p.Arrays {
		m.arrays[i] = make([]int64, a.Len)
		for j := range m.arrays[i] {
			m.arrays[i][j] = a.Init
		}
	}
	for i, q := range p.QueuesG {
		m.queuesG[i] = NewQueue(q.Cap, q.Width)
	}
	nInt := 0
	for _, prm := range p.Params {
		if prm.IsQueue {
			m.argQ = append(m.argQ, NewQueue(prm.Queue.Cap, prm.Queue.Width))
		} else {
			nInt++
		}
	}
	m.argI = make([]int64, nInt)
	m.argBuf = make([]int64, nInt)
	// Precompute, per block, the externs its dynamic segment calls, so the
	// replayer can vet a recorded block reference before executing it.
	m.blkExt = make([][]int32, len(p.Blocks))
	for bi := range p.Blocks {
		for _, di := range p.Blocks[bi].Dyn {
			if di.Op == ir.CallExt {
				m.blkExt[bi] = append(m.blkExt[bi], int32(di.Imm))
			}
		}
	}
	m.scState = opt.SelfCheckSeed
	if m.scState == 0 {
		m.scState = 0xD1B54A32D192ED03
	}
	return m
}

// RegisterExtern installs the host implementation of a declared extern.
func (m *Machine) RegisterExtern(name string, fn Extern) error {
	for i, n := range m.p.Externs {
		if n == name {
			m.externs[i] = fn
			return nil
		}
	}
	return fmt.Errorf("rt: program declares no extern %q", name)
}

// SetStop installs the termination predicate, evaluated at every step
// boundary (identically for memoized and non-memoized runs).
func (m *Machine) SetStop(fn func(*Machine) bool) { m.stop = fn }

// SetIntArgs seeds main's integer arguments for the first step.
func (m *Machine) SetIntArgs(args ...int64) error {
	if len(args) != len(m.argI) {
		return fmt.Errorf("rt: main takes %d integer arguments, got %d", len(m.argI), len(args))
	}
	copy(m.argI, args)
	return nil
}

// ArgQueue returns main's i-th queue parameter for seeding initial state.
func (m *Machine) ArgQueue(i int) *Queue { return m.argQ[i] }

// Global returns the current value of a global by name (for drivers and
// tests; Facile programs expose results through globals and externs).
func (m *Machine) Global(name string) (int64, bool) {
	for i, g := range m.p.Globals {
		if g.Name == name {
			return m.globals[i], true
		}
	}
	return 0, false
}

// SetGlobal writes a global by name.
func (m *Machine) SetGlobal(name string, v int64) bool {
	for i, g := range m.p.Globals {
		if g.Name == name {
			m.globals[i] = v
			return true
		}
	}
	return false
}

// Array returns a global array by name.
func (m *Machine) Array(name string) ([]int64, bool) {
	for i, a := range m.p.Arrays {
		if a.Name == name {
			return m.arrays[i], true
		}
	}
	return nil, false
}

// Stats returns run statistics.
func (m *Machine) Stats() Stats {
	st := m.stats
	st.CacheBytes = m.ac.g.Bytes
	st.CacheEntries = uint64(len(m.ac.m))
	st.TotalMemoBytes = m.ac.g.TotalBytes
	st.CacheClears = m.ac.g.Clears
	st.Invalidations = m.ac.g.Invalidations
	return st
}

// LastFault returns the most recent fault detected by replay, recovery, or
// self-checking (nil if none).
func (m *Machine) LastFault() *faults.Fault { return m.lastFault }

func (m *Machine) fault(k faults.Kind, detail string) {
	m.stats.Faults++
	m.lastFault = &faults.Fault{Kind: k, Engine: "rt", Detail: detail}
	m.obs.EventDetail(obs.EvFault, 0, k.String())
}

// stepHook reports whether per-step policies (fault injection, self-check
// sampling) are active, in which case the replayer hands every chained step
// back to Run instead of following cache links internally.
func (m *Machine) stepHook() bool {
	return m.opt.Inject != nil || m.opt.SelfCheck > 0
}

// selfCheckDue samples the self-check rate deterministically.
func (m *Machine) selfCheckDue() bool {
	f := m.opt.SelfCheck
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	x := m.scState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.scState = x
	return float64(x>>11)/(1<<53) < f
}

// Done reports whether the stop predicate has fired.
func (m *Machine) Done() bool { return m.done }

// Run executes steps until the stop predicate fires or maxSteps steps
// complete (0 = unlimited).
func (m *Machine) Run(maxSteps uint64) error {
	if !m.started {
		m.curKey = buildKey(m.argI, m.argQ)
		m.started = true
	}
	m.obs.Begin("rt.run")
	defer m.obs.End("rt.run")
	defer m.sampler.Flush()
	steps := func() uint64 { return m.stats.SlowSteps + m.stats.Replays }
	for !m.done {
		m.sampler.Tick(m.stats.SlowInsts + m.stats.FastOps)
		if maxSteps > 0 && steps() >= maxSteps {
			return nil
		}
		if m.opt.Memoize {
			e := m.ac.get(m.curKey)
			if e != nil {
				if inj := m.opt.Inject.Arm(); inj != faults.InjNone {
					m.injectFault(e, inj)
					e = m.ac.get(m.curKey)
				}
			}
			if e != nil {
				if m.selfCheckDue() {
					if err := m.selfCheckStep(e); err != nil {
						return err
					}
				} else if err := m.replayFrom(e, maxSteps); err != nil {
					return err
				}
				continue
			}
			m.stats.KeyMisses++
			m.obs.Event(obs.EvKeyMiss, uint64(len(m.curKey)))
		}
		if !parseKey(m.curKey, m.argI, m.argQ) {
			// Should be unreachable: successor keys are vetted before
			// adoption. Rebuild a parseable key from the current arguments
			// so the run continues instead of crashing.
			m.fault(faults.CorruptKey, "unparseable step key at slow-path entry")
			m.curKey = buildKey(m.argI, m.argQ)
		}
		var sink stepSink
		var ent *centry
		if m.opt.Memoize {
			ent = &centry{key: m.curKey}
			sink = &recorder{m: m, ent: ent, tail: &ent.first}
		}
		if err := m.runStepSlow(sink, nil); err != nil {
			return err
		}
		if ent != nil {
			m.ac.put(ent)
			m.obs.Event(obs.EvStepRecorded, ent.bytes)
		}
	}
	return nil
}

// stepSink observes one slow step's dynamic structure: block entries,
// memoized placeholder values, dynamic results, and the end-of-step
// successor key. The recorder implements it to grow the action cache; the
// self-check verifier implements it to compare a live step against a
// recorded chain.
type stepSink interface {
	enterBlock(bi int, blk *ir.Block)
	ph(di *ir.DynInst, vregs []int64)
	fork(v int64)
	ret(key string)
}

// recorder appends new actions to the specialized action cache during slow
// simulation.
type recorder struct {
	m    *Machine
	ent  *centry // entry the recorded bytes are charged to
	tail **node
	n    *node // node for the block currently executing
}

func (r *recorder) enterBlock(bi int, blk *ir.Block) {
	n := &node{blockID: int32(bi)}
	if blk.NPh > 0 {
		n.data = make([]int64, 0, blk.NPh)
	}
	*r.tail = n
	r.tail = &n.next
	r.m.ac.charge(r.ent, nodeBytes+uint64(cap(n.data))*valBytes)
	r.n = n
}

func (r *recorder) ph(di *ir.DynInst, vregs []int64) {
	r.n.data = appendPh(r.n.data, di, vregs)
}

// fork records a dynamic result v on the current node and redirects
// recording into the new successor chain.
func (r *recorder) fork(v int64) {
	n := r.n
	n.forks = append(n.forks, nfork{val: v})
	r.tail = &n.forks[len(n.forks)-1].next
	r.m.ac.charge(r.ent, forkBytes)
}

func (r *recorder) ret(key string) {
	if r.n != nil {
		r.n.nextKey = key
		r.m.ac.charge(r.ent, uint64(len(key)))
	}
}

// rcursor aligns a slow re-run with the partial replay it replaces. In
// value mode (useNodes false — the classic miss recovery) the cursor
// consumes the replayed dynamic results in path and goes live when the last
// one — the miss value itself — is applied. In node mode (structural-fault
// degradation) the miss point is not a dynamic result, so the cursor counts
// completed dynamic blocks instead and goes live after `nodes` of them,
// still consuming path values at the dynamic-result tests in between. A
// rekey cursor never goes live: it skims the whole step only to rebuild the
// successor key a replay completed with but recorded corruptly.
type rcursor struct {
	path     []int64
	pi       int
	useNodes bool
	nodes    uint64
	visited  uint64
	rekey    bool

	live       bool
	overrun    bool // consumed past the end of the replayed path
	incomplete bool // step ended before the cursor went live
}

// take consumes the next replayed dynamic result; fallback is the live
// value to use if the path is exhausted early (a fault, flagged overrun).
func (c *rcursor) take(fallback int64) int64 {
	if c.pi >= len(c.path) {
		c.overrun = true
		c.live = !c.rekey
		return fallback
	}
	v := c.path[c.pi]
	c.pi++
	if !c.useNodes && c.pi == len(c.path) {
		c.live = true
	}
	return v
}

// blockDone marks a dynamic block complete; in node mode the cursor goes
// live once it has skipped as many blocks as the replay completed.
func (c *rcursor) blockDone() {
	if c.live || !c.useNodes {
		return
	}
	c.visited++
	if !c.rekey && c.visited >= c.nodes {
		c.live = true
	}
}

// runStepSlow executes one step of the slow/complete simulator. When cur is
// non-nil the step starts in recovery mode: run-time static code executes
// normally, dynamic instructions are skipped (the failed replay already
// performed them), and dynamic-result tests consume replayed values from
// the cursor until it goes live. sink, when non-nil, observes the step's
// dynamic structure from the moment the cursor is live (miss recovery
// pre-attaches the recorder to the miss node's new fork).
func (m *Machine) runStepSlow(sink stepSink, cur *rcursor) error {
	m.stats.SlowSteps++
	// Seed main's integer-parameter vregs (they occupy the first vregs in
	// declaration order).
	for i := range m.argI {
		m.vregs[i] = m.argI[i]
	}
	copy(m.argBuf, m.argI) // set_args defaults to re-running with same args
	live := func() bool { return cur == nil || cur.live }
	budget := m.opt.StepInstBudget
	bi := m.p.Entry
	for {
		blk := m.p.Blocks[bi]
		if sink != nil && live() && blk.HasDyn {
			sink.enterBlock(bi, blk)
		}
		dynIdx := 0
		if budget < uint64(len(blk.Insts)) {
			m.fault(faults.WatchdogStep, "step exceeded the instruction budget")
			m.stats.WatchdogTrips++
			return fmt.Errorf("rt: step exceeded the instruction budget (non-terminating step?)")
		}
		budget -= uint64(len(blk.Insts))
		m.stats.SlowInsts += uint64(len(blk.Insts))
		vr := m.vregs
		for i := range blk.Insts {
			inst := &blk.Insts[i]
			if inst.BT == ir.BTStatic {
				// Inline fast paths for the hottest rt-static ops; the
				// generic interpreter handles the rest.
				switch inst.Op {
				case ir.Const:
					vr[inst.D] = inst.Imm
				case ir.Bin:
					vr[inst.D] = types.EvalBinary(token.Kind(inst.Sub), vr[inst.A], vr[inst.B])
				case ir.Mov:
					vr[inst.D] = vr[inst.A]
				default:
					m.exec(inst)
				}
				continue
			}
			if inst.BT == ir.BTStaticWT {
				// Run-time static computation whose value dynamic code can
				// observe: execute it, then memoize the result so the fast
				// simulator re-applies it during replay (the placeholder is
				// the just-computed value).
				m.exec(inst)
				if sink != nil && live() {
					sink.ph(&blk.Dyn[dynIdx], m.vregs)
				}
				dynIdx++
				continue
			}
			if inst.Op == ir.SetArg {
				if !live() {
					m.argBuf[inst.Imm] = cur.take(m.vregs[inst.A])
				} else {
					v := m.vregs[inst.A]
					m.argBuf[inst.Imm] = v
					if sink != nil {
						sink.fork(v)
					}
				}
				continue
			}
			if inst.Op == ir.Pin {
				// dynamic result test: the pinned value becomes rt-static
				if !live() {
					m.vregs[inst.D] = cur.take(m.vregs[inst.A])
				} else {
					v := m.vregs[inst.A]
					m.vregs[inst.D] = v
					if sink != nil {
						sink.fork(v)
					}
				}
				continue
			}
			if !live() {
				dynIdx++
				continue
			}
			if sink != nil {
				sink.ph(&blk.Dyn[dynIdx], m.vregs)
			}
			dynIdx++
			m.exec(inst)
		}
		switch blk.Term.Op {
		case ir.Jmp:
			bi = blk.Succ[0]
		case ir.Br:
			var taken bool
			if blk.Term.BT == ir.BTDynamic {
				if !live() {
					taken = cur.take(b2i(m.vregs[blk.Term.A])) != 0
				} else {
					v := b2i(m.vregs[blk.Term.A])
					taken = v != 0
					if sink != nil {
						sink.fork(v)
					}
				}
			} else {
				taken = m.vregs[blk.Term.A] != 0
			}
			if taken {
				bi = blk.Succ[0]
			} else {
				bi = blk.Succ[1]
			}
		case ir.Ret:
			if !live() && !cur.rekey {
				cur.incomplete = true
			}
			copy(m.argI, m.argBuf)
			key := buildKey(m.argI, m.argQ)
			if sink != nil && live() {
				sink.ret(key)
			}
			m.curKey = key
			if m.stop != nil && m.stop(m) {
				m.done = true
			}
			return nil
		}
		if blk.HasDyn && cur != nil {
			cur.blockDone()
		}
	}
}

func b2i(v int64) int64 {
	if v != 0 {
		return 1
	}
	return 0
}

// appendPh appends the current values of di's run-time static placeholder
// operands, in the order the fast simulator reads them.
func appendPh(data []int64, di *ir.DynInst, vregs []int64) []int64 {
	if di.A.Kind == ir.SrcPh {
		data = append(data, vregs[di.A.VReg])
	}
	if di.B.Kind == ir.SrcPh {
		data = append(data, vregs[di.B.VReg])
	}
	for _, a := range di.Args {
		if a.Kind == ir.SrcPh {
			data = append(data, vregs[a.VReg])
		}
	}
	return data
}

func (m *Machine) queue(qid int32) *Queue {
	if qid >= 0 {
		return m.queuesG[qid]
	}
	return m.argQ[^qid]
}

// exec interprets one IR instruction against the machine state.
func (m *Machine) exec(inst *ir.Inst) {
	v := m.vregs
	switch inst.Op {
	case ir.Const:
		v[inst.D] = inst.Imm
	case ir.Mov:
		v[inst.D] = v[inst.A]
	case ir.Bin:
		v[inst.D] = types.EvalBinary(token.Kind(inst.Sub), v[inst.A], v[inst.B])
	case ir.Un:
		v[inst.D] = evalUn(inst.Sub, v[inst.A])
	case ir.Ext:
		v[inst.D] = extend(v[inst.A], inst.Imm, inst.Sub == 1)
	case ir.LoadG:
		v[inst.D] = m.globals[inst.Imm]
	case ir.StoreG:
		m.globals[inst.Imm] = v[inst.A]
	case ir.LoadA:
		arr := m.arrays[inst.Imm]
		i := v[inst.A]
		if i >= 0 && i < int64(len(arr)) {
			v[inst.D] = arr[i]
		} else {
			v[inst.D] = 0
		}
	case ir.StoreA:
		arr := m.arrays[inst.Imm]
		i := v[inst.A]
		if i >= 0 && i < int64(len(arr)) {
			arr[i] = v[inst.B]
		}
	case ir.Fetch:
		v[inst.D] = int64(m.text.FetchWord(uint64(v[inst.A])))
	case ir.QOp:
		m.execQOp(inst)
	case ir.CallExt:
		fn := m.externs[inst.Imm]
		if fn == nil {
			panic(fmt.Sprintf("rt: extern %q not registered", m.p.Externs[inst.Imm]))
		}
		args := make([]int64, len(inst.Args))
		for i, a := range inst.Args {
			args[i] = v[a]
		}
		v[inst.D] = fn(args)
	case ir.SetArg:
		m.argBuf[inst.Imm] = v[inst.A]
	case ir.Pin:
		v[inst.D] = v[inst.A]
	}
}

func (m *Machine) execQOp(inst *ir.Inst) {
	v := m.vregs
	q := m.queue(inst.QID)
	var res int64
	switch inst.Sub {
	case ir.QSize:
		res = int64(q.Size())
	case ir.QPush:
		vals := make([]int64, len(inst.Args))
		for i, a := range inst.Args {
			vals[i] = v[a]
		}
		q.Push(vals)
	case ir.QPop:
		res = q.Pop()
	case ir.QGet:
		res = q.Get(v[inst.A], v[inst.B])
	case ir.QSet:
		q.Set(v[inst.A], v[inst.B], v[inst.Args[0]])
	case ir.QFront:
		res = q.Front(v[inst.A])
	case ir.QFull:
		if q.Full() {
			res = 1
		}
	case ir.QClear:
		q.Clear()
	}
	if inst.D >= 0 {
		v[inst.D] = res
	}
}

func evalUn(sub uint8, a int64) int64 {
	switch token.Kind(sub) {
	case token.MINUS:
		return -a
	case token.TILDE:
		return ^a
	case token.NOT:
		if a == 0 {
			return 1
		}
		return 0
	}
	// Unknown sub-op: a compiler bug, but this is reachable from the replay
	// fast path, so produce a value rather than panicking.
	return 0
}

func extend(a int64, bits int64, signed bool) int64 {
	if bits >= 64 {
		return a
	}
	shift := uint(64 - bits)
	if signed {
		return a << shift >> shift
	}
	return int64(uint64(a) << shift >> shift)
}

// DebugState exposes internals for tests (current key bytes and args).
func (m *Machine) DebugState() (key string, argI []int64) {
	return m.curKey, append([]int64(nil), m.argI...)
}
