package rt

import (
	"fmt"

	"facile/internal/snapshot"
)

// SaveState serializes a queue's contents.
func (q *Queue) SaveState(w *snapshot.Writer) {
	w.I64s(q.data)
}

// LoadState restores a queue built with the same capacity and width.
func (q *Queue) LoadState(r *snapshot.Reader) error {
	data := r.I64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(data)%q.width != 0 || len(data)/q.width > q.cap {
		return fmt.Errorf("rt: snapshot queue holds %d values, queue is %d×%d", len(data), q.cap, q.width)
	}
	q.data = append(q.data[:0], data...)
	return nil
}

// SaveState serializes the machine's complete run-time state at a step
// boundary: globals, arrays, queues, main's argument state, the pending
// step key, and the self-check PRNG.
//
// The accounting section carries the run statistics; the action cache is
// deliberately excluded and re-warms after a restore, so a restored run's
// slow/replayed split differs from an uninterrupted one while its program
// results and step evolution are bit-identical. Externs are process-local
// host functions: the caller re-registers them (with their own saved state,
// e.g. facsim's Env) when rebuilding the machine.
func (m *Machine) SaveState(w *snapshot.Writer) {
	w.I64s(m.globals)
	w.U64(uint64(len(m.arrays)))
	for _, a := range m.arrays {
		w.I64s(a)
	}
	w.U64(uint64(len(m.queuesG)))
	for _, q := range m.queuesG {
		q.SaveState(w)
	}
	w.U64(uint64(len(m.argQ)))
	for _, q := range m.argQ {
		q.SaveState(w)
	}
	w.I64s(m.argI)
	w.I64s(m.argBuf)
	w.String(m.curKey)
	w.Bool(m.started)
	w.Bool(m.done)
	w.U64(m.scState)

	w.BeginAux()
	w.U64(m.stats.SlowSteps)
	w.U64(m.stats.Replays)
	w.U64(m.stats.Misses)
	w.U64(m.stats.KeyMisses)
	w.U64(m.stats.SlowInsts)
	w.U64(m.stats.FastOps)
	w.U64(m.stats.Faults)
	w.U64(m.stats.DegradedSteps)
	w.U64(m.stats.WatchdogTrips)
	w.U64(m.stats.SelfChecks)
	w.U64(m.stats.SelfCheckDivergences)
	w.U64(m.ac.g.TotalBytes)
	w.U64(m.ac.g.Clears)
	w.U64(m.ac.g.Invalidations)
}

// LoadState restores a machine built from the same compiled program. The
// action cache starts empty and re-warms.
func (m *Machine) LoadState(r *snapshot.Reader) error {
	globals := r.I64s()
	if r.Err() == nil && len(globals) != len(m.globals) {
		return fmt.Errorf("rt: snapshot has %d globals, program declares %d", len(globals), len(m.globals))
	}
	copy(m.globals, globals)
	na := r.U64()
	if r.Err() == nil && na != uint64(len(m.arrays)) {
		return fmt.Errorf("rt: snapshot has %d arrays, program declares %d", na, len(m.arrays))
	}
	for i := range m.arrays {
		a := r.I64s()
		if r.Err() != nil {
			return r.Err()
		}
		if len(a) != len(m.arrays[i]) {
			return fmt.Errorf("rt: snapshot array %d has %d elements, program declares %d", i, len(a), len(m.arrays[i]))
		}
		copy(m.arrays[i], a)
	}
	nq := r.U64()
	if r.Err() == nil && nq != uint64(len(m.queuesG)) {
		return fmt.Errorf("rt: snapshot has %d global queues, program declares %d", nq, len(m.queuesG))
	}
	for _, q := range m.queuesG {
		if err := q.LoadState(r); err != nil {
			return err
		}
	}
	naq := r.U64()
	if r.Err() == nil && naq != uint64(len(m.argQ)) {
		return fmt.Errorf("rt: snapshot has %d queue arguments, main declares %d", naq, len(m.argQ))
	}
	for _, q := range m.argQ {
		if err := q.LoadState(r); err != nil {
			return err
		}
	}
	argI := r.I64s()
	argBuf := r.I64s()
	if r.Err() == nil && (len(argI) != len(m.argI) || len(argBuf) != len(m.argBuf)) {
		return fmt.Errorf("rt: snapshot argument count does not match main's signature")
	}
	copy(m.argI, argI)
	copy(m.argBuf, argBuf)
	m.curKey = r.String()
	m.started = r.Bool()
	m.done = r.Bool()
	m.scState = r.U64()
	if m.started && m.curKey != "" && !validKey(m.curKey, len(m.argI), m.argQ) {
		return fmt.Errorf("rt: snapshot step key does not parse against this program")
	}

	m.stats.SlowSteps = r.U64()
	m.stats.Replays = r.U64()
	m.stats.Misses = r.U64()
	m.stats.KeyMisses = r.U64()
	m.stats.SlowInsts = r.U64()
	m.stats.FastOps = r.U64()
	m.stats.Faults = r.U64()
	m.stats.DegradedSteps = r.U64()
	m.stats.WatchdogTrips = r.U64()
	m.stats.SelfChecks = r.U64()
	m.stats.SelfCheckDivergences = r.U64()
	m.ac.g.TotalBytes = r.U64()
	m.ac.g.Clears = r.U64()
	m.ac.g.Invalidations = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	m.lastFault = nil
	m.path = m.path[:0]
	m.nodes = 0
	m.stepKey = ""
	return nil
}

// StateHash returns the stable content hash of the machine's run-time
// state (the STATE section of SaveState).
func (m *Machine) StateHash() string {
	w := snapshot.NewWriter()
	m.SaveState(w)
	return w.StateHash()
}
