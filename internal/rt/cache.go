package rt

import "encoding/binary"

// node is one action in the specialized action cache: an executed dynamic
// basic block, identified by its action number (the block ID), plus the
// run-time static placeholder data its dynamic instructions consume.
// Dynamic-result nodes (dynamic branches and dynamic next-step arguments)
// fork by observed value; end-of-step nodes carry the global lifts and the
// link to the next cache entry (the paper's INDEX action).
type node struct {
	blockID int32
	data    []int64 // placeholder values, in dynamic-segment order
	next    *node
	forks   []nfork

	// end-of-step (DTRet) only:
	nextKey string
	link    *centry
	linkGen uint64
}

type nfork struct {
	val  int64
	next *node
}

func (n *node) findFork(v int64) (*node, bool) {
	for i := range n.forks {
		if n.forks[i].val == v {
			return n.forks[i].next, true
		}
	}
	return nil, false
}

// centry is one specialized action cache entry, keyed by the serialized
// run-time static arguments of main.
type centry struct {
	key   string
	first *node
	gen   uint64
}

// Byte-accounting model for the cache-size cap and the Table 2 metric.
const (
	nodeBytes  = 72
	forkBytes  = 24
	entryBytes = 48
	valBytes   = 8
)

// acache is the specialized action cache with clear-when-full (§6.1).
type acache struct {
	m        map[string]*centry
	bytes    uint64
	capBytes uint64
	gen      uint64

	totalBytes uint64
	clears     uint64
}

func newACache(capBytes uint64) *acache {
	return &acache{m: make(map[string]*centry), capBytes: capBytes}
}

func (c *acache) get(key string) *centry { return c.m[key] }

func (c *acache) put(e *centry) {
	if c.capBytes > 0 && c.bytes > c.capBytes {
		c.m = make(map[string]*centry)
		c.bytes = 0
		c.gen++
		c.clears++
	}
	e.gen = c.gen
	c.m[e.key] = e
	c.charge(uint64(entryBytes + len(e.key)))
}

func (c *acache) charge(n uint64) {
	c.bytes += n
	c.totalBytes += n
}

// buildKey serializes the run-time static inputs of main — the integer
// arguments and the contents of every queue parameter — into the action
// cache key. The encoding is invertible: miss recovery restores main's
// arguments from the key (paper §2.1: "reads its static input from the
// cache entry's index key").
func buildKey(argI []int64, argQ []*Queue) string {
	n := 0
	for range argI {
		n += binary.MaxVarintLen64
	}
	for _, q := range argQ {
		n += binary.MaxVarintLen64 * (1 + len(q.data))
	}
	buf := make([]byte, n)
	off := 0
	for _, v := range argI {
		off += binary.PutVarint(buf[off:], v)
	}
	for _, q := range argQ {
		off += binary.PutUvarint(buf[off:], uint64(q.Size()))
		for _, v := range q.data {
			off += binary.PutVarint(buf[off:], v)
		}
	}
	return string(buf[:off])
}

// parseKey restores main's arguments from a cache key.
func parseKey(key string, argI []int64, argQ []*Queue) bool {
	buf := []byte(key)
	off := 0
	for i := range argI {
		v, k := binary.Varint(buf[off:])
		if k <= 0 {
			return false
		}
		argI[i] = v
		off += k
	}
	for _, q := range argQ {
		sz, k := binary.Uvarint(buf[off:])
		if k <= 0 || int(sz) > q.Cap() {
			return false
		}
		off += k
		q.data = q.data[:0]
		for j := 0; j < int(sz)*q.Width(); j++ {
			v, k := binary.Varint(buf[off:])
			if k <= 0 {
				return false
			}
			q.data = append(q.data, v)
			off += k
		}
	}
	return off == len(buf)
}
