package rt

import (
	"encoding/binary"

	"facile/internal/memocache"
	"facile/internal/obs"
)

// node is one action in the specialized action cache: an executed dynamic
// basic block, identified by its action number (the block ID), plus the
// run-time static placeholder data its dynamic instructions consume.
// Dynamic-result nodes (dynamic branches and dynamic next-step arguments)
// fork by observed value; end-of-step nodes carry the global lifts and the
// link to the next cache entry (the paper's INDEX action).
type node struct {
	blockID int32
	data    []int64 // placeholder values, in dynamic-segment order
	next    *node
	forks   []nfork

	// end-of-step (DTRet) only:
	nextKey string
	link    *centry
	linkGen uint64

	// Derived compiled-replay state (see compile.go): the superinstruction
	// headed by this node, valid only while fusedVer equals the owning
	// entry's cver. Never serialized — snapshot/warmio enumerate fields
	// explicitly — and rebuilt lazily after warm adoption.
	fused    *fusedRun
	fusedVer uint64
}

type nfork struct {
	val  int64
	next *node
}

func (n *node) findFork(v int64) (*node, bool) {
	for i := range n.forks {
		if n.forks[i].val == v {
			return n.forks[i].next, true
		}
	}
	return nil, false
}

// centry is one specialized action cache entry, keyed by the serialized
// run-time static arguments of main.
type centry struct {
	key   string
	first *node
	gen   uint64
	bytes uint64 // bytes charged against the gauge for this entry

	// cver versions the entry's derived compiled-replay state: any
	// mutation of the recorded chain (fault injection, invalidation)
	// bumps it, so stale superinstructions are discarded and the mutated
	// chain is re-validated before its next replay.
	cver uint64
}

// Byte-accounting model for the cache-size cap and the Table 2 metric.
const (
	nodeBytes  = 72
	forkBytes  = 24
	entryBytes = 48
	valBytes   = 8
)

// acache is the specialized action cache with clear-when-full (§6.1).
// Byte accounting, the clear policy, and the staleness generation live in
// memocache.Gauge, shared with internal/arch/fastsim.
type acache struct {
	m   map[string]*centry
	g   memocache.Gauge
	rec *obs.Recorder
}

func newACache(capBytes uint64, rec *obs.Recorder) *acache {
	return &acache{
		m:   make(map[string]*centry),
		g:   memocache.Gauge{CapBytes: capBytes},
		rec: rec,
	}
}

func (c *acache) get(key string) *centry { return c.m[key] }

func (c *acache) put(e *centry) {
	e.gen = c.g.Gen
	if old := c.m[e.key]; old != nil && old != e {
		// Re-recording a key (e.g. after a corrupt-key recovery re-ran a
		// step the cache already held) replaces the old entry; refund it or
		// its bytes stay charged forever.
		c.g.Refund(old.bytes)
		old.bytes = 0
	}
	c.m[e.key] = e
	c.charge(e, uint64(entryBytes+len(e.key)))
	if c.g.Over() {
		// Clear when full — on the put that overflowed the cap, including
		// the entry just installed. In-progress replays detect stale
		// entries via the generation.
		c.clearNow()
	}
}

// charge accounts n freshly memoized bytes to the gauge and, when the bytes
// belong to a particular entry, to that entry — so a later invalidation can
// refund exactly what the entry charged.
func (c *acache) charge(e *centry, n uint64) {
	if e != nil {
		e.bytes += n
	}
	c.g.Charge(n)
}

// invalidate discards entry e after a fault, refunding its charged bytes.
// The refund happens only while e is still the cache's current entry for
// its key: after a clear the gauge was already reset, and refunding a stale
// entry would double-count. The generation moves either way so any
// replay-cached link to e re-validates and misses.
func (c *acache) invalidate(e *centry) {
	e.cver++ // discard derived compiled state along with the entry
	var refund uint64
	if cur, ok := c.m[e.key]; ok && cur == e {
		delete(c.m, e.key)
		refund = e.bytes
	}
	e.bytes = 0
	c.g.Invalidated(refund)
	c.rec.Event(obs.EvInvalidation, refund)
}

// clearNow discards the whole cache, as clear-when-full would.
func (c *acache) clearNow() {
	freed := c.g.Bytes
	c.m = make(map[string]*centry)
	c.g.Cleared()
	c.rec.Event(obs.EvClearWhenFull, freed)
}

// buildKey serializes the run-time static inputs of main — the integer
// arguments and the contents of every queue parameter — into the action
// cache key. The encoding is invertible: miss recovery restores main's
// arguments from the key (paper §2.1: "reads its static input from the
// cache entry's index key").
func buildKey(argI []int64, argQ []*Queue) string {
	n := 0
	for range argI {
		n += binary.MaxVarintLen64
	}
	for _, q := range argQ {
		n += binary.MaxVarintLen64 * (1 + len(q.data))
	}
	buf := make([]byte, n)
	off := 0
	for _, v := range argI {
		off += binary.PutVarint(buf[off:], v)
	}
	for _, q := range argQ {
		off += binary.PutUvarint(buf[off:], uint64(q.Size()))
		for _, v := range q.data {
			off += binary.PutVarint(buf[off:], v)
		}
	}
	return string(buf[:off])
}

// validKey reports whether key would parse as main's run-time static
// arguments, without mutating anything. The fast simulator uses it to
// vet a recorded successor key before adopting it — a corrupt key caught
// here is recoverable; one caught after adoption is not.
func validKey(key string, nArgI int, argQ []*Queue) bool {
	buf := []byte(key)
	off := 0
	for i := 0; i < nArgI; i++ {
		_, k := binary.Varint(buf[off:])
		if k <= 0 {
			return false
		}
		off += k
	}
	for _, q := range argQ {
		sz, k := binary.Uvarint(buf[off:])
		if k <= 0 || int(sz) > q.Cap() {
			return false
		}
		off += k
		for j := 0; j < int(sz)*q.Width(); j++ {
			_, k := binary.Varint(buf[off:])
			if k <= 0 {
				return false
			}
			off += k
		}
	}
	return off == len(buf)
}

// parseKey restores main's arguments from a cache key.
func parseKey(key string, argI []int64, argQ []*Queue) bool {
	buf := []byte(key)
	off := 0
	for i := range argI {
		v, k := binary.Varint(buf[off:])
		if k <= 0 {
			return false
		}
		argI[i] = v
		off += k
	}
	for _, q := range argQ {
		sz, k := binary.Uvarint(buf[off:])
		if k <= 0 || int(sz) > q.Cap() {
			return false
		}
		off += k
		q.data = q.data[:0]
		for j := 0; j < int(sz)*q.Width(); j++ {
			v, k := binary.Varint(buf[off:])
			if k <= 0 {
				return false
			}
			q.data = append(q.data, v)
			off += k
		}
	}
	return off == len(buf)
}
