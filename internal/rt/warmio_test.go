package rt_test

import (
	"reflect"
	"testing"

	"facile/internal/core"
	"facile/internal/rt"
	"facile/internal/snapshot"
)

// TestWarmCacheSaveLoadRoundTrip persists a detached rt cache through the
// snapshot codec and adopts the reloaded copy into a fresh machine: same
// results, more replays than cold — the same contract as an in-memory
// adoption.
func TestWarmCacheSaveLoadRoundTrip(t *testing.T) {
	sim, err := core.CompileSource(counterSrc, core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	const steps = 100
	run := func(wc *rt.WarmCache) (*rt.Machine, []int64) {
		var emitted []int64
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: true})
		if err := m.RegisterExtern("emit", func(a []int64) int64 {
			emitted = append(emitted, a[0])
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		if err := m.SetIntArgs(0); err != nil {
			t.Fatal(err)
		}
		if wc != nil && !m.AdoptCache(wc) {
			t.Fatal("AdoptCache refused the cache")
		}
		if err := m.Run(steps); err != nil {
			t.Fatal(err)
		}
		return m, emitted
	}

	cold, coldOut := run(nil)
	coldStats := cold.Stats()
	wc := cold.DetachCache()
	if wc == nil || wc.Entries() == 0 {
		t.Fatal("no detached cache to persist")
	}
	entries, bs := wc.Entries(), wc.Bytes()

	w := snapshot.NewWriter()
	wc.Save(w)
	if wc.Entries() != entries || wc.Bytes() != bs {
		t.Fatal("Save mutated the cache")
	}
	loaded, err := rt.LoadWarmCache(snapshot.NewReader(w.Payload()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Entries() != entries || loaded.Bytes() != bs {
		t.Fatalf("loaded cache sized %d entries/%d bytes, saved %d/%d",
			loaded.Entries(), loaded.Bytes(), entries, bs)
	}

	warm, warmOut := run(loaded)
	warmStats := warm.Stats()
	if !reflect.DeepEqual(coldOut, warmOut) {
		t.Errorf("reloaded-warm emitted %v != cold %v", warmOut, coldOut)
	}
	if warmStats.Replays <= coldStats.Replays {
		t.Errorf("reloaded-warm replayed %d steps, expected more than cold %d",
			warmStats.Replays, coldStats.Replays)
	}
	if warmStats.SlowSteps >= coldStats.SlowSteps {
		t.Errorf("reloaded-warm ran %d slow steps, expected fewer than cold %d",
			warmStats.SlowSteps, coldStats.SlowSteps)
	}
}

// TestLoadWarmCacheRejectsCorruption: version skew and truncation fail
// the load instead of producing a partially decoded cache.
func TestLoadWarmCacheRejectsCorruption(t *testing.T) {
	sim, err := core.CompileSource(counterSrc, core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := sim.NewMachine(core.NullText(), rt.Options{Memoize: true})
	if err := m.RegisterExtern("emit", func([]int64) int64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if err := m.SetIntArgs(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	wc := m.DetachCache()
	w := snapshot.NewWriter()
	wc.Save(w)
	good := w.Payload()

	skew := snapshot.NewWriter()
	skew.U64(rt.WarmFormatVersion + 1)
	if _, err := rt.LoadWarmCache(snapshot.NewReader(append(skew.Payload(), good[1:]...))); err == nil {
		t.Fatal("future format version loaded")
	}
	if _, err := rt.LoadWarmCache(snapshot.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated stream loaded")
	}
}
