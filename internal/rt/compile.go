package rt

import (
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
)

// This file is the compiled replay substrate: instead of interpreting each
// block's dynamic segment one ir.DynInst at a time (execDyn's per-op and
// per-operand switches), Machine construction precompiles every dynamic
// segment into a chain of specialized closures with all operand dispatch —
// dynamic vreg, recorded placeholder, constant — resolved at compile time,
// and replay fuses straight-line runs of DTNone nodes into superinstructions
// executed as one pre-validated call sequence.
//
// Correctness contract:
//
//   - Results are bit-identical to the interpreted path: closures replicate
//     execDyn's semantics exactly, and placeholder indices are assigned in
//     the same order the recorder appended them (appendPh) and the
//     interpreter consumes them (execDyn's read order). A block whose
//     operand layout cannot be proven to match — a placeholder in a field
//     the op never reads — is left uncompiled and replays interpreted.
//
//   - All fault degradation survives fusion: a fused run contains only
//     nodes pre-validated exactly as the interpreter would (block range,
//     placeholder count, registered externs), and it ends before the first
//     node that fails validation, so the interpreted loop re-detects the
//     corruption with the identical fault kind at the identical node count.
//     Misses can only happen at dynamic-result nodes, which are never
//     inside a run.
//
//   - Fused state is derived, not memoized: it is never serialized
//     (snapshot/warmio enumerate fields explicitly), is rebuilt lazily
//     after warm-cache adoption, and is discarded when the owning entry's
//     cver moves (fault injection, invalidation) so a mutated chain is
//     always re-validated before its next replay.

// dynFn executes one dynamic instruction with operand kinds resolved at
// compile time; data is the node's recorded placeholder values.
type dynFn func(m *Machine, data []int64)

// blockCode is the compiled form of one block's dynamic segment.
type blockCode struct {
	fns []dynFn
	ok  bool // operand layout proven to match the recorder's placeholder order
}

// maxFuseLen bounds one superinstruction's node count. Longer straight-line
// chains split into consecutive runs; a cycle in a corrupted graph therefore
// still accumulates m.nodes toward the replay watchdog instead of hanging
// the builder. Shared with the compiler's static replay planner, whose
// MaxRun figures are capped at the same bound.
const maxFuseLen = ir.MaxFuseLen

// minFuseLen is the shortest run worth fusing: below it the fused dispatch
// (version check, per-step closure loop) costs more than the interpreter
// iterations it replaces, so the builder emits an empty run and the nodes
// replay interpreted.
const minFuseLen = ir.MinFuseLen

// fusedRun is a superinstruction: a pre-validated straight-line run of
// DTNone nodes executed as one call sequence. end is the first node after
// the run (a dynamic-result node, a DTRet node, a node that failed
// validation, or nil), handed back to the interpreted loop.
type fusedRun struct {
	steps []fusedStep
	end   *node
	ops   uint64 // dynamic instructions covered, for FastOps accounting
}

type fusedStep struct {
	fns  []dynFn
	data []int64
}

// compileProgram compiles dynamic segments into closure chains. With a
// proven replay plan attached (p.Replay, computed by the compiler's static
// fusion analysis), the builder trusts the static table: only plan-fusable
// blocks are compiled — with the per-operand layout scans skipped, since
// the plan already proved every placeholder sits in a read field — and
// fork-, ret-terminated, and layout-unprovable blocks are left to the
// interpreter (fused runs can never contain them, so compiling them was
// pure build-time waste). Without a plan (hand-constructed IR, older
// snapshots) every block runs the legacy per-block proof.
func compileProgram(p *ir.Program) ([]blockCode, int) {
	code := make([]blockCode, len(p.Blocks))
	compiled := 0
	if pl := p.Replay; pl != nil && len(pl.Blocks) == len(p.Blocks) {
		for bi, blk := range p.Blocks {
			if !blk.HasDyn {
				// Empty ok chain so fused runs can span the block.
				code[bi] = blockCode{ok: true}
				continue
			}
			if !pl.Fusable(bi) {
				continue // replays interpreted
			}
			code[bi] = compileBlock(blk, true)
			if code[bi].ok && len(blk.Dyn) > 0 {
				compiled++
			}
		}
		return code, compiled
	}
	for bi, blk := range p.Blocks {
		code[bi] = compileBlock(blk, false)
		if code[bi].ok && len(blk.Dyn) > 0 {
			compiled++
		}
	}
	return code, compiled
}

// compileBlock compiles one block's dynamic segment. In trusted mode the
// per-operand layout proof is skipped (the static plan proved it); the
// final placeholder-count comparison stays as a cheap integer guard — if
// it ever trips, the plan and the engine disagree and the block safely
// falls back to interpreted replay.
func compileBlock(blk *ir.Block, trusted bool) blockCode {
	fns := make([]dynFn, 0, len(blk.Dyn))
	ph := 0
	for i := range blk.Dyn {
		fn, ok := compileDyn(&blk.Dyn[i], &ph, trusted)
		if !ok {
			return blockCode{}
		}
		fns = append(fns, fn)
	}
	if ph != blk.NPh {
		// The compile-time placeholder assignment disagrees with the
		// recorder's count; replay this block interpreted.
		return blockCode{}
	}
	return blockCode{fns: fns, ok: true}
}

// noPh reports that s is not a recorded placeholder. Operands the
// interpreter never reads must not be placeholders, or the compile-time
// index assignment would diverge from the recorded data layout.
func noPh(s ir.Src) bool { return s.Kind != ir.SrcPh }

func noPhArgs(args []ir.Src) bool {
	for _, a := range args {
		if a.Kind != ir.SrcPh {
			continue
		}
		return false
	}
	return true
}

// reader builds a compile-time-resolved operand getter, assigning the next
// placeholder index when s is a placeholder. Callers must invoke reader in
// the interpreter's operand read order.
func reader(s ir.Src, ph *int) func(*Machine, []int64) int64 {
	switch s.Kind {
	case ir.SrcVReg:
		r := s.VReg
		return func(m *Machine, _ []int64) int64 { return m.vregs[r] }
	case ir.SrcPh:
		i := *ph
		*ph++
		return func(_ *Machine, data []int64) int64 { return data[i] }
	case ir.SrcConst:
		c := s.Const
		return func(*Machine, []int64) int64 { return c }
	}
	return func(*Machine, []int64) int64 { return 0 }
}

// compileDyn compiles one dynamic instruction. It returns ok=false when the
// instruction's placeholder layout cannot be matched to the interpreter's
// read order (the block then replays interpreted). In trusted mode the
// layout scans are skipped: the static replay plan already proved them.
func compileDyn(di *ir.DynInst, ph *int, trusted bool) (dynFn, bool) {
	d := di.D
	switch di.Op {
	case ir.Mov:
		if !trusted && (!noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		// Flat fast paths for the three operand kinds.
		switch di.A.Kind {
		case ir.SrcVReg:
			a := di.A.VReg
			return func(m *Machine, _ []int64) { m.vregs[d] = m.vregs[a] }, true
		case ir.SrcPh:
			i := *ph
			*ph++
			return func(m *Machine, data []int64) { m.vregs[d] = data[i] }, true
		case ir.SrcConst:
			c := di.A.Const
			return func(m *Machine, _ []int64) { m.vregs[d] = c }, true
		}
		return func(m *Machine, _ []int64) { m.vregs[d] = 0 }, true

	case ir.Bin:
		if !trusted && !noPhArgs(di.Args) {
			return nil, false
		}
		op := token.Kind(di.Sub)
		// Flat fast paths for the hottest operand-kind combinations; the
		// composed form below covers the rest with one closure call per
		// operand and no kind dispatch.
		if di.A.Kind == ir.SrcVReg && di.B.Kind == ir.SrcVReg {
			a, b := di.A.VReg, di.B.VReg
			return func(m *Machine, _ []int64) {
				m.vregs[d] = types.EvalBinary(op, m.vregs[a], m.vregs[b])
			}, true
		}
		if di.A.Kind == ir.SrcVReg && di.B.Kind == ir.SrcConst {
			a, c := di.A.VReg, di.B.Const
			return func(m *Machine, _ []int64) {
				m.vregs[d] = types.EvalBinary(op, m.vregs[a], c)
			}, true
		}
		if di.A.Kind == ir.SrcPh && di.B.Kind == ir.SrcConst {
			i, c := *ph, di.B.Const
			*ph++
			return func(m *Machine, data []int64) {
				m.vregs[d] = types.EvalBinary(op, data[i], c)
			}, true
		}
		if di.A.Kind == ir.SrcPh && di.B.Kind == ir.SrcVReg {
			i, b := *ph, di.B.VReg
			*ph++
			return func(m *Machine, data []int64) {
				m.vregs[d] = types.EvalBinary(op, data[i], m.vregs[b])
			}, true
		}
		ra := reader(di.A, ph)
		rb := reader(di.B, ph)
		return func(m *Machine, data []int64) {
			m.vregs[d] = types.EvalBinary(op, ra(m, data), rb(m, data))
		}, true

	case ir.Un:
		if !trusted && (!noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		sub := di.Sub
		ra := reader(di.A, ph)
		return func(m *Machine, data []int64) { m.vregs[d] = evalUn(sub, ra(m, data)) }, true

	case ir.Ext:
		if !trusted && (!noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		bits, signed := di.Imm, di.Sub == 1
		ra := reader(di.A, ph)
		return func(m *Machine, data []int64) {
			m.vregs[d] = extend(ra(m, data), bits, signed)
		}, true

	case ir.LoadG:
		if !trusted && (!noPh(di.A) || !noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		g := di.Imm
		return func(m *Machine, _ []int64) { m.vregs[d] = m.globals[g] }, true

	case ir.StoreG:
		if !trusted && (!noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		g := di.Imm
		ra := reader(di.A, ph)
		return func(m *Machine, data []int64) { m.globals[g] = ra(m, data) }, true

	case ir.LoadA:
		if !trusted && (!noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		ai := di.Imm
		ra := reader(di.A, ph)
		return func(m *Machine, data []int64) {
			arr := m.arrays[ai]
			i := ra(m, data)
			if i >= 0 && i < int64(len(arr)) {
				m.vregs[d] = arr[i]
			} else {
				m.vregs[d] = 0
			}
		}, true

	case ir.StoreA:
		if !trusted && !noPhArgs(di.Args) {
			return nil, false
		}
		ai := di.Imm
		ra := reader(di.A, ph)
		rb := reader(di.B, ph)
		return func(m *Machine, data []int64) {
			arr := m.arrays[ai]
			i := ra(m, data)
			val := rb(m, data)
			if i >= 0 && i < int64(len(arr)) {
				arr[i] = val
			}
		}, true

	case ir.Fetch:
		if !trusted && (!noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		ra := reader(di.A, ph)
		return func(m *Machine, data []int64) {
			m.vregs[d] = int64(m.text.FetchWord(uint64(ra(m, data))))
		}, true

	case ir.QOp:
		return compileQOp(di, ph, trusted)

	case ir.CallExt:
		if !trusted && (!noPh(di.A) || !noPh(di.B)) {
			return nil, false
		}
		xi := di.Imm
		rargs := make([]func(*Machine, []int64) int64, len(di.Args))
		for i, a := range di.Args {
			rargs[i] = reader(a, ph)
		}
		return func(m *Machine, data []int64) {
			fn := m.externs[xi]
			args := make([]int64, len(rargs))
			for i, ra := range rargs {
				args[i] = ra(m, data)
			}
			if fn != nil {
				m.vregs[d] = fn(args)
			} else {
				m.vregs[d] = 0
			}
		}, true
	}

	// Unknown dynamic op: the interpreter ignores it; compile the same no-op
	// as long as no placeholder would be silently skipped.
	if trusted || (noPh(di.A) && noPh(di.B) && noPhArgs(di.Args)) {
		return func(*Machine, []int64) {}, true
	}
	return nil, false
}

func compileQOp(di *ir.DynInst, ph *int, trusted bool) (dynFn, bool) {
	d := di.D
	qid := di.QID
	switch di.Sub {
	case ir.QSize:
		if !trusted && (!noPh(di.A) || !noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		return func(m *Machine, _ []int64) {
			res := int64(m.queue(qid).Size())
			if d >= 0 {
				m.vregs[d] = res
			}
		}, true
	case ir.QPush:
		if !trusted && (!noPh(di.A) || !noPh(di.B)) {
			return nil, false
		}
		rargs := make([]func(*Machine, []int64) int64, len(di.Args))
		for i, a := range di.Args {
			rargs[i] = reader(a, ph)
		}
		return func(m *Machine, data []int64) {
			q := m.queue(qid)
			vals := make([]int64, len(rargs))
			for i, ra := range rargs {
				vals[i] = ra(m, data)
			}
			if len(vals) == q.Width() {
				q.Push(vals)
			}
			if d >= 0 {
				m.vregs[d] = 0
			}
		}, true
	case ir.QPop:
		if !trusted && (!noPh(di.A) || !noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		return func(m *Machine, _ []int64) {
			res := m.queue(qid).Pop()
			if d >= 0 {
				m.vregs[d] = res
			}
		}, true
	case ir.QGet:
		if !trusted && !noPhArgs(di.Args) {
			return nil, false
		}
		ra := reader(di.A, ph)
		rb := reader(di.B, ph)
		return func(m *Machine, data []int64) {
			res := m.queue(qid).Get(ra(m, data), rb(m, data))
			if d >= 0 {
				m.vregs[d] = res
			}
		}, true
	case ir.QSet:
		// The structural arity guard stays even in trusted mode.
		if len(di.Args) < 1 || (!trusted && !noPhArgs(di.Args[1:])) {
			return nil, false
		}
		ra := reader(di.A, ph)
		rb := reader(di.B, ph)
		rv := reader(di.Args[0], ph)
		return func(m *Machine, data []int64) {
			a, b := ra(m, data), rb(m, data)
			m.queue(qid).Set(a, b, rv(m, data))
			if d >= 0 {
				m.vregs[d] = 0
			}
		}, true
	case ir.QFront:
		if !trusted && (!noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		ra := reader(di.A, ph)
		return func(m *Machine, data []int64) {
			res := m.queue(qid).Front(ra(m, data))
			if d >= 0 {
				m.vregs[d] = res
			}
		}, true
	case ir.QFull:
		if !trusted && (!noPh(di.A) || !noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		return func(m *Machine, _ []int64) {
			var res int64
			if m.queue(qid).Full() {
				res = 1
			}
			if d >= 0 {
				m.vregs[d] = res
			}
		}, true
	case ir.QClear:
		if !trusted && (!noPh(di.A) || !noPh(di.B) || !noPhArgs(di.Args)) {
			return nil, false
		}
		return func(m *Machine, _ []int64) {
			m.queue(qid).Clear()
			if d >= 0 {
				m.vregs[d] = 0
			}
		}, true
	}
	// Unknown queue sub-op: the interpreter computes res=0 and writes it.
	if !trusted && (!noPh(di.A) || !noPh(di.B) || !noPhArgs(di.Args)) {
		return nil, false
	}
	return func(m *Machine, _ []int64) {
		if d >= 0 {
			m.vregs[d] = 0
		}
	}, true
}

// buildFused assembles the superinstruction starting at n: the maximal
// (length-capped) straight-line run of DTNone nodes, each validated exactly
// as the interpreted loop would validate it before execution. The run ends
// before the first node that is nil, out of range, uncompiled, fork- or
// ret-terminated, carries the wrong placeholder count, or needs an
// unregistered extern — the interpreted loop handles that node, detecting
// any corruption with the identical fault.
func (m *Machine) buildFused(n *node) *fusedRun {
	fr := &fusedRun{}
	for len(fr.steps) < maxFuseLen {
		if n == nil || n.blockID < 0 || int(n.blockID) >= len(m.p.Blocks) {
			break
		}
		bc := &m.code[n.blockID]
		blk := m.p.Blocks[n.blockID]
		if !bc.ok || blk.DynTerm != ir.DTNone || len(n.data) != blk.NPh {
			break
		}
		ok := true
		for _, xi := range m.blkExt[n.blockID] {
			if m.externs[xi] == nil {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		fr.steps = append(fr.steps, fusedStep{fns: bc.fns, data: n.data})
		fr.ops += uint64(len(blk.Dyn))
		n = n.next
	}
	fr.end = n
	if len(fr.steps) < minFuseLen {
		return &fusedRun{} // too short to amortize: replay interpreted
	}
	return fr
}
