package rt_test

import (
	"reflect"
	"testing"

	"facile/internal/core"
	"facile/internal/rt"
)

// deepSrc mixes every memoization-relevant construct: rt-static and
// dynamic global stores, a data-dependent branch tree, an external call, a
// queue parameter, and a pinned dynamic result.
const deepSrc = `
val acc = 0;
val last = 0;
val hist = array(16){0};
extern feed(1);

fun main(q: queue(6, 2), k) {
    // rt-static queue churn
    if (q?full()) { q?pop(); }
    q?push(k, k * 3 % 7);

    // pinned dynamic result steering rt-static work
    val v = feed(k)?pin();
    val bonus = 0;
    if (v % 2 == 0) { bonus = 10; } else { bonus = 1; }

    // dynamic branch tree
    val h = acc % 4;
    if (h < 0) { h = -h; }
    hist[h] = hist[h] + 1;
    if (acc > 100) { acc = acc - 50; }
    else {
        if (acc % 3 == 0) { acc = acc + bonus + v; }
        else { acc = acc + 1; }
    }
    last = k;           // rt-static store, dynamically read next step
    acc = acc + last;   // dynamic read of the rt-static value (same step)
    set_args(q, (k + 1) % 5);
}
`

// runDeep executes deepSrc for steps with the given options and returns
// (acc, hist, stats).
func runDeep(t *testing.T, steps uint64, ropt rt.Options, copt core.Options, feedMod int64) (int64, []int64, rt.Stats) {
	t.Helper()
	sim, err := core.CompileSource(deepSrc, copt)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(core.NullText(), ropt)
	i := int64(0)
	m.RegisterExtern("feed", func(a []int64) int64 {
		i++
		return (i*i + a[0]) % feedMod
	})
	if err := m.SetIntArgs(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(steps); err != nil {
		t.Fatal(err)
	}
	acc, _ := m.Global("acc")
	hist, _ := m.Array("hist")
	return acc, append([]int64{}, hist...), m.Stats()
}

func TestDeepProgramMemoEquivalence(t *testing.T) {
	const steps = 600
	accP, histP, _ := runDeep(t, steps, rt.Options{Memoize: false}, core.Options{}, 9)
	accM, histM, st := runDeep(t, steps, rt.Options{Memoize: true}, core.Options{}, 9)
	if accP != accM || !reflect.DeepEqual(histP, histM) {
		t.Fatalf("divergence: acc %d vs %d, hist %v vs %v", accP, accM, histP, histM)
	}
	if st.Replays == 0 || st.Misses == 0 {
		t.Fatalf("expected replays and recoveries: %+v", st)
	}
}

func TestDeepProgramLivenessEquivalence(t *testing.T) {
	// The liveness write-through optimization must not change results.
	const steps = 600
	accA, histA, _ := runDeep(t, steps, rt.Options{Memoize: true}, core.Options{}, 9)
	accB, histB, _ := runDeep(t, steps, rt.Options{Memoize: true}, core.Options{LiftLiveOnly: true}, 9)
	if accA != accB || !reflect.DeepEqual(histA, histB) {
		t.Fatalf("liveness optimization changed results: %d vs %d", accA, accB)
	}
}

func TestDeepProgramNoOptimizeEquivalence(t *testing.T) {
	const steps = 600
	accA, histA, _ := runDeep(t, steps, rt.Options{Memoize: true}, core.Options{}, 9)
	accB, histB, _ := runDeep(t, steps, rt.Options{Memoize: true}, core.Options{NoOptimize: true}, 9)
	if accA != accB || !reflect.DeepEqual(histA, histB) {
		t.Fatalf("optimizer changed results: %d vs %d", accA, accB)
	}
}

func TestDeepProgramClearDuringUse(t *testing.T) {
	// A cap small enough to clear repeatedly mid-run: stale entry links
	// must be detected by generation counters and results stay exact.
	const steps = 800
	accP, histP, _ := runDeep(t, steps, rt.Options{Memoize: false}, core.Options{}, 11)
	accM, histM, st := runDeep(t, steps, rt.Options{Memoize: true, CacheCapBytes: 4096}, core.Options{}, 11)
	if accP != accM || !reflect.DeepEqual(histP, histM) {
		t.Fatalf("divergence under cache clearing: acc %d vs %d", accP, accM)
	}
	if st.CacheClears == 0 {
		t.Fatalf("expected clears with a 4 KiB cap: %+v", st)
	}
}

func TestDeepProgramHighMissRate(t *testing.T) {
	// A wide feed modulus makes pin values churn: many forks, many
	// recoveries; correctness must hold at any hit rate.
	const steps = 400
	accP, histP, _ := runDeep(t, steps, rt.Options{Memoize: false}, core.Options{}, 101)
	accM, histM, st := runDeep(t, steps, rt.Options{Memoize: true}, core.Options{}, 101)
	if accP != accM || !reflect.DeepEqual(histP, histM) {
		t.Fatalf("divergence at high miss rate: %d vs %d", accP, accM)
	}
	if st.Misses < 10 {
		t.Fatalf("expected many recoveries, got %d", st.Misses)
	}
}

func TestRunResumesAcrossCalls(t *testing.T) {
	// Run with step budgets must be resumable without disturbing the memo
	// state (regression test for the stale-args re-key bug).
	sim, err := core.CompileSource(deepSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(core.NullText(), rt.Options{Memoize: true})
	i := int64(0)
	m.RegisterExtern("feed", func(a []int64) int64 { i++; return (i*i + a[0]) % 9 })
	if err := m.SetIntArgs(0); err != nil {
		t.Fatal(err)
	}
	for target := uint64(50); target <= 600; target += 50 {
		if err := m.Run(target); err != nil {
			t.Fatal(err)
		}
	}
	accChunked, _ := m.Global("acc")
	accOnce, _, _ := runDeep(t, 600, rt.Options{Memoize: true}, core.Options{}, 9)
	if accChunked != accOnce {
		t.Fatalf("chunked runs diverge: %d vs %d", accChunked, accOnce)
	}
}
