package rt

import (
	"testing"

	"facile/internal/faults"
	"facile/internal/lang/ir"
)

// minProgram is the smallest runnable program: one empty block with a Ret
// terminator, no parameters, no globals.
func minProgram() *ir.Program {
	return &ir.Program{
		Blocks: []*ir.Block{{ID: 0, Term: ir.Inst{Op: ir.Ret}}},
	}
}

// TestMissRecoverEmptyPathDegrades drives the defensive guard in
// missRecover directly: every dynamic-result terminator appends its value
// to m.path before the fork lookup, so only corrupted cache data can
// present a mid-step miss with an empty path. The guard must degrade the
// step as a structural fault — never index path[len-1], never count a
// value miss.
func TestMissRecoverEmptyPathDegrades(t *testing.T) {
	m := New(minProgram(), nil, Options{Memoize: true})
	m.curKey = buildKey(m.argI, m.argQ)
	m.started = true
	e := &centry{key: m.curKey, first: &node{blockID: 0}}
	m.ac.put(e)
	m.stepKey = e.key
	m.path = m.path[:0]
	m.nodes = 0
	if err := m.missRecover(e.first, e); err != nil {
		t.Fatalf("missRecover: %v", err)
	}
	st := m.Stats()
	if f := m.LastFault(); f == nil || f.Kind != faults.BrokenChain {
		t.Fatalf("fault = %v, want BrokenChain", m.LastFault())
	}
	if st.DegradedSteps != 1 || st.Invalidations != 1 {
		t.Errorf("expected one degraded step and one invalidation: %+v", st)
	}
	if st.Misses != 0 {
		t.Errorf("a structural fault must not count as a value miss: %+v", st)
	}
}

// TestFusedStateDiscardedOnCverBump pins the derived-state contract: a
// superinstruction built for a node is valid only while the owning entry's
// cver is unchanged, and both fault injection and invalidation move it.
func TestFusedStateDiscardedOnCverBump(t *testing.T) {
	m := New(minProgram(), nil, Options{Memoize: true})
	e := &centry{key: "", first: &node{blockID: 0}}
	m.ac.put(e)
	n := e.first
	n.fused = m.buildFused(n)
	n.fusedVer = e.cver
	m.ac.invalidate(e)
	if n.fusedVer == e.cver {
		t.Fatal("invalidate did not bump cver; stale fused state would survive")
	}
	n.fusedVer = e.cver
	m.injectFault(e, faults.InjFlipFork)
	if n.fusedVer == e.cver {
		t.Fatal("injectFault did not bump cver; stale fused state would survive")
	}
}
