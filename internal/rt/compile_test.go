package rt

import (
	"testing"

	"facile/internal/faults"
	"facile/internal/lang/ir"
)

// minProgram is the smallest runnable program: one empty block with a Ret
// terminator, no parameters, no globals.
func minProgram() *ir.Program {
	return &ir.Program{
		Blocks: []*ir.Block{{ID: 0, Term: ir.Inst{Op: ir.Ret}}},
	}
}

// TestMissRecoverEmptyPathDegrades drives the defensive guard in
// missRecover directly: every dynamic-result terminator appends its value
// to m.path before the fork lookup, so only corrupted cache data can
// present a mid-step miss with an empty path. The guard must degrade the
// step as a structural fault — never index path[len-1], never count a
// value miss.
func TestMissRecoverEmptyPathDegrades(t *testing.T) {
	m := New(minProgram(), nil, Options{Memoize: true})
	m.curKey = buildKey(m.argI, m.argQ)
	m.started = true
	e := &centry{key: m.curKey, first: &node{blockID: 0}}
	m.ac.put(e)
	m.stepKey = e.key
	m.path = m.path[:0]
	m.nodes = 0
	if err := m.missRecover(e.first, e); err != nil {
		t.Fatalf("missRecover: %v", err)
	}
	st := m.Stats()
	if f := m.LastFault(); f == nil || f.Kind != faults.BrokenChain {
		t.Fatalf("fault = %v, want BrokenChain", m.LastFault())
	}
	if st.DegradedSteps != 1 || st.Invalidations != 1 {
		t.Errorf("expected one degraded step and one invalidation: %+v", st)
	}
	if st.Misses != 0 {
		t.Errorf("a structural fault must not count as a value miss: %+v", st)
	}
}

// TestFusedStateDiscardedOnCverBump pins the derived-state contract: a
// superinstruction built for a node is valid only while the owning entry's
// cver is unchanged, and both fault injection and invalidation move it.
func TestFusedStateDiscardedOnCverBump(t *testing.T) {
	m := New(minProgram(), nil, Options{Memoize: true})
	e := &centry{key: "", first: &node{blockID: 0}}
	m.ac.put(e)
	n := e.first
	n.fused = m.buildFused(n)
	n.fusedVer = e.cver
	m.ac.invalidate(e)
	if n.fusedVer == e.cver {
		t.Fatal("invalidate did not bump cver; stale fused state would survive")
	}
	n.fusedVer = e.cver
	m.injectFault(e, faults.InjFlipFork)
	if n.fusedVer == e.cver {
		t.Fatal("injectFault did not bump cver; stale fused state would survive")
	}
}

// forkHeadProgram models the PR-8 corner: the first dynamic block of a
// step ends in a dynamic branch test (a fork), followed by a straight
// line of pure-flow blocks. A miss at that head fork degrades the whole
// step before any fused work runs, so the builder must never start a
// superinstruction there.
func forkHeadProgram() *ir.Program {
	pure := func(id int) *ir.Block {
		return &ir.Block{
			ID:     id,
			HasDyn: true,
			Dyn:    []ir.DynInst{{Op: ir.Mov, D: 0, A: ir.Src{Kind: ir.SrcConst, Const: 1}}},
			Term:   ir.Inst{Op: ir.Ret},
		}
	}
	fork := &ir.Block{
		ID:      0,
		HasDyn:  true,
		DynTerm: ir.DTBr,
		TermSrc: ir.Src{Kind: ir.SrcVReg},
		Term:    ir.Inst{Op: ir.Br},
	}
	return &ir.Program{Blocks: []*ir.Block{fork, pure(1), pure(2)}}
}

// TestForkAtRunHeadSeversFusion drives buildFused over a fork-headed
// chain: the run starting at the fork must stay empty, while the same
// pure tail entered one node later fuses normally. Checked on both the
// plan-less legacy path and with a static replay plan attached (where
// the fork block is not even compiled).
func TestForkAtRunHeadSeversFusion(t *testing.T) {
	plan := &ir.ReplayPlan{
		Blocks: []ir.BlockReplay{
			{Class: ir.ReplayFork},
			{Class: ir.ReplayPure, LayoutOK: true, MaxRun: 2, DynOps: 1},
			{Class: ir.ReplayPure, LayoutOK: true, MaxRun: 1, DynOps: 1},
		},
		DynBlocks: 3, FusableBlocks: 2, DynOps: 3, FusableOps: 2,
	}
	for _, tc := range []struct {
		name   string
		plan   *ir.ReplayPlan
		headOK bool // is the fork block compiled at all?
	}{
		{"legacy", nil, true},
		{"planned", plan, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := forkHeadProgram()
			p.Replay = tc.plan
			m := New(p, nil, Options{Memoize: true})
			if got := m.code[0].ok; got != tc.headOK {
				t.Errorf("fork block compiled = %v, want %v", got, tc.headOK)
			}
			n2 := &node{blockID: 2}
			n1 := &node{blockID: 1, next: n2}
			n0 := &node{blockID: 0, next: n1}
			if fr := m.buildFused(n0); len(fr.steps) != 0 {
				t.Errorf("fork-headed run fused %d steps, want 0", len(fr.steps))
			}
			if fr := m.buildFused(n1); len(fr.steps) != 2 || fr.ops != 2 {
				t.Errorf("pure tail fused %d steps / %d ops, want 2 / 2", len(fr.steps), fr.ops)
			}
		})
	}
}
