package rt_test

import (
	"reflect"
	"testing"

	"facile/internal/core"
	"facile/internal/rt"
)

// runBoth compiles src and runs it twice — without and with memoization —
// for the given number of steps, returning the two machines. The externs
// map installs fresh host functions per run.
func runBoth(t *testing.T, src string, steps uint64, args []int64,
	mkExterns func(m *rt.Machine)) (plain, memo *rt.Machine) {
	t.Helper()
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	run := func(memoize bool) *rt.Machine {
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: memoize})
		if mkExterns != nil {
			mkExterns(m)
		}
		if len(args) > 0 {
			if err := m.SetIntArgs(args...); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Run(steps); err != nil {
			t.Fatalf("run(memo=%v): %v", memoize, err)
		}
		return m
	}
	return run(false), run(true)
}

const counterSrc = `
val counter = 0;
extern emit(1);

fun main(x) {
    counter = counter + 1;      // dynamic: globals are dynamic at entry
    val y = x + 1;              // run-time static
    if (y > 9) { y = 0; }
    emit(y);                    // dynamic external call
    set_args(y);
}
`

func TestMemoEquivalenceCounter(t *testing.T) {
	var outP, outM []int64
	mk := func(out *[]int64) func(m *rt.Machine) {
		return func(m *rt.Machine) {
			m.RegisterExtern("emit", func(a []int64) int64 {
				*out = append(*out, a[0])
				return 0
			})
		}
	}
	sim, err := core.CompileSource(counterSrc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(memo bool, out *[]int64) *rt.Machine {
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: memo})
		mk(out)(m)
		if err := m.SetIntArgs(0); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(100); err != nil {
			t.Fatal(err)
		}
		return m
	}
	p := run(false, &outP)
	m := run(true, &outM)
	if !reflect.DeepEqual(outP, outM) {
		t.Fatalf("emit sequences differ:\n  plain %v\n  memo  %v", outP, outM)
	}
	cp, _ := p.Global("counter")
	cm, _ := m.Global("counter")
	if cp != 100 || cm != 100 {
		t.Fatalf("counters: plain %d, memo %d, want 100", cp, cm)
	}
	st := m.Stats()
	if st.Replays == 0 {
		t.Fatalf("no replays: %+v", st)
	}
	// 10 distinct keys (x in 0..9); everything after the first lap replays.
	if st.SlowSteps != 10 {
		t.Fatalf("slow steps = %d, want 10 (one per distinct key)", st.SlowSteps)
	}
}

func TestDynamicBranchForksAndRecovery(t *testing.T) {
	// The branch condition depends on a dynamic value (the extern), so the
	// action cache must fork per outcome and recover on new values.
	src := `
val acc = 0;
extern next(0);

fun main(step) {
    val v = next();           // dynamic
    if (v % 3 == 0) {
        acc = acc + 100;
    } else {
        if (v % 3 == 1) { acc = acc + 10; }
        else            { acc = acc + 1; }
    }
    set_args(step + 1);
}
`
	seq := func() func([]int64) int64 {
		i := int64(0)
		return func([]int64) int64 {
			i++
			return i * i % 7
		}
	}
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(memo bool) *rt.Machine {
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: memo})
		m.RegisterExtern("next", seq())
		if err := m.SetIntArgs(0); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(500); err != nil {
			t.Fatal(err)
		}
		return m
	}
	p, m := run(false), run(true)
	ap, _ := p.Global("acc")
	am, _ := m.Global("acc")
	if ap != am {
		t.Fatalf("acc: plain %d, memo %d", ap, am)
	}
	// step increments forever -> keys never repeat... they do not, so this
	// program memoizes nothing useful; flip to constant key below.
	_ = m
}

func TestRecoveryOnDynamicResults(t *testing.T) {
	// Constant key (set_args(0)): one cache entry, forks on the dynamic
	// branch, mid-step recoveries when a new outcome appears.
	src := `
val acc = 0;
val calls = 0;
extern next(0);

fun main(k) {
    calls = calls + 1;
    val v = next();
    if (v > 5) { acc = acc + v; }
    else { acc = acc - v; }
    set_args(0);
}
`
	vals := []int64{1, 7, 1, 7, 9, 1, 9, 7, 3, 3, 1, 7}
	mkNext := func() func([]int64) int64 {
		i := 0
		return func([]int64) int64 {
			v := vals[i%len(vals)]
			i++
			return v
		}
	}
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(memo bool) *rt.Machine {
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: memo})
		m.RegisterExtern("next", mkNext())
		if err := m.SetIntArgs(0); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(uint64(len(vals) * 3)); err != nil {
			t.Fatal(err)
		}
		return m
	}
	p, m := run(false), run(true)
	ap, _ := p.Global("acc")
	am, _ := m.Global("acc")
	if ap != am {
		t.Fatalf("acc: plain %d, memo %d", ap, am)
	}
	cp, _ := p.Global("calls")
	cm, _ := m.Global("calls")
	if cp != cm {
		t.Fatalf("calls: plain %d, memo %d", cp, cm)
	}
	st := m.Stats()
	if st.Misses == 0 {
		t.Fatalf("expected mid-step recoveries, got %+v", st)
	}
	if st.Replays == 0 {
		t.Fatalf("expected replays, got %+v", st)
	}
}

func TestQueueParameterIsKey(t *testing.T) {
	// The queue's contents distinguish cache entries; the same queue state
	// replays.
	src := `
val work = 0;
extern tick(1);

fun main(q: queue(4, 2), step) {
    if (q?full()) {
        val a = q?front(0);
        val b = q?front(1);
        q?pop();
        work = work + 1;        // dynamic
        tick(a * 100 + b);      // a,b are rt-static placeholders
    }
    q?push(step, step * step % 5);
    set_args(q, step + 1 - (step / 4) * 4 - (step == 3) * 0);
    // keep the integer arg cycling 0..3 so keys repeat
}
`
	// simpler: rewrite set_args with modulo
	src = `
val work = 0;
extern tick(1);

fun main(q: queue(4, 2), step) {
    if (q?full()) {
        val a = q?front(0);
        val b = q?front(1);
        q?pop();
        work = work + 1;
        tick(a * 100 + b);
    }
    q?push(step, step * step % 5);
    set_args(q, (step + 1) % 4);
}
`
	var outP, outM []int64
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(memo bool, out *[]int64) *rt.Machine {
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: memo})
		m.RegisterExtern("tick", func(a []int64) int64 {
			*out = append(*out, a[0])
			return 0
		})
		if err := m.SetIntArgs(0); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(200); err != nil {
			t.Fatal(err)
		}
		return m
	}
	p := run(false, &outP)
	m := run(true, &outM)
	if !reflect.DeepEqual(outP, outM) {
		t.Fatalf("tick sequences differ: %v vs %v", outP, outM)
	}
	wp, _ := p.Global("work")
	wm, _ := m.Global("work")
	if wp != wm || wp == 0 {
		t.Fatalf("work: plain %d, memo %d", wp, wm)
	}
	if m.Stats().Replays == 0 {
		t.Fatal("queue-keyed steps never replayed")
	}
}

func TestLiftedGlobals(t *testing.T) {
	// g is assigned a run-time static value and read in the NEXT step
	// (where it is dynamic): end-of-step lifting must materialize it
	// during replay.
	src := `
val g = 0;
val sum = 0;
extern obs(1);

fun main(x) {
    sum = sum + g;      // dynamic read of last step's lifted value
    obs(sum);
    g = x * 2;          // rt-static write; must be lifted at step end
    set_args((x + 1) % 3);
}
`
	var outP, outM []int64
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(memo bool, out *[]int64) *rt.Machine {
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: memo})
		m.RegisterExtern("obs", func(a []int64) int64 {
			*out = append(*out, a[0])
			return 0
		})
		if err := m.SetIntArgs(0); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(60); err != nil {
			t.Fatal(err)
		}
		return m
	}
	run(false, &outP)
	m := run(true, &outM)
	if !reflect.DeepEqual(outP, outM) {
		t.Fatalf("lift mismatch:\n  plain %v\n  memo  %v", outP, outM)
	}
	if m.Stats().Replays == 0 {
		t.Fatal("no replays")
	}
}

func TestStopPredicate(t *testing.T) {
	src := `
val n = 0;
fun main(x) {
    n = n + 1;
    set_args(0);
}
`
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(core.NullText(), rt.Options{Memoize: true})
	if err := m.SetIntArgs(0); err != nil {
		t.Fatal(err)
	}
	m.SetStop(func(m *rt.Machine) bool {
		v, _ := m.Global("n")
		return v >= 25
	})
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Global("n"); v != 25 {
		t.Fatalf("n = %d, want 25", v)
	}
	if !m.Done() {
		t.Fatal("machine not done")
	}
}

func TestCacheCapClears(t *testing.T) {
	src := `
val acc = 0;
fun main(x) {
    acc = acc + x;
    set_args((x + 1) % 64);
}
`
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(core.NullText(), rt.Options{Memoize: true, CacheCapBytes: 2048})
	if err := m.SetIntArgs(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(2000); err != nil {
		t.Fatal(err)
	}
	if m.Stats().CacheClears == 0 {
		t.Fatalf("expected cache clears: %+v", m.Stats())
	}
	if v, _ := m.Global("acc"); v == 0 {
		t.Fatal("program did not run")
	}
}

func TestUnregisteredExternPanicsClearly(t *testing.T) {
	sim, err := core.CompileSource(`
extern missing(0);
fun main(x) { missing(); set_args(x); }
`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(core.NullText(), rt.Options{})
	if err := m.SetIntArgs(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected a panic naming the unregistered extern")
		}
	}()
	_ = m.Run(1)
}

func TestRegisterExternUnknownName(t *testing.T) {
	sim, err := core.CompileSource(`fun main(x) { set_args(x); }`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(core.NullText(), rt.Options{})
	if err := m.RegisterExtern("nope", func([]int64) int64 { return 0 }); err == nil {
		t.Fatal("expected error for undeclared extern")
	}
}

func TestSetIntArgsArity(t *testing.T) {
	sim, err := core.CompileSource(`fun main(a, b) { set_args(a, b); }`, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(core.NullText(), rt.Options{})
	if err := m.SetIntArgs(1); err == nil {
		t.Fatal("expected arity error")
	}
}
