package rt_test

import (
	"reflect"
	"testing"

	"facile/internal/faults"
	"facile/internal/rt"
)

// The compiled closure-chain replay substrate must be bit-identical to the
// bytecode-at-a-time interpreter: same simulated results AND same fault /
// miss / degradation counters, under clean runs, self-checking, a starved
// replay watchdog (fused runs must trip at the identical node count), and
// every injected corruption (faults mid-superinstruction must detect and
// recover exactly as interpreted replay does).
func TestCompiledReplayMatchesInterp(t *testing.T) {
	variants := []struct {
		name string
		opt  func() rt.Options
	}{
		{"clean", func() rt.Options { return rt.Options{Memoize: true} }},
		{"selfcheck", func() rt.Options { return rt.Options{Memoize: true, SelfCheck: 0.5} }},
		{"watchdog-starved", func() rt.Options { return rt.Options{Memoize: true, MaxReplayNodes: 2} }},
		{"inject-all", func() rt.Options {
			return rt.Options{Memoize: true, Inject: faults.NewInjector(7, 5,
				faults.InjBreakChain, faults.InjFlipFork, faults.InjTruncate, faults.InjGenBump)}
		}},
	}
	for _, w := range rtFaultWorkloads {
		for _, v := range variants {
			t.Run(w.name+"/"+v.name, func(t *testing.T) {
				oi := v.opt()
				oi.ReplayInterp = true
				mi, outI := runFaultWorkload(t, w.src, oi)
				mc, outC := runFaultWorkload(t, w.src, v.opt())
				sameResults(t, mi, mc, outI, outC)
				si, sc := mi.Stats(), mc.Stats()
				if !reflect.DeepEqual(si, sc) {
					t.Errorf("stats diverge:\n  interp   %+v\n  compiled %+v", si, sc)
				}
				ki, ai := mi.DebugState()
				kc, ac := mc.DebugState()
				if ki != kc || !reflect.DeepEqual(ai, ac) {
					t.Errorf("final step state diverges: interp (%q, %v) vs compiled (%q, %v)",
						ki, ai, kc, ac)
				}
			})
		}
	}
}
