package runcfg

// UarchSpec is the JSON wire format for per-run micro-architecture
// overrides: the design-space axes a sweep varies (cache geometry, TLB
// size, branch-predictor tables) plus the core parameters. Every field
// follows zero-means-default semantics — an omitted or zero field keeps
// the uarch.Default() value — so a spec names only what it changes and
// two specs that produce the same effective configuration are
// interchangeable.
//
// The spec splits into two specialization classes, which is what makes
// design-space sweeps cheap:
//
//   - Core parameters (widths, window, functional units, mispredict
//     penalty) are compiled into the memoized action sequences: the slow
//     simulator's schedule depends on them, and replay trusts the recorded
//     inter-action cycle deltas. Caches built under different core
//     parameters are NOT interchangeable; CoreFragment captures this
//     subset for the lineage key.
//
//   - Memory-system and predictor parameters (L1/L2 geometry, TLB,
//     gshare/BTB/RAS sizes) configure external dynamic components whose
//     results (latencies, predictions) are verified action-by-action
//     during replay. A warm cache built under one memory configuration
//     adopted into another self-corrects through the ordinary mid-step
//     miss/recovery path, so sweep points that differ only in these axes
//     share one cache lineage — the reason consecutive sweep points warm-
//     start off each other.

import (
	"fmt"

	"facile/internal/arch/bpred"
	"facile/internal/arch/cache"
	"facile/internal/arch/uarch"
)

// CacheSpec overrides one cache level's geometry (0 = keep default).
type CacheSpec struct {
	SizeBytes int `json:"size_bytes,omitempty"`
	LineBytes int `json:"line_bytes,omitempty"`
	Assoc     int `json:"assoc,omitempty"`
}

// PredSpec overrides the branch predictor's table sizes (0 = keep
// default).
type PredSpec struct {
	CounterBits int `json:"counter_bits,omitempty"`
	BTBBits     int `json:"btb_bits,omitempty"`
	RASDepth    int `json:"ras_depth,omitempty"`
}

// UarchSpec is the full override set. See the package comment above for
// the zero-means-default and specialization-class semantics.
type UarchSpec struct {
	// Core (memoization-relevant: changes the cache lineage).
	FetchWidth        int `json:"fetch_width,omitempty"`
	CommitWidth       int `json:"commit_width,omitempty"`
	Window            int `json:"window,omitempty"`
	IntALUs           int `json:"int_alus,omitempty"`
	IntMuls           int `json:"int_muls,omitempty"`
	FPUs              int `json:"fpus,omitempty"`
	LSUs              int `json:"lsus,omitempty"`
	MispredictPenalty int `json:"mispredict_penalty,omitempty"`

	// Memory system (external, replay-verified: lineage-neutral).
	L1I        *CacheSpec `json:"l1i,omitempty"`
	L1D        *CacheSpec `json:"l1d,omitempty"`
	L2         *CacheSpec `json:"l2,omitempty"`
	MemLat     int        `json:"mem_lat,omitempty"`
	TLBEntries int        `json:"tlb_entries,omitempty"`
	TLBMissLat int        `json:"tlb_miss_lat,omitempty"`

	// Branch predictor (external, replay-verified: lineage-neutral).
	Pred *PredSpec `json:"pred,omitempty"`
}

// IsZero reports whether the spec overrides nothing (nil-safe).
func (s *UarchSpec) IsZero() bool {
	return s == nil || *s == UarchSpec{} ||
		(s.withoutPointers() == UarchSpec{} && s.L1I.isZero() && s.L1D.isZero() && s.L2.isZero() && s.Pred.isZero())
}

func (s *UarchSpec) withoutPointers() UarchSpec {
	c := *s
	c.L1I, c.L1D, c.L2, c.Pred = nil, nil, nil, nil
	return c
}

func (c *CacheSpec) isZero() bool { return c == nil || *c == CacheSpec{} }
func (p *PredSpec) isZero() bool  { return p == nil || *p == PredSpec{} }

// Clone returns an independent deep copy (nil-safe).
func (s *UarchSpec) Clone() *UarchSpec {
	if s == nil {
		return nil
	}
	c := *s
	if s.L1I != nil {
		v := *s.L1I
		c.L1I = &v
	}
	if s.L1D != nil {
		v := *s.L1D
		c.L1D = &v
	}
	if s.L2 != nil {
		v := *s.L2
		c.L2 = &v
	}
	if s.Pred != nil {
		v := *s.Pred
		c.Pred = &v
	}
	return &c
}

func (c *CacheSpec) apply(dst *cache.Config) {
	if c == nil {
		return
	}
	if c.SizeBytes != 0 {
		dst.SizeBytes = c.SizeBytes
	}
	if c.LineBytes != 0 {
		dst.LineBytes = c.LineBytes
	}
	if c.Assoc != 0 {
		dst.Assoc = c.Assoc
	}
}

func (p *PredSpec) apply(dst *bpred.Config) {
	if p == nil {
		return
	}
	if p.CounterBits != 0 {
		dst.CounterBits = p.CounterBits
	}
	if p.BTBBits != 0 {
		dst.BTBBits = p.BTBBits
	}
	if p.RASDepth != 0 {
		dst.RASDepth = p.RASDepth
	}
}

// Apply overlays the spec's non-zero fields onto base and returns the
// effective configuration (nil-safe: a nil spec returns base unchanged).
// The result is NOT validated; callers run uarch.Config.Validate before
// building an engine.
func (s *UarchSpec) Apply(base uarch.Config) uarch.Config {
	if s == nil {
		return base
	}
	set := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	set(&base.FetchWidth, s.FetchWidth)
	set(&base.CommitWidth, s.CommitWidth)
	set(&base.Window, s.Window)
	set(&base.IntALUs, s.IntALUs)
	set(&base.IntMuls, s.IntMuls)
	set(&base.FPUs, s.FPUs)
	set(&base.LSUs, s.LSUs)
	if s.MispredictPenalty != 0 {
		base.MispredictPenalty = uint64(s.MispredictPenalty)
	}
	s.L1I.apply(&base.Mem.L1I)
	s.L1D.apply(&base.Mem.L1D)
	s.L2.apply(&base.Mem.L2)
	if s.MemLat != 0 {
		base.Mem.MemLat = uint64(s.MemLat)
	}
	if s.TLBEntries != 0 {
		base.Mem.TLB.Entries = s.TLBEntries
	}
	if s.TLBMissLat != 0 {
		base.Mem.TLB.MissLat = uint64(s.TLBMissLat)
	}
	s.Pred.apply(&base.Pred)
	return base
}

// Effective resolves the spec against the default micro-architecture.
func (s *UarchSpec) Effective() uarch.Config { return s.Apply(uarch.Default()) }

// CoreFragment canonicalizes the memoization-relevant subset of a
// configuration — the parameters the recorded action schedules depend on.
// Two runs whose fragments differ must not share an action cache; runs
// that differ only elsewhere (cache geometry, TLB, predictor tables) may,
// because those components' results are verified during replay.
func CoreFragment(u uarch.Config) string {
	return fmt.Sprintf("fw=%d,cw=%d,win=%d,alu=%d,mul=%d,fpu=%d,lsu=%d,mp=%d",
		u.FetchWidth, u.CommitWidth, u.Window,
		u.IntALUs, u.IntMuls, u.FPUs, u.LSUs, u.MispredictPenalty)
}

// SetParam sets one named design-space parameter on the spec. The
// parameter vocabulary is the sweep axis namespace:
//
//	l1i.size_kb   l1i.size_bytes   l1i.line   l1i.assoc     (same for l1d, l2)
//	tlb.entries   tlb.miss_lat     mem.lat
//	pred.counter_bits   pred.btb_bits   pred.ras_depth
//	core.fetch_width  core.commit_width  core.window  core.int_alus
//	core.int_muls     core.fpus          core.lsus    core.mispredict_penalty
func (s *UarchSpec) SetParam(name string, value int64) error {
	v := int(value)
	cacheFor := func(p **CacheSpec) *CacheSpec {
		if *p == nil {
			*p = &CacheSpec{}
		}
		return *p
	}
	switch name {
	case "l1i.size_kb":
		cacheFor(&s.L1I).SizeBytes = v << 10
	case "l1i.size_bytes":
		cacheFor(&s.L1I).SizeBytes = v
	case "l1i.line":
		cacheFor(&s.L1I).LineBytes = v
	case "l1i.assoc":
		cacheFor(&s.L1I).Assoc = v
	case "l1d.size_kb":
		cacheFor(&s.L1D).SizeBytes = v << 10
	case "l1d.size_bytes":
		cacheFor(&s.L1D).SizeBytes = v
	case "l1d.line":
		cacheFor(&s.L1D).LineBytes = v
	case "l1d.assoc":
		cacheFor(&s.L1D).Assoc = v
	case "l2.size_kb":
		cacheFor(&s.L2).SizeBytes = v << 10
	case "l2.size_bytes":
		cacheFor(&s.L2).SizeBytes = v
	case "l2.line":
		cacheFor(&s.L2).LineBytes = v
	case "l2.assoc":
		cacheFor(&s.L2).Assoc = v
	case "tlb.entries":
		s.TLBEntries = v
	case "tlb.miss_lat":
		s.TLBMissLat = v
	case "mem.lat":
		s.MemLat = v
	case "pred.counter_bits":
		s.predFor().CounterBits = v
	case "pred.btb_bits":
		s.predFor().BTBBits = v
	case "pred.ras_depth":
		s.predFor().RASDepth = v
	case "core.fetch_width":
		s.FetchWidth = v
	case "core.commit_width":
		s.CommitWidth = v
	case "core.window":
		s.Window = v
	case "core.int_alus":
		s.IntALUs = v
	case "core.int_muls":
		s.IntMuls = v
	case "core.fpus":
		s.FPUs = v
	case "core.lsus":
		s.LSUs = v
	case "core.mispredict_penalty":
		s.MispredictPenalty = v
	default:
		return fmt.Errorf("runcfg: unknown uarch parameter %q", name)
	}
	return nil
}

func (s *UarchSpec) predFor() *PredSpec {
	if s.Pred == nil {
		s.Pred = &PredSpec{}
	}
	return s.Pred
}

// Params lists the valid SetParam names, for error messages and docs.
func Params() []string {
	return []string{
		"l1i.size_kb", "l1i.size_bytes", "l1i.line", "l1i.assoc",
		"l1d.size_kb", "l1d.size_bytes", "l1d.line", "l1d.assoc",
		"l2.size_kb", "l2.size_bytes", "l2.line", "l2.assoc",
		"tlb.entries", "tlb.miss_lat", "mem.lat",
		"pred.counter_bits", "pred.btb_bits", "pred.ras_depth",
		"core.fetch_width", "core.commit_width", "core.window",
		"core.int_alus", "core.int_muls", "core.fpus", "core.lsus",
		"core.mispredict_penalty",
	}
}
