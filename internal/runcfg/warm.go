package runcfg

// Warm-cache persistence glue: the serve layer deals in the opaque
// WarmCache interface, the cache store deals in bytes. These helpers
// bridge the two, dispatching on the concrete engine family, and supply
// the lineage fingerprint that invalidates persisted caches when the
// simulator they were built by changes.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/uarch"
	"facile/internal/facsim"
	"facile/internal/rt"
	"facile/internal/snapshot"
)

// Warm-cache payload family tags.
const (
	warmFamFastsim = "fastsim"
	warmFamRT      = "rt"
)

// EncodeWarmCache serializes a detached cache into a self-describing
// payload (family tag + engine-specific stream). The walk is read-only:
// the cache stays parked and adoptable afterwards.
func EncodeWarmCache(wc WarmCache) ([]byte, error) {
	w := snapshot.NewWriter()
	switch c := wc.(type) {
	case *fastsim.WarmCache:
		w.String(warmFamFastsim)
		c.Save(w)
	case *rt.WarmCache:
		w.String(warmFamRT)
		c.Save(w)
	default:
		return nil, fmt.Errorf("runcfg: cannot persist warm cache of type %T", wc)
	}
	return w.Payload(), nil
}

// DecodeWarmCache reconstructs a detached cache from EncodeWarmCache's
// payload. Errors mean the payload is not adoptable (unknown family,
// format skew, structural corruption); callers degrade to a cold start.
func DecodeWarmCache(payload []byte) (WarmCache, error) {
	r := snapshot.NewReader(payload)
	fam := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch fam {
	case warmFamFastsim:
		wc, err := fastsim.LoadWarmCache(r)
		if err != nil {
			return nil, err
		}
		return wc, nil
	case warmFamRT:
		wc, err := rt.LoadWarmCache(r)
		if err != nil {
			return nil, err
		}
		return wc, nil
	default:
		return nil, fmt.Errorf("runcfg: unknown warm-cache family %q", fam)
	}
}

// CacheFingerprint identifies the simulator an engine name resolves to,
// for persisted-cache invalidation: a stored record whose fingerprint
// differs from the current build's was built by a different simulator
// (edited Facile description, changed µarch defaults, bumped cache
// layout) and must not be adopted. Engines that build no shareable cache
// fingerprint to "".
func CacheFingerprint(engine string) string {
	switch engine {
	case EngineFastsim:
		h := sha256.Sum256([]byte(fmt.Sprintf("fastsim|warm-format=%d|uarch=%+v",
			fastsim.WarmFormatVersion, uarch.Default())))
		return hex.EncodeToString(h[:])[:16]
	case EngineFacFunc, EngineFacInOrder, EngineFacOOO:
		fp, _ := facsim.DescriptionFingerprint(engine)
		return fp
	}
	return ""
}
