package runcfg

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"facile/internal/arch/uarch"
	"facile/internal/isa/loader"
	"facile/internal/workloads"
)

func TestUarchSpecZeroMeansDefault(t *testing.T) {
	def := uarch.Default()
	var s *UarchSpec
	if got := s.Apply(def); got.FetchWidth != def.FetchWidth || got.Mem.L1D != def.Mem.L1D {
		t.Fatalf("nil spec changed the config: %+v", got)
	}
	if !s.IsZero() {
		t.Fatal("nil spec not zero")
	}
	empty := &UarchSpec{L1D: &CacheSpec{}}
	if !empty.IsZero() {
		t.Fatal("empty-override spec not zero")
	}
	if got := empty.Effective(); got.Mem.L1D != def.Mem.L1D {
		t.Fatalf("empty cache override changed L1D: %+v", got.Mem.L1D)
	}
}

func TestUarchSpecApplyOverlays(t *testing.T) {
	def := uarch.Default()
	spec := &UarchSpec{
		Window:     64,
		L1D:        &CacheSpec{SizeBytes: 8 << 10},
		TLBEntries: 16,
		Pred:       &PredSpec{BTBBits: 8},
	}
	got := spec.Apply(def)
	if got.Window != 64 {
		t.Fatalf("window = %d", got.Window)
	}
	if got.Mem.L1D.SizeBytes != 8<<10 || got.Mem.L1D.LineBytes != def.Mem.L1D.LineBytes {
		t.Fatalf("L1D overlay wrong: %+v", got.Mem.L1D)
	}
	if got.Mem.TLB.Entries != 16 || got.Mem.TLB.MissLat != def.Mem.TLB.MissLat {
		t.Fatalf("TLB overlay wrong: %+v", got.Mem.TLB)
	}
	if got.Pred.BTBBits != 8 || got.Pred.CounterBits != def.Pred.CounterBits {
		t.Fatalf("pred overlay wrong: %+v", got.Pred)
	}
	// Untouched axes keep their defaults.
	if got.FetchWidth != def.FetchWidth || got.Mem.L2 != def.Mem.L2 {
		t.Fatal("unrelated fields changed")
	}
}

func TestUarchSpecSetParam(t *testing.T) {
	for _, name := range Params() {
		var s UarchSpec
		if err := s.SetParam(name, 8); err != nil {
			t.Fatalf("SetParam(%q): %v", name, err)
		}
		if s.IsZero() {
			t.Fatalf("SetParam(%q) left the spec zero", name)
		}
	}
	var s UarchSpec
	if err := s.SetParam("l1d.size_kb", 64); err != nil {
		t.Fatal(err)
	}
	if s.L1D.SizeBytes != 64<<10 {
		t.Fatalf("size_kb scaling: %d", s.L1D.SizeBytes)
	}
	if err := s.SetParam("bogus.axis", 1); err == nil || !strings.Contains(err.Error(), "bogus.axis") {
		t.Fatalf("unknown param error: %v", err)
	}
}

func TestUarchSpecJSONRoundTrip(t *testing.T) {
	in := []byte(`{"window":48,"l1d":{"size_bytes":16384,"assoc":4},"tlb_entries":32}`)
	var s UarchSpec
	if err := json.Unmarshal(in, &s); err != nil {
		t.Fatal(err)
	}
	got := s.Effective()
	if got.Window != 48 || got.Mem.L1D.SizeBytes != 16384 || got.Mem.L1D.Assoc != 4 || got.Mem.TLB.Entries != 32 {
		t.Fatalf("decoded effective config: %+v", got)
	}
	out, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	// omitempty keeps the wire form minimal: no default-valued noise.
	if strings.Contains(string(out), "fetch_width") || strings.Contains(string(out), "l2") {
		t.Fatalf("marshal leaked zero fields: %s", out)
	}
}

func TestCoreFragmentTracksOnlyCoreParams(t *testing.T) {
	base := CoreFragment(uarch.Default())
	mem := (&UarchSpec{L1D: &CacheSpec{SizeBytes: 4 << 10}, TLBEntries: 8, Pred: &PredSpec{BTBBits: 4}}).Effective()
	if CoreFragment(mem) != base {
		t.Fatal("memory/pred axes leaked into the core fragment")
	}
	core := (&UarchSpec{Window: 64}).Effective()
	if CoreFragment(core) == base {
		t.Fatal("core axis did not change the fragment")
	}
}

func testProg(t *testing.T) *loader.Program {
	t.Helper()
	w, err := workloads.Get("129.compress", 1)
	if err != nil {
		t.Fatal(err)
	}
	return w.Prog
}

func TestNewRejectsInvalidUarch(t *testing.T) {
	prog := testProg(t)
	bad := (&UarchSpec{L1D: &CacheSpec{SizeBytes: 3000}}).Effective()
	_, err := New(prog, Config{Engine: EngineOOO, Uarch: &bad})
	var ge *uarch.GeometryError
	if !errors.As(err, &ge) {
		t.Fatalf("want GeometryError, got %v", err)
	}
	// The same config passes when only valid axes are overridden.
	good := (&UarchSpec{L1D: &CacheSpec{SizeBytes: 4 << 10}}).Effective()
	if _, err := New(prog, Config{Engine: EngineOOO, Uarch: &good}); err != nil {
		t.Fatalf("valid override rejected: %v", err)
	}
}

func TestNewRejectsUarchOnFunctionalEngines(t *testing.T) {
	prog := testProg(t)
	u := uarch.Default()
	for _, eng := range []string{EngineFunc, EngineFacFunc} {
		if _, err := New(prog, Config{Engine: eng, Uarch: &u}); err == nil {
			t.Fatalf("engine %s accepted a uarch override", eng)
		}
	}
	// Nil override is fine everywhere.
	if _, err := New(prog, Config{Engine: EngineFunc}); err != nil {
		t.Fatal(err)
	}
}

func TestTimingEnginesHonorUarch(t *testing.T) {
	prog := testProg(t)
	u := (&UarchSpec{L1D: &CacheSpec{SizeBytes: 4 << 10}}).Effective()
	for _, eng := range []string{EngineOOO, EngineFastsim, EngineFacInOrder, EngineFacOOO} {
		r, err := New(prog, Config{Engine: eng, Uarch: &u})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if err := r.Run(0); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !r.Done() {
			t.Fatalf("%s did not finish", eng)
		}
	}
}
