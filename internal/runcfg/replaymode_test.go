package runcfg

import (
	"reflect"
	"strings"
	"testing"

	"facile/internal/parsim"
	"facile/internal/workloads"
)

func TestReplayModeValidation(t *testing.T) {
	w, err := workloads.Get("129.compress", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"", ReplayCompiled, ReplayInterp} {
		if _, err := New(w.Prog, Config{Engine: EngineFastsim, Replay: mode}); err != nil {
			t.Errorf("replay mode %q rejected: %v", mode, err)
		}
	}
	_, err = New(w.Prog, Config{Engine: EngineFastsim, Replay: "threaded"})
	if err == nil || !strings.Contains(err.Error(), "unknown replay mode") {
		t.Errorf("bogus replay mode accepted (err = %v)", err)
	}
}

// TestReplayModesBitIdentical runs the full workload suite through both
// memoizing engines under both replay dispatchers and requires every
// deterministic field — results, outputs, and the complete unified stats
// (replays, misses, faults, degradations, cache accounting) — to be
// bit-identical. This is the acceptance property of the compiled replay
// substrate: it may only be faster, never different.
func TestReplayModesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism sweep skipped in -short mode")
	}
	engines := []string{EngineFastsim, EngineFacOOO}
	names := workloads.Names()
	type job struct{ engine, name string }
	var jobs []job
	for _, eng := range engines {
		for _, n := range names {
			jobs = append(jobs, job{eng, n})
		}
	}
	errs := make([]string, len(jobs))
	err := parsim.ForEach(len(jobs), 4, func(i int) error {
		j := jobs[i]
		w, err := workloads.Get(j.name, 1)
		if err != nil {
			return err
		}
		run := func(mode string) (Result, Stats, error) {
			r, err := New(w.Prog, Config{Engine: j.engine, Memoize: true, Replay: mode})
			if err != nil {
				return Result{}, Stats{}, err
			}
			if err := r.Run(0); err != nil {
				return Result{}, Stats{}, err
			}
			return r.Result(), r.Stats(), nil
		}
		ri, si, err := run(ReplayInterp)
		if err != nil {
			return err
		}
		rc, sc, err := run(ReplayCompiled)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(ri, rc) {
			errs[i] = "results diverge"
		} else if !reflect.DeepEqual(si, sc) {
			errs[i] = "stats diverge"
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != "" {
			t.Errorf("%s/%s: %s between interp and compiled replay", jobs[i].engine, jobs[i].name, e)
		}
	}
}
