package runcfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// LineageKey identifies a cache lineage: runs with equal keys execute the
// same program under the same specialization-relevant configuration, so
// their action caches are interchangeable. The job server and the sweep
// subsystem both key warm-cache sharing on it, which is why it lives here
// rather than in either of them.
//
// For the hand-coded fast simulator the key folds in the core scheduling
// parameters (CoreFragment): those are baked into the memoized action
// sequences. Memory-system and predictor axes are deliberately excluded —
// their per-action results are verified during replay and self-correct
// through miss recovery, so caches built under different cache/TLB/
// predictor geometries remain exact and interchangeable. The fac-*
// engines' core parameters live in the Facile descriptions themselves
// (covered by the engine name), so no fragment applies.
func LineageKey(bench string, scale int, asmSrc, engine string, memoize bool, capBytes uint64, u *UarchSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "bench=%s|scale=%d|", bench, scale)
	if asmSrc != "" {
		src := sha256.Sum256([]byte(asmSrc))
		fmt.Fprintf(h, "asm=%x|", src)
	}
	fmt.Fprintf(h, "engine=%s|memo=%v|cap=%d", engine, memoize, capBytes)
	if engine == EngineFastsim {
		fmt.Fprintf(h, "|core=%s", CoreFragment(u.Effective()))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// LineageHash maps a lineage key (or any routing label, such as a
// consistent-hash virtual-node name) onto the 64-bit hash space the
// fleet router's ring is built over. It is exported here, next to
// LineageKey, because placement must be a pure function of the lineage
// identity: every router process, on any machine, must hash the same
// key to the same ring position or warm affinity silently breaks.
func LineageHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}
