// Package runcfg is the shared engine-selection and run-setup layer: it
// maps an engine name plus a common option set onto any of the simulators
// in this repository and drives them through one Runner interface. The
// fsim command, the evaluation harness (internal/bench), and the job
// server (internal/serve) all construct engines through this package
// instead of re-implementing the per-engine switch.
//
// A Runner exposes cumulative budgets (Run(target) advances until overall
// progress reaches target, not for target more units), so callers can
// interleave checkpoints, cancellation checks, and observability sampling
// between chunks without engine-specific loops.
package runcfg

import (
	"fmt"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/funcsim"
	"facile/internal/arch/ooo"
	"facile/internal/arch/uarch"
	"facile/internal/facsim"
	"facile/internal/faults"
	"facile/internal/isa/loader"
	"facile/internal/lang/vet"
	"facile/internal/obs"
	"facile/internal/rt"
	"facile/internal/snapshot"
)

// Engine names accepted by New. The fac-* names double as their snapshot
// kinds (facsim.KindFunctional etc).
const (
	EngineFunc       = "func"
	EngineOOO        = "ooo"
	EngineFastsim    = "fastsim"
	EngineFacFunc    = "fac-func"
	EngineFacInOrder = "fac-inorder"
	EngineFacOOO     = "fac-ooo"
)

// Replay-mode names accepted by Config.Replay. Compiled is the default:
// the memoizing engines replay recorded actions through the specialized
// closure-chain substrate (threaded dispatch + superinstruction fusion);
// interp selects the action-at-a-time interpreter, kept as an escape hatch
// and as the differential-testing reference (the two are bit-identical).
const (
	ReplayCompiled = "compiled"
	ReplayInterp   = "interp"
)

// ReplayModes lists the valid replay-mode names in display order.
func ReplayModes() []string { return []string{ReplayCompiled, ReplayInterp} }

// Engines lists the valid engine names in display order.
func Engines() []string {
	return []string{EngineFunc, EngineOOO, EngineFastsim,
		EngineFacFunc, EngineFacInOrder, EngineFacOOO}
}

// ValidEngine reports whether name names a simulator.
func ValidEngine(name string) bool {
	for _, e := range Engines() {
		if e == name {
			return true
		}
	}
	return false
}

// Config is the engine-independent option set. Fields that an engine does
// not support (Memoize on the functional simulator, say) are ignored.
type Config struct {
	Engine        string
	Memoize       bool
	CacheCapBytes uint64  // action cache cap (0 = unlimited)
	SelfCheck     float64 // fraction of replayable steps re-verified slow
	Inject        *faults.Injector

	// Replay selects the memoizing engines' fast-path dispatch:
	// ReplayCompiled (also the "" default) or ReplayInterp. Engines
	// without an action cache ignore it.
	Replay string

	// Uarch overrides the simulated micro-architecture for the timing
	// engines (nil = uarch.Default()). New validates the geometry and
	// rejects overrides on purely functional engines, where the core
	// configuration has no meaning.
	Uarch *uarch.Config

	Obs         *obs.Recorder
	SampleEvery uint64
}

// EffectiveUarch resolves the configuration the timing engines will use.
func (c Config) EffectiveUarch() uarch.Config {
	if c.Uarch != nil {
		return *c.Uarch
	}
	return uarch.Default()
}

// Memoizing reports whether this configuration builds an action cache.
func (c Config) Memoizing() bool {
	switch c.Engine {
	case EngineFastsim, EngineFacFunc, EngineFacInOrder, EngineFacOOO:
		return c.Memoize || c.SelfCheck > 0
	}
	return false
}

// Stats is the unified memoization-counter snapshot across engines. For
// engines without an action cache every field is zero.
type Stats struct {
	SlowSteps uint64 // steps recorded/executed by the slow simulator
	Replays   uint64 // steps replayed by the fast simulator
	Misses    uint64 // mid-step action cache misses (recoveries)
	KeyMisses uint64 // step-boundary lookups that missed

	CacheBytes     uint64 // current occupancy (gauge)
	CacheEntries   uint64 // current entries (gauge)
	TotalMemoBytes uint64 // monotonic bytes ever memoized
	CacheClears    uint64

	Faults               uint64
	Invalidations        uint64
	DegradedSteps        uint64
	WatchdogTrips        uint64
	SelfChecks           uint64
	SelfCheckDivergences uint64

	FastForwardedPc float64 // % of work replayed rather than run slow
}

// Result is the engine-independent outcome of a run. It is valid at any
// point (reflecting progress so far) and final once Done reports true.
type Result struct {
	Insts  uint64
	Cycles uint64 // 0 for purely functional engines
	Output []byte
	Exit   int64

	// Conventional-baseline extras (zero elsewhere).
	Mispredicts uint64
	L1DMisses   uint64
}

// IPC reports instructions per cycle (0 when no cycles were simulated).
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// WarmCache is an engine-agnostic handle on a detached action cache. The
// concrete type (*fastsim.WarmCache or *rt.WarmCache) only round-trips
// into a Runner of the same engine family; AdoptCache refuses mismatches.
type WarmCache interface {
	Entries() uint64
	Bytes() uint64
}

// Runner drives one simulator through the engine-independent protocol.
type Runner interface {
	// Run advances until cumulative progress reaches target (0 = run to
	// completion). Progress is counted in committed instructions, except
	// for fac-* engines where it is Facile steps (the engines' own budget
	// unit — see facsim.Instance.Run).
	Run(target uint64) error
	Done() bool
	Progress() uint64
	Result() Result
	Stats() Stats

	// Checkpointing (see internal/snapshot). The action cache is never
	// part of a snapshot; restored runs re-warm it.
	SnapshotKind() string
	Save(w *snapshot.Writer) error
	Load(r *snapshot.Reader) error

	// Warm-cache sharing. DetachCache returns nil when the engine has no
	// (non-empty) action cache; AdoptCache refuses caches from another
	// engine family and runners that already stepped.
	DetachCache() WarmCache
	AdoptCache(wc WarmCache) bool

	// LastFault reports the most recent recovered fault (nil if none, or
	// for engines without fault tracking).
	LastFault() *faults.Fault
}

// FusionFacts returns the static fusion facts proven for a fac-* engine's
// bundled description: predicted coverage, barrier count, and layout
// verdicts — the same table the replay engine consults at machine-build
// time (Program.Replay). Nil for engines without a compiled description.
// The facts come from the cached preflight vet run, so repeated calls are
// cheap.
func FusionFacts(engine string) *vet.FusionSummary {
	kind := map[string]string{
		EngineFacFunc:    facsim.KindFunctional,
		EngineFacInOrder: facsim.KindInOrder,
		EngineFacOOO:     facsim.KindOOO,
	}[engine]
	if kind == "" {
		return nil
	}
	if s, ok := facsim.Preflight(kind); ok {
		return s.Fusion
	}
	return nil
}

// replayInterp maps cfg.Replay onto the engines' boolean switch.
func (c Config) replayInterp() (bool, error) {
	switch c.Replay {
	case "", ReplayCompiled:
		return false, nil
	case ReplayInterp:
		return true, nil
	}
	return false, fmt.Errorf("unknown replay mode %q (valid: %v)", c.Replay, ReplayModes())
}

// New builds a Runner for cfg.Engine over prog.
func New(prog *loader.Program, cfg Config) (Runner, error) {
	interp, err := cfg.replayInterp()
	if err != nil {
		return nil, err
	}
	uc := cfg.EffectiveUarch()
	if cfg.Uarch != nil {
		switch cfg.Engine {
		case EngineFunc, EngineFacFunc:
			return nil, fmt.Errorf("engine %q is purely functional; a uarch override has no effect there", cfg.Engine)
		}
		if err := uc.Validate(); err != nil {
			return nil, err
		}
	}
	switch cfg.Engine {
	case EngineFunc:
		st := funcsim.NewState(prog)
		st.SetObs(cfg.Obs, cfg.SampleEvery)
		return &funcRunner{st: st, prog: prog}, nil
	case EngineOOO:
		s := ooo.New(uc, prog)
		s.SetObs(cfg.Obs, cfg.SampleEvery)
		return &oooRunner{s: s}, nil
	case EngineFastsim:
		opt := fastsim.Options{
			Memoize:       cfg.Memoize || cfg.SelfCheck > 0,
			CacheCapBytes: cfg.CacheCapBytes,
			SelfCheck:     cfg.SelfCheck,
			Inject:        cfg.Inject,
			ReplayInterp:  interp,
			Obs:           cfg.Obs,
			SampleEvery:   cfg.SampleEvery,
		}
		return &fastsimRunner{s: fastsim.New(uc, prog, opt)}, nil
	case EngineFacFunc, EngineFacInOrder, EngineFacOOO:
		mk := map[string]func(*loader.Program, facsim.Options) (*facsim.Instance, error){
			EngineFacFunc:    facsim.NewFunctional,
			EngineFacInOrder: facsim.NewInOrder,
			EngineFacOOO:     facsim.NewOOO,
		}[cfg.Engine]
		in, err := mk(prog, facsim.Options{
			Memoize:       cfg.Memoize || cfg.SelfCheck > 0,
			CacheCapBytes: cfg.CacheCapBytes,
			SelfCheck:     cfg.SelfCheck,
			Inject:        cfg.Inject,
			ReplayInterp:  interp,
			Obs:           cfg.Obs,
			SampleEvery:   cfg.SampleEvery,
			Uarch:         cfg.Uarch,
		})
		if err != nil {
			return nil, err
		}
		return &facRunner{in: in}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (valid: %v)", cfg.Engine, Engines())
	}
}

// --- golden functional simulator ------------------------------------------

type funcRunner struct {
	st   *funcsim.State
	prog *loader.Program
}

func (r *funcRunner) Run(target uint64) error { return r.st.RunOn(r.prog, target) }
func (r *funcRunner) Done() bool              { return r.st.Halted }
func (r *funcRunner) Progress() uint64        { return r.st.InstCount }
func (r *funcRunner) Result() Result {
	return Result{Insts: r.st.InstCount, Output: r.st.Output, Exit: r.st.ExitStatus}
}
func (r *funcRunner) Stats() Stats                   { return Stats{} }
func (r *funcRunner) Hash() string                   { return r.st.Hash() }
func (r *funcRunner) SnapshotKind() string           { return funcsim.SnapshotKind }
func (r *funcRunner) Save(w *snapshot.Writer) error  { r.st.SaveState(w); return nil }
func (r *funcRunner) Load(rd *snapshot.Reader) error { return r.st.LoadState(rd) }
func (r *funcRunner) DetachCache() WarmCache         { return nil }
func (r *funcRunner) AdoptCache(WarmCache) bool      { return false }
func (r *funcRunner) LastFault() *faults.Fault       { return nil }

// --- conventional out-of-order baseline -----------------------------------

type oooRunner struct {
	s   *ooo.Simulator
	res uarch.Result
}

func (r *oooRunner) Run(target uint64) error { r.res = r.s.Run(target); return nil }
func (r *oooRunner) Done() bool              { return r.s.Halted() }
func (r *oooRunner) Progress() uint64        { return r.s.Committed() }
func (r *oooRunner) Result() Result {
	return Result{
		Insts: r.res.Insts, Cycles: r.res.Cycles,
		Output: r.res.Output, Exit: r.res.ExitStatus,
		Mispredicts: r.res.Mispredicts, L1DMisses: r.res.L1DMisses,
	}
}
func (r *oooRunner) Stats() Stats                   { return Stats{} }
func (r *oooRunner) Hash() string                   { return r.s.Hash() }
func (r *oooRunner) SnapshotKind() string           { return ooo.SnapshotKind }
func (r *oooRunner) Save(w *snapshot.Writer) error  { r.s.SaveState(w); return nil }
func (r *oooRunner) Load(rd *snapshot.Reader) error { return r.s.LoadState(rd) }
func (r *oooRunner) DetachCache() WarmCache         { return nil }
func (r *oooRunner) AdoptCache(WarmCache) bool      { return false }
func (r *oooRunner) LastFault() *faults.Fault       { return nil }

// --- hand-coded fast-forwarding simulator ---------------------------------

type fastsimRunner struct {
	s   *fastsim.Sim
	res uarch.Result
}

// Sim exposes the underlying simulator for engine-specific callers (the
// fsim -selfcheck report, parsim interval cloning).
func (r *fastsimRunner) Sim() *fastsim.Sim { return r.s }

func (r *fastsimRunner) Run(target uint64) error { r.res = r.s.Run(target); return nil }
func (r *fastsimRunner) Done() bool              { return r.s.Done() }
func (r *fastsimRunner) Progress() uint64        { return r.s.Committed() }
func (r *fastsimRunner) Result() Result {
	return Result{
		Insts: r.res.Insts, Cycles: r.res.Cycles,
		Output: r.res.Output, Exit: r.res.ExitStatus,
		Mispredicts: r.res.Mispredicts, L1DMisses: r.res.L1DMisses,
	}
}
func (r *fastsimRunner) Stats() Stats {
	st := r.s.Stats()
	return Stats{
		SlowSteps: st.Steps, Replays: st.Replays,
		Misses: st.Misses, KeyMisses: st.KeyMisses,
		CacheBytes: st.CacheBytes, CacheEntries: st.CacheEntries,
		TotalMemoBytes: st.TotalMemoBytes, CacheClears: st.CacheClears,
		Faults: st.Faults, Invalidations: st.Invalidations,
		DegradedSteps: st.DegradedSteps, WatchdogTrips: st.WatchdogTrips,
		SelfChecks: st.SelfChecks, SelfCheckDivergences: st.SelfCheckDivergences,
		FastForwardedPc: st.FastForwardedPc,
	}
}
func (r *fastsimRunner) SnapshotKind() string           { return fastsim.SnapshotKind }
func (r *fastsimRunner) Save(w *snapshot.Writer) error  { return r.s.SaveState(w) }
func (r *fastsimRunner) Load(rd *snapshot.Reader) error { return r.s.LoadState(rd) }
func (r *fastsimRunner) DetachCache() WarmCache {
	if wc := r.s.DetachCache(); wc != nil {
		return wc
	}
	return nil
}
func (r *fastsimRunner) AdoptCache(wc WarmCache) bool {
	fwc, ok := wc.(*fastsim.WarmCache)
	return ok && r.s.AdoptCache(fwc)
}
func (r *fastsimRunner) LastFault() *faults.Fault { return r.s.LastFault() }

// --- Facile-compiled simulators -------------------------------------------

type facRunner struct {
	in *facsim.Instance
}

// Instance exposes the underlying instance for engine-specific callers.
func (r *facRunner) Instance() *facsim.Instance { return r.in }

func (r *facRunner) Run(target uint64) error { return r.in.M.Run(target) }
func (r *facRunner) Done() bool              { return r.in.M.Done() }
func (r *facRunner) Progress() uint64 {
	st := r.in.M.Stats()
	return st.SlowSteps + st.Replays
}
func (r *facRunner) Result() Result {
	res := Result{Output: r.in.Env.Output, Exit: r.in.Env.Exit}
	if v, ok := r.in.M.Global("insts"); ok {
		res.Insts = uint64(v)
	} else {
		res.Insts = r.Progress()
	}
	if v, ok := r.in.M.Global("cycles"); ok {
		res.Cycles = uint64(v)
	}
	return res
}
func (r *facRunner) Stats() Stats {
	st := r.in.M.Stats()
	out := Stats{
		SlowSteps: st.SlowSteps, Replays: st.Replays,
		Misses: st.Misses, KeyMisses: st.KeyMisses,
		CacheBytes: st.CacheBytes, CacheEntries: st.CacheEntries,
		TotalMemoBytes: st.TotalMemoBytes, CacheClears: st.CacheClears,
		Faults: st.Faults, Invalidations: st.Invalidations,
		DegradedSteps: st.DegradedSteps, WatchdogTrips: st.WatchdogTrips,
		SelfChecks: st.SelfChecks, SelfCheckDivergences: st.SelfCheckDivergences,
	}
	if total := st.SlowSteps + st.Replays; total > 0 {
		out.FastForwardedPc = 100 * float64(st.Replays) / float64(total)
	}
	return out
}
func (r *facRunner) Hash() string                   { return r.in.Hash() }
func (r *facRunner) SnapshotKind() string           { return r.in.Kind }
func (r *facRunner) Save(w *snapshot.Writer) error  { r.in.SaveState(w); return nil }
func (r *facRunner) Load(rd *snapshot.Reader) error { return r.in.LoadState(rd) }
func (r *facRunner) DetachCache() WarmCache {
	if wc := r.in.DetachCache(); wc != nil {
		return wc
	}
	return nil
}
func (r *facRunner) AdoptCache(wc WarmCache) bool {
	rwc, ok := wc.(*rt.WarmCache)
	return ok && r.in.AdoptCache(rwc)
}
func (r *facRunner) LastFault() *faults.Fault { return r.in.M.LastFault() }
