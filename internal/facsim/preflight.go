package facsim

import (
	"sync"

	"facile/facile"
	"facile/internal/lang/source"
	"facile/internal/lang/vet"
)

// Preflight summaries are cached per kind: the bundled descriptions are
// fixed at build time, so one vet run serves every job that uses the
// engine.
var (
	preflightMu    sync.Mutex
	preflightCache = map[string]vet.Summary{}
)

// stepFile maps each simulator kind to its bundled step-function source.
var stepFile = map[string]string{
	KindFunctional: "func.fac",
	KindInOrder:    "inorder.fac",
	KindOOO:        "ooo.fac",
}

// Preflight vets the bundled Facile description behind kind and reports
// whether the kind names a Facile simulator at all. Drivers reject runs
// whose summary carries error-severity findings unless the user
// explicitly overrides (fsim -no-vet, fsimd no_vet).
func Preflight(kind string) (vet.Summary, bool) {
	step, ok := stepFile[kind]
	if !ok {
		return vet.Summary{}, false
	}
	preflightMu.Lock()
	defer preflightMu.Unlock()
	if s, done := preflightCache[kind]; done {
		return s, true
	}
	fs := source.NewSet()
	fs.Add("facile/svr32.fac", facile.ISA())
	fs.Add("facile/"+step, facile.Sources()[step])
	s := vet.PreflightFiles(fs)
	preflightCache[kind] = s
	return s, true
}
