// Package facsim bridges the Facile-language simulator descriptions in
// facile/*.fac to the SVR32 substrate: it compiles the descriptions,
// registers the host externs (target memory, system calls, floating point,
// branch predictor, cache hierarchy — the paper's "1,000 lines of C"), and
// exposes ready-to-run machines for the functional, in-order, and
// out-of-order simulators.
package facsim

import (
	"fmt"
	"math"
	"sync"

	"facile/facile"
	"facile/internal/arch/bpred"
	"facile/internal/arch/cache"
	"facile/internal/arch/uarch"
	"facile/internal/core"
	"facile/internal/faults"
	"facile/internal/isa"
	"facile/internal/isa/loader"
	"facile/internal/mem"
	"facile/internal/obs"
	"facile/internal/rt"
)

// Env is the external (dynamic) state shared with a Facile simulator:
// target memory, syscall devices, and for the timing simulators the branch
// predictor and cache hierarchy. It corresponds to the C code that
// accompanies the paper's Facile descriptions.
type Env struct {
	Prog   *loader.Program
	Mem    *mem.Memory
	Output []byte
	Halted bool
	Exit   int64
	rand   uint64

	Pred   *bpred.Predictor
	Caches *cache.Hierarchy
}

// NewEnv builds an environment with prog loaded. The PRNG seed matches the
// golden functional simulator so outputs compare bit-for-bit.
func NewEnv(prog *loader.Program) *Env {
	m := mem.New()
	prog.LoadInto(m)
	return &Env{Prog: prog, Mem: m, rand: 0x2545F4914F6CDD1D}
}

func (e *Env) nextRand() int64 {
	x := e.rand
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.rand = x
	return int64(x>>1) & 0x7FFFFFFF
}

// text adapts the program to rt.TextSource; out-of-text fetches return an
// invalid word so Facile decode falls into its default (runaway) case.
type text struct{ p *loader.Program }

func (t text) FetchWord(addr uint64) uint32 {
	if !t.p.InText(addr) || addr%4 != 0 {
		return 0xFFFFFFFF
	}
	return t.p.FetchWord(addr)
}

// registerBase installs the externs every description uses (memory,
// syscalls, floating point, shifts).
func (e *Env) registerBase(m *rt.Machine) error {
	regs := map[string]rt.Extern{
		"mem_ld": func(a []int64) int64 {
			addr := uint64(a[0])
			switch a[1] {
			case 1:
				return int64(int8(e.Mem.Read8(addr)))
			case 4:
				return int64(int32(e.Mem.Read32(addr)))
			default:
				return int64(e.Mem.Read64(addr))
			}
		},
		"mem_st": func(a []int64) int64 {
			addr := uint64(a[0])
			switch a[1] {
			case 1:
				e.Mem.Write8(addr, byte(a[2]))
			case 4:
				e.Mem.Write32(addr, uint32(a[2]))
			default:
				e.Mem.Write64(addr, uint64(a[2]))
			}
			return 0
		},
		"sys": func(a []int64) int64 {
			code, a0 := a[0], a[1]
			switch code {
			case isa.SysExit:
				e.Halted = true
				e.Exit = a0
			case isa.SysPrintInt:
				e.Output = append(e.Output, []byte(fmt.Sprintf("%d\n", a0))...)
			case isa.SysPrintChar:
				e.Output = append(e.Output, byte(a0))
			case isa.SysRand:
				return e.nextRand()
			default:
				e.Halted = true
				e.Exit = -1
			}
			return a0
		},
		"stop": func([]int64) int64 {
			e.Halted = true
			return 0
		},
		"fbin": func(a []int64) int64 {
			x := math.Float64frombits(uint64(a[1]))
			y := math.Float64frombits(uint64(a[2]))
			var r float64
			switch a[0] {
			case 0:
				r = x + y
			case 1:
				r = x - y
			case 2:
				r = x * y
			case 3:
				if y == 0 {
					if x < 0 {
						r = math.Inf(-1)
					} else {
						r = math.Inf(1)
					}
				} else {
					r = x / y
				}
			case 4:
				r = -x
			}
			return int64(math.Float64bits(r))
		},
		"fcmp2": func(a []int64) int64 {
			x := math.Float64frombits(uint64(a[0]))
			y := math.Float64frombits(uint64(a[1]))
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			default:
				return 0
			}
		},
		"i2f": func(a []int64) int64 {
			return int64(math.Float64bits(float64(a[0])))
		},
		"f2i": func(a []int64) int64 {
			return int64(math.Float64frombits(uint64(a[0])))
		},
		"lsr": func(a []int64) int64 {
			return int64(uint64(a[0]) >> (uint64(a[1]) & 63))
		},
		"ultu": func(a []int64) int64 {
			if uint64(a[0]) < uint64(a[1]) {
				return 1
			}
			return 0
		},
	}
	for name, fn := range regs {
		if err := m.RegisterExtern(name, fn); err != nil {
			return err
		}
	}
	return nil
}

// registerTiming installs the predictor/cache externs used by the timing
// simulators.
func (e *Env) registerTiming(m *rt.Machine, cfg uarch.Config) error {
	e.Pred = bpred.New(cfg.Pred)
	e.Caches = cache.New(cfg.Mem)
	required := map[string]rt.Extern{
		"dcache": func(a []int64) int64 {
			return int64(e.Caches.Data(uint64(a[0]), uint64(a[1]), false))
		},
		"is_halted": func([]int64) int64 {
			if e.Halted {
				return 1
			}
			return 0
		},
	}
	for name, fn := range required {
		if err := m.RegisterExtern(name, fn); err != nil {
			return err
		}
	}
	// Only the out-of-order description declares the I-cache and
	// predictor externs; registration failures mean "not declared here".
	optional := map[string]rt.Extern{
		"icache": func(a []int64) int64 {
			return int64(e.Caches.Inst(uint64(a[0]), uint64(a[1])))
		},
		"bp_predict": func(a []int64) int64 {
			pc := uint64(a[0])
			in, err := e.Prog.Fetch(pc)
			if err != nil {
				return int64(pc + 4)
			}
			return int64(e.Pred.Predict(in, pc))
		},
		"bp_update": func(a []int64) int64 {
			pc := uint64(a[0])
			in, err := e.Prog.Fetch(pc)
			if err != nil {
				return 0
			}
			e.Pred.Update(in, pc, uint64(a[1]), a[2] != 0)
			return 0
		},
	}
	for name, fn := range optional {
		_ = m.RegisterExtern(name, fn)
	}
	return nil
}

var (
	compileOnce sync.Once
	simFunc     *core.Simulator
	simInOrder  *core.Simulator
	simOOO      *core.Simulator
	compileErr  error
)

func compiled() error {
	compileOnce.Do(func() {
		if simFunc, compileErr = core.CompileSource(facile.FuncSim(), core.Options{}); compileErr != nil {
			compileErr = fmt.Errorf("func.fac: %w", compileErr)
			return
		}
		if simInOrder, compileErr = core.CompileSource(facile.InOrderSim(), core.Options{}); compileErr != nil {
			compileErr = fmt.Errorf("inorder.fac: %w", compileErr)
			return
		}
		if simOOO, compileErr = core.CompileSource(facile.OOOSim(), core.Options{}); compileErr != nil {
			compileErr = fmt.Errorf("ooo.fac: %w", compileErr)
			return
		}
	})
	return compileErr
}

// Options selects memoization behavior for a Facile machine.
type Options struct {
	Memoize       bool
	CacheCapBytes uint64

	// Fault tolerance (see rt.Options): SelfCheck re-executes a sampled
	// fraction of replayable steps on the slow simulator for verification;
	// Inject deterministically corrupts cache entries for testing.
	SelfCheck     float64
	SelfCheckSeed uint64
	Inject        *faults.Injector

	// ReplayInterp selects rt's replay interpreter over the compiled
	// closure-chain substrate (see rt.Options.ReplayInterp).
	ReplayInterp bool

	// Obs, when non-nil, receives the underlying rt machine's memoization
	// lifecycle and sampled time series (see rt.Options.Obs). SampleEvery
	// is the sampling interval in executed operations (0 = default).
	Obs         *obs.Recorder
	SampleEvery uint64

	// Uarch overrides the external timing components (predictor tables,
	// cache hierarchy) for the timing simulators; nil = uarch.Default().
	// The functional simulator ignores it.
	Uarch *uarch.Config
}

// uarchConfig resolves the effective micro-architecture.
func (o Options) uarchConfig() uarch.Config {
	if o.Uarch != nil {
		return *o.Uarch
	}
	return uarch.Default()
}

func (o Options) rtOptions() rt.Options {
	return rt.Options{
		Memoize:       o.Memoize,
		CacheCapBytes: o.CacheCapBytes,
		SelfCheck:     o.SelfCheck,
		SelfCheckSeed: o.SelfCheckSeed,
		Inject:        o.Inject,
		ReplayInterp:  o.ReplayInterp,
		Obs:           o.Obs,
		SampleEvery:   o.SampleEvery,
	}
}

// Instance is a runnable Facile simulator over a target program.
type Instance struct {
	M   *rt.Machine
	Env *Env

	// Kind names the constructor that built this instance (a facsim.Kind*
	// constant); snapshot restore and Clone use it to rebuild the machine.
	// Empty for NewOOOCustom instances, which are not snapshot-rebuildable.
	Kind string
	opt  Options
}

// NewFunctional builds the Facile functional simulator for prog.
func NewFunctional(prog *loader.Program, opt Options) (*Instance, error) {
	if err := compiled(); err != nil {
		return nil, err
	}
	env := NewEnv(prog)
	m := simFunc.NewMachine(text{prog}, opt.rtOptions())
	if err := env.registerBase(m); err != nil {
		return nil, err
	}
	if err := m.SetIntArgs(int64(prog.Entry)); err != nil {
		return nil, err
	}
	seedSP(m)
	m.SetStop(func(*rt.Machine) bool { return env.Halted })
	return &Instance{M: m, Env: env, Kind: KindFunctional, opt: opt}, nil
}

// NewInOrder builds the Facile in-order pipeline simulator for prog.
func NewInOrder(prog *loader.Program, opt Options) (*Instance, error) {
	if err := compiled(); err != nil {
		return nil, err
	}
	env := NewEnv(prog)
	m := simInOrder.NewMachine(text{prog}, opt.rtOptions())
	if err := env.registerBase(m); err != nil {
		return nil, err
	}
	if err := env.registerTiming(m, opt.uarchConfig()); err != nil {
		return nil, err
	}
	if err := m.SetIntArgs(int64(prog.Entry)); err != nil {
		return nil, err
	}
	seedSP(m)
	m.SetStop(stopOnDone)
	return &Instance{M: m, Env: env, Kind: KindInOrder, opt: opt}, nil
}

// NewOOO builds the Facile out-of-order simulator for prog.
func NewOOO(prog *loader.Program, opt Options) (*Instance, error) {
	if err := compiled(); err != nil {
		return nil, err
	}
	env := NewEnv(prog)
	m := simOOO.NewMachine(text{prog}, opt.rtOptions())
	if err := env.registerBase(m); err != nil {
		return nil, err
	}
	if err := env.registerTiming(m, opt.uarchConfig()); err != nil {
		return nil, err
	}
	// main(iq, fpc, flags, resume)
	if err := m.SetIntArgs(int64(prog.Entry), 0, 0); err != nil {
		return nil, err
	}
	seedSP(m)
	m.SetStop(stopOnDone)
	return &Instance{M: m, Env: env, Kind: KindOOO, opt: opt}, nil
}

func stopOnDone(m *rt.Machine) bool {
	v, _ := m.Global("done")
	return v != 0
}

// seedSP initializes the simulated stack pointer (r29) in the Facile
// register file, matching the golden model's calling convention.
func seedSP(m *rt.Machine) {
	if r, ok := m.Array("R"); ok {
		r[isa.RegSP] = int64(loader.StackTop)
	}
}

// Result summarizes a Facile simulation run.
type Result struct {
	Insts  uint64
	Cycles uint64
	Output []byte
	Exit   int64
	Stats  rt.Stats
}

// Run drives the instance to completion (or maxSteps) and collects results.
func (in *Instance) Run(maxSteps uint64) (Result, error) {
	if err := in.M.Run(maxSteps); err != nil {
		return Result{}, err
	}
	res := Result{
		Output: in.Env.Output,
		Exit:   in.Env.Exit,
		Stats:  in.M.Stats(),
	}
	if v, ok := in.M.Global("insts"); ok {
		res.Insts = uint64(v)
	} else {
		res.Insts = res.Stats.SlowSteps + res.Stats.Replays
	}
	if v, ok := in.M.Global("cycles"); ok {
		res.Cycles = uint64(v)
	}
	return res, nil
}

// NewOOOCustom builds the Facile out-of-order simulator with explicit
// compiler options (used by the §6.3 optimization ablations; the
// description is recompiled rather than cached).
func NewOOOCustom(prog *loader.Program, opt Options, copt core.Options) (*Instance, error) {
	sim, err := core.CompileSource(facile.OOOSim(), copt)
	if err != nil {
		return nil, err
	}
	env := NewEnv(prog)
	m := sim.NewMachine(text{prog}, opt.rtOptions())
	if err := env.registerBase(m); err != nil {
		return nil, err
	}
	if err := env.registerTiming(m, opt.uarchConfig()); err != nil {
		return nil, err
	}
	if err := m.SetIntArgs(int64(prog.Entry), 0, 0); err != nil {
		return nil, err
	}
	seedSP(m)
	m.SetStop(stopOnDone)
	return &Instance{M: m, Env: env}, nil
}
