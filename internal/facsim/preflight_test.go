package facsim

import (
	"testing"

	"facile/internal/lang/vet"
)

// TestPreflightBundledClean pins the invariant the fsim/fsimd gates
// depend on: every bundled description vets without error-severity
// findings, and the per-kind summaries are cached.
func TestPreflightBundledClean(t *testing.T) {
	for _, kind := range []string{KindFunctional, KindInOrder, KindOOO} {
		sum, ok := Preflight(kind)
		if !ok {
			t.Fatalf("Preflight(%q) not recognized as a Facile kind", kind)
		}
		if !sum.OK() {
			t.Errorf("Preflight(%q) = %d error(s): %v", kind, sum.Errors, sum.ErrorFindings)
		}
		again, _ := Preflight(kind)
		if again.Errors != sum.Errors || again.Warnings != sum.Warnings || again.Infos != sum.Infos {
			t.Errorf("Preflight(%q) cache returned a different summary", kind)
		}
	}
	if _, ok := Preflight("fastsim"); ok {
		t.Error("Preflight(fastsim) claims a non-Facile engine is vettable")
	}
	if (vet.Summary{Errors: 1}).OK() {
		t.Error("Summary.OK() ignores errors")
	}
}
