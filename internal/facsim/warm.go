package facsim

import "facile/internal/rt"

// DetachCache removes and returns the instance's action cache for reuse by
// a later instance of the same kind over the same program and options (see
// rt.Machine.DetachCache).
func (in *Instance) DetachCache() *rt.WarmCache { return in.M.DetachCache() }

// AdoptCache installs a previously detached cache into an instance that
// has not run yet (see rt.Machine.AdoptCache).
func (in *Instance) AdoptCache(wc *rt.WarmCache) bool { return in.M.AdoptCache(wc) }
