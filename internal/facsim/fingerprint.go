package facsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"facile/facile"
	"facile/internal/lang/source"
	"facile/internal/lang/vet"
	"facile/internal/rt"
)

// fingerprintCache: the bundled descriptions are fixed at build time, so
// one fingerprint computation serves the process (guarded by preflightMu,
// shared with the preflight cache).
var fingerprintCache = map[string]string{}

// DescriptionFingerprint identifies the simulator description behind kind
// for cache-lineage purposes: the SHA-256 of the bundled Facile sources,
// the sorted vet finding baseline keys (fvet's BaselineKey machinery — a
// semantic digest of the description's static-analysis surface), and the
// rt warm-cache format version. Editing a description, changing what the
// analyzers see in it, or bumping the cache layout all move the
// fingerprint, so persisted caches built against the old description are
// invalidated by construction rather than by policy.
func DescriptionFingerprint(kind string) (string, bool) {
	step, ok := stepFile[kind]
	if !ok {
		return "", false
	}
	preflightMu.Lock()
	defer preflightMu.Unlock()
	if fp, done := fingerprintCache[kind]; done {
		return fp, true
	}
	h := sha256.New()
	fmt.Fprintf(h, "rt-warm-format=%d|", rt.WarmFormatVersion)
	io.WriteString(h, facile.ISA())
	io.WriteString(h, facile.Sources()[step])
	fs := source.NewSet()
	fs.Add("facile/svr32.fac", facile.ISA())
	fs.Add("facile/"+step, facile.Sources()[step])
	for _, k := range vet.NewBaseline(vet.RunSet(fs, vet.Options{})).Findings {
		io.WriteString(h, k)
		io.WriteString(h, "\n")
	}
	fp := hex.EncodeToString(h.Sum(nil))[:16]
	fingerprintCache[kind] = fp
	return fp, true
}
