package facsim

import (
	"bytes"
	"testing"

	"facile/internal/arch/funcsim"
	"facile/internal/isa/asm"
	"facile/internal/isa/loader"
	wl "facile/internal/workloads"
)

// wlGet fetches a bundled workload (aliased import: this file declares a
// local map named workloads).
func wlGet(name string, scale int) (*wl.Workload, error) { return wl.Get(name, scale) }

func asmOrDie(t *testing.T, src string) *loader.Program {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const mixedWorkload = `
start:  li   r1, 400
        li   r4, 0
        la   r9, buf
loop:   beq  r1, r0, done
        and  r7, r1, 63
        sll  r7, r7, 3
        add  r8, r9, r7
        ldd  r6, r8, 0
        add  r6, r6, r1
        std  r6, r8, 0
        add  r4, r4, r6
        and  r5, r1, 3
        bne  r5, r0, skip
        call bump
skip:   sub  r1, r1, 1
        b    loop
done:   li   r2, 2
        mov  r3, r4
        syscall
        li   r2, 1
        li   r3, 0
        syscall
bump:   add  r4, r4, 7
        ret
        .data
buf:    .space 512
`

const fpWorkload = `
start:  li    r1, 120
        li    r4, 3
        cvtif f1, r4
        cvtif f2, r4
loop:   beq   r1, r0, done
        fadd  f1, f1, f2
        fmul  f3, f1, f2
        fdiv  f4, f3, f2
        fcmp  r5, f4, f1
        sub   r1, r1, 1
        b     loop
done:   cvtfi r3, f1
        li    r2, 2
        syscall
        halt
`

const randWorkload = `
start:  li   r10, 200
        li   r11, 0
loop:   beq  r10, r0, done
        li   r2, 4
        syscall
        and  r5, r3, 7
        beq  r5, r0, bump
        and  r6, r3, 1
        bne  r6, r0, odd
        add  r11, r11, 2
        b    next
odd:    add  r11, r11, 1
        b    next
bump:   add  r11, r11, 10
next:   sub  r10, r10, 1
        b    loop
done:   li   r2, 2
        mov  r3, r11
        syscall
        halt
`

var workloads = map[string]string{
	"mixed": mixedWorkload,
	"fp":    fpWorkload,
	"rand":  randWorkload,
}

// golden runs the Go functional reference.
func golden(t *testing.T, prog *loader.Program) (*funcsim.State, funcsim.Result) {
	t.Helper()
	st, res, err := funcsim.Run(prog, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st, res
}

// checkArch compares a Facile run's architectural outcome to the golden
// functional model.
func checkArch(t *testing.T, name string, in *Instance, res Result, gst *funcsim.State, g funcsim.Result) {
	t.Helper()
	if !bytes.Equal(res.Output, g.Output) {
		t.Errorf("%s: output %q != golden %q", name, res.Output, g.Output)
	}
	if res.Exit != g.ExitStatus {
		t.Errorf("%s: exit %d != golden %d", name, res.Exit, g.ExitStatus)
	}
	R, ok := in.M.Array("R")
	if !ok {
		t.Fatalf("%s: no R array", name)
	}
	for r := 1; r < 32; r++ {
		if R[r] != gst.R[r] {
			t.Errorf("%s: R[%d] = %d, golden %d", name, r, R[r], gst.R[r])
		}
	}
}

func TestFunctionalMatchesGolden(t *testing.T) {
	for name, src := range workloads {
		t.Run(name, func(t *testing.T) {
			prog := asmOrDie(t, src)
			gst, g := golden(t, prog)
			for _, memo := range []bool{false, true} {
				in, err := NewFunctional(prog, Options{Memoize: memo})
				if err != nil {
					t.Fatal(err)
				}
				res, err := in.Run(0)
				if err != nil {
					t.Fatal(err)
				}
				checkArch(t, name, in, res, gst, g)
				if res.Stats.SlowSteps+res.Stats.Replays != g.Insts {
					t.Errorf("steps %d+%d != golden insts %d",
						res.Stats.SlowSteps, res.Stats.Replays, g.Insts)
				}
				if memo && res.Stats.Replays == 0 {
					t.Error("memoized functional run never replayed")
				}
			}
		})
	}
}

// checkTimingEquivalence runs a timing simulator with and without
// memoization: architectural results must match the golden model, and the
// cycle counts must be identical (the paper's central claim).
func checkTimingEquivalence(t *testing.T, mk func(*loader.Program, Options) (*Instance, error), src string) (Result, Result) {
	t.Helper()
	prog := asmOrDie(t, src)
	gst, g := golden(t, prog)

	inPlain, err := mk(prog, Options{Memoize: false})
	if err != nil {
		t.Fatal(err)
	}
	resPlain, err := inPlain.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	checkArch(t, "plain", inPlain, resPlain, gst, g)

	inMemo, err := mk(prog, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	resMemo, err := inMemo.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	checkArch(t, "memo", inMemo, resMemo, gst, g)

	if resPlain.Cycles != resMemo.Cycles {
		t.Errorf("cycle counts differ: plain %d, memo %d", resPlain.Cycles, resMemo.Cycles)
	}
	if resPlain.Insts != resMemo.Insts || resMemo.Insts != g.Insts {
		t.Errorf("insts: plain %d, memo %d, golden %d", resPlain.Insts, resMemo.Insts, g.Insts)
	}
	if resPlain.Cycles == 0 {
		t.Error("zero cycles simulated")
	}
	return resPlain, resMemo
}

func TestInOrderEquivalence(t *testing.T) {
	for name, src := range workloads {
		t.Run(name, func(t *testing.T) {
			_, memo := checkTimingEquivalence(t, NewInOrder, src)
			if memo.Stats.Replays == 0 {
				t.Error("in-order memoized run never replayed")
			}
		})
	}
}

func TestOOOEquivalence(t *testing.T) {
	for name, src := range workloads {
		t.Run(name, func(t *testing.T) {
			plain, memo := checkTimingEquivalence(t, NewOOO, src)
			if memo.Stats.Replays == 0 {
				t.Error("OOO memoized run never replayed")
			}
			// Out-of-order overlap: IPC should beat one-per-cycle on the
			// mixed loop workloads at least modestly.
			if plain.Cycles > plain.Insts*12 {
				t.Errorf("implausibly slow OOO model: %d cycles for %d insts",
					plain.Cycles, plain.Insts)
			}
		})
	}
}

func TestInOrderOnBundledWorkloads(t *testing.T) {
	// The in-order Facile simulator over two real (small) benchmarks:
	// memo/no-memo cycle equality plus golden-architectural agreement.
	for _, name := range []string{"130.li", "129.compress"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := wlGet(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			gst, g, err := funcsim.Run(w.Prog, 0)
			if err != nil {
				t.Fatal(err)
			}
			var cyc [2]uint64
			for i, memo := range []bool{false, true} {
				in, err := NewInOrder(w.Prog, Options{Memoize: memo})
				if err != nil {
					t.Fatal(err)
				}
				res, err := in.Run(0)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(res.Output, g.Output) {
					t.Fatalf("memo=%v output %q != golden %q", memo, res.Output, g.Output)
				}
				if res.Insts != g.Insts {
					t.Fatalf("memo=%v insts %d != golden %d", memo, res.Insts, g.Insts)
				}
				R, _ := in.M.Array("R")
				for r := 1; r < 32; r++ {
					if R[r] != gst.R[r] {
						t.Fatalf("memo=%v R[%d]=%d, golden %d", memo, r, R[r], gst.R[r])
					}
				}
				cyc[i] = res.Cycles
			}
			if cyc[0] != cyc[1] {
				t.Fatalf("in-order cycles differ: %d vs %d", cyc[0], cyc[1])
			}
		})
	}
}
