package facsim

import (
	"fmt"

	"facile/internal/isa/loader"
	"facile/internal/snapshot"
)

// Snapshot kinds for the three bundled Facile simulators. The kind string
// stored in a snapshot file must match the constructor used on restore —
// the three descriptions have different globals, queues, and main
// signatures, so a cross-kind load fails the rt.Machine shape checks.
const (
	KindFunctional = "fac-func"
	KindInOrder    = "fac-inorder"
	KindOOO        = "fac-ooo"
)

// New builds an instance of the named kind (a facsim.Kind* constant).
func New(kind string, prog *loader.Program, opt Options) (*Instance, error) {
	switch kind {
	case KindFunctional:
		return NewFunctional(prog, opt)
	case KindInOrder:
		return NewInOrder(prog, opt)
	case KindOOO:
		return NewOOO(prog, opt)
	}
	return nil, fmt.Errorf("facsim: unknown simulator kind %q", kind)
}

// SaveState serializes the environment's dynamic state. The program text
// and extern bindings are structural and rebuilt by the constructor.
func (e *Env) SaveState(w *snapshot.Writer) {
	e.Mem.SaveState(w)
	w.Bytes(e.Output)
	w.Bool(e.Halted)
	w.I64(e.Exit)
	w.U64(e.rand)
	hasTiming := e.Pred != nil
	w.Bool(hasTiming)
	if hasTiming {
		e.Pred.SaveState(w)
		e.Caches.SaveState(w)
	}
}

// LoadState restores the environment in place, so the extern closures the
// machine already holds keep observing the restored state.
func (e *Env) LoadState(r *snapshot.Reader) error {
	if err := e.Mem.LoadState(r); err != nil {
		return err
	}
	e.Output = append(e.Output[:0], r.Bytes()...)
	e.Halted = r.Bool()
	e.Exit = r.I64()
	e.rand = r.U64()
	hasTiming := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasTiming != (e.Pred != nil) {
		return fmt.Errorf("facsim: snapshot timing state does not match simulator kind")
	}
	if hasTiming {
		if err := e.Pred.LoadState(r); err != nil {
			return err
		}
		if err := e.Caches.LoadState(r); err != nil {
			return err
		}
	}
	return nil
}

// SaveState serializes the instance: environment first, then the Facile
// machine's run-time state. The action cache is excluded (see
// rt.Machine.SaveState); a restored instance re-warms it.
func (in *Instance) SaveState(w *snapshot.Writer) {
	in.Env.SaveState(w)
	in.M.SaveState(w)
}

// LoadState restores an instance built by the same constructor over the
// same program.
func (in *Instance) LoadState(r *snapshot.Reader) error {
	if err := in.Env.LoadState(r); err != nil {
		return err
	}
	return in.M.LoadState(r)
}

// Clone returns an independent deep copy built through the instance's own
// constructor and an in-memory snapshot round-trip, which structurally
// guarantees the clone shares no mutable state (memory pages, queues,
// globals, predictor/cache tables) with in. The clone's action cache
// starts empty and re-warms.
func (in *Instance) Clone() (*Instance, error) {
	if in.Kind == "" {
		return nil, fmt.Errorf("facsim: custom-compiled instances cannot be cloned")
	}
	w := snapshot.NewWriter()
	in.SaveState(w)
	c, err := New(in.Kind, in.Env.Prog, in.opt)
	if err != nil {
		return nil, err
	}
	if err := c.LoadState(snapshot.NewReader(w.Payload())); err != nil {
		return nil, err
	}
	return c, nil
}

// Hash returns the stable content hash of the instance's complete
// deterministic state (environment plus machine STATE section).
func (in *Instance) Hash() string {
	w := snapshot.NewWriter()
	in.SaveState(w)
	return w.StateHash()
}
