package facsim

import (
	"bytes"
	"testing"

	"facile/internal/isa/loader"
	"facile/internal/obs"
)

// TestPredictedFusionMatchesAchieved asserts the static/dynamic coverage
// equality on every shipped description: the compiler's replay plan
// (rt.fusion_predicted_*) must agree exactly with what the machine's
// closure builder compiled under that plan (rt.fusion_compiled_*) — any
// gap means the trusted compile's placeholder guard tripped, i.e. the
// static layout proof and the engine disagree. It also pins the
// preflight-exported fusion facts to the same figures, so what fvet and
// the job records report is what the engine does.
func TestPredictedFusionMatchesAchieved(t *testing.T) {
	mks := map[string]func(*loader.Program, Options) (*Instance, error){
		KindFunctional: NewFunctional,
		KindInOrder:    NewInOrder,
		KindOOO:        NewOOO,
	}
	prog := asmOrDie(t, mixedWorkload)
	for kind, mk := range mks {
		t.Run(kind, func(t *testing.T) {
			rec := obs.NewRecorder(obs.Config{})
			if _, err := mk(prog, Options{Memoize: true, Obs: rec}); err != nil {
				t.Fatal(err)
			}
			reg := rec.Registry()
			pb := reg.Counter("rt.fusion_predicted_blocks").Load()
			cb := reg.Counter("rt.fusion_compiled_blocks").Load()
			po := reg.Counter("rt.fusion_predicted_ops").Load()
			co := reg.Counter("rt.fusion_compiled_ops").Load()
			if pb == 0 {
				t.Fatal("no predicted fusable blocks: the compiled description carries no replay plan")
			}
			if pb != cb {
				t.Errorf("predicted %d fusable blocks, engine compiled %d", pb, cb)
			}
			if po != co {
				t.Errorf("predicted %d fusable ops, engine compiled %d", po, co)
			}
			sum, ok := Preflight(kind)
			if !ok {
				t.Fatalf("no preflight for kind %q", kind)
			}
			if sum.Fusion == nil {
				t.Fatal("preflight summary carries no fusion facts")
			}
			if uint64(sum.Fusion.FusableBlocks) != pb || uint64(sum.Fusion.FusableOps) != po {
				t.Errorf("preflight facts (%d blocks, %d ops) disagree with engine counters (%d, %d)",
					sum.Fusion.FusableBlocks, sum.Fusion.FusableOps, pb, cb)
			}
			if sum.Fusion.DynOps < sum.Fusion.FusableOps {
				t.Errorf("fusable ops %d exceed dynamic ops %d", sum.Fusion.FusableOps, sum.Fusion.DynOps)
			}
		})
	}
}

// TestStaticFactsPreserveReplayParity is the plan-era bit-identity spot
// check: with the engine consulting the static table (compiled replay)
// and with the table ignored (interpreted replay), a memoized run must
// produce identical architectural results, and the compiled run must
// actually exercise fused dispatch.
func TestStaticFactsPreserveReplayParity(t *testing.T) {
	prog := asmOrDie(t, mixedWorkload)
	run := func(interp bool) (Result, uint64) {
		rec := obs.NewRecorder(obs.Config{})
		in, err := NewInOrder(prog, Options{Memoize: true, ReplayInterp: interp, Obs: rec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec.Registry().Counter("rt.fused_dispatches").Load()
	}
	resC, fusedC := run(false)
	resI, fusedI := run(true)
	if !bytes.Equal(resC.Output, resI.Output) {
		t.Errorf("compiled output %q != interpreted output %q", resC.Output, resI.Output)
	}
	if resC.Exit != resI.Exit {
		t.Errorf("compiled exit %d != interpreted exit %d", resC.Exit, resI.Exit)
	}
	if resC.Cycles != resI.Cycles {
		t.Errorf("compiled cycles %d != interpreted cycles %d", resC.Cycles, resI.Cycles)
	}
	if resC.Stats.Replays == 0 || resC.Stats.Replays != resI.Stats.Replays {
		t.Errorf("replays diverge: compiled %d, interpreted %d", resC.Stats.Replays, resI.Stats.Replays)
	}
	if fusedC == 0 {
		t.Error("compiled run never dispatched a fused superinstruction")
	}
	if fusedI != 0 {
		t.Errorf("interpreted run dispatched %d fused superinstructions", fusedI)
	}
}
