package facsim

import (
	"bytes"
	"testing"

	wl "facile/internal/workloads"
)

// TestCloneIsolation: mutating a clone — directly or by running it — must
// never perturb the parent. Machine.Array/Global hand out live views of
// the machine's state, so any sharing between parent and clone would show
// up as a parent hash change.
func TestCloneIsolation(t *testing.T) {
	w, err := wl.Get("129.compress", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{KindFunctional, KindInOrder, KindOOO} {
		t.Run(kind, func(t *testing.T) {
			parent, err := New(kind, w.Prog, Options{Memoize: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := parent.M.Run(200); err != nil {
				t.Fatal(err)
			}
			before := parent.Hash()

			clone, err := parent.Clone()
			if err != nil {
				t.Fatal(err)
			}
			if clone.Hash() != before {
				t.Fatal("clone does not reproduce parent state")
			}

			// Scribble over the clone's live register array and memory.
			if r, ok := clone.M.Array("R"); ok {
				for i := range r {
					r[i] = -1
				}
			}
			clone.Env.Mem.Write64(0x1000, 0xDEADBEEF)
			clone.Env.Output = append(clone.Env.Output, "junk"...)
			if parent.Hash() != before {
				t.Fatal("mutating the clone perturbed the parent")
			}

			// Run a fresh clone to completion; the parent must stay frozen
			// and then finish identically to an undisturbed instance.
			clone2, err := parent.Clone()
			if err != nil {
				t.Fatal(err)
			}
			resClone, err := clone2.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if parent.Hash() != before {
				t.Fatal("running the clone perturbed the parent")
			}
			resParent, err := parent.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if resParent.Cycles != resClone.Cycles || resParent.Insts != resClone.Insts ||
				resParent.Exit != resClone.Exit || !bytes.Equal(resParent.Output, resClone.Output) {
				t.Fatalf("parent and clone finished differently:\n%+v\n%+v", resParent, resClone)
			}
		})
	}
}
