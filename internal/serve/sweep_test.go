package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"facile/internal/runcfg"
	"facile/internal/sweep"
)

func l1dSweep(values ...int64) SweepRequest {
	return SweepRequest{Spec: sweep.Spec{
		Name:   "l1d-study",
		Bench:  "129.compress",
		Scale:  1,
		Engine: runcfg.EngineFastsim,
		Axes:   []sweep.Axis{{Param: "l1d.size_kb", Values: values}},
	}}
}

// waitSweepTerminal blocks until the sweep settles and returns its status.
func waitSweepTerminal(t *testing.T, s *Server, id string) SweepStatus {
	t.Helper()
	ch, err := s.SweepDone(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(120 * time.Second):
		t.Fatalf("sweep %s did not finish", id)
	}
	st, err := s.SweepStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSweepServerMatchesLocal is the acceptance check: a 5-point L1D
// sweep through the server's job queue produces per-point cycles
// identical to a purely local sweep.Run, with every point after the
// first warm-starting off the shared lineage.
func TestSweepServerMatchesLocal(t *testing.T) {
	req := l1dSweep(4, 8, 16, 32, 64)

	local, err := sweep.Run(context.Background(), req.Spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	st, err := s.StartSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != SweepRunning || st.TotalPoints != 5 {
		t.Fatalf("start status %+v", st)
	}
	fin := waitSweepTerminal(t, s, st.ID)
	if fin.State != SweepDone || fin.Report == nil {
		t.Fatalf("final status %+v", fin)
	}

	rep := fin.Report
	if rep.Summary.Ran != 5 {
		t.Fatalf("ran %d/5: %+v", rep.Summary.Ran, rep.Summary)
	}
	for i := range rep.Points {
		sp, lp := rep.Points[i], local.Points[i]
		if sp.Cycles != lp.Cycles || sp.Insts != lp.Insts || sp.L1DMisses != lp.L1DMisses {
			t.Fatalf("point %d: server %d cycles/%d misses, local %d/%d",
				i, sp.Cycles, sp.L1DMisses, lp.Cycles, lp.L1DMisses)
		}
		if i > 0 && (!sp.WarmStart || (sp.WarmSource != "memory" && sp.WarmSource != "store")) {
			t.Fatalf("point %d should warm-start via the server lineage: %+v", i, sp)
		}
	}
	// Larger L1D must not increase misses.
	for i := 1; i < len(rep.Points); i++ {
		if rep.Points[i].L1DMisses > rep.Points[i-1].L1DMisses {
			t.Fatalf("miss curve not monotone at point %d", i)
		}
	}
	if fin.WarmStarts != 4 {
		t.Fatalf("warm starts %d, want 4", fin.WarmStarts)
	}
}

// TestHTTPSweepLifecycle drives submit → status → list → events → final
// report over the wire with the package client.
func TestHTTPSweepLifecycle(t *testing.T) {
	_, c := newTestAPI(t, Config{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	st, err := c.SubmitSweep(ctx, l1dSweep(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != SweepRunning {
		t.Fatalf("submit returned %+v", st)
	}

	// The NDJSON feed carries one line per settled point, then a terminal
	// sweep line.
	resp, err := c.HC.Get(c.Base + "/v1/sweeps/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var points int
	var last sweepEventLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev sweepEventLine
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		switch ev.Type {
		case "point":
			if ev.Point == nil {
				t.Fatal("point line without point body")
			}
			points++
		case "sweep":
			last = ev
		default:
			t.Fatalf("unknown event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if points != 2 {
		t.Fatalf("stream carried %d point lines, want 2", points)
	}
	if last.Type != "sweep" || last.Sweep == nil || last.Sweep.State != SweepDone {
		t.Fatalf("stream did not end with a done sweep line: %+v", last)
	}

	fin, err := c.WaitSweep(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != SweepDone || fin.Report == nil || fin.Report.Summary.Ran != 2 {
		t.Fatalf("final %+v", fin)
	}
	if fin.WarmStarts != 1 || !fin.Report.Points[1].WarmStart {
		t.Fatalf("second point should warm-start: %+v", fin.Report.Points)
	}

	list, err := c.ListSweeps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v, want the one sweep", list)
	}
}

// TestHTTPSweepErrorMapping pins the documented status codes: 400 for a
// bad spec, 404 for unknown sweeps, 409 for cancel-after-terminal.
func TestHTTPSweepErrorMapping(t *testing.T) {
	_, c := newTestAPI(t, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	wantCode := func(err error, code int, what string) {
		t.Helper()
		var se *StatusError
		if !errors.As(err, &se) || se.Code != code {
			t.Fatalf("%s: err = %v, want HTTP %d", what, err, code)
		}
	}

	bad := SweepRequest{Spec: sweep.Spec{Bench: "129.compress", Engine: runcfg.EngineFunc,
		Axes: []sweep.Axis{{Param: "l1d.size_kb", Values: []int64{8}}}}}
	_, err := c.SubmitSweep(ctx, bad)
	wantCode(err, http.StatusBadRequest, "functional engine")
	_, err = c.SweepStatus(ctx, "sweep-9999")
	wantCode(err, http.StatusNotFound, "unknown status")
	err = c.CancelSweep(ctx, "sweep-9999")
	wantCode(err, http.StatusNotFound, "unknown cancel")

	st, err := c.SubmitSweep(ctx, l1dSweep(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitSweep(ctx, st.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	err = c.CancelSweep(ctx, st.ID)
	wantCode(err, http.StatusConflict, "cancel after terminal")
}

// TestHTTPSweepCancelMidRun cancels over the wire while points are still
// running: the sweep settles as canceled with a partial report, and the
// server stays healthy for ordinary jobs.
func TestHTTPSweepCancelMidRun(t *testing.T) {
	s, c := newTestAPI(t, Config{Workers: 1, QueueDepth: 8})
	ctx := context.Background()

	// A slow multi-point sweep: big-ish workload so cancel lands mid-run.
	req := SweepRequest{Spec: sweep.Spec{
		Bench:  "126.gcc",
		Scale:  100,
		Engine: runcfg.EngineFastsim,
		Axes:   []sweep.Axis{{Param: "l1d.size_kb", Values: []int64{4, 8, 16, 32}}},
	}}
	st, err := c.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until at least one point's job is actually running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		jobs, err := c.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) > 0 && jobs[0].State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never started a job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.CancelSweep(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitSweep(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != SweepCanceled || fin.Report == nil {
		t.Fatalf("final %+v", fin)
	}
	if fin.Report.Summary.Skipped == 0 {
		t.Fatalf("cancel mid-run left no skipped points: %+v", fin.Report.Summary)
	}

	// The worker pool survives: a plain job still runs to completion.
	job, err := c.Submit(ctx, JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("post-cancel job state %s (%s)", final.State, final.Error)
	}
	_ = s
}

// TestSweepRemoteBackendE2E runs a local sweep.Run whose backend submits
// every point as a job to a live httptest fsimd: the remote twin of the
// in-process path, exercising lineage-shared warm starts across wire
// submissions and mid-sweep cancellation.
func TestSweepRemoteBackendE2E(t *testing.T) {
	_, c := newTestAPI(t, Config{Workers: 1, QueueDepth: 4})

	spec := l1dSweep(4, 8, 16).Spec
	rep, err := sweep.Run(context.Background(), spec, sweep.Options{
		Backend: &RemoteBackend{C: c, Poll: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Ran != 3 || rep.Summary.WarmStarts != 2 {
		t.Fatalf("summary %+v, want 3 ran / 2 warm", rep.Summary)
	}
	// The wire path must agree with a purely local run point for point.
	local, err := sweep.Run(context.Background(), spec, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Points {
		if rep.Points[i].Cycles != local.Points[i].Cycles {
			t.Fatalf("point %d: remote %d cycles, local %d",
				i, rep.Points[i].Cycles, local.Points[i].Cycles)
		}
	}

	// Mid-sweep cancellation: cancel after the first point settles; the
	// rest are skipped and the in-flight job is canceled server-side.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cb := &cancelAfter{inner: &RemoteBackend{C: c, Poll: 2 * time.Millisecond}, cancel: cancel, after: 1}
	rep2, err := sweep.Run(ctx, spec, sweep.Options{Backend: cb})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if rep2.Summary.Ran != 1 || rep2.Summary.Skipped != 2 {
		t.Fatalf("summary %+v, want 1 ran / 2 skipped", rep2.Summary)
	}
}

// cancelAfter wraps a backend and cancels the sweep after n points.
type cancelAfter struct {
	inner  sweep.Backend
	cancel context.CancelFunc
	after  int
	mu     sync.Mutex
	ran    int
}

func (b *cancelAfter) Run(ctx context.Context, js sweep.JobSpec) (sweep.JobResult, error) {
	res, err := b.inner.Run(ctx, js)
	b.mu.Lock()
	b.ran++
	if b.ran == b.after {
		b.cancel()
	}
	b.mu.Unlock()
	return res, err
}

// TestDrainCancelsRunningSweeps: Drain must settle in-flight sweeps
// (canceling them) before stopping the workers, without deadlocking.
func TestDrainCancelsRunningSweeps(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	req := SweepRequest{Spec: sweep.Spec{
		Bench:  "126.gcc",
		Scale:  100,
		Engine: runcfg.EngineFastsim,
		Axes:   []sweep.Axis{{Param: "l1d.size_kb", Values: []int64{4, 8, 16, 32}}},
	}}
	st, err := s.StartSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep submits its first job asynchronously; wait for it to run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if jobs := s.List(); len(jobs) > 0 && jobs[0].State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never started a job")
		}
		time.Sleep(2 * time.Millisecond)
	}

	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("drain with a running sweep hung")
	}
	fin, err := s.SweepStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != SweepCanceled {
		t.Fatalf("post-drain sweep state %s, want canceled", fin.State)
	}
	if _, err := s.StartSweep(req); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
}
