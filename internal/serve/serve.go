// Package serve turns the simulators into a long-lived job service, the
// piece that lets the paper's memoization economics compound across runs:
// a one-shot fsim invocation pays the specialization cost of warming its
// action cache every time, while a server can hand the cache built by one
// job to the next job running the same (program, engine, configuration) —
// its cache lineage — so steady-state jobs start fast-forwarding from the
// first step.
//
// The server is a bounded FIFO queue in front of a fixed worker pool.
// Submissions beyond the queue bound are rejected (the HTTP layer maps
// that to 429), jobs run with per-job timeouts and one retry when the
// failure is a recovered simulator fault (internal/faults), and SIGTERM
// drain checkpoints in-flight jobs through internal/snapshot and requeues
// them as restorable, so a restart loses no completed work.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"facile/internal/cachestore"
	"facile/internal/facsim"
	"facile/internal/faults"
	"facile/internal/isa/asm"
	"facile/internal/isa/loader"
	"facile/internal/lang/vet"
	"facile/internal/obs"
	"facile/internal/runcfg"
	"facile/internal/snapshot"
	"facile/internal/workloads"
)

// Job states. A job moves queued → running → one of the terminal states
// (done, failed, canceled), or to requeued when a drain checkpoints it;
// resubmitting a requeued job puts it back to queued with its progress.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
	StateRequeued = "requeued"
)

// Sentinel errors, mapped to HTTP statuses by the API layer.
var (
	ErrQueueFull  = errors.New("serve: queue full")
	ErrDraining   = errors.New("serve: server draining")
	ErrUnknownJob = errors.New("serve: unknown job")
	ErrJobDone    = errors.New("serve: job already terminal")
)

// JobRequest describes one simulation job. Exactly one of Bench (a
// bundled benchmark from internal/workloads) or Asm (SVR32 assembly
// source) selects the program.
type JobRequest struct {
	Bench string `json:"bench,omitempty"`
	Scale int    `json:"scale,omitempty"` // benchmark scale (default 1)
	Asm   string `json:"asm,omitempty"`   // assembly source, assembled in the worker

	Engine        string `json:"engine"` // runcfg engine name
	Memoize       bool   `json:"memoize,omitempty"`
	CacheCapBytes uint64 `json:"cache_cap_bytes,omitempty"`

	// MaxInsts bounds the run (committed instructions; Facile steps for
	// fac-* engines). 0 runs to completion.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// ChunkInsts is the progress between cancellation/timeout/drain checks
	// and therefore the drain checkpoint granularity (0 = server default).
	ChunkInsts uint64 `json:"chunk_insts,omitempty"`
	TimeoutMs  int64  `json:"timeout_ms,omitempty"` // 0 = server default

	// ParsimWorkers > 1 runs the job as parallel interval simulation
	// (fastsim only). Parsim jobs requeue cold on drain (their interval
	// results are not snapshottable mid-flight) and do not join a cache
	// lineage (each interval owns a private cache).
	ParsimWorkers int    `json:"parsim_workers,omitempty"`
	IntervalInsts uint64 `json:"interval_insts,omitempty"`

	SampleEvery uint64 `json:"sample_every,omitempty"` // obs sampling stride

	// Uarch overrides the simulated micro-architecture (timing engines
	// only; nil = defaults). Memory-system and predictor overrides keep
	// the job in the same cache lineage as default-config jobs — their
	// results are verified during replay — while core overrides (widths,
	// window, FU counts) fork a new lineage.
	Uarch *runcfg.UarchSpec `json:"uarch,omitempty"`

	// NoVet skips the static-analysis preflight of the bundled Facile
	// description (fac-* engines). Without it, submissions whose engine
	// fails vet with error-severity findings are rejected.
	NoVet bool `json:"no_vet,omitempty"`
}

// Validate checks the request shape without assembling the program.
func (r *JobRequest) Validate() error {
	if (r.Bench == "") == (r.Asm == "") {
		return fmt.Errorf("exactly one of bench or asm must be set")
	}
	if r.Bench != "" {
		if _, err := workloads.Source(r.Bench, 1); err != nil {
			return err
		}
	}
	if r.Engine == "" {
		r.Engine = runcfg.EngineFunc
	}
	if !runcfg.ValidEngine(r.Engine) {
		return fmt.Errorf("unknown engine %q (valid: %v)", r.Engine, runcfg.Engines())
	}
	if r.Scale < 1 {
		r.Scale = 1
	}
	if r.ParsimWorkers > 1 && r.Engine != runcfg.EngineFastsim {
		return fmt.Errorf("parsim_workers requires engine %q", runcfg.EngineFastsim)
	}
	if r.ParsimWorkers > 1 && r.IntervalInsts == 0 {
		r.IntervalInsts = 1 << 20
	}
	if !r.Uarch.IsZero() {
		switch r.Engine {
		case runcfg.EngineFunc, runcfg.EngineFacFunc:
			return fmt.Errorf("engine %q is purely functional; uarch overrides do not apply", r.Engine)
		}
		if err := r.Uarch.Effective().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// runcfgConfig maps the request onto the shared run-setup layer.
func (r *JobRequest) runcfgConfig(rec *obs.Recorder) runcfg.Config {
	cfg := runcfg.Config{
		Engine:        r.Engine,
		Memoize:       r.Memoize,
		CacheCapBytes: r.CacheCapBytes,
		Obs:           rec,
		SampleEvery:   r.SampleEvery,
	}
	if !r.Uarch.IsZero() {
		uc := r.Uarch.Effective()
		cfg.Uarch = &uc
	}
	return cfg
}

// LineageKey identifies the job's cache lineage: jobs with equal keys run
// the same program under the same specialization-relevant configuration,
// so their action caches are interchangeable. Empty for jobs that build
// no shareable cache.
func (r *JobRequest) LineageKey() string {
	cfg := r.runcfgConfig(nil)
	if !cfg.Memoizing() || r.ParsimWorkers > 1 {
		return ""
	}
	return runcfg.LineageKey(r.Bench, r.Scale, r.Asm, r.Engine, r.Memoize, r.CacheCapBytes, r.Uarch)
}

// program assembles the job's program.
func (r *JobRequest) program() (*loader.Program, error) {
	if r.Bench != "" {
		w, err := workloads.Get(r.Bench, r.Scale)
		if err != nil {
			return nil, err
		}
		return w.Prog, nil
	}
	return asm.Assemble("job.s", r.Asm)
}

// Job is the server-side record of one submission. All mutable fields are
// guarded by the server mutex; JobStatus snapshots them for the API.
type Job struct {
	id  string
	req JobRequest

	state     string
	err       string
	attempt   int
	queuedAt  time.Time
	startedAt time.Time
	doneAt    time.Time

	committed    uint64 // progress at the last chunk boundary
	restoredFrom uint64 // progress carried in on resubmit (0 = fresh)

	warmStart   bool
	warmEntries uint64
	warmBytes   uint64
	warmSource  string // "memory" or "store" when warmStart
	lineage     string

	result *runcfg.Result
	stats  *runcfg.Stats

	cancelRequested bool
	cancel          context.CancelFunc // set while running

	resume     []byte // snapshot blob captured by drain
	resumeKind string

	vet *vet.Summary // preflight summary for fac-* engines

	done chan struct{} // closed when the job reaches a terminal state
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Engine  string `json:"engine"`
	Bench   string `json:"bench,omitempty"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error,omitempty"`

	QueuedAt   time.Time `json:"queued_at"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`

	Committed    uint64 `json:"committed"`
	RestoredFrom uint64 `json:"restored_from,omitempty"`

	// Warm-cache sharing: whether this job adopted a predecessor's action
	// cache, how much it adopted, and the lineage it belongs to.
	LineageKey  string `json:"lineage_key,omitempty"`
	WarmStart   bool   `json:"warm_start"`
	WarmEntries uint64 `json:"warm_entries,omitempty"`
	WarmBytes   uint64 `json:"warm_bytes,omitempty"`
	// WarmSource says where the adopted cache came from: "memory" (parked
	// by an earlier job in this process), "migrated" (a store record the
	// fleet router moved here from the lineage's previous owner — reported
	// by the router, never by a single worker) or "store" (the persistent store,
	// surviving a restart).
	WarmSource string `json:"warm_source,omitempty"`

	// FastSharePc is the slow/fast split achieved by the run so far —
	// the serving-economics headline number.
	FastSharePc float64 `json:"fast_share_pc"`

	Result *runcfg.Result `json:"result,omitempty"`
	Stats  *runcfg.Stats  `json:"stats,omitempty"`

	// Vet is the static-analysis preflight summary of the engine's bundled
	// Facile description (fac-* engines only).
	Vet *vet.Summary `json:"vet,omitempty"`
}

// WarmSource provenance values for JobStatus.WarmSource.
const (
	WarmSourceMemory   = "memory"
	WarmSourceStore    = "store"
	WarmSourceMigrated = "migrated"
)

// RequeuedJob is the restorable form of a drained job: the original
// request plus the snapshot blob ([]byte marshals as base64) needed to
// resume where the drain checkpointed it. It round-trips through JSON for
// the spool directory.
type RequeuedJob struct {
	ID        string     `json:"id"`
	Req       JobRequest `json:"req"`
	Attempt   int        `json:"attempt"`
	Committed uint64     `json:"committed"`
	Kind      string     `json:"kind,omitempty"`   // snapshot kind
	Resume    []byte     `json:"resume,omitempty"` // snapshot.Encode blob
}

// Config sizes a Server.
type Config struct {
	Workers        int           // worker pool size (default 2)
	QueueDepth     int           // bounded FIFO depth (default 64)
	DefaultTimeout time.Duration // per-job timeout when the request sets none (0 = none)
	ChunkInsts     uint64        // default cancellation/checkpoint granularity (default 1<<16)

	// Rec is the shared observability recorder; one is created when nil.
	// Each job samples into its own track ("job-<id>").
	Rec *obs.Recorder

	// Store, when non-nil, persists parked warm caches across restarts:
	// every park (and the final drain) writes the lineage's cache through
	// it, and a lineage with no in-memory cache falls back to the store
	// before running cold. Store failures never fail jobs — persistence
	// degrades, simulation does not.
	Store *cachestore.Store
}

// Server is the job service: bounded queue, worker pool, lineage table.
type Server struct {
	cfg   Config
	rec   *obs.Recorder
	store *cachestore.Store // nil = no persistence

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for List
	queue    chan *Job
	draining bool
	nextID   uint64
	running  int // jobs currently in StateRunning
	lineages map[string]*lineage

	// Sweeps (see sweep.go): design-space sweeps running as batches of
	// ordinary jobs. sweepWg tracks their driver goroutines for Drain.
	sweeps     map[string]*sweepRec
	sweepOrder []string
	sweepSeq   uint64
	sweepWg    sync.WaitGroup

	drainCtx    context.Context
	drainCancel context.CancelFunc
	wg          sync.WaitGroup

	// Warm-cache occupancy gauges: at any instant they equal the sum over
	// lineages of the parked caches' sizes. A cache taken by a running job
	// is charged to that job's engine gauge instead; a canceled or failed
	// job's cache is dropped, never parked, so cancellation refunds the
	// serve-level occupancy by construction.
	warmBytes   *obs.Gauge
	warmEntries *obs.Gauge
}

// lineage is one cache-lineage group: jobs with the same LineageKey hand
// their specialized action cache forward through the parked slot.
type lineage struct {
	parked  runcfg.WarmCache // nil when no cache is parked
	engine  string           // engine that built the parked cache
	entries uint64
	bytes   uint64
	parks   uint64
	takes   uint64
}

// New builds and starts a server (its worker pool runs until Drain).
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ChunkInsts == 0 {
		cfg.ChunkInsts = 1 << 16
	}
	rec := cfg.Rec
	if rec == nil {
		rec = obs.NewRecorder(obs.Config{})
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		rec:         rec,
		store:       cfg.Store,
		jobs:        make(map[string]*Job),
		queue:       make(chan *Job, cfg.QueueDepth),
		lineages:    make(map[string]*lineage),
		sweeps:      make(map[string]*sweepRec),
		drainCtx:    ctx,
		drainCancel: cancel,
		warmBytes:   rec.Registry().Gauge("serve.warm_bytes"),
		warmEntries: rec.Registry().Gauge("serve.warm_entries"),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Recorder returns the server's observability recorder.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Store returns the persistent cache store, or nil when persistence is
// off.
func (s *Server) Store() *cachestore.Store { return s.store }

// vetPreflight is the engine preflight hook; a package variable so tests
// can exercise the rejection path (the bundled descriptions vet clean).
var vetPreflight = facsim.Preflight

// Submit validates and enqueues a job. It returns ErrDraining after a
// drain started and ErrQueueFull when the bounded queue is at capacity —
// backpressure the API layer reports as 503 and 429. fac-* submissions
// are vetted first: error-severity findings in the engine's bundled
// description reject the job unless the request sets no_vet.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	if err := req.Validate(); err != nil {
		return JobStatus{}, err
	}
	vetSum, vetted := vetPreflight(req.Engine)
	if vetted && !req.NoVet && !vetSum.OK() {
		return JobStatus{}, fmt.Errorf("serve: engine %s fails vet preflight with %d error finding(s): %s (set no_vet to override)",
			req.Engine, vetSum.Errors, strings.Join(vetSum.ErrorFindings, "; "))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	// Resubmit advances nextID past resumed IDs, but a spooled ID that does
	// not parse (hand-edited spool file) could still collide with the
	// sequence, so skip any ID already taken.
	prev := s.nextID
	s.nextID++
	for s.jobs[fmt.Sprintf("job-%06d", s.nextID)] != nil {
		s.nextID++
	}
	j := &Job{
		id:       fmt.Sprintf("job-%06d", s.nextID),
		req:      req,
		state:    StateQueued,
		attempt:  1,
		queuedAt: time.Now(),
		lineage:  req.LineageKey(),
		done:     make(chan struct{}),
	}
	if vetted {
		j.vet = &vetSum
	}
	select {
	case s.queue <- j:
	default:
		s.nextID = prev
		s.counter("serve.queue_rejects").Inc()
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.counter("serve.jobs_submitted").Inc()
	return s.statusLocked(j), nil
}

// Resubmit enqueues a previously drained job under its original ID,
// preserving its attempt count and checkpointed progress.
func (s *Server) Resubmit(rq RequeuedJob) (JobStatus, error) {
	if err := rq.Req.Validate(); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	if _, exists := s.jobs[rq.ID]; exists {
		return JobStatus{}, fmt.Errorf("serve: job %s already present", rq.ID)
	}
	// Keep the fresh-submission sequence ahead of every resumed ID, or the
	// next Submit would mint a duplicate and orphan the resumed job.
	if n, ok := jobIDSeq(rq.ID); ok && n > s.nextID {
		s.nextID = n
	}
	attempt := rq.Attempt
	if attempt < 1 {
		attempt = 1
	}
	j := &Job{
		id:           rq.ID,
		req:          rq.Req,
		state:        StateQueued,
		attempt:      attempt,
		queuedAt:     time.Now(),
		lineage:      rq.Req.LineageKey(),
		restoredFrom: rq.Committed,
		committed:    rq.Committed,
		resume:       rq.Resume,
		resumeKind:   rq.Kind,
		done:         make(chan struct{}),
	}
	// Resumed jobs were vetted (or overridden) at original submission;
	// record the summary without re-gating.
	if sum, ok := vetPreflight(rq.Req.Engine); ok {
		j.vet = &sum
	}
	select {
	case s.queue <- j:
	default:
		s.counter("serve.queue_rejects").Inc()
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.counter("serve.jobs_resubmitted").Inc()
	return s.statusLocked(j), nil
}

// Status reports one job.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, ErrUnknownJob
	}
	return s.statusLocked(j), nil
}

// List reports every job in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Cancel requests cancellation. A queued job is discarded when a worker
// dequeues it; a running job stops at its next chunk boundary.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return ErrUnknownJob
	}
	if j.state != StateQueued && j.state != StateRunning {
		return ErrJobDone
	}
	j.cancelRequested = true
	if j.cancel != nil {
		j.cancel()
	}
	return nil
}

// Done returns a channel closed when the job reaches a terminal state
// (done, failed, canceled, or requeued by a drain).
func (s *Server) Done(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, ErrUnknownJob
	}
	return j.done, nil
}

// LoadStats is the server's instantaneous load picture, surfaced through
// /healthz so a fleet router can shed new lineages away from a saturated
// worker before submissions start bouncing off hard 429s. Queued is the
// bounded queue's current depth, QueueCap its bound, Running the jobs
// held by workers right now, and Workers the pool size.
type LoadStats struct {
	Queued   int `json:"queued"`
	QueueCap int `json:"queue_cap"`
	Running  int `json:"running"`
	Workers  int `json:"workers"`
}

// Saturation is Running over Workers: 1.0 means every pool worker is
// busy, the point past which queue depth starts to grow.
func (l LoadStats) Saturation() float64 {
	if l.Workers == 0 {
		return 0
	}
	return float64(l.Running) / float64(l.Workers)
}

// Load reports the server's current load.
func (s *Server) Load() LoadStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return LoadStats{
		Queued:   len(s.queue),
		QueueCap: s.cfg.QueueDepth,
		Running:  s.running,
		Workers:  s.cfg.Workers,
	}
}

// WarmOccupancy reports the serve-level warm-cache gauges (entries,
// bytes): the total size of all parked lineage caches.
func (s *Server) WarmOccupancy() (entries, bytes int64) {
	return s.warmEntries.Load(), s.warmBytes.Load()
}

// FlushWarm drops every parked lineage cache, refunding the gauges. It
// returns the number of caches dropped.
func (s *Server) FlushWarm() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ln := range s.lineages {
		if ln.parked != nil {
			s.warmEntries.Add(-int64(ln.entries))
			s.warmBytes.Add(-int64(ln.bytes))
			ln.parked, ln.entries, ln.bytes = nil, 0, 0
			n++
		}
	}
	return n
}

// Drain stops the server: no new submissions are accepted, workers stop
// picking up work, running jobs checkpoint at their next chunk boundary
// and are marked requeued, and still-queued jobs are requeued untouched.
// It blocks until every worker has stopped and returns the restorable
// jobs in their original submission order, ready for Resubmit (typically
// on the next server process).
func (s *Server) Drain() []RequeuedJob {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	// Sweeps first: their driver goroutines own in-flight jobs, so cancel
	// them and wait until every sweep-owned job has settled before the
	// workers checkpoint. Sweep points are cheap batch work — they cancel,
	// they do not checkpoint.
	s.cancelSweepsForDrain()

	s.drainCancel() // running jobs checkpoint; idle workers exit
	s.wg.Wait()

	s.mu.Lock()
	// Whatever is still in the channel was never started: requeue as-is —
	// unless cancellation was already requested, in which case the job
	// finishes canceled (as the Cancel caller was told) instead of
	// resurrecting as runnable after resume.
	for {
		select {
		case j := <-s.queue:
			if j.cancelRequested {
				s.finishLocked(j, StateCanceled, "canceled while queued")
			} else {
				s.finishLocked(j, StateRequeued, "")
			}
		default:
			goto drained
		}
	}
drained:
	var out []RequeuedJob
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state != StateRequeued {
			continue
		}
		out = append(out, RequeuedJob{
			ID:        j.id,
			Req:       j.req,
			Attempt:   j.attempt,
			Committed: j.committed,
			Kind:      j.resumeKind,
			Resume:    j.resume,
		})
		s.counter("serve.jobs_requeued").Inc()
	}
	// Save-on-drain: re-persist every parked cache so the store holds the
	// final warm state even if an earlier per-park save failed. The workers
	// are gone, so the encode-then-write can happen outside the lock.
	type persist struct {
		key, engine    string
		entries, bytes uint64
		payload        []byte
	}
	var persists []persist
	if s.store != nil {
		for key, ln := range s.lineages {
			if ln.parked == nil {
				continue
			}
			if payload := s.encodeParkedLocked(ln.parked); payload != nil {
				persists = append(persists, persist{key, ln.engine, ln.entries, ln.bytes, payload})
			}
		}
	}
	s.mu.Unlock()
	for _, p := range persists {
		s.persistWarm(p.key, p.engine, p.entries, p.bytes, p.payload)
	}
	return out
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// --- internals -------------------------------------------------------------

func (s *Server) counter(name string) *obs.Counter {
	return s.rec.Registry().Counter(name)
}

// jobIDSeq extracts the sequence number from a "job-%06d" ID.
func jobIDSeq(id string) (uint64, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(id[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// statusLocked snapshots a job; callers hold s.mu.
func (s *Server) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:           j.id,
		State:        j.state,
		Engine:       j.req.Engine,
		Bench:        j.req.Bench,
		Attempt:      j.attempt,
		Error:        j.err,
		QueuedAt:     j.queuedAt,
		StartedAt:    j.startedAt,
		FinishedAt:   j.doneAt,
		Committed:    j.committed,
		RestoredFrom: j.restoredFrom,
		LineageKey:   j.lineage,
		WarmStart:    j.warmStart,
		WarmEntries:  j.warmEntries,
		WarmBytes:    j.warmBytes,
		WarmSource:   j.warmSource,
	}
	if j.vet != nil {
		v := *j.vet
		st.Vet = &v
	}
	if j.result != nil {
		r := *j.result
		st.Result = &r
	}
	if j.stats != nil {
		c := *j.stats
		st.Stats = &c
		if total := c.SlowSteps + c.Replays; total > 0 {
			st.FastSharePc = 100 * float64(c.Replays) / float64(total)
		}
		if c.FastForwardedPc > 0 {
			st.FastSharePc = c.FastForwardedPc
		}
	}
	return st
}

// finishLocked moves a job to a terminal state; callers hold s.mu.
func (s *Server) finishLocked(j *Job, state, errMsg string) {
	if j.state == StateDone || j.state == StateFailed ||
		j.state == StateCanceled || j.state == StateRequeued {
		return
	}
	if j.state == StateRunning {
		s.running--
	}
	j.state = state
	j.err = errMsg
	j.doneAt = time.Now()
	j.cancel = nil
	close(j.done)
	switch state {
	case StateDone:
		s.counter("serve.jobs_completed").Inc()
	case StateFailed:
		s.counter("serve.jobs_failed").Inc()
	case StateCanceled:
		s.counter("serve.jobs_canceled").Inc()
	}
}

// takeWarm removes the lineage's parked cache for a starting job.
func (s *Server) takeWarm(key string) runcfg.WarmCache {
	if key == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ln := s.lineages[key]
	if ln == nil || ln.parked == nil {
		return nil
	}
	wc := ln.parked
	s.warmEntries.Add(-int64(ln.entries))
	s.warmBytes.Add(-int64(ln.bytes))
	ln.parked, ln.entries, ln.bytes = nil, 0, 0
	ln.takes++
	s.counter("serve.warm_takes").Inc()
	return wc
}

// parkWarm stores a finished job's detached cache for the lineage's next
// job. When a cache is already parked (a concurrent sibling finished
// first), the one with more entries wins and the other is dropped. With a
// store configured, the winning cache is also persisted: the payload is
// encoded under the lock (a parked cache is immutable only until a
// concurrent takeWarm hands it to a runner) and the file I/O happens
// outside it.
func (s *Server) parkWarm(key, engine string, wc runcfg.WarmCache) {
	if key == "" || wc == nil || wc.Entries() == 0 {
		return
	}
	s.mu.Lock()
	ln := s.lineages[key]
	if ln == nil {
		ln = &lineage{}
		s.lineages[key] = ln
	}
	if ln.parked != nil {
		if ln.parked.Entries() >= wc.Entries() {
			s.mu.Unlock()
			return // keep the bigger cache
		}
		s.warmEntries.Add(-int64(ln.entries))
		s.warmBytes.Add(-int64(ln.bytes))
	}
	ln.parked = wc
	ln.engine = engine
	ln.entries = wc.Entries()
	ln.bytes = wc.Bytes()
	ln.parks++
	s.warmEntries.Add(int64(ln.entries))
	s.warmBytes.Add(int64(ln.bytes))
	s.counter("serve.warm_parks").Inc()
	entries, bytes := ln.entries, ln.bytes
	payload := s.encodeParkedLocked(wc)
	s.mu.Unlock()
	s.persistWarm(key, engine, entries, bytes, payload)
}

// encodeParkedLocked serializes a just-parked cache while s.mu pins it in
// the parked slot (so no runner can adopt — and mutate — it mid-walk).
// Returns nil when persistence is off or the cache is not serializable.
func (s *Server) encodeParkedLocked(wc runcfg.WarmCache) []byte {
	if s.store == nil {
		return nil
	}
	payload, err := runcfg.EncodeWarmCache(wc)
	if err != nil {
		s.counter("serve.warm_save_errors").Inc()
		return nil
	}
	return payload
}

// persistWarm writes one encoded cache to the store. Failures are counted
// and swallowed: a job must never fail because its byproduct could not be
// persisted.
func (s *Server) persistWarm(key, engine string, entries, bytes uint64, payload []byte) {
	if s.store == nil || payload == nil {
		return
	}
	fp := runcfg.CacheFingerprint(engine)
	if fp == "" {
		return
	}
	if err := s.store.Save(key, engine, fp, entries, bytes, payload); err != nil {
		s.counter("serve.warm_save_errors").Inc()
		return
	}
	s.counter("serve.warm_saves").Inc()
}

// loadStoredWarm is the fallback behind an in-memory lineage miss: load
// the persisted record, gate it on the current build's fingerprint, and
// reconstruct the cache. Any failure degrades to a cold run; a stale
// fingerprint (the simulator changed since the record was saved) deletes
// the record — it can never become adoptable again.
func (s *Server) loadStoredWarm(key, engine string) runcfg.WarmCache {
	if s.store == nil || key == "" {
		return nil
	}
	m, payload, err := s.store.Load(key)
	if err != nil {
		return nil // miss, corrupt (already quarantined), or disabled
	}
	fp := runcfg.CacheFingerprint(engine)
	if fp == "" || m.Fingerprint != fp || m.Engine != engine {
		_ = s.store.Delete(key)
		s.counter("serve.warm_store_stale").Inc()
		return nil
	}
	wc, err := runcfg.DecodeWarmCache(payload)
	if err != nil {
		// The CRC passed but the payload does not reconstruct: a format bug
		// or skew the fingerprint failed to capture. Remove the record so it
		// is not retried forever.
		_ = s.store.Delete(key)
		s.counter("serve.warm_store_stale").Inc()
		return nil
	}
	return wc
}

// worker is one pool goroutine: it pulls jobs until the drain fires.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.drainCtx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.runJob(j)
		}
	}
}

// jobOutcome classifies how one attempt ended.
type jobOutcome int

const (
	outcomeOK jobOutcome = iota
	outcomeErr
	outcomeCanceled
	outcomeTimeout
	outcomeDrain
)

// runJob drives one job through its attempts (at most one retry, and only
// for recovered simulator faults — see internal/faults).
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	if j.cancelRequested {
		s.finishLocked(j, StateCanceled, "canceled while queued")
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.state = StateRunning
	j.startedAt = time.Now()
	s.running++
	s.mu.Unlock()
	defer cancel()

	outcome, err := s.runAttempt(ctx, j, true)
	if outcome == outcomeErr {
		var f *faults.Fault
		if errors.As(err, &f) {
			// One faults-aware retry, cold: the cache that produced a
			// structural fault is suspect, so the retry neither adopts a
			// warm cache nor parks its own... it does park its own on
			// success (a freshly built cache is trustworthy).
			s.mu.Lock()
			j.attempt++
			j.committed = j.restoredFrom
			// The faulted attempt's adopted cache is discarded with it.
			j.warmStart = false
			j.warmEntries, j.warmBytes = 0, 0
			s.mu.Unlock()
			s.counter("serve.jobs_retried").Inc()
			outcome, err = s.runAttempt(ctx, j, false)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch outcome {
	case outcomeOK:
		s.finishLocked(j, StateDone, "")
	case outcomeCanceled:
		s.finishLocked(j, StateCanceled, "canceled")
	case outcomeTimeout:
		s.finishLocked(j, StateFailed, "timeout")
	case outcomeDrain:
		s.finishLocked(j, StateRequeued, "")
	default:
		s.finishLocked(j, StateFailed, err.Error())
	}
}

// runAttempt runs one attempt of a job. adoptWarm selects whether the
// attempt may join its cache lineage (retries run cold).
func (s *Server) runAttempt(ctx context.Context, j *Job, adoptWarm bool) (jobOutcome, error) {
	if j.req.ParsimWorkers > 1 {
		return s.runParsimAttempt(ctx, j)
	}
	prog, err := j.req.program()
	if err != nil {
		return outcomeErr, err
	}
	rec := s.rec.WithTrack("job-" + j.id)
	r, err := newRunner(prog, j.req.runcfgConfig(rec))
	if err != nil {
		return outcomeErr, err
	}

	// Warm-start before restore: AdoptCache requires a runner that has not
	// stepped yet, and the restored progress below does not invalidate the
	// adopted entries (same program, same configuration). The in-memory
	// parked cache wins over the persistent store — it is newer or equal by
	// construction (every park also persists).
	if adoptWarm {
		wc, source := s.takeWarm(j.lineage), "memory"
		if wc == nil {
			wc, source = s.loadStoredWarm(j.lineage, j.req.Engine), "store"
		}
		if wc != nil {
			// Size the cache before adoption: AdoptCache transfers ownership
			// and empties the detached handle.
			entries, bs := wc.Entries(), wc.Bytes()
			if r.AdoptCache(wc) {
				s.mu.Lock()
				j.warmStart = true
				j.warmEntries = entries
				j.warmBytes = bs
				j.warmSource = source
				s.mu.Unlock()
				s.counter("serve.warm_hits").Inc()
				if source == "store" {
					s.counter("serve.warm_store_hits").Inc()
				}
			}
			// An adoption refusal drops the cache: it was detached (its
			// lineage slot is empty) and re-parking a cache of unknown
			// provenance is worse than rebuilding one.
		}
	}
	s.mu.Lock()
	resume, resumeKind := j.resume, j.resumeKind
	s.mu.Unlock()
	if len(resume) > 0 {
		kind, rd, _, err := snapshot.Decode(resume)
		if err != nil {
			return outcomeErr, fmt.Errorf("restore: %w", err)
		}
		if kind != r.SnapshotKind() || kind != resumeKind {
			return outcomeErr, fmt.Errorf("restore: snapshot kind %q does not match engine %q", kind, r.SnapshotKind())
		}
		if err := r.Load(rd); err != nil {
			return outcomeErr, fmt.Errorf("restore: %w", err)
		}
	}

	chunk := j.req.ChunkInsts
	if chunk == 0 {
		chunk = s.cfg.ChunkInsts
	}
	deadline := s.attemptDeadline(j)

	for !r.Done() {
		if err := ctx.Err(); err != nil {
			return outcomeCanceled, err
		}
		if s.drainCtx.Err() != nil {
			// Checkpoint at this chunk boundary and hand the job back.
			w := snapshot.NewWriter()
			if err := r.Save(w); err != nil {
				return outcomeErr, fmt.Errorf("drain checkpoint: %w", err)
			}
			s.mu.Lock()
			j.resume = snapshot.Encode(r.SnapshotKind(), w)
			j.resumeKind = r.SnapshotKind()
			j.committed = r.Progress()
			s.mu.Unlock()
			return outcomeDrain, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return outcomeTimeout, nil
		}
		target := r.Progress() + chunk
		if j.req.MaxInsts > 0 && target > j.req.MaxInsts {
			target = j.req.MaxInsts
		}
		if err := r.Run(target); err != nil {
			return outcomeErr, err
		}
		s.mu.Lock()
		j.committed = r.Progress()
		s.mu.Unlock()
		if j.req.MaxInsts > 0 && r.Progress() >= j.req.MaxInsts {
			break
		}
	}

	res := r.Result()
	st := r.Stats()
	s.mu.Lock()
	j.result = &res
	j.stats = &st
	j.committed = r.Progress()
	j.resume, j.resumeKind = nil, ""
	s.mu.Unlock()
	s.parkWarm(j.lineage, j.req.Engine, r.DetachCache())
	return outcomeOK, nil
}

// newRunner builds the job's engine; tests substitute it to exercise the
// retry and failure paths that healthy engines rarely take.
var newRunner = runcfg.New

// attemptDeadline computes the wall-clock deadline for one attempt.
func (s *Server) attemptDeadline(j *Job) time.Time {
	d := s.cfg.DefaultTimeout
	if j.req.TimeoutMs > 0 {
		d = time.Duration(j.req.TimeoutMs) * time.Millisecond
	}
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}
