package serve

import (
	"strings"
	"testing"

	"facile/internal/lang/vet"
	"facile/internal/runcfg"
)

// TestSubmitVetPreflight exercises the fac-* preflight gate: error
// findings reject the submission (naming the findings) unless no_vet is
// set, and the summary lands in the job record either way. The bundled
// descriptions vet clean, so the failing summary is injected through the
// vetPreflight hook.
func TestSubmitVetPreflight(t *testing.T) {
	old := vetPreflight
	t.Cleanup(func() { vetPreflight = old })
	bad := vet.Summary{
		Errors:        1,
		ErrorFindings: []string{"facile/ooo.fac:9:5: FV0601: dynamic value stored into a run-time static queue"},
	}
	vetPreflight = func(kind string) (vet.Summary, bool) {
		switch kind {
		case runcfg.EngineFacOOO:
			return bad, true
		case runcfg.EngineFacFunc, runcfg.EngineFacInOrder:
			return vet.Summary{Infos: 3}, true
		}
		return vet.Summary{}, false
	}

	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// Error findings reject the submission and name a finding.
	_, err := s.Submit(JobRequest{Bench: "130.li", Engine: runcfg.EngineFacOOO, MaxInsts: 100})
	if err == nil {
		t.Fatal("Submit(fac-ooo with vet errors) succeeded, want rejection")
	}
	if !strings.Contains(err.Error(), "FV0601") || !strings.Contains(err.Error(), "no_vet") {
		t.Errorf("rejection %q does not name the finding and the override", err)
	}

	// no_vet overrides the gate, and the summary is still recorded.
	st, err := s.Submit(JobRequest{Bench: "130.li", Engine: runcfg.EngineFacOOO, MaxInsts: 100, NoVet: true})
	if err != nil {
		t.Fatalf("Submit(no_vet): %v", err)
	}
	if st.Vet == nil || st.Vet.Errors != 1 {
		t.Errorf("no_vet job status Vet = %+v, want the failing summary recorded", st.Vet)
	}

	// A clean fac engine passes and carries its summary.
	st, err = s.Submit(JobRequest{Bench: "130.li", Engine: runcfg.EngineFacFunc, MaxInsts: 100})
	if err != nil {
		t.Fatalf("Submit(fac-func): %v", err)
	}
	if st.Vet == nil || st.Vet.Infos != 3 || st.Vet.Errors != 0 {
		t.Errorf("fac-func job status Vet = %+v, want clean summary with 3 infos", st.Vet)
	}

	// Non-Facile engines are not vetted and carry no summary.
	st, err = s.Submit(JobRequest{Bench: "130.li", Engine: runcfg.EngineFunc, MaxInsts: 100})
	if err != nil {
		t.Fatalf("Submit(func): %v", err)
	}
	if st.Vet != nil {
		t.Errorf("func job status Vet = %+v, want nil", st.Vet)
	}
}
