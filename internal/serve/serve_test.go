package serve

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"facile/internal/faults"
	"facile/internal/isa/loader"
	"facile/internal/obs"
	"facile/internal/runcfg"
	"facile/internal/snapshot"
	"facile/internal/workloads"
)

// newTestServer builds a server that is always drained at test end, so no
// worker goroutine outlives its test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Drain() })
	return s
}

// waitTerminal blocks until the job leaves the queued/running states.
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ch, err := s.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// waitRunning polls until the job is running with progress past `past`.
func waitRunning(t *testing.T, s *Server, id string, past uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning && st.Committed > past {
			return
		}
		if st.State != StateQueued && st.State != StateRunning {
			t.Fatalf("job %s reached %s while waiting for running", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached running with progress > %d", id, past)
}

// reference runs the request directly through runcfg for ground truth.
func reference(t *testing.T, req JobRequest) runcfg.Result {
	t.Helper()
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	prog := refProgram(t, req)
	r, err := runcfg.New(prog, req.runcfgConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	for !r.Done() {
		target := r.Progress() + 1<<16
		if req.MaxInsts > 0 && target > req.MaxInsts {
			target = req.MaxInsts
		}
		if err := r.Run(target); err != nil {
			t.Fatal(err)
		}
		if req.MaxInsts > 0 && r.Progress() >= req.MaxInsts {
			break
		}
	}
	return r.Result()
}

func refProgram(t *testing.T, req JobRequest) *loader.Program {
	t.Helper()
	w, err := workloads.Get(req.Bench, req.Scale)
	if err != nil {
		t.Fatal(err)
	}
	return w.Prog
}

func checkResult(t *testing.T, name string, got JobStatus, want runcfg.Result) {
	t.Helper()
	if got.State != StateDone {
		t.Fatalf("%s: state %s (err %q), want done", name, got.State, got.Error)
	}
	if got.Result == nil {
		t.Fatalf("%s: no result", name)
	}
	if got.Result.Insts != want.Insts || got.Result.Cycles != want.Cycles ||
		got.Result.Exit != want.Exit || !bytes.Equal(got.Result.Output, want.Output) {
		t.Fatalf("%s: result %d insts/%d cycles/exit %d diverges from reference %d/%d/%d",
			name, got.Result.Insts, got.Result.Cycles, got.Result.Exit,
			want.Insts, want.Cycles, want.Exit)
	}
}

// TestE2EConcurrentMixedJobs is the headline end-to-end check: many
// concurrent submitters, mixed engines, every job completes with results
// identical to a direct run of the same configuration.
func TestE2EConcurrentMixedJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	reqs := []JobRequest{
		{Bench: "129.compress", Scale: 2, Engine: runcfg.EngineFunc},
		{Bench: "126.gcc", Scale: 2, Engine: runcfg.EngineFastsim, Memoize: true},
		{Bench: "101.tomcatv", Scale: 1, Engine: runcfg.EngineOOO},
		{Bench: "130.li", Scale: 1, Engine: runcfg.EngineFacFunc, Memoize: true},
		{Bench: "102.swim", Scale: 1, Engine: runcfg.EngineFastsim, Memoize: true},
		{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc, MaxInsts: 5000},
		{Bench: "099.go", Scale: 1, Engine: runcfg.EngineFastsim, Memoize: true},
		{Bench: "126.gcc", Scale: 1, Engine: runcfg.EngineFunc},
		{Bench: "132.ijpeg", Scale: 1, Engine: runcfg.EngineFastsim},
	}
	refs := make([]runcfg.Result, len(reqs))
	for i, req := range reqs {
		refs[i] = reference(t, req)
	}

	ids := make([]string, len(reqs))
	var wg sync.WaitGroup
	errs := make([]error, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(reqs[i])
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i, id := range ids {
		st := waitTerminal(t, s, id)
		checkResult(t, fmt.Sprintf("job %d (%s/%s)", i, reqs[i].Bench, reqs[i].Engine), st, refs[i])
		if reqs[i].Memoize && st.Stats == nil {
			t.Fatalf("job %d: memoizing job reported no stats", i)
		}
	}
	if n := s.counter("serve.jobs_completed").Load(); n != uint64(len(reqs)) {
		t.Fatalf("jobs_completed = %d, want %d", n, len(reqs))
	}
}

// TestQueueOverflowBackpressure pins the bounded-queue contract: with the
// single worker occupied and the queue at depth, the next submission is
// rejected with ErrQueueFull.
func TestQueueOverflowBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	long := JobRequest{Bench: "126.gcc", Scale: 300, Engine: runcfg.EngineFastsim,
		Memoize: true, ChunkInsts: 1024}

	first, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, first.ID, 0) // the worker now holds the first job
	var accepted []string
	for i := 0; i < 2; i++ {
		st, err := s.Submit(long)
		if err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
		accepted = append(accepted, st.ID)
	}
	if _, err := s.Submit(long); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if n := s.counter("serve.queue_rejects").Load(); n != 1 {
		t.Fatalf("queue_rejects = %d, want 1", n)
	}

	// Backpressure is transient: cancel the head job and the queue drains.
	if err := s.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	for _, id := range append([]string{first.ID}, accepted...) {
		if err := s.Cancel(id); err != nil && !errors.Is(err, ErrJobDone) {
			t.Fatal(err)
		}
		waitTerminal(t, s, id)
	}
	if _, err := s.Submit(JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc}); err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
}

// TestWarmCacheLineage is the tentpole assertion: the second job of a
// lineage starts with the first job's action cache and achieves a
// strictly higher fast-step share, with identical simulation results.
func TestWarmCacheLineage(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	req := JobRequest{Bench: "126.gcc", Scale: 2, Engine: runcfg.EngineFastsim, Memoize: true}

	st1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	cold := waitTerminal(t, s, st1.ID)
	if cold.State != StateDone || cold.WarmStart {
		t.Fatalf("first job: state %s warm %v, want done/cold", cold.State, cold.WarmStart)
	}
	entries, bs := s.WarmOccupancy()
	if entries <= 0 || bs <= 0 {
		t.Fatalf("after first job: warm occupancy %d entries/%d bytes, want parked cache", entries, bs)
	}
	if cold.LineageKey == "" {
		t.Fatal("memoizing job has no lineage key")
	}

	st2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	warm := waitTerminal(t, s, st2.ID)
	if warm.State != StateDone {
		t.Fatalf("second job: state %s (err %q)", warm.State, warm.Error)
	}
	if !warm.WarmStart || warm.WarmEntries == 0 || warm.WarmBytes == 0 {
		t.Fatalf("second job did not warm-start: warm=%v entries=%d bytes=%d",
			warm.WarmStart, warm.WarmEntries, warm.WarmBytes)
	}
	if warm.LineageKey != cold.LineageKey {
		t.Fatalf("lineage keys differ: %s vs %s", cold.LineageKey, warm.LineageKey)
	}
	if warm.FastSharePc <= cold.FastSharePc {
		t.Fatalf("warm job fast share %.3f%% not strictly above cold %.3f%%",
			warm.FastSharePc, cold.FastSharePc)
	}
	if cold.Result == nil || warm.Result == nil ||
		cold.Result.Insts != warm.Result.Insts || cold.Result.Cycles != warm.Result.Cycles ||
		!bytes.Equal(cold.Result.Output, warm.Result.Output) {
		t.Fatal("warm job's simulation results diverge from the cold job's")
	}

	// The rt-based Facile engines share through the same protocol.
	fac := JobRequest{Bench: "130.li", Scale: 1, Engine: runcfg.EngineFacFunc, Memoize: true}
	f1, err := s.Submit(fac)
	if err != nil {
		t.Fatal(err)
	}
	fcold := waitTerminal(t, s, f1.ID)
	f2, err := s.Submit(fac)
	if err != nil {
		t.Fatal(err)
	}
	fwarm := waitTerminal(t, s, f2.ID)
	if !fwarm.WarmStart || fwarm.FastSharePc <= fcold.FastSharePc {
		t.Fatalf("fac lineage: warm=%v share %.3f%% vs cold %.3f%%",
			fwarm.WarmStart, fwarm.FastSharePc, fcold.FastSharePc)
	}
}

// TestDrainCheckpointRequeueResume pins the drain protocol: in-flight
// jobs checkpoint through internal/snapshot, requeue as restorable, and a
// second server completes them (via the spool round trip) with results
// identical to an uninterrupted run.
func TestDrainCheckpointRequeueResume(t *testing.T) {
	reqs := []JobRequest{
		{Bench: "126.gcc", Scale: 300, Engine: runcfg.EngineFastsim, Memoize: true, ChunkInsts: 2048},
		{Bench: "126.gcc", Scale: 30, Engine: runcfg.EngineOOO, ChunkInsts: 2048},
	}
	refs := make([]runcfg.Result, len(reqs))
	for i, req := range reqs {
		refs[i] = reference(t, req)
	}

	s1 := New(Config{Workers: 2, QueueDepth: 16})
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		st, err := s1.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		waitRunning(t, s1, id, 0)
	}
	requeued := s1.Drain()
	if len(requeued) != len(reqs) {
		t.Fatalf("drain requeued %d jobs, want %d", len(requeued), len(reqs))
	}
	for _, id := range ids {
		st, err := s1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateRequeued {
			t.Fatalf("job %s: state %s after drain, want requeued", id, st.State)
		}
	}
	for _, rq := range requeued {
		if rq.Committed == 0 || len(rq.Resume) == 0 || rq.Kind == "" {
			t.Fatalf("requeued job %s lacks a restorable checkpoint (committed=%d, %d resume bytes, kind %q)",
				rq.ID, rq.Committed, len(rq.Resume), rq.Kind)
		}
	}
	if _, err := s1.Submit(reqs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: err = %v, want ErrDraining", err)
	}

	// Round-trip through the spool, as an fsimd restart would.
	dir := t.TempDir()
	if err := WriteSpool(dir, requeued); err != nil {
		t.Fatal(err)
	}
	loaded, quarantined, err := ReadSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 0 {
		t.Fatalf("healthy spool quarantined files: %v", quarantined)
	}
	if len(loaded) != len(requeued) {
		t.Fatalf("spool round trip: %d jobs, want %d", len(loaded), len(requeued))
	}
	// Reading must not consume the spool: files survive until each job's
	// resume is acknowledged, so a failed Resubmit never loses work.
	if again, _, err := ReadSpool(dir); err != nil || len(again) != len(requeued) {
		t.Fatalf("spool consumed before resume: %d left, err %v", len(again), err)
	}

	s2 := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	for _, rq := range loaded {
		if _, err := s2.Resubmit(rq); err != nil {
			t.Fatal(err)
		}
		if err := RemoveSpooled(dir, rq.ID); err != nil {
			t.Fatal(err)
		}
	}
	if rest, _, err := ReadSpool(dir); err != nil || len(rest) != 0 {
		t.Fatalf("spool not consumed after resume: %d left, err %v", len(rest), err)
	}
	for i, rq := range loaded {
		st := waitTerminal(t, s2, rq.ID)
		checkResult(t, fmt.Sprintf("resumed job %s", rq.ID), st, refs[i])
		if st.RestoredFrom == 0 {
			t.Fatalf("resumed job %s reports no restored progress", rq.ID)
		}
		if st.RestoredFrom != rq.Committed {
			t.Fatalf("resumed job %s restored from %d, spool said %d",
				rq.ID, st.RestoredFrom, rq.Committed)
		}
		if st.RestoredFrom >= refs[i].Insts {
			t.Fatalf("resumed job %s claims full progress %d >= %d at restore",
				rq.ID, st.RestoredFrom, refs[i].Insts)
		}
	}

	// Fresh submissions on the resumed server must not reuse a resumed ID.
	fresh, err := s2.Submit(JobRequest{Bench: "129.compress", Scale: 1,
		Engine: runcfg.EngineFunc, MaxInsts: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for _, rq := range loaded {
		if fresh.ID == rq.ID {
			t.Fatalf("fresh submission reused resumed job ID %s", fresh.ID)
		}
	}
	seen := map[string]bool{}
	for _, st := range s2.List() {
		if seen[st.ID] {
			t.Fatalf("duplicate job ID %s in List after resume", st.ID)
		}
		seen[st.ID] = true
	}
}

// TestCancelAndTimeoutRefundWarmOccupancy extends the cache-accounting
// invariant to the server: the serve.warm_* gauges always equal the total
// parked lineage caches, so canceled, timed-out, and flushed jobs refund
// exactly what they took.
func TestCancelAndTimeoutRefundWarmOccupancy(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	lineageReq := JobRequest{Bench: "126.gcc", Scale: 300, Engine: runcfg.EngineFastsim,
		Memoize: true, ChunkInsts: 2048}

	// Donor job parks its cache.
	donor, err := s.Submit(lineageReq)
	if err != nil {
		t.Fatal(err)
	}
	dst := waitTerminal(t, s, donor.ID)
	if dst.State != StateDone {
		t.Fatalf("donor: %s (%s)", dst.State, dst.Error)
	}
	e0, b0 := s.WarmOccupancy()
	if e0 <= 0 || b0 <= 0 {
		t.Fatalf("no parked cache after donor: %d entries/%d bytes", e0, b0)
	}

	// A canceled job takes the cache and never parks it back: occupancy
	// refunds to zero, not to a phantom copy.
	victim, err := s.Submit(lineageReq)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, victim.ID, 0)
	if e, b := s.WarmOccupancy(); e != 0 || b != 0 {
		t.Fatalf("running warm job should hold the cache: occupancy %d/%d, want 0/0", e, b)
	}
	if err := s.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	vst := waitTerminal(t, s, victim.ID)
	if vst.State != StateCanceled {
		t.Fatalf("victim: state %s, want canceled", vst.State)
	}
	if !vst.WarmStart {
		t.Fatal("victim should have warm-started from the donor cache")
	}
	if e, b := s.WarmOccupancy(); e != 0 || b != 0 {
		t.Fatalf("after cancel: occupancy %d/%d, want 0/0 (cache dropped, not leaked)", e, b)
	}

	// The next job of the lineage finds nothing parked: it runs cold.
	rebuild := lineageReq
	rebuild.MaxInsts = 30000
	r1, err := s.Submit(rebuild)
	if err != nil {
		t.Fatal(err)
	}
	rst := waitTerminal(t, s, r1.ID)
	if rst.State != StateDone || rst.WarmStart {
		t.Fatalf("rebuild job: state %s warm %v, want done/cold", rst.State, rst.WarmStart)
	}
	e1, b1 := s.WarmOccupancy()
	if e1 <= 0 || b1 <= 0 {
		t.Fatal("rebuild job parked no cache")
	}
	if rst.Stats == nil || int64(rst.Stats.CacheEntries) != e1 || int64(rst.Stats.CacheBytes) != b1 {
		t.Fatalf("parked occupancy (%d entries/%d bytes) != rebuild job's final cache (%d/%d)",
			e1, b1, rst.Stats.CacheEntries, rst.Stats.CacheBytes)
	}

	// A timed-out job also takes and drops without leaking.
	slow := lineageReq
	slow.TimeoutMs = 60
	t1, err := s.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	tst := waitTerminal(t, s, t1.ID)
	if tst.State != StateFailed || tst.Error != "timeout" {
		t.Fatalf("timeout job: state %s err %q, want failed/timeout", tst.State, tst.Error)
	}
	if !tst.WarmStart {
		t.Fatal("timeout job should have taken the parked cache")
	}
	if e, b := s.WarmOccupancy(); e != 0 || b != 0 {
		t.Fatalf("after timeout: occupancy %d/%d, want 0/0", e, b)
	}
	if n := s.counter("serve.jobs_retried").Load(); n != 0 {
		t.Fatalf("timeout must not retry: jobs_retried = %d", n)
	}

	// Flush is the final refund path.
	quick := lineageReq
	quick.MaxInsts = 30000
	q1, err := s.Submit(quick)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, q1.ID)
	if e, _ := s.WarmOccupancy(); e <= 0 {
		t.Fatal("expected a parked cache before flush")
	}
	if n := s.FlushWarm(); n != 1 {
		t.Fatalf("FlushWarm dropped %d caches, want 1", n)
	}
	if e, b := s.WarmOccupancy(); e != 0 || b != 0 {
		t.Fatalf("after flush: occupancy %d/%d, want 0/0", e, b)
	}
}

// faultingRunner fails its first Run with a recovered simulator fault,
// exercising the retry path that healthy engines rarely take.
type faultingRunner struct {
	runcfg.Runner
	fired *bool
}

func (f *faultingRunner) Run(target uint64) error {
	if !*f.fired {
		*f.fired = true
		return faults.New(faults.BrokenChain, "test", "injected for retry")
	}
	return f.Runner.Run(target)
}

func TestFaultsAwareRetry(t *testing.T) {
	fired := false
	orig := newRunner
	newRunner = func(prog *loader.Program, cfg runcfg.Config) (runcfg.Runner, error) {
		r, err := orig(prog, cfg)
		if err != nil {
			return nil, err
		}
		return &faultingRunner{Runner: r, fired: &fired}, nil
	}
	defer func() { newRunner = orig }()

	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	req := JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc}
	ref := reference(t, req)

	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	checkResult(t, "retried job", got, ref)
	if got.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2 (one faults-aware retry)", got.Attempt)
	}
	if n := s.counter("serve.jobs_retried").Load(); n != 1 {
		t.Fatalf("jobs_retried = %d, want 1", n)
	}

	// A non-fault error does not retry.
	fired = false
	newRunner = func(prog *loader.Program, cfg runcfg.Config) (runcfg.Runner, error) {
		r, err := orig(prog, cfg)
		if err != nil {
			return nil, err
		}
		return &plainErrRunner{Runner: r}, nil
	}
	st2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got2 := waitTerminal(t, s, st2.ID)
	if got2.State != StateFailed || got2.Attempt != 1 {
		t.Fatalf("plain error: state %s attempt %d, want failed/1", got2.State, got2.Attempt)
	}
}

// TestRetryClearsWarmStartMetrics: a job whose warm-started first attempt
// faults retries cold, so its final status must not advertise the
// discarded cache's warm-start sizes.
func TestRetryClearsWarmStartMetrics(t *testing.T) {
	fired := true // donor runs clean; flipped before the faulting victim
	orig := newRunner
	newRunner = func(prog *loader.Program, cfg runcfg.Config) (runcfg.Runner, error) {
		r, err := orig(prog, cfg)
		if err != nil {
			return nil, err
		}
		return &faultingRunner{Runner: r, fired: &fired}, nil
	}
	defer func() { newRunner = orig }()

	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	req := JobRequest{Bench: "126.gcc", Scale: 300, Engine: runcfg.EngineFastsim,
		Memoize: true, ChunkInsts: 2048}
	donor, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if dst := waitTerminal(t, s, donor.ID); dst.State != StateDone {
		t.Fatalf("donor: %s (%s)", dst.State, dst.Error)
	}

	fired = false
	victim, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, victim.ID)
	if got.State != StateDone || got.Attempt != 2 {
		t.Fatalf("victim: state %s attempt %d (%s), want done/2", got.State, got.Attempt, got.Error)
	}
	if got.WarmStart || got.WarmEntries != 0 || got.WarmBytes != 0 {
		t.Fatalf("cold retry still reports warm start: warm_start=%v entries=%d bytes=%d",
			got.WarmStart, got.WarmEntries, got.WarmBytes)
	}
}

type plainErrRunner struct{ runcfg.Runner }

func (p *plainErrRunner) Run(uint64) error { return errors.New("not a fault") }

// TestParsimJob runs a job through the intra-job parallel path and checks
// the merged result against the sequential reference.
func TestParsimJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	req := JobRequest{Bench: "126.gcc", Scale: 20, Engine: runcfg.EngineFastsim,
		Memoize: true, ParsimWorkers: 4, IntervalInsts: 50000}
	seq := reference(t, JobRequest{Bench: "126.gcc", Scale: 20,
		Engine: runcfg.EngineFastsim, Memoize: true})

	st, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateDone {
		t.Fatalf("parsim job: %s (%s)", got.State, got.Error)
	}
	if got.LineageKey != "" || got.WarmStart {
		t.Fatal("parsim jobs must not join a cache lineage")
	}
	if !bytes.Equal(got.Result.Output, seq.Output) || got.Result.Exit != seq.Exit {
		t.Fatal("parsim output/exit diverge from the sequential run")
	}
	// Intervals overshoot to a step boundary, so the merged count may
	// slightly exceed — but never undershoot — the sequential count.
	if got.Result.Insts < seq.Insts || got.Result.Insts > seq.Insts+seq.Insts/100 {
		t.Fatalf("parsim insts %d outside [%d, +1%%] of sequential", got.Result.Insts, seq.Insts)
	}
}

// TestCancelQueuedJob covers the cancel-before-start path.
func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	long := JobRequest{Bench: "126.gcc", Scale: 300, Engine: runcfg.EngineFastsim,
		Memoize: true, ChunkInsts: 2048}
	head, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, head.ID, 0)
	queued, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(head.ID); err != nil {
		t.Fatal(err)
	}
	qst := waitTerminal(t, s, queued.ID)
	if qst.State != StateCanceled {
		t.Fatalf("queued job: state %s, want canceled", qst.State)
	}
	if qst.Stats != nil || qst.Result != nil {
		t.Fatal("canceled-in-queue job must not report results")
	}
	if err := s.Cancel(queued.ID); !errors.Is(err, ErrJobDone) {
		t.Fatalf("double cancel: err = %v, want ErrJobDone", err)
	}
	if err := s.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown cancel: err = %v, want ErrUnknownJob", err)
	}
}

// TestResubmitAdvancesIDSequence guards against fresh submissions minting
// an ID a resumed job already holds, which would overwrite its record.
func TestResubmitAdvancesIDSequence(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	rq := RequeuedJob{
		ID:  "job-000005",
		Req: JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc, MaxInsts: 5000},
	}
	if _, err := s.Resubmit(rq); err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(rq.Req)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-000006" {
		t.Fatalf("fresh submission after resuming job-000005 got ID %s, want job-000006", st.ID)
	}
	if got := len(s.List()); got != 2 {
		t.Fatalf("List has %d entries, want 2", got)
	}
	if _, err := s.Resubmit(rq); err == nil {
		t.Fatal("resubmitting an already-present ID must fail")
	}
}

// TestDrainFinishesCanceledQueuedJob: a job canceled while queued must not
// be requeued by a drain — the Cancel caller was already told it is
// canceling, so it must not resurrect as runnable after resume.
func TestDrainFinishesCanceledQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	long := JobRequest{Bench: "126.gcc", Scale: 300, Engine: runcfg.EngineFastsim,
		Memoize: true, ChunkInsts: 2048}
	head, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, head.ID, 0)
	queued, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	requeued := s.Drain()
	for _, rq := range requeued {
		if rq.ID == queued.ID {
			t.Fatalf("drain requeued job %s despite its pending cancel", rq.ID)
		}
	}
	qst, err := s.Status(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qst.State != StateCanceled {
		t.Fatalf("canceled-then-drained job: state %s, want canceled", qst.State)
	}
}

// TestSnapshotBlobIntegrity ensures drained resume blobs decode with the
// engine's snapshot kind (guards the spool file format).
func TestSnapshotBlobIntegrity(t *testing.T) {
	s1 := New(Config{Workers: 1, QueueDepth: 4})
	st, err := s1.Submit(JobRequest{Bench: "126.gcc", Scale: 300,
		Engine: runcfg.EngineFastsim, Memoize: true, ChunkInsts: 2048})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s1, st.ID, 0)
	requeued := s1.Drain()
	if len(requeued) != 1 {
		t.Fatalf("requeued %d, want 1", len(requeued))
	}
	kind, rd, hash, err := snapshot.Decode(requeued[0].Resume)
	if err != nil {
		t.Fatal(err)
	}
	if kind != requeued[0].Kind || rd == nil || hash == "" {
		t.Fatalf("resume blob: kind %q (spool %q), hash %q", kind, requeued[0].Kind, hash)
	}
	// And the spool file survives a write/read cycle bit-exactly.
	dir := t.TempDir()
	if err := WriteSpool(dir, requeued); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !bytes.Equal(back[0].Resume, requeued[0].Resume) {
		t.Fatal("spooled resume blob corrupted in round trip")
	}
	if back[0].ID != requeued[0].ID || back[0].Committed != requeued[0].Committed {
		t.Fatal("spooled job metadata corrupted in round trip")
	}
	_ = filepath.Join // keep filepath imported if assertions above change
}

// TestObsSamplesPerJobTrack checks that jobs sample into their own obs
// track, the feed for the per-job events stream.
func TestObsSamplesPerJobTrack(t *testing.T) {
	rec := obs.NewRecorder(obs.Config{})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Rec: rec})
	st, err := s.Submit(JobRequest{Bench: "126.gcc", Scale: 20,
		Engine: runcfg.EngineFastsim, Memoize: true, SampleEvery: 4096})
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateDone {
		t.Fatalf("job: %s (%s)", got.State, got.Error)
	}
	var n int
	for _, smp := range rec.SamplesSince(0) {
		if smp.Track == "job-"+st.ID {
			n++
		}
	}
	if n == 0 {
		t.Fatalf("no samples on track job-%s", st.ID)
	}
}
