package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Spool: drained jobs persist as one JSON file each ("<id>.job") so the
// next fsimd process can pick them up. The write is staged through a .tmp
// rename for the same crash-consistency reasons snapshot.WriteFile is.

// WriteSpool persists requeued jobs to dir (created if missing).
func WriteSpool(dir string, jobs []RequeuedJob) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rq := range jobs {
		blob, err := json.Marshal(rq)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, rq.ID+".job")
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	return nil
}

// ReadSpool loads every spooled job from dir, in job-ID order (the
// original submission order, since IDs are sequential). Files stay on
// disk: the caller removes each with RemoveSpooled only after its
// Resubmit succeeds, so a failed resume (queue full, bad request) never
// loses the checkpoint. A missing directory is an empty spool, not an
// error.
func ReadSpool(dir string) ([]RequeuedJob, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".job") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []RequeuedJob
	for _, name := range names {
		path := filepath.Join(dir, name)
		blob, err := os.ReadFile(path)
		if err != nil {
			return out, err
		}
		var rq RequeuedJob
		if err := json.Unmarshal(blob, &rq); err != nil {
			return out, fmt.Errorf("spool %s: %w", name, err)
		}
		out = append(out, rq)
	}
	return out, nil
}

// RemoveSpooled deletes one job's spool file, acknowledging a successful
// resume.
func RemoveSpooled(dir, id string) error {
	return os.Remove(filepath.Join(dir, id+".job"))
}
