package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Spool: drained jobs persist as one JSON file each ("<id>.job") so the
// next fsimd process can pick them up. The write is staged through a .tmp
// rename for the same crash-consistency reasons snapshot.WriteFile is.

// WriteSpool persists requeued jobs to dir (created if missing).
func WriteSpool(dir string, jobs []RequeuedJob) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rq := range jobs {
		blob, err := json.Marshal(rq)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, rq.ID+".job")
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	return nil
}

// SpoolQuarantineDir is the subdirectory of the spool dir that malformed
// spool files are moved to — the same quarantine convention the cache
// store uses: evidence is preserved for autopsy, startup is not blocked.
const SpoolQuarantineDir = "quarantine"

// ReadSpool loads every spooled job from dir, in job-ID order (the
// original submission order, since IDs are sequential). Files stay on
// disk: the caller removes each with RemoveSpooled only after its
// Resubmit succeeds, so a failed resume (queue full, bad request) never
// loses the checkpoint. A missing directory is an empty spool, not an
// error.
//
// A spool file that does not parse — truncated by a crash mid-write,
// hand-edited into invalid JSON, or missing its job ID — is quarantined
// under dir/quarantine/ and reported in the second return value instead
// of failing the whole resume: one torn file must not hold every other
// checkpointed job hostage.
func ReadSpool(dir string) (jobs []RequeuedJob, quarantined []string, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".job") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		blob, err := os.ReadFile(path)
		if err != nil {
			return jobs, quarantined, err
		}
		var rq RequeuedJob
		if uerr := json.Unmarshal(blob, &rq); uerr != nil || rq.ID == "" {
			if uerr == nil {
				uerr = fmt.Errorf("missing job id")
			}
			quarantined = append(quarantined, quarantineSpool(dir, name, uerr))
			continue
		}
		jobs = append(jobs, rq)
	}
	return jobs, quarantined, nil
}

// quarantineSpool moves one malformed spool file aside (or removes it when
// the move fails — a file that cannot parse must not be re-read forever)
// and returns a human-readable account of what happened.
func quarantineSpool(dir, name string, cause error) string {
	qdir := filepath.Join(dir, SpoolQuarantineDir)
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", name, time.Now().UnixNano()))
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(filepath.Join(dir, name))
		return fmt.Sprintf("%s: %v (removed; quarantine unavailable: %v)", name, cause, err)
	}
	if err := os.Rename(filepath.Join(dir, name), dst); err != nil {
		os.Remove(filepath.Join(dir, name))
		return fmt.Sprintf("%s: %v (removed; quarantine failed: %v)", name, cause, err)
	}
	return fmt.Sprintf("%s: %v (quarantined to %s)", name, cause, dst)
}

// RemoveSpooled deletes one job's spool file, acknowledging a successful
// resume.
func RemoveSpooled(dir, id string) error {
	return os.Remove(filepath.Join(dir, id+".job"))
}
