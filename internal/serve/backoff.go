package serve

// Unified backpressure retry: the 429-absorbing submit loop used to be
// duplicated between the in-process sweep backend (retrying ErrQueueFull)
// and the HTTP sweep backend (retrying HTTP 429). Both now share one
// jittered-exponential-backoff primitive, and the fleet router reuses it
// when it resubmits in-flight jobs to a failover successor.

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"
)

// Backoff paces retries: sleeps start at Initial, multiply by Factor per
// attempt, cap at Max, and each sleep is stretched by up to Jitter
// (a fraction of the computed delay) so a fleet of retriers does not
// thunder back in lockstep.
type Backoff struct {
	Initial time.Duration
	Max     time.Duration
	Factor  float64
	Jitter  float64 // 0..1, fraction of the delay added at random
}

// DefaultBackoff is the pacing used for queue-full absorption: quick
// first retries (the queue drains at job granularity), bounded at half a
// second so a saturated worker is re-probed a few times per second.
var DefaultBackoff = Backoff{
	Initial: 10 * time.Millisecond,
	Max:     500 * time.Millisecond,
	Factor:  2,
	Jitter:  0.5,
}

// Delay computes the sleep before retry number attempt (0-based).
// Exported for callers (the fleet router's failover loop) that pace
// their own retry loops but should share this jitter policy.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Initial <= 0 {
		b.Initial = DefaultBackoff.Initial
	}
	if b.Factor < 1 {
		b.Factor = DefaultBackoff.Factor
	}
	if b.Max <= 0 {
		b.Max = DefaultBackoff.Max
	}
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d += d * b.Jitter * rand.Float64()
	}
	if d > float64(2*b.Max) {
		d = float64(2 * b.Max)
	}
	return time.Duration(d)
}

// Retry runs fn until it succeeds, returns a non-retryable error, or ctx
// is canceled. retryable classifies errors; the backoff paces the loop.
func (b Backoff) Retry(ctx context.Context, retryable func(error) bool, fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil || !retryable(err) {
			return err
		}
		t := time.NewTimer(b.Delay(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// retryableQueueFull classifies the in-process form of backpressure.
func retryableQueueFull(err error) bool { return errors.Is(err, ErrQueueFull) }

// retryableHTTP429 classifies the over-the-wire form of backpressure.
func retryableHTTP429(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusTooManyRequests
}

// SubmitRetry posts a job, absorbing queue-full backpressure (HTTP 429)
// with jittered exponential backoff until the submission is accepted,
// a different error occurs, or ctx is canceled.
func (c *Client) SubmitRetry(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := DefaultBackoff.Retry(ctx, retryableHTTP429, func() error {
		var err error
		st, err = c.Submit(ctx, req)
		return err
	})
	return st, err
}
