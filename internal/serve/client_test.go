package serve

// Body-leak audit for the HTTP client: every client method must close the
// response body on every path, including the early error ones — a 404 on
// the events stream, a decode failure, a canceled wait. The counting
// transport below wraps each response body and tracks opens vs closes, so
// a leaked body is a hard test failure rather than a slow connection-pool
// death in production.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"facile/internal/runcfg"
)

// countingTransport wraps a RoundTripper and counts response bodies that
// were opened but never closed.
type countingTransport struct {
	base http.RoundTripper

	mu     sync.Mutex
	opened int
	closed int
}

type countedBody struct {
	inner  interface{ Read([]byte) (int, error) }
	closer func() error
	once   atomic.Bool
	t      *countingTransport
}

func (b *countedBody) Read(p []byte) (int, error) { return b.inner.Read(p) }

func (b *countedBody) Close() error {
	if b.once.CompareAndSwap(false, true) {
		b.t.mu.Lock()
		b.t.closed++
		b.t.mu.Unlock()
	}
	return b.closer()
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.opened++
	t.mu.Unlock()
	resp.Body = &countedBody{inner: resp.Body, closer: resp.Body.Close, t: t}
	return resp, nil
}

func (t *countingTransport) leaked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.opened - t.closed
}

// newCountingClient builds a server + client whose every response body is
// counted.
func newCountingClient(t *testing.T, cfg Config) (*Server, *Client, *countingTransport) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ct := &countingTransport{base: http.DefaultTransport}
	c := NewClient(ts.URL)
	c.HC = &http.Client{Transport: ct}
	return s, c, ct
}

// TestClientNeverLeaksBodies drives every client method through success
// and early-error paths and asserts no response body stays open.
func TestClientNeverLeaksBodies(t *testing.T) {
	_, c, ct := newCountingClient(t, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	req := JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc,
		MaxInsts: 20000}

	// Success paths: submit, status, list, health, metrics, streaming wait.
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	fin, err := c.WaitJob(ctx, st.ID, func([]byte) { samples++ })
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("job finished %q: %s", fin.State, fin.Error)
	}
	if fin.ID != st.ID {
		t.Fatalf("WaitJob returned status for %q, submitted %q", fin.ID, st.ID)
	}
	if _, err := c.Status(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.List(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatal(err)
	}

	// Early error paths. Each must close the body it opened:
	// unknown job on the plain status endpoint,
	if _, err := c.Status(ctx, "job-999999"); err == nil {
		t.Fatal("status of unknown job succeeded")
	}
	// unknown job on the streaming endpoint (the WaitJob early-404 path),
	if _, err := c.WaitJob(ctx, "job-999999", nil); err == nil {
		t.Fatal("WaitJob of unknown job succeeded")
	}
	// a rejected submission (bad request),
	if _, err := c.Submit(ctx, JobRequest{Engine: "no-such-engine", Bench: "129.compress"}); err == nil {
		t.Fatal("bad submission succeeded")
	}
	// cache export without a configured store (503),
	if _, err := c.ExportCache(ctx, "deadbeef"); err == nil {
		t.Fatal("cache export without a store succeeded")
	}
	// and cache import without a configured store.
	if err := c.ImportCache(ctx, "deadbeef", []byte("junk")); err == nil {
		t.Fatal("cache import without a store succeeded")
	}

	if n := ct.leaked(); n != 0 {
		t.Fatalf("%d response bodies leaked (opened %d, closed %d)", n, ct.opened, ct.closed)
	}
}

// TestWaitJobCancelClosesBody cancels a WaitJob mid-stream (a slow job,
// an impatient caller) and asserts the stream body is still closed.
func TestWaitJobCancelClosesBody(t *testing.T) {
	_, c, ct := newCountingClient(t, Config{Workers: 1, QueueDepth: 4, ChunkInsts: 1 << 10})
	ctx := context.Background()
	// Hog the lone worker with an infinite loop so the watched job stays
	// queued and its event stream stays open until we cancel the wait.
	hog, err := c.Submit(ctx, JobRequest{Asm: "loop: b loop", Engine: runcfg.EngineFunc})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Submit(ctx, JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := c.WaitJob(wctx, st.ID, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled WaitJob returned nil error")
	}
	_ = c.Cancel(ctx, st.ID)
	_ = c.Cancel(ctx, hog.ID)
	// The transport closes the body asynchronously on cancel; give it a
	// beat before asserting.
	deadline := time.Now().Add(2 * time.Second)
	for ct.leaked() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := ct.leaked(); n != 0 {
		t.Fatalf("%d response bodies leaked after cancel", n)
	}
}
