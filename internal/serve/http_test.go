package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"facile/internal/runcfg"
)

func newTestAPI(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL)
}

// TestHTTPJobLifecycle drives submit → status → list → final result over
// the wire with the package client.
func TestHTTPJobLifecycle(t *testing.T) {
	_, c := newTestAPI(t, Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()
	req := JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc}
	ref := reference(t, req)

	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("submit returned id %q state %q", st.ID, st.State)
	}
	final, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, "http job", final, ref)

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v, want the one job", list)
	}
}

// TestHTTPErrorMapping pins the status codes the API documents: 400 for a
// bad request, 404 for unknown jobs, 409 for double cancel, 429 for queue
// overflow, 503 while draining.
func TestHTTPErrorMapping(t *testing.T) {
	s, c := newTestAPI(t, Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	wantCode := func(err error, code int, what string) {
		t.Helper()
		var se *StatusError
		if !errors.As(err, &se) || se.Code != code {
			t.Fatalf("%s: err = %v, want HTTP %d", what, err, code)
		}
	}

	_, err := c.Submit(ctx, JobRequest{Bench: "no-such-bench", Engine: runcfg.EngineFunc})
	wantCode(err, http.StatusBadRequest, "bad bench")
	_, err = c.Submit(ctx, JobRequest{Engine: runcfg.EngineFunc})
	wantCode(err, http.StatusBadRequest, "no program")
	_, err = c.Status(ctx, "job-999999")
	wantCode(err, http.StatusNotFound, "unknown status")
	err = c.Cancel(ctx, "job-999999")
	wantCode(err, http.StatusNotFound, "unknown cancel")

	long := JobRequest{Bench: "126.gcc", Scale: 300, Engine: runcfg.EngineFastsim,
		Memoize: true, ChunkInsts: 2048}
	head, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, head.ID, 0)
	queued, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, long)
	wantCode(err, http.StatusTooManyRequests, "overflow")

	if err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, head.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, queued.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	err = c.Cancel(ctx, queued.ID)
	wantCode(err, http.StatusConflict, "double cancel")
	if _, err := c.Wait(ctx, head.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	go s.Drain() // Drain blocks on workers; submissions must 503 at once
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = c.Submit(ctx, long)
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit while draining: err = %v, want HTTP 503", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHTTPEventsStream reads the per-job NDJSON events feed: sample lines
// while the job runs, one terminal status line at the end.
func TestHTTPEventsStream(t *testing.T) {
	s, c := newTestAPI(t, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	st, err := c.Submit(ctx, JobRequest{Bench: "126.gcc", Scale: 20,
		Engine: runcfg.EngineFastsim, Memoize: true, SampleEvery: 4096})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.HC.Get(c.Base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	var samples int
	var last eventLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev eventLine
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		switch ev.Type {
		case "sample":
			if ev.Sample == nil {
				t.Fatal("sample line without sample body")
			}
			samples++
		case "status":
			last = ev
		default:
			t.Fatalf("unknown event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("stream carried no sample lines")
	}
	if last.Type != "status" || last.Status == nil {
		t.Fatal("stream did not end with a status line")
	}
	if last.Status.State != StateDone || last.Status.Result == nil {
		t.Fatalf("terminal status: state %s, result %v", last.Status.State, last.Status.Result)
	}

	// The feed replays from the start for late subscribers too.
	resp2, err := c.HC.Get(c.Base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 1<<20), 1<<20)
	lateSamples := 0
	for sc2.Scan() {
		if strings.Contains(sc2.Text(), `"type":"sample"`) {
			lateSamples++
		}
	}
	if lateSamples == 0 {
		t.Fatal("late subscriber saw no samples")
	}
	if _, err := c.HC.Get(c.Base + "/v1/jobs/nope/events"); err != nil {
		t.Fatal(err)
	}
	_ = s
}

// TestHTTPMetricsAndHealth checks /v1/metrics exposes the serve counters
// and warm gauges, and /healthz reflects the drain state.
func TestHTTPMetricsAndHealth(t *testing.T) {
	s, c := newTestAPI(t, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	req := JobRequest{Bench: "126.gcc", Scale: 2, Engine: runcfg.EngineFastsim, Memoize: true}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := c.HC.Get(c.Base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(m)
	for _, want := range []string{"serve.jobs_submitted", "serve.jobs_completed",
		"serve.warm_bytes", "serve.warm_entries"} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("/v1/metrics missing %q in %s", want, blob)
		}
	}

	health := func() string {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return h.Status
	}
	if got := health(); got != "ok" {
		t.Fatalf("healthz = %q, want ok", got)
	}
	if h, _ := c.Health(ctx); h.QueueCap == 0 || h.Workers == 0 {
		t.Fatalf("healthz load fields not populated: %+v", h)
	}
	s.Drain()
	if got := health(); got != "draining" {
		t.Fatalf("healthz after drain = %q, want draining", got)
	}
}
