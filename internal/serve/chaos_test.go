package serve

// Chaos harness for the durable warm-cache path: every on-disk failure
// mode the store can suffer — kill during write, torn records, bit rot,
// version skew, disk full — is injected through the real code paths while
// the server runs real jobs, and the invariant under test never changes:
// the daemon keeps serving, results stay correct (cold at worst), and
// corruption is quarantined, not retried forever.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"facile/internal/cachestore"
	"facile/internal/faults"
	"facile/internal/obs"
	"facile/internal/runcfg"
)

// chaosReq is the canonical warm-lineage job the chaos tests run: small
// enough to finish in milliseconds, memoizing so it joins a cache lineage.
func chaosReq() JobRequest {
	return JobRequest{Bench: "129.compress", Scale: 1,
		Engine: runcfg.EngineFastsim, Memoize: true}
}

// newChaosServer builds a server backed by a store at dir, with an
// optional injector, drained at test end.
func newChaosServer(t *testing.T, dir string, inject *faults.StoreInjector) (*Server, *cachestore.Store, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder(obs.Config{})
	st, err := cachestore.Open(dir, cachestore.Options{Rec: rec, Inject: inject})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 16, Rec: rec, Store: st})
	return s, st, rec
}

// runChaosJob submits req, waits for it, and checks the result against a
// direct reference run.
func runChaosJob(t *testing.T, s *Server, req JobRequest, want runcfg.Result, name string) JobStatus {
	t.Helper()
	st, err := s.Submit(req)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	got := waitTerminal(t, s, st.ID)
	checkResult(t, name, got, want)
	return got
}

// TestWarmCacheSurvivesRestart is the headline durability test: a cache
// built by one server process warm-starts a job in the next process, for
// both engine families, with results identical to a cold run.
func TestWarmCacheSurvivesRestart(t *testing.T) {
	reqs := map[string]JobRequest{
		"fastsim": chaosReq(),
		"fac": {Bench: "130.li", Scale: 1,
			Engine: runcfg.EngineFacFunc, Memoize: true},
	}
	for name, req := range reqs {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			ref := reference(t, req)

			s1, _, _ := newChaosServer(t, dir, nil)
			first := runChaosJob(t, s1, req, ref, "cold job")
			if first.WarmStart {
				t.Fatal("first-ever job reports a warm start")
			}
			warm := runChaosJob(t, s1, req, ref, "second job")
			if !warm.WarmStart || warm.WarmSource != "memory" {
				t.Fatalf("second job in-process: warm=%v source=%q, want memory hit",
					warm.WarmStart, warm.WarmSource)
			}
			s1.Drain()

			// "Restart": a fresh server over the same store directory. The
			// lineage table is empty, so only the persistent store can warm it.
			s2, _, rec2 := newChaosServer(t, dir, nil)
			restarted := runChaosJob(t, s2, req, ref, "post-restart job")
			if !restarted.WarmStart || restarted.WarmSource != "store" {
				t.Fatalf("post-restart job: warm=%v source=%q, want store hit",
					restarted.WarmStart, restarted.WarmSource)
			}
			if restarted.WarmEntries == 0 || restarted.WarmBytes == 0 {
				t.Fatalf("store-warm job adopted an empty cache: %d entries, %d bytes",
					restarted.WarmEntries, restarted.WarmBytes)
			}
			if rec2.Registry().Counter("serve.warm_store_hits").Load() != 1 {
				t.Fatal("store hit not counted")
			}
		})
	}
}

// TestChaosKillDuringWrite injects a crash between the staging write and
// the rename on every save: jobs stay correct, no torn record ever becomes
// visible, and the restarted process sweeps the residue and serves cold.
func TestChaosKillDuringWrite(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := chaosReq()
	ref := reference(t, req)

	s1, _, rec1 := newChaosServer(t, dir,
		faults.NewStoreInjector(0, 1, faults.StoreCrashBeforeRename))
	runChaosJob(t, s1, req, ref, "job during crashing saves")
	s1.Drain() // drain re-persists; that save crashes too
	if rec1.Registry().Counter("serve.warm_save_errors").Load() == 0 {
		t.Fatal("crashing saves not surfaced in serve counters")
	}
	// The kill left staging residue but no addressable record.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps, records int
	for _, e := range ents {
		switch filepath.Ext(e.Name()) {
		case ".tmp":
			tmps++
		case ".wc":
			records++
		}
	}
	if tmps == 0 {
		t.Fatal("injected crash-before-rename left no staging file — scenario did not exercise the torn state")
	}
	if records != 0 {
		t.Fatalf("torn write became an addressable record (%d)", records)
	}

	// Restart: residue swept, store empty, job runs cold and correct.
	s2, st2, _ := newChaosServer(t, dir, nil)
	if left, err := os.ReadDir(dir); err == nil {
		for _, e := range left {
			if filepath.Ext(e.Name()) == ".tmp" {
				t.Fatalf("restart did not sweep staging file %s", e.Name())
			}
		}
	}
	recovered := runChaosJob(t, s2, req, ref, "post-kill job")
	if recovered.WarmStart {
		t.Fatal("post-kill job claims a warm start from a store that never got a record")
	}
	if st2.QuarantineCount() != 0 {
		t.Fatal("a clean kill (no corrupt record) should not quarantine anything")
	}
}

// TestChaosCorruptRecordColdRecovery covers the read-side ladder for every
// corruption mode that produces an on-disk record: the next process
// quarantines it, runs cold with correct results, and the lineage heals
// (the healed cache persists and warms the process after that).
func TestChaosCorruptRecordColdRecovery(t *testing.T) {
	kinds := []faults.StoreFault{
		faults.StoreTruncate,
		faults.StoreFlipByte,
		faults.StoreBadMagic,
		faults.StoreVersionSkew,
	}
	req := chaosReq()
	ref := reference(t, req)
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			s1, _, _ := newChaosServer(t, dir, faults.NewStoreInjector(0, 1, kind))
			runChaosJob(t, s1, req, ref, "job with corrupting saves")
			s1.Drain()

			s2, st2, rec2 := newChaosServer(t, dir, nil)
			healed := runChaosJob(t, s2, req, ref, "job over corrupt record")
			if healed.WarmStart {
				t.Fatalf("%s: job warm-started from a corrupt record", kind)
			}
			if st2.QuarantineCount() == 0 {
				t.Fatalf("%s: corrupt record not quarantined", kind)
			}
			if rec2.Registry().Counter("cachestore.corrupt").Load() == 0 {
				t.Fatalf("%s: corruption not counted", kind)
			}
			s2.Drain() // persists the healed cache

			s3, _, _ := newChaosServer(t, dir, nil)
			warm := runChaosJob(t, s3, req, ref, "job after healing")
			if !warm.WarmStart || warm.WarmSource != "store" {
				t.Fatalf("%s: lineage did not heal: warm=%v source=%q",
					kind, warm.WarmStart, warm.WarmSource)
			}
		})
	}
}

// TestChaosDiskFull: with every save failing as a full disk would, jobs
// keep completing correctly and in-memory warm sharing keeps working —
// persistence degrades alone.
func TestChaosDiskFull(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := chaosReq()
	ref := reference(t, req)
	s, _, rec := newChaosServer(t, dir,
		faults.NewStoreInjector(0, 1, faults.StoreENOSPC))
	runChaosJob(t, s, req, ref, "job on full disk")
	warm := runChaosJob(t, s, req, ref, "second job on full disk")
	if !warm.WarmStart || warm.WarmSource != "memory" {
		t.Fatalf("in-memory warm sharing broke under ENOSPC: warm=%v source=%q",
			warm.WarmStart, warm.WarmSource)
	}
	if rec.Registry().Counter("cachestore.save_errors").Load() == 0 {
		t.Fatal("ENOSPC saves not counted")
	}
	if rec.Registry().Counter("serve.warm_save_errors").Load() == 0 {
		t.Fatal("ENOSPC saves not surfaced in serve counters")
	}
}

// TestChaosConcurrentSaveLoad hammers the store from every direction at
// once — multiple workers parking/loading lineage caches while other
// goroutines list, export, and load — and must stay correct under -race.
func TestChaosConcurrentSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	rec := obs.NewRecorder(obs.Config{})
	st, err := cachestore.Open(dir, cachestore.Options{Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 64, Rec: rec, Store: st})

	reqs := []JobRequest{
		{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFastsim, Memoize: true},
		{Bench: "102.swim", Scale: 1, Engine: runcfg.EngineFastsim, Memoize: true},
		{Bench: "099.go", Scale: 1, Engine: runcfg.EngineFastsim, Memoize: true},
	}
	refs := make([]runcfg.Result, len(reqs))
	for i, req := range reqs {
		refs[i] = reference(t, req)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	for g := 0; g < 3; g++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				metas, err := st.List()
				if err != nil {
					t.Errorf("List during chaos: %v", err)
					return
				}
				for _, m := range metas {
					if _, _, err := st.Load(m.Key); err != nil &&
						!errors.Is(err, cachestore.ErrNotFound) {
						t.Errorf("Load %s during chaos: %v", m.Key, err)
						return
					}
					if _, err := st.Export(m.Key); err != nil &&
						!errors.Is(err, cachestore.ErrNotFound) {
						t.Errorf("Export %s during chaos: %v", m.Key, err)
						return
					}
				}
			}
		}()
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(reqs))
	for round := 0; round < rounds; round++ {
		for i, req := range reqs {
			wg.Add(1)
			go func(round, i int, req JobRequest) {
				defer wg.Done()
				st, err := s.Submit(req)
				if err != nil {
					errs <- fmt.Sprintf("submit r%d/%d: %v", round, i, err)
					return
				}
				got := waitTerminal(t, s, st.ID)
				if got.State != StateDone {
					errs <- fmt.Sprintf("job r%d/%d: %s (%s)", round, i, got.State, got.Error)
					return
				}
				if got.Result.Insts != refs[i].Insts || got.Result.Cycles != refs[i].Cycles {
					errs <- fmt.Sprintf("job r%d/%d diverged: %d/%d want %d/%d",
						round, i, got.Result.Insts, got.Result.Cycles, refs[i].Insts, refs[i].Cycles)
				}
			}(round, i, req)
		}
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		return
	}
	s.Drain()
	// Every lineage must have ended up persisted and verifiable.
	metas, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != len(reqs) {
		t.Fatalf("store holds %d records after chaos, want %d", len(metas), len(reqs))
	}
	if st.QuarantineCount() != 0 {
		t.Fatalf("healthy concurrent traffic quarantined %d records", st.QuarantineCount())
	}
}

// TestStoreFingerprintInvalidation: a record whose fingerprint does not
// match the current build (the simulator changed since it was saved) is
// deleted, never adopted.
func TestStoreFingerprintInvalidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := chaosReq()
	ref := reference(t, req)

	s1, st1, _ := newChaosServer(t, dir, nil)
	runChaosJob(t, s1, req, ref, "seed job")
	s1.Drain()

	// Forge the record's lineage: same key and payload, stale fingerprint.
	key := req.LineageKey()
	m, payload, err := st1.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Save(key, m.Engine, "0000000000000000", m.Entries, m.CacheBytes, payload); err != nil {
		t.Fatal(err)
	}

	s2, st2, rec2 := newChaosServer(t, dir, nil)
	cold := runChaosJob(t, s2, req, ref, "job over stale record")
	if cold.WarmStart {
		t.Fatal("job adopted a cache from a different simulator build")
	}
	if rec2.Registry().Counter("serve.warm_store_stale").Load() == 0 {
		t.Fatal("stale record not counted")
	}
	// The stale record is gone (the completed cold job may have re-saved a
	// fresh one; verify by fingerprint, not by absence).
	if m2, _, err := st2.Load(key); err == nil {
		if m2.Fingerprint == "0000000000000000" {
			t.Fatal("stale record still addressable")
		}
	} else if !errors.Is(err, cachestore.ErrNotFound) {
		t.Fatal(err)
	}
}

// TestHealthzDegradedAndCacheAPI drives the HTTP surface: /healthz
// degrades (still 200) once corruption is quarantined, and the /v1/caches
// endpoints list, export, import, and delete records.
func TestHealthzDegradedAndCacheAPI(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := chaosReq()
	ref := reference(t, req)
	s, st, _ := newChaosServer(t, dir, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode
	}

	var h Health
	if code := getJSON("/healthz", &h); code != 200 || h.Status != "ok" {
		t.Fatalf("healthy /healthz: %d %+v", code, h)
	}

	runChaosJob(t, s, req, ref, "seed job")
	key := req.LineageKey()

	var metas []cachestore.Meta
	if code := getJSON("/v1/caches", &metas); code != 200 || len(metas) != 1 || metas[0].Key != key {
		t.Fatalf("/v1/caches: %d %+v", code, metas)
	}

	// Export, delete, re-import: the record round-trips through the API.
	resp, err := srv.Client().Get(srv.URL + "/v1/caches/" + key)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 || len(blob) == 0 {
		t.Fatalf("export: %d, %d bytes, err %v", resp.StatusCode, len(blob), err)
	}
	delReq, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/caches/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := srv.Client().Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != 200 {
		t.Fatalf("delete: %d", delResp.StatusCode)
	}
	putReq, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/caches/"+key, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := srv.Client().Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != 201 {
		t.Fatalf("import: %d", putResp.StatusCode)
	}
	if _, _, err := st.Load(key); err != nil {
		t.Fatalf("record not back after import: %v", err)
	}

	// Corruption observed → degraded, still HTTP 200.
	if err := os.WriteFile(filepath.Join(dir, key+".wc"), []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(key); err == nil {
		t.Fatal("rotted record loaded")
	}
	if code := getJSON("/healthz", &h); code != 200 ||
		h.Status != "degraded" || h.Cachestore != "quarantine_nonempty" {
		t.Fatalf("degraded /healthz: %d %+v", code, h)
	}
}

// TestCacheAPIWithoutStore: a server with no -cache-dir answers the cache
// endpoints with 503, not a panic or a silent empty list.
func TestCacheAPIWithoutStore(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/caches")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("/v1/caches without store: %d, want 503", resp.StatusCode)
	}
}

// TestSpoolQuarantineMalformed is the resume-validation regression test:
// torn or hand-mangled spool files are quarantined, healthy neighbors
// resume untouched, and startup is never blocked.
func TestSpoolQuarantineMalformed(t *testing.T) {
	dir := t.TempDir()
	good := RequeuedJob{ID: "job-000001", Req: chaosReq(), Attempt: 1}
	if err := WriteSpool(dir, []RequeuedJob{good}); err != nil {
		t.Fatal(err)
	}
	bad := map[string]string{
		"job-000002.job": `{"id": "job-000002", "req": {`, // truncated mid-write
		"job-000003.job": "not json at all",
		"job-000004.job": `{"req": {"bench": "129.compress"}}`, // no job ID
	}
	for name, body := range bad {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	jobs, quarantined, err := ReadSpool(dir)
	if err != nil {
		t.Fatalf("one torn file blocked the whole resume: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != good.ID {
		t.Fatalf("healthy job lost: %+v", jobs)
	}
	if len(quarantined) != len(bad) {
		t.Fatalf("quarantined %d files, want %d: %v", len(quarantined), len(bad), quarantined)
	}
	qents, err := os.ReadDir(filepath.Join(dir, SpoolQuarantineDir))
	if err != nil || len(qents) != len(bad) {
		t.Fatalf("quarantine dir holds %d files (err %v), want %d", len(qents), err, len(bad))
	}
	for name := range bad {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("malformed %s still in the spool", name)
		}
	}
	// Second read: the spool is clean, nothing new to quarantine.
	jobs2, q2, err := ReadSpool(dir)
	if err != nil || len(jobs2) != 1 || len(q2) != 0 {
		t.Fatalf("second read: %d jobs, %v quarantined, err %v", len(jobs2), q2, err)
	}
	// And the quarantined evidence names the cause.
	for _, q := range quarantined {
		if !strings.Contains(q, "quarantined to") {
			t.Errorf("quarantine report lacks destination: %s", q)
		}
	}
	_ = time.Now // anchor time import if assertions above change
}
