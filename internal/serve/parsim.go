package serve

import (
	"context"
	"errors"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/uarch"
	"facile/internal/parsim"
	"facile/internal/runcfg"
)

// runParsimAttempt runs a job as parallel interval simulation: functional
// warm-up plans the intervals, then the detailed intervals run on cloned
// machines under the job's worker budget. Interval results only merge at
// the end, so a drain cannot checkpoint mid-flight — the job requeues
// cold instead (still losing no completed jobs, just this job's partial
// progress), and no cache lineage applies (each interval's action cache
// is private to its clone).
func (s *Server) runParsimAttempt(ctx context.Context, j *Job) (jobOutcome, error) {
	prog, err := j.req.program()
	if err != nil {
		return outcomeErr, err
	}
	rec := s.rec.WithTrack("job-" + j.id)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if dl := s.attemptDeadline(j); !dl.IsZero() {
		var cancelDl context.CancelFunc
		runCtx, cancelDl = context.WithDeadline(runCtx, dl)
		defer cancelDl()
	}
	stopWatch := context.AfterFunc(s.drainCtx, cancel)
	defer stopWatch()

	plan, err := parsim.PlanIntervals(prog, j.req.IntervalInsts)
	if err != nil {
		return outcomeErr, err
	}
	opt := fastsim.Options{
		Memoize:       j.req.Memoize,
		CacheCapBytes: j.req.CacheCapBytes,
		Obs:           rec,
		SampleEvery:   j.req.SampleEvery,
	}
	uc := uarch.Default()
	if !j.req.Uarch.IsZero() {
		uc = j.req.Uarch.Effective()
	}
	m, err := parsim.RunIntervalsCtx(runCtx, uc, prog, plan, opt, j.req.ParsimWorkers)
	if err != nil {
		switch {
		case s.drainCtx.Err() != nil:
			return outcomeDrain, nil
		case ctx.Err() != nil:
			return outcomeCanceled, ctx.Err()
		case errors.Is(err, context.DeadlineExceeded) || runCtx.Err() == context.DeadlineExceeded:
			return outcomeTimeout, nil
		}
		return outcomeErr, err
	}

	res := runcfg.Result{
		Insts:  m.Insts,
		Cycles: m.Cycles,
		Output: m.Output,
		Exit:   m.ExitStatus,
	}
	st := runcfg.Stats{
		SlowSteps: m.Stats.Steps, Replays: m.Stats.Replays,
		Misses: m.Stats.Misses, KeyMisses: m.Stats.KeyMisses,
		CacheBytes: m.Stats.CacheBytes, CacheEntries: m.Stats.CacheEntries,
		TotalMemoBytes: m.Stats.TotalMemoBytes, CacheClears: m.Stats.CacheClears,
		Faults: m.Stats.Faults, Invalidations: m.Stats.Invalidations,
		DegradedSteps: m.Stats.DegradedSteps, WatchdogTrips: m.Stats.WatchdogTrips,
		SelfChecks: m.Stats.SelfChecks, SelfCheckDivergences: m.Stats.SelfCheckDivergences,
		FastForwardedPc: m.Stats.FastForwardedPc,
	}
	s.mu.Lock()
	j.result = &res
	j.stats = &st
	j.committed = m.Insts
	s.mu.Unlock()
	return outcomeOK, nil
}
