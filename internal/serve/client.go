package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a minimal JSON client for the job API, used by the fbench
// client mode and the end-to-end tests.
type Client struct {
	Base string // server base URL, e.g. "http://127.0.0.1:8764"
	HC   *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HC: &http.Client{}}
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Code, e.Msg)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HC.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &StatusError{Code: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Status fetches one job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches all jobs.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Wait polls until the job reaches a terminal state (or ctx expires) and
// returns its final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled, StateRequeued:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
