package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"facile/internal/cachestore"
)

// Client is a minimal JSON client for the job API, used by the fbench
// client mode and the end-to-end tests.
type Client struct {
	Base string // server base URL, e.g. "http://127.0.0.1:8764"
	HC   *http.Client
}

// NewClient builds a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HC: &http.Client{}}
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Code, e.Msg)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HC.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeStatusError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Status fetches one job.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches all jobs.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Health fetches the server's /healthz body (load fields included).
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches the raw /v1/metrics body (an obs.Registry WriteJSON
// document, parseable with obs.ParseSnapshot).
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	return c.raw(ctx, http.MethodGet, "/v1/metrics", nil)
}

// ExportCache fetches one verified warm-cache record (the raw FACSTOR1
// blob) from the server's persistent store.
func (c *Client) ExportCache(ctx context.Context, key string) ([]byte, error) {
	return c.raw(ctx, http.MethodGet, "/v1/caches/"+key, nil)
}

// ListCaches fetches the persisted warm-cache record metadata from the
// server's store.
func (c *Client) ListCaches(ctx context.Context) ([]cachestore.Meta, error) {
	var out []cachestore.Meta
	err := c.do(ctx, http.MethodGet, "/v1/caches", nil, &out)
	return out, err
}

// ImportCache installs a record exported from another node.
func (c *Client) ImportCache(ctx context.Context, key string, blob []byte) error {
	_, err := c.raw(ctx, http.MethodPut, "/v1/caches/"+key, blob)
	return err
}

// DeleteCache removes one persisted record from the server's store.
func (c *Client) DeleteCache(ctx context.Context, key string) error {
	return c.do(ctx, http.MethodDelete, "/v1/caches/"+key, nil, nil)
}

// raw performs a request whose body is opaque bytes rather than JSON.
// Like do, it never leaks the response body: every path below the Do
// call runs under the deferred Close.
func (c *Client) raw(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	resp, err := c.HC.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, decodeStatusError(resp)
	}
	return io.ReadAll(resp.Body)
}

// decodeStatusError turns a non-2xx response into a *StatusError,
// consuming (but not closing) the body.
func decodeStatusError(resp *http.Response) error {
	var ae apiError
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
		msg = ae.Error
	}
	return &StatusError{Code: resp.StatusCode, Msg: msg}
}

// WaitJob follows the job's NDJSON event stream until the terminal
// "status" line and returns it — the push-based alternative to the
// polling Wait. onSample, when non-nil, receives each raw event line
// before the terminal status (samples, verbatim, newline-stripped).
//
// The stream body is closed on every path out of this function,
// including the early ones: a non-2xx response, a line-decode failure,
// and a stream that ends before its terminal status line. A leak here is
// quiet but fatal over time — each leaked body pins a connection — so
// client_test.go holds this method (and every other client method) to a
// counting transport.
func (c *Client) WaitJob(ctx context.Context, id string, onSample func(line []byte)) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.HC.Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, decodeStatusError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev eventLine
		if err := json.Unmarshal(line, &ev); err != nil {
			return JobStatus{}, fmt.Errorf("serve: events stream for %s: %w", id, err)
		}
		if ev.Type == "status" && ev.Status != nil {
			return *ev.Status, nil
		}
		if onSample != nil {
			onSample(append([]byte(nil), line...))
		}
	}
	if err := sc.Err(); err != nil {
		return JobStatus{}, fmt.Errorf("serve: events stream for %s: %w", id, err)
	}
	return JobStatus{}, fmt.Errorf("serve: events stream for %s ended before the terminal status line", id)
}

// Wait polls until the job reaches a terminal state (or ctx expires) and
// returns its final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled, StateRequeued:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
