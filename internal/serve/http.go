package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"facile/internal/cachestore"
	"facile/internal/sweep"
)

// HTTP/JSON API:
//
//	POST   /v1/jobs             submit a JobRequest; 202 + JobStatus,
//	                            429 when the queue is full, 503 while draining
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status (final Stats once done)
//	GET    /v1/jobs/{id}/events chunked JSON lines: the job's sampled time
//	                            series as it runs, then a final status line
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	POST   /v1/sweeps           start a design-space sweep (SweepRequest);
//	                            202 + SweepStatus; each point runs as an
//	                            ordinary queued job
//	GET    /v1/sweeps           list sweeps
//	GET    /v1/sweeps/{id}      one sweep's status (full report once done)
//	GET    /v1/sweeps/{id}/events  NDJSON: one "point" line per settled
//	                            point, then a final "sweep" status line
//	DELETE /v1/sweeps/{id}      cancel a running sweep
//	GET    /v1/metrics          aggregate metrics registry (includes the
//	                            serve.warm_* occupancy gauges)
//	GET    /v1/caches           list persisted warm-cache records
//	GET    /v1/caches/{key}     export one verified record (octet-stream)
//	PUT    /v1/caches           import a record exported from another node
//	DELETE /v1/caches/{key}     delete one record
//	GET    /healthz             liveness + drain state + store health
//	                            (degraded when corruption was quarantined)
//
// The cache endpoints return 503 when the server runs without a store
// (no -cache-dir) or the store disabled itself.

// Handler returns the API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/caches", s.handleCacheList)
	mux.HandleFunc("GET /v1/caches/{key}", s.handleCacheExport)
	mux.HandleFunc("PUT /v1/caches/{key}", s.handleCacheImport)
	mux.HandleFunc("DELETE /v1/caches/{key}", s.handleCacheDelete)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrJobDone):
		writeErr(w, http.StatusConflict, err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"state": "canceling"})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.rec.Registry().WriteJSON(w)
}

// ErrNoStore reports a cache-store endpoint hit on a server running
// without persistence.
var ErrNoStore = errors.New("serve: no cache store configured")

// cacheStore gates the /v1/caches handlers on a usable store.
func (s *Server) cacheStore() (*cachestore.Store, error) {
	if s.store == nil {
		return nil, ErrNoStore
	}
	if off, reason := s.store.Disabled(); off {
		return nil, errors.New("serve: cache store disabled: " + reason)
	}
	return s.store, nil
}

func (s *Server) handleCacheList(w http.ResponseWriter, _ *http.Request) {
	st, err := s.cacheStore()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	metas, err := st.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if metas == nil {
		metas = []cachestore.Meta{}
	}
	writeJSON(w, http.StatusOK, metas)
}

func (s *Server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	st, err := s.cacheStore()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	blob, err := st.Export(r.PathValue("key"))
	var ce *cachestore.CorruptError
	switch {
	case errors.Is(err, cachestore.ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case errors.As(err, &ce):
		// The record failed verification on the way out and was quarantined;
		// for the client that is a miss, not a server fault.
		writeErr(w, http.StatusNotFound, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(blob)
	}
}

func (s *Server) handleCacheImport(w http.ResponseWriter, r *http.Request) {
	st, err := s.cacheStore()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := st.Import(r.PathValue("key"), blob)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, m)
}

func (s *Server) handleCacheDelete(w http.ResponseWriter, r *http.Request) {
	st, err := s.cacheStore()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	err = st.Delete(r.PathValue("key"))
	switch {
	case errors.Is(err, cachestore.ErrNotFound):
		writeErr(w, http.StatusNotFound, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"state": "deleted"})
	}
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.StartSweep(req)
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleSweepList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ListSweeps())
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.SweepStatus(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	err := s.CancelSweep(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownSweep):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrSweepDone):
		writeErr(w, http.StatusConflict, err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"state": "canceling"})
	}
}

// sweepEventLine is one line of the sweep events stream: a settled point
// ("point") while the sweep runs, then one terminal "sweep" status line.
type sweepEventLine struct {
	Type  string             `json:"type"`
	Point *sweep.PointResult `json:"point,omitempty"`
	Sweep *SweepStatus       `json:"sweep,omitempty"`
}

func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	doneCh, err := s.SweepDone(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	cursor := 0
	flush := func() bool {
		events, _, err := s.SweepEventsSince(id, cursor)
		if err != nil {
			return false
		}
		for i := range events {
			if enc.Encode(sweepEventLine{Type: "point", Point: &events[i]}) != nil {
				return false
			}
		}
		cursor += len(events)
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()
	terminal := false
	for !terminal {
		select {
		case <-r.Context().Done():
			return
		case <-doneCh:
			terminal = true
		case <-ticker.C:
		}
		if !flush() {
			return
		}
	}
	if st, err := s.SweepStatus(id); err == nil {
		_ = enc.Encode(sweepEventLine{Type: "sweep", Sweep: &st})
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// Health is the /healthz body. Status degrades (still HTTP 200 — the
// process serves correct results either way) when the store has
// quarantined corruption or turned itself off, or when the queue is
// under enough pressure that new submissions are close to bouncing off
// hard 429s; the ladder is ok → degraded, orthogonal to draining.
//
// The load fields let a fleet router shed work early: a router routes
// new cache lineages away from a worker whose pool is saturated and
// whose queue is filling, instead of discovering the saturation one
// rejected submission at a time.
type Health struct {
	Status     string `json:"status"` // "ok" | "degraded" | "draining"
	Cachestore string `json:"cachestore,omitempty"`
	// Load is the queue-pressure rung of the degradation ladder:
	// "pressure" once the queue is ≥ loadPressurePc% full with a
	// saturated worker pool, empty otherwise.
	Load string `json:"load,omitempty"`

	QueueDepth   int     `json:"queue_depth"`
	QueueCap     int     `json:"queue_cap"`
	RunningJobs  int     `json:"running_jobs"`
	Workers      int     `json:"workers"`
	SaturationPc float64 `json:"saturation_pc"`
}

// loadPressurePc is the queue-fill percentage (with a saturated pool)
// at which /healthz starts reporting load pressure.
const loadPressurePc = 75

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	ls := s.Load()
	h := Health{
		Status:       "ok",
		QueueDepth:   ls.Queued,
		QueueCap:     ls.QueueCap,
		RunningJobs:  ls.Running,
		Workers:      ls.Workers,
		SaturationPc: 100 * ls.Saturation(),
	}
	if s.store != nil {
		if off, reason := s.store.Disabled(); off {
			h.Status, h.Cachestore = "degraded", "disabled: "+reason
		} else if s.store.QuarantineCount() > 0 {
			h.Status, h.Cachestore = "degraded", "quarantine_nonempty"
		}
	}
	if ls.QueueCap > 0 && ls.Queued*100 >= ls.QueueCap*loadPressurePc && ls.Running >= ls.Workers {
		h.Status, h.Load = "degraded", "pressure"
	}
	if s.Draining() {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

// eventLine is one line of the events stream. Sample lines carry the
// job's sampled time series (type "sample"); the stream ends with a
// single "status" line holding the job's terminal JobStatus.
type eventLine struct {
	Type   string      `json:"type"`
	Sample *sampleJSON `json:"sample,omitempty"`
	Status *JobStatus  `json:"status,omitempty"`
}

// sampleJSON flattens obs.Sample with a millisecond timestamp.
type sampleJSON struct {
	Seq          uint64  `json:"seq"`
	TSMs         float64 `json:"ts_ms"`
	Insts        uint64  `json:"insts"`
	Cycles       uint64  `json:"cycles"`
	SlowInsts    uint64  `json:"slow_insts"`
	FastInsts    uint64  `json:"fast_insts"`
	CacheBytes   uint64  `json:"cache_bytes"`
	CacheEntries uint64  `json:"cache_entries"`
	IPC          float64 `json:"ipc"`
}

// eventsPollInterval is how often the events stream polls for new
// samples while the job runs.
const eventsPollInterval = 25 * time.Millisecond

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	doneCh, err := s.Done(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	track := "job-" + id
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	var cursor uint64
	flush := func() bool {
		wrote := false
		for _, smp := range s.rec.SamplesSince(cursor) {
			cursor = smp.Seq + 1
			if smp.Track != track {
				continue
			}
			line := eventLine{Type: "sample", Sample: &sampleJSON{
				Seq:          smp.Seq,
				TSMs:         float64(smp.TS.Nanoseconds()) / 1e6,
				Insts:        smp.Insts,
				Cycles:       smp.Cycles,
				SlowInsts:    smp.SlowInsts,
				FastInsts:    smp.FastInsts,
				CacheBytes:   smp.CacheBytes,
				CacheEntries: smp.CacheEntries,
				IPC:          smp.IPC,
			}}
			if enc.Encode(line) != nil {
				return false
			}
			wrote = true
		}
		if wrote && flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()
	terminal := false
	for !terminal {
		select {
		case <-r.Context().Done():
			return
		case <-doneCh:
			terminal = true
		case <-ticker.C:
		}
		if !flush() {
			return
		}
	}
	st, err := s.Status(id)
	if err == nil {
		_ = enc.Encode(eventLine{Type: "status", Status: &st})
	}
	if flusher != nil {
		flusher.Flush()
	}
}
