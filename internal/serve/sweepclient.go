package serve

import (
	"context"
	"net/http"
	"time"

	"facile/internal/sweep"
)

// Sweep API client methods plus RemoteBackend, the client-side
// sweep.Backend that submits each point as an ordinary fsimd job — the
// remote twin of sweep.LocalBackend. Warm sharing happens server-side:
// the daemon keys parked caches by lineage, so sequential same-lineage
// submissions warm-start exactly as local points do.

// SubmitSweep posts a sweep; the server returns its initial status.
func (c *Client) SubmitSweep(ctx context.Context, req SweepRequest) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &st)
	return st, err
}

// SweepStatus fetches one sweep.
func (c *Client) SweepStatus(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// ListSweeps fetches all sweeps.
func (c *Client) ListSweeps(ctx context.Context) ([]SweepStatus, error) {
	var out []SweepStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps", nil, &out)
	return out, err
}

// CancelSweep requests cancellation of a running sweep.
func (c *Client) CancelSweep(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, nil)
}

// WaitSweep polls until the sweep is terminal (or ctx expires).
func (c *Client) WaitSweep(ctx context.Context, id string, poll time.Duration) (SweepStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.SweepStatus(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case SweepDone, SweepFailed, SweepCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// RemoteBackend executes sweep points against a running fsimd. Queue-full
// responses (HTTP 429) are absorbed by retrying; cancellation propagates
// to the in-flight job.
type RemoteBackend struct {
	C *Client
	// Poll is the job-status polling interval (default 50ms).
	Poll time.Duration
}

// Run implements sweep.Backend.
func (b *RemoteBackend) Run(ctx context.Context, js sweep.JobSpec) (sweep.JobResult, error) {
	start := time.Now()
	req := JobRequest{
		Bench: js.Bench, Scale: js.Scale, Asm: js.Asm,
		Engine: js.Engine, Memoize: js.Memoize,
		CacheCapBytes: js.CacheCapBytes, MaxInsts: js.MaxInsts,
		Uarch: js.Uarch,
	}
	st, err := b.C.SubmitRetry(ctx, req)
	if err != nil {
		return sweep.JobResult{}, err
	}
	fin, err := b.C.Wait(ctx, st.ID, b.Poll)
	if err != nil {
		if ctx.Err() != nil {
			// Cancel the in-flight job with a fresh context (ctx is dead) and
			// best-effort semantics: the server may already have finished it.
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = b.C.Cancel(cctx, st.ID)
			cancel()
			return sweep.JobResult{}, ctx.Err()
		}
		return sweep.JobResult{}, err
	}
	switch fin.State {
	case StateDone:
		out := sweep.JobResult{
			WarmStart:   fin.WarmStart,
			WarmSource:  fin.WarmSource,
			WarmEntries: fin.WarmEntries,
			WallMs:      time.Since(start).Milliseconds(),
		}
		if fin.Result != nil {
			out.Result = *fin.Result
		}
		if fin.Stats != nil {
			out.Stats = *fin.Stats
		}
		return out, nil
	case StateCanceled:
		return sweep.JobResult{}, context.Canceled
	default:
		return sweep.JobResult{}, &StatusError{Code: http.StatusInternalServerError,
			Msg: "job " + fin.ID + " " + fin.State + ": " + fin.Error}
	}
}
