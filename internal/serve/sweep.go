package serve

// Design-space sweeps as first-class server jobs: POST /v1/sweeps expands
// a sweep.Spec and runs every point through the ordinary job queue — each
// point is a normal job, subject to the same bounded-queue backpressure,
// timeouts, cancellation, and warm-cache lineage sharing as any other
// submission. Because same-lineage points run back to back, the server's
// parked caches (and, across restarts, the persistent store) turn the
// sweep into one cold run plus warm restarts.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"facile/internal/sweep"
)

// Sweep states.
const (
	SweepRunning  = "running"
	SweepDone     = "done"
	SweepFailed   = "failed"
	SweepCanceled = "canceled"
)

// ErrUnknownSweep reports a sweep ID the server does not know.
var ErrUnknownSweep = errors.New("serve: unknown sweep")

// ErrSweepDone reports an operation on a terminal sweep.
var ErrSweepDone = errors.New("serve: sweep already terminal")

// SweepRequest is the POST /v1/sweeps body: a sweep spec plus server-side
// execution knobs.
type SweepRequest struct {
	sweep.Spec

	// Workers bounds how many cache lineages run concurrently (clamped to
	// the server's worker-pool size; default 1 — fully sequential, maximum
	// warm reuse).
	Workers int `json:"workers,omitempty"`
}

// sweepRec is the server-side record of one sweep.
type sweepRec struct {
	id      string
	state   string
	spec    sweep.Spec
	workers int
	total   int

	settled []sweep.PointResult // settle order (the event stream)
	report  *sweep.Report       // set when terminal
	err     string

	cancel     context.CancelFunc
	done       chan struct{}
	createdAt  time.Time
	finishedAt time.Time
}

// SweepStatus is the API view of a sweep.
type SweepStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Name   string `json:"name,omitempty"`
	Bench  string `json:"bench,omitempty"`
	Engine string `json:"engine"`
	Error  string `json:"error,omitempty"`

	TotalPoints   int `json:"total_points"`
	SettledPoints int `json:"settled_points"`
	WarmStarts    int `json:"warm_starts"`

	CreatedAt  time.Time `json:"created_at"`
	FinishedAt time.Time `json:"finished_at"`

	// Report carries the full comparative report once the sweep is
	// terminal (including a partial one after cancellation).
	Report *sweep.Report `json:"report,omitempty"`
}

// serverBackend executes sweep points by submitting them to this server's
// job queue. Queue-full backpressure is absorbed by the shared jittered
// backoff (the sweep is a background batch; it waits rather than
// failing), and cancellation propagates to the in-flight job.
type serverBackend struct{ s *Server }

func (b serverBackend) Run(ctx context.Context, js sweep.JobSpec) (sweep.JobResult, error) {
	start := time.Now()
	req := JobRequest{
		Bench: js.Bench, Scale: js.Scale, Asm: js.Asm,
		Engine: js.Engine, Memoize: js.Memoize,
		CacheCapBytes: js.CacheCapBytes, MaxInsts: js.MaxInsts,
		Uarch: js.Uarch,
	}
	var st JobStatus
	if err := DefaultBackoff.Retry(ctx, retryableQueueFull, func() error {
		var err error
		st, err = b.s.Submit(req)
		return err
	}); err != nil {
		return sweep.JobResult{}, err
	}
	doneCh, err := b.s.Done(st.ID)
	if err != nil {
		return sweep.JobResult{}, err
	}
	select {
	case <-doneCh:
	case <-ctx.Done():
		_ = b.s.Cancel(st.ID)
		<-doneCh
		return sweep.JobResult{}, ctx.Err()
	}
	fin, err := b.s.Status(st.ID)
	if err != nil {
		return sweep.JobResult{}, err
	}
	switch fin.State {
	case StateDone:
		out := sweep.JobResult{
			WarmStart:   fin.WarmStart,
			WarmSource:  fin.WarmSource,
			WarmEntries: fin.WarmEntries,
			WallMs:      time.Since(start).Milliseconds(),
		}
		if fin.Result != nil {
			out.Result = *fin.Result
		}
		if fin.Stats != nil {
			out.Stats = *fin.Stats
		}
		return out, nil
	case StateCanceled:
		return sweep.JobResult{}, context.Canceled
	default:
		return sweep.JobResult{}, fmt.Errorf("job %s %s: %s", fin.ID, fin.State, fin.Error)
	}
}

// StartSweep validates, registers, and launches a sweep. The expansion
// (grid shape, per-point geometry) is checked synchronously so the caller
// gets a 4xx for a bad spec; execution is asynchronous.
func (s *Server) StartSweep(req SweepRequest) (SweepStatus, error) {
	spec := req.Spec
	points, err := spec.Expand() // also normalizes spec in place
	if err != nil {
		return SweepStatus{}, err
	}
	workers := req.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}

	ctx, cancel := context.WithCancel(context.Background())
	rec := &sweepRec{
		state:     SweepRunning,
		spec:      spec,
		workers:   workers,
		total:     len(points),
		cancel:    cancel,
		done:      make(chan struct{}),
		createdAt: time.Now(),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return SweepStatus{}, ErrDraining
	}
	s.sweepSeq++
	rec.id = fmt.Sprintf("sweep-%04d", s.sweepSeq)
	s.sweeps[rec.id] = rec
	s.sweepOrder = append(s.sweepOrder, rec.id)
	s.counter("serve.sweeps_started").Inc()
	st := s.sweepStatusLocked(rec)
	s.mu.Unlock()

	s.sweepWg.Add(1)
	go func() {
		defer s.sweepWg.Done()
		defer cancel()
		report, runErr := sweep.Run(ctx, spec, sweep.Options{
			Backend: serverBackend{s},
			Workers: workers,
			Rec:     s.rec,
			OnPoint: func(pr sweep.PointResult) {
				s.mu.Lock()
				rec.settled = append(rec.settled, pr)
				s.mu.Unlock()
			},
		})
		s.mu.Lock()
		rec.report = report
		switch {
		case runErr == nil:
			rec.state = SweepDone
			s.counter("serve.sweeps_done").Inc()
		case errors.Is(runErr, context.Canceled):
			rec.state = SweepCanceled
			rec.err = "canceled"
			s.counter("serve.sweeps_canceled").Inc()
		default:
			rec.state = SweepFailed
			rec.err = runErr.Error()
			s.counter("serve.sweeps_failed").Inc()
		}
		rec.finishedAt = time.Now()
		close(rec.done)
		s.mu.Unlock()
	}()
	return st, nil
}

// SweepStatus reports one sweep.
func (s *Server) SweepStatus(id string) (SweepStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.sweeps[id]
	if rec == nil {
		return SweepStatus{}, ErrUnknownSweep
	}
	return s.sweepStatusLocked(rec), nil
}

// ListSweeps reports every sweep in start order.
func (s *Server) ListSweeps() []SweepStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SweepStatus, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		out = append(out, s.sweepStatusLocked(s.sweeps[id]))
	}
	return out
}

// CancelSweep stops a running sweep: no new points start, the in-flight
// point's job is canceled, and the final report marks unrun points
// skipped.
func (s *Server) CancelSweep(id string) error {
	s.mu.Lock()
	rec := s.sweeps[id]
	s.mu.Unlock()
	if rec == nil {
		return ErrUnknownSweep
	}
	select {
	case <-rec.done:
		return ErrSweepDone
	default:
	}
	rec.cancel()
	return nil
}

// SweepDone returns a channel closed when the sweep reaches a terminal
// state.
func (s *Server) SweepDone(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.sweeps[id]
	if rec == nil {
		return nil, ErrUnknownSweep
	}
	return rec.done, nil
}

// SweepEventsSince returns the point results settled at or after cursor
// (an index into the settle-ordered event log) plus the sweep's current
// state.
func (s *Server) SweepEventsSince(id string, cursor int) ([]sweep.PointResult, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.sweeps[id]
	if rec == nil {
		return nil, "", ErrUnknownSweep
	}
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= len(rec.settled) {
		return nil, rec.state, nil
	}
	out := make([]sweep.PointResult, len(rec.settled)-cursor)
	copy(out, rec.settled[cursor:])
	return out, rec.state, nil
}

// cancelSweepsForDrain cancels every running sweep and waits for their
// goroutines; Drain calls it before stopping the workers so sweep-owned
// jobs settle first.
func (s *Server) cancelSweepsForDrain() {
	s.mu.Lock()
	for _, rec := range s.sweeps {
		select {
		case <-rec.done:
		default:
			rec.cancel()
		}
	}
	s.mu.Unlock()
	s.sweepWg.Wait()
}

func (s *Server) sweepStatusLocked(rec *sweepRec) SweepStatus {
	st := SweepStatus{
		ID:            rec.id,
		State:         rec.state,
		Name:          rec.spec.Name,
		Bench:         rec.spec.Bench,
		Engine:        rec.spec.Engine,
		Error:         rec.err,
		TotalPoints:   rec.total,
		SettledPoints: len(rec.settled),
		CreatedAt:     rec.createdAt,
		FinishedAt:    rec.finishedAt,
		Report:        rec.report,
	}
	for i := range rec.settled {
		if rec.settled[i].WarmStart {
			st.WarmStarts++
		}
	}
	return st
}
