// Package cli holds the small pieces of process plumbing shared by every
// command in this repository: the -version flag and orderly
// signal-triggered shutdown.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
)

// Version reports the module version and VCS revision baked into the
// binary by the Go toolchain (runtime/debug.ReadBuildInfo). Binaries built
// outside a VCS checkout degrade to "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		return fmt.Sprintf("%s (%s)", v, rev)
	}
	return v
}

// PrintVersion writes "<cmd> version <version>" to stdout. Commands call it
// (and exit) when the -version flag is set.
func PrintVersion(cmd string) {
	fmt.Printf("%s version %s\n", cmd, Version())
}

// ShutdownContext returns a context canceled on SIGINT or SIGTERM, and a
// stop function releasing the signal registration. A second signal while
// the first is being handled kills the process with the default behavior,
// so a wedged drain can always be interrupted.
func ShutdownContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
