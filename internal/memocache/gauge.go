// Package memocache holds the byte-accounting and clear-when-full policy
// shared by the two specialized action caches (internal/arch/fastsim and
// internal/rt). Keeping the policy in one place guarantees the engines
// agree on when a capped cache clears and how fault invalidations interact
// with the generation counter that in-flight replays use to detect
// staleness.
package memocache

// Gauge tracks a cache's byte occupancy against an optional cap and
// implements the paper's clear-when-full policy (§6.1: "fixing a maximum
// cache size and clearing the cache when it fills"). Occupancy is checked
// *after* charging an installed entry, so the cache clears on the put that
// overflows it rather than one put later.
//
// Gen is the staleness generation: a replay that cached a direct link to an
// entry re-validates the link whenever Gen has moved. Both clears and fault
// invalidations bump Gen, so a discarded entry can never be re-entered
// through a stale link.
type Gauge struct {
	Bytes    uint64 // current occupancy (accounting model)
	CapBytes uint64 // 0 = unlimited
	Gen      uint64

	TotalBytes    uint64 // monotonic: everything ever memoized (Table 2)
	Clears        uint64
	Invalidations uint64 // entries discarded by fault recovery
}

// Charge adds n bytes to the occupancy and the monotonic total.
func (g *Gauge) Charge(n uint64) {
	g.Bytes += n
	g.TotalBytes += n
}

// Over reports whether the occupancy exceeds the cap (if any). Callers
// check it after charging a newly installed entry.
func (g *Gauge) Over() bool {
	return g.CapBytes > 0 && g.Bytes > g.CapBytes
}

// Cleared records a whole-cache clear: occupancy resets and the generation
// moves so in-flight replays drop their cached links.
func (g *Gauge) Cleared() {
	g.Bytes = 0
	g.Gen++
	g.Clears++
}

// Refund removes n bytes from the occupancy (the monotonic total is
// unaffected). Clamped so stale refunds after a clear cannot underflow.
func (g *Gauge) Refund(n uint64) {
	if n > g.Bytes {
		n = g.Bytes
	}
	g.Bytes -= n
}

// Invalidated records a single-entry fault invalidation: the dead entry's
// bytes are refunded from the occupancy and the generation moves so cached
// links to the entry are re-validated and miss. Callers pass 0 when the
// entry was no longer charged (e.g. a clear already reset the gauge).
func (g *Gauge) Invalidated(entryBytes uint64) {
	g.Refund(entryBytes)
	g.Gen++
	g.Invalidations++
}
