package workloads

import (
	"fmt"
	"strings"
)

// fpPrologue extends the common prologue with f1=1.0, f2=0.5, f3=2.0.
const fpPrologue = `
        li   r4, 1
        cvtif f1, r4
        li   r4, 2
        cvtif f3, r4
        fdiv f2, f1, f3
`

// fpChecksum converts f10 into the integer checksum register.
const fpChecksum = `
        cvtfi r4, f10
        add  r20, r20, r4
`

// 101.tomcatv — vectorized mesh-generation character: a 1D five-point
// stencil swept repeatedly over an array. Extremely regular; the paper's
// best fast-forwarding rate (99.997%).
func genTomcatv(scale int) string {
	return stencil("tomcatv", 30*scale, 128, 3)
}

// 102.swim — shallow-water model: same stencil family with a second
// array and coupled updates.
func genSwim(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 25*scale)
	b.WriteString(`        la   r22, u
        la   r23, v
        call finit2
        li   r4, 0
        cvtif f10, r4
sweep:  beq  r21, r0, fin
        li   r1, 1
body:   sll  r5, r1, 3
        add  r6, r22, r5
        add  r7, r23, r5
        fld  f4, r6, -8
        fld  f5, r6, 8
        fld  f6, r7, 0
        fadd f7, f4, f5
        fmul f7, f7, f2
        fsub f7, f7, f6
        fst  f7, r6, 0
        fadd f8, f6, f7
        fmul f8, f8, f2
        fst  f8, r7, 0
        fadd f10, f10, f7
        add  r1, r1, 1
        li   r8, 127
        blt  r1, r8, body
        sub  r21, r21, 1
        b    sweep
fin:
` + fpChecksum + epilogue + `
finit2: li   r1, 0
fi2:    sll  r5, r1, 3
        add  r6, r22, r5
        add  r7, r23, r5
        cvtif f4, r1
        fmul f4, f4, f2
        fst  f4, r6, 0
        fst  f4, r7, 0
        add  r1, r1, 1
        li   r8, 128
        blt  r1, r8, fi2
        ret
        .data
u:      .space 1024
v:      .space 1024
`)
	return b.String()
}

// 103.su2cor — quantum-physics character: dense matrix-vector products in
// a doubly nested loop.
func genSu2cor(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 12*scale)
	b.WriteString(`        la   r22, mat
        la   r23, vec
        call vinit
        li   r4, 0
        cvtif f10, r4
iter:   beq  r21, r0, fin
        li   r1, 0             ; row
row:    li   r4, 0
        cvtif f5, r4           ; accumulator
        li   r2, 0             ; col
col:    sll  r5, r1, 4         ; 16 cols * 8B = row stride 128... use 16
        add  r5, r5, r2
        sll  r5, r5, 3
        add  r6, r22, r5
        fld  f4, r6, 0
        sll  r7, r2, 3
        add  r7, r23, r7
        fld  f6, r7, 0
        fmul f7, f4, f6
        fadd f5, f5, f7
        add  r2, r2, 1
        li   r8, 16
        blt  r2, r8, col
        sll  r7, r1, 3
        add  r7, r23, r7
        fmul f5, f5, f2
        fst  f5, r7, 0
        fadd f10, f10, f5
        add  r1, r1, 1
        li   r8, 16
        blt  r1, r8, row
        sub  r21, r21, 1
        b    iter
fin:
` + fpChecksum + epilogue + `
vinit:  li   r1, 0
vi:     cvtif f4, r1
        fmul f4, f4, f2
        sll  r5, r1, 3
        add  r6, r23, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 16
        blt  r1, r8, vi
        li   r1, 0
mi:     cvtif f4, r1
        fmul f4, f4, f2
        sll  r5, r1, 3
        add  r6, r22, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 256
        blt  r1, r8, mi
        ret
        .data
mat:    .space 2048
vec:    .space 256
`)
	return b.String()
}

// 104.hydro2d — hydrodynamics character: stencil with flux-limiter
// branches (a data-dependent clamp inside regular loops).
func genHydro2d(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 25*scale)
	b.WriteString(`        la   r22, grid
        call ginit
        li   r4, 0
        cvtif f10, r4
        li   r9, 0
        cvtif f9, r9           ; zero for limiter compare
sweep:  beq  r21, r0, fin
        li   r1, 1
body:   sll  r5, r1, 3
        add  r6, r22, r5
        fld  f4, r6, -8
        fld  f5, r6, 0
        fld  f6, r6, 8
        fsub f7, f6, f4        ; gradient
        fcmp r7, f7, f9
        bge  r7, r0, pos
        fneg f7, f7            ; limiter: |gradient|
pos:    fmul f7, f7, f2
        fadd f5, f5, f7
        fst  f5, r6, 0
        fadd f10, f10, f7
        add  r1, r1, 1
        li   r8, 159
        blt  r1, r8, body
        sub  r21, r21, 1
        b    sweep
fin:
` + fpChecksum + epilogue + `
ginit:  li   r1, 0
gi:     mul  r4, r1, r1
        and  r4, r4, 63
        sub  r4, r4, 31
        cvtif f4, r4
        sll  r5, r1, 3
        add  r6, r22, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 160
        blt  r1, r8, gi
        ret
        .data
grid:   .space 1280
`)
	return b.String()
}

// 107.mgrid — multigrid character: nested sweeps at three resolutions
// (stride 1, 2, 4) over one array. In the paper, mgrid had the single
// largest fast-forwarding speedup.
func genMgrid(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 12*scale)
	b.WriteString(`        la   r22, g
        call ginit
        li   r4, 0
        cvtif f10, r4
vcycle: beq  r21, r0, fin
        li   r9, 1             ; stride: 1, 2, 4
level:  li   r1, 8
lbody:  sll  r5, r1, 3
        add  r6, r22, r5
        sll  r7, r9, 3
        sub  r8, r6, r7
        fld  f4, r8, 0
        add  r8, r6, r7
        fld  f5, r8, 0
        fld  f6, r6, 0
        fadd f7, f4, f5
        fmul f7, f7, f2
        fsub f7, f7, f6
        fmul f7, f7, f2
        fadd f6, f6, f7
        fst  f6, r6, 0
        fadd f10, f10, f7
        add  r1, r1, r9
        li   r4, 248
        blt  r1, r4, lbody
        sll  r9, r9, 1
        li   r4, 8
        blt  r9, r4, level
        sub  r21, r21, 1
        b    vcycle
fin:
` + fpChecksum + epilogue + `
ginit:  li   r1, 0
gi:     and  r4, r1, 31
        cvtif f4, r4
        fmul f4, f4, f2
        sll  r5, r1, 3
        add  r6, r22, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 256
        blt  r1, r8, gi
        ret
        .data
g:      .space 2048
`)
	return b.String()
}

// 110.applu — LU-solver character: forward/backward substitution sweeps
// with division (long-latency fdiv in the dependence chain).
func genApplu(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 18*scale)
	b.WriteString(`        la   r22, a
        call ainit
        li   r4, 0
        cvtif f10, r4
iter:   beq  r21, r0, fin
        ; forward sweep with divide
        li   r1, 1
fwd:    sll  r5, r1, 3
        add  r6, r22, r5
        fld  f4, r6, -8
        fld  f5, r6, 0
        fadd f6, f5, f1
        fdiv f7, f4, f6
        fadd f5, f5, f7
        fst  f5, r6, 0
        add  r1, r1, 1
        li   r8, 48
        blt  r1, r8, fwd
        ; backward sweep
        li   r1, 46
bwd:    sll  r5, r1, 3
        add  r6, r22, r5
        fld  f4, r6, 8
        fld  f5, r6, 0
        fmul f6, f4, f2
        fsub f5, f5, f6
        fst  f5, r6, 0
        fadd f10, f10, f5
        sub  r1, r1, 1
        blt  r0, r1, bwd
        sub  r21, r21, 1
        b    iter
fin:
` + fpChecksum + epilogue + `
ainit:  li   r1, 0
ai:     add  r4, r1, 3
        cvtif f4, r4
        sll  r5, r1, 3
        add  r6, r22, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 48
        blt  r1, r8, ai
        ret
        .data
a:      .space 512
`)
	return b.String()
}

// 125.turb3d — turbulence/FFT character: butterfly loops with
// power-of-two strides and paired updates.
func genTurb3d(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 15*scale)
	b.WriteString(`        la   r22, buf
        call binit
        li   r4, 0
        cvtif f10, r4
iter:   beq  r21, r0, fin
        li   r9, 1             ; butterfly stride
stage:  li   r1, 0
bfly:   sll  r5, r1, 3
        add  r6, r22, r5
        sll  r7, r9, 3
        add  r8, r6, r7
        fld  f4, r6, 0
        fld  f5, r8, 0
        fadd f6, f4, f5
        fsub f7, f4, f5
        fmul f7, f7, f2
        fst  f6, r6, 0
        fst  f7, r8, 0
        add  r1, r1, 1
        ; skip the partner half: if (i & stride) advance past it
        and  r4, r1, r9
        beq  r4, r0, bnext
        add  r1, r1, r9
bnext:  li   r4, 64
        blt  r1, r4, bfly
        sll  r9, r9, 1
        li   r4, 32
        blt  r9, r4, stage
        fld  f8, r22, 0
        fadd f10, f10, f8
        sub  r21, r21, 1
        b    iter
fin:
` + fpChecksum + epilogue + `
binit:  li   r1, 0
bi:     and  r4, r1, 15
        sub  r4, r4, 7
        cvtif f4, r4
        sll  r5, r1, 3
        add  r6, r22, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 96
        blt  r1, r8, bi
        ret
        .data
buf:    .space 768
`)
	return b.String()
}

// 141.apsi — weather-model character: mixed integer/FP loops with
// conditional accumulation (temperature thresholding).
func genApsi(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 20*scale)
	b.WriteString(`        la   r22, t
        call tinit
        li   r4, 0
        cvtif f10, r4
        li   r4, 20
        cvtif f9, r4           ; threshold
iter:   beq  r21, r0, fin
        li   r1, 0
body:   sll  r5, r1, 3
        add  r6, r22, r5
        fld  f4, r6, 0
        fcmp r7, f4, f9
        blt  r7, r0, cold
        fsub f4, f4, f2        ; hot cell: cool it
        fadd f10, f10, f1
        b    wr
cold:   fadd f4, f4, f2
wr:     fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 96
        blt  r1, r8, body
        sub  r21, r21, 1
        b    iter
fin:
` + fpChecksum + epilogue + `
tinit:  li   r1, 0
ti:     mul  r4, r1, 5
        and  r4, r4, 63
        cvtif f4, r4
        sll  r5, r1, 3
        add  r6, r22, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 96
        blt  r1, r8, ti
        ret
        .data
t:      .space 768
`)
	return b.String()
}

// 145.fpppp — quantum-chemistry character: very long straight-line
// floating-point basic blocks inside a modest loop. fpppp is the paper's
// canonical "huge basic block" benchmark and its biggest Facile speedup
// (23.8x).
func genFpppp(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 50*scale)
	b.WriteString(`        la   r22, d
        call dinit
        li   r4, 0
        cvtif f10, r4
iter:   beq  r21, r0, fin
`)
	// One long, branch-free block of dependent and independent FP ops
	// (the fpppp signature).
	for k := 0; k < 40; k++ {
		fmt.Fprintf(&b, `        fld  f4, r22, %d
        fld  f5, r22, %d
        fmul f6, f4, f5
        fadd f7, f6, f2
        fsub f8, f7, f4
        fmul f8, f8, f2
        fst  f8, r22, %d
        fadd f10, f10, f8
`, (k%12)*8, ((k+5)%12)*8, ((k+3)%12)*8)
	}
	b.WriteString(`        sub  r21, r21, 1
        b    iter
fin:
` + fpChecksum + epilogue + `
dinit:  li   r1, 0
di:     add  r4, r1, 1
        cvtif f4, r4
        sll  r5, r1, 3
        add  r6, r22, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, 12
        blt  r1, r8, di
        ret
        .data
d:      .space 96
`)
	return b.String()
}

// 146.wave5 — plasma-physics character: particle push with gather/scatter
// through an index array (indirect FP memory access).
func genWave5(scale int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 18*scale)
	b.WriteString(`        la   r22, field
        la   r23, part
        la   r24, idx
        call winit
        li   r4, 0
        cvtif f10, r4
iter:   beq  r21, r0, fin
        li   r1, 0
push:   sll  r5, r1, 3
        add  r6, r24, r5
        ldd  r7, r6, 0         ; particle's cell index
        sll  r7, r7, 3
        add  r7, r22, r7
        fld  f4, r7, 0         ; gather field
        add  r8, r23, r5
        fld  f5, r8, 0         ; particle velocity
        fmul f6, f4, f2
        fadd f5, f5, f6
        fst  f5, r8, 0         ; update particle
        fst  f5, r7, 0         ; scatter back
        fadd f10, f10, f6
        add  r1, r1, 1
        li   r9, 64
        blt  r1, r9, push
        sub  r21, r21, 1
        b    iter
fin:
` + fpChecksum + epilogue + `
winit:  li   r1, 0
wi:
` + lcg("r5") + `
        and  r5, r5, 63
        sll  r6, r1, 3
        add  r7, r24, r6
        std  r5, r7, 0
        cvtif f4, r1
        fmul f4, f4, f2
        add  r8, r22, r6
        fst  f4, r8, 0
        add  r9, r23, r6
        fst  f4, r9, 0
        add  r1, r1, 1
        li   r9, 64
        blt  r1, r9, wi
        ret
        .data
field:  .space 512
part:   .space 512
idx:    .space 512
`)
	return b.String()
}

// stencil emits a generic repeated three-point stencil benchmark.
func stencil(name string, iters, n, _ int) string {
	var b strings.Builder
	b.WriteString(prologue + fpPrologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", iters)
	fmt.Fprintf(&b, `        la   r22, arr
        call sinit
        li   r4, 0
        cvtif f10, r4
sweep:  beq  r21, r0, fin
        li   r1, 1
body:   sll  r5, r1, 3
        add  r6, r22, r5
        fld  f4, r6, -8
        fld  f5, r6, 0
        fld  f6, r6, 8
        fadd f7, f4, f6
        fmul f7, f7, f2
        fadd f7, f7, f5
        fmul f7, f7, f2
        fst  f7, r6, 0
        fadd f10, f10, f7
        add  r1, r1, 1
        li   r8, %d
        blt  r1, r8, body
        sub  r21, r21, 1
        b    sweep
fin:
`+fpChecksum+epilogue+`
sinit:  li   r1, 0
si:     and  r4, r1, 15
        cvtif f4, r4
        sll  r5, r1, 3
        add  r6, r22, r5
        fst  f4, r6, 0
        add  r1, r1, 1
        li   r8, %d
        blt  r1, r8, si
        ret
        .data
arr:    .space %d
`, n-1, n, n*8)
	return b.String()
}
