package workloads

import (
	"fmt"
	"strings"

	"facile/internal/isa/asm"
	"facile/internal/isa/loader"
)

// Random generates a random-but-terminating SVR32 program from seed, for
// differential testing: every simulator must agree on its results. The
// program runs a fixed-trip outer loop whose body is a random mix of
// arithmetic, memory traffic in a scratch region, bounded forward
// branches, and calls, then prints a checksum and exits.
func Random(seed int64, bodyOps, iters int) (*loader.Program, error) {
	r := seed
	next := func(n int) int {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		v := int(uint64(r) % uint64(n))
		return v
	}
	reg := func() int { return 4 + next(12) } // r4..r15 scratch

	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", iters)
	b.WriteString("        la   r22, scratch\n")
	b.WriteString("        li   r23, 1016\n")     // index mask (127*8)
	b.WriteString("        li   r19, 0xffffff\n") // checksum mask
	b.WriteString("loop:   beq  r21, r0, finish\n")
	skip := 0
	inSkip := 0
	for i := 0; i < bodyOps; i++ {
		if inSkip > 0 {
			inSkip--
			if inSkip == 0 {
				fmt.Fprintf(&b, "sk%d:\n", skip)
				skip++
			}
		}
		switch next(10) {
		case 0:
			fmt.Fprintf(&b, "        add  r%d, r%d, r%d\n", reg(), reg(), reg())
		case 1:
			fmt.Fprintf(&b, "        sub  r%d, r%d, %d\n", reg(), reg(), next(100))
		case 2:
			fmt.Fprintf(&b, "        mul  r%d, r%d, %d\n", reg(), reg(), 1+next(7))
		case 3:
			fmt.Fprintf(&b, "        xor  r%d, r%d, r%d\n", reg(), reg(), reg())
		case 4:
			fmt.Fprintf(&b, "        and  r%d, r%d, %d\n", reg(), reg(), 1+next(1023))
		case 5: // store to scratch (masked index)
			d, a := reg(), reg()
			fmt.Fprintf(&b, "        and  r16, r%d, 1016\n", a)
			fmt.Fprintf(&b, "        add  r17, r22, r16\n")
			fmt.Fprintf(&b, "        std  r%d, r17, 0\n", d)
		case 6: // load from scratch
			d, a := reg(), reg()
			fmt.Fprintf(&b, "        and  r16, r%d, 1016\n", a)
			fmt.Fprintf(&b, "        add  r17, r22, r16\n")
			fmt.Fprintf(&b, "        ldd  r%d, r17, 0\n", d)
		case 7: // bounded forward skip on a data-dependent condition
			if inSkip == 0 && i+3 < bodyOps {
				fmt.Fprintf(&b, "        and  r18, r%d, %d\n", reg(), 1+next(7))
				fmt.Fprintf(&b, "        beq  r18, r0, sk%d\n", skip)
				inSkip = 1 + next(3)
			} else {
				fmt.Fprintf(&b, "        or   r%d, r%d, r%d\n", reg(), reg(), reg())
			}
		case 8: // mix the checksum
			fmt.Fprintf(&b, "        add  r20, r20, r%d\n", reg())
			fmt.Fprintf(&b, "        and  r20, r20, r19\n")
		case 9: // deterministic pseudo-random churn
			b.WriteString(lcg(fmt.Sprintf("r%d", reg())))
		}
	}
	if inSkip > 0 {
		fmt.Fprintf(&b, "sk%d:\n", skip)
	}
	b.WriteString("        sub  r21, r21, 1\n        b    loop\n")
	b.WriteString(epilogue)
	b.WriteString("        .data\nscratch: .space 1024\n")
	return asm.Assemble(fmt.Sprintf("random-%d", seed), b.String())
}
