// Package workloads provides the synthetic SVR32 benchmark suite standing
// in for SPEC95 in the paper's evaluation. Each benchmark keeps the name
// of the SPEC95 program it substitutes for and mimics its control-flow
// character — the property fast-forwarding's effectiveness depends on:
// regular floating-point loop nests replay almost perfectly and memoize
// little data, while branchy, irregular integer codes (gcc, go) exercise
// dynamic-result forks, recoveries, and large action caches.
//
// All programs are deterministic (in-program LCG for pseudo-random data),
// print a checksum through the print syscall, and exit with status 0, so
// every simulator's output can be validated against the golden functional
// model.
package workloads

import (
	"fmt"
	"sort"

	"facile/internal/isa/asm"
	"facile/internal/isa/loader"
)

// Workload is one generated benchmark.
type Workload struct {
	Name  string // SPEC95-style name, e.g. "126.gcc"
	Class string // "int" or "fp"
	Prog  *loader.Program
}

type generator struct {
	class string
	gen   func(scale int) string
}

var registry = map[string]generator{
	"099.go":       {"int", genGo},
	"124.m88ksim":  {"int", genM88ksim},
	"126.gcc":      {"int", genGcc},
	"129.compress": {"int", genCompress},
	"130.li":       {"int", genLi},
	"132.ijpeg":    {"int", genIjpeg},
	"134.perl":     {"int", genPerl},
	"147.vortex":   {"int", genVortex},
	"101.tomcatv":  {"fp", genTomcatv},
	"102.swim":     {"fp", genSwim},
	"103.su2cor":   {"fp", genSu2cor},
	"104.hydro2d":  {"fp", genHydro2d},
	"107.mgrid":    {"fp", genMgrid},
	"110.applu":    {"fp", genApplu},
	"125.turb3d":   {"fp", genTurb3d},
	"141.apsi":     {"fp", genApsi},
	"145.fpppp":    {"fp", genFpppp},
	"146.wave5":    {"fp", genWave5},
}

// Names returns the benchmark names in the paper's table order (integer
// benchmarks first, then floating point).
func Names() []string {
	var ints, fps []string
	for name, g := range registry {
		if g.class == "int" {
			ints = append(ints, name)
		} else {
			fps = append(fps, name)
		}
	}
	sort.Strings(ints)
	sort.Strings(fps)
	return append(ints, fps...)
}

// Source returns the generated assembly for a benchmark at the given
// scale (roughly proportional to dynamic instruction count; scale 1 runs
// tens of thousands of instructions).
func Source(name string, scale int) (string, error) {
	g, ok := registry[name]
	if !ok {
		return "", fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	if scale < 1 {
		scale = 1
	}
	return g.gen(scale), nil
}

// Get assembles a benchmark at the given scale.
func Get(name string, scale int) (*Workload, error) {
	src, err := Source(name, scale)
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(name, src)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	return &Workload{Name: name, Class: registry[name].class, Prog: prog}, nil
}

// Suite assembles the full 18-benchmark suite.
func Suite(scale int) ([]*Workload, error) {
	var ws []*Workload
	for _, name := range Names() {
		w, err := Get(name, scale)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// prologue emits the common setup: r25 = LCG state, r26 = LCG multiplier,
// r27 = mask, r20 = checksum.
const prologue = `
start:  li   r25, 12345        ; LCG state
        li   r26, 1103515245   ; LCG multiplier
        li   r27, 0x7fffffff   ; LCG mask
        li   r20, 0            ; checksum
`

// epilogue prints the checksum in r20 and exits cleanly.
const epilogue = `
finish: li   r2, 2
        mov  r3, r20
        syscall
        li   r2, 1
        li   r3, 0
        syscall
`

// lcg emits: dst = next pseudo-random value (clobbers r25).
func lcg(dst string) string {
	return fmt.Sprintf(`        mul  r25, r25, r26
        add  r25, r25, 12345
        and  r25, r25, r27
        mov  %s, r25
`, dst)
}
