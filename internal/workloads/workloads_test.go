package workloads

import (
	"testing"

	"facile/internal/arch/funcsim"
)

func TestSuiteAssembles(t *testing.T) {
	ws, err := Suite(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 18 {
		t.Fatalf("suite has %d benchmarks, want 18", len(ws))
	}
	ints, fps := 0, 0
	for _, w := range ws {
		switch w.Class {
		case "int":
			ints++
		case "fp":
			fps++
		default:
			t.Errorf("%s: bad class %q", w.Name, w.Class)
		}
	}
	if ints != 8 || fps != 10 {
		t.Fatalf("classes: %d int / %d fp, want 8/10 (SPEC95 shape)", ints, fps)
	}
}

func TestBenchmarksRunAndTerminate(t *testing.T) {
	ws, err := Suite(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			st, res, err := funcsim.Run(w.Prog, 30_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Halted {
				t.Fatalf("did not halt within 30M instructions (ran %d)", res.Insts)
			}
			if res.ExitStatus != 0 {
				t.Fatalf("exit status %d", res.ExitStatus)
			}
			if len(res.Output) == 0 {
				t.Fatal("no checksum output")
			}
			if res.Insts < 10_000 {
				t.Errorf("only %d instructions at scale 1; too small to be meaningful", res.Insts)
			}
			t.Logf("%s: %d insts, checksum %q", w.Name, res.Insts, res.Output)
		})
	}
}

func TestScaleGrowsWork(t *testing.T) {
	for _, name := range []string{"126.gcc", "101.tomcatv"} {
		w1, err := Get(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		w4, err := Get(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		_, r1, err := funcsim.Run(w1.Prog, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		_, r4, err := funcsim.Run(w4.Prog, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if r4.Insts < 2*r1.Insts {
			t.Errorf("%s: scale 4 ran %d insts, scale 1 ran %d — not growing", name, r4.Insts, r1.Insts)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w, err := Get("099.go", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, a, err := funcsim.Run(w.Prog, 30_000_000)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := funcsim.Run(w.Prog, 30_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Output) != string(b.Output) || a.Insts != b.Insts {
		t.Fatal("benchmark is not deterministic")
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := Get("999.bogus", 1); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}
