package workloads

import (
	"fmt"
	"strings"
)

// 099.go — game-tree search character: an iterative minimax-like sweep
// over a board array with data-dependent scoring branches and a manually
// managed evaluation stack. Irregular control flow over a large code
// footprint; in the paper this benchmark memoized by far the most data.
func genGo(scale int) string {
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 60*scale) // outer positions
	var disp, bodies strings.Builder
	for k := 1; k < 8; k++ {
		fmt.Fprintf(&disp, "        li   r10, %d\n        beq  r9, r10, p%d\n", k, k)
	}
	disp.WriteString("        b    skip")
	for k := 1; k < 8; k++ {
		// each piece kind inspects a different neighborhood and scores
		// with a different branchy rule, some mutating the board
		fmt.Fprintf(&bodies, "p%d:     ldd  r10, r6, %d\n", k, 8*(k%3+1))
		fmt.Fprintf(&bodies, "        beq  r10, r0, p%dq\n", k)
		fmt.Fprintf(&bodies, "        and  r11, r10, %d\n", k|1)
		fmt.Fprintf(&bodies, "        beq  r11, r0, p%dc\n", k)
		fmt.Fprintf(&bodies, "        add  r20, r20, %d\n        b    skip\n", k)
		fmt.Fprintf(&bodies, "p%dq:    add  r20, r20, %d\n        b    skip\n", k, k*3)
		fmt.Fprintf(&bodies, "p%dc:    sub  r20, r20, %d\n", k, k*2)
		if k%2 == 1 {
			fmt.Fprintf(&bodies, "        std  r0, r6, %d\n", 8*(k%3+1))
		}
		fmt.Fprintf(&bodies, "        b    skip\n")
	}
	body := `        la   r22, board
        li   r1, 0
fill:   bge  r1, r0, f2        ; always taken (pattern noise)
f2:     slt  r4, r1, r0
        beq  r4, r0, f3
f3:
` + lcg("r5") + `
        and  r5, r5, 7
        sll  r6, r1, 3
        add  r6, r22, r6
        std  r5, r6, 0
        add  r1, r1, 1
        blt  r1, r0, fill      ; never
        li   r7, 192
        blt  r1, r7, fill

outer:  beq  r21, r0, finish
        ; evaluate the board: dispatch each square to a per-piece-kind
        ; evaluator (go's large search/evaluation code footprint)
        li   r1, 0             ; square index
eval:   li   r7, 184
        bge  r1, r7, next
        sll  r6, r1, 3
        add  r6, r22, r6
        ldd  r8, r6, 0         ; piece
        beq  r8, r0, skip      ; empty square
        and  r9, r8, 7         ; piece kind
GO_DISPATCH
GO_BODIES
skip:   add  r1, r1, 1
        b    eval
next:   ; drop a new random piece
` + lcg("r5") + `
        and  r12, r5, 127
        sll  r12, r12, 3
        add  r12, r22, r12
        and  r13, r5, 7
        std  r13, r12, 0
        sub  r21, r21, 1
        b    outer
` + epilogue + `
        .data
board:  .space 1600
`
	body = strings.Replace(body, "GO_DISPATCH", strings.TrimRight(disp.String(), "\n"), 1)
	body = strings.Replace(body, "GO_BODIES", strings.TrimRight(bodies.String(), "\n"), 1)
	b.WriteString(body)
	return b.String()
}

// 124.m88ksim — CPU-simulator character: a fetch/dispatch loop over a
// synthetic instruction memory, a branch tree decoding opcode classes, and
// a small register file array. Highly repetitive dispatch with occasional
// data-dependent taken branches.
func genM88ksim(scale int) string {
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 1500*scale)
	b.WriteString(`        la   r22, imem
        la   r23, regs
        li   r1, 0             ; simulated pc
        li   r4, 0
seed:   bge  r4, r0, s2
s2:
` + lcg("r5") + `
        sll  r6, r4, 3
        add  r6, r22, r6
        std  r5, r6, 0
        add  r4, r4, 1
        li   r7, 256
        blt  r4, r7, seed

loop:   beq  r21, r0, finish
        and  r8, r1, 255
        sll  r8, r8, 3
        add  r8, r22, r8
        ldd  r9, r8, 0         ; simulated instruction word
        and  r10, r9, 3        ; opcode class
        beq  r10, r0, c_alu
        li   r11, 1
        beq  r10, r11, c_mem
        li   r11, 2
        beq  r10, r11, c_br
        ; class 3: nop-ish
        add  r20, r20, 1
        b    adv
c_alu:  srl  r12, r9, 2
        and  r12, r12, 7       ; simulated rd
        sll  r13, r12, 3
        add  r13, r23, r13
        ldd  r14, r13, 0
        srl  r15, r9, 5
        and  r15, r15, 63
        add  r14, r14, r15
        std  r14, r13, 0
        add  r20, r20, r15
        b    adv
c_mem:  srl  r12, r9, 2
        and  r12, r12, 7
        sll  r13, r12, 3
        add  r13, r23, r13
        ldd  r14, r13, 0
        and  r14, r14, 255
        sll  r14, r14, 3
        add  r14, r22, r14
        ldd  r16, r14, 0
        add  r20, r20, r16
        b    adv
c_br:   srl  r12, r9, 2
        and  r12, r12, 1
        beq  r12, r0, adv      ; not taken
        srl  r1, r9, 3
        and  r1, r1, 255       ; jump simulated pc
        sub  r21, r21, 1
        b    loop
adv:    add  r1, r1, 1
        sub  r21, r21, 1
        b    loop
` + epilogue + `
        .data
imem:   .space 2048
regs:   .space 64
`)
	return b.String()
}

// 126.gcc — compiler character: a table-driven state machine over a
// pseudo-token stream with many distinct states and irregular transitions.
// The paper's worst case for fast-forwarding (99.689%) and second-largest
// memoizer.
func genGcc(scale int) string {
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 1800*scale)
	var disp, bodies strings.Builder
	for h := 0; h < 16; h++ {
		fmt.Fprintf(&disp, "        li   r12, %d\n        beq  r11, r12, h%d\n", h, h)
		// each handler mixes a distinct arithmetic flavor over the token
		fmt.Fprintf(&bodies, "h%d:     mul  r14, r8, %d\n", h, 3+2*h)
		fmt.Fprintf(&bodies, "        xor  r14, r14, %d\n", h*h+1)
		fmt.Fprintf(&bodies, "        and  r14, r14, 2047\n")
		if h%3 == 0 {
			fmt.Fprintf(&bodies, "        add  r20, r20, r14\n")
		} else if h%3 == 1 {
			fmt.Fprintf(&bodies, "        sub  r20, r20, r14\n")
		} else {
			fmt.Fprintf(&bodies, "        xor  r20, r20, r14\n")
		}
		if h%4 == 2 {
			// some handlers touch the table too
			fmt.Fprintf(&bodies, "        std  r14, r10, 0\n")
		}
		fmt.Fprintf(&bodies, "        b    adv\n")
	}
	body := `        la   r22, table
        li   r4, 0
tinit:
` + lcg("r5") + `
        and  r5, r5, 63
        sll  r6, r4, 3
        add  r6, r22, r6
        std  r5, r6, 0
        add  r4, r4, 1
        li   r7, 512
        blt  r4, r7, tinit
        li   r1, 0             ; automaton state

loop:   beq  r21, r0, finish
` + lcg("r5") + `
        and  r8, r5, 31        ; pseudo token
        ; transition: state' = table[(state*8 + token) mod 512]
        sll  r9, r1, 3
        add  r9, r9, r8
        and  r9, r9, 511
        sll  r10, r9, 3
        add  r10, r22, r10
        ldd  r1, r10, 0
        and  r1, r1, 63
        ; dispatch on state class through a 16-way branch chain of
        ; distinct handlers (gcc's large, irregular code footprint)
        and  r11, r1, 15
HANDLER_DISPATCH
        ; fallthrough: rewrite a table entry (self-modifying automaton)
        and  r13, r5, 15
        bne  r13, r0, adv
        std  r8, r10, 0
        b    adv
HANDLER_BODIES
adv:    sub  r21, r21, 1
        b    loop
` + epilogue + `
        .data
table:  .space 4096
`
	body = strings.Replace(body, "HANDLER_DISPATCH", strings.TrimRight(disp.String(), "\n"), 1)
	body = strings.Replace(body, "HANDLER_BODIES", strings.TrimRight(bodies.String(), "\n"), 1)
	b.WriteString(body)
	return b.String()
}

// 129.compress — LZW character: a hashing loop with table probes and
// data-dependent hit/miss branches; small and regular enough that the
// paper's compress memoized the least data of the integer codes.
func genCompress(scale int) string {
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 2000*scale)
	b.WriteString(`        la   r22, htab
        li   r1, 0             ; current code
loop:   beq  r21, r0, finish
` + lcg("r5") + `
        and  r6, r5, 255       ; next "byte"
        ; fcode = code<<8 | byte ; probe hash table
        sll  r7, r1, 8
        or   r7, r7, r6
        mul  r8, r7, 61
        and  r8, r8, 1023
        sll  r9, r8, 3
        add  r9, r22, r9
        ldd  r10, r9, 0
        beq  r10, r7, hit
        beq  r10, r0, insert
        ; collision: secondary probe
        add  r8, r8, 97
        and  r8, r8, 1023
        sll  r9, r8, 3
        add  r9, r22, r9
        ldd  r10, r9, 0
        beq  r10, r7, hit
insert: std  r7, r9, 0
        add  r20, r20, 1
        mov  r1, r6
        b    adv
hit:    add  r1, r1, 1
        and  r1, r1, 4095
        add  r20, r20, 2
adv:    sub  r21, r21, 1
        b    loop
` + epilogue + `
        .data
htab:   .space 8192
`)
	return b.String()
}

// 130.li — lisp-interpreter character: a type-tag dispatch loop over cons
// cells in a heap array with linked-list walks. In the paper li
// fast-forwarded 99.997% of instructions.
func genLi(scale int) string {
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 1200*scale)
	b.WriteString(`        la   r22, heap
        ; build a circular list of 128 cells: [tag, next]
        li   r1, 0
build:  sll  r4, r1, 4
        add  r4, r22, r4
` + lcg("r5") + `
        and  r5, r5, 3
        std  r5, r4, 0         ; tag
        add  r6, r1, 1
        and  r6, r6, 127
        sll  r6, r6, 4
        add  r6, r22, r6
        std  r6, r4, 8         ; next pointer
        add  r1, r1, 1
        li   r7, 128
        blt  r1, r7, build
        mov  r8, r22           ; cursor

loop:   beq  r21, r0, finish
        ldd  r9, r8, 0         ; tag
        beq  r9, r0, t_nil
        li   r10, 1
        beq  r9, r10, t_num
        li   r10, 2
        beq  r9, r10, t_cons
        ; t_sym: intern-ish hash
        mul  r11, r8, 31
        and  r11, r11, 255
        add  r20, r20, r11
        b    step
t_nil:  add  r20, r20, 1
        b    step
t_num:  add  r20, r20, 42
        b    step
t_cons: ldd  r12, r8, 8       ; walk two cells
        ldd  r12, r12, 8
        add  r20, r20, 2
        mov  r8, r12
        sub  r21, r21, 1
        b    loop
step:   ldd  r8, r8, 8
        sub  r21, r21, 1
        b    loop
` + epilogue + `
        .data
heap:   .space 2048
`)
	return b.String()
}

// 132.ijpeg — image-compression character: an 8x8 integer DCT-like
// transform in nested loops plus quantization with clamping branches.
// Regular loops with short data-dependent diversions.
func genIjpeg(scale int) string {
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 40*scale) // blocks
	b.WriteString(`        la   r22, blk
blocks: beq  r21, r0, finish
        ; fill the 8x8 block
        li   r1, 0
fill:
` + lcg("r5") + `
        and  r5, r5, 255
        sll  r6, r1, 3
        add  r6, r22, r6
        std  r5, r6, 0
        add  r1, r1, 1
        li   r7, 64
        blt  r1, r7, fill
        ; row transform: butterfly-ish passes
        li   r1, 0
rows:   sll  r8, r1, 6        ; row base (8 entries * 8 bytes)
        add  r8, r22, r8
        li   r2, 0
cols:   sll  r9, r2, 3
        add  r10, r8, r9
        ldd  r11, r10, 0
        li   r12, 56
        sub  r13, r12, r9
        add  r13, r8, r13
        ldd  r14, r13, 0
        add  r15, r11, r14
        sub  r16, r11, r14
        std  r15, r10, 0
        std  r16, r13, 0
        add  r2, r2, 1
        li   r7, 4
        blt  r2, r7, cols
        add  r1, r1, 1
        li   r7, 8
        blt  r1, r7, rows
        ; quantize with clamping
        li   r1, 0
quant:  sll  r6, r1, 3
        add  r6, r22, r6
        ldd  r11, r6, 0
        sra  r11, r11, 3
        li   r7, 255
        ble_skip:
        bge  r11, r0, qpos
        li   r11, 0
qpos:   blt  r11, r7, qok
        mov  r11, r7
qok:    add  r20, r20, r11
        add  r1, r1, 1
        li   r7, 64
        blt  r1, r7, quant
        sub  r21, r21, 1
        b    blocks
` + epilogue + `
        .data
blk:    .space 512
`)
	return b.String()
}

// 134.perl — scripting character: byte-string scanning with class
// branches (identifier/digit/space) and a rolling hash, plus a hash-table
// update. Branch-heavy but with strong locality.
func genPerl(scale int) string {
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 1600*scale)
	b.WriteString(`        la   r22, str
        la   r23, hash
        ; synthesize the "string"
        li   r1, 0
mk:
` + lcg("r5") + `
        and  r5, r5, 127
        add  r6, r22, r1
        stb  r5, r6, 0
        add  r1, r1, 1
        li   r7, 512
        blt  r1, r7, mk
        li   r1, 0             ; cursor
        li   r8, 0             ; rolling hash

loop:   beq  r21, r0, finish
        and  r9, r1, 511
        add  r10, r22, r9
        ldb  r11, r10, 0
        li   r12, '0'
        blt  r11, r12, other
        li   r12, '9'
        ble2:
        bge  r12, r11, digit
        li   r12, 'a'
        blt  r11, r12, other
        li   r12, 'z'
        bge  r12, r11, alpha
other:  ; separator: flush hash into table
        and  r13, r8, 255
        sll  r13, r13, 3
        add  r13, r23, r13
        ldd  r14, r13, 0
        add  r14, r14, 1
        std  r14, r13, 0
        add  r20, r20, r14
        li   r8, 0
        b    adv
digit:  mul  r8, r8, 10
        add  r8, r8, r11
        and  r8, r8, 16383
        b    adv
alpha:  mul  r8, r8, 31
        add  r8, r8, r11
        and  r8, r8, 16383
        add  r20, r20, 1
adv:    add  r1, r1, 1
        sub  r21, r21, 1
        b    loop
` + epilogue + `
        .data
str:    .space 512
hash:   .space 2048
`)
	return b.String()
}

// 147.vortex — object-database character: records linked through index
// fields, with lookups, field updates, and occasional insertions. Pointer
// chasing with moderate branch diversity.
func genVortex(scale int) string {
	var b strings.Builder
	b.WriteString(prologue)
	fmt.Fprintf(&b, "        li   r21, %d\n", 1200*scale)
	b.WriteString(`        la   r22, db
        ; records of 4 dwords: [key, val, left, right]
        li   r1, 0
mkdb:
` + lcg("r5") + `
        sll  r4, r1, 5
        add  r4, r22, r4
        and  r6, r5, 1023
        std  r6, r4, 0         ; key
        std  r5, r4, 8         ; val
        srl  r7, r5, 3
        and  r7, r7, 63
        sll  r7, r7, 5
        add  r7, r22, r7
        std  r7, r4, 16        ; left link
        srl  r8, r5, 9
        and  r8, r8, 63
        sll  r8, r8, 5
        add  r8, r22, r8
        std  r8, r4, 24        ; right link
        add  r1, r1, 1
        li   r9, 64
        blt  r1, r9, mkdb
        mov  r10, r22          ; cursor

loop:   beq  r21, r0, finish
` + lcg("r5") + `
        and  r11, r5, 1023     ; probe key
        ; three-hop search
        li   r12, 3
walk:   beq  r12, r0, miss
        ldd  r13, r10, 0
        beq  r13, r11, found
        blt  r13, r11, right
        ldd  r10, r10, 16
        sub  r12, r12, 1
        b    walk
right:  ldd  r10, r10, 24
        sub  r12, r12, 1
        b    walk
found:  ldd  r14, r10, 8
        add  r20, r20, r14
        ; update the record
        add  r14, r14, 1
        std  r14, r10, 8
        b    adv
miss:   ; insert: overwrite the cursor's key
        std  r11, r10, 0
        add  r20, r20, 1
adv:    sub  r21, r21, 1
        b    loop
` + epilogue + `
        .data
db:     .space 2048
`)
	return b.String()
}
