package faults

import (
	"errors"
	"testing"
)

func TestFaultError(t *testing.T) {
	err := New(BrokenChain, "fastsim", "nil link")
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatal("New must return a *Fault")
	}
	if f.Kind != BrokenChain || f.Engine != "fastsim" {
		t.Fatalf("fields: %+v", f)
	}
	if f.Error() == "" || f.Kind.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestKindStringsDistinct(t *testing.T) {
	kinds := []Kind{
		BrokenChain, CorruptKey, TruncatedData, BadAction,
		RecoveryOverrun, RecoveryIncomplete,
		WatchdogReplay, WatchdogStep, SelfCheckDivergence,
	}
	seen := map[string]Kind{}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Fatalf("kind %d renders empty", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share the string %q", prev, k, s)
		}
		seen[s] = k
	}
}

func TestInjectorDeterministicAndNilSafe(t *testing.T) {
	var nilIJ *Injector
	if nilIJ.Arm() != InjNone || nilIJ.Fired() != 0 {
		t.Fatal("nil injector must be inert")
	}

	mk := func() *Injector { return NewInjector(42, 3, InjBreakChain, InjFlipFork) }
	a, b := mk(), mk()
	var seqA, seqB []Injection
	for i := 0; i < 30; i++ {
		seqA = append(seqA, a.Arm())
		seqB = append(seqB, b.Arm())
	}
	fired := 0
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, seqA[i], seqB[i])
		}
		if seqA[i] != InjNone {
			fired++
		}
	}
	if fired != 10 {
		t.Fatalf("every=3 over 30 calls fired %d times, want 10", fired)
	}
	if a.Fired() != 10 {
		t.Fatalf("Fired() = %d, want 10", a.Fired())
	}
	for _, inj := range seqA {
		if inj != InjNone && inj != InjBreakChain && inj != InjFlipFork {
			t.Fatalf("injected kind %v outside the configured set", inj)
		}
	}
}
