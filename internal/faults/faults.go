// Package faults defines the fault taxonomy and the deterministic fault
// injector shared by the two memoization engines (internal/arch/fastsim and
// internal/rt).
//
// The paper's coupling between the slow/complete simulator and the
// fast/residual simulator makes the specialized action cache a disposable
// acceleration structure: the slow simulator is always correct, and every
// cache miss already recovers through it (§2.1, §6.1). This package extends
// that discipline from *value* misses to *structural* faults: any internal
// inconsistency detected in a cache entry — a severed action chain, a
// corrupted fork, truncated placeholder data, an unparseable successor key,
// a runaway replay — is classified here, and the engines respond by
// invalidating the offending entry, discarding the partial replay, and
// degrading the step to the slow simulator instead of crashing.
package faults

import "fmt"

// Kind classifies an invariant violation detected on the memoized fast
// path.
type Kind uint8

// Fault kinds. Each names the invariant that was violated, not the action
// taken; the response (invalidate + degrade) is uniform.
const (
	// BrokenChain: an action chain ended (nil link) before the recorded
	// end-of-step action.
	BrokenChain Kind = iota
	// CorruptKey: a recorded successor key failed to parse back into
	// run-time static state.
	CorruptKey
	// TruncatedData: a recorded action carried fewer placeholder values
	// than its block consumes.
	TruncatedData
	// BadAction: a recorded action references out-of-range structures
	// (block IDs, unregistered externs, unknown operations).
	BadAction
	// RecoveryOverrun: the recovery cursor ran past the replayed path —
	// the recorded entry and the re-run slow step disagree about the
	// step's dynamic operations.
	RecoveryOverrun
	// RecoveryIncomplete: a recovery re-run reached the end of the step
	// without consuming the whole replayed path.
	RecoveryIncomplete
	// WatchdogReplay: a single replayed step exceeded the action/node
	// watchdog bound (a cycle in the recorded graph, or a runaway step).
	WatchdogReplay
	// WatchdogStep: a single slow step exceeded its cycle/instruction
	// watchdog bound.
	WatchdogStep
	// SelfCheckDivergence: a sampled self-check re-execution of a cached
	// step on the slow simulator disagreed with the recorded actions.
	SelfCheckDivergence

	numKinds
)

var kindNames = [numKinds]string{
	"broken-chain",
	"corrupt-key",
	"truncated-data",
	"bad-action",
	"recovery-overrun",
	"recovery-incomplete",
	"watchdog-replay",
	"watchdog-step",
	"self-check-divergence",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("faults.Kind(%d)", uint8(k))
}

// Fault describes one recovered invariant violation.
type Fault struct {
	Kind   Kind
	Engine string // "fastsim" or "rt"
	Detail string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%s: %s fault: %s", f.Engine, f.Kind, f.Detail)
}

// New builds a Fault.
func New(kind Kind, engine, detail string) *Fault {
	return &Fault{Kind: kind, Engine: engine, Detail: detail}
}

// Injection selects a corruption applied to a live action cache entry just
// before it is replayed, so tests can drive every recovery path on demand.
// The engines interpret each kind against their own cache structures.
type Injection uint8

// Injection kinds.
const (
	InjNone Injection = iota
	// InjBreakChain severs a next link a few actions into the entry.
	InjBreakChain
	// InjFlipFork flips a recorded fork value, turning a previously seen
	// dynamic result into an apparent first-time value.
	InjFlipFork
	// InjTruncate truncates recorded data: placeholder values in rt,
	// the recorded successor key in fastsim.
	InjTruncate
	// InjGenBump clears the cache underneath an in-flight replay, as
	// clear-when-full would, forcing the stale-generation handling.
	InjGenBump
)

var injNames = [...]string{"none", "break-chain", "flip-fork", "truncate", "gen-bump"}

func (i Injection) String() string {
	if int(i) < len(injNames) {
		return injNames[i]
	}
	return fmt.Sprintf("faults.Injection(%d)", uint8(i))
}

// Injector deterministically decides when and how to corrupt cache entries.
// It is armed once per replay opportunity; every `every`-th arm fires one of
// the configured injection kinds, chosen by a seeded xorshift PRNG so runs
// are reproducible. A nil Injector never fires.
type Injector struct {
	kinds []Injection
	every uint64
	state uint64
	armed uint64
	fired uint64
}

// NewInjector builds an injector that fires one of kinds on every every-th
// Arm call. A zero `every` disables it.
func NewInjector(seed, every uint64, kinds ...Injection) *Injector {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Injector{kinds: kinds, every: every, state: seed}
}

// Arm records one replay opportunity and returns the injection to apply,
// or InjNone.
func (ij *Injector) Arm() Injection {
	if ij == nil || ij.every == 0 || len(ij.kinds) == 0 {
		return InjNone
	}
	ij.armed++
	if ij.armed%ij.every != 0 {
		return InjNone
	}
	ij.fired++
	return ij.kinds[ij.Rand()%uint64(len(ij.kinds))]
}

// Rand returns the next value of the injector's deterministic PRNG, for
// engines to derive corruption parameters (severing depth, fork index).
func (ij *Injector) Rand() uint64 {
	x := ij.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ij.state = x
	return x
}

// Fired reports how many injections have fired.
func (ij *Injector) Fired() uint64 {
	if ij == nil {
		return 0
	}
	return ij.fired
}
