// Store fault taxonomy: the corruption and crash modes the persistent
// action-cache store (internal/cachestore) must degrade through. The
// discipline mirrors the replay fault taxonomy in this package — every
// failure mode is typed, injectable on demand, and recovered by falling
// back to an always-correct path (here: a cold run), never by guessing.
package faults

import "fmt"

// StoreFault classifies one injectable persistence failure. Write-side
// kinds corrupt or abort a save; they model crashes and media faults that
// the load-side verification must catch.
type StoreFault uint8

// Store fault kinds.
const (
	// StoreNone: no injection.
	StoreNone StoreFault = iota
	// StoreTruncate: the record is cut short after the write — a crash
	// mid-write or a torn page.
	StoreTruncate
	// StoreFlipByte: one payload byte is flipped — bit rot that only the
	// CRC trailer can catch.
	StoreFlipByte
	// StoreBadMagic: the header magic is clobbered — the file is not a
	// store record at all.
	StoreBadMagic
	// StoreVersionSkew: the record claims a future format version — a
	// downgrade after an upgrade wrote the store.
	StoreVersionSkew
	// StoreENOSPC: the write fails mid-stream as a full disk would.
	StoreENOSPC
	// StoreCrashBeforeRename: the process dies after writing the temp
	// file but before the rename — the canonical kill-during-write state.
	StoreCrashBeforeRename

	numStoreFaults
)

var storeFaultNames = [numStoreFaults]string{
	"none",
	"truncate",
	"flip-byte",
	"bad-magic",
	"version-skew",
	"enospc",
	"crash-before-rename",
}

func (f StoreFault) String() string {
	if int(f) < len(storeFaultNames) {
		return storeFaultNames[f]
	}
	return fmt.Sprintf("faults.StoreFault(%d)", uint8(f))
}

// ErrInjectedENOSPC is the error a StoreENOSPC injection surfaces, standing
// in for the kernel's ENOSPC on a full disk.
var ErrInjectedENOSPC = fmt.Errorf("faults: injected ENOSPC (no space left on device)")

// StoreInjector deterministically decides when and how to corrupt store
// writes, mirroring Injector: every `every`-th Arm fires one of the
// configured kinds, chosen by a seeded xorshift PRNG. A nil StoreInjector
// never fires.
type StoreInjector struct {
	kinds []StoreFault
	every uint64
	state uint64
	armed uint64
	fired uint64
}

// NewStoreInjector builds an injector that fires one of kinds on every
// every-th Arm call. A zero `every` disables it.
func NewStoreInjector(seed, every uint64, kinds ...StoreFault) *StoreInjector {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &StoreInjector{kinds: kinds, every: every, state: seed}
}

// Arm records one save opportunity and returns the fault to apply, or
// StoreNone.
func (ij *StoreInjector) Arm() StoreFault {
	if ij == nil || ij.every == 0 || len(ij.kinds) == 0 {
		return StoreNone
	}
	ij.armed++
	if ij.armed%ij.every != 0 {
		return StoreNone
	}
	ij.fired++
	return ij.kinds[ij.Rand()%uint64(len(ij.kinds))]
}

// Rand returns the next value of the injector's deterministic PRNG, for
// the store to derive corruption parameters (flip offset, cut length).
func (ij *StoreInjector) Rand() uint64 {
	x := ij.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ij.state = x
	return x
}

// Fired reports how many injections have fired.
func (ij *StoreInjector) Fired() uint64 {
	if ij == nil {
		return 0
	}
	return ij.fired
}
