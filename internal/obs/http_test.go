package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestDebugEndpoints(t *testing.T) {
	r := NewRecorder(Config{})
	r.Event(EvStepReplayed, 3)
	r.EventDetail(EvFault, 0, "broken-chain")
	r.Sample(Sample{Insts: 10, Cycles: 20})
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return body
	}

	var vars struct {
		EventTotals map[string]uint64 `json:"event_totals"`
		Samples     []Sample          `json:"samples"`
		Events      []struct {
			Kind   string `json:"kind"`
			Detail string `json:"detail"`
		} `json:"events"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.EventTotals["step-replayed"] != 1 || vars.EventTotals["fault"] != 1 {
		t.Fatalf("event_totals = %v", vars.EventTotals)
	}
	if len(vars.Samples) != 1 || vars.Samples[0].Insts != 10 {
		t.Fatalf("samples = %+v", vars.Samples)
	}
	found := false
	for _, ev := range vars.Events {
		if ev.Kind == "fault" && ev.Detail == "broken-chain" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fault event missing from /debug/vars events: %+v", vars.Events)
	}

	var metrics struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(get("/debug/metrics"), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Counters["events.step-replayed"] != 1 {
		t.Fatalf("metrics counters = %v", metrics.Counters)
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof cmdline empty")
	}
}

func TestServeAndShutdown(t *testing.T) {
	r := NewRecorder(Config{})
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
