package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/uarch"
	"facile/internal/facsim"
	"facile/internal/obs"
	"facile/internal/workloads"
)

// TestFastsimTraceMatchesStats is the tentpole's acceptance property: a
// memoizing run's lifecycle-event totals must equal the run's final Stats,
// one event per counter increment, regardless of ring overwrites. The same
// totals must survive into the exported Chrome trace's memo.totals row.
func TestFastsimTraceMatchesStats(t *testing.T) {
	w, err := workloads.Get("126.gcc", 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(obs.Config{RingSize: 256}) // force overwrites
	s := fastsim.New(uarch.Default(), w.Prog, fastsim.Options{
		Memoize:       true,
		CacheCapBytes: 64 << 10, // small cap so clear-when-full fires
		Obs:           rec,
		SampleEvery:   1 << 12,
	})
	res := s.Run(0)
	st := s.Stats()

	checks := []struct {
		kind obs.EventKind
		want uint64
		name string
	}{
		{obs.EvStepReplayed, st.Replays, "Replays"},
		{obs.EvMidStepMiss, st.Misses, "Misses"},
		{obs.EvKeyMiss, st.KeyMisses, "KeyMisses"},
		{obs.EvClearWhenFull, st.CacheClears, "CacheClears"},
		{obs.EvFault, st.Faults, "Faults"},
		{obs.EvInvalidation, st.Invalidations, "Invalidations"},
	}
	for _, c := range checks {
		if got := rec.Count(c.kind); got != c.want {
			t.Errorf("%s events = %d, Stats.%s = %d", c.kind, got, c.name, c.want)
		}
	}
	if st.CacheClears == 0 {
		t.Error("expected at least one clear-when-full under a 64 KiB cap")
	}
	// Registry parity: the per-step replay-length histogram observes exactly
	// one value per replayed step, and the compiled replay substrate (the
	// default dispatch) must actually be exercising fused superinstructions.
	reg := rec.Registry()
	if got := reg.Histogram("fastsim.replay_actions_per_step").Count(); got != st.Replays {
		t.Errorf("replay_actions_per_step count = %d, Stats.Replays = %d", got, st.Replays)
	}
	if reg.Counter("fastsim.fused_runs").Load() == 0 ||
		reg.Counter("fastsim.fused_dispatches").Load() == 0 {
		t.Error("compiled replay dispatched no superinstructions; fusion is vacuous")
	}
	if rec.Dropped() == 0 {
		t.Error("expected ring overwrites with RingSize 256; totals check is vacuous")
	}
	if len(rec.Samples()) == 0 {
		t.Error("no time-series samples recorded")
	}
	last := rec.Samples()[len(rec.Samples())-1]
	if last.Insts != res.Insts || last.Cycles != res.Cycles {
		t.Errorf("final sample (insts %d cycles %d) != result (insts %d cycles %d)",
			last.Insts, last.Cycles, res.Insts, res.Cycles)
	}

	// The exported Chrome trace must carry the exact totals even though the
	// ring only retains the newest 256 events.
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Args json.RawMessage `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var totals map[string]uint64
	for _, ev := range trace.TraceEvents {
		if ev.Name == "memo.totals" {
			if err := json.Unmarshal(ev.Args, &totals); err != nil {
				t.Fatal(err)
			}
		}
	}
	if totals == nil {
		t.Fatal("no memo.totals event in exported trace")
	}
	if totals["step-replayed"] != st.Replays || totals["mid-step-miss"] != st.Misses ||
		totals["clear-when-full"] != st.CacheClears {
		t.Fatalf("trace totals %v != stats (replays %d, misses %d, clears %d)",
			totals, st.Replays, st.Misses, st.CacheClears)
	}
}

// TestFacsimObsWiring checks the Facile rt engine emits the same
// event-per-counter mapping through the facsim Options passthrough.
func TestFacsimObsWiring(t *testing.T) {
	w, err := workloads.Get("129.compress", 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(obs.Config{})
	in, err := facsim.NewFunctional(w.Prog, facsim.Options{Memoize: true, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if got := rec.Count(obs.EvStepReplayed); got != st.Replays {
		t.Errorf("replay events = %d, Stats.Replays = %d", got, st.Replays)
	}
	if got := rec.Count(obs.EvMidStepMiss); got != st.Misses {
		t.Errorf("mid-step-miss events = %d, Stats.Misses = %d", got, st.Misses)
	}
	if got := rec.Count(obs.EvKeyMiss); got != st.KeyMisses {
		t.Errorf("key-miss events = %d, Stats.KeyMisses = %d", got, st.KeyMisses)
	}
	if st.Replays == 0 {
		t.Error("memoizing facsim run replayed nothing; wiring test is vacuous")
	}
	if rec.Count(obs.EvPhaseBegin) == 0 || rec.Count(obs.EvPhaseEnd) == 0 {
		t.Error("rt.run phase events missing")
	}
	// Registry parity with fastsim: rt reports the same per-step
	// replay-length histogram, one observation per replayed step, and the
	// block precompiler must have compiled something.
	reg := rec.Registry()
	if got := reg.Histogram("rt.replay_nodes_per_step").Count(); got != st.Replays {
		t.Errorf("replay_nodes_per_step count = %d, Stats.Replays = %d", got, st.Replays)
	}
	if reg.Counter("rt.compiled_blocks").Load() == 0 {
		t.Error("no dynamic blocks were precompiled")
	}
}
