// Package obs is the observability layer for the memoizing simulators: a
// dependency-free metrics registry (atomic counters, gauges, power-of-two
// bucket histograms), a bounded in-memory trace of the memoization
// lifecycle (step recorded / replayed / key miss / mid-step miss / fault /
// invalidation / clear-when-full), and a sampled time series of cache
// occupancy, slow-vs-fast instruction split, and IPC.
//
// The paper's headline results are statements about exactly this lifecycle
// (Table 2, Figures 6–8: slow/fast split, action-cache occupancy,
// clear-when-full events); obs makes them visible while a run is in flight
// instead of only as end-of-run Stats structs. Two export paths serve the
// data: Chrome trace_event JSON (chrome.go, loadable in Perfetto) and a
// live debug HTTP endpoint (http.go, expvar-style JSON plus pprof).
//
// Everything here is safe for concurrent use; engines hold a *Recorder and
// every Recorder method is a no-op on a nil receiver, so instrumentation
// costs one predictable-branch nil check when observability is off.
package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (occupancy, entry counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per possible bit length of a uint64 (bucket i
// holds values v with bits.Len64(v) == i, i.e. power-of-two ranges), plus
// bucket 0 for zero.
const histBuckets = 65

// Histogram is a power-of-two-bucket histogram: Observe(v) lands v in
// bucket bits.Len64(v), so bucket i covers [2^(i-1), 2^i). Buckets, count,
// and sum are all atomic; a concurrent snapshot is approximate (buckets may
// be mid-update) but never torn per field.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the non-empty buckets as (low-bound, count) pairs in
// ascending order. Bucket with low bound 0 holds observed zeros.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	var out []BucketCount
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = uint64(1) << (i - 1)
		}
		out = append(out, BucketCount{Low: lo, Count: n})
	}
	return out
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	Low   uint64 `json:"low"`
	Count uint64 `json:"count"`
}

// Registry is a named collection of metrics. Lookup creates on first use;
// the returned metric pointers are stable and lock-free to update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// histJSON is the JSON shape of one histogram.
type histJSON struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// WriteJSON dumps every metric as a single JSON object, expvar-style:
// {"counters": {...}, "gauges": {...}, "histograms": {...}}. Keys are
// sorted so the output is diff-friendly.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Load()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Load()
	}
	hists := make(map[string]histJSON, len(r.hists))
	for k, h := range r.hists {
		hists[k] = histJSON{Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters   map[string]uint64   `json:"counters"`
		Gauges     map[string]int64    `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{counters, gauges, hists})
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
