package obs

// Sampler turns a stream of simulated progress into a periodic time
// series: every time progress crosses the next `every` boundary, the
// snapshot callback runs and its Sample is appended to the recorder.
//
// Sampling is driven by simulated progress (committed instructions, steps)
// rather than wall-clock time, so the series is deterministic for a given
// run and costs nothing when observability is off (a nil Sampler ticks for
// free). Engines call Tick once per outer loop iteration and Flush once at
// the end of a run so the final point is always present.
type Sampler struct {
	rec   *Recorder
	every uint64
	next  uint64
	snap  func() Sample
}

// DefaultSampleEvery is the default progress interval between samples.
const DefaultSampleEvery = 1 << 16

// NewSampler builds a sampler appending to rec every `every` units of
// progress (0 = DefaultSampleEvery). Returns nil when rec is nil, so
// callers can Tick unconditionally.
func NewSampler(rec *Recorder, every uint64, snap func() Sample) *Sampler {
	if rec == nil {
		return nil
	}
	if every == 0 {
		every = DefaultSampleEvery
	}
	return &Sampler{rec: rec, every: every, next: every, snap: snap}
}

// Tick records a sample if progress has crossed the next boundary.
func (s *Sampler) Tick(progress uint64) {
	if s == nil || progress < s.next {
		return
	}
	s.next = progress + s.every
	s.rec.Sample(s.snap())
}

// Flush unconditionally records a final sample.
func (s *Sampler) Flush() {
	if s == nil {
		return
	}
	s.rec.Sample(s.snap())
}
