package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Chrome trace_event export: the recorder's retained events, sampled time
// series, and per-kind totals serialized in the Trace Event Format that
// Perfetto and chrome://tracing load. Each track (engine phase, parsim
// interval worker) becomes one named thread; lifecycle events render as
// instants, phases as begin/end spans, and the sampled series as counter
// tracks. A final "memo.totals" counter carries the exact per-kind event
// totals, which equal the run's final Stats even when the bounded ring has
// dropped old events.

// chromeEvent is one trace_event record. Fields follow the format's JSON
// names; unused fields are omitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`    // instant-event scope
	Cat   string         `json:"cat,omitempty"`  // event category
	Args  map[string]any `json:"args,omitempty"` // payload
}

const chromePID = 1

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace serializes the recorder's trace as a JSON object with a
// "traceEvents" array. Events are sorted by timestamp, so timestamps are
// monotonic within every track.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	events := r.Events()
	samples := r.Samples()

	// Assign stable thread IDs per track, in order of first appearance.
	tids := map[string]int{}
	tid := func(track string) int {
		id, ok := tids[track]
		if !ok {
			id = len(tids) + 1
			tids[track] = id
		}
		return id
	}
	var out []chromeEvent
	var last time.Duration
	for _, ev := range events {
		if ev.TS > last {
			last = ev.TS
		}
		ce := chromeEvent{
			TS:   us(ev.TS),
			PID:  chromePID,
			TID:  tid(ev.Track),
			Cat:  "memo",
			Args: map[string]any{"arg": ev.Arg, "seq": ev.Seq},
		}
		if ev.Detail != "" {
			ce.Args["detail"] = ev.Detail
		}
		switch ev.Kind {
		case EvPhaseBegin:
			ce.Name, ce.Phase = ev.Detail, "B"
		case EvPhaseEnd:
			ce.Name, ce.Phase = ev.Detail, "E"
		default:
			ce.Name, ce.Phase, ce.Scope = ev.Kind.String(), "i", "t"
		}
		out = append(out, ce)
	}
	for _, s := range samples {
		if s.TS > last {
			last = s.TS
		}
		id := tid(s.Track)
		out = append(out,
			chromeEvent{
				Name: s.Track + ".cache", Phase: "C", TS: us(s.TS), PID: chromePID, TID: id,
				Args: map[string]any{"bytes": s.CacheBytes, "entries": s.CacheEntries},
			},
			chromeEvent{
				Name: s.Track + ".split", Phase: "C", TS: us(s.TS), PID: chromePID, TID: id,
				Args: map[string]any{"slow": s.SlowInsts, "fast": s.FastInsts},
			},
			chromeEvent{
				Name: s.Track + ".ipc", Phase: "C", TS: us(s.TS), PID: chromePID, TID: id,
				Args: map[string]any{"ipc": s.IPC},
			},
		)
	}
	// Exact lifecycle totals (ring overflow never affects these).
	totals := map[string]any{}
	for k, v := range r.Totals() {
		totals[k] = v
	}
	totals["dropped_events"] = r.Dropped()
	out = append(out, chromeEvent{
		Name: "memo.totals", Phase: "C", TS: us(last), PID: chromePID, TID: 0, Args: totals,
	})

	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	// Thread-name metadata rows label each track in the Perfetto UI.
	meta := make([]chromeEvent, 0, len(tids))
	for track, id := range tids {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Phase: "M", PID: chromePID, TID: id,
			Args: map[string]any{"name": track},
		})
	}
	sort.Slice(meta, func(i, j int) bool { return meta[i].TID < meta[j].TID })

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{append(meta, out...), "ms"})
}
