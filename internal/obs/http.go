package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Live debug endpoint: expvar-style JSON metrics plus net/http/pprof,
// served while a simulation is running. Everything the handler reads is
// behind the recorder's atomics/mutex, so serving concurrently with the
// engines is race-free.
//
//	/debug/vars        full metrics dump (registry, totals, samples, events)
//	/debug/metrics     registry only
//	/debug/pprof/...   the standard Go profiling endpoints

// Handler returns the debug mux for a recorder.
func Handler(r *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeVars(w, r)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Registry().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("facile debug endpoint\n\n/debug/vars\n/debug/metrics\n/debug/pprof/\n"))
	})
	return mux
}

type varsJSON struct {
	Uptime  string            `json:"uptime"`
	Totals  map[string]uint64 `json:"event_totals"`
	Dropped uint64            `json:"dropped_events"`
	Samples []Sample          `json:"samples"`
	Events  []eventJSON       `json:"events"`
	Metrics json.RawMessage   `json:"metrics"`
}

type eventJSON struct {
	Seq    uint64  `json:"seq"`
	TSMs   float64 `json:"ts_ms"`
	Track  string  `json:"track"`
	Kind   string  `json:"kind"`
	Arg    uint64  `json:"arg"`
	Detail string  `json:"detail,omitempty"`
}

func writeVars(w http.ResponseWriter, r *Recorder) {
	var v varsJSON
	if r != nil {
		v.Uptime = time.Since(r.c.start).String()
		v.Totals = r.Totals()
		v.Dropped = r.Dropped()
		v.Samples = r.Samples()
		for _, ev := range r.Events() {
			v.Events = append(v.Events, eventJSON{
				Seq:    ev.Seq,
				TSMs:   float64(ev.TS.Nanoseconds()) / 1e6,
				Track:  ev.Track,
				Kind:   ev.Kind.String(),
				Arg:    ev.Arg,
				Detail: ev.Detail,
			})
		}
		var buf jsonBuffer
		_ = r.Registry().WriteJSON(&buf)
		v.Metrics = json.RawMessage(buf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type jsonBuffer []byte

func (b *jsonBuffer) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// Serve starts the debug endpoint on addr (e.g. "localhost:6060"; an addr
// ending in ":0" picks a free port). It returns the server and the bound
// address; the caller closes the server when the run ends.
func Serve(addr string, r *Recorder) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
