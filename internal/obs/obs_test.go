package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one counter, gauge, and histogram from
// many goroutines (run under -race) and checks the final values are exact.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			ga := reg.Gauge("g")
			h := reg.Histogram("h")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Load(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("g").Load(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	h := reg.Histogram("h")
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var inBuckets uint64
	for _, b := range h.Buckets() {
		inBuckets += b.Count
	}
	if inBuckets != h.Count() {
		t.Errorf("bucket sum %d != count %d", inBuckets, h.Count())
	}
	wantSum := uint64(goroutines) * (perG * (perG - 1) / 2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	// 0 -> bucket low 0; 1 -> low 1; 2,3 -> low 2; 4 -> low 4; 1000 -> low 512.
	want := []BucketCount{{0, 1}, {1, 1}, {2, 2}, {4, 1}, {512, 1}}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestNilSafety exercises every exported method on nil receivers: the
// engines instrument unconditionally and rely on nil being a free no-op.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Event(EvStepReplayed, 1)
	r.EventDetail(EvFault, 0, "x")
	r.Begin("p")
	r.End("p")
	r.Sample(Sample{})
	if r.Count(EvStepReplayed) != 0 || r.Totals() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if r.Events() != nil || r.Samples() != nil || r.Registry() != nil {
		t.Fatal("nil recorder returned data")
	}
	if r.WithTrack("t") != nil {
		t.Fatal("nil WithTrack should stay nil")
	}
	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(1)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := NewSampler(nil, 0, nil)
	if s != nil {
		t.Fatal("NewSampler(nil recorder) should be nil")
	}
	s.Tick(1 << 20)
	s.Flush()
	var w bytes.Buffer
	if err := (*Recorder)(nil).WriteChromeTrace(&w); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(w.Bytes()) {
		t.Fatalf("nil trace is not valid JSON: %s", w.String())
	}
}

// TestRingOverflowKeepsNewest is the bounded-trace contract: when more
// events arrive than the ring holds, the newest survive, Dropped counts the
// overwritten ones, and per-kind totals stay exact.
func TestRingOverflowKeepsNewest(t *testing.T) {
	r := NewRecorder(Config{RingSize: 8})
	const total = 20
	for i := 0; i < total; i++ {
		r.Event(EvStepReplayed, uint64(i))
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(total - 8 + i); ev.Arg != want || ev.Seq != want {
			t.Fatalf("event %d = seq %d arg %d, want %d (oldest-first, newest kept)",
				i, ev.Seq, ev.Arg, want)
		}
	}
	if got := r.Dropped(); got != total-8 {
		t.Fatalf("dropped = %d, want %d", got, total-8)
	}
	if got := r.Count(EvStepReplayed); got != total {
		t.Fatalf("total = %d, want %d (totals must survive overwrite)", got, total)
	}
	if got := r.Registry().Counter("events.step-replayed").Load(); got != total {
		t.Fatalf("registry mirror = %d, want %d", got, total)
	}
}

func TestSampleCapKeepsNewest(t *testing.T) {
	r := NewRecorder(Config{SampleCap: 4})
	for i := 0; i < 10; i++ {
		r.Sample(Sample{Insts: uint64(i)})
	}
	got := r.Samples()
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want 4", len(got))
	}
	for i, s := range got {
		if want := uint64(6 + i); s.Insts != want {
			t.Fatalf("sample %d has Insts %d, want %d", i, s.Insts, want)
		}
	}
}

// TestRecorderConcurrent emits events and samples from many goroutines on
// several tracks while readers snapshot state; meaningful under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(Config{RingSize: 64, SampleCap: 64})
	const writers = 4
	const perW = 5_000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := r.WithTrack(fmt.Sprintf("w%d", w))
			for i := 0; i < perW; i++ {
				tr.Event(EvStepReplayed, uint64(i))
				if i%100 == 0 {
					tr.Sample(Sample{Insts: uint64(i), Cycles: uint64(i + 1)})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Events()
			r.Samples()
			r.Totals()
			var buf bytes.Buffer
			_ = r.Registry().WriteJSON(&buf)
		}
	}()
	wg.Wait()
	<-done
	if got := r.Count(EvStepReplayed); got != writers*perW {
		t.Fatalf("total = %d, want %d", got, writers*perW)
	}
	seen := map[uint64]bool{}
	for _, ev := range r.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate sequence number %d in retained trace", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// chromeFile mirrors the trace_event container for decoding in tests.
type chromeFile struct {
	TraceEvents []struct {
		Name  string          `json:"name"`
		Phase string          `json:"ph"`
		TS    float64         `json:"ts"`
		PID   int             `json:"pid"`
		TID   int             `json:"tid"`
		Cat   string          `json:"cat,omitempty"`
		Args  json.RawMessage `json:"args,omitempty"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeTraceShape checks the exported trace is valid JSON, has one
// thread per track, and timestamps are monotonic within each track.
func TestChromeTraceShape(t *testing.T) {
	r := NewRecorder(Config{})
	r.Begin("run")
	for i := 0; i < 5; i++ {
		r.Event(EvStepReplayed, uint64(i))
		r.Sample(Sample{Insts: uint64(i * 10), Cycles: uint64(i*10 + 5), CacheBytes: 100})
	}
	w := r.WithTrack("interval-1")
	w.Event(EvMidStepMiss, 7)
	w.Event(EvClearWhenFull, 1)
	r.End("run")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace is not valid JSON: %.200s", buf.String())
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	names := map[int]string{}
	lastTS := map[int]float64{}
	sawTotals := false
	for _, ev := range f.TraceEvents {
		switch ev.Phase {
		case "M":
			var meta struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &meta); err != nil {
				t.Fatal(err)
			}
			names[ev.TID] = meta.Name
			continue
		case "i", "B", "E", "C":
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
		if ev.Name == "memo.totals" {
			sawTotals = true
			var totals map[string]uint64
			if err := json.Unmarshal(ev.Args, &totals); err != nil {
				t.Fatal(err)
			}
			if totals["step-replayed"] != 5 || totals["mid-step-miss"] != 1 ||
				totals["clear-when-full"] != 1 {
				t.Fatalf("memo.totals = %v", totals)
			}
		}
		if prev, ok := lastTS[ev.TID]; ok && ev.TS < prev {
			t.Fatalf("timestamps regress on tid %d: %f after %f (%s)",
				ev.TID, ev.TS, prev, ev.Name)
		}
		lastTS[ev.TID] = ev.TS
	}
	if !sawTotals {
		t.Fatal("no memo.totals counter event")
	}
	wantTracks := map[string]bool{"main": false, "interval-1": false}
	for _, n := range names {
		if _, ok := wantTracks[n]; ok {
			wantTracks[n] = true
		}
	}
	for track, seen := range wantTracks {
		if !seen {
			t.Fatalf("no thread_name metadata for track %q (have %v)", track, names)
		}
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
}

func TestSamplerBoundaries(t *testing.T) {
	r := NewRecorder(Config{})
	var insts uint64
	s := NewSampler(r, 100, func() Sample { return Sample{Insts: insts} })
	for insts = 0; insts < 1000; insts += 7 {
		s.Tick(insts)
	}
	n := len(r.Samples())
	// Crossings of 100, 200, ... 900: at most one sample per boundary.
	if n < 5 || n > 10 {
		t.Fatalf("sampled %d points for 9 boundaries", n)
	}
	s.Flush()
	if got := len(r.Samples()); got != n+1 {
		t.Fatalf("flush added %d samples, want 1", got-n)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(3)
	reg.Gauge("b").Set(-2)
	reg.Histogram("h").Observe(9)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters   map[string]uint64   `json:"counters"`
		Gauges     map[string]int64    `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Counters["a"] != 3 || out.Gauges["b"] != -2 || out.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", out)
	}
}

func TestSampleSeqAndSamplesSince(t *testing.T) {
	rec := NewRecorder(Config{SampleCap: 8})
	for i := 0; i < 12; i++ {
		rec.Sample(Sample{Insts: uint64(i)})
	}
	got := rec.Samples()
	if len(got) != 8 {
		t.Fatalf("retained %d samples, want cap 8", len(got))
	}
	for i, s := range got {
		if want := uint64(12 - 8 + i); s.Seq != want || s.Insts != want {
			t.Fatalf("sample %d: seq=%d insts=%d, want both %d", i, s.Seq, s.Insts, want)
		}
	}

	// Incremental polling: from 0 returns the whole retained window (with a
	// gap where eviction discarded seqs 0-3); from lastSeen+1 returns only
	// the tail; past the end returns nil.
	if all := rec.SamplesSince(0); len(all) != 8 || all[0].Seq != 4 {
		t.Fatalf("SamplesSince(0) = %d samples starting at seq %d, want 8 from 4",
			len(all), all[0].Seq)
	}
	tail := rec.SamplesSince(10)
	if len(tail) != 2 || tail[0].Seq != 10 || tail[1].Seq != 11 {
		t.Fatalf("SamplesSince(10) = %+v, want seqs 10,11", tail)
	}
	if rest := rec.SamplesSince(12); rest != nil {
		t.Fatalf("SamplesSince past end = %+v, want nil", rest)
	}

	// New samples show up under the same cursor.
	rec.Sample(Sample{Insts: 12})
	if next := rec.SamplesSince(12); len(next) != 1 || next[0].Seq != 12 {
		t.Fatalf("SamplesSince(12) after new sample = %+v, want one sample seq 12", next)
	}

	var nilRec *Recorder
	if nilRec.SamplesSince(0) != nil {
		t.Fatal("nil recorder SamplesSince should return nil")
	}
}
