package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSnapshotRoundTrip: Registry → WriteJSON → ParseSnapshot must equal
// Registry.Snapshot(), so a router parsing a worker's /v1/metrics body
// sees exactly what the worker's registry held.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs_completed").Add(7)
	r.Counter("serve.warm_hits").Add(3)
	r.Gauge("serve.warm_bytes").Set(4096)
	r.Histogram("cachestore.load_ns").Observe(100)
	r.Histogram("cachestore.load_ns").Observe(3000)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	direct := r.Snapshot()
	if !reflect.DeepEqual(parsed, direct) {
		t.Fatalf("parsed snapshot diverges from direct snapshot:\n%+v\nvs\n%+v", parsed, direct)
	}
	if parsed.Counters["serve.jobs_completed"] != 7 {
		t.Fatalf("counter lost: %+v", parsed.Counters)
	}
}

// TestMergeSemantics: counters and gauges sum, histogram buckets merge
// by low bound.
func TestMergeSemantics(t *testing.T) {
	a := Snapshot{
		Counters: map[string]uint64{"jobs": 2, "only_a": 1},
		Gauges:   map[string]int64{"bytes": 10},
		Histograms: map[string]HistogramSnapshot{
			"lat": {Count: 2, Sum: 6, Buckets: []BucketCount{{Low: 2, Count: 2}}},
		},
	}
	b := Snapshot{
		Counters: map[string]uint64{"jobs": 3},
		Gauges:   map[string]int64{"bytes": 5, "only_b": -2},
		Histograms: map[string]HistogramSnapshot{
			"lat": {Count: 1, Sum: 8, Buckets: []BucketCount{{Low: 8, Count: 1}}},
		},
	}
	m := Merge(a, b)
	if m.Counters["jobs"] != 5 || m.Counters["only_a"] != 1 {
		t.Fatalf("counter merge wrong: %+v", m.Counters)
	}
	if m.Gauges["bytes"] != 15 || m.Gauges["only_b"] != -2 {
		t.Fatalf("gauge merge wrong: %+v", m.Gauges)
	}
	h := m.Histograms["lat"]
	if h.Count != 3 || h.Sum != 14 {
		t.Fatalf("histogram totals wrong: %+v", h)
	}
	want := []BucketCount{{Low: 2, Count: 2}, {Low: 8, Count: 1}}
	if !reflect.DeepEqual(h.Buckets, want) {
		t.Fatalf("histogram buckets wrong: %+v", h.Buckets)
	}
	// Merge of nothing is empty, not nil maps.
	z := Merge()
	if z.Counters == nil || z.Gauges == nil || z.Histograms == nil {
		t.Fatal("Merge() returned nil maps")
	}
}

// TestMergeMatchesRegistrySums: merging per-worker snapshots equals a
// single registry that saw all the traffic — the fleet-smoke invariant.
func TestMergeMatchesRegistrySums(t *testing.T) {
	w1, w2, all := NewRegistry(), NewRegistry(), NewRegistry()
	for i := 0; i < 5; i++ {
		w1.Counter("serve.jobs_completed").Inc()
		all.Counter("serve.jobs_completed").Inc()
		w1.Histogram("h").Observe(uint64(i))
		all.Histogram("h").Observe(uint64(i))
	}
	for i := 0; i < 3; i++ {
		w2.Counter("serve.jobs_completed").Inc()
		all.Counter("serve.jobs_completed").Inc()
		w2.Histogram("h").Observe(uint64(i * 100))
		all.Histogram("h").Observe(uint64(i * 100))
	}
	got := Merge(w1.Snapshot(), w2.Snapshot())
	want := all.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged snapshots diverge from combined registry:\n%+v\nvs\n%+v", got, want)
	}
}
