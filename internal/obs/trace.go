package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies one memoization-lifecycle event.
type EventKind uint8

// Lifecycle event kinds. The first seven mirror the engines' Stats
// counters one-for-one: every increment of the corresponding counter emits
// exactly one event, so a trace's per-kind totals equal the run's final
// Stats.
const (
	// EvStepRecorded: a slow step finished and its action entry was
	// installed in the specialized action cache.
	EvStepRecorded EventKind = iota
	// EvStepReplayed: the fast simulator replayed one step from the cache.
	EvStepReplayed
	// EvKeyMiss: a step-boundary cache lookup missed.
	EvKeyMiss
	// EvMidStepMiss: a dynamic result had no recorded successor mid-step
	// (the paper's recovery-stack protocol fired).
	EvMidStepMiss
	// EvFault: a structural invariant violation was detected and recovered.
	EvFault
	// EvInvalidation: a cache entry was discarded by fault recovery.
	EvInvalidation
	// EvClearWhenFull: the whole action cache was cleared (capacity policy
	// or injected).
	EvClearWhenFull
	// EvPhaseBegin/EvPhaseEnd bracket an engine phase or a parsim interval
	// worker's slice (Detail names the phase).
	EvPhaseBegin
	EvPhaseEnd

	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	"step-recorded",
	"step-replayed",
	"key-miss",
	"mid-step-miss",
	"fault",
	"invalidation",
	"clear-when-full",
	"phase-begin",
	"phase-end",
}

func (k EventKind) String() string {
	if k < NumEventKinds {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one recorded lifecycle event.
type Event struct {
	Seq    uint64        // global sequence number (monotonic across tracks)
	TS     time.Duration // host time since the recorder started
	Track  string        // engine phase / worker the event belongs to
	Kind   EventKind
	Arg    uint64 // kind-specific quantity (bytes, step count, ...)
	Detail string // kind-specific annotation (fault kind, phase name)
}

// Sample is one point of the sampled time series. Field meaning follows
// the emitting engine: for the target-ISA engines Insts/Cycles are
// committed target instructions and simulated cycles (IPC = Insts/Cycles);
// for the rt engine Insts counts executed operations and Cycles is 0.
type Sample struct {
	Seq   uint64        `json:"seq"` // monotonic across all tracks; filled by Recorder.Sample
	TS    time.Duration `json:"ts"`
	Track string        `json:"track"`

	Cycles       uint64  `json:"cycles"`
	Insts        uint64  `json:"insts"`
	SlowInsts    uint64  `json:"slow_insts"`
	FastInsts    uint64  `json:"fast_insts"`
	CacheBytes   uint64  `json:"cache_bytes"`
	CacheEntries uint64  `json:"cache_entries"`
	IPC          float64 `json:"ipc"`
}

// core is the state shared by a recorder and all its track views.
type core struct {
	start time.Time
	reg   *Registry

	totals     [NumEventKinds]atomic.Uint64
	evCounters [NumEventKinds]*Counter // registry mirror of totals
	seq        atomic.Uint64

	mu      sync.Mutex
	ring    []Event // bounded trace; overwrites oldest when full
	head    int     // next write position
	n       int     // events currently stored
	dropped uint64  // events overwritten after the ring filled

	samples   []Sample
	sampleCap int
	sampleSeq uint64 // next Sample.Seq (guarded by mu)
}

// Config sizes a Recorder.
type Config struct {
	// RingSize bounds the in-memory event trace (default 4096). When the
	// ring is full the oldest events are overwritten; per-kind totals keep
	// counting regardless, so trace summaries stay exact.
	RingSize int
	// SampleCap bounds the sampled time series (default 65536); when full,
	// sampling keeps the newest points the same way the event ring does.
	SampleCap int
}

// Recorder is a handle on the observability core for one track (an engine
// phase or a parsim interval worker). All tracks of one recorder share the
// metrics registry, event ring, sample series, and per-kind totals; only
// the track label differs. A nil *Recorder is a valid no-op sink.
type Recorder struct {
	c     *core
	track string
}

// NewRecorder builds a recorder whose events carry the "main" track.
func NewRecorder(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.SampleCap <= 0 {
		cfg.SampleCap = 65536
	}
	c := &core{
		start:     time.Now(),
		reg:       NewRegistry(),
		ring:      make([]Event, cfg.RingSize),
		sampleCap: cfg.SampleCap,
	}
	for k := EventKind(0); k < NumEventKinds; k++ {
		c.evCounters[k] = c.reg.Counter("events." + k.String())
	}
	return &Recorder{c: c, track: "main"}
}

// WithTrack returns a view of the same recorder whose events and samples
// are labeled with the given track.
func (r *Recorder) WithTrack(track string) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{c: r.c, track: track}
}

// Track returns the recorder's track label.
func (r *Recorder) Track() string {
	if r == nil {
		return ""
	}
	return r.track
}

// Registry returns the shared metrics registry (nil on a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.c.reg
}

// Event records one lifecycle event with a kind-specific quantity.
func (r *Recorder) Event(kind EventKind, arg uint64) {
	r.EventDetail(kind, arg, "")
}

// EventDetail records one lifecycle event with an annotation.
func (r *Recorder) EventDetail(kind EventKind, arg uint64, detail string) {
	if r == nil || kind >= NumEventKinds {
		return
	}
	c := r.c
	c.totals[kind].Add(1)
	c.evCounters[kind].Inc()
	ev := Event{
		Seq:    c.seq.Add(1) - 1,
		TS:     time.Since(c.start),
		Track:  r.track,
		Kind:   kind,
		Arg:    arg,
		Detail: detail,
	}
	c.mu.Lock()
	c.ring[c.head] = ev
	c.head = (c.head + 1) % len(c.ring)
	if c.n < len(c.ring) {
		c.n++
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// Begin marks the start of a named phase on this recorder's track.
func (r *Recorder) Begin(phase string) {
	r.EventDetail(EvPhaseBegin, 0, phase)
}

// End marks the end of a named phase on this recorder's track.
func (r *Recorder) End(phase string) {
	r.EventDetail(EvPhaseEnd, 0, phase)
}

// Sample appends one time-series point; TS and Track are filled in.
func (r *Recorder) Sample(s Sample) {
	if r == nil {
		return
	}
	c := r.c
	s.TS = time.Since(c.start)
	s.Track = r.track
	if s.Cycles > 0 {
		s.IPC = float64(s.Insts) / float64(s.Cycles)
	}
	c.mu.Lock()
	s.Seq = c.sampleSeq
	c.sampleSeq++
	if len(c.samples) >= c.sampleCap {
		copy(c.samples, c.samples[1:])
		c.samples = c.samples[:len(c.samples)-1]
	}
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// Count returns the total number of events of the given kind recorded so
// far, including events the bounded ring has already overwritten.
func (r *Recorder) Count(kind EventKind) uint64 {
	if r == nil || kind >= NumEventKinds {
		return 0
	}
	return r.c.totals[kind].Load()
}

// Totals returns the per-kind event totals.
func (r *Recorder) Totals() map[string]uint64 {
	if r == nil {
		return nil
	}
	out := make(map[string]uint64, NumEventKinds)
	for k := EventKind(0); k < NumEventKinds; k++ {
		out[k.String()] = r.c.totals[k].Load()
	}
	return out
}

// Dropped reports how many events the bounded ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return r.c.dropped
}

// Events returns the retained trace, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, 0, c.n)
	start := c.head - c.n
	if start < 0 {
		start += len(c.ring)
	}
	for i := 0; i < c.n; i++ {
		out = append(out, c.ring[(start+i)%len(c.ring)])
	}
	return out
}

// Samples returns a copy of the sampled time series, oldest first.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	return append([]Sample(nil), r.c.samples...)
}

// SamplesSince returns the retained samples with Seq >= fromSeq, oldest
// first. Start polling with fromSeq 0, then pass lastSeen+1 to consume the
// series incrementally (the streaming endpoints do); samples evicted by
// the bounded series are gone, so a slow consumer may observe a Seq gap
// but never a duplicate.
func (r *Recorder) SamplesSince(fromSeq uint64) []Sample {
	if r == nil {
		return nil
	}
	c := r.c
	c.mu.Lock()
	defer c.mu.Unlock()
	// Seqs are assigned in append order, so samples is sorted by Seq:
	// binary-search the first entry at or past fromSeq.
	lo, hi := 0, len(c.samples)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.samples[mid].Seq < fromSeq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(c.samples) {
		return nil
	}
	return append([]Sample(nil), c.samples[lo:]...)
}
