package obs

// Mergeable metric snapshots: a Snapshot is the value-typed image of a
// Registry at one instant, in exactly the shape WriteJSON emits, so a
// fleet front-end can pull /v1/metrics from every worker, parse each
// body, and merge them into one fleet-wide view. Merge semantics follow
// the metric kinds: counters are monotonic totals and sum; histograms
// sum counts, sums, and per-bucket occupancy; gauges are instantaneous
// occupancy and sum too (the fleet's parked warm bytes are the sum of
// every worker's parked warm bytes) — callers that want per-worker
// gauges keep the unmerged snapshots, which is what the router's
// /v1/metrics does.

import (
	"encoding/json"
	"sort"
)

// HistogramSnapshot is the value image of one Histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is the value image of a whole Registry. The JSON shape is
// identical to WriteJSON's output, so ParseSnapshot(WriteJSON(...))
// round-trips.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Load()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Load()
	}
	for k, h := range r.hists {
		s.Histograms[k] = HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()}
	}
	return s
}

// ParseSnapshot decodes a WriteJSON body (a worker's /v1/metrics
// response) into a Snapshot. Nil maps are normalized to empty so the
// result is always mergeable.
func ParseSnapshot(body []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return Snapshot{}, err
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	return s, nil
}

// Merge folds snapshots into one fleet-wide view: counters and gauges
// sum per name, histograms sum counts and sums and merge buckets by low
// bound (kept sorted ascending).
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] += v
		}
		for k, h := range s.Histograms {
			out.Histograms[k] = mergeHist(out.Histograms[k], h)
		}
	}
	return out
}

// mergeHist adds b into a, merging buckets by low bound.
func mergeHist(a, b HistogramSnapshot) HistogramSnapshot {
	m := map[uint64]uint64{}
	for _, bc := range a.Buckets {
		m[bc.Low] += bc.Count
	}
	for _, bc := range b.Buckets {
		m[bc.Low] += bc.Count
	}
	out := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	for low, n := range m {
		out.Buckets = append(out.Buckets, BucketCount{Low: low, Count: n})
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Low < out.Buckets[j].Low })
	return out
}
