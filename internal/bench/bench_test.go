package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestSuiteCrossValidation is the repository's capstone test: every
// simulator agrees with the golden model on every benchmark, and every
// memoizing simulator produces cycle counts identical to its
// non-memoizing twin.
func TestSuiteCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep is not short")
	}
	for _, name := range names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := ValidateBenchmark(name, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func names() []string {
	cfg := DefaultConfig()
	return cfg.names()
}

func TestFigure11SmallRun(t *testing.T) {
	cfg := Config{Scale: 1, Names: []string{"129.compress", "101.tomcatv"}, PaperCapM: 256}
	rows, err := Figure11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MemoMIPS <= 0 || r.NoMemoMIPS <= 0 || r.BaseMIPS <= 0 {
			t.Fatalf("%s: nonpositive rates %+v", r.Name, r)
		}
		if r.MemoMIPS < r.NoMemoMIPS {
			t.Errorf("%s: memoization slower than not (%.2f < %.2f)", r.Name, r.MemoMIPS, r.NoMemoMIPS)
		}
		if r.FastFwdPct < 90 {
			t.Errorf("%s: only %.2f%% fast-forwarded", r.Name, r.FastFwdPct)
		}
	}
	var buf bytes.Buffer
	WriteFigure(&buf, "test", rows)
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "129.compress") {
		t.Fatal("formatting lost rows")
	}
}

func TestTable2SmallRun(t *testing.T) {
	cfg := Config{Scale: 1, Names: []string{"129.compress"}}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MemoBytes == 0 {
		t.Fatal("no memoized bytes recorded")
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows)
	if !strings.Contains(buf.String(), "MB cached") {
		t.Fatal("bad table format")
	}
}

func TestFigure12SmallRun(t *testing.T) {
	cfg := Config{Scale: 1, Names: []string{"129.compress"}, PaperCapM: 256}
	rows, err := Figure12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MemoMIPS <= rows[0].NoMemoMIPS {
		t.Fatalf("Facile memoization must win: %+v", rows[0])
	}
}

func TestCacheCapSweepRuns(t *testing.T) {
	pts, err := CacheCapSweep("129.compress", 1, []uint64{0, 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Cycles != pts[1].Cycles {
		t.Fatalf("capping changed simulated cycles: %+v", pts)
	}
	if pts[1].Clears == 0 {
		t.Fatal("tiny cap should clear at least once")
	}
}

func TestLoCReport(t *testing.T) {
	loc := LoCReport()
	for _, f := range []string{"svr32.fac", "func.fac", "inorder.fac", "ooo.fac"} {
		if loc[f] == 0 {
			t.Fatalf("no line count for %s", f)
		}
	}
	var buf bytes.Buffer
	WriteLoC(&buf)
	if !strings.Contains(buf.String(), "ooo.fac") {
		t.Fatal("bad LoC format")
	}
}

func TestHMean(t *testing.T) {
	if h := hmean([]float64{2, 2, 2}); h != 2 {
		t.Fatalf("hmean = %f", h)
	}
	if h := hmean(nil); h != 0 {
		t.Fatalf("hmean(nil) = %f", h)
	}
	if h := hmean([]float64{1, 0}); h != 0 {
		t.Fatalf("hmean with zero = %f", h)
	}
}
