package bench

// Warm-restart benchmark: the canonical measurement of what the
// persistent action-cache store buys. One workload is run cold, its cache
// is saved through a real cachestore (CRC framing, fsync+rename), a fresh
// engine adopts the reloaded copy — the situation after an fsimd restart —
// and the warm run is timed against the cold one. The store's win is the
// specialization cost the warm run never pays.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"facile/internal/cachestore"
	"facile/internal/runcfg"
	"facile/internal/workloads"
)

// WarmRestartRecord is one workload's cold-vs-warm-restart comparison.
// Cold and warm runs are validated to produce identical cycle counts; the
// MIPS/latency fields carry the performance story.
type WarmRestartRecord struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
	Insts  uint64 `json:"insts"`
	Cycles uint64 `json:"cycles"`

	ColdMIPS float64 `json:"cold_mips"` // first-ever run: records everything
	WarmMIPS float64 `json:"warm_mips"` // restart run: adopts the stored cache
	Speedup  float64 `json:"speedup"`   // WarmMIPS / ColdMIPS

	ColdFastFwdPct float64 `json:"cold_fastfwd_pct"`
	WarmFastFwdPct float64 `json:"warm_fastfwd_pct"`

	CacheEntries uint64  `json:"cache_entries"` // adopted cache size
	CacheBytes   uint64  `json:"cache_bytes"`
	RecordBytes  int64   `json:"record_bytes"` // on-disk store record size
	SaveMs       float64 `json:"save_ms"`      // store round-trip latencies
	LoadMs       float64 `json:"load_ms"`
}

// warmRestartReps is how many times each timed configuration runs; the
// minimum wall time is reported.
const warmRestartReps = 3

// WarmRestart measures one workload's warm-vs-cold-restart comparison
// through a throwaway on-disk store. replay selects the fast-path
// dispatch ("" = compiled); the warm run exercises the lazy
// rebuild-after-adoption path of the compiled substrate.
func WarmRestart(name string, scale int, engine, replay string) (WarmRestartRecord, error) {
	w, err := workloads.Get(name, scale)
	if err != nil {
		return WarmRestartRecord{}, err
	}
	cfg := runcfg.Config{Engine: engine, Memoize: true, Replay: replay}

	// Each configuration is timed warmRestartReps times and the minimum is
	// reported: the runs are deterministic, so the best observation is the
	// one least polluted by scheduler and GC noise.
	var cold runcfg.Runner
	var dCold time.Duration
	for rep := 0; rep < warmRestartReps; rep++ {
		r, err := runcfg.New(w.Prog, cfg)
		if err != nil {
			return WarmRestartRecord{}, err
		}
		t0 := time.Now()
		if err := r.Run(0); err != nil {
			return WarmRestartRecord{}, err
		}
		if d := time.Since(t0); rep == 0 || d < dCold {
			dCold = d
		}
		cold = r
	}
	coldRes, coldStats := cold.Result(), cold.Stats()

	wc := cold.DetachCache()
	if wc == nil || wc.Entries() == 0 {
		return WarmRestartRecord{}, fmt.Errorf("bench: %s/%s built no detachable cache", name, engine)
	}
	entries, cacheBytes := wc.Entries(), wc.Bytes()
	payload, err := runcfg.EncodeWarmCache(wc)
	if err != nil {
		return WarmRestartRecord{}, err
	}

	// Round-trip through a real store: same framing, fsync, and verification
	// a restarted fsimd would go through.
	dir, err := os.MkdirTemp("", "facile-warmbench-*")
	if err != nil {
		return WarmRestartRecord{}, err
	}
	defer os.RemoveAll(dir)
	st, err := cachestore.Open(dir, cachestore.Options{})
	if err != nil {
		return WarmRestartRecord{}, err
	}
	key := fmt.Sprintf("bench-%s-s%d", name, scale)
	fp := runcfg.CacheFingerprint(engine)
	tSave := time.Now()
	if err := st.Save(key, engine, fp, entries, cacheBytes, payload); err != nil {
		return WarmRestartRecord{}, err
	}
	dSave := time.Since(tSave)
	tLoad := time.Now()
	meta, stored, err := st.Load(key)
	if err != nil {
		return WarmRestartRecord{}, err
	}
	dLoad := time.Since(tLoad)

	// Warm: the run a restarted process pays with the store in place. Each
	// repetition decodes a fresh copy — adoption consumes the cache.
	var warm runcfg.Runner
	var dWarm time.Duration
	for rep := 0; rep < warmRestartReps; rep++ {
		loaded, err := runcfg.DecodeWarmCache(stored)
		if err != nil {
			return WarmRestartRecord{}, err
		}
		r, err := runcfg.New(w.Prog, cfg)
		if err != nil {
			return WarmRestartRecord{}, err
		}
		if !r.AdoptCache(loaded) {
			return WarmRestartRecord{}, fmt.Errorf("bench: %s/%s refused its own stored cache", name, engine)
		}
		t1 := time.Now()
		if err := r.Run(0); err != nil {
			return WarmRestartRecord{}, err
		}
		if d := time.Since(t1); rep == 0 || d < dWarm {
			dWarm = d
		}
		warm = r
	}
	warmRes, warmStats := warm.Result(), warm.Stats()

	if warmRes.Cycles != coldRes.Cycles || warmRes.Insts != coldRes.Insts {
		return WarmRestartRecord{}, fmt.Errorf(
			"bench: %s/%s warm run diverged: %d insts/%d cycles vs cold %d/%d",
			name, engine, warmRes.Insts, warmRes.Cycles, coldRes.Insts, coldRes.Cycles)
	}

	coldMIPS, warmMIPS := mips(coldRes.Insts, dCold), mips(warmRes.Insts, dWarm)
	rec := WarmRestartRecord{
		Name:           name,
		Engine:         engine,
		Insts:          coldRes.Insts,
		Cycles:         coldRes.Cycles,
		ColdMIPS:       coldMIPS,
		WarmMIPS:       warmMIPS,
		ColdFastFwdPct: coldStats.FastForwardedPc,
		WarmFastFwdPct: warmStats.FastForwardedPc,
		CacheEntries:   entries,
		CacheBytes:     cacheBytes,
		RecordBytes:    meta.FileBytes,
		SaveMs:         float64(dSave.Nanoseconds()) / 1e6,
		LoadMs:         float64(dLoad.Nanoseconds()) / 1e6,
	}
	if coldMIPS > 0 {
		rec.Speedup = warmMIPS / coldMIPS
	}
	return rec, nil
}

// BenchOut is the canonical machine-readable benchmark artifact
// (BENCH_<n>.json): per-workload simulated-instruction rates plus the
// warm-vs-cold-restart records proving the persistent store's win.
type BenchOut struct {
	Schema      string    `json:"schema"` // "facile-bench/1"
	GeneratedAt time.Time `json:"generated_at"`
	GoOS        string    `json:"goos"`
	GoArch      string    `json:"goarch"`
	NumCPU      int       `json:"num_cpu"`
	Scale       int       `json:"scale"`

	// Rows is the canonical per-workload rate table (Figure 11 layout:
	// memoizing, non-memoizing, and conventional-baseline Msim-inst/s).
	Rows []Row `json:"rows"`
	// WarmRestart holds the store's headline numbers.
	WarmRestart []WarmRestartRecord `json:"warm_restart"`
}

// RunBenchOut produces the canonical benchmark artifact for cfg.
func RunBenchOut(cfg Config) (*BenchOut, error) {
	rows, err := Figure11(cfg)
	if err != nil {
		return nil, err
	}
	out := &BenchOut{
		Schema:      "facile-bench/1",
		GeneratedAt: time.Now().UTC(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Scale:       cfg.Scale,
		Rows:        rows,
	}
	for _, name := range cfg.names() {
		rec, err := WarmRestart(name, cfg.Scale, runcfg.EngineFastsim, cfg.Replay)
		if err != nil {
			return nil, err
		}
		out.WarmRestart = append(out.WarmRestart, rec)
	}
	return out, nil
}

// WriteFile writes the artifact as indented JSON.
func (b *BenchOut) WriteFile(path string) error {
	blob, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// WriteWarmRestart writes the warm-restart table for the text report.
func WriteWarmRestart(w interface{ Write([]byte) (int, error) }, recs []WarmRestartRecord) {
	fmt.Fprintf(w, "Warm-vs-cold restart (cache reloaded from the on-disk store)\n")
	fmt.Fprintf(w, "%-14s %12s | %10s %10s %8s | %10s %8s %8s\n",
		"benchmark", "sim insts", "cold", "warm", "speedup", "record", "save", "load")
	fmt.Fprintf(w, "%-14s %12s | %10s %10s %8s | %10s %8s %8s\n",
		"", "", "Msim-i/s", "Msim-i/s", "", "bytes", "ms", "ms")
	for _, r := range recs {
		fmt.Fprintf(w, "%-14s %12d | %10.2f %10.2f %7.1fx | %10d %8.2f %8.2f\n",
			r.Name, r.Insts, r.ColdMIPS, r.WarmMIPS, r.Speedup, r.RecordBytes, r.SaveMs, r.LoadMs)
	}
}
