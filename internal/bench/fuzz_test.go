package bench

import (
	"bytes"
	"testing"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/funcsim"
	"facile/internal/arch/ooo"
	"facile/internal/arch/uarch"
	"facile/internal/facsim"
	"facile/internal/workloads"
)

// TestRandomProgramEquivalence is the differential fuzzer: random
// terminating SVR32 programs must produce identical architectural results
// on every simulator, and the memoizing simulators must match their
// non-memoizing twins cycle for cycle.
func TestRandomProgramEquivalence(t *testing.T) {
	seeds := []int64{1, 7, 42, 1234, 99991, 31337, 271828, 3141592}
	if testing.Short() {
		seeds = seeds[:3]
	}
	cfg := uarch.Default()
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			prog, err := workloads.Random(seed, 40, 400)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			gst, golden, err := funcsim.Run(prog, 10_000_000)
			if err != nil {
				t.Fatalf("seed %d: golden: %v", seed, err)
			}
			if !gst.Halted {
				t.Fatalf("seed %d: random program did not terminate", seed)
			}

			// conventional OOO
			base := ooo.Run(cfg, prog, 0)
			if !bytes.Equal(base.Output, golden.Output) {
				t.Fatalf("seed %d: ooo output %q != %q", seed, base.Output, golden.Output)
			}

			// hand-coded memoizer, both modes
			plain := fastsim.New(cfg, prog, fastsim.Options{Memoize: false}).Run(0)
			memo := fastsim.New(cfg, prog, fastsim.Options{Memoize: true}).Run(0)
			if plain.Cycles != memo.Cycles {
				t.Fatalf("seed %d: fastsim cycles %d != %d", seed, memo.Cycles, plain.Cycles)
			}
			if !bytes.Equal(memo.Output, golden.Output) {
				t.Fatalf("seed %d: fastsim output %q != %q", seed, memo.Output, golden.Output)
			}

			// Facile functional (memoized)
			in, err := facsim.NewFunctional(prog, facsim.Options{Memoize: true})
			if err != nil {
				t.Fatal(err)
			}
			fres, err := in.Run(0)
			if err != nil {
				t.Fatalf("seed %d: facile func: %v", seed, err)
			}
			if !bytes.Equal(fres.Output, golden.Output) {
				t.Fatalf("seed %d: facile output %q != %q", seed, fres.Output, golden.Output)
			}
			R, _ := in.M.Array("R")
			for r := 1; r < 32; r++ {
				if R[r] != gst.R[r] {
					t.Fatalf("seed %d: facile R[%d]=%d, golden %d", seed, r, R[r], gst.R[r])
				}
			}

			// Facile OOO, both modes
			var cyc [2]uint64
			for i, m := range []bool{false, true} {
				oi, err := facsim.NewOOO(prog, facsim.Options{Memoize: m})
				if err != nil {
					t.Fatal(err)
				}
				ores, err := oi.Run(0)
				if err != nil {
					t.Fatalf("seed %d: facile ooo: %v", seed, err)
				}
				if !bytes.Equal(ores.Output, golden.Output) {
					t.Fatalf("seed %d: facile ooo output %q != %q", seed, ores.Output, golden.Output)
				}
				cyc[i] = ores.Cycles
			}
			if cyc[0] != cyc[1] {
				t.Fatalf("seed %d: facile ooo cycles %d != %d", seed, cyc[1], cyc[0])
			}
		})
	}
}
