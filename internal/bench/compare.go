package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Benchmark regression gate: compare a freshly generated BenchOut
// artifact against a checked-in baseline (BENCH_<n>.json). Deterministic
// fields (instruction and cycle counts) must match exactly — they encode
// simulator behavior, not host speed — while throughput rates are only
// required to stay within a noise band, since CI hosts differ wildly
// from the machine that produced the baseline.

// DefaultNoiseBand is the fraction of baseline throughput a fresh run
// may lose before the gate fails (0.5 = fail below half the baseline
// rate). Generous by design: the gate is for order-of-magnitude
// regressions (a broken memo table, an accidental O(n²)), not for
// hardware jitter.
const DefaultNoiseBand = 0.5

// ReadBenchOut loads a benchmark artifact written by BenchOut.WriteFile.
func ReadBenchOut(path string) (*BenchOut, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out BenchOut
	if err := json.Unmarshal(blob, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if out.Schema != "facile-bench/1" {
		return nil, fmt.Errorf("%s: schema %q, want facile-bench/1", path, out.Schema)
	}
	return &out, nil
}

// Compare checks fresh against baseline and returns one human-readable
// violation per problem (empty slice = gate passes). band is the
// allowed fractional throughput loss; pass 0 for DefaultNoiseBand.
func Compare(baseline, fresh *BenchOut, band float64) []string {
	if band <= 0 {
		band = DefaultNoiseBand
	}
	var v []string
	if baseline.Scale != fresh.Scale {
		return []string{fmt.Sprintf("scale mismatch: baseline %d, fresh %d — runs are not comparable",
			baseline.Scale, fresh.Scale)}
	}

	freshRows := make(map[string]Row, len(fresh.Rows))
	for _, r := range fresh.Rows {
		freshRows[r.Name] = r
	}
	for _, base := range baseline.Rows {
		row, ok := freshRows[base.Name]
		if !ok {
			v = append(v, fmt.Sprintf("%s: missing from fresh run", base.Name))
			continue
		}
		if row.Insts != base.Insts || row.Cycles != base.Cycles {
			v = append(v, fmt.Sprintf("%s: deterministic drift: %d insts/%d cycles, baseline %d/%d",
				base.Name, row.Insts, row.Cycles, base.Insts, base.Cycles))
		}
		floor := base.MemoMIPS * (1 - band)
		if row.MemoMIPS < floor {
			v = append(v, fmt.Sprintf("%s: memoized rate %.2f Msim-i/s below %.2f (baseline %.2f − %d%% band)",
				base.Name, row.MemoMIPS, floor, base.MemoMIPS, int(band*100)))
		}
	}

	freshWarm := make(map[string]WarmRestartRecord, len(fresh.WarmRestart))
	for _, r := range fresh.WarmRestart {
		freshWarm[r.Name] = r
	}
	for _, base := range baseline.WarmRestart {
		rec, ok := freshWarm[base.Name]
		if !ok {
			v = append(v, fmt.Sprintf("%s: missing warm-restart record", base.Name))
			continue
		}
		// A warm restart replays the whole run from cache; it can never
		// fast-forward less than the cold run that populated it.
		if rec.WarmFastFwdPct < rec.ColdFastFwdPct {
			v = append(v, fmt.Sprintf("%s: warm run fast-forwarded %.2f%%, below its own cold run's %.2f%%",
				base.Name, rec.WarmFastFwdPct, rec.ColdFastFwdPct))
		}
	}
	return v
}
