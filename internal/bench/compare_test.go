package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func gateFixture() (*BenchOut, *BenchOut) {
	base := &BenchOut{
		Schema: "facile-bench/1",
		Scale:  1,
		Rows: []Row{
			{Name: "a", Insts: 1000, Cycles: 1200, MemoMIPS: 20},
			{Name: "b", Insts: 2000, Cycles: 2400, MemoMIPS: 30},
		},
		WarmRestart: []WarmRestartRecord{
			{Name: "a", ColdFastFwdPct: 98, WarmFastFwdPct: 100},
		},
	}
	fresh := &BenchOut{
		Schema: "facile-bench/1",
		Scale:  1,
		Rows: []Row{
			{Name: "a", Insts: 1000, Cycles: 1200, MemoMIPS: 18},
			{Name: "b", Insts: 2000, Cycles: 2400, MemoMIPS: 31},
		},
		WarmRestart: []WarmRestartRecord{
			{Name: "a", ColdFastFwdPct: 98, WarmFastFwdPct: 100},
		},
	}
	return base, fresh
}

func TestCompareCleanRunPasses(t *testing.T) {
	base, fresh := gateFixture()
	if v := Compare(base, fresh, 0); len(v) != 0 {
		t.Fatalf("clean run flagged: %v", v)
	}
}

func TestCompareCatchesRegressions(t *testing.T) {
	check := func(mutate func(*BenchOut), want string) {
		t.Helper()
		base, fresh := gateFixture()
		mutate(fresh)
		v := Compare(base, fresh, 0)
		if len(v) == 0 {
			t.Fatalf("mutation %q not flagged", want)
		}
		if !strings.Contains(strings.Join(v, "\n"), want) {
			t.Fatalf("violations %v missing %q", v, want)
		}
	}
	check(func(f *BenchOut) { f.Rows[0].Cycles++ }, "deterministic drift")
	check(func(f *BenchOut) { f.Rows[1].MemoMIPS = 10 }, "below")
	check(func(f *BenchOut) { f.Rows = f.Rows[:1] }, "missing from fresh run")
	check(func(f *BenchOut) { f.Scale = 2 }, "scale mismatch")
	check(func(f *BenchOut) { f.WarmRestart[0].WarmFastFwdPct = 50 }, "below its own cold run")
	check(func(f *BenchOut) { f.WarmRestart = nil }, "missing warm-restart record")
}

func TestCompareNoiseBandIsGenerous(t *testing.T) {
	base, fresh := gateFixture()
	// 45% slower than baseline: inside the default 50% band.
	fresh.Rows[0].MemoMIPS = base.Rows[0].MemoMIPS * 0.55
	if v := Compare(base, fresh, 0); len(v) != 0 {
		t.Fatalf("in-band slowdown flagged: %v", v)
	}
	// A tighter band catches it.
	if v := Compare(base, fresh, 0.25); len(v) == 0 {
		t.Fatal("out-of-band slowdown not flagged")
	}
}

func TestReadBenchOutRoundTrip(t *testing.T) {
	base, _ := gateFixture()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchOut(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := Compare(base, got, 0); len(v) != 0 {
		t.Fatalf("round-trip drifted: %v", v)
	}
	if _, err := ReadBenchOut(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
