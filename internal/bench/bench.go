// Package bench implements the paper's evaluation harness: for every table
// and figure in §6 it runs the corresponding simulators over the
// SPEC95-substitute workload suite and reports the same rows/series the
// paper reports. Absolute numbers depend on the host; the shapes (who
// wins, by what factor, where the crossovers fall) are the reproduction
// target — see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"facile/facile"
	"facile/internal/arch/fastsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa/loader"
	"facile/internal/parsim"
	"facile/internal/runcfg"
	"facile/internal/workloads"
)

// Config controls an experiment run.
type Config struct {
	Scale     int      // workload scale factor
	Names     []string // benchmarks to run; nil = full suite
	CacheCap  uint64   // action cache cap in bytes (0 = unlimited)
	PaperCapM uint64   // cap used for the figure runs, in MB (paper: 256)
	Workers   int      // benchmarks simulated concurrently (<=1 = sequential)
	Replay    string   // replay dispatch for memoizing runs ("" = compiled)
}

// DefaultConfig mirrors the paper's setup at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{Scale: 10, PaperCapM: 256}
}

func (c Config) names() []string {
	if len(c.Names) > 0 {
		return c.Names
	}
	return workloads.Names()
}

// Row is one benchmark's measurements for a figure: simulated instructions
// per second of host time for each simulator.
type Row struct {
	Name   string `json:"name"`
	Insts  uint64 `json:"insts"`
	Cycles uint64 `json:"cycles,omitempty"`

	MemoMIPS   float64 `json:"memo_mips,omitempty"`    // memoizing simulator
	NoMemoMIPS float64 `json:"no_memo_mips,omitempty"` // same simulator without memoization
	BaseMIPS   float64 `json:"base_mips,omitempty"`    // conventional baseline ("SimpleScalar")

	FastFwdPct float64 `json:"fastfwd_pct"` // Table 1
	MemoBytes  uint64  `json:"memo_bytes"`  // Table 2
	Misses     uint64  `json:"misses"`
	Clears     uint64  `json:"clears"`

	WallSec float64 `json:"wall_sec"` // host wall-clock spent on this row (all configs)

	// Metrics is the full memoization-counter snapshot for the memoizing
	// configuration of this row (nil for rows without one). It rides along
	// in the -json report so regressions in cache behaviour are visible
	// without rerunning under -debug-addr.
	Metrics *RowMetrics `json:"metrics,omitempty"`
}

// RowMetrics is the per-row snapshot of the memoizing engine's counters,
// in the same gauge-vs-counter terms the observability layer uses:
// CacheBytes/CacheEntries are point-in-time gauges at end of run,
// everything else is a monotonic counter.
type RowMetrics struct {
	SlowSteps     uint64 `json:"slow_steps"`
	Replays       uint64 `json:"replays"`
	Misses        uint64 `json:"misses"`
	KeyMisses     uint64 `json:"key_misses"`
	CacheBytes    uint64 `json:"cache_bytes"`
	CacheEntries  uint64 `json:"cache_entries"`
	CacheClears   uint64 `json:"cache_clears"`
	Faults        uint64 `json:"faults"`
	Invalidations uint64 `json:"invalidations"`
	DegradedSteps uint64 `json:"degraded_steps"`
}

func metrics(st runcfg.Stats) *RowMetrics {
	return &RowMetrics{
		SlowSteps:     st.SlowSteps,
		Replays:       st.Replays,
		Misses:        st.Misses,
		KeyMisses:     st.KeyMisses,
		CacheBytes:    st.CacheBytes,
		CacheEntries:  st.CacheEntries,
		CacheClears:   st.CacheClears,
		Faults:        st.Faults,
		Invalidations: st.Invalidations,
		DegradedSteps: st.DegradedSteps,
	}
}

// timedRun builds an engine through the shared run-setup layer, drives it
// to completion, and reports the result, unified stats, and wall time.
func timedRun(prog *loader.Program, cfg runcfg.Config) (runcfg.Result, runcfg.Stats, time.Duration, error) {
	r, err := runcfg.New(prog, cfg)
	if err != nil {
		return runcfg.Result{}, runcfg.Stats{}, 0, err
	}
	t0 := time.Now()
	if err := r.Run(0); err != nil {
		return runcfg.Result{}, runcfg.Stats{}, 0, err
	}
	return r.Result(), r.Stats(), time.Since(t0), nil
}

func mips(insts uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(insts) / d.Seconds() / 1e6
}

// hmean computes the harmonic mean of positive values.
func hmean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += 1 / v
	}
	return float64(len(vals)) / s
}

// Figure11 reproduces the paper's Figure 11 and Tables 1–2 inputs: the
// hand-coded memoizing simulator (FastSim's role) with and without
// fast-forwarding versus the conventional out-of-order baseline
// (SimpleScalar's role).
func Figure11(cfg Config) ([]Row, error) {
	return figureRows(cfg, runcfg.EngineFastsim)
}

// Table2 reproduces the quantity-of-memoized-data table with an unlimited
// cache (the paper measured total memoized data, not the capped working
// set).
func Table2(cfg Config) ([]Row, error) {
	names := cfg.names()
	rows := make([]Row, len(names))
	err := parsim.ForEach(len(names), cfg.Workers, func(i int) error {
		w, err := workloads.Get(names[i], cfg.Scale)
		if err != nil {
			return err
		}
		res, st, d, err := timedRun(w.Prog, runcfg.Config{
			Engine: runcfg.EngineFastsim, Memoize: true, Replay: cfg.Replay,
		})
		if err != nil {
			return err
		}
		rows[i] = Row{
			Name:       names[i],
			Insts:      res.Insts,
			FastFwdPct: st.FastForwardedPc,
			MemoBytes:  st.TotalMemoBytes,
			Misses:     st.Misses,
			WallSec:    d.Seconds(),
			Metrics:    metrics(st),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure12 reproduces the paper's Figure 12: the Facile-compiled
// out-of-order simulator with and without fast-forwarding versus the
// conventional baseline.
func Figure12(cfg Config) ([]Row, error) {
	return figureRows(cfg, runcfg.EngineFacOOO)
}

// figureRows runs the three-way comparison behind Figures 11 and 12: the
// chosen memoizing engine with and without fast-forwarding versus the
// conventional out-of-order baseline.
// Benchmarks are sharded across cfg.Workers goroutines (parsim.ForEach);
// every deterministic field of a Row is independent of the worker count,
// only the MIPS/WallSec timing fields vary with host load.
func figureRows(cfg Config, engine string) ([]Row, error) {
	names := cfg.names()
	rows := make([]Row, len(names))
	err := parsim.ForEach(len(names), cfg.Workers, func(i int) error {
		name := names[i]
		w, err := workloads.Get(name, cfg.Scale)
		if err != nil {
			return err
		}
		base, _, dBase, err := timedRun(w.Prog, runcfg.Config{Engine: runcfg.EngineOOO})
		if err != nil {
			return err
		}
		plain, _, dPlain, err := timedRun(w.Prog, runcfg.Config{Engine: engine, Replay: cfg.Replay})
		if err != nil {
			return fmt.Errorf("%s (no memo): %w", name, err)
		}
		memo, st, dMemo, err := timedRun(w.Prog, runcfg.Config{
			Engine: engine, Memoize: true, CacheCapBytes: cfg.PaperCapM << 20,
			Replay: cfg.Replay,
		})
		if err != nil {
			return fmt.Errorf("%s (memo): %w", name, err)
		}
		if plain.Cycles != memo.Cycles {
			return fmt.Errorf("%s: memoized cycle count %d != plain %d (validation failure)",
				name, memo.Cycles, plain.Cycles)
		}
		rows[i] = Row{
			Name:       name,
			Insts:      memo.Insts,
			Cycles:     memo.Cycles,
			MemoMIPS:   mips(memo.Insts, dMemo),
			NoMemoMIPS: mips(plain.Insts, dPlain),
			BaseMIPS:   mips(base.Insts, dBase),
			FastFwdPct: st.FastForwardedPc,
			MemoBytes:  st.TotalMemoBytes,
			Misses:     st.Misses,
			Clears:     st.CacheClears,
			WallSec:    (dBase + dPlain + dMemo).Seconds(),
			Metrics:    metrics(st),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// CapSweepPoint is one point of the cache-capacity ablation (§6.1:
// limiting and clearing the cache costs little performance).
type CapSweepPoint struct {
	CapBytes  uint64  `json:"cap_bytes"`
	MIPS      float64 `json:"mips"`
	Clears    uint64  `json:"clears"`
	PeakBytes uint64  `json:"peak_bytes"`
	Cycles    uint64  `json:"cycles"`
}

// CacheCapSweep reruns one benchmark under shrinking action-cache caps.
func CacheCapSweep(name string, scale int, caps []uint64) ([]CapSweepPoint, error) {
	ucfg := uarch.Default()
	w, err := workloads.Get(name, scale)
	if err != nil {
		return nil, err
	}
	var pts []CapSweepPoint
	for _, cap := range caps {
		s := fastsim.New(ucfg, w.Prog, fastsim.Options{Memoize: true, CacheCapBytes: cap})
		t0 := time.Now()
		res := s.Run(0)
		d := time.Since(t0)
		st := s.Stats()
		pts = append(pts, CapSweepPoint{
			CapBytes:  cap,
			MIPS:      mips(res.Insts, d),
			Clears:    st.CacheClears,
			PeakBytes: st.CacheBytes,
			Cycles:    res.Cycles,
		})
	}
	return pts, nil
}

// LoCReport reproduces the paper's §6.2 code-size comparison: lines of
// Facile per simulator description (the paper: 1,959 Facile + 992 C for
// the out-of-order simulator; 703 Facile functional; 965 Facile in-order).
func LoCReport() map[string]int {
	out := map[string]int{}
	for name, src := range facile.Sources() {
		n := 0
		for _, line := range strings.Split(src, "\n") {
			t := strings.TrimSpace(line)
			if t == "" || strings.HasPrefix(t, "//") {
				continue
			}
			n++
		}
		out[name] = n
	}
	return out
}

// --- formatting -----------------------------------------------------------

// WriteFigure writes a figure's rows in the paper's layout: one bar group
// per benchmark with the three simulators, plus speedup summaries.
func WriteFigure(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-14s %12s | %10s %10s %10s | %8s %8s\n",
		"benchmark", "sim insts", "memo", "no-memo", "baseline", "memo/no", "memo/base")
	fmt.Fprintf(w, "%-14s %12s | %10s %10s %10s | %8s %8s\n",
		"", "", "Msim-i/s", "Msim-i/s", "Msim-i/s", "", "")
	var spMemoNo, spMemoBase, spNoBase []float64
	for _, r := range rows {
		sn := r.MemoMIPS / math.Max(r.NoMemoMIPS, 1e-9)
		sb := r.MemoMIPS / math.Max(r.BaseMIPS, 1e-9)
		fmt.Fprintf(w, "%-14s %12d | %10.2f %10.2f %10.2f | %7.1fx %7.1fx\n",
			r.Name, r.Insts, r.MemoMIPS, r.NoMemoMIPS, r.BaseMIPS, sn, sb)
		spMemoNo = append(spMemoNo, sn)
		spMemoBase = append(spMemoBase, sb)
		spNoBase = append(spNoBase, r.NoMemoMIPS/math.Max(r.BaseMIPS, 1e-9))
	}
	fmt.Fprintf(w, "harmonic means: memo/no-memo %.2fx   memo/baseline %.2fx   no-memo/baseline %.2fx\n",
		hmean(spMemoNo), hmean(spMemoBase), hmean(spNoBase))
}

// WriteTable1 writes the percentage-fast-forwarded table.
func WriteTable1(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "Table 1: Percentage of instructions fast-forwarded\n")
	fmt.Fprintf(w, "%-14s %12s %10s %10s\n", "benchmark", "insts", "% fastfwd", "misses")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12d %9.3f%% %10d\n", r.Name, r.Insts, r.FastFwdPct, r.Misses)
	}
}

// WriteTable2 writes the quantity-of-memoized-data table.
func WriteTable2(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "Table 2: Quantity of memoized data\n")
	fmt.Fprintf(w, "%-14s %12s %12s\n", "benchmark", "insts", "MB cached")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12d %12.2f\n", r.Name, r.Insts, float64(r.MemoBytes)/(1<<20))
	}
}

// WriteCapSweep writes the cache-capacity ablation.
func WriteCapSweep(w io.Writer, name string, pts []CapSweepPoint) {
	fmt.Fprintf(w, "Cache-capacity ablation (%s): clear-when-full policy\n", name)
	fmt.Fprintf(w, "%12s %10s %8s %12s %12s\n", "cap", "Msim-i/s", "clears", "peak bytes", "cycles")
	for _, p := range pts {
		cap := "unlimited"
		if p.CapBytes > 0 {
			cap = fmt.Sprintf("%d KiB", p.CapBytes>>10)
		}
		fmt.Fprintf(w, "%12s %10.2f %8d %12d %12d\n", cap, p.MIPS, p.Clears, p.PeakBytes, p.Cycles)
	}
}

// WriteLoC writes the description-size report.
func WriteLoC(w io.Writer) {
	fmt.Fprintf(w, "Facile description sizes (non-blank, non-comment lines; paper §6.2)\n")
	paper := map[string]string{
		"svr32.fac":   "ISA description (shared)",
		"func.fac":    "functional simulator (paper: 703 lines of Facile)",
		"inorder.fac": "in-order pipeline (paper: 965 lines of Facile + 11 C)",
		"ooo.fac":     "out-of-order simulator (paper: 1,959 lines of Facile + 992 C)",
	}
	for _, name := range []string{"svr32.fac", "func.fac", "inorder.fac", "ooo.fac"} {
		fmt.Fprintf(w, "%-14s %5d lines   %s\n", name, LoCReport()[name], paper[name])
	}
}
