package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable form of an fbench invocation: one
// Experiment per figure/table run, with per-benchmark rows and engine
// statistics. Row fields derived from host timing (MIPS, wall-clock)
// vary between hosts and runs; every other field is deterministic.
type Report struct {
	Tool      string       `json:"tool"`
	Started   time.Time    `json:"started"`
	WallSec   float64      `json:"wall_sec"`
	Scale     int          `json:"scale"`
	Workers   int          `json:"workers"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Results   []Experiment `json:"results"`
}

// Experiment is one figure/table of the evaluation.
type Experiment struct {
	Name    string  `json:"name"`
	WallSec float64 `json:"wall_sec"`
	Rows    []Row   `json:"rows,omitempty"`

	// Sweep carries the cache-capacity ablation's points (nil otherwise).
	Sweep []CapSweepPoint `json:"sweep,omitempty"`

	// LoC carries the description-size report (nil otherwise).
	LoC map[string]int `json:"loc,omitempty"`
}

// NewReport starts a report for the given run parameters.
func NewReport(scale, workers int, started time.Time) *Report {
	return &Report{
		Tool:      "fbench",
		Started:   started,
		Scale:     scale,
		Workers:   workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Add appends one experiment's results.
func (r *Report) Add(exp Experiment) {
	r.Results = append(r.Results, exp)
}

// WriteFile finalizes the report and writes it as indented JSON.
func (r *Report) WriteFile(path string, wall time.Duration) error {
	r.WallSec = wall.Seconds()
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
