package bench

import (
	"reflect"
	"testing"
)

// stripTiming zeroes the host-timing fields, leaving only the
// deterministic row content.
func stripTiming(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	for i := range out {
		out[i].MemoMIPS, out[i].NoMemoMIPS, out[i].BaseMIPS, out[i].WallSec = 0, 0, 0, 0
	}
	return out
}

// TestParallelRowsMatchSequential: sharding an experiment's benchmarks
// across workers must not change any deterministic row field.
func TestParallelRowsMatchSequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 1
	cfg.Names = []string{"126.gcc", "129.compress", "130.li", "102.swim"}

	cfg.Workers = 1
	seq, err := Figure11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		cfg.Workers = workers
		par, err := Figure11(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, b := stripTiming(seq), stripTiming(par)
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(b), len(a))
		}
		for i := range a {
			// DeepEqual, not ==: Metrics is a pointer whose pointee (not
			// identity) must match across worker counts.
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("workers=%d: row %d differs\nseq: %+v\npar: %+v", workers, i, a[i], b[i])
			}
		}
	}
}
