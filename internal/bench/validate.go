package bench

import (
	"bytes"
	"fmt"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/funcsim"
	"facile/internal/arch/ooo"
	"facile/internal/arch/uarch"
	"facile/internal/facsim"
	"facile/internal/workloads"
)

// ValidateBenchmark cross-validates every simulator in the repository on
// one workload:
//
//   - architectural results (output, exit status) of all seven simulator
//     configurations must equal the golden functional model's;
//   - the memoizing simulators must produce cycle counts identical to
//     their non-memoizing twins.
//
// It returns a descriptive error on the first violation. The test suites
// and cmd/fsim -validate both use it.
func ValidateBenchmark(name string, scale int) error {
	w, err := workloads.Get(name, scale)
	if err != nil {
		return err
	}
	_, golden, err := funcsim.Run(w.Prog, 0)
	if err != nil {
		return fmt.Errorf("%s: golden model: %w", name, err)
	}
	check := func(sim string, output []byte, exit int64) error {
		if !bytes.Equal(output, golden.Output) {
			return fmt.Errorf("%s: %s output %q != golden %q", name, sim, output, golden.Output)
		}
		if exit != golden.ExitStatus {
			return fmt.Errorf("%s: %s exit %d != golden %d", name, sim, exit, golden.ExitStatus)
		}
		return nil
	}
	cfg := uarch.Default()

	// Conventional OOO baseline.
	base := ooo.Run(cfg, w.Prog, 0)
	if err := check("ooo", base.Output, base.ExitStatus); err != nil {
		return err
	}

	// Hand-coded memoizing simulator, both modes, identical cycles.
	plain := fastsim.New(cfg, w.Prog, fastsim.Options{Memoize: false}).Run(0)
	if err := check("fastsim", plain.Output, plain.ExitStatus); err != nil {
		return err
	}
	memo := fastsim.New(cfg, w.Prog, fastsim.Options{Memoize: true}).Run(0)
	if err := check("fastsim+memo", memo.Output, memo.ExitStatus); err != nil {
		return err
	}
	if plain.Cycles != memo.Cycles {
		return fmt.Errorf("%s: fastsim cycles %d (memo) != %d (plain)", name, memo.Cycles, plain.Cycles)
	}

	// Memoizing with self-checking over a deliberately small cache: sampled
	// steps re-run on the slow simulator and must never diverge from the
	// recorded actions, and cycle counts must still match the plain run.
	scSim := fastsim.New(cfg, w.Prog, fastsim.Options{
		Memoize:       true,
		SelfCheck:     0.25,
		CacheCapBytes: 1 << 16,
	})
	scRes := scSim.Run(0)
	if err := check("fastsim+selfcheck", scRes.Output, scRes.ExitStatus); err != nil {
		return err
	}
	if scRes.Cycles != plain.Cycles {
		return fmt.Errorf("%s: fastsim+selfcheck cycles %d != %d (plain)", name, scRes.Cycles, plain.Cycles)
	}
	if st := scSim.Stats(); st.SelfCheckDivergences != 0 {
		return fmt.Errorf("%s: fastsim self-check diverged %d times (last: %v)",
			name, st.SelfCheckDivergences, scSim.LastFault())
	}

	// Facile simulators: functional, and OOO in both modes with identical
	// cycles. (The in-order model is validated in the facsim tests; it is
	// too slow to sweep the whole suite here.)
	ff, err := facsim.NewFunctional(w.Prog, facsim.Options{Memoize: true})
	if err != nil {
		return err
	}
	fres, err := ff.Run(0)
	if err != nil {
		return fmt.Errorf("%s: facile functional: %w", name, err)
	}
	if err := check("facile-func", fres.Output, fres.Exit); err != nil {
		return err
	}
	if fres.Stats.SlowSteps+fres.Stats.Replays != golden.Insts {
		return fmt.Errorf("%s: facile functional steps %d != golden insts %d",
			name, fres.Stats.SlowSteps+fres.Stats.Replays, golden.Insts)
	}

	var oooCycles [2]uint64
	for i, m := range []bool{false, true} {
		in, err := facsim.NewOOO(w.Prog, facsim.Options{Memoize: m})
		if err != nil {
			return err
		}
		res, err := in.Run(0)
		if err != nil {
			return fmt.Errorf("%s: facile ooo (memo=%v): %w", name, m, err)
		}
		tag := "facile-ooo"
		if m {
			tag = "facile-ooo+memo"
		}
		if err := check(tag, res.Output, res.Exit); err != nil {
			return err
		}
		oooCycles[i] = res.Cycles
	}
	if oooCycles[0] != oooCycles[1] {
		return fmt.Errorf("%s: facile ooo cycles %d (memo) != %d (plain)", name, oooCycles[1], oooCycles[0])
	}

	// Facile OOO memoizing with self-checking over a small cache: results
	// and cycles must match the plain run with zero divergences.
	fsc, err := facsim.NewOOO(w.Prog, facsim.Options{
		Memoize:       true,
		SelfCheck:     0.25,
		CacheCapBytes: 1 << 18,
	})
	if err != nil {
		return err
	}
	fscRes, err := fsc.Run(0)
	if err != nil {
		return fmt.Errorf("%s: facile ooo (self-check): %w", name, err)
	}
	if err := check("facile-ooo+selfcheck", fscRes.Output, fscRes.Exit); err != nil {
		return err
	}
	if fscRes.Cycles != oooCycles[0] {
		return fmt.Errorf("%s: facile ooo self-check cycles %d != %d (plain)", name, fscRes.Cycles, oooCycles[0])
	}
	if fscRes.Stats.SelfCheckDivergences != 0 {
		return fmt.Errorf("%s: facile ooo self-check diverged %d times (last: %v)",
			name, fscRes.Stats.SelfCheckDivergences, fsc.M.LastFault())
	}
	return nil
}
