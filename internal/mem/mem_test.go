package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUnmappedReadsZero(t *testing.T) {
	m := New()
	if m.Read8(0x1234) != 0 || m.Read32(0x99999) != 0 || m.Read64(1<<40) != 0 {
		t.Fatal("unmapped memory should read zero")
	}
}

func TestRead64WriteRoundTrip(t *testing.T) {
	f := func(addr uint64, v uint64) bool {
		addr %= 1 << 30
		m := New()
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	// Last byte of a page through the first bytes of the next.
	addr := uint64(pageSize - 3)
	m.Write64(addr, 0x1122334455667788)
	if got := m.Read64(addr); got != 0x1122334455667788 {
		t.Fatalf("straddled Read64 = %#x", got)
	}
	m.Write32(uint64(pageSize-2), 0xAABBCCDD)
	if got := m.Read32(uint64(pageSize - 2)); got != 0xAABBCCDD {
		t.Fatalf("straddled Read32 = %#x", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write32(0x100, 0x04030201)
	for i := uint64(0); i < 4; i++ {
		if got := m.Read8(0x100 + i); got != byte(i+1) {
			t.Fatalf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := New()
	b := []byte("hello, memory subsystem")
	m.WriteBytes(0xFF0, b) // straddles a page
	if got := m.ReadBytes(0xFF0, len(b)); !bytes.Equal(got, b) {
		t.Fatalf("ReadBytes = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Write64(64, 7)
	c := m.Clone()
	c.Write64(64, 9)
	if m.Read64(64) != 7 || c.Read64(64) != 9 {
		t.Fatal("Clone shares pages with original")
	}
}

func TestResetAndFootprint(t *testing.T) {
	m := New()
	if m.FootprintBytes() != 0 {
		t.Fatal("fresh memory has nonzero footprint")
	}
	m.Write8(0, 1)
	m.Write8(1<<20, 1)
	if m.FootprintBytes() != 2*pageSize {
		t.Fatalf("footprint = %d, want %d", m.FootprintBytes(), 2*pageSize)
	}
	m.Reset()
	if m.FootprintBytes() != 0 || m.Read8(0) != 0 {
		t.Fatal("Reset did not clear memory")
	}
}
