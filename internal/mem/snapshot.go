package mem

import (
	"fmt"
	"sort"

	"facile/internal/snapshot"
)

// SaveState serializes the memory deterministically: page keys in ascending
// order, each followed by its raw contents. Unmapped pages read as zero and
// are simply absent.
func (m *Memory) SaveState(w *snapshot.Writer) {
	keys := make([]uint64, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.U64(k)
		w.Bytes(m.pages[k][:])
	}
}

// LoadState replaces the memory's contents from a snapshot.
func (m *Memory) LoadState(r *snapshot.Reader) error {
	n := r.U64()
	pages := make(map[uint64]*page, n)
	for i := uint64(0); i < n; i++ {
		k := r.U64()
		b := r.Bytes()
		if r.Err() != nil {
			return r.Err()
		}
		if len(b) != pageSize {
			return fmt.Errorf("mem: snapshot page %#x has %d bytes, want %d", k, len(b), pageSize)
		}
		p := new(page)
		copy(p[:], b)
		pages[k] = p
	}
	if err := r.Err(); err != nil {
		return err
	}
	m.pages = pages
	return nil
}
