// Package mem implements the sparse, paged, little-endian byte-addressed
// memory used by every simulator in this repository.
package mem

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse 64-bit address space. Reads of unmapped addresses
// return zero; writes allocate pages on demand. The zero value is ready to
// use after calling New (pages map must exist).
type Memory struct {
	pages map[uint64]*page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Clone returns a deep copy of m.
func (m *Memory) Clone() *Memory {
	c := New()
	for k, p := range m.pages {
		np := *p
		c.pages[k] = &np
	}
	return c
}

// Reset drops every mapped page.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*page)
}

// FootprintBytes reports the bytes of mapped storage.
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.pages)) * pageSize
}

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && alloc {
		p = new(page)
		m.pages[key] = p
	}
	return p
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint64, v byte) {
	m.pageFor(addr, true)[addr&pageMask] = v
}

// Read64 reads a little-endian 64-bit value. Accesses may straddle pages.
func (m *Memory) Read64(addr uint64) uint64 {
	if addr&pageMask <= pageSize-8 {
		if p := m.pageFor(addr, false); p != nil {
			o := addr & pageMask
			return uint64(p[o]) | uint64(p[o+1])<<8 | uint64(p[o+2])<<16 | uint64(p[o+3])<<24 |
				uint64(p[o+4])<<32 | uint64(p[o+5])<<40 | uint64(p[o+6])<<48 | uint64(p[o+7])<<56
		}
		return 0
	}
	var v uint64
	for i := uint(0); i < 8; i++ {
		v |= uint64(m.Read8(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write64 writes a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) {
	if addr&pageMask <= pageSize-8 {
		p := m.pageFor(addr, true)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		p[o+4] = byte(v >> 32)
		p[o+5] = byte(v >> 40)
		p[o+6] = byte(v >> 48)
		p[o+7] = byte(v >> 56)
		return
	}
	for i := uint(0); i < 8; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) uint32 {
	if addr&pageMask <= pageSize-4 {
		if p := m.pageFor(addr, false); p != nil {
			o := addr & pageMask
			return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
		}
		return 0
	}
	var v uint32
	for i := uint(0); i < 4; i++ {
		v |= uint32(m.Read8(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) {
	if addr&pageMask <= pageSize-4 {
		p := m.pageFor(addr, true)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		return
	}
	for i := uint(0); i < 4; i++ {
		m.Write8(addr+uint64(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.Write8(addr+uint64(i), c)
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.Read8(addr + uint64(i))
	}
	return b
}
