// Package sweep implements parametric design-space exploration over the
// simulated micro-architecture: a declarative spec names a workload, an
// engine, and a grid of uarch axes (cache geometry, TLB size, predictor
// tables, core parameters); the package expands it into concrete run
// configurations, executes them through a pluggable backend, and renders
// a comparative report.
//
// The subsystem leans on the same property that makes the paper's
// fast-forwarding exact: cache hierarchy and branch predictor are
// external dynamic components whose memoized results are verified during
// replay, so an action cache built at one point of the grid is adoptable
// at the next — a design-space sweep over memory axes is a sequence of
// warm restarts, not a sequence of cold runs. Points are therefore
// grouped by cache lineage (runcfg.LineageKey) and executed so that
// consecutive same-lineage points hand their caches forward.
package sweep

import (
	"fmt"

	"facile/internal/runcfg"
	"facile/internal/workloads"
)

// DefaultMaxPoints caps the grid expansion when the spec sets no cap;
// HardMaxPoints is the absolute ceiling a spec cannot raise.
const (
	DefaultMaxPoints = 128
	HardMaxPoints    = 4096
)

// Axis is one swept parameter. Exactly one of Values (an explicit list)
// or a range must be set. A range enumerates Min..Max inclusive, stepping
// either arithmetically (Step > 0) or geometrically (Mul > 1); geometric
// ranges suit the power-of-two cache axes.
type Axis struct {
	Param  string  `json:"param"`
	Values []int64 `json:"values,omitempty"`
	Min    int64   `json:"min,omitempty"`
	Max    int64   `json:"max,omitempty"`
	Step   int64   `json:"step,omitempty"`
	Mul    int64   `json:"mul,omitempty"`
}

// expand enumerates the axis's values in declaration order.
func (a *Axis) expand() ([]int64, error) {
	if a.Param == "" {
		return nil, fmt.Errorf("sweep: axis with empty param")
	}
	if probe := (&runcfg.UarchSpec{}); probe.SetParam(a.Param, 1) != nil {
		return nil, fmt.Errorf("sweep: axis %q is not a known uarch parameter (valid: %v)", a.Param, runcfg.Params())
	}
	hasRange := a.Min != 0 || a.Max != 0 || a.Step != 0 || a.Mul != 0
	if (len(a.Values) > 0) == hasRange {
		return nil, fmt.Errorf("sweep: axis %q needs exactly one of values or a min/max range", a.Param)
	}
	if len(a.Values) > 0 {
		seen := map[int64]bool{}
		for _, v := range a.Values {
			if seen[v] {
				return nil, fmt.Errorf("sweep: axis %q repeats value %d", a.Param, v)
			}
			seen[v] = true
		}
		return a.Values, nil
	}
	if a.Min > a.Max {
		return nil, fmt.Errorf("sweep: axis %q has min %d > max %d", a.Param, a.Min, a.Max)
	}
	if (a.Step > 0) == (a.Mul > 1) {
		return nil, fmt.Errorf("sweep: axis %q needs exactly one of step > 0 or mul > 1", a.Param)
	}
	var vals []int64
	if a.Step > 0 {
		for v := a.Min; v <= a.Max; v += a.Step {
			vals = append(vals, v)
		}
	} else {
		if a.Min < 1 {
			return nil, fmt.Errorf("sweep: axis %q: geometric range needs min >= 1", a.Param)
		}
		for v := a.Min; v <= a.Max; v *= a.Mul {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("sweep: axis %q expands to no values", a.Param)
	}
	return vals, nil
}

// Spec declares one sweep. Exactly one of Bench or Asm selects the
// program; Engine defaults to the hand-coded fast-forwarding simulator
// with memoization on (the configuration under which consecutive points
// share warm caches).
type Spec struct {
	Name  string `json:"name,omitempty"`
	Bench string `json:"bench,omitempty"`
	Scale int    `json:"scale,omitempty"`
	Asm   string `json:"asm,omitempty"`

	Engine        string `json:"engine,omitempty"`
	Memoize       *bool  `json:"memoize,omitempty"` // nil = true
	CacheCapBytes uint64 `json:"cache_cap_bytes,omitempty"`
	MaxInsts      uint64 `json:"max_insts,omitempty"`

	// MaxPoints caps the expansion (0 = DefaultMaxPoints, never above
	// HardMaxPoints); an over-cap grid is rejected, not truncated.
	MaxPoints int `json:"max_points,omitempty"`

	// Base is an overlay applied to every point before its axis values;
	// it pins the non-swept dimensions away from their defaults.
	Base *runcfg.UarchSpec `json:"base,omitempty"`

	Axes []Axis `json:"axes"`
}

// Memoizing reports the effective memoize setting (default true).
func (s *Spec) Memoizing() bool { return s.Memoize == nil || *s.Memoize }

// Normalize applies defaults and validates the spec's shape (not the
// per-point geometry, which Expand judges point by point).
func (s *Spec) Normalize() error {
	if (s.Bench == "") == (s.Asm == "") {
		return fmt.Errorf("sweep: exactly one of bench or asm must be set")
	}
	if s.Bench != "" {
		if _, err := workloads.Source(s.Bench, 1); err != nil {
			return err
		}
	}
	if s.Scale < 1 {
		s.Scale = 1
	}
	if s.Engine == "" {
		s.Engine = runcfg.EngineFastsim
	}
	switch s.Engine {
	case runcfg.EngineOOO, runcfg.EngineFastsim, runcfg.EngineFacInOrder, runcfg.EngineFacOOO:
	default:
		return fmt.Errorf("sweep: engine %q is not a timing engine (valid: %v)",
			s.Engine, []string{runcfg.EngineOOO, runcfg.EngineFastsim, runcfg.EngineFacInOrder, runcfg.EngineFacOOO})
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep: no axes")
	}
	seen := map[string]bool{}
	for i := range s.Axes {
		if seen[s.Axes[i].Param] {
			return fmt.Errorf("sweep: axis %q declared twice", s.Axes[i].Param)
		}
		seen[s.Axes[i].Param] = true
	}
	if s.MaxPoints <= 0 {
		s.MaxPoints = DefaultMaxPoints
	}
	if s.MaxPoints > HardMaxPoints {
		s.MaxPoints = HardMaxPoints
	}
	return nil
}

// ParamValue is one (axis, value) coordinate of a point. Params are an
// ordered list, not a map, so point JSON is deterministic.
type ParamValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Point is one expanded run configuration.
type Point struct {
	Index      int               // position in expansion order
	Params     []ParamValue      // axis coordinates, in axis order
	Uarch      *runcfg.UarchSpec // base + coordinates
	LineageKey string            // cache lineage ("" when not memoizing)
	Invalid    string            // geometry rejection ("" = runnable)
}

// Expand normalizes the spec and enumerates the full cross product in
// row-major axis order (last axis fastest). Each point's geometry is
// validated individually: an invalid combination is kept, marked, and
// skipped at execution time rather than failing the whole sweep.
func (s *Spec) Expand() ([]Point, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	axes := make([][]int64, len(s.Axes))
	total := 1
	for i := range s.Axes {
		vals, err := s.Axes[i].expand()
		if err != nil {
			return nil, err
		}
		axes[i] = vals
		total *= len(vals)
		if total > s.MaxPoints {
			return nil, fmt.Errorf("sweep: grid expands to more than %d points (cap max_points)", s.MaxPoints)
		}
	}
	points := make([]Point, 0, total)
	idx := make([]int, len(axes))
	for n := 0; n < total; n++ {
		p := Point{Index: n, Uarch: s.Base.Clone()}
		if p.Uarch == nil {
			p.Uarch = &runcfg.UarchSpec{}
		}
		for i := range axes {
			v := axes[i][idx[i]]
			p.Params = append(p.Params, ParamValue{Name: s.Axes[i].Param, Value: v})
			if err := p.Uarch.SetParam(s.Axes[i].Param, v); err != nil {
				return nil, err // unreachable: axis params are pre-checked
			}
		}
		if err := p.Uarch.Effective().Validate(); err != nil {
			p.Invalid = err.Error()
		} else if (runcfg.Config{Engine: s.Engine, Memoize: s.Memoizing()}).Memoizing() {
			p.LineageKey = runcfg.LineageKey(s.Bench, s.Scale, s.Asm, s.Engine,
				s.Memoizing(), s.CacheCapBytes, p.Uarch)
		}
		points = append(points, p)
		for i := len(axes) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(axes[i]) {
				break
			}
			idx[i] = 0
		}
	}
	return points, nil
}
