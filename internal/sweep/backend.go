package sweep

import (
	"context"
	"fmt"
	"sync"
	"time"

	"facile/internal/isa/asm"
	"facile/internal/isa/loader"
	"facile/internal/runcfg"
	"facile/internal/workloads"
)

// JobSpec is one point's run configuration, in backend-neutral form.
type JobSpec struct {
	Bench string
	Scale int
	Asm   string

	Engine        string
	Memoize       bool
	CacheCapBytes uint64
	MaxInsts      uint64

	Uarch      *runcfg.UarchSpec
	LineageKey string
}

// JobResult is one point's outcome.
type JobResult struct {
	Result runcfg.Result
	Stats  runcfg.Stats

	// Warm-start provenance: whether the run adopted a predecessor's
	// action cache, from where ("memory", "store", ...), and how much.
	WarmStart   bool
	WarmSource  string
	WarmEntries uint64

	WallMs int64 // host wall time (stripped from deterministic reports)
}

// Backend executes one point. Implementations must be safe for
// concurrent Run calls: the executor runs distinct lineage groups in
// parallel (within a group, calls are sequential, which is what lets a
// backend chain warm caches point to point).
type Backend interface {
	Run(ctx context.Context, js JobSpec) (JobResult, error)
}

// chunkInsts is the local backend's cancellation-check granularity.
const chunkInsts = 1 << 16

// LocalBackend runs points in-process. Finished points park their
// detached action cache under their lineage key; the next same-lineage
// point adopts it (warm_source "memory"), so a sweep over the
// replay-verified axes degenerates into one cold run plus warm restarts.
type LocalBackend struct {
	mu     sync.Mutex
	parked map[string]runcfg.WarmCache
	progs  map[string]*loader.Program // assembled-program cache
}

// NewLocalBackend returns an empty local executor.
func NewLocalBackend() *LocalBackend {
	return &LocalBackend{
		parked: make(map[string]runcfg.WarmCache),
		progs:  make(map[string]*loader.Program),
	}
}

// program assembles (once) the spec's workload.
func (b *LocalBackend) program(js JobSpec) (*loader.Program, error) {
	key := fmt.Sprintf("bench=%s|scale=%d|asm=%s", js.Bench, js.Scale, js.Asm)
	b.mu.Lock()
	prog := b.progs[key]
	b.mu.Unlock()
	if prog != nil {
		return prog, nil
	}
	var err error
	if js.Bench != "" {
		var w *workloads.Workload
		if w, err = workloads.Get(js.Bench, js.Scale); err == nil {
			prog = w.Prog
		}
	} else {
		prog, err = asm.Assemble("sweep.s", js.Asm)
	}
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.progs[key] = prog
	b.mu.Unlock()
	return prog, nil
}

func (b *LocalBackend) takeWarm(key string) runcfg.WarmCache {
	if key == "" {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wc := b.parked[key]
	delete(b.parked, key)
	return wc
}

func (b *LocalBackend) parkWarm(key string, wc runcfg.WarmCache) {
	if key == "" || wc == nil || wc.Entries() == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if cur := b.parked[key]; cur != nil && cur.Entries() >= wc.Entries() {
		return // keep the bigger cache
	}
	b.parked[key] = wc
}

// Run executes one point to completion (or js.MaxInsts), checking ctx
// between chunks.
func (b *LocalBackend) Run(ctx context.Context, js JobSpec) (JobResult, error) {
	start := time.Now()
	prog, err := b.program(js)
	if err != nil {
		return JobResult{}, err
	}
	cfg := runcfg.Config{
		Engine:        js.Engine,
		Memoize:       js.Memoize,
		CacheCapBytes: js.CacheCapBytes,
	}
	if !js.Uarch.IsZero() {
		uc := js.Uarch.Effective()
		cfg.Uarch = &uc
	}
	r, err := runcfg.New(prog, cfg)
	if err != nil {
		return JobResult{}, err
	}
	var out JobResult
	if wc := b.takeWarm(js.LineageKey); wc != nil {
		if r.AdoptCache(wc) {
			out.WarmStart = true
			out.WarmSource = "memory"
			out.WarmEntries = wc.Entries()
		} else {
			b.parkWarm(js.LineageKey, wc) // engine refused it; keep for a sibling
		}
	}
	for !r.Done() {
		if err := ctx.Err(); err != nil {
			return JobResult{}, err
		}
		target := r.Progress() + chunkInsts
		if js.MaxInsts > 0 && target > js.MaxInsts {
			target = js.MaxInsts
		}
		if err := r.Run(target); err != nil {
			return JobResult{}, err
		}
		if js.MaxInsts > 0 && r.Progress() >= js.MaxInsts {
			break
		}
	}
	out.Result = r.Result()
	out.Stats = r.Stats()
	out.WallMs = time.Since(start).Milliseconds()
	b.parkWarm(js.LineageKey, r.DetachCache())
	return out, nil
}
