package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"facile/internal/runcfg"
)

func compressSpec(values ...int64) Spec {
	return Spec{
		Name:     "l1d-study",
		Bench:    "129.compress",
		Scale:    1,
		Engine:   runcfg.EngineFastsim,
		MaxInsts: 0,
		Axes:     []Axis{{Param: "l1d.size_kb", Values: values}},
	}
}

func TestExpandGridOrderAndLineage(t *testing.T) {
	spec := Spec{
		Bench:  "129.compress",
		Engine: runcfg.EngineFastsim,
		Axes: []Axis{
			{Param: "l1d.size_kb", Values: []int64{8, 16}},
			{Param: "tlb.entries", Min: 16, Max: 64, Mul: 2},
		},
	}
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("expanded %d points, want 6", len(points))
	}
	// Row-major: last axis fastest.
	want := [][2]int64{{8, 16}, {8, 32}, {8, 64}, {16, 16}, {16, 32}, {16, 64}}
	for i, p := range points {
		if p.Params[0].Value != want[i][0] || p.Params[1].Value != want[i][1] {
			t.Fatalf("point %d params %v, want %v", i, p.Params, want[i])
		}
		if p.Invalid != "" {
			t.Fatalf("point %d invalid: %s", i, p.Invalid)
		}
		// Memory axes never fork the lineage: every point shares one key.
		if p.LineageKey == "" || p.LineageKey != points[0].LineageKey {
			t.Fatalf("point %d lineage %q, want %q", i, p.LineageKey, points[0].LineageKey)
		}
	}
}

func TestExpandCoreAxisForksLineage(t *testing.T) {
	spec := Spec{
		Bench:  "129.compress",
		Engine: runcfg.EngineFastsim,
		Axes:   []Axis{{Param: "core.window", Values: []int64{16, 32}}},
	}
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].LineageKey == points[1].LineageKey {
		t.Fatal("core-axis points share a lineage; their memoized schedules differ")
	}
}

func TestExpandRejectsBadShapes(t *testing.T) {
	cases := []Spec{
		{Axes: []Axis{{Param: "l1d.size_kb", Values: []int64{8}}}},                                     // no program
		{Bench: "129.compress", Asm: "halt", Axes: []Axis{{Param: "l1d.size_kb", Values: []int64{8}}}}, // both programs
		{Bench: "129.compress"}, // no axes
		{Bench: "129.compress", Axes: []Axis{{Param: "nope", Values: []int64{1}}}},                                   // unknown param
		{Bench: "129.compress", Axes: []Axis{{Param: "l1d.size_kb"}}},                                                // no values
		{Bench: "129.compress", Axes: []Axis{{Param: "l1d.size_kb", Values: []int64{8, 8}}}},                         // duplicate value
		{Bench: "129.compress", Axes: []Axis{{Param: "l1d.size_kb", Min: 4, Max: 64}}},                               // no step/mul
		{Bench: "129.compress", Engine: runcfg.EngineFunc, Axes: []Axis{{Param: "l1d.size_kb", Values: []int64{8}}}}, // functional engine
		{Bench: "129.compress", MaxPoints: 2, Axes: []Axis{{Param: "l1d.size_kb", Values: []int64{4, 8, 16}}}},       // over cap
		{Bench: "129.compress", Axes: []Axis{
			{Param: "l1d.size_kb", Values: []int64{8}}, {Param: "l1d.size_kb", Values: []int64{16}}}}, // duplicate axis
	}
	for i, spec := range cases {
		if _, err := spec.Expand(); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}

func TestExpandMarksInvalidPointsPerPoint(t *testing.T) {
	spec := Spec{
		Bench:  "129.compress",
		Engine: runcfg.EngineFastsim,
		// 3 KB is not a power of two; 4 and 8 are fine.
		Axes: []Axis{{Param: "l1d.size_bytes", Values: []int64{3000, 4096, 8192}}},
	}
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Invalid == "" || !strings.Contains(points[0].Invalid, "power of two") {
		t.Fatalf("invalid point not marked: %+v", points[0])
	}
	if points[1].Invalid != "" || points[2].Invalid != "" {
		t.Fatal("valid points marked invalid")
	}
}

func TestRunWarmChainsAndDeterminism(t *testing.T) {
	ctx := context.Background()
	spec := compressSpec(4, 8, 16, 32)

	run := func() *Report {
		t.Helper()
		rep, err := Run(ctx, spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Summary.Ran != 4 {
		t.Fatalf("ran %d/4: %+v", rep.Summary.Ran, rep.Summary)
	}
	if rep.Points[0].WarmStart {
		t.Fatal("first point cannot warm-start")
	}
	for _, p := range rep.Points[1:] {
		if !p.WarmStart || p.WarmSource != "memory" {
			t.Fatalf("point %d should warm-start from memory: %+v", p.Index, p)
		}
	}
	// Exactness: warm-started points must match a cold reference run.
	for _, p := range rep.Points {
		cold, err := NewLocalBackend().Run(ctx, JobSpec{
			Bench: spec.Bench, Scale: spec.Scale, Engine: spec.Engine,
			Memoize: true, Uarch: pointSpec(t, p.Params),
		})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Result.Cycles != p.Cycles || cold.Result.Insts != p.Insts {
			t.Fatalf("point %d diverges from cold run: warm %d cycles, cold %d",
				p.Index, p.Cycles, cold.Result.Cycles)
		}
	}
	// Larger L1D must not increase misses (monotone miss curve).
	for i := 1; i < len(rep.Points); i++ {
		if rep.Points[i].L1DMisses > rep.Points[i-1].L1DMisses {
			t.Fatalf("miss curve not monotone: %d misses at point %d, %d at point %d",
				rep.Points[i-1].L1DMisses, i-1, rep.Points[i].L1DMisses, i)
		}
	}

	// Same spec twice: byte-identical reports modulo host time.
	rep2 := run()
	rep.StripHostTime()
	rep2.StripHostTime()
	j1, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := rep2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("reports differ:\n%s\n---\n%s", j1, j2)
	}
}

// pointSpec rebuilds a point's UarchSpec from its report coordinates.
func pointSpec(t *testing.T, params []ParamValue) *runcfg.UarchSpec {
	t.Helper()
	s := &runcfg.UarchSpec{}
	for _, pv := range params {
		if err := s.SetParam(pv.Name, pv.Value); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRunParallelGroupsStayExact(t *testing.T) {
	// Two lineages (two window sizes) × two memory points each, run with
	// two workers: groups interleave, within-group order is preserved.
	spec := Spec{
		Bench:  "129.compress",
		Engine: runcfg.EngineFastsim,
		Axes: []Axis{
			{Param: "core.window", Values: []int64{16, 32}},
			{Param: "l1d.size_kb", Values: []int64{8, 32}},
		},
	}
	rep, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Ran != 4 || rep.Summary.WarmStarts != 2 {
		t.Fatalf("summary %+v, want 4 ran / 2 warm", rep.Summary)
	}
	// The second point of each lineage group warm-starts.
	for _, i := range []int{1, 3} {
		if !rep.Points[i].WarmStart {
			t.Fatalf("point %d should warm-start: %+v", i, rep.Points[i])
		}
	}
}

func TestRunSkipsInvalidAndKeepsGoing(t *testing.T) {
	spec := Spec{
		Bench:  "129.compress",
		Engine: runcfg.EngineFastsim,
		Axes:   []Axis{{Param: "l1d.size_bytes", Values: []int64{3000, 8192}}},
	}
	rep, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points[0].Status != PointInvalid || rep.Points[1].Status != PointOK {
		t.Fatalf("statuses %s/%s", rep.Points[0].Status, rep.Points[1].Status)
	}
	if rep.Summary.Invalid != 1 || rep.Summary.Ran != 1 {
		t.Fatalf("summary %+v", rep.Summary)
	}
}

// cancelBackend wraps LocalBackend and cancels the sweep after n points.
type cancelBackend struct {
	inner  Backend
	cancel context.CancelFunc
	after  int
	mu     sync.Mutex
	ran    int
}

func (b *cancelBackend) Run(ctx context.Context, js JobSpec) (JobResult, error) {
	res, err := b.inner.Run(ctx, js)
	b.mu.Lock()
	b.ran++
	if b.ran == b.after {
		b.cancel()
	}
	b.mu.Unlock()
	return res, err
}

func TestRunCancelMarksRemainingSkipped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := compressSpec(4, 8, 16, 32)
	cb := &cancelBackend{inner: NewLocalBackend(), cancel: cancel, after: 2}
	rep, err := Run(ctx, spec, Options{Backend: cb})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if rep.Summary.Ran != 2 || rep.Summary.Skipped != 2 {
		t.Fatalf("summary %+v, want 2 ran / 2 skipped", rep.Summary)
	}
	for _, p := range rep.Points[2:] {
		if p.Status != PointSkipped {
			t.Fatalf("point %d status %s", p.Index, p.Status)
		}
	}
}

func TestReportCurvesAndKnee(t *testing.T) {
	rep := &Report{
		Axes: []AxisInfo{{Param: "l1d.size_kb", Values: []int64{4, 8, 16, 32, 64}}},
	}
	// A classic miss curve: steep improvement then a plateau; the knee is
	// where the curve flattens (16 KB here).
	cycles := []uint64{10000, 6000, 3000, 2800, 2700}
	for i, c := range cycles {
		rep.Points = append(rep.Points, PointResult{
			Index:  i,
			Params: []ParamValue{{Name: "l1d.size_kb", Value: rep.Axes[0].Values[i]}},
			Status: PointOK, Cycles: c, Insts: 1000,
		})
	}
	rep.finalize()
	if len(rep.Curves) != 1 || len(rep.Curves[0].Rows) != 5 {
		t.Fatalf("curves %+v", rep.Curves)
	}
	if rep.Summary.Best != 4 || rep.Summary.Worst != 0 {
		t.Fatalf("best/worst %d/%d", rep.Summary.Best, rep.Summary.Worst)
	}
	if rep.Summary.Knee != 2 {
		t.Fatalf("knee at point %d, want 2 (16 KB)", rep.Summary.Knee)
	}
}

func TestReportRenderers(t *testing.T) {
	rep, err := Run(context.Background(), compressSpec(8, 32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "l1d.size_kb,status,") {
		t.Fatalf("csv:\n%s", csv.String())
	}
	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"129.compress", "l1d.size_kb", "best", "ran 2/2"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, txt.String())
		}
	}
}

func TestMultiAxisCurveSlices(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Bench:  "129.compress",
		Engine: runcfg.EngineFastsim,
		Axes: []Axis{
			{Param: "l1d.size_kb", Values: []int64{8, 32}},
			{Param: "tlb.entries", Values: []int64{16, 64}},
		},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curves) != 2 {
		t.Fatalf("curves: %d, want 2", len(rep.Curves))
	}
	for _, c := range rep.Curves {
		if len(c.Rows) != 2 {
			t.Fatalf("curve %s has %d rows, want 2 (1-D slice)", c.Param, len(c.Rows))
		}
		if len(c.Fixed) != 1 {
			t.Fatalf("curve %s fixed %v", c.Param, c.Fixed)
		}
	}
}
