package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// ReportSchema versions the sweep report artifact.
const ReportSchema = "facile-sweep/1"

// Point statuses in a report.
const (
	PointOK      = "ok"
	PointInvalid = "invalid" // geometry rejected at expansion
	PointError   = "error"   // backend failure
	PointSkipped = "skipped" // sweep canceled before the point ran
)

// PointResult is one point's report row.
type PointResult struct {
	Index      int          `json:"index"`
	Params     []ParamValue `json:"params"`
	LineageKey string       `json:"lineage_key,omitempty"`
	Status     string       `json:"status"`
	Error      string       `json:"error,omitempty"`

	Insts  uint64  `json:"insts,omitempty"`
	Cycles uint64  `json:"cycles,omitempty"`
	IPC    float64 `json:"ipc,omitempty"`

	Mispredicts uint64  `json:"mispredicts,omitempty"`
	L1DMisses   uint64  `json:"l1d_misses,omitempty"`
	MPKI        float64 `json:"l1d_mpki,omitempty"` // L1D misses per kilo-instruction

	FastSharePc float64 `json:"fast_share_pc,omitempty"`
	WarmStart   bool    `json:"warm_start"`
	WarmSource  string  `json:"warm_source,omitempty"`
	WarmEntries uint64  `json:"warm_entries,omitempty"`

	WallMs int64 `json:"wall_ms,omitempty"` // host time
}

// AxisInfo records one axis's expanded values in the report.
type AxisInfo struct {
	Param  string  `json:"param"`
	Values []int64 `json:"values"`
}

// CurveRow is one point of a miss curve.
type CurveRow struct {
	Value      int64   `json:"value"`
	PointIndex int     `json:"point"`
	Cycles     uint64  `json:"cycles"`
	IPC        float64 `json:"ipc"`
	L1DMisses  uint64  `json:"l1d_misses"`
	MPKI       float64 `json:"l1d_mpki"`
}

// Curve is a one-dimensional slice through the grid: one axis varies,
// every other axis is held at its first value. Rows cover only the
// points that ran.
type Curve struct {
	Param string       `json:"param"`
	Fixed []ParamValue `json:"fixed,omitempty"`
	Rows  []CurveRow   `json:"rows"`
}

// Summary aggregates a sweep.
type Summary struct {
	Total      int `json:"total"`
	Ran        int `json:"ran"`
	Invalid    int `json:"invalid"`
	Failed     int `json:"failed"`
	Skipped    int `json:"skipped"`
	WarmStarts int `json:"warm_starts"`

	// Best/Worst/Knee are point indices by cycle count among the points
	// that ran (-1 when undefined). The knee is the point of maximum
	// curvature on the primary curve — past it, spending more of the
	// swept resource buys little.
	Best  int `json:"best"`
	Worst int `json:"worst"`
	Knee  int `json:"knee"`
}

// Report is the comparative result of one sweep.
type Report struct {
	Schema      string `json:"schema"`
	Name        string `json:"name,omitempty"`
	Bench       string `json:"bench,omitempty"`
	Scale       int    `json:"scale,omitempty"`
	Engine      string `json:"engine"`
	GeneratedAt string `json:"generated_at,omitempty"` // host time

	Axes    []AxisInfo    `json:"axes"`
	Points  []PointResult `json:"points"`
	Curves  []Curve       `json:"curves,omitempty"`
	Summary Summary       `json:"summary"`
}

// StripHostTime zeroes every wall-clock field so that reports from
// identical specs compare byte-for-byte.
func (r *Report) StripHostTime() {
	r.GeneratedAt = ""
	for i := range r.Points {
		r.Points[i].WallMs = 0
	}
}

// JSON renders the report as indented, key-stable JSON.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// finalize computes curves and the summary from the point rows. Points
// must be complete (one row per expanded point, in index order).
func (r *Report) finalize() {
	s := Summary{Total: len(r.Points), Best: -1, Worst: -1, Knee: -1}
	for i := range r.Points {
		p := &r.Points[i]
		switch p.Status {
		case PointOK:
			s.Ran++
			if p.WarmStart {
				s.WarmStarts++
			}
			if s.Best < 0 || p.Cycles < r.Points[s.Best].Cycles {
				s.Best = p.Index
			}
			if s.Worst < 0 || p.Cycles > r.Points[s.Worst].Cycles {
				s.Worst = p.Index
			}
		case PointInvalid:
			s.Invalid++
		case PointError:
			s.Failed++
		default:
			s.Skipped++
		}
	}
	r.Curves = r.buildCurves()
	if len(r.Curves) > 0 {
		s.Knee = kneeIndex(r.Curves[0].Rows)
	}
	r.Summary = s
}

// buildCurves slices the grid once per axis: the curve for axis i holds
// every other axis at its first expanded value.
func (r *Report) buildCurves() []Curve {
	var curves []Curve
	for i, ax := range r.Axes {
		c := Curve{Param: ax.Param}
		for j, other := range r.Axes {
			if j != i && len(other.Values) > 0 {
				c.Fixed = append(c.Fixed, ParamValue{Name: other.Param, Value: other.Values[0]})
			}
		}
		for pi := range r.Points {
			p := &r.Points[pi]
			if p.Status != PointOK || !onSlice(p.Params, i, r.Axes) {
				continue
			}
			c.Rows = append(c.Rows, CurveRow{
				Value: p.Params[i].Value, PointIndex: p.Index,
				Cycles: p.Cycles, IPC: p.IPC,
				L1DMisses: p.L1DMisses, MPKI: p.MPKI,
			})
		}
		if len(c.Rows) > 0 {
			curves = append(curves, c)
		}
	}
	return curves
}

// onSlice reports whether the point sits on the 1-D slice along axis
// `vary` (all other coordinates at their axis's first value).
func onSlice(params []ParamValue, vary int, axes []AxisInfo) bool {
	for j := range params {
		if j == vary {
			continue
		}
		if len(axes[j].Values) == 0 || params[j].Value != axes[j].Values[0] {
			return false
		}
	}
	return true
}

// kneeIndex finds the knee of a cycles-vs-value curve: normalize both
// coordinates to [0,1], draw the chord between the endpoints, and pick
// the row with maximum perpendicular distance from it (the Kneedle
// construction). Flat or short curves have no knee (-1). Ties resolve to
// the first (smallest-value) row, deterministically.
func kneeIndex(rows []CurveRow) int {
	if len(rows) < 3 {
		return -1
	}
	x0, x1 := float64(rows[0].Value), float64(rows[len(rows)-1].Value)
	var y0, y1 float64 = float64(rows[0].Cycles), float64(rows[len(rows)-1].Cycles)
	if x1 == x0 || y1 == y0 {
		return -1
	}
	best, bestDist := -1, 0.0
	for i := 1; i < len(rows)-1; i++ {
		nx := (float64(rows[i].Value) - x0) / (x1 - x0)
		ny := (float64(rows[i].Cycles) - y0) / (y1 - y0)
		// Distance from the normalized chord y = x (times 1/sqrt(2),
		// which cancels in the comparison).
		d := nx - ny
		if d < 0 {
			d = -d
		}
		if d > bestDist {
			best, bestDist = rows[i].PointIndex, d
		}
	}
	return best
}

// WriteCSV emits one row per point: the axis coordinates followed by the
// measured columns.
func (r *Report) WriteCSV(w io.Writer) error {
	for _, ax := range r.Axes {
		if _, err := fmt.Fprintf(w, "%s,", ax.Param); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "status,insts,cycles,ipc,mispredicts,l1d_misses,l1d_mpki,fast_share_pc,warm_start,warm_source"); err != nil {
		return err
	}
	for i := range r.Points {
		p := &r.Points[i]
		for _, pv := range p.Params {
			if _, err := fmt.Fprintf(w, "%d,", pv.Value); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.4f,%d,%d,%.3f,%.1f,%v,%s\n",
			p.Status, p.Insts, p.Cycles, p.IPC, p.Mispredicts,
			p.L1DMisses, p.MPKI, p.FastSharePc, p.WarmStart, p.WarmSource); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders an aligned comparative table plus the summary line.
func (r *Report) WriteText(w io.Writer) error {
	title := r.Name
	if title == "" {
		title = "sweep"
	}
	workload := r.Bench
	if workload == "" {
		workload = "(asm)"
	}
	fmt.Fprintf(w, "%s: %s scale %d, engine %s, %d points\n",
		title, workload, r.Scale, r.Engine, r.Summary.Total)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "point")
	for _, ax := range r.Axes {
		fmt.Fprintf(tw, "\t%s", ax.Param)
	}
	fmt.Fprintln(tw, "\tstatus\tcycles\tipc\tl1d_mpki\tfast%\twarm\tmark")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(tw, "%d", p.Index)
		for _, pv := range p.Params {
			fmt.Fprintf(tw, "\t%d", pv.Value)
		}
		warm := "cold"
		if p.WarmStart {
			warm = p.WarmSource
		}
		if p.Status != PointOK {
			fmt.Fprintf(tw, "\t%s\t-\t-\t-\t-\t-\t%s\n", p.Status, truncate(p.Error, 40))
			continue
		}
		fmt.Fprintf(tw, "\t%s\t%d\t%.3f\t%.3f\t%.1f\t%s\t%s\n",
			p.Status, p.Cycles, p.IPC, p.MPKI, p.FastSharePc, warm, mark(p.Index, r.Summary))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "ran %d/%d (%d warm starts, %d invalid, %d failed, %d skipped)\n",
		r.Summary.Ran, r.Summary.Total, r.Summary.WarmStarts,
		r.Summary.Invalid, r.Summary.Failed, r.Summary.Skipped)
	return err
}

func mark(idx int, s Summary) string {
	switch {
	case idx == s.Best && idx == s.Knee:
		return "best,knee"
	case idx == s.Best:
		return "best"
	case idx == s.Worst:
		return "worst"
	case idx == s.Knee:
		return "knee"
	}
	return ""
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
