package sweep

import (
	"context"
	"time"

	"facile/internal/obs"
	"facile/internal/parsim"
)

// Options configures one sweep execution.
type Options struct {
	// Backend executes points; nil means a fresh LocalBackend.
	Backend Backend

	// Workers bounds how many lineage groups run concurrently (default 1:
	// fully sequential, maximum warm reuse). Points inside one group are
	// always sequential so each hands its cache to the next.
	Workers int

	// Rec, when non-nil, receives sweep.* counters.
	Rec *obs.Recorder

	// OnPoint is called after each point settles (from executor
	// goroutines, possibly concurrently; rows arrive in within-group
	// order but groups interleave).
	OnPoint func(PointResult)
}

// Run expands the spec and executes every point, returning the
// comparative report. Points are ordered into lineage groups: same-key
// points run back to back so the backend can hand the action cache built
// by one to the next (a warm restart), while distinct groups run in
// parallel up to opt.Workers. Cancelling ctx stops new points; the report
// marks unrun points as skipped and Run returns it alongside ctx's error.
func Run(ctx context.Context, spec Spec, opt Options) (*Report, error) {
	points, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if opt.Backend == nil {
		opt.Backend = NewLocalBackend()
	}
	if opt.Workers < 1 {
		opt.Workers = 1
	}

	report := &Report{
		Schema:      ReportSchema,
		Name:        spec.Name,
		Bench:       spec.Bench,
		Scale:       spec.Scale,
		Engine:      spec.Engine,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Points:      make([]PointResult, len(points)),
	}
	for i := range spec.Axes {
		vals, _ := spec.Axes[i].expand() // Expand validated these already
		report.Axes = append(report.Axes, AxisInfo{Param: spec.Axes[i].Param, Values: vals})
	}

	// Group points by lineage, preserving expansion order within and
	// across groups (first-occurrence order). Non-memoizing points have
	// no lineage and each forms its own group.
	var groups [][]*Point
	byKey := map[string]int{}
	for i := range points {
		p := &points[i]
		if p.LineageKey == "" {
			groups = append(groups, []*Point{p})
			continue
		}
		gi, ok := byKey[p.LineageKey]
		if !ok {
			gi = len(groups)
			byKey[p.LineageKey] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], p)
	}

	settle := func(p *Point, row PointResult) {
		row.Index = p.Index
		row.Params = p.Params
		row.LineageKey = p.LineageKey
		report.Points[p.Index] = row
		if opt.OnPoint != nil {
			opt.OnPoint(row)
		}
		if reg := registry(opt.Rec); reg != nil {
			reg.Counter("sweep.points_" + row.Status).Inc()
			if row.WarmStart {
				reg.Counter("sweep.warm_starts").Inc()
			}
		}
	}

	runErr := parsim.ForEachCtx(ctx, len(groups), opt.Workers, func(gi int) error {
		for _, p := range groups[gi] {
			if p.Invalid != "" {
				settle(p, PointResult{Status: PointInvalid, Error: p.Invalid})
				continue
			}
			if ctx.Err() != nil {
				settle(p, PointResult{Status: PointSkipped, Error: context.Canceled.Error()})
				continue
			}
			res, err := opt.Backend.Run(ctx, JobSpec{
				Bench: spec.Bench, Scale: spec.Scale, Asm: spec.Asm,
				Engine: spec.Engine, Memoize: spec.Memoizing(),
				CacheCapBytes: spec.CacheCapBytes, MaxInsts: spec.MaxInsts,
				Uarch: p.Uarch, LineageKey: p.LineageKey,
			})
			switch {
			case err != nil && ctx.Err() != nil:
				settle(p, PointResult{Status: PointSkipped, Error: ctx.Err().Error()})
			case err != nil:
				settle(p, PointResult{Status: PointError, Error: err.Error()})
			default:
				settle(p, PointResult{
					Status: PointOK,
					Insts:  res.Result.Insts, Cycles: res.Result.Cycles,
					IPC:         res.Result.IPC(),
					Mispredicts: res.Result.Mispredicts,
					L1DMisses:   res.Result.L1DMisses,
					MPKI:        mpki(res.Result.L1DMisses, res.Result.Insts),
					FastSharePc: res.Stats.FastForwardedPc,
					WarmStart:   res.WarmStart, WarmSource: res.WarmSource,
					WarmEntries: res.WarmEntries, WallMs: res.WallMs,
				})
			}
		}
		return nil
	})

	// A canceled run leaves never-visited groups' rows zero-valued; mark
	// them skipped so every expanded point has a status.
	for i := range report.Points {
		if report.Points[i].Status == "" {
			report.Points[i] = PointResult{
				Index: points[i].Index, Params: points[i].Params,
				LineageKey: points[i].LineageKey,
				Status:     PointSkipped, Error: context.Canceled.Error(),
			}
		}
	}
	report.finalize()
	return report, runErr
}

func registry(rec *obs.Recorder) *obs.Registry {
	if rec == nil {
		return nil
	}
	return rec.Registry()
}

func mpki(misses, insts uint64) float64 {
	if insts == 0 {
		return 0
	}
	return 1000 * float64(misses) / float64(insts)
}
