package fleet

// End-to-end fleet tests: real serve.Servers behind httptest listeners,
// a real router in front, everything driven through the public HTTP
// surface with the stock serve.Client — the same wire path production
// takes. The two acceptance proofs live here: warm affinity (N
// same-lineage jobs → exactly one cold start fleet-wide, bit-identical
// results) and failover (kill the owning worker mid-stream → the job
// completes on the successor under the same fleet ID).

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"facile/internal/cachestore"
	"facile/internal/obs"
	"facile/internal/runcfg"
	"facile/internal/serve"
	"facile/internal/sweep"
)

// harness is one worker: a serve.Server, its listener, and its own
// recorder (so tests can audit per-worker counters).
type harness struct {
	s      *serve.Server
	ts     *httptest.Server
	rec    *obs.Recorder
	url    string
	name   string
	killed bool
}

func newHarness(t *testing.T, cfg serve.Config, cacheDir string) *harness {
	t.Helper()
	if cfg.Rec == nil {
		cfg.Rec = obs.NewRecorder(obs.Config{})
	}
	if cacheDir != "" {
		st, err := cachestore.Open(cacheDir, cachestore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	h := &harness{s: serve.New(cfg), rec: cfg.Rec}
	h.ts = httptest.NewServer(h.s.Handler())
	h.url = h.ts.URL
	t.Cleanup(func() {
		h.kill()
		h.s.Drain()
	})
	return h
}

// kill severs the worker from the network the way SIGKILL would: live
// connections die mid-stream and the port stops answering. The in-process
// compute keeps going, exactly like a partitioned node.
func (h *harness) kill() {
	if h.killed {
		return
	}
	h.killed = true
	// Close blocks until every connection is gone, but the router's
	// reconnect loops can slip a fresh connection in between a single
	// CloseClientConnections call and the listener teardown — so keep
	// severing until Close returns. From the fleet's perspective the
	// worker drops off the network all at once, as SIGKILL would.
	done := make(chan struct{})
	go func() {
		for {
			h.ts.CloseClientConnections()
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()
	h.ts.Close()
	close(done)
}

func (h *harness) counter(name string) uint64 {
	return h.rec.Registry().Counter(name).Load()
}

// newFleet wires n workers to a fresh router and returns a stock client
// aimed at the router's public listener.
func newFleet(t *testing.T, n int, cfg Config, mk func(i int) *harness) (*Router, []*harness, *serve.Client) {
	t.Helper()
	ws := make([]*harness, n)
	for i := range ws {
		ws[i] = mk(i)
	}
	r := NewRouter(cfg)
	t.Cleanup(r.Close)
	for _, h := range ws {
		resp, err := r.Register(RegisterRequest{URL: h.url})
		if err != nil {
			t.Fatal(err)
		}
		h.name = resp.Name
	}
	fts := httptest.NewServer(r.Handler())
	t.Cleanup(fts.Close)
	return r, ws, serve.NewClient(fts.URL)
}

func (r *Router) jobRecord(t *testing.T, id string) *routedJob {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.jobs[id]
	if j == nil {
		t.Fatalf("router lost job %s", id)
	}
	return j
}

// TestFleetAffinity is the affinity proof: N same-lineage jobs through
// the router land on one worker and warm-chain there — exactly one cold
// start fleet-wide — with results bit-identical to a single fsimd. The
// merged /v1/metrics must equal the sum of the per-worker registries.
func TestFleetAffinity(t *testing.T) {
	r, ws, c := newFleet(t, 3, Config{HeartbeatEvery: 50 * time.Millisecond},
		func(int) *harness { return newHarness(t, serve.Config{Workers: 2, QueueDepth: 16}, "") })

	ctx := context.Background()
	req := serve.JobRequest{Bench: "126.gcc", Scale: 2, Engine: runcfg.EngineFastsim, Memoize: true}
	const N = 5
	var finals []serve.JobStatus
	for i := 0; i < N; i++ {
		st, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		fin, err := c.WaitJob(ctx, st.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != serve.StateDone {
			t.Fatalf("job %d: state %s (err %q)", i, fin.State, fin.Error)
		}
		if fin.ID != st.ID {
			t.Fatalf("job %d: stream returned ID %s, submitted %s", i, fin.ID, st.ID)
		}
		finals = append(finals, fin)
	}

	cold := 0
	for _, f := range finals {
		if !f.WarmStart {
			cold++
		}
	}
	if cold != 1 {
		t.Fatalf("%d cold starts fleet-wide, want exactly 1", cold)
	}

	// All N landed on one worker; the other two never ran a job.
	busy := 0
	for _, h := range ws {
		if n := h.counter("serve.jobs_completed"); n > 0 {
			busy++
			if n != N {
				t.Fatalf("worker %s completed %d jobs, want all %d on one worker", h.name, n, N)
			}
		}
	}
	if busy != 1 {
		t.Fatalf("%d workers ran jobs, want 1 (affinity broken)", busy)
	}

	// Bit-identical to a single standalone fsimd.
	solo := newHarness(t, serve.Config{Workers: 1, QueueDepth: 4}, "")
	sc := serve.NewClient(solo.url)
	sst, err := sc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	sfin, err := sc.WaitJob(ctx, sst.ID, nil)
	if err != nil || sfin.State != serve.StateDone {
		t.Fatalf("solo run: %v / %+v", err, sfin.State)
	}
	for i, f := range finals {
		if f.Result == nil || sfin.Result == nil ||
			f.Result.Insts != sfin.Result.Insts || f.Result.Cycles != sfin.Result.Cycles ||
			!bytes.Equal(f.Result.Output, sfin.Result.Output) {
			t.Fatalf("fleet job %d result diverges from the single-worker run", i)
		}
	}

	// Fleet metrics are the sum of the per-worker registries.
	fm := r.Metrics(ctx)
	var sumCompleted, sumWarm uint64
	for _, h := range ws {
		sumCompleted += h.counter("serve.jobs_completed")
		sumWarm += h.counter("serve.warm_hits")
	}
	if fm.Counters["serve.jobs_completed"] != sumCompleted || sumCompleted != N {
		t.Fatalf("merged jobs_completed %d, per-worker sum %d, want %d",
			fm.Counters["serve.jobs_completed"], sumCompleted, N)
	}
	if fm.Counters["serve.warm_hits"] != sumWarm || sumWarm != N-1 {
		t.Fatalf("merged warm_hits %d, per-worker sum %d, want %d",
			fm.Counters["serve.warm_hits"], sumWarm, N-1)
	}
	wantRate := 100 * float64(N-1) / float64(N)
	if fm.Fleet.WarmHitRatePc != wantRate {
		t.Fatalf("fleet warm hit-rate %.1f%%, want %.1f%%", fm.Fleet.WarmHitRatePc, wantRate)
	}
	if fm.Fleet.Alive != 3 {
		t.Fatalf("fleet alive %d, want 3", fm.Fleet.Alive)
	}
}

// TestFleetFailover is the failover proof: kill the owning worker while
// the client streams the job's events through the router; the router
// must detect the death within its heartbeat window, resubmit on the
// successor, keep the stream open throughout, and deliver a terminal
// status under the original fleet ID — no job ID lost or duplicated.
func TestFleetFailover(t *testing.T) {
	r, ws, c := newFleet(t, 2,
		Config{HeartbeatEvery: 50 * time.Millisecond, FailAfter: 2},
		func(int) *harness { return newHarness(t, serve.Config{Workers: 2, QueueDepth: 16}, "") })

	ctx := context.Background()
	long := serve.JobRequest{Bench: "126.gcc", Scale: 150, Engine: runcfg.EngineFastsim,
		Memoize: true, ChunkInsts: 1024}
	st, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}

	var samples atomic.Int64
	type waitOut struct {
		fin serve.JobStatus
		err error
	}
	done := make(chan waitOut, 1)
	go func() {
		fin, err := c.WaitJob(ctx, st.ID, func([]byte) { samples.Add(1) })
		done <- waitOut{fin, err}
	}()

	// Wait until the job is demonstrably running on its owner, then pull
	// the plug on that worker.
	r.mu.Lock()
	owner := r.jobs[st.ID].worker
	r.mu.Unlock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		jst, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jst.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", jst.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var ownerH, successorH *harness
	for _, h := range ws {
		if h.name == owner {
			ownerH = h
		} else {
			successorH = h
		}
	}
	killedAt := time.Now()
	ownerH.kill()

	// The ejection must land within FailAfter heartbeats (plus probe
	// timeout slack).
	for {
		r.mu.Lock()
		state := r.workers[owner].state
		r.mu.Unlock()
		if state == WorkerDead {
			break
		}
		if time.Since(killedAt) > 5*time.Second {
			t.Fatal("dead worker never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The listener is gone and the fleet has moved on; stop the killed
	// worker's in-process compute too (a real SIGKILL would have). On a
	// small CI box the zombie job would otherwise starve the successor's
	// rerun of the very work being failed over.
	ownerH.s.Drain()

	// The successor must not have been collaterally ejected — a healthy
	// worker that merely answers probes slowly under load stays in.
	r.mu.Lock()
	succState := r.workers[successorH.name].state
	r.mu.Unlock()
	if succState == WorkerDead {
		t.Fatal("successor was ejected too; nothing left to fail over to")
	}

	var out waitOut
	select {
	case out = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("event stream never delivered a terminal status after failover")
	}
	if out.err != nil {
		t.Fatalf("event stream did not survive the failover: %v", out.err)
	}
	if out.fin.State != serve.StateDone {
		t.Fatalf("failed-over job finished %q (err %q), want done", out.fin.State, out.fin.Error)
	}
	if out.fin.ID != st.ID {
		t.Fatalf("job came back as %s, submitted %s: ID not preserved", out.fin.ID, st.ID)
	}

	// No job ID lost or duplicated: the fleet lists exactly one job, under
	// the original ID, and the successor ran exactly one.
	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("fleet job list %v, want exactly [%s]", list, st.ID)
	}
	if n := successorH.counter("serve.jobs_completed"); n != 1 {
		t.Fatalf("successor completed %d jobs, want 1", n)
	}
	j := r.jobRecord(t, st.ID)
	r.mu.Lock()
	reroutes, finalWorker := j.reroutes, j.worker
	r.mu.Unlock()
	if reroutes != 1 || finalWorker != successorH.name {
		t.Fatalf("job rerouted %d times to %s, want 1 reroute to %s", reroutes, finalWorker, successorH.name)
	}
	if n := r.counter("frouter.worker_ejections").Load(); n != 1 {
		t.Fatalf("ejections counter %d, want 1", n)
	}
}

// TestFleetCacheMigrationOnDeath: a lineage warmed on one worker
// survives that worker's death via the router's shadow — the successor
// imports the record during ejection recovery and the next job
// warm-starts with provenance "migrated".
func TestFleetCacheMigrationOnDeath(t *testing.T) {
	r, ws, c := newFleet(t, 2,
		Config{HeartbeatEvery: 50 * time.Millisecond, FailAfter: 2},
		func(int) *harness {
			return newHarness(t, serve.Config{Workers: 1, QueueDepth: 8}, t.TempDir())
		})

	ctx := context.Background()
	req := serve.JobRequest{Bench: "126.gcc", Scale: 2, Engine: runcfg.EngineFastsim, Memoize: true}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitJob(ctx, st.ID, nil)
	if err != nil || fin.State != serve.StateDone {
		t.Fatalf("seed job: %v / %s (%s)", err, fin.State, fin.Error)
	}
	if fin.WarmStart || fin.LineageKey == "" {
		t.Fatalf("seed job warm=%v lineage=%q, want a cold memoizing job", fin.WarmStart, fin.LineageKey)
	}
	lineage := fin.LineageKey

	j := r.jobRecord(t, st.ID)
	r.mu.Lock()
	owner := j.worker
	r.mu.Unlock()

	// Ensure the router's shadow holds the record before the owner dies
	// (the natural async refresh usually has it by now; the direct call
	// makes the test deterministic).
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.shadowRefresh(lineage, owner)
		r.mu.Lock()
		got := r.shadow[lineage] != nil
		r.mu.Unlock()
		if got {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router shadow never captured the lineage record")
		}
		time.Sleep(20 * time.Millisecond)
	}

	var ownerH, successorH *harness
	for _, h := range ws {
		if h.name == owner {
			ownerH = h
		} else {
			successorH = h
		}
	}
	ownerH.kill()

	// Ejection recovery migrates the lineage to the successor.
	deadline = time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		migrated := r.migrated[lineage]
		r.mu.Unlock()
		if migrated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lineage never migrated after owner death")
		}
		time.Sleep(20 * time.Millisecond)
	}

	st2, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := c.WaitJob(ctx, st2.ID, nil)
	if err != nil || fin2.State != serve.StateDone {
		t.Fatalf("post-migration job: %v / %s (%s)", err, fin2.State, fin2.Error)
	}
	if !fin2.WarmStart || fin2.WarmSource != serve.WarmSourceMigrated {
		t.Fatalf("post-migration job warm=%v source=%q, want a migrated warm start",
			fin2.WarmStart, fin2.WarmSource)
	}
	if n := successorH.counter("serve.jobs_completed"); n != 1 {
		t.Fatalf("successor completed %d jobs, want 1", n)
	}
	if fin2.Result == nil || fin.Result == nil ||
		fin2.Result.Insts != fin.Result.Insts || !bytes.Equal(fin2.Result.Output, fin.Result.Output) {
		t.Fatal("migrated warm run diverges from the original cold run")
	}
	if n := r.counter("frouter.migrations").Load(); n < 1 {
		t.Fatal("migration counter never incremented")
	}
}

// TestFleetSweepProxy: sweeps submit through the router under fleet IDs,
// run whole on one worker, and stream/settle exactly as against a single
// fsimd.
func TestFleetSweepProxy(t *testing.T) {
	_, ws, c := newFleet(t, 2, Config{HeartbeatEvery: 50 * time.Millisecond},
		func(int) *harness { return newHarness(t, serve.Config{Workers: 2, QueueDepth: 16}, "") })

	ctx := context.Background()
	req := serve.SweepRequest{Spec: sweep.Spec{
		Name:   "fleet-l1d",
		Bench:  "129.compress",
		Scale:  1,
		Engine: runcfg.EngineFastsim,
		Axes:   []sweep.Axis{{Param: "l1d.size_kb", Values: []int64{8, 16}}},
	}}
	st, err := c.SubmitSweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "fs-000001" {
		t.Fatalf("sweep ID %s, want a fleet-owned fs- ID", st.ID)
	}
	fin, err := c.WaitSweep(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != serve.SweepDone || fin.SettledPoints != 2 {
		t.Fatalf("sweep finished %s with %d/%d points", fin.State, fin.SettledPoints, fin.TotalPoints)
	}
	if fin.ID != st.ID {
		t.Fatalf("sweep status came back as %s, want %s", fin.ID, st.ID)
	}
	// The sweep ran whole on exactly one worker.
	busy := 0
	for _, h := range ws {
		if h.counter("serve.sweeps_done") > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("%d workers ran the sweep, want 1", busy)
	}
	// The fleet list carries the fleet ID too.
	sweeps, err := c.ListSweeps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 1 || sweeps[0].ID != st.ID {
		t.Fatalf("fleet sweep list %+v, want exactly [%s]", sweeps, st.ID)
	}
}

// TestFleetRegistrationLifecycle covers the registry edges: idempotent
// re-registration, resurrection after ejection, graceful deregistration,
// and the no-workers error surface.
func TestFleetRegistrationLifecycle(t *testing.T) {
	r := NewRouter(Config{HeartbeatEvery: 50 * time.Millisecond, FailAfter: 2})
	t.Cleanup(r.Close)
	ctx := context.Background()

	// Empty fleet: submissions bounce with 503-shaped errors.
	if _, err := r.SubmitJob(ctx, serve.JobRequest{Bench: "129.compress", Engine: runcfg.EngineFunc}); err != ErrNoWorkers {
		t.Fatalf("submit to empty fleet: %v, want ErrNoWorkers", err)
	}

	h := newHarness(t, serve.Config{Workers: 1, QueueDepth: 4}, "")
	first, err := r.Register(RegisterRequest{URL: h.url})
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.Register(RegisterRequest{URL: h.url})
	if err != nil || again.Name != first.Name {
		t.Fatalf("re-register renamed worker: %v %v", again, err)
	}

	// A registered worker serves traffic end to end.
	st, err := r.SubmitJob(ctx, serve.JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		jst, err := r.JobStatus(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jst.State == serve.StateDone {
			break
		}
		if jst.State == serve.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s (%s)", jst.State, jst.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Graceful deregistration empties the ring.
	if err := r.Deregister(first.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitJob(ctx, serve.JobRequest{Bench: "129.compress", Engine: runcfg.EngineFunc}); err != ErrNoWorkers {
		t.Fatalf("submit after deregister: %v, want ErrNoWorkers", err)
	}

	// Re-registration resurrects the same name and traffic flows again.
	back, err := r.Register(RegisterRequest{URL: h.url})
	if err != nil || back.Name != first.Name {
		t.Fatalf("resurrection: %v %v, want name %s", back, err, first.Name)
	}
	if _, err := r.SubmitJob(ctx, serve.JobRequest{Bench: "129.compress", Scale: 1, Engine: runcfg.EngineFunc}); err != nil {
		t.Fatalf("submit after resurrection: %v", err)
	}
}
