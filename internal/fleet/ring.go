// Package fleet is the multi-node front-end for fsimd: a router that
// speaks the same HTTP/JSON job API as a single worker but consistent-
// hashes every submission by its cache-lineage key across a registered
// worker fleet, so same-lineage jobs always land on the worker that
// already holds their warm action cache. Facile's performance story is
// memoization amortization — fast-forwarding only pays off when a job
// lands where its cache is warm — and the router is what keeps that true
// past one process: scale-out without affinity would turn every added
// worker into a new cold start.
//
// The pieces: a consistent-hash ring with virtual nodes and bounded-load
// placement (ring.go), a worker registry with /healthz heartbeats,
// ejection, failover resubmission and warm-cache migration (router.go),
// and the HTTP front-end with fleet-wide metric merging (http.go,
// metrics.go).
package fleet

import (
	"sort"
	"strconv"

	"facile/internal/runcfg"
)

// DefaultVNodes is the virtual-node count per member. 64 vnodes keep the
// per-member share of the hash space within a few percent of fair for
// fleets of 2–50 workers.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. It is not
// self-locking: the router guards it with its own mutex, since ring
// queries are always paired with registry state (liveness, load) that
// must be read under the same critical section.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

// NewRing builds an empty ring with the given virtual-node count per
// member (0 = DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

// vnodeHash places virtual node i of a member. The label goes through
// the same exported lineage hash as the keys: placement must be a pure
// function of (member, i) so every router instance agrees.
func vnodeHash(member string, i int) uint64 {
	return runcfg.LineageHash(member + "#" + strconv.Itoa(i))
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{vnodeHash(member, i), member})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove ejects a member and its hash range (idempotent). The range is
// implicitly reassigned: keys that hashed to the removed member's vnodes
// now fall through to the next point on the circle.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the members, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// walk visits distinct members clockwise from key's position, in ring
// order, until visit returns false or every member has been seen.
func (r *Ring) walk(key string, visit func(member string) bool) {
	if len(r.points) == 0 {
		return
	}
	h := runcfg.LineageHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		if !visit(p.member) {
			return
		}
		if len(seen) == len(r.members) {
			return
		}
	}
}

// Owner returns the key's primary owner — the first member clockwise
// from the key's hash — ignoring load. ok is false on an empty ring.
func (r *Ring) Owner(key string) (member string, ok bool) {
	r.walk(key, func(m string) bool {
		member, ok = m, true
		return false
	})
	return member, ok
}

// Pick returns the first member clockwise from the key whose load
// (per the caller's load function) is strictly below bound — the
// bounded-load variant of consistent hashing: a saturated owner
// overflows to its ring successor instead of queueing behind itself,
// and the overflow target is itself deterministic, so even spilled
// lineages stay sticky while the load lasts. When every member is at or
// over bound, the primary owner is returned anyway (the fleet is
// uniformly saturated; affinity beats a random spill). ok is false only
// on an empty ring.
func (r *Ring) Pick(key string, load func(member string) float64, bound float64) (member string, ok bool) {
	first := ""
	r.walk(key, func(m string) bool {
		if first == "" {
			first = m
		}
		if load == nil || load(m) < bound {
			member, ok = m, true
			return false
		}
		return true
	})
	if !ok && first != "" {
		return first, true
	}
	return member, ok
}

// Successor returns the first member clockwise from the key that is not
// `not` — the failover target when the key's owner has been ejected or
// is being avoided. ok is false when no other member exists.
func (r *Ring) Successor(key, not string) (member string, ok bool) {
	r.walk(key, func(m string) bool {
		if m == not {
			return true
		}
		member, ok = m, true
		return false
	})
	return member, ok
}
