package fleet

// Fleet-wide metric merging. Each worker exposes its own obs registry at
// /v1/metrics; the router pulls them all, merges the mergeable parts
// (counters and histograms sum — "jobs completed across the fleet" is a
// meaningful number) and keeps the rest apart (gauges are point-in-time
// occupancy; summing two workers' warm_bytes would invent a cache no
// process has). The router's own registry rides along unmerged so
// routing behavior (reroutes, migrations, ejections) is observable from
// the same endpoint.

import (
	"context"
	"net/http"
	"sync"

	"facile/internal/obs"
)

// FleetSummary is the headline block of the merged metrics body.
type FleetSummary struct {
	Workers int `json:"workers"`
	Alive   int `json:"alive"`
	// WarmHitRatePc is the fleet-wide warm hit-rate: the share of
	// completed jobs (across every worker) that warm-started from any
	// source. The whole point of affinity routing is keeping this close
	// to its single-node value as the fleet grows.
	WarmHitRatePc float64 `json:"warm_hit_rate_pc"`
	JobsCompleted uint64  `json:"jobs_completed"`
	WarmHits      uint64  `json:"warm_hits"`
}

// FleetMetrics is the GET /v1/metrics body.
type FleetMetrics struct {
	Fleet FleetSummary `json:"fleet"`
	// Counters and Histograms are summed across every reachable worker.
	Counters   map[string]uint64                `json:"counters"`
	Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
	// GaugesByWorker keeps point-in-time values apart, keyed by worker
	// name.
	GaugesByWorker map[string]map[string]int64 `json:"gauges_by_worker"`
	// Router is the router's own registry (frouter.* counters).
	Router obs.Snapshot `json:"router"`
	// Unreachable lists workers that did not answer the metrics pull;
	// their share is missing from the sums above.
	Unreachable []string `json:"unreachable,omitempty"`
}

// Metrics pulls and merges every live worker's registry.
func (r *Router) Metrics(ctx context.Context) FleetMetrics {
	workers := r.aliveWorkers()
	type pulled struct {
		name string
		snap obs.Snapshot
		err  error
	}
	out := make([]pulled, len(workers))
	var wg sync.WaitGroup
	for i, wk := range workers {
		wg.Add(1)
		go func(i int, wk *Worker) {
			defer wg.Done()
			body, err := wk.client.Metrics(ctx)
			if err != nil {
				out[i] = pulled{name: wk.name, err: err}
				return
			}
			snap, err := obs.ParseSnapshot(body)
			out[i] = pulled{name: wk.name, snap: snap, err: err}
		}(i, wk)
	}
	wg.Wait()

	var snaps []obs.Snapshot
	fm := FleetMetrics{GaugesByWorker: map[string]map[string]int64{}}
	for _, p := range out {
		if p.err != nil {
			fm.Unreachable = append(fm.Unreachable, p.name)
			continue
		}
		snaps = append(snaps, p.snap)
		if len(p.snap.Gauges) > 0 {
			fm.GaugesByWorker[p.name] = p.snap.Gauges
		}
	}
	merged := obs.Merge(snaps...)
	fm.Counters = merged.Counters
	fm.Histograms = merged.Histograms
	fm.Router = r.rec.Registry().Snapshot()

	r.mu.Lock()
	fm.Fleet.Workers = len(r.workers)
	r.mu.Unlock()
	fm.Fleet.Alive = len(workers) - len(fm.Unreachable)
	fm.Fleet.JobsCompleted = merged.Counters["serve.jobs_completed"]
	fm.Fleet.WarmHits = merged.Counters["serve.warm_hits"]
	if fm.Fleet.JobsCompleted > 0 {
		fm.Fleet.WarmHitRatePc = 100 * float64(fm.Fleet.WarmHits) / float64(fm.Fleet.JobsCompleted)
	}
	return fm
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Metrics(req.Context()))
}
