package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"facile/internal/obs"
	"facile/internal/serve"
)

// Sentinel errors, mapped to HTTP statuses by the front-end.
var (
	ErrNoWorkers    = errors.New("fleet: no live workers registered")
	ErrUnknownJob   = errors.New("fleet: unknown job")
	ErrUnknownSweep = errors.New("fleet: unknown sweep")
	ErrClosed       = errors.New("fleet: router closed")
)

// Worker states.
const (
	WorkerHealthy  = "healthy"
	WorkerDegraded = "degraded" // alive but shedding: saturated pool, pressured queue, or degraded store
	WorkerDead     = "dead"     // ejected after FailAfter consecutive failed probes
)

// Config sizes a Router.
type Config struct {
	// HeartbeatEvery is the health-check interval (default 500ms). The
	// failover proof is phrased against it: a dead worker is detected
	// within FailAfter heartbeats.
	HeartbeatEvery time.Duration
	// ProbeTimeout bounds one /healthz probe (default: 4×HeartbeatEvery,
	// at least 1s). Deliberately generous relative to the heartbeat: a
	// dead worker fails its probe instantly (connection refused), so a
	// long timeout does not slow real death detection — it only protects
	// a busy-but-alive worker from being ejected because a probe response
	// lost a scheduling race under load.
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures eject a worker
	// (default 2).
	FailAfter int
	// VNodes is the virtual-node count per worker (default DefaultVNodes).
	VNodes int
	// ShadowBudget caps the router's in-memory shadow of warm-cache
	// records, its migration source of last resort when the old owner is
	// already dead (default 256 MiB; 0 keeps the default, negative
	// disables the shadow).
	ShadowBudget int64
	// Rec is the router's own observability registry; one is created when
	// nil.
	Rec *obs.Recorder
	// HTTP is the client used for all worker calls except probes (which
	// use a probe-timeout clone). Defaults to a fresh client.
	HTTP *http.Client
}

// Worker is one registered fsimd. Mutable fields are guarded by the
// router mutex; WorkerStatus snapshots them for the API.
type Worker struct {
	name   string
	url    string
	client *serve.Client

	state        string
	fails        int
	lastSeen     time.Time
	health       serve.Health
	registeredAt time.Time
}

// routedJob is the router-side record of one submission. The router owns
// the job ID space: a job keeps its fleet ID across failover
// resubmissions, which is what makes "no job ID is lost or duplicated"
// checkable at all.
type routedJob struct {
	id      string
	req     serve.JobRequest
	lineage string

	worker   string // current worker name
	remoteID string // worker-side job ID
	attempts int    // submissions performed (1 = never rerouted)
	reroutes int

	terminal bool
	canceled bool
	failed   string // terminal router-side failure (no worker would take it)
	last     serve.JobStatus

	queuedAt time.Time
}

// routedSweep maps a fleet sweep ID onto the worker running it. Sweeps
// pin to one worker (their points chain warm caches there); they do not
// fail over — a sweep on a dead worker reports failed.
type routedSweep struct {
	id       string
	worker   string
	remoteID string
	lineage  string
}

// shadowRec is one lineage's most recent exported warm-cache record.
type shadowRec struct {
	blob    []byte
	fetched time.Time
}

// Router is the fleet front-end: worker registry, consistent-hash ring,
// job table, heartbeat loop.
type Router struct {
	cfg Config
	rec *obs.Recorder
	hc  *http.Client

	mu      sync.Mutex
	ring    *Ring
	workers map[string]*Worker
	byURL   map[string]string
	nameSeq int

	assign   map[string]string // lineage key -> worker name
	migrated map[string]bool   // lineages whose record the router moved

	jobs   map[string]*routedJob
	order  []string
	jobSeq uint64

	sweeps     map[string]*routedSweep
	sweepOrder []string
	sweepSeq   uint64

	shadow      map[string]*shadowRec
	shadowBytes int64

	closed bool
	stop   context.CancelFunc
	ctx    context.Context
	wg     sync.WaitGroup
}

// NewRouter builds and starts a router (its heartbeat loop runs until
// Close).
func NewRouter(cfg Config) *Router {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 4 * cfg.HeartbeatEvery
		if cfg.ProbeTimeout < time.Second {
			cfg.ProbeTimeout = time.Second
		}
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.ShadowBudget == 0 {
		cfg.ShadowBudget = 256 << 20
	}
	rec := cfg.Rec
	if rec == nil {
		rec = obs.NewRecorder(obs.Config{})
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{
		cfg:      cfg,
		rec:      rec,
		hc:       hc,
		ring:     NewRing(cfg.VNodes),
		workers:  map[string]*Worker{},
		byURL:    map[string]string{},
		assign:   map[string]string{},
		migrated: map[string]bool{},
		jobs:     map[string]*routedJob{},
		sweeps:   map[string]*routedSweep{},
		shadow:   map[string]*shadowRec{},
		ctx:      ctx,
		stop:     cancel,
	}
	r.wg.Add(1)
	go r.heartbeatLoop()
	return r
}

// Recorder returns the router's own observability recorder.
func (r *Router) Recorder() *obs.Recorder { return r.rec }

// Close stops the heartbeat loop and all failover goroutines.
func (r *Router) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.stop()
	r.wg.Wait()
}

func (r *Router) counter(name string) *obs.Counter { return r.rec.Registry().Counter(name) }
func (r *Router) gauge(name string) *obs.Gauge     { return r.rec.Registry().Gauge(name) }

// --- registration ----------------------------------------------------------

// RegisterRequest is the POST /v1/workers body a worker self-registers
// with.
type RegisterRequest struct {
	URL  string `json:"url"`            // worker base URL, e.g. http://10.0.0.3:8764
	Name string `json:"name,omitempty"` // optional stable name; assigned when empty
}

// RegisterResponse tells the worker its fleet name and how often it is
// probed (re-registering more often than HeartbeatMs is pointless).
type RegisterResponse struct {
	Name        string `json:"name"`
	HeartbeatMs int64  `json:"heartbeat_ms"`
}

// Register adds a worker (idempotent by URL; a re-register of a dead
// worker resurrects it and re-adds its hash range). Registration marks
// the worker healthy pending its first probe: the registrant just proved
// liveness by reaching us.
func (r *Router) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.URL == "" {
		return RegisterResponse{}, fmt.Errorf("fleet: register: empty worker url")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return RegisterResponse{}, ErrClosed
	}
	name := r.byURL[req.URL]
	if name == "" {
		name = req.Name
		if name == "" || r.workers[name] != nil {
			r.nameSeq++
			name = fmt.Sprintf("w%d", r.nameSeq)
		}
		r.workers[name] = &Worker{
			name:         name,
			url:          req.URL,
			client:       &serve.Client{Base: req.URL, HC: r.hc},
			state:        WorkerHealthy,
			lastSeen:     time.Now(),
			registeredAt: time.Now(),
		}
		r.byURL[req.URL] = name
		r.ring.Add(name)
		r.counter("frouter.workers_registered").Inc()
	} else if w := r.workers[name]; w.state == WorkerDead {
		w.state = WorkerHealthy
		w.fails = 0
		w.lastSeen = time.Now()
		r.ring.Add(name)
		r.counter("frouter.workers_rejoined").Inc()
	} else {
		w.lastSeen = time.Now() // keepalive re-register
	}
	r.gauge("frouter.workers").Set(int64(len(r.ring.members)))
	return RegisterResponse{Name: name, HeartbeatMs: r.cfg.HeartbeatEvery.Milliseconds()}, nil
}

// Deregister removes a worker gracefully (a draining fsimd says goodbye
// so the router stops routing to it instead of burning FailAfter probes).
func (r *Router) Deregister(name string) error {
	r.mu.Lock()
	w := r.workers[name]
	if w == nil {
		r.mu.Unlock()
		return fmt.Errorf("fleet: unknown worker %q", name)
	}
	lineages, jobs := r.ejectLocked(w, "deregistered")
	r.mu.Unlock()
	r.recoverFrom(w, lineages, jobs)
	return nil
}

// --- placement -------------------------------------------------------------

// loadOf scores a worker for bounded-load placement: 0 when healthy,
// 1 when shedding (degraded). The bound of 0.5 in pickLocked means "skip
// shedding workers unless everyone is shedding".
func loadOf(w *Worker) float64 {
	if w.state != WorkerHealthy {
		return 1
	}
	return 0
}

// pickLocked chooses a worker for a key via bounded-load consistent
// hashing over the live ring, skipping the avoid set (workers that
// already refused this submission). Callers hold r.mu.
func (r *Router) pickLocked(key string, avoid map[string]bool) (*Worker, error) {
	name, ok := r.ring.Pick(key, func(m string) float64 {
		if avoid[m] {
			return 2 // above any bound: never picked while alternatives exist
		}
		return loadOf(r.workers[m])
	}, 0.5)
	if !ok || avoid[name] {
		return nil, ErrNoWorkers
	}
	return r.workers[name], nil
}

// routeLocked resolves the worker for a submission. Memoizing jobs
// (lineage != "") are sticky: once a lineage is assigned, every job
// follows it to the same worker while that worker lives — warm affinity
// beats load shedding, because a warm replay is cheaper than a cold
// start on an idle node. reassigned reports that an existing assignment
// moved (the caller should migrate the lineage's warm record).
func (r *Router) routeLocked(lineage, spreadKey string, avoid map[string]bool) (w *Worker, reassigned bool, err error) {
	if lineage == "" {
		w, err = r.pickLocked(spreadKey, avoid)
		return w, false, err
	}
	if cur := r.assign[lineage]; cur != "" && !avoid[cur] {
		if cw := r.workers[cur]; cw != nil && cw.state != WorkerDead {
			return cw, false, nil
		}
	}
	w, err = r.pickLocked(lineage, avoid)
	if err != nil {
		return nil, false, err
	}
	old := r.assign[lineage]
	r.assign[lineage] = w.name
	return w, old != "" && old != w.name, nil
}

// --- heartbeats and failover -----------------------------------------------

func (r *Router) heartbeatLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			r.heartbeat()
		}
	}
}

// heartbeat probes every live worker once, updates states, ejects the
// dead, and kicks off recovery for their lineages and in-flight jobs.
func (r *Router) heartbeat() {
	r.mu.Lock()
	var probes []*Worker
	for _, w := range r.workers {
		if w.state != WorkerDead {
			probes = append(probes, w)
		}
	}
	r.mu.Unlock()

	type probeResult struct {
		w   *Worker
		h   serve.Health
		err error
	}
	results := make(chan probeResult, len(probes))
	for _, w := range probes {
		go func(w *Worker) {
			ctx, cancel := context.WithTimeout(r.ctx, r.cfg.ProbeTimeout)
			defer cancel()
			h, err := w.client.Health(ctx)
			results <- probeResult{w, h, err}
		}(w)
	}

	type ejected struct {
		w        *Worker
		lineages []string
		jobs     []*routedJob
	}
	var ejections []ejected
	var refresh []*Worker
	for range probes {
		res := <-results
		r.mu.Lock()
		w := res.w
		if w.state == WorkerDead { // ejected by a concurrent path
			r.mu.Unlock()
			continue
		}
		if res.err != nil {
			w.fails++
			r.counter("frouter.heartbeat_failures").Inc()
			if w.fails >= r.cfg.FailAfter {
				lineages, jobs := r.ejectLocked(w, "heartbeat")
				ejections = append(ejections, ejected{w, lineages, jobs})
			}
			r.mu.Unlock()
			continue
		}
		w.fails = 0
		w.lastSeen = time.Now()
		w.health = res.h
		switch {
		case res.h.Status == "draining":
			// A draining worker rejects submissions; treat as shedding.
			w.state = WorkerDegraded
		case res.h.Status == "degraded":
			w.state = WorkerDegraded
		default:
			w.state = WorkerHealthy
		}
		if r.workerHasOpenJobsLocked(w.name) {
			refresh = append(refresh, w)
		}
		r.mu.Unlock()
	}

	for _, e := range ejections {
		r.recoverFrom(e.w, e.lineages, e.jobs)
	}
	for _, w := range refresh {
		r.refreshJobs(w)
	}
}

// workerHasOpenJobsLocked reports whether any routed job is in flight on
// the worker; callers hold r.mu.
func (r *Router) workerHasOpenJobsLocked(name string) bool {
	for _, j := range r.jobs {
		if !j.terminal && j.worker == name && j.remoteID != "" {
			return true
		}
	}
	return false
}

// ejectLocked removes a worker from the ring and collects what must be
// recovered: the lineages assigned to it and its in-flight jobs. Callers
// hold r.mu and run recoverFrom with the result after unlocking.
func (r *Router) ejectLocked(w *Worker, why string) (lineages []string, jobs []*routedJob) {
	if w.state == WorkerDead {
		return nil, nil
	}
	w.state = WorkerDead
	r.ring.Remove(w.name)
	r.counter("frouter.worker_ejections").Inc()
	r.gauge("frouter.workers").Set(int64(len(r.ring.members)))
	for lineage, owner := range r.assign {
		if owner == w.name {
			lineages = append(lineages, lineage)
		}
	}
	for _, j := range r.jobs {
		if !j.terminal && j.worker == w.name {
			jobs = append(jobs, j)
		}
	}
	_ = why
	return lineages, jobs
}

// recoverFrom reassigns a dead worker's hash range: each of its lineages
// is re-placed on the ring and its warm record migrated to the successor,
// then every in-flight job is resubmitted there with jittered backoff.
// Migration runs before resubmission so the resubmitted jobs start warm.
func (r *Router) recoverFrom(dead *Worker, lineages []string, jobs []*routedJob) {
	for _, lineage := range lineages {
		r.mu.Lock()
		w, _, err := r.routeLocked(lineage, lineage, nil)
		r.mu.Unlock()
		if err != nil {
			continue // no workers left; the next register re-places lazily
		}
		r.migrate(lineage, dead, w)
	}
	for _, j := range jobs {
		r.wg.Add(1)
		go func(j *routedJob) {
			defer r.wg.Done()
			r.failover(j)
		}(j)
	}
}

// failover resubmits one in-flight job to its lineage's current worker
// (the ring successor after an ejection). It keeps trying — jittered
// backoff between rounds, 429-absorption inside each round — until the
// job is accepted somewhere, canceled, or the router closes.
func (r *Router) failover(j *routedJob) {
	bo := serve.DefaultBackoff
	for attempt := 0; ; attempt++ {
		r.mu.Lock()
		if r.closed || j.terminal || j.canceled {
			r.mu.Unlock()
			return
		}
		w, _, err := r.routeLocked(j.lineage, j.id, nil)
		r.mu.Unlock()
		if err == nil {
			ctx, cancel := context.WithTimeout(r.ctx, 30*time.Second)
			st, serr := w.client.SubmitRetry(ctx, j.req)
			cancel()
			if serr == nil {
				r.mu.Lock()
				j.worker = w.name
				j.remoteID = st.ID
				j.attempts++
				j.reroutes++
				j.last = st
				r.mu.Unlock()
				r.counter("frouter.jobs_rerouted").Inc()
				return
			}
			var se *serve.StatusError
			if errors.As(serr, &se) && se.Code < 500 && se.Code != http.StatusTooManyRequests {
				// The successor understood the request and rejected it for
				// cause (a validation-level refusal): terminal, not retryable.
				r.mu.Lock()
				j.terminal = true
				j.failed = fmt.Sprintf("failover resubmission rejected by %s: %v", w.name, serr)
				r.mu.Unlock()
				return
			}
		}
		t := time.NewTimer(boDelay(bo, attempt))
		select {
		case <-r.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// boDelay exposes the backoff pacing for the failover loop (serve owns
// the jitter policy; the router reuses it rather than re-inventing one).
func boDelay(b serve.Backoff, attempt int) time.Duration { return b.Delay(attempt) }

// --- migration and the shadow ----------------------------------------------

// migrate moves one lineage's persisted warm-cache record to the worker
// now owning the lineage, through the workers' /v1/caches export/import
// API. Sources, in order: the old owner (when it is still alive — a
// rebalance, not a death), any other live worker whose store still holds
// the record from an earlier tenure, and finally the router's in-memory
// shadow. Every path is best-effort: a failed migration costs one cold
// start, never a failed job.
func (r *Router) migrate(lineage string, from, to *Worker) {
	if lineage == "" || to == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.ctx, 30*time.Second)
	defer cancel()

	// The target may already hold the record (it ran this lineage before,
	// or shares a store directory); importing an older copy over it would
	// be a regression.
	if metas, err := to.client.ListCaches(ctx); err == nil {
		for _, m := range metas {
			if m.Key == lineage {
				return
			}
		}
	}

	var sources []*Worker
	if from != nil && from.state != WorkerDead {
		sources = append(sources, from)
	}
	r.mu.Lock()
	for _, w := range r.workers {
		if w.state != WorkerDead && w != to && w != from {
			sources = append(sources, w)
		}
	}
	r.mu.Unlock()

	var blob []byte
	for _, src := range sources {
		if b, err := src.client.ExportCache(ctx, lineage); err == nil {
			blob = b
			break
		}
	}
	if blob == nil {
		r.mu.Lock()
		if rec := r.shadow[lineage]; rec != nil {
			blob = rec.blob
		}
		r.mu.Unlock()
		if blob != nil {
			r.counter("frouter.migrations_from_shadow").Inc()
		}
	}
	if blob == nil {
		r.counter("frouter.migrations_cold").Inc()
		return
	}
	if err := to.client.ImportCache(ctx, lineage, blob); err != nil {
		r.counter("frouter.migration_errors").Inc()
		return
	}
	r.mu.Lock()
	r.migrated[lineage] = true
	r.mu.Unlock()
	r.counter("frouter.migrations").Inc()
}

// shadowRefresh pulls the lineage's current record from the worker that
// just finished a job of that lineage, keeping the router's in-memory
// copy fresh enough to seed a successor when the whole worker (store and
// all) disappears. Disabled by a negative ShadowBudget; skipped silently
// when the worker runs without a store.
func (r *Router) shadowRefresh(lineage, workerName string) {
	if r.cfg.ShadowBudget < 0 || lineage == "" {
		return
	}
	r.mu.Lock()
	w := r.workers[workerName]
	dead := w == nil || w.state == WorkerDead
	r.mu.Unlock()
	if dead {
		return
	}
	ctx, cancel := context.WithTimeout(r.ctx, 30*time.Second)
	defer cancel()
	blob, err := w.client.ExportCache(ctx, lineage)
	if err != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.shadow[lineage]; old != nil {
		r.shadowBytes -= int64(len(old.blob))
	}
	r.shadow[lineage] = &shadowRec{blob: blob, fetched: time.Now()}
	r.shadowBytes += int64(len(blob))
	for r.shadowBytes > r.cfg.ShadowBudget {
		oldestKey := ""
		var oldest time.Time
		for k, rec := range r.shadow {
			if oldestKey == "" || rec.fetched.Before(oldest) {
				oldestKey, oldest = k, rec.fetched
			}
		}
		if oldestKey == "" {
			break
		}
		r.shadowBytes -= int64(len(r.shadow[oldestKey].blob))
		delete(r.shadow, oldestKey)
	}
	r.gauge("frouter.shadow_bytes").Set(r.shadowBytes)
}

// refreshJobs reconciles the router's view of a worker's jobs from the
// worker's own job list (cheap: one GET per heartbeat, only for workers
// with open routed jobs).
func (r *Router) refreshJobs(w *Worker) {
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.ProbeTimeout)
	defer cancel()
	sts, err := w.client.List(ctx)
	if err != nil {
		return
	}
	byID := make(map[string]serve.JobStatus, len(sts))
	for _, st := range sts {
		byID[st.ID] = st
	}
	r.mu.Lock()
	var finished []*routedJob
	for _, j := range r.jobs {
		if j.terminal || j.worker != w.name || j.remoteID == "" {
			continue
		}
		st, ok := byID[j.remoteID]
		if !ok {
			continue
		}
		j.last = st
		if isTerminalState(st.State) {
			j.terminal = true
			finished = append(finished, j)
		}
	}
	r.mu.Unlock()
	for _, j := range finished {
		r.noteFinished(j)
	}
}

// isTerminalState reports whether a worker-side job state is terminal
// from the router's perspective. A requeued job (worker drain) counts:
// the worker is going away; the job will be resurrected by the worker's
// own spool on restart, not by the router.
func isTerminalState(s string) bool {
	switch s {
	case serve.StateDone, serve.StateFailed, serve.StateCanceled, serve.StateRequeued:
		return true
	}
	return false
}

// noteFinished runs follow-ups for a job observed terminal: a completed
// memoizing job refreshes the lineage's shadow record.
func (r *Router) noteFinished(j *routedJob) {
	r.mu.Lock()
	state, lineage, worker := j.last.State, j.lineage, j.worker
	r.mu.Unlock()
	if state == serve.StateDone && lineage != "" {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.shadowRefresh(lineage, worker)
		}()
	}
}
