package fleet

// Worker-side registration helpers. An fsimd started with -register
// calls RegisterWorker against the router and keeps calling it on a
// keepalive cadence: registration is idempotent by URL, and a
// re-register after the router restarted (or after the worker was
// ejected during a network partition) resurrects the worker and its
// hash range without operator intervention.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RegisterWorker announces a worker to the router at routerURL. The
// returned response carries the fleet name to deregister under and the
// router's heartbeat period (re-registering much faster than that is
// pointless).
func RegisterWorker(ctx context.Context, hc *http.Client, routerURL string, req RegisterRequest) (RegisterResponse, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	body, err := json.Marshal(req)
	if err != nil {
		return RegisterResponse{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		routerURL+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return RegisterResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(hreq)
	if err != nil {
		return RegisterResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return RegisterResponse{}, fmt.Errorf("fleet: register: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(blob))
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return RegisterResponse{}, err
	}
	return rr, nil
}

// DeregisterWorker removes the worker gracefully, so a draining fsimd
// stops receiving traffic at once instead of burning failed probes.
func DeregisterWorker(ctx context.Context, hc *http.Client, routerURL, name string) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		routerURL+"/v1/workers/"+name, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("fleet: deregister: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(blob))
	}
	return nil
}

// KeepRegistered registers the worker and re-registers it on a cadence
// derived from the router's heartbeat (never faster than 5s).
// Registration failures are retried at the same cadence — a router that
// is down at worker startup is found when it comes back. The returned
// stop function ends the keepalive loop and deregisters the worker
// (best effort); call it at drain time.
func KeepRegistered(hc *http.Client, routerURL string, req RegisterRequest, logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var name string
	every := 5 * time.Second
	register := func() {
		rctx, rcancel := context.WithTimeout(ctx, 10*time.Second)
		defer rcancel()
		rr, err := RegisterWorker(rctx, hc, routerURL, req)
		if err != nil {
			if ctx.Err() == nil {
				logf("fleet registration with %s failed (will retry): %v", routerURL, err)
			}
			return
		}
		if rr.Name != name {
			logf("registered with fleet router %s as %q", routerURL, rr.Name)
			name = rr.Name
			req.Name = rr.Name // keep the assigned name across re-registers
		}
		if hb := time.Duration(rr.HeartbeatMs) * time.Millisecond; 4*hb > every {
			every = 4 * hb
		}
	}
	register()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			t := time.NewTimer(every)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
				register()
			}
		}
	}()
	return func() {
		cancel()
		<-done
		if name == "" {
			return
		}
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer dcancel()
		if err := DeregisterWorker(dctx, hc, routerURL, name); err != nil {
			logf("fleet deregistration failed: %v", err)
		}
	}
}
