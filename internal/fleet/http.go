package fleet

// The fleet front-end speaks the same HTTP/JSON surface as a single
// fsimd (clients point fbench/fsweep at the router unchanged), plus the
// fleet-only endpoints: worker registration, topology, and merged
// metrics.
//
//	POST   /v1/workers          worker self-registration (RegisterRequest)
//	DELETE /v1/workers/{name}   graceful deregistration
//	GET    /v1/fleet            topology: workers, load, assignments
//	GET    /v1/metrics          fleet-wide merge of every worker's metrics
//	                            (counters/histograms summed, gauges by
//	                            worker) plus the router's own registry
//
// plus the whole single-worker surface (/v1/jobs, /v1/sweeps, /v1/caches,
// /healthz) with fleet semantics: router-owned IDs, affinity placement,
// failover, and event streams that survive a worker death by reconnecting
// to the failover successor.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"facile/internal/cachestore"
	"facile/internal/serve"
)

// Handler returns the router's API mux.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", r.handleRegister)
	mux.HandleFunc("DELETE /v1/workers/{name}", r.handleDeregister)
	mux.HandleFunc("GET /v1/fleet", r.handleFleet)
	mux.HandleFunc("GET /v1/metrics", r.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", r.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", r.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleCancel)
	mux.HandleFunc("POST /v1/sweeps", r.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", r.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", r.handleSweepStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", r.handleSweepEvents)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", r.handleSweepCancel)
	mux.HandleFunc("GET /v1/caches", r.handleCacheList)
	mux.HandleFunc("GET /v1/caches/{key}", r.handleCacheExport)
	mux.HandleFunc("PUT /v1/caches/{key}", r.handleCacheImport)
	mux.HandleFunc("DELETE /v1/caches/{key}", r.handleCacheDelete)
	mux.HandleFunc("GET /healthz", r.handleHealth)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr maps router errors onto the single-worker wire vocabulary:
// worker StatusErrors forward verbatim (a 429 from the chosen worker IS
// fleet backpressure), router sentinels get their natural codes, and
// anything else is a 502 — the router itself is fine, the hop failed.
func writeErr(w http.ResponseWriter, err error) {
	var se *serve.StatusError
	switch {
	case errors.As(err, &se):
		writeJSON(w, se.Code, apiError{Error: se.Msg})
	case errors.Is(err, ErrUnknownJob), errors.Is(err, ErrUnknownSweep):
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
	case errors.Is(err, ErrNoWorkers), errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case errors.Is(err, serve.ErrJobDone):
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadGateway, apiError{Error: err.Error()})
	}
}

func (r *Router) handleRegister(w http.ResponseWriter, req *http.Request) {
	var rr RegisterRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	resp, err := r.Register(rr)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (r *Router) handleDeregister(w http.ResponseWriter, req *http.Request) {
	if err := r.Deregister(req.PathValue("name")); err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": "deregistered"})
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var jr serve.JobRequest
	if err := json.NewDecoder(req.Body).Decode(&jr); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	st, err := r.SubmitJob(req.Context(), jr)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (r *Router) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.ListJobs())
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	st, err := r.JobStatus(req.Context(), req.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleCancel(w http.ResponseWriter, req *http.Request) {
	if err := r.CancelJob(req.Context(), req.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "canceling"})
}

// handleJobEvents re-streams the job's NDJSON events from whichever
// worker currently runs it. Sample lines pass through verbatim; the
// terminal status line is rewritten into fleet terms. When the upstream
// worker dies mid-stream the response stays open, the router fails the
// job over, and the stream resumes from the successor — the client sees
// one uninterrupted stream ending in exactly one status line.
func (r *Router) handleJobEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r.mu.Lock()
	j := r.jobs[id]
	r.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: ErrUnknownJob.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	writeTerminal := func() {
		r.mu.Lock()
		st := r.publicStatusLocked(j)
		r.mu.Unlock()
		_ = enc.Encode(map[string]any{"type": "status", "status": st})
		if flusher != nil {
			flusher.Flush()
		}
	}

	for {
		r.mu.Lock()
		terminal := j.terminal || j.failed != ""
		wk := r.workers[j.worker]
		remote := j.remoteID
		live := !terminal && remote != "" && wk != nil && wk.state != WorkerDead
		r.mu.Unlock()
		if terminal {
			writeTerminal()
			return
		}
		if !live {
			// Awaiting failover resubmission; poll until the job lands.
			select {
			case <-req.Context().Done():
				return
			case <-r.ctx.Done():
				return
			case <-time.After(r.cfg.HeartbeatEvery / 2):
			}
			continue
		}
		st, err := wk.client.WaitJob(req.Context(), remote, func(line []byte) {
			_, _ = w.Write(line)
			_, _ = w.Write([]byte("\n"))
			if flusher != nil {
				flusher.Flush()
			}
		})
		if err == nil {
			r.mu.Lock()
			j.last = st
			finished := !j.terminal && isTerminalState(st.State)
			if finished {
				j.terminal = true
			}
			r.mu.Unlock()
			if finished {
				r.noteFinished(j)
			}
			writeTerminal()
			return
		}
		if req.Context().Err() != nil || r.ctx.Err() != nil {
			return // client went away; nothing to clean up beyond the body
		}
		// Upstream broke mid-stream (worker died or restarted). Loop:
		// either the heartbeat ejects the worker and failover re-lands the
		// job, or the next WaitJob reconnects to the same worker.
		select {
		case <-req.Context().Done():
			return
		case <-time.After(r.cfg.HeartbeatEvery / 2):
		}
	}
}

// --- sweeps ----------------------------------------------------------------

func (r *Router) handleSweepSubmit(w http.ResponseWriter, req *http.Request) {
	var sr serve.SweepRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	st, err := r.SubmitSweep(req.Context(), sr)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (r *Router) handleSweepList(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.ListSweeps(req.Context()))
}

func (r *Router) handleSweepStatus(w http.ResponseWriter, req *http.Request) {
	st, err := r.SweepStatus(req.Context(), req.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleSweepCancel(w http.ResponseWriter, req *http.Request) {
	if err := r.CancelSweep(req.Context(), req.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "canceling"})
}

// handleSweepEvents proxies the sweep's NDJSON stream from its worker.
// Point lines pass through verbatim; the terminal "sweep" line is
// rewritten to the fleet sweep ID. No reconnect: sweeps pin to their
// worker and die with it.
func (r *Router) handleSweepEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	wk, remote, err := r.sweepWorker(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	up, err := http.NewRequestWithContext(req.Context(), http.MethodGet,
		wk.client.Base+"/v1/sweeps/"+remote+"/events", nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp, err := r.hc.Do(up)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		writeJSON(w, resp.StatusCode, apiError{Error: fmt.Sprintf("worker %s: HTTP %d", wk.name, resp.StatusCode)})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type  string             `json:"type"`
			Sweep *serve.SweepStatus `json:"sweep"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Type == "sweep" && probe.Sweep != nil {
			probe.Sweep.ID = id
			blob, err := json.Marshal(map[string]any{"type": "sweep", "sweep": probe.Sweep})
			if err == nil {
				line = blob
			}
		}
		_, _ = w.Write(line)
		_, _ = w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// --- caches ----------------------------------------------------------------

// aliveWorkers snapshots the non-dead workers.
func (r *Router) aliveWorkers() []*Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Worker
	for _, w := range r.workers {
		if w.state != WorkerDead {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// handleCacheList merges every worker's persisted-record list: one entry
// per key, the freshest copy winning, so the fleet view reads like one
// big store.
func (r *Router) handleCacheList(w http.ResponseWriter, req *http.Request) {
	byKey := map[string]cachestore.Meta{}
	for _, wk := range r.aliveWorkers() {
		metas, err := wk.client.ListCaches(req.Context())
		if err != nil {
			continue // storeless or degraded worker: contributes nothing
		}
		for _, m := range metas {
			if prev, ok := byKey[m.Key]; !ok || m.SavedAt.After(prev.SavedAt) {
				byKey[m.Key] = m
			}
		}
	}
	out := make([]cachestore.Meta, 0, len(byKey))
	for _, m := range byKey {
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	writeJSON(w, http.StatusOK, out)
}

// cacheTargets orders workers for a key: the sticky assignee (who holds
// the lineage warm) first, then the rest.
func (r *Router) cacheTargets(key string) []*Worker {
	ws := r.aliveWorkers()
	r.mu.Lock()
	owner := r.assign[key]
	r.mu.Unlock()
	sort.SliceStable(ws, func(a, b int) bool { return ws[a].name == owner && ws[b].name != owner })
	return ws
}

func (r *Router) handleCacheExport(w http.ResponseWriter, req *http.Request) {
	key := req.PathValue("key")
	var lastErr error
	for _, wk := range r.cacheTargets(key) {
		blob, err := wk.client.ExportCache(req.Context(), key)
		if err == nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(blob)
			return
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = &serve.StatusError{Code: http.StatusNotFound, Msg: "no worker holds " + key}
	}
	writeErr(w, lastErr)
}

// handleCacheImport installs a record on the key's assigned worker (or
// its ring owner when unassigned) — pre-seeding a lineage places the
// record exactly where the first job of that lineage will land.
func (r *Router) handleCacheImport(w http.ResponseWriter, req *http.Request) {
	key := req.PathValue("key")
	blob, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<30))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	r.mu.Lock()
	wk, _, rerr := r.routeLocked(key, key, nil)
	r.mu.Unlock()
	if rerr != nil {
		writeErr(w, rerr)
		return
	}
	if err := wk.client.ImportCache(req.Context(), key, blob); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"state": "imported", "worker": wk.name})
}

func (r *Router) handleCacheDelete(w http.ResponseWriter, req *http.Request) {
	key := req.PathValue("key")
	deleted := false
	for _, wk := range r.aliveWorkers() {
		ctx, cancel := context.WithTimeout(req.Context(), 10*time.Second)
		err := wk.client.DeleteCache(ctx, key)
		cancel()
		if err == nil {
			deleted = true
		}
	}
	r.mu.Lock()
	delete(r.migrated, key)
	if rec := r.shadow[key]; rec != nil {
		r.shadowBytes -= int64(len(rec.blob))
		delete(r.shadow, key)
	}
	r.mu.Unlock()
	if !deleted {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no worker held " + key})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": "deleted"})
}

// --- health and topology ---------------------------------------------------

// RouterHealth is the router's /healthz body.
type RouterHealth struct {
	Status  string `json:"status"` // "ok" | "degraded"
	Workers int    `json:"workers"`
	Alive   int    `json:"alive"`
}

func (r *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	total := len(r.workers)
	alive := 0
	for _, wk := range r.workers {
		if wk.state != WorkerDead {
			alive++
		}
	}
	r.mu.Unlock()
	h := RouterHealth{Status: "ok", Workers: total, Alive: alive}
	if alive == 0 {
		h.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, h)
}

// WorkerStatus is one worker's row in the /v1/fleet topology.
type WorkerStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`

	QueueDepth   int     `json:"queue_depth"`
	QueueCap     int     `json:"queue_cap"`
	RunningJobs  int     `json:"running_jobs"`
	Workers      int     `json:"workers"`
	SaturationPc float64 `json:"saturation_pc"`

	LastSeenMs int64 `json:"last_seen_ms"` // since the last successful probe
	Fails      int   `json:"fails"`
	Lineages   int   `json:"lineages"` // sticky assignments held
	OpenJobs   int   `json:"open_jobs"`
}

// FleetStatus is the GET /v1/fleet body: topology plus the full
// lineage→worker assignment table.
type FleetStatus struct {
	Workers     []WorkerStatus    `json:"workers"`
	Assignments map[string]string `json:"assignments"`
	Jobs        int               `json:"jobs"`
	OpenJobs    int               `json:"open_jobs"`
	Sweeps      int               `json:"sweeps"`
	Migrated    int               `json:"migrated_lineages"`
	ShadowBytes int64             `json:"shadow_bytes"`
}

func (r *Router) handleFleet(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	lineageCount := map[string]int{}
	for _, owner := range r.assign {
		lineageCount[owner]++
	}
	openByWorker := map[string]int{}
	open := 0
	for _, j := range r.jobs {
		if !j.terminal {
			openByWorker[j.worker]++
			open++
		}
	}
	fs := FleetStatus{
		Assignments: map[string]string{},
		Jobs:        len(r.jobs),
		OpenJobs:    open,
		Sweeps:      len(r.sweeps),
		Migrated:    len(r.migrated),
		ShadowBytes: r.shadowBytes,
	}
	for k, v := range r.assign {
		fs.Assignments[k] = v
	}
	for _, wk := range r.workers {
		fs.Workers = append(fs.Workers, WorkerStatus{
			Name:         wk.name,
			URL:          wk.url,
			State:        wk.state,
			QueueDepth:   wk.health.QueueDepth,
			QueueCap:     wk.health.QueueCap,
			RunningJobs:  wk.health.RunningJobs,
			Workers:      wk.health.Workers,
			SaturationPc: wk.health.SaturationPc,
			LastSeenMs:   time.Since(wk.lastSeen).Milliseconds(),
			Fails:        wk.fails,
			Lineages:     lineageCount[wk.name],
			OpenJobs:     openByWorker[wk.name],
		})
	}
	r.mu.Unlock()
	sort.Slice(fs.Workers, func(a, b int) bool { return fs.Workers[a].Name < fs.Workers[b].Name })
	writeJSON(w, http.StatusOK, fs)
}
