package fleet

// Router-level job and sweep operations, the semantic layer under the
// HTTP handlers. The router owns the fleet's ID space (fj-/fs- prefixed)
// and translates between fleet IDs and per-worker IDs on every call;
// worker-minted IDs never leak to clients, so a job keeps its identity
// across failover resubmissions.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"facile/internal/runcfg"
	"facile/internal/serve"
)

// maxSubmitSpread bounds how many distinct workers one submission tries
// before giving up (each SubmitRetry inside already absorbs 429s).
const maxSubmitSpread = 4

// SubmitJob validates, places, and submits one job, returning its fleet
// status. Placement is sticky by cache lineage; a worker that refuses at
// the transport level is avoided and the submission spreads to the next
// ring candidate.
func (r *Router) SubmitJob(ctx context.Context, req serve.JobRequest) (serve.JobStatus, error) {
	if err := req.Validate(); err != nil {
		return serve.JobStatus{}, &serve.StatusError{Code: http.StatusBadRequest, Msg: err.Error()}
	}
	lineage := req.LineageKey()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return serve.JobStatus{}, ErrClosed
	}
	r.jobSeq++
	j := &routedJob{
		id:       fmt.Sprintf("fj-%06d", r.jobSeq),
		req:      req,
		lineage:  lineage,
		queuedAt: time.Now(),
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.mu.Unlock()

	avoid := map[string]bool{}
	var lastErr error
	for try := 0; try < maxSubmitSpread; try++ {
		r.mu.Lock()
		w, reassigned, err := r.routeLocked(lineage, j.id, avoid)
		r.mu.Unlock()
		if err != nil {
			lastErr = err
			break
		}
		if reassigned {
			r.migrate(lineage, nil, w)
		}
		st, err := w.client.SubmitRetry(ctx, req)
		if err == nil {
			r.mu.Lock()
			j.worker = w.name
			j.remoteID = st.ID
			j.attempts++
			j.last = st
			st = r.publicStatusLocked(j)
			r.mu.Unlock()
			r.counter("frouter.jobs_routed").Inc()
			return st, nil
		}
		lastErr = err
		var se *serve.StatusError
		if errors.As(err, &se) {
			if se.Code < 500 && se.Code != http.StatusTooManyRequests {
				// The worker understood the request and rejected it for cause;
				// another worker would say the same. Forward verbatim.
				r.dropJob(j)
				return serve.JobStatus{}, err
			}
			// A clean 5xx (draining, store trouble): the worker is alive but
			// unwilling. Route around it without charging a liveness strike.
			avoid[w.name] = true
			continue
		}
		// Transport-level failure: charge a probe strike (FailAfter of these
		// eject) and spread to the next candidate.
		avoid[w.name] = true
		r.noteSubmitFailure(w)
	}
	r.dropJob(j)
	if lastErr == nil {
		lastErr = ErrNoWorkers
	}
	return serve.JobStatus{}, lastErr
}

// dropJob removes a job record that never landed anywhere; its ID was
// never returned to a client, so it is not "lost" by disappearing.
func (r *Router) dropJob(j *routedJob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.jobs, j.id)
	for i, id := range r.order {
		if id == j.id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// noteSubmitFailure charges a liveness strike for a transport-level
// submission failure — the same currency as heartbeat probe failures, so
// a worker that died between heartbeats is ejected by the traffic that
// discovers it rather than waiting out FailAfter probe intervals.
func (r *Router) noteSubmitFailure(w *Worker) {
	r.mu.Lock()
	if w.state == WorkerDead {
		r.mu.Unlock()
		return
	}
	w.fails++
	if w.fails < r.cfg.FailAfter {
		r.mu.Unlock()
		return
	}
	lineages, jobs := r.ejectLocked(w, "submit")
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.recoverFrom(w, lineages, jobs)
	}()
}

// publicStatusLocked renders a routed job in fleet terms: the fleet ID,
// warm-source provenance adjusted for router migrations, and a synthetic
// queued state while the job awaits (re)submission. Callers hold r.mu.
func (r *Router) publicStatusLocked(j *routedJob) serve.JobStatus {
	st := j.last
	st.ID = j.id
	if st.State == "" {
		st.State = serve.StateQueued
		st.Engine = j.req.Engine
		st.Bench = j.req.Bench
		st.LineageKey = j.lineage
	}
	if st.QueuedAt.IsZero() {
		st.QueuedAt = j.queuedAt
	}
	if j.failed != "" {
		st.State, st.Error = serve.StateFailed, j.failed
	} else if !j.terminal {
		if w := r.workers[j.worker]; j.remoteID == "" || w == nil || w.state == WorkerDead {
			// Between an ejection and the failover resubmission the job is
			// nowhere; to the client it is simply queued (at the fleet).
			st.State = serve.StateQueued
		}
	}
	if j.reroutes > 0 && j.attempts > st.Attempt {
		st.Attempt = j.attempts
	}
	if st.WarmSource == "store" && r.migrated[j.lineage] {
		st.WarmSource = serve.WarmSourceMigrated
	}
	return st
}

// JobStatus returns one job's fleet status, refreshed from its worker
// when it is live there.
func (r *Router) JobStatus(ctx context.Context, id string) (serve.JobStatus, error) {
	r.mu.Lock()
	j := r.jobs[id]
	if j == nil {
		r.mu.Unlock()
		return serve.JobStatus{}, ErrUnknownJob
	}
	w := r.workers[j.worker]
	live := !j.terminal && j.remoteID != "" && w != nil && w.state != WorkerDead
	remote := j.remoteID
	r.mu.Unlock()

	if live {
		if st, err := w.client.Status(ctx, remote); err == nil {
			r.mu.Lock()
			j.last = st
			finished := !j.terminal && isTerminalState(st.State)
			if finished {
				j.terminal = true
			}
			r.mu.Unlock()
			if finished {
				r.noteFinished(j)
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.publicStatusLocked(j), nil
}

// ListJobs returns every routed job in submission order, from the
// router's view (refreshed each heartbeat; live states may lag the
// worker by up to one interval).
func (r *Router) ListJobs() []serve.JobStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]serve.JobStatus, 0, len(r.order))
	for _, id := range r.order {
		if j := r.jobs[id]; j != nil {
			out = append(out, r.publicStatusLocked(j))
		}
	}
	return out
}

// CancelJob cancels a routed job wherever it currently is: forwarded to
// its live worker, or settled locally when the job is awaiting failover
// (nothing to cancel remotely — the failover loop observes the flag and
// stands down).
func (r *Router) CancelJob(ctx context.Context, id string) error {
	r.mu.Lock()
	j := r.jobs[id]
	if j == nil {
		r.mu.Unlock()
		return ErrUnknownJob
	}
	if j.terminal {
		r.mu.Unlock()
		return serve.ErrJobDone
	}
	j.canceled = true
	w := r.workers[j.worker]
	live := j.remoteID != "" && w != nil && w.state != WorkerDead
	remote := j.remoteID
	if !live {
		j.terminal = true
		j.last.State = serve.StateCanceled
		if j.last.FinishedAt.IsZero() {
			j.last.FinishedAt = time.Now()
		}
	}
	r.mu.Unlock()
	if !live {
		return nil
	}
	return w.client.Cancel(ctx, remote)
}

// --- sweeps ----------------------------------------------------------------

// sweepRouteKey derives the placement key for a sweep: the lineage of
// its base configuration, so a sweep lands where previous same-lineage
// jobs (and sweeps) warmed caches. Point-level warm chaining inside the
// sweep is the worker's own job, exactly as in the single-node case.
func sweepRouteKey(req *serve.SweepRequest) string {
	if !req.Memoizing() {
		return ""
	}
	return runcfg.LineageKey(req.Bench, req.Scale, req.Asm, req.Engine, true, req.CacheCapBytes, nil)
}

// SubmitSweep places a whole sweep on one worker. Sweeps pin rather than
// fail over: their value is the warm chain inside the worker, which dies
// with it.
func (r *Router) SubmitSweep(ctx context.Context, req serve.SweepRequest) (serve.SweepStatus, error) {
	lineage := sweepRouteKey(&req)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return serve.SweepStatus{}, ErrClosed
	}
	r.sweepSeq++
	fid := fmt.Sprintf("fs-%06d", r.sweepSeq)
	w, reassigned, err := r.routeLocked(lineage, fid, nil)
	r.mu.Unlock()
	if err != nil {
		return serve.SweepStatus{}, err
	}
	if reassigned {
		r.migrate(lineage, nil, w)
	}
	st, err := w.client.SubmitSweep(ctx, req)
	if err != nil {
		return serve.SweepStatus{}, err
	}
	r.mu.Lock()
	r.sweeps[fid] = &routedSweep{id: fid, worker: w.name, remoteID: st.ID, lineage: lineage}
	r.sweepOrder = append(r.sweepOrder, fid)
	r.mu.Unlock()
	r.counter("frouter.sweeps_routed").Inc()
	st.ID = fid
	return st, nil
}

// sweepWorker resolves a fleet sweep ID to its worker and remote ID.
func (r *Router) sweepWorker(id string) (*Worker, string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sw := r.sweeps[id]
	if sw == nil {
		return nil, "", ErrUnknownSweep
	}
	w := r.workers[sw.worker]
	if w == nil || w.state == WorkerDead {
		return nil, "", fmt.Errorf("fleet: sweep %s: worker %s is gone", id, sw.worker)
	}
	return w, sw.remoteID, nil
}

// SweepStatus returns one sweep's status under its fleet ID. A sweep
// whose worker died reports failed: its warm chain cannot be resumed
// elsewhere, and resubmitting a half-run design sweep silently would
// double-count points.
func (r *Router) SweepStatus(ctx context.Context, id string) (serve.SweepStatus, error) {
	w, remote, err := r.sweepWorker(id)
	if err != nil {
		if errors.Is(err, ErrUnknownSweep) {
			return serve.SweepStatus{}, err
		}
		return serve.SweepStatus{ID: id, State: serve.SweepFailed, Error: err.Error()}, nil
	}
	st, err := w.client.SweepStatus(ctx, remote)
	if err != nil {
		return serve.SweepStatus{}, err
	}
	st.ID = id
	return st, nil
}

// ListSweeps returns every routed sweep.
func (r *Router) ListSweeps(ctx context.Context) []serve.SweepStatus {
	r.mu.Lock()
	ids := append([]string(nil), r.sweepOrder...)
	r.mu.Unlock()
	out := make([]serve.SweepStatus, 0, len(ids))
	for _, id := range ids {
		if st, err := r.SweepStatus(ctx, id); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// CancelSweep forwards a cancellation to the sweep's worker.
func (r *Router) CancelSweep(ctx context.Context, id string) error {
	w, remote, err := r.sweepWorker(id)
	if err != nil {
		return err
	}
	return w.client.CancelSweep(ctx, remote)
}
