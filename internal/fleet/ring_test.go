package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("lineage-%04d", i)
	}
	return out
}

// TestRingDeterminismAndStability: same members → same placement in a
// fresh ring (placement is a pure function of identity), and removing a
// member only moves the keys that member owned.
func TestRingDeterminismAndStability(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	for _, m := range []string{"w1", "w2", "w3"} {
		a.Add(m)
		b.Add(m)
	}
	ks := keys(1000)
	owner := map[string]string{}
	for _, k := range ks {
		oa, ok := a.Owner(k)
		if !ok {
			t.Fatal("empty ring?")
		}
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("rings disagree on %s: %s vs %s", k, oa, ob)
		}
		owner[k] = oa
	}
	a.Remove("w2")
	moved := 0
	for _, k := range ks {
		o, _ := a.Owner(k)
		if owner[k] == "w2" {
			if o == "w2" {
				t.Fatalf("key %s still owned by removed member", k)
			}
		} else if o != owner[k] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member moved anyway", moved)
	}
}

// TestRingBalance: with vnodes, no member owns a grossly unfair share.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	members := []string{"w1", "w2", "w3", "w4"}
	for _, m := range members {
		r.Add(m)
	}
	count := map[string]int{}
	for _, k := range keys(4000) {
		o, _ := r.Owner(k)
		count[o]++
	}
	for _, m := range members {
		if count[m] < 400 || count[m] > 2200 {
			t.Fatalf("grossly unbalanced ring: %v", count)
		}
	}
}

// TestRingBoundedLoad: a loaded owner overflows to a deterministic
// successor; a uniformly saturated ring falls back to the primary owner.
func TestRingBoundedLoad(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"w1", "w2", "w3"} {
		r.Add(m)
	}
	k := "lineage-x"
	primary, _ := r.Owner(k)
	loads := map[string]float64{}
	loadFn := func(m string) float64 { return loads[m] }

	if got, _ := r.Pick(k, loadFn, 1.0); got != primary {
		t.Fatalf("unloaded pick %s != owner %s", got, primary)
	}
	loads[primary] = 2.0
	spilled, ok := r.Pick(k, loadFn, 1.0)
	if !ok || spilled == primary {
		t.Fatalf("saturated owner not spilled: %s", spilled)
	}
	if again, _ := r.Pick(k, loadFn, 1.0); again != spilled {
		t.Fatalf("spill not deterministic: %s vs %s", again, spilled)
	}
	for _, m := range []string{"w1", "w2", "w3"} {
		loads[m] = 5.0
	}
	if got, _ := r.Pick(k, loadFn, 1.0); got != primary {
		t.Fatalf("uniformly saturated ring should fall back to owner %s, got %s", primary, got)
	}
}

// TestRingSuccessor: the failover target skips the ejected member and is
// empty only when no other member exists.
func TestRingSuccessor(t *testing.T) {
	r := NewRing(0)
	r.Add("w1")
	if _, ok := r.Successor("k", "w1"); ok {
		t.Fatal("successor on a one-member ring should not exist")
	}
	r.Add("w2")
	for _, k := range keys(100) {
		o, _ := r.Owner(k)
		s, ok := r.Successor(k, o)
		if !ok || s == o {
			t.Fatalf("bad successor for %s: %q after %q", k, s, o)
		}
	}
	if _, ok := NewRing(0).Owner("k"); ok {
		t.Fatal("owner on empty ring")
	}
}
