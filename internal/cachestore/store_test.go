package cachestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"facile/internal/faults"
	"facile/internal/obs"
)

func openTest(t *testing.T, opts Options) (*Store, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder(obs.Config{})
	opts.Rec = rec
	st, err := Open(filepath.Join(t.TempDir(), "store"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, rec
}

func counter(rec *obs.Recorder, name string) uint64 {
	return rec.Registry().Counter(name).Load()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, rec := openTest(t, Options{})
	payload := []byte("serialized warm cache bytes")
	if err := st.Save("a1b2", "fastsim", "fp0123", 7, 4096, payload); err != nil {
		t.Fatal(err)
	}
	m, got, err := st.Load("a1b2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: %q != %q", got, payload)
	}
	if m.Key != "a1b2" || m.Engine != "fastsim" || m.Fingerprint != "fp0123" ||
		m.Entries != 7 || m.CacheBytes != 4096 {
		t.Fatalf("meta round trip: %+v", m)
	}
	if m.SavedAt.IsZero() || time.Since(m.SavedAt) > time.Minute {
		t.Fatalf("implausible SavedAt %v", m.SavedAt)
	}
	if counter(rec, "cachestore.hits") != 1 || counter(rec, "cachestore.saves") != 1 {
		t.Fatalf("counters: hits=%d saves=%d, want 1/1",
			counter(rec, "cachestore.hits"), counter(rec, "cachestore.saves"))
	}
	if rec.Registry().Histogram("cachestore.load_ns").Count() != 1 {
		t.Fatal("load latency not observed")
	}
}

func TestLoadMiss(t *testing.T) {
	st, rec := openTest(t, Options{})
	if _, _, err := st.Load("nothere"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if counter(rec, "cachestore.misses") != 1 {
		t.Fatal("miss not counted")
	}
}

func TestInvalidKeys(t *testing.T) {
	st, _ := openTest(t, Options{})
	for _, key := range []string{
		"", ".", "..", ".hidden", "a/b", "../escape", "a b",
		strings.Repeat("k", 129), "nul\x00byte",
	} {
		if err := st.Save(key, "e", "f", 1, 1, []byte("x")); err == nil {
			t.Errorf("Save accepted key %q", key)
		}
		if _, _, err := st.Load(key); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Load of key %q: err = %v, want validation error", key, err)
		}
	}
}

// TestCorruptionQuarantine drives every write-side corruption mode through
// the injector and checks the invariant the whole design rests on: a
// corrupt record is never returned, the evidence moves to quarantine/, and
// the next load of the key is a clean miss (cold start), not an error
// loop.
func TestCorruptionQuarantine(t *testing.T) {
	kinds := []faults.StoreFault{
		faults.StoreTruncate,
		faults.StoreFlipByte,
		faults.StoreBadMagic,
		faults.StoreVersionSkew,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			st, rec := openTest(t, Options{
				Inject: faults.NewStoreInjector(0, 1, kind),
			})
			if err := st.Save("key1", "fastsim", "fp", 3, 64, []byte("payload")); err != nil {
				t.Fatalf("corrupting save still completes the write: %v", err)
			}
			_, _, err := st.Load("key1")
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CorruptError", err)
			}
			if ce.Quarantined == "" {
				t.Fatal("corrupt record not quarantined")
			}
			if _, err := os.Stat(ce.Quarantined); err != nil {
				t.Fatalf("quarantine evidence missing: %v", err)
			}
			if st.QuarantineCount() != 1 {
				t.Fatalf("QuarantineCount = %d, want 1", st.QuarantineCount())
			}
			if counter(rec, "cachestore.corrupt") != 1 || counter(rec, "cachestore.quarantined") != 1 {
				t.Fatal("corruption counters not moved")
			}
			// The key is now a plain miss: the caller runs cold and may re-save.
			if _, _, err := st.Load("key1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("after quarantine: err = %v, want ErrNotFound", err)
			}
			if err := st.Save("key1", "fastsim", "fp", 3, 64, []byte("payload")); err != nil {
				t.Fatalf("re-save after quarantine (injector fires every save, but the write lands): %v", err)
			}
		})
	}
}

func TestInjectedENOSPC(t *testing.T) {
	st, rec := openTest(t, Options{
		Inject: faults.NewStoreInjector(0, 1, faults.StoreENOSPC),
	})
	err := st.Save("key1", "fastsim", "fp", 1, 1, []byte("x"))
	if !errors.Is(err, faults.ErrInjectedENOSPC) {
		t.Fatalf("err = %v, want ErrInjectedENOSPC", err)
	}
	if _, _, err := st.Load("key1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed save left a loadable record: %v", err)
	}
	if counter(rec, "cachestore.save_errors") != 1 {
		t.Fatal("save error not counted")
	}
}

// TestCrashBeforeRenameAndReopen: a save that dies between the staging
// write and the rename leaves only a .tmp; the record never becomes
// visible, and the next Open sweeps the residue.
func TestCrashBeforeRenameAndReopen(t *testing.T) {
	rec := obs.NewRecorder(obs.Config{})
	dir := filepath.Join(t.TempDir(), "store")
	st, err := Open(dir, Options{
		Rec:    rec,
		Inject: faults.NewStoreInjector(0, 1, faults.StoreCrashBeforeRename),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("key1", "fastsim", "fp", 1, 1, []byte("x")); err == nil {
		t.Fatal("crashed save reported success")
	}
	if _, err := os.Stat(filepath.Join(dir, "key1.wc.tmp")); err != nil {
		t.Fatalf("crash did not leave the staging file: %v", err)
	}
	if _, _, err := st.Load("key1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn write became visible: %v", err)
	}
	// Next process: Open cleans the staging residue.
	if _, err := Open(dir, Options{Rec: rec}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "key1.wc.tmp")); !os.IsNotExist(err) {
		t.Fatal("reopen did not sweep the staging file")
	}
}

// TestKeyCrossCheck: a record renamed to another key's address (bad sync
// script, operator error) is quarantined, not served under the wrong key.
func TestKeyCrossCheck(t *testing.T) {
	st, _ := openTest(t, Options{})
	if err := st.Save("keyA", "fastsim", "fp", 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.path("keyA"), st.path("keyB")); err != nil {
		t.Fatal(err)
	}
	_, _, err := st.Load("keyB")
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "keyA") {
		t.Fatalf("err = %v, want CorruptError naming the embedded key", err)
	}
}

func TestListQuarantinesBadRecords(t *testing.T) {
	st, _ := openTest(t, Options{})
	if err := st.Save("good1", "fastsim", "fp", 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("good2", "rt", "fp2", 2, 2, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("junk"), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	metas, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Key != "good1" || metas[1].Key != "good2" {
		t.Fatalf("List = %+v, want good1+good2", metas)
	}
	if st.QuarantineCount() != 1 {
		t.Fatalf("junk not quarantined: count %d", st.QuarantineCount())
	}
}

func TestExportImport(t *testing.T) {
	src, _ := openTest(t, Options{})
	payload := []byte("portable cache")
	if err := src.Save("key1", "fastsim", "fp", 5, 512, payload); err != nil {
		t.Fatal(err)
	}
	blob, err := src.Export("key1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Export("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("export of absent key: %v", err)
	}

	dst, _ := openTest(t, Options{})
	m, err := dst.Import("key1", blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Key != "key1" {
		t.Fatalf("import installed under %q", m.Key)
	}
	if _, got, err := dst.Load("key1"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("imported record: %q, %v", got, err)
	}

	// Addressing a valid record under the wrong key is rejected: an import
	// must land exactly where the caller pointed it.
	if _, err := dst.Import("key2", blob); err == nil {
		t.Fatal("import under a mismatched key accepted")
	}
	if _, _, err := dst.Load("key2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mismatched import left a record behind: %v", err)
	}

	// A corrupt import is rejected without touching the store.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x40
	if _, err := dst.Import("key1", bad); err == nil {
		t.Fatal("corrupt import accepted")
	}
	if dst.QuarantineCount() != 0 {
		t.Fatal("rejected import polluted quarantine (it never earned trust)")
	}
}

// TestSweepLRU: with a byte budget, the least-recently-used records are
// evicted first, and a Load refreshes recency.
func TestSweepLRU(t *testing.T) {
	st, rec := openTest(t, Options{})
	payload := bytes.Repeat([]byte("z"), 256)
	for _, key := range []string{"old", "mid", "hot"} {
		if err := st.Save(key, "fastsim", "fp", 1, 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Pin recency explicitly: mtime drives the LRU order.
	base := time.Now().Add(-time.Hour)
	for i, key := range []string{"old", "mid", "hot"} {
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(st.path(key), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// A load refreshes "old" to most-recent, so "mid" becomes the victim.
	if _, _, err := st.Load("old"); err != nil {
		t.Fatal(err)
	}

	recSize := st.DiskBytes() / 3
	st.budget = 2 * recSize
	freed := st.Sweep()
	if freed != recSize {
		t.Fatalf("Sweep freed %d, want one record (%d)", freed, recSize)
	}
	if _, _, err := st.Load("mid"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU victim should be mid (stalest after old's refresh): %v", err)
	}
	for _, key := range []string{"old", "hot"} {
		if _, _, err := st.Load(key); err != nil {
			t.Fatalf("record %q evicted out of LRU order: %v", key, err)
		}
	}
	if counter(rec, "cachestore.evicted_bytes") != recSize {
		t.Fatalf("evicted_bytes = %d, want %d", counter(rec, "cachestore.evicted_bytes"), recSize)
	}
}

func TestDisable(t *testing.T) {
	st, _ := openTest(t, Options{})
	if err := st.Save("key1", "fastsim", "fp", 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	st.Disable("test reason")
	if off, reason := st.Disabled(); !off || reason != "test reason" {
		t.Fatalf("Disabled() = %v, %q", off, reason)
	}
	if err := st.Save("key2", "fastsim", "fp", 1, 1, []byte("x")); !errors.Is(err, ErrDisabled) {
		t.Fatalf("Save on disabled store: %v", err)
	}
	if _, _, err := st.Load("key1"); !errors.Is(err, ErrDisabled) {
		t.Fatalf("Load on disabled store: %v", err)
	}
	if _, err := st.List(); !errors.Is(err, ErrDisabled) {
		t.Fatalf("List on disabled store: %v", err)
	}
}

// TestNilRecorderAndInjector: observability and injection are optional;
// the store must work with both absent.
func TestNilRecorderAndInjector(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "s"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("k", "e", "f", 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("k"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentExportDuringSweep hammers the store from three sides at
// once — saves that keep a tight budget sweeping, exports, and loads —
// and asserts the atomic-rename discipline holds under the race: a
// reader sees a complete record or ErrNotFound, never a torn one. This
// is exactly the fleet migration path, where the router exports records
// from a worker that is still saving into a budgeted store.
func TestConcurrentExportDuringSweep(t *testing.T) {
	const (
		keys     = 8
		saves    = 150 // per writer
		payloadN = 4 << 10
	)
	payload := bytes.Repeat([]byte("warm"), payloadN/4)
	// Budget fits about three records, so nearly every save pushes the
	// sweeper into evicting a file readers may be mid-race on.
	st, rec := openTest(t, Options{BudgetBytes: 3 * (payloadN + 512)})
	dst, _ := openTest(t, Options{})
	keyOf := func(i int) string { return fmt.Sprintf("lineage-%d", i%keys) }

	var (
		wg        sync.WaitGroup
		writersWG sync.WaitGroup
		done      = make(chan struct{})
		exported  atomic.Uint64
		loaded    atomic.Uint64
		mu        sync.Mutex // guards dst.Import: cross-store verify, not under test
	)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		writersWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersWG.Done()
			for i := 0; i < saves; i++ {
				k := keyOf(w*3 + i)
				if err := st.Save(k, "fastsim", "fp", 1, uint64(payloadN), payload); err != nil {
					t.Errorf("save %s: %v", k, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				k := keyOf(r + i)
				if r == 0 {
					blob, err := st.Export(k)
					if errors.Is(err, ErrNotFound) {
						continue // swept or not yet saved: a legal outcome
					}
					if err != nil {
						t.Errorf("export %s: %v", k, err)
						return
					}
					// An exported record must install cleanly elsewhere —
					// that is the whole migration contract.
					mu.Lock()
					_, err = dst.Import(k, blob)
					mu.Unlock()
					if err != nil {
						t.Errorf("import of exported %s: %v", k, err)
						return
					}
					exported.Add(1)
				} else {
					_, got, err := st.Load(k)
					if errors.Is(err, ErrNotFound) {
						continue
					}
					if err != nil {
						t.Errorf("load %s: %v", k, err)
						return
					}
					if !bytes.Equal(got, payload) {
						t.Errorf("load %s: torn payload (%d bytes)", k, len(got))
						return
					}
					loaded.Add(1)
				}
			}
		}(r)
	}
	writersWG.Wait()
	close(done)
	wg.Wait()

	if exported.Load() == 0 || loaded.Load() == 0 {
		t.Fatalf("race not exercised: %d exports, %d loads", exported.Load(), loaded.Load())
	}
	if counter(rec, "cachestore.evicted_bytes") == 0 {
		t.Fatal("budget sweeper never ran; shrink the budget")
	}
	// The one thing that must never happen under this race: a record
	// that reads as corrupt. Torn reads would land here.
	if c, q := counter(rec, "cachestore.corrupt"), counter(rec, "cachestore.quarantined"); c != 0 || q != 0 {
		t.Fatalf("concurrency produced corruption: corrupt=%d quarantined=%d", c, q)
	}
	if st.QuarantineCount() != 0 {
		t.Fatalf("quarantined records on disk: %d", st.QuarantineCount())
	}
}
