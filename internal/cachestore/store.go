// Package cachestore is the crash-safe, content-addressed on-disk store
// for detached action caches: the durability substrate that lets a job
// server's memoization warmth survive restarts and crashes instead of
// dying with the process.
//
// One record per cache lineage key. Every record is written via the
// temp-file + fsync + rename discipline (internal/snapshot.WriteRawFile)
// and framed with a magic/version header, a metadata section, the
// length-prefixed payload, and a CRC32-C trailer over everything before
// it. Loads verify end to end; any failure — truncation, bit rot, version
// skew, a foreign file — quarantines the record under quarantine/ and
// reports a typed *CorruptError, so the caller degrades to a cold run and
// an operator can autopsy the evidence. The store never returns bytes it
// could not verify.
//
// The degradation ladder, top to bottom:
//
//	verified-warm   record present, CRC and fingerprint check out → warm start
//	cold+quarantine record corrupt → quarantined, cold start, counters moved
//	cold+disabled   the directory itself unusable (or saves persistently
//	                failing) → persistence disabled, simulation unaffected
//
// Every transition is a counted obs event: cachestore.hits, .misses,
// .corrupt, .quarantined, .evicted_bytes, .saves, .save_errors, plus
// load/save latency histograms.
package cachestore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"facile/internal/faults"
	"facile/internal/obs"
	"facile/internal/snapshot"
)

// Record layout:
//
//	magic   [8]byte "FACSTOR1"
//	body    snapshot varint stream:
//	          version     uvarint (Version)
//	          key         string  lineage key (also the file name)
//	          engine      string  runcfg engine name
//	          fingerprint string  lineage fingerprint (program+engine identity)
//	          entries     uvarint cache entries in the payload
//	          cacheBytes  uvarint accounting bytes of the cached entries
//	          savedAt     uvarint unix nanoseconds
//	          payload     bytes   serialized warm cache (engine-specific)
//	trailer [4]byte CRC32-C (Castagnoli) of magic+body, little-endian

const magic = "FACSTOR1"

// Version is the store record format version. Bump on any layout change;
// Load rejects (and quarantines) records from other versions rather than
// guessing.
const Version = 1

// recordExt is the record file extension; <key>.wc under the store dir.
const recordExt = ".wc"

// QuarantineDir is the subdirectory corrupt records are moved to.
const QuarantineDir = "quarantine"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNotFound reports a key with no stored record.
var ErrNotFound = errors.New("cachestore: no record for key")

// ErrDisabled reports an operation against a disabled store.
var ErrDisabled = errors.New("cachestore: store disabled")

// CorruptError reports a record that failed verification and was
// quarantined (or removed, when quarantining itself failed).
type CorruptError struct {
	Path        string // original record path
	Reason      string // what failed to verify
	Quarantined string // where the evidence went ("" if removal fell back)
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("cachestore: corrupt record %s: %s", filepath.Base(e.Path), e.Reason)
}

// Meta describes one stored record.
type Meta struct {
	Key         string    `json:"key"`
	Engine      string    `json:"engine"`
	Fingerprint string    `json:"fingerprint"`
	Entries     uint64    `json:"entries"`
	CacheBytes  uint64    `json:"cache_bytes"`
	SavedAt     time.Time `json:"saved_at"`
	FileBytes   int64     `json:"file_bytes"`
}

// Options configures a Store.
type Options struct {
	// BudgetBytes caps the total on-disk record bytes; Sweep evicts
	// least-recently-used records beyond it (0 = unlimited).
	BudgetBytes uint64
	// Rec receives the store's counters and latency histograms; a nil
	// recorder disables observability, not the store.
	Rec *obs.Recorder
	// Inject, when non-nil, deterministically corrupts or aborts saves so
	// tests can drive every degradation path on demand.
	Inject *faults.StoreInjector
}

// Store is the persistent action-cache store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	dir    string
	budget uint64
	inject *faults.StoreInjector

	mu       sync.Mutex
	disabled string // non-empty = disabled, with the reason

	hits        *obs.Counter
	misses      *obs.Counter
	corrupt     *obs.Counter
	quarantined *obs.Counter
	evicted     *obs.Counter
	saves       *obs.Counter
	saveErrs    *obs.Counter
	loadNs      *obs.Histogram
	saveNs      *obs.Histogram
}

// Open roots a store at dir, creating it (and its quarantine subdirectory)
// as needed, and removes leftover .tmp staging files from a previous
// crash. An unusable directory returns an error; callers typically log it
// and run without persistence rather than refusing to start.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, QuarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	if _, err := snapshot.CleanupTmp(dir); err != nil {
		return nil, fmt.Errorf("cachestore: cleaning staging files: %w", err)
	}
	reg := opts.Rec.Registry()
	return &Store{
		dir:         dir,
		budget:      opts.BudgetBytes,
		inject:      opts.Inject,
		hits:        reg.Counter("cachestore.hits"),
		misses:      reg.Counter("cachestore.misses"),
		corrupt:     reg.Counter("cachestore.corrupt"),
		quarantined: reg.Counter("cachestore.quarantined"),
		evicted:     reg.Counter("cachestore.evicted_bytes"),
		saves:       reg.Counter("cachestore.saves"),
		saveErrs:    reg.Counter("cachestore.save_errors"),
		loadNs:      reg.Histogram("cachestore.load_ns"),
		saveNs:      reg.Histogram("cachestore.save_ns"),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey vets a lineage key for use as a file name: the store is
// content-addressed, so the key must not smuggle path structure.
func validKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("cachestore: invalid key %q", key)
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("cachestore: invalid key %q", key)
		}
	}
	if key[0] == '.' {
		return fmt.Errorf("cachestore: invalid key %q", key)
	}
	return nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+recordExt)
}

// Disabled reports whether persistence is disabled, and why.
func (s *Store) Disabled() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disabled != "", s.disabled
}

// Disable turns persistence off (saves and loads fail with ErrDisabled).
// The store stays open so health reporting keeps working.
func (s *Store) Disable(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled == "" {
		s.disabled = reason
	}
}

func (s *Store) checkEnabled() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled != "" {
		return fmt.Errorf("%w: %s", ErrDisabled, s.disabled)
	}
	return nil
}

// encode frames one record.
func encode(key, engine, fingerprint string, entries, cacheBytes uint64, savedAt time.Time, payload []byte) []byte {
	w := snapshot.NewWriter()
	w.U64(Version)
	w.String(key)
	w.String(engine)
	w.String(fingerprint)
	w.U64(entries)
	w.U64(cacheBytes)
	w.U64(uint64(savedAt.UnixNano()))
	w.Bytes(payload)
	blob := make([]byte, 0, len(magic)+len(w.Payload())+4)
	blob = append(blob, magic...)
	blob = append(blob, w.Payload()...)
	crc := crc32.Checksum(blob, castagnoli)
	return append(blob, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}

// decode verifies one record end to end and unpacks it.
func decode(blob []byte) (Meta, []byte, error) {
	if len(blob) < len(magic)+4 {
		return Meta{}, nil, fmt.Errorf("record truncated to %d bytes", len(blob))
	}
	if string(blob[:len(magic)]) != magic {
		return Meta{}, nil, fmt.Errorf("bad magic %q", blob[:len(magic)])
	}
	body, trailer := blob[:len(blob)-4], blob[len(blob)-4:]
	want := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16 | uint32(trailer[3])<<24
	if got := crc32.Checksum(body, castagnoli); got != want {
		return Meta{}, nil, fmt.Errorf("CRC32-C mismatch: computed %08x, trailer %08x", got, want)
	}
	r := snapshot.NewReader(body[len(magic):])
	ver := r.U64()
	if r.Err() == nil && ver != Version {
		return Meta{}, nil, fmt.Errorf("record format version %d, this build reads %d", ver, Version)
	}
	m := Meta{
		Key:         r.String(),
		Engine:      r.String(),
		Fingerprint: r.String(),
		Entries:     r.U64(),
		CacheBytes:  r.U64(),
	}
	m.SavedAt = time.Unix(0, int64(r.U64()))
	payload := r.Bytes()
	if err := r.Err(); err != nil {
		return Meta{}, nil, fmt.Errorf("record body: %v", err)
	}
	m.FileBytes = int64(len(blob))
	return m, payload, nil
}

// Save persists one detached cache's serialized payload under key,
// atomically replacing any previous record, then sweeps the size budget.
// When the configured injector fires, the corresponding corruption or
// crash is applied instead of (or on top of) the normal write — tests use
// this to produce every on-disk failure mode through the real code path.
func (s *Store) Save(key, engine, fingerprint string, entries, cacheBytes uint64, payload []byte) error {
	if err := s.checkEnabled(); err != nil {
		return err
	}
	if err := validKey(key); err != nil {
		return err
	}
	t0 := time.Now()
	blob := encode(key, engine, fingerprint, entries, cacheBytes, time.Now(), payload)
	path := s.path(key)

	switch fault := s.inject.Arm(); fault {
	case faults.StoreNone:
	case faults.StoreTruncate:
		cut := len(blob)/2 + int(s.inject.Rand()%uint64(len(blob)/2))
		blob = blob[:cut]
	case faults.StoreFlipByte:
		i := int(s.inject.Rand() % uint64(len(blob)))
		blob = append([]byte(nil), blob...)
		blob[i] ^= 0x40
	case faults.StoreBadMagic:
		blob = append([]byte(nil), blob...)
		copy(blob, "NOTSTORE")
	case faults.StoreVersionSkew:
		// Re-encode the body with a future version and a fresh CRC: the
		// record is bit-perfect, just from the future.
		blob = encodeVersionSkewed(key, engine, fingerprint, entries, cacheBytes, payload)
	case faults.StoreENOSPC:
		s.saveErrs.Inc()
		return faults.ErrInjectedENOSPC
	case faults.StoreCrashBeforeRename:
		// Write the staging file for real, then "die": the record never
		// reaches its final name, and the .tmp is swept on the next Open.
		_ = os.WriteFile(path+".tmp", blob, 0o644)
		s.saveErrs.Inc()
		return fmt.Errorf("cachestore: injected crash before rename (%s)", fault)
	}

	if err := snapshot.WriteRawFile(path, blob); err != nil {
		s.saveErrs.Inc()
		return fmt.Errorf("cachestore: save %s: %w", key, err)
	}
	s.saves.Inc()
	s.saveNs.Observe(uint64(time.Since(t0).Nanoseconds()))
	if s.budget > 0 {
		s.Sweep()
	}
	return nil
}

// encodeVersionSkewed builds a record claiming a future format version,
// CRC-valid, for the version-skew injection.
func encodeVersionSkewed(key, engine, fingerprint string, entries, cacheBytes uint64, payload []byte) []byte {
	w := snapshot.NewWriter()
	w.U64(Version + 1)
	w.String(key)
	w.String(engine)
	w.String(fingerprint)
	w.U64(entries)
	w.U64(cacheBytes)
	w.U64(uint64(time.Now().UnixNano()))
	w.Bytes(payload)
	blob := append([]byte(magic), w.Payload()...)
	crc := crc32.Checksum(blob, castagnoli)
	return append(blob, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}

// Load reads and verifies the record for key. A verification failure
// quarantines the record and returns a *CorruptError; the caller proceeds
// cold. A hit refreshes the record's recency for the LRU sweep.
func (s *Store) Load(key string) (Meta, []byte, error) {
	if err := s.checkEnabled(); err != nil {
		return Meta{}, nil, err
	}
	if err := validKey(key); err != nil {
		return Meta{}, nil, err
	}
	t0 := time.Now()
	path := s.path(key)
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		s.misses.Inc()
		return Meta{}, nil, ErrNotFound
	}
	if err != nil {
		s.misses.Inc()
		return Meta{}, nil, fmt.Errorf("cachestore: load %s: %w", key, err)
	}
	m, payload, err := s.verify(path, key, blob)
	if err != nil {
		return Meta{}, nil, err
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // LRU recency; best-effort
	s.hits.Inc()
	s.loadNs.Observe(uint64(time.Since(t0).Nanoseconds()))
	return m, payload, nil
}

// verify decodes blob and cross-checks the embedded key; on any failure it
// quarantines the file and returns a *CorruptError.
func (s *Store) verify(path, key string, blob []byte) (Meta, []byte, error) {
	m, payload, err := decode(blob)
	if err == nil && key != "" && m.Key != key {
		err = fmt.Errorf("record claims key %q, file is addressed as %q", m.Key, key)
	}
	if err != nil {
		return Meta{}, nil, s.quarantine(path, err.Error())
	}
	return m, payload, nil
}

// quarantine moves a corrupt record out of the addressable store, counts
// the corruption, and builds the typed error. When the move itself fails
// the record is removed instead — a corrupt record must never stay
// loadable.
func (s *Store) quarantine(path, reason string) *CorruptError {
	s.corrupt.Inc()
	dst := filepath.Join(s.dir, QuarantineDir,
		fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano()))
	ce := &CorruptError{Path: path, Reason: reason, Quarantined: dst}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		ce.Quarantined = ""
		return ce
	}
	s.quarantined.Inc()
	return ce
}

// QuarantineCount reports how many quarantined records are on disk.
func (s *Store) QuarantineCount() int {
	entries, err := os.ReadDir(filepath.Join(s.dir, QuarantineDir))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			n++
		}
	}
	return n
}

// List returns metadata for every verifiable record, sorted by key.
// Records that fail verification are quarantined as List encounters them
// and omitted; listing must not crash on a store with one bad file.
func (s *Store) List() ([]Meta, error) {
	if err := s.checkEnabled(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	var out []Meta
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != recordExt {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		blob, err := os.ReadFile(path)
		if err != nil {
			continue // racing delete/evict
		}
		key := e.Name()[:len(e.Name())-len(recordExt)]
		m, _, err := s.verify(path, key, blob)
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Delete removes the record for key (ErrNotFound when absent).
func (s *Store) Delete(key string) error {
	if err := s.checkEnabled(); err != nil {
		return err
	}
	if err := validKey(key); err != nil {
		return err
	}
	err := os.Remove(s.path(key))
	if os.IsNotExist(err) {
		return ErrNotFound
	}
	return err
}

// Export returns the raw record bytes for key, verified first — exporting
// corruption to another node would defeat the whole point of the trailer.
func (s *Store) Export(key string) ([]byte, error) {
	if err := s.checkEnabled(); err != nil {
		return nil, err
	}
	if err := validKey(key); err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("cachestore: export %s: %w", key, err)
	}
	if _, _, err := s.verify(s.path(key), key, blob); err != nil {
		return nil, err
	}
	return blob, nil
}

// Import verifies a raw record (as produced by Export, possibly on another
// node) and installs it under its embedded key, which must match key
// (an addressing typo must not silently install under a different name).
// Corrupt imports are rejected without touching the store — quarantine is
// for records that were trusted, not for input that never earned trust.
func (s *Store) Import(key string, blob []byte) (Meta, error) {
	if err := s.checkEnabled(); err != nil {
		return Meta{}, err
	}
	m, _, err := decode(blob)
	if err != nil {
		s.corrupt.Inc()
		return Meta{}, fmt.Errorf("cachestore: import rejected: %v", err)
	}
	if m.Key != key {
		return Meta{}, fmt.Errorf("cachestore: import rejected: record is for key %q, not %q", m.Key, key)
	}
	if err := validKey(m.Key); err != nil {
		return Meta{}, fmt.Errorf("cachestore: import rejected: %v", err)
	}
	if err := snapshot.WriteRawFile(s.path(m.Key), blob); err != nil {
		s.saveErrs.Inc()
		return Meta{}, fmt.Errorf("cachestore: import %s: %w", m.Key, err)
	}
	s.saves.Inc()
	if s.budget > 0 {
		s.Sweep()
	}
	return m, nil
}

// DiskBytes sums the on-disk size of all records (quarantine excluded).
func (s *Store) DiskBytes() uint64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var sum uint64
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != recordExt {
			continue
		}
		if fi, err := e.Info(); err == nil {
			sum += uint64(fi.Size())
		}
	}
	return sum
}

// Sweep evicts least-recently-used records until the on-disk total fits
// the budget, returning the bytes evicted. Recency is file mtime, which
// Load refreshes on every hit. With no budget it is a no-op.
func (s *Store) Sweep() uint64 {
	if s.budget == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	type rec struct {
		name  string
		size  uint64
		mtime time.Time
	}
	var recs []rec
	var total uint64
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != recordExt {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{e.Name(), uint64(fi.Size()), fi.ModTime()})
		total += uint64(fi.Size())
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].mtime.Before(recs[j].mtime) })
	var freed uint64
	for _, r := range recs {
		if total <= s.budget {
			break
		}
		if err := os.Remove(filepath.Join(s.dir, r.name)); err != nil {
			continue
		}
		total -= r.size
		freed += r.size
		s.evicted.Add(r.size)
	}
	return freed
}
