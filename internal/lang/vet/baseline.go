package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Baseline is a checked-in snapshot of accepted findings. A gated run
// fails on findings not in the baseline (new debt); findings that
// disappeared are reported so the baseline can shrink.
type Baseline struct {
	Version  int      `json:"version"`
	Findings []string `json:"findings"` // sorted baseline keys
}

// BaselineKey identifies a finding stably across runs: code, position,
// and message (messages embed counts, so a regression in degree also
// counts as new).
func BaselineKey(d Diagnostic) string {
	return fmt.Sprintf("%s|%s|%s|%s", d.Code, d.Pos, d.Unit, d.Message)
}

// NewBaseline snapshots a result.
func NewBaseline(r *Result) *Baseline {
	b := &Baseline{Version: 1, Findings: []string{}}
	seen := map[string]bool{}
	for _, d := range r.Diags {
		k := BaselineKey(d)
		if !seen[k] {
			seen[k] = true
			b.Findings = append(b.Findings, k)
		}
	}
	sort.Strings(b.Findings)
	return b
}

// WriteBaseline serializes a baseline.
func (b *Baseline) WriteBaseline(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// LoadBaseline parses a baseline.
func LoadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Compare splits a result against the baseline: findings not in the
// baseline (build-breaking), and baseline entries no longer produced
// (safe to remove — baseline shrink is allowed).
func (b *Baseline) Compare(r *Result) (fresh []Diagnostic, fixed []string) {
	have := map[string]bool{}
	for _, k := range b.Findings {
		have[k] = true
	}
	produced := map[string]bool{}
	for _, d := range r.Diags {
		k := BaselineKey(d)
		produced[k] = true
		if !have[k] {
			fresh = append(fresh, d)
		}
	}
	for _, k := range b.Findings {
		if !produced[k] {
			fixed = append(fixed, k)
		}
	}
	return fresh, fixed
}
