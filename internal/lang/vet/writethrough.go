package vet

import (
	"fmt"
	"sort"
	"strings"

	"facile/internal/lang/ir"
	"facile/internal/lang/token"
)

// writethroughAnalyzer measures the paper's §6.3 write-through cost:
// every BTStaticWT instruction adds a placeholder word to each recorded
// action, inflating the specialized action cache. Sites are aggregated
// per global and ranked per owning sem/fun block, and stores that the
// LiftLiveOnly liveness optimization would elide are called out.
var writethroughAnalyzer = &Analyzer{
	Name: "writethrough",
	Doc:  "write-through hotspots inflating the action cache (§6.3)",
	Codes: []CodeDoc{
		{"FV0201", SevInfo, "rt-static stores to a global write through to the action cache"},
		{"FV0202", SevWarning, "write-throughs to globals never read by dynamic code; LiftLiveOnly would elide them"},
		{"FV0203", SevInfo, "rt-static results materialized into dynamic vregs (placeholder writes)"},
		{"FV0204", SevInfo, "write-through hotspot ranking per sem/fun block"},
	},
	Run: runWritethrough,
}

// owner locates the sem/fun block enclosing a position, for ranking.
type ownerIndex struct {
	names []string
	lines []token.Pos // sorted start positions
}

func (p *Pass) owners() *ownerIndex {
	oi := &ownerIndex{}
	if p.Checked == nil {
		return oi
	}
	type decl struct {
		name string
		pos  token.Pos
	}
	var ds []decl
	for _, s := range p.Checked.Prog.Sems {
		ds = append(ds, decl{"sem " + s.PatName, s.P})
	}
	for _, f := range p.Checked.Prog.Funs {
		ds = append(ds, decl{"fun " + f.Name, f.P})
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].pos.Line != ds[j].pos.Line {
			return ds[i].pos.Line < ds[j].pos.Line
		}
		return ds[i].pos.Col < ds[j].pos.Col
	})
	for _, d := range ds {
		oi.names = append(oi.names, d.name)
		oi.lines = append(oi.lines, d.pos)
	}
	return oi
}

// of returns the name of the declaration whose start precedes pos, or "".
func (oi *ownerIndex) of(pos token.Pos) string {
	if pos.Line == 0 {
		return ""
	}
	i := sort.Search(len(oi.lines), func(i int) bool {
		l := oi.lines[i]
		return l.Line > pos.Line || (l.Line == pos.Line && l.Col > pos.Col)
	})
	if i == 0 {
		return ""
	}
	return oi.names[i-1]
}

// countFmt renders "owner (count)" breakdowns sorted by count desc.
func countFmt(m map[string]int, max int) string {
	type kv struct {
		k string
		n int
	}
	var s []kv
	for k, n := range m {
		if k == "" {
			k = "(top level)"
		}
		s = append(s, kv{k, n})
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].n != s[j].n {
			return s[i].n > s[j].n
		}
		return s[i].k < s[j].k
	})
	if max > 0 && len(s) > max {
		s = s[:max]
	}
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = fmt.Sprintf("%s (%d)", e.k, e.n)
	}
	return strings.Join(parts, ", ")
}

func runWritethrough(p *Pass) {
	if p.IR == nil || p.Facts == nil {
		return
	}
	oi := p.owners()

	type gstat struct {
		count    int
		elidable int
		first    token.Pos
		owners   map[string]int
	}
	gs := map[int64]*gstat{}
	var gorder []int64
	perOwner := map[string]int{}
	matCount := 0
	var matFirst, elideFirst token.Pos
	elidable := 0

	for _, b := range p.IR.Blocks {
		for i := range b.Insts {
			inst := &b.Insts[i]
			if inst.BT != ir.BTStaticWT {
				continue
			}
			perOwner[oi.of(inst.Pos)]++
			if inst.Op == ir.StoreG {
				st := gs[inst.Imm]
				if st == nil {
					st = &gstat{first: inst.Pos, owners: map[string]int{}}
					gs[inst.Imm] = st
					gorder = append(gorder, inst.Imm)
				}
				st.count++
				st.owners[oi.of(inst.Pos)]++
				if !p.Facts.DynRead[inst.Imm] {
					st.elidable++
					elidable++
					if elideFirst.Line == 0 {
						elideFirst = inst.Pos
					}
				}
			} else {
				matCount++
				if matFirst.Line == 0 {
					matFirst = inst.Pos
				}
			}
		}
	}

	for _, gi := range gorder {
		st := gs[gi]
		p.Reportf("writethrough", "FV0201", SevInfo, st.first,
			"%d run-time static store(s) to global %q write through to the action cache, one placeholder word each per recorded action (sites: %s)",
			st.count, p.IR.Globals[gi].Name, countFmt(st.owners, 4))
	}
	if elidable > 0 {
		p.ReportFix("writethrough", "FV0202", SevWarning, elideFirst,
			"compile with the liveness optimization (faciled -live / core.Options.LiftLiveOnly)",
			"%d of these write-through store(s) target globals no dynamic code reads within a step; the LiftLiveOnly liveness optimization (§6.3 #3) would elide them — verify no host or cross-step reader depends on the runtime value",
			elidable)
	}
	if matCount > 0 {
		p.Reportf("writethrough", "FV0203", SevInfo, matFirst,
			"%d run-time static result(s) flow into dynamic vregs and are materialized as placeholder writes in the action cache",
			matCount)
	}
	if len(perOwner) > 0 {
		pos := token.Pos{}
		if p.Checked != nil && p.Checked.Main != nil {
			pos = p.Checked.Main.P
		}
		p.Reportf("writethrough", "FV0204", SevInfo, pos,
			"write-through hotspots by block: %s", countFmt(perOwner, 8))
	}
}
