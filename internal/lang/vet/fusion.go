package vet

import (
	"fmt"

	"facile/internal/lang/ir"
	"facile/internal/lang/source"
	"facile/internal/lang/token"
)

// fusionAnalyzer surfaces the compiler's static fusion/replay dataflow
// tier (compile's replay plan): which blocks the compiled-replay engine
// can fuse into superinstructions, which dynamic-result tests sever those
// runs, and which placeholder layouts are unprovable against the
// recorder's append order. The same proven table the engine consumes at
// machine-build time backs every finding, so a diagnostic here is a
// statement about what the replay fast path will actually do.
var fusionAnalyzer = &Analyzer{
	Name: "fusion",
	Doc:  "static fusion/replay dataflow: barriers, coverage, layout proofs",
	Codes: []CodeDoc{
		{"FV0701", SevWarning, "dynamic-result test forms a fusion barrier severing a pure-flow replay run (with the why-dynamic cause chain)"},
		{"FV0702", SevWarning, "predicted fusion coverage for a unit is below threshold (explain mode reports every unit's coverage as info)"},
		{"FV0703", SevWarning, "statically-hot pure-flow region whose maximal run is shorter than the minimum fuse length"},
		{"FV0704", SevWarning, "operand layout unprovable against the recorder's placeholder append order; the block replays interpreted"},
	},
	Run: runFusion,
}

// DefaultFusionCoverageMin is the FV0702 threshold when Options does not
// set one: below this predicted fusion coverage a unit's replay fast path
// spends most of its dynamic work in single-action dispatch.
const DefaultFusionCoverageMin = 0.5

func runFusion(p *Pass) {
	if p.IR == nil || p.IR.Replay == nil || p.Facts == nil || p.Facts.Replay == nil {
		return
	}
	heads := stepHeads(p.IR)
	reportBarriers(p, heads)
	reportShortHotRuns(p)
	reportLayouts(p)
	reportCoverage(p)
}

// stepHeads computes the blocks where a replay step's action chain can
// begin: the first blocks with dynamic segments reachable from the entry
// along rt-static control flow. A fork here is the PR's
// fork-at-run-head corner — a miss at the head node degrades with no
// fused work preceding it.
func stepHeads(prog *ir.Program) map[int]bool {
	heads := map[int]bool{}
	seen := map[int]bool{}
	stack := []int{prog.Entry}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || id >= len(prog.Blocks) || seen[id] {
			continue
		}
		seen[id] = true
		b := prog.Blocks[id]
		if b.HasDyn {
			heads[id] = true
			continue
		}
		for _, s := range b.Succ {
			stack = append(stack, s)
		}
	}
	return heads
}

// forkPos finds the source position of a fork block's dynamic-result
// test: the branch terminator for DTBr, the block-final SetArg/Pin
// otherwise.
func forkPos(blk *ir.Block) token.Pos {
	if blk.DynTerm == ir.DTBr {
		return blk.Term.Pos
	}
	for i := len(blk.Insts) - 1; i >= 0; i-- {
		if op := blk.Insts[i].Op; op == ir.SetArg || op == ir.Pin {
			return blk.Insts[i].Pos
		}
	}
	return blk.Term.Pos
}

func forkNoun(k ir.DynTermKind) string {
	switch k {
	case ir.DTSetArg:
		return "dynamic next-step argument"
	case ir.DTPin:
		return "?pin dynamic-result test"
	}
	return "dynamic branch"
}

// reportBarriers emits FV0701 for fork blocks that sever pure-flow runs:
// forks inside loops, forks feeding directly into fusable work, and —
// the worst case — forks at the head of a replay step, where a miss
// degrades the whole step with no fused work preceding it. The cause
// chain explains why the tested value is dynamic, in the same provenance
// vocabulary as FV0101.
func reportBarriers(p *Pass, heads map[int]bool) {
	plan, ev := p.IR.Replay, p.Facts.Replay
	type rkey struct {
		pos source.Position
		msg string
	}
	seen := map[rkey]bool{}
	for bi, blk := range p.IR.Blocks {
		if plan.Blocks[bi].Class != ir.ReplayFork {
			continue
		}
		atHead := heads[bi]
		severs := atHead || ev.Blocks[bi].Hot
		if !severs {
			for _, s := range ev.Blocks[bi].Succ {
				if plan.Fusable(s) {
					severs = true
					break
				}
			}
		}
		if !severs {
			continue
		}
		why := ""
		if ts := blk.TermSrc; ts.Kind == ir.SrcVReg {
			why = "; tested value is dynamic: " + p.chain(p.IR, p.Facts, ts.VReg)
		}
		head := ""
		if atHead {
			head = " at the head of a replay step — a miss here degrades the whole step before any fused work runs"
		}
		msg := fmt.Sprintf("%s is a fusion barrier%s: pure-flow replay cannot fuse across a dynamic-result test%s",
			forkNoun(blk.DynTerm), head, why)
		pos := p.Position(forkPos(blk))
		k := rkey{pos, msg}
		if seen[k] {
			continue
		}
		seen[k] = true
		p.Report(Diagnostic{Code: "FV0701", Severity: SevWarning, Analyzer: "fusion",
			Pos: pos, Message: msg,
			Fix: "if the tested value is deterministic for the memoized state, ?pin it (or hoist the test toward the step boundary) so the surrounding pure-flow work fuses"})
	}
}

// reportShortHotRuns emits FV0703 for fusable blocks inside CFG cycles
// whose maximal pure-flow run stays under the minimum fuse length: the
// hot action will replay via single-action dispatch forever.
func reportShortHotRuns(p *Pass) {
	plan, ev := p.IR.Replay, p.Facts.Replay
	type rkey struct {
		pos source.Position
		msg string
	}
	seen := map[rkey]bool{}
	for bi, blk := range p.IR.Blocks {
		if !plan.Fusable(bi) || !ev.Blocks[bi].Hot {
			continue
		}
		if br := plan.Blocks[bi].MaxRun; br < ir.MinFuseLen {
			pos := blk.Term.Pos
			if len(blk.Dyn) > 0 {
				pos = blk.Dyn[0].Pos
			}
			msg := fmt.Sprintf("statically-hot pure-flow action's maximal run length %d is below the minimum fuse length %d: it always replays via single-action dispatch",
				br, ir.MinFuseLen)
			k := rkey{p.Position(pos), msg}
			if seen[k] {
				continue
			}
			seen[k] = true
			p.Report(Diagnostic{Code: "FV0703", Severity: SevWarning, Analyzer: "fusion",
				Pos: p.Position(pos), Message: msg,
				Fix: "merge adjacent dynamic work into the loop body, or relocate the enclosing dynamic-result tests, so consecutive pure-flow actions can fuse"})
		}
	}
}

// reportLayouts emits FV0704 per layout cause: the block's recorded
// placeholder data cannot be proven to line up with the fields its
// replayed operations read, so the engine leaves it interpreted.
func reportLayouts(p *Pass) {
	ev := p.Facts.Replay
	type rkey struct {
		pos source.Position
		msg string
	}
	seen := map[rkey]bool{}
	for bi := range p.IR.Blocks {
		for _, c := range ev.Blocks[bi].Causes {
			msg := "placeholder layout unprovable against the recorder's append order: " +
				c.String() + "; the block replays interpreted"
			k := rkey{p.Position(c.Pos), msg}
			if seen[k] {
				continue
			}
			seen[k] = true
			p.Report(Diagnostic{Code: "FV0704", Severity: SevWarning, Analyzer: "fusion",
				Pos: p.Position(c.Pos), Message: msg,
				Fix: "restructure the expression so run-time static values feed operands the operation actually reads"})
		}
	}
}

// reportCoverage emits the per-unit FV0702 verdicts: a warning when the
// predicted fusion coverage falls below the threshold, and (in explain
// mode) an info stating every unit's predicted coverage — the same
// figure the engine's rt.fusion_predicted_* counters report at run time.
func reportCoverage(p *Pass) {
	plan := p.IR.Replay
	min := p.Opt.FusionCoverageMin
	if min == 0 {
		min = DefaultFusionCoverageMin
	}
	pos := token.Pos{}
	if p.AST != nil {
		if m := p.AST.Fun("main"); m != nil {
			pos = m.P
		}
	}
	cov := plan.Coverage()
	maxRun := 0
	for i := range plan.Blocks {
		if r := plan.Blocks[i].MaxRun; r > maxRun {
			maxRun = r
		}
	}
	if p.Opt.Explain {
		p.Reportf("fusion", "FV0702", SevInfo, pos,
			"predicted fusion coverage: %.1f%% (%d of %d dynamic ops in %d of %d action blocks; longest pure-flow run %d)",
			100*cov, plan.FusableOps, plan.DynOps, plan.FusableBlocks, plan.DynBlocks, maxRun)
	}
	if plan.DynOps > 0 && cov < min {
		p.Reportf("fusion", "FV0702", SevWarning, pos,
			"predicted fusion coverage %.1f%% is below %.0f%%: most dynamic work replays via single-action dispatch (%d of %d dynamic ops fusable)",
			100*cov, 100*min, plan.FusableOps, plan.DynOps)
	}
}

// fusionSummary condenses a unit's replay plan for preflight consumers.
func fusionSummary(prog *ir.Program) *FusionSummary {
	pl := prog.Replay
	if pl == nil {
		return nil
	}
	fs := &FusionSummary{
		DynBlocks:     pl.DynBlocks,
		FusableBlocks: pl.FusableBlocks,
		DynOps:        pl.DynOps,
		FusableOps:    pl.FusableOps,
		Coverage:      pl.Coverage(),
	}
	for i := range pl.Blocks {
		switch pl.Blocks[i].Class {
		case ir.ReplayFork:
			fs.Barriers++
		case ir.ReplayPure, ir.ReplayRet:
			if !pl.Blocks[i].LayoutOK {
				fs.LayoutUnproven++
			}
		}
		if r := pl.Blocks[i].MaxRun; r > fs.MaxRun {
			fs.MaxRun = r
		}
	}
	return fs
}
