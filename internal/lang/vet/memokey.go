package vet

import (
	"fmt"
	"strings"

	"facile/internal/lang/ast"
	"facile/internal/lang/ir"
)

// memokeyAnalyzer inspects the shape of the memoization key (the
// rt-static state identifying an action-cache node, §5): which next-step
// arguments are dynamic or derived from dynamic-result tests (each
// distinct value forks the action tree — the paper's fast-forwarding
// failure mode when the value space is unbounded), and how many words of
// queue state the key carries.
var memokeyAnalyzer = &Analyzer{
	Name: "memokey",
	Doc:  "memoization-key explosion and cache-thrash risks (§5)",
	Codes: []CodeDoc{
		{"FV0301", SevInfo, "dynamic next-step key component pinned by a dynamic-result test"},
		{"FV0302", SevInfo, "next-step key component derived from a ?pin result (data-dependent key)"},
		{"FV0303", SevWarning, "queue parameter contributes a large rt-static key space"},
		{"FV0304", SevInfo, "memoization-key composition summary"},
	},
	Run: runMemokey,
}

// intParamName maps a SetArg index (counting int params only) to a name.
func intParamName(p *ir.Program, idx int64) string {
	n := int64(0)
	for _, prm := range p.Params {
		if prm.IsQueue {
			continue
		}
		if n == idx {
			return prm.Name
		}
		n++
	}
	return fmt.Sprintf("#%d", idx)
}

func runMemokey(p *Pass) {
	if p.Checked != nil && p.Checked.Main != nil {
		queueKeyWidths(p)
		keySummary(p)
	}
	if p.IR == nil || p.Facts == nil {
		return
	}
	// defs: which instructions define each vreg (for backward reachability).
	defs := map[int32][]*ir.Inst{}
	for _, b := range p.IR.Blocks {
		for i := range b.Insts {
			inst := &b.Insts[i]
			if inst.D >= 0 {
				defs[inst.D] = append(defs[inst.D], inst)
			}
		}
	}
	// reachesPin reports whether v's value can derive from a ?pin result,
	// and returns one pin site.
	reachesPin := func(v int32) (*ir.Inst, bool) {
		seen := map[int32]bool{}
		stack := []int32{v}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x < 0 || seen[x] {
				continue
			}
			seen[x] = true
			for _, d := range defs[x] {
				if d.Op == ir.Pin {
					return d, true
				}
				stack = append(stack, d.A, d.B)
				stack = append(stack, d.Args...)
			}
		}
		return nil, false
	}

	for _, b := range p.IR.Blocks {
		for i := range b.Insts {
			inst := &b.Insts[i]
			if inst.Op != ir.SetArg {
				continue
			}
			name := intParamName(p.IR, inst.Imm)
			if inst.BT == ir.BTDynamic {
				p.Reportf("memokey", "FV0301", SevInfo, inst.Pos,
					"next-step value of parameter %q is dynamic: it is pinned by a dynamic-result test and every distinct value grows its own action-tree branch (unbounded value spaces defeat fast-forwarding)",
					name)
			} else if pin, ok := reachesPin(inst.A); ok {
				p.Reportf("memokey", "FV0302", SevInfo, inst.Pos,
					"next-step value of parameter %q derives from the ?pin dynamic-result test at %s: the memoization key is data-dependent on dynamic results",
					name, p.Position(pin.Pos))
			}
		}
	}
}

// queueKeyWidths reports the rt-static key contribution of each queue
// parameter: the key snapshot carries the queue's full contents.
func queueKeyWidths(p *Pass) {
	for _, prm := range p.Checked.Main.Params {
		if prm.Kind != ast.ParamQueue {
			continue
		}
		words := prm.QueueCap * prm.QueueW
		sev := SevInfo
		msg := fmt.Sprintf("queue parameter %q contributes up to %d words (cap %d x width %d) of rt-static state to every memoization key",
			prm.Name, words, prm.QueueCap, prm.QueueW)
		if words >= 64 {
			sev = SevWarning
			msg += "; distinct queue contents multiply cache entries — keep the in-flight window as small as the model allows"
		}
		p.Reportf("memokey", "FV0303", sev, prm.P, "%s", msg)
	}
}

// keySummary emits one FV0304 describing the whole key.
func keySummary(p *Pass) {
	var ints, queues []string
	for _, prm := range p.Checked.Main.Params {
		if prm.Kind == ast.ParamQueue {
			queues = append(queues, fmt.Sprintf("%s[%dx%d]", prm.Name, prm.QueueCap, prm.QueueW))
		} else {
			ints = append(ints, prm.Name)
		}
	}
	parts := []string{}
	if len(ints) > 0 {
		parts = append(parts, "parameters "+strings.Join(ints, ", "))
	}
	if len(queues) > 0 {
		parts = append(parts, "queue contents "+strings.Join(queues, ", "))
	}
	if len(parts) == 0 {
		parts = append(parts, "(empty)")
	}
	p.Reportf("memokey", "FV0304", SevInfo, p.Checked.Main.P,
		"memoization key per step: %s", strings.Join(parts, " + "))
}
