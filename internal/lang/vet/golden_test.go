package vet

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// chRepoRoot moves the test to the repository root so diagnostic
// positions use the same facile/*.fac paths as the documented commands.
func chRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../../.."); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(wd) })
}

func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/lang/vet -update` to create)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	line := 0
	for line < len(gl) && line < len(wl) && bytes.Equal(gl[line], wl[line]) {
		line++
	}
	g, w := []byte("<eof>"), []byte("<eof>")
	if line < len(gl) {
		g = gl[line]
	}
	if line < len(wl) {
		w = wl[line]
	}
	t.Errorf("%s differs from golden at line %d:\n  got:  %s\n  want: %s\n(re-run with -update if the change is intended)",
		filepath.Base(golden), line+1, g, w)
}

// TestGoldenShippedPrograms pins the complete diagnostic output of the
// shipped descriptions — the acceptance command `fvet facile/svr32.fac
// facile/ooo.fac facile/inorder.fac facile/func.fac` — in all three
// output formats, plus the unit partitioning.
func TestGoldenShippedPrograms(t *testing.T) {
	td, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	chRepoRoot(t)

	paths := []string{"facile/svr32.fac", "facile/ooo.fac", "facile/inorder.fac", "facile/func.fac"}
	res, err := RunFiles(paths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 3 {
		t.Errorf("units = %v, want 3 (svr32 paired with each step function)", res.Units)
	}
	if res.HasErrors() {
		t.Errorf("shipped descriptions have error findings: %v", res.Diags)
	}

	for _, rd := range []struct {
		name string
		fn   func(io.Writer, *Result) error
	}{
		{"shipped.txt", WriteText},
		{"shipped.json", WriteJSON},
		{"shipped.sarif", WriteSARIF},
	} {
		var buf bytes.Buffer
		if err := rd.fn(&buf, res); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, filepath.Join(td, rd.name), buf.Bytes())
	}
}

// TestGoldenExplainFunc pins the explain-mode provenance report (FV0101
// why-dynamic chains) for the functional simulator.
func TestGoldenExplainFunc(t *testing.T) {
	td, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	chRepoRoot(t)

	res, err := RunFiles([]string{"facile/svr32.fac", "facile/func.fac"},
		Options{Explain: true, Enable: []string{"FV0101"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join(td, "explain_func.txt"), buf.Bytes())
}
