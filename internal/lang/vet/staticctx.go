package vet

import (
	"facile/internal/lang/source"
)

// staticctxAnalyzer reports dynamic values leaking into run-time static
// contexts (every queue-violation site the BTA found, not just the first
// the compiler errors on) and unreachable code. Unreachability runs over
// the unoptimized lowering so constant-folded branches cannot fabricate
// dead blocks; what remains unreachable is real (statements after a
// return/break/continue).
var staticctxAnalyzer = &Analyzer{
	Name: "staticctx",
	Doc:  "dynamic-value-in-static-context and unreachable-code checks",
	Codes: []CodeDoc{
		{"FV0601", SevError, "dynamic value used with a run-time static queue"},
		{"FV0602", SevWarning, "unreachable code"},
	},
	Run: runStaticctx,
}

func runStaticctx(p *Pass) {
	if p.Facts != nil {
		for _, v := range p.Facts.QueueViolations {
			p.ReportFix("staticctx", "FV0601", SevError, v.Pos,
				"route the dynamic data through global state (a val or array), or pin the value first",
				"%s", v.Msg)
		}
	}
	if p.RawIR == nil {
		return
	}
	// Reachability over the raw CFG.
	reach := make([]bool, len(p.RawIR.Blocks))
	stack := []int{p.RawIR.Entry}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || reach[id] {
			continue
		}
		reach[id] = true
		for _, s := range p.RawIR.Blocks[id].Succ {
			stack = append(stack, s)
		}
	}
	// Inlining duplicates dead statements across call sites; report each
	// source position once.
	seen := map[source.Position]bool{}
	for _, b := range p.RawIR.Blocks {
		if reach[b.ID] || len(b.Insts) == 0 {
			continue
		}
		for i := range b.Insts {
			if b.Insts[i].Pos.Line == 0 {
				continue
			}
			pos := p.Position(b.Insts[i].Pos)
			if !seen[pos] {
				seen[pos] = true
				p.Reportf("staticctx", "FV0602", SevWarning, b.Insts[i].Pos,
					"unreachable code (follows a return, break, or continue)")
			}
			break
		}
	}
}
