package vet

import (
	"fmt"
	"strings"

	"facile/internal/lang/ast"
	"facile/internal/lang/token"
)

// encodingAnalyzer checks the encoding sublanguage (the NJ Machine-Code
// Toolkit heritage): overlapping token patterns, shadowed/unreachable
// dispatch cases, constants that cannot fit their field, and a summary of
// the undecoded opcode space. Patterns are reduced to a disjunction of
// (mask, value) constraints over the token word — equality atoms are
// exact (overlapping bit-range fields compose precisely); anything else
// is kept conservative so no false overlap/shadow is ever reported.
var encodingAnalyzer = &Analyzer{
	Name: "encoding",
	Doc:  "token-pattern overlap, shadowing, and decode-space coverage",
	Codes: []CodeDoc{
		{"FV0401", SevWarning, "two dispatched patterns overlap; the earlier one wins"},
		{"FV0402", SevWarning, "dispatch case is unreachable: earlier patterns claim every matching word"},
		{"FV0403", SevInfo, "undecoded opcode-space summary for the sem dispatch"},
		{"FV0404", SevInfo, "whether a dispatch compiles to a binary decision tree or a linear chain"},
		{"FV0405", SevWarning, "pattern constant does not fit its field"},
		{"FV0406", SevWarning, "pattern can never match any word"},
	},
	Run: runEncoding,
}

// conj is one conjunct of a pattern in disjunctive normal form: the word
// bits pinned by equality atoms, plus whether non-equality constraints
// were dropped (exact=false narrows the match set unpredictably).
type conj struct {
	mask, val uint64
	exact     bool
	unsat     bool
}

const maxConjs = 128

type patShape struct {
	conjs   []conj
	inexact bool // DNF blew the cap or contains non-equality structure we dropped entirely
}

type encoder struct {
	p      *Pass
	fields map[string]*ast.FieldDecl
	pats   map[string]*ast.PatDecl
	shapes map[string]*patShape
	inProg map[string]bool // cycle guard
}

func newEncoder(p *Pass) *encoder {
	e := &encoder{p: p,
		fields: map[string]*ast.FieldDecl{},
		pats:   map[string]*ast.PatDecl{},
		shapes: map[string]*patShape{},
		inProg: map[string]bool{},
	}
	for _, t := range p.AST.Tokens {
		for _, f := range t.Fields {
			e.fields[f.Name] = f
		}
	}
	for _, pd := range p.AST.Pats {
		e.pats[pd.Name] = pd
	}
	return e
}

func mergeConj(a, b conj) conj {
	if a.unsat || b.unsat {
		return conj{unsat: true}
	}
	common := a.mask & b.mask
	if a.val&common != b.val&common {
		return conj{unsat: true}
	}
	return conj{mask: a.mask | b.mask, val: a.val | b.val, exact: a.exact && b.exact}
}

// shape computes (and memoizes) the DNF of a pattern.
func (e *encoder) shape(name string) *patShape {
	if s, ok := e.shapes[name]; ok {
		return s
	}
	if e.inProg[name] {
		return &patShape{inexact: true} // cyclic reference; checker rejects it elsewhere
	}
	e.inProg[name] = true
	pd := e.pats[name]
	s := &patShape{}
	if pd != nil {
		s.conjs, s.inexact = e.dnf(pd.Expr, name)
	} else {
		s.inexact = true
	}
	delete(e.inProg, name)
	e.shapes[name] = s
	return s
}

// dnf expands a pattern expression. patName is the pattern being
// expanded, for FV0405 attribution.
func (e *encoder) dnf(x ast.Expr, patName string) ([]conj, bool) {
	switch x := x.(type) {
	case *ast.Binary:
		switch x.Op {
		case token.LOR:
			l, li := e.dnf(x.L, patName)
			r, ri := e.dnf(x.R, patName)
			out := append(append([]conj{}, l...), r...)
			if len(out) > maxConjs {
				return nil, true
			}
			return out, li || ri
		case token.LAND:
			l, li := e.dnf(x.L, patName)
			r, ri := e.dnf(x.R, patName)
			if li || ri {
				return nil, true
			}
			var out []conj
			for _, a := range l {
				for _, b := range r {
					out = append(out, mergeConj(a, b))
					if len(out) > maxConjs {
						return nil, true
					}
				}
			}
			return out, false
		case token.EQ:
			if c, ok := e.eqAtom(x, patName); ok {
				return []conj{c}, false
			}
		}
	case *ast.Ident:
		if _, isPat := e.pats[x.Name]; isPat {
			s := e.shape(x.Name)
			return append([]conj{}, s.conjs...), s.inexact
		}
	}
	// Unknown structure: a conjunct that narrows the match set in ways we
	// do not model. Sound for overlap (never claims a match) and for
	// coverage (a shadowing conjunct must be exact).
	return []conj{{exact: false}}, false
}

// eqAtom recognizes `field == K` (either operand order).
func (e *encoder) eqAtom(x *ast.Binary, patName string) (conj, bool) {
	id, lit := x.L, x.R
	if _, ok := id.(*ast.Ident); !ok {
		id, lit = x.R, x.L
	}
	name, ok := id.(*ast.Ident)
	if !ok {
		return conj{}, false
	}
	fd, isField := e.fields[name.Name]
	if !isField {
		return conj{}, false
	}
	k, ok := lit.(*ast.IntLit)
	if !ok {
		return conj{}, false
	}
	width := fd.Hi - fd.Lo + 1
	if uint64(k.Val) >= 1<<uint(width) || k.Val < 0 {
		e.p.ReportFix("encoding", "FV0405", SevWarning, k.P,
			"shrink the constant or widen the field",
			"pattern %q compares field %q (%d bits) with %d, which does not fit: the comparison is never true",
			patName, fd.Name, width, k.Val)
		return conj{unsat: true}, true
	}
	fmask := (uint64(1)<<uint(width) - 1) << uint(fd.Lo)
	return conj{mask: fmask, val: uint64(k.Val) << uint(fd.Lo), exact: true}, true
}

// overlaps reports whether some word provably matches both shapes.
func overlaps(a, b *patShape) bool {
	for _, ca := range a.conjs {
		if !ca.exact || ca.unsat {
			continue
		}
		for _, cb := range b.conjs {
			if !cb.exact || cb.unsat {
				continue
			}
			if m := mergeConj(ca, cb); !m.unsat {
				return true
			}
		}
	}
	return false
}

// subsumes reports whether exact conjunct a matches a superset of
// conjunct b's words (b may be inexact: extra constraints only shrink b).
func subsumes(a, b conj) bool {
	return a.exact && !a.unsat && !b.unsat &&
		a.mask&b.mask == a.mask && a.val == b.val&a.mask
}

// coveredByEarlier reports whether every word shape s can match is
// claimed by one of the earlier shapes.
func coveredByEarlier(s *patShape, earlier []*patShape) bool {
	if s.inexact || len(s.conjs) == 0 {
		return false
	}
	for _, c := range s.conjs {
		if c.unsat {
			continue
		}
		cov := false
		for _, e := range earlier {
			for _, ec := range e.conjs {
				if subsumes(ec, c) {
					cov = true
					break
				}
			}
			if cov {
				break
			}
		}
		if !cov {
			return false
		}
	}
	return true
}

// dispatchSite is one place patterns are matched in order.
type dispatchSite struct {
	what  string // "?exec dispatch" or "pattern switch"
	pos   token.Pos
	names []string
	poss  []token.Pos // per-case positions
}

// sites collects every dispatch context: each ?exec occurrence (cases =
// patterns with sems, in declaration order) and each pattern switch.
func (e *encoder) sites(p *Pass) []dispatchSite {
	var out []dispatchSite
	semOf := map[string]*ast.SemDecl{}
	for _, s := range p.AST.Sems {
		semOf[s.PatName] = s
	}
	var semNames []string
	var semPoss []token.Pos
	if p.Checked != nil {
		for _, name := range p.Checked.PatOrder {
			if s, ok := semOf[name]; ok {
				semNames = append(semNames, name)
				semPoss = append(semPoss, s.P)
			}
		}
	}
	eachBody(p.AST, func(owner string, body *ast.Block) {
		walk(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Attr:
				if n.Name == "exec" && len(semNames) > 0 {
					out = append(out, dispatchSite{what: "?exec dispatch", pos: n.P,
						names: semNames, poss: semPoss})
				}
			case *ast.PatSwitch:
				ds := dispatchSite{what: "pattern switch", pos: n.P}
				for _, c := range n.Cases {
					ds.names = append(ds.names, c.PatName)
					ds.poss = append(ds.poss, c.P)
				}
				out = append(out, ds)
			}
			return true
		})
	})
	return out
}

func runEncoding(p *Pass) {
	if p.AST == nil || len(p.AST.Pats) == 0 {
		return
	}
	e := newEncoder(p)

	// Per-pattern checks: FV0405 fires inside shape(); FV0406 here.
	for _, pd := range p.AST.Pats {
		s := e.shape(pd.Name)
		if s.inexact || len(s.conjs) == 0 {
			continue
		}
		allUnsat := true
		for _, c := range s.conjs {
			if !c.unsat {
				allUnsat = false
				break
			}
		}
		if allUnsat {
			p.Reportf("encoding", "FV0406", SevWarning, pd.P,
				"pattern %q can never match any word (all of its alternatives are contradictory)", pd.Name)
		}
	}

	// Per-dispatch checks. Sem-dispatch findings repeat per ?exec site;
	// dedupe on (code, pos, message) happens naturally in the engine? No —
	// the engine keeps duplicates within a unit, so dedupe here.
	type repKey struct {
		code string
		pos  token.Pos
		msg  string
	}
	reported := map[repKey]bool{}
	once := func(code string, sev Severity, pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		k := repKey{code, pos, msg}
		if reported[k] {
			return
		}
		reported[k] = true
		p.Reportf("encoding", code, sev, pos, "%s", msg)
	}

	execSeen := false
	for _, site := range e.sites(p) {
		var shapes []*patShape
		for _, n := range site.names {
			shapes = append(shapes, e.shape(n))
		}
		for j := range site.names {
			if coveredByEarlier(shapes[j], shapes[:j]) {
				once("FV0402", SevWarning, site.poss[j],
					"%s case %q is unreachable: every word it matches is claimed by earlier patterns",
					site.what, site.names[j])
				continue
			}
			for i := 0; i < j; i++ {
				if overlaps(shapes[i], shapes[j]) {
					once("FV0401", SevWarning, site.poss[j],
						"patterns %q and %q overlap in this %s; %q is declared earlier and wins for words matching both",
						site.names[i], site.names[j], site.what, site.names[i])
					break
				}
			}
		}
		e.treeReport(site, once)
		if site.what == "?exec dispatch" && !execSeen {
			execSeen = true
			e.coverage(site, once)
		}
	}
}

// treeReport mirrors the compiler's decision-tree eligibility test
// (compile/dtree.go) and reports which decode strategy the dispatch gets.
func (e *encoder) treeReport(site dispatchSite, once func(string, Severity, token.Pos, string, ...any)) {
	if len(site.names) == 0 {
		return
	}
	field := ""
	leaves := 0
	seen := map[int64]bool{}
	ok := true
	var split func(x ast.Expr) bool
	split = func(x ast.Expr) bool {
		if b, isBin := x.(*ast.Binary); isBin && b.Op == token.LOR {
			return split(b.L) && split(b.R)
		}
		if id, isID := x.(*ast.Ident); isID {
			if pd, isPat := e.pats[id.Name]; isPat {
				return split(pd.Expr)
			}
			return false
		}
		var eq *ast.Binary
		if b, isBin := x.(*ast.Binary); isBin {
			switch b.Op {
			case token.EQ:
				eq = b
			case token.LAND:
				if l, isL := b.L.(*ast.Binary); isL && l.Op == token.EQ {
					eq = l
				}
			}
		}
		if eq == nil {
			return false
		}
		id, isID := eq.L.(*ast.Ident)
		if !isID {
			return false
		}
		if _, isField := e.fields[id.Name]; !isField {
			return false
		}
		lit, isLit := eq.R.(*ast.IntLit)
		if !isLit {
			return false
		}
		if field == "" {
			field = id.Name
		} else if field != id.Name {
			return false
		}
		if seen[lit.Val] {
			return false
		}
		seen[lit.Val] = true
		leaves++
		return true
	}
	for _, n := range site.names {
		pd := e.pats[n]
		if pd == nil || !split(pd.Expr) {
			ok = false
			break
		}
	}
	if ok && field != "" && leaves >= 4 {
		once("FV0404", SevInfo, site.pos,
			"%s over %d patterns compiles to a binary decision tree on field %q (%d leaves, O(log n) decode)",
			site.what, len(site.names), field, leaves)
	} else if len(site.names) >= 4 {
		once("FV0404", SevInfo, site.pos,
			"%s over %d patterns falls back to a linear chain of pattern tests (cases do not all discriminate on one field with distinct constants)",
			site.what, len(site.names))
	}
}

// coverage summarizes the undecoded opcode space of the sem dispatch: the
// values of the shared discriminating field no pattern claims.
func (e *encoder) coverage(site dispatchSite, once func(string, Severity, token.Pos, string, ...any)) {
	// Find fields whose full bit range is pinned by every conjunct.
	var cands []*ast.FieldDecl
	all := []conj{}
	for _, n := range site.names {
		s := e.shape(n)
		if s.inexact {
			return
		}
		for _, c := range s.conjs {
			if !c.unsat {
				all = append(all, c)
			}
		}
	}
	if len(all) == 0 {
		return
	}
	for _, t := range e.p.AST.Tokens {
		for _, fd := range t.Fields {
			width := fd.Hi - fd.Lo + 1
			if width > 16 {
				continue // value space too large to enumerate usefully
			}
			fmask := (uint64(1)<<uint(width) - 1) << uint(fd.Lo)
			pinned := true
			for _, c := range all {
				if c.mask&fmask != fmask {
					pinned = false
					break
				}
			}
			if pinned {
				cands = append(cands, fd)
			}
		}
	}
	if len(cands) == 0 {
		return
	}
	fd := cands[0] // declaration order; the dtree field when one exists
	width := fd.Hi - fd.Lo + 1
	total := 1 << uint(width)
	covered := map[uint64]bool{}
	for _, c := range all {
		covered[(c.val>>uint(fd.Lo))&(uint64(1)<<uint(width)-1)] = true
	}
	if len(covered) == total {
		once("FV0403", SevInfo, fd.P,
			"sem dispatch decodes all %d values of field %q", total, fd.Name)
		return
	}
	var missing []uint64
	for v := uint64(0); v < uint64(total); v++ {
		if !covered[v] {
			missing = append(missing, v)
		}
	}
	once("FV0403", SevInfo, fd.P,
		"sem dispatch decodes %d of %d values of field %q; undecoded: %s (undecoded words fall through the dispatch silently)",
		len(covered), total, fd.Name, rangeList(missing, 12))
}

// rangeList compresses sorted values into "0x00-0x03, 0x07, ..." form.
func rangeList(vals []uint64, maxRanges int) string {
	var parts []string
	for i := 0; i < len(vals); {
		j := i
		for j+1 < len(vals) && vals[j+1] == vals[j]+1 {
			j++
		}
		if i == j {
			parts = append(parts, fmt.Sprintf("0x%02x", vals[i]))
		} else {
			parts = append(parts, fmt.Sprintf("0x%02x-0x%02x", vals[i], vals[j]))
		}
		i = j + 1
	}
	if len(parts) > maxRanges {
		parts = append(parts[:maxRanges], fmt.Sprintf("... (%d values total)", len(vals)))
	}
	return strings.Join(parts, ", ")
}
