package vet

import (
	"facile/internal/lang/ast"
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
)

// unusedAnalyzer finds declarations nothing consumes: token fields,
// patterns, externs, functions, globals, and locals. Global read/write
// classification uses the lowered IR when available (post-inlining, the
// issue's "after lowering"), with an AST fallback; never-referenced
// detection uses the AST so declarations inside uncalled functions do not
// cascade.
var unusedAnalyzer = &Analyzer{
	Name: "unused",
	Doc:  "unused fields, patterns, externs, functions, globals, and locals",
	Codes: []CodeDoc{
		{"FV0501", SevWarning, "token field is never referenced"},
		{"FV0502", SevWarning, "pattern has no sem and is never referenced"},
		{"FV0503", SevWarning, "extern is never called"},
		{"FV0504", SevWarning, "function is never called"},
		{"FV0505", SevWarning, "global is never referenced"},
		{"FV0506", SevInfo, "global is written but never read inside the program"},
		{"FV0507", SevWarning, "local is assigned but never read"},
	},
	Run: runUnused,
}

func runUnused(p *Pass) {
	if p.AST == nil {
		return
	}
	// Names referenced anywhere: idents in pattern expressions and bodies,
	// call targets, pattern-switch case names.
	ident := map[string]bool{}
	called := map[string]bool{}
	patCase := map[string]bool{}
	mark := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			ident[n.Name] = true
		case *ast.Call:
			called[n.Name] = true
		case *ast.PatSwitch:
			for _, c := range n.Cases {
				patCase[c.PatName] = true
			}
		}
		return true
	}
	for _, pd := range p.AST.Pats {
		walk(pd.Expr, mark)
	}
	for _, g := range p.AST.Globals {
		if g.Init != nil {
			walk(g.Init, mark)
		}
	}
	for _, s := range p.AST.Sems {
		walk(s.Body, mark)
	}
	for _, f := range p.AST.Funs {
		walk(f.Body, mark)
	}

	hasSem := map[string]bool{}
	for _, s := range p.AST.Sems {
		hasSem[s.PatName] = true
	}

	for _, t := range p.AST.Tokens {
		for _, fd := range t.Fields {
			if !ident[fd.Name] {
				p.ReportFix("unused", "FV0501", SevWarning, fd.P,
					"remove the field, or reference it from a pattern or sem",
					"token field %q is never referenced", fd.Name)
			}
		}
	}
	for _, pd := range p.AST.Pats {
		if !hasSem[pd.Name] && !ident[pd.Name] && !patCase[pd.Name] {
			p.Reportf("unused", "FV0502", SevWarning, pd.P,
				"pattern %q has no sem and is never referenced by another pattern or dispatch", pd.Name)
		}
	}
	for _, e := range p.AST.Externs {
		if !called[e.Name] {
			p.Reportf("unused", "FV0503", SevWarning, e.P,
				"extern %q is never called", e.Name)
		}
	}
	for _, f := range p.AST.Funs {
		if f.Name != "main" && !called[f.Name] {
			p.Reportf("unused", "FV0504", SevWarning, f.P,
				"function %q is never called", f.Name)
		}
	}

	unusedGlobals(p, ident)
	for _, s := range p.AST.Sems {
		unreadLocals(p, s.Body)
	}
	for _, f := range p.AST.Funs {
		unreadLocals(p, f.Body)
	}
}

// unusedGlobals reports globals nothing references (FV0505, AST-level)
// and globals the lowered program writes but never reads (FV0506 — info,
// since the host may read them through the machine interface).
func unusedGlobals(p *Pass, ident map[string]bool) {
	for _, g := range p.AST.Globals {
		if !ident[g.Name] {
			p.Reportf("unused", "FV0505", SevWarning, g.P,
				"global %q is never referenced", g.Name)
		}
	}
	if p.IR == nil {
		return
	}
	reads := make([]int, len(p.IR.Globals))
	writes := make([]int, len(p.IR.Globals))
	aReads := make([]int, len(p.IR.Arrays))
	aWrites := make([]int, len(p.IR.Arrays))
	for _, b := range p.IR.Blocks {
		for i := range b.Insts {
			inst := &b.Insts[i]
			switch inst.Op {
			case ir.LoadG:
				reads[inst.Imm]++
			case ir.StoreG:
				writes[inst.Imm]++
			case ir.LoadA:
				aReads[inst.Imm]++
			case ir.StoreA:
				aWrites[inst.Imm]++
			}
		}
	}
	declPos := func(name string) token.Pos {
		if p.Checked != nil {
			if d := p.Checked.Globals[name]; d != nil {
				return d.P
			}
		}
		return token.Pos{}
	}
	for gi, g := range p.IR.Globals {
		if writes[gi] > 0 && reads[gi] == 0 {
			p.Reportf("unused", "FV0506", SevInfo, declPos(g.Name),
				"global %q is written but never read inside the program (the host may still read it through the machine interface)", g.Name)
		}
	}
	for ai, a := range p.IR.Arrays {
		if aWrites[ai] > 0 && aReads[ai] == 0 {
			p.Reportf("unused", "FV0506", SevInfo, declPos(a.Name),
				"array %q is written but never read inside the program (the host may still read it through the machine interface)", a.Name)
		}
	}
}

type localUse struct {
	pos  token.Pos
	read bool
}

// unreadLocals walks one body with proper block scoping and reports
// locals that are assigned but never read. Assignment targets are writes;
// every other ident occurrence resolving to the local is a read.
func unreadLocals(p *Pass, body *ast.Block) {
	type scope struct {
		parent *scope
		vars   map[string]*localUse
	}
	lookup := func(sc *scope, name string) *localUse {
		for s := sc; s != nil; s = s.parent {
			if u, ok := s.vars[name]; ok {
				return u
			}
		}
		return nil
	}
	var readExpr func(sc *scope, x ast.Expr)
	readExpr = func(sc *scope, x ast.Expr) {
		walk(x, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if u := lookup(sc, id.Name); u != nil {
					u.read = true
				}
			}
			return true
		})
	}
	var walkBlock func(sc *scope, b *ast.Block)
	var walkStmt func(sc *scope, s ast.Stmt)
	walkStmt = func(sc *scope, s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			walkBlock(sc, s)
		case *ast.LocalDecl:
			if s.Decl.Init != nil {
				readExpr(sc, s.Decl.Init)
			}
			sc.vars[s.Decl.Name] = &localUse{pos: s.Decl.P}
		case *ast.Assign:
			readExpr(sc, s.Value)
			if id, ok := s.Target.(*ast.Ident); ok {
				// A write, not a read; but an unresolvable name might be a
				// global/field — only locals are tracked here.
				_ = id
			} else {
				readExpr(sc, s.Target)
			}
		case *ast.If:
			readExpr(sc, s.Cond)
			walkBlock(sc, s.Then)
			if s.Else != nil {
				walkStmt(sc, s.Else)
			}
		case *ast.While:
			readExpr(sc, s.Cond)
			walkBlock(sc, s.Body)
		case *ast.Return:
			if s.Value != nil {
				readExpr(sc, s.Value)
			}
		case *ast.Switch:
			readExpr(sc, s.Subject)
			for _, c := range s.Cases {
				walkBlock(sc, c.Body)
			}
			if s.Default != nil {
				walkBlock(sc, s.Default)
			}
		case *ast.PatSwitch:
			readExpr(sc, s.Subject)
			for _, c := range s.Cases {
				walkBlock(sc, c.Body)
			}
			if s.Default != nil {
				walkBlock(sc, s.Default)
			}
		case *ast.ExprStmt:
			readExpr(sc, s.X)
		}
	}
	walkBlock = func(parent *scope, b *ast.Block) {
		sc := &scope{parent: parent, vars: map[string]*localUse{}}
		for _, s := range b.Stmts {
			walkStmt(sc, s)
		}
		for name, u := range sc.vars {
			if !u.read {
				p.ReportFix("unused", "FV0507", SevWarning, u.pos,
					"remove the local or read its value",
					"local %q is assigned but never read", name)
			}
		}
	}
	walkBlock(nil, body)
}
